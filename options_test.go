package rio_test

// Tests for the grouped Options layout (Options.Tuning, Options.Fault) and
// its merge/conflict contract with the deprecated flat aliases.

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rio"
)

func mustReject(t *testing.T, o rio.Options, knob string) {
	t.Helper()
	if _, err := rio.New(o); err == nil || !strings.Contains(err.Error(), knob) {
		t.Errorf("New with conflicting %s: err = %v, want conflict naming it", knob, err)
	}
	if o.Model == rio.InOrder {
		if _, err := rio.NewEngine(o); err == nil || !strings.Contains(err.Error(), knob) {
			t.Errorf("NewEngine with conflicting %s: err = %v, want conflict naming it", knob, err)
		}
	}
}

// TestOptionsConflictsRejected: the same knob set to different values in
// its flat and grouped spelling is a construction error — never a silent
// preference for one of the two.
func TestOptionsConflictsRejected(t *testing.T) {
	base := rio.Options{Workers: 2}
	o := base
	o.WaitPolicy, o.Tuning.WaitPolicy = rio.WaitSpin, rio.WaitPark
	mustReject(t, o, "WaitPolicy")
	o = base
	o.SpinLimit, o.Tuning.SpinLimit = 10, 20
	mustReject(t, o, "SpinLimit")
	o = base
	o.YieldLimit, o.Tuning.YieldLimit = 5, 6
	mustReject(t, o, "YieldLimit")
	o = base
	o.SleepInit, o.Tuning.SleepInit = time.Millisecond, 2*time.Millisecond
	mustReject(t, o, "SleepInit")
	o = base
	o.SleepMax, o.Tuning.SleepMax = time.Millisecond, 2*time.Millisecond
	mustReject(t, o, "SleepMax")
	o = base
	o.Retry, o.Fault.Retry = &rio.RetryPolicy{MaxAttempts: 2}, &rio.RetryPolicy{MaxAttempts: 3}
	mustReject(t, o, "Retry")
	o = base
	o.Resume, o.Fault.Resume = &rio.Checkpoint{}, &rio.Checkpoint{}
	mustReject(t, o, "Resume")
	// Snapshotter implementations need not be comparable, so ANY doubly-set
	// Snapshots is rejected, even the "same" value twice.
	o = base
	snaps := rio.SnapshotFuncs{Save: func(rio.DataID) func() { return func() {} }}
	o.Snapshots, o.Fault.Snapshots = snaps, snaps
	mustReject(t, o, "Snapshots")
}

// TestOptionsAgreementAccepted: setting a knob identically in both places
// is not a conflict, and pointer knobs may share the same pointer.
func TestOptionsAgreementAccepted(t *testing.T) {
	rp := &rio.RetryPolicy{MaxAttempts: 2}
	o := rio.Options{
		Workers:    2,
		WaitPolicy: rio.WaitPark,
		Tuning:     rio.TuningOptions{WaitPolicy: rio.WaitPark, SpinLimit: 64},
		Retry:      rp,
		Fault:      rio.FaultOptions{Retry: rp},
	}
	if _, err := rio.New(o); err != nil {
		t.Fatalf("agreeing options rejected: %v", err)
	}
	if _, err := rio.NewEngine(o); err != nil {
		t.Fatalf("NewEngine with agreeing options rejected: %v", err)
	}
}

// TestOptionsGroupedTuningRuns: an engine configured purely through the
// grouped Tuning fields runs correctly under every model.
func TestOptionsGroupedTuningRuns(t *testing.T) {
	for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		rt, err := rio.New(rio.Options{
			Model:   m,
			Workers: 2,
			Tuning: rio.TuningOptions{
				WaitPolicy: rio.WaitPark,
				SpinLimit:  128,
				YieldLimit: 16,
				SleepInit:  time.Microsecond,
				SleepMax:   time.Millisecond,
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var got int64
		err = rt.Run(2, func(s rio.Submitter) {
			s.Submit(func() { atomic.StoreInt64(&got, 40) }, rio.Write(0))
			s.Submit(func() { atomic.AddInt64(&got, 2) }, rio.Read(0), rio.Write(1))
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if atomic.LoadInt64(&got) != 42 {
			t.Errorf("%v: got %d, want 42", m, got)
		}
	}
}

// TestOptionsGroupedFaultRuns: retry configured only through Options.Fault
// actually retries — functional proof the grouped fields are merged into
// the engine, not just accepted.
func TestOptionsGroupedFaultRuns(t *testing.T) {
	for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		var attempts atomic.Int64
		saved := make(map[rio.DataID]int64)
		vals := make([]int64, 1)
		snaps := rio.SnapshotFuncs{
			Save: func(d rio.DataID) func() {
				v := vals[d]
				return func() { saved[d] = v; vals[d] = v }
			},
		}
		rt, err := rio.New(rio.Options{
			Model:   m,
			Workers: 2,
			Fault: rio.FaultOptions{
				Retry:     &rio.RetryPolicy{MaxAttempts: 3},
				Snapshots: snaps,
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		err = rt.Run(1, func(s rio.Submitter) {
			s.Submit(func() {
				vals[0]++
				if attempts.Add(1) < 3 {
					panic("transient")
				}
			}, rio.RW(0))
		})
		if err != nil {
			t.Fatalf("%v: run with grouped Fault: %v", m, err)
		}
		if attempts.Load() != 3 {
			t.Errorf("%v: %d attempts, want 3 (grouped Retry not wired)", m, attempts.Load())
		}
		if vals[0] != 1 {
			t.Errorf("%v: vals[0] = %d, want 1 (rollback through grouped Snapshots)", m, vals[0])
		}
	}
}

// TestOptionsFaultCheckpointORed: Checkpoint set in either spelling (or
// both) enables checkpointing; the two are OR-ed, never conflicting.
func TestOptionsFaultCheckpointORed(t *testing.T) {
	for _, o := range []rio.Options{
		{Workers: 2, Checkpoint: true},
		{Workers: 2, Fault: rio.FaultOptions{Checkpoint: true}},
		{Workers: 2, Checkpoint: true, Fault: rio.FaultOptions{Checkpoint: true}},
	} {
		rt, err := rio.New(o)
		if err != nil {
			t.Fatal(err)
		}
		err = rt.Run(1, func(s rio.Submitter) {
			s.Submit(func() {}, rio.Write(0))
			s.Submit(func() { panic("fail") }, rio.RW(0))
		})
		var pe *rio.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("checkpointing run did not return PartialError: %v", err)
		}
		if len(pe.Result.Checkpoint().Completed) != 1 {
			t.Errorf("checkpoint frontier = %v, want task 0", pe.Result.Checkpoint().Completed)
		}
	}
}
