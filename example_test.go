package rio_test

import (
	"fmt"

	"rio"
)

// The canonical STF program: two producers, a consumer, an in-place
// update. The in-order engine needs a static mapping; everything else is
// inferred from the declared accesses.
func ExampleNew() {
	const x, y, z = rio.DataID(0), rio.DataID(1), rio.DataID(2)
	vals := make([]int, 3)

	rt, err := rio.New(rio.Options{
		Model:   rio.InOrder,
		Workers: 2,
		Mapping: rio.CyclicMapping(2),
	})
	if err != nil {
		panic(err)
	}
	err = rt.Run(3, func(s rio.Submitter) {
		s.Submit(func() { vals[x] = 1 }, rio.Write(x))
		s.Submit(func() { vals[y] = 2 }, rio.Write(y))
		s.Submit(func() { vals[z] = vals[x] + vals[y] },
			rio.Read(x), rio.Read(y), rio.Write(z))
		s.Submit(func() { vals[z] *= 10 }, rio.RW(z))
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(vals[z])
	// Output: 30
}

// Commutative reductions: the accumulations commute (any execution order,
// engine-serialized bodies), only the final read is ordered after all of
// them.
func ExampleReduce() {
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 4, Mapping: rio.CyclicMapping(4)})
	if err != nil {
		panic(err)
	}
	var sum, result int
	err = rt.Run(1, func(s rio.Submitter) {
		for i := 1; i <= 100; i++ {
			v := i
			s.Submit(func() { sum += v }, rio.Reduce(0))
		}
		s.Submit(func() { result = sum }, rio.Read(0))
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(result)
	// Output: 5050
}

// Partial mappings: tasks without a static owner are claimed dynamically
// by the first worker whose replay reaches them.
func ExamplePartialMapping() {
	m := rio.PartialMapping(rio.CyclicMapping(2), func(id rio.TaskID) bool {
		return id%2 == 1 // odd tasks have no static owner
	})
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 2, Mapping: m})
	if err != nil {
		panic(err)
	}
	var n int
	err = rt.Run(1, func(s rio.Submitter) {
		for i := 0; i < 10; i++ {
			s.Submit(func() { n++ }, rio.RW(0))
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(n, rt.Stats().Claimed())
	// Output: 10 5
}

// Recording captures a program's structure for analysis without running
// any task body.
func ExampleRecordProgram() {
	g, err := rio.RecordProgram(2, func(s rio.Submitter) {
		s.Submit(func() {}, rio.Write(0))
		s.Submit(func() {}, rio.Read(0), rio.Write(1))
		s.Submit(func() {}, rio.RW(1))
	})
	if err != nil {
		panic(err)
	}
	deps := g.Dependencies()
	fmt.Println(len(g.Tasks), deps[1], deps[2])
	// Output: 3 [0] [1]
}

// The same program runs under every execution model; the engines differ
// only in cost profile, never in results.
func ExampleOptions() {
	for _, model := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		rt, err := rio.New(rio.Options{Model: model, Workers: 2, Mapping: rio.CyclicMapping(2)})
		if err != nil {
			panic(err)
		}
		total := 0
		err = rt.Run(1, func(s rio.Submitter) {
			for i := 1; i <= 4; i++ {
				v := i
				s.Submit(func() { total += v }, rio.RW(0))
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Println(rt.Name(), total)
	}
	// Output:
	// rio 10
	// centralized-fifo 10
	// sequential 10
}
