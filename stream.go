package rio

import (
	"errors"
	"fmt"

	"rio/internal/core"
	"rio/internal/sched"
	"rio/internal/stf"
)

// Streamer is implemented by runtimes that execute unbounded task flows as
// streaming sessions. The in-order *Engine implements it natively: one set
// of worker goroutines and one per-data state arena persist across the
// whole stream, windows replay between epoch barriers, and repeated window
// shapes hit a compiled-program cache keyed by the window's content hash.
// New attaches a fallback implementation to every other model (each window
// runs as one ordinary engine run), so OpenStream works on any Runtime —
// which is exactly what the pipeline ablation compares.
type Streamer interface {
	// Stream opens a streaming session over numData data objects. The
	// returned Stream must be Closed.
	Stream(numData int, opts StreamOptions) (*Stream, error)
}

// StreamOptions configures a streaming session.
type StreamOptions struct {
	// MaxWindow caps the tasks recorded per window: reaching it triggers an
	// automatic Flush. 0 means DefaultMaxWindow; negative disables
	// auto-flushing (every window boundary is an explicit Flush).
	MaxWindow int
	// Kernel dispatches tasks submitted through Stream.Task (the
	// allocation-free path). Streams using only Submit may leave it nil.
	Kernel Kernel
	// NoCompile forces closure replay for every window of an in-order
	// session, disabling the per-shape compiled-window cache. Mainly for
	// ablation: closure windows also run the per-epoch divergence guard,
	// compiled windows cannot diverge by construction.
	NoCompile bool
	// MaxShapes bounds the in-order session's compiled-shape cache
	// (0 = DefaultMaxShapes, negative = unbounded). On overflow an
	// arbitrary cached shape is evicted — the cache is a performance
	// device keyed by content hash, so eviction only costs a recompile.
	MaxShapes int
}

const (
	// DefaultMaxWindow is the automatic Flush threshold of a stream.
	DefaultMaxWindow = 1024
	// DefaultMaxShapes bounds the per-stream compiled-shape cache.
	DefaultMaxShapes = 64
)

var errStreamClosed = errors.New("rio: stream is closed")

// Stream is a streaming session: an unbounded task flow submitted window
// by window. Submit and Task record tasks into the current window; Flush
// publishes it (an epoch barrier separates consecutive windows, so
// everything in window k happens-before everything in window k+1, and the
// flow as a whole stays sequentially consistent); Drain waits for every
// published window; Close drains, stops the session's workers and releases
// the engine.
//
// Errors are sticky, bufio.Writer-style: the first failed window poisons
// the stream, later Submits are dropped, and the error surfaces from every
// subsequent Flush/Drain/Close. A Stream is not safe for concurrent use —
// one producer goroutine records and flushes.
type Stream struct {
	numData   int
	opts      StreamOptions
	maxWindow int
	maxShapes int

	// In-order (native) backend.
	eng                    *Engine
	sess                   *core.Session
	mapping                Mapping // snapshot at open; the cached shapes bake it in
	workers                int
	shapes                 map[[32]byte]*compiledShape
	shapeHits, shapeMisses int64

	// Fallback backend: every window is one synchronous run.
	rt Runtime

	win       [2]*stf.Window // double buffer: record k+1 while k executes
	cur       int
	submitted int64
	windows   int64
	err       error
	closed    bool
}

// compiledShape is one cached window shape. cp == nil is a negative entry:
// the shape cannot compile under the session's mapping (SharedWorker
// tasks), so its windows take closure replay.
type compiledShape struct {
	cp *stf.CompiledProgram
}

func newStream(numData int, o StreamOptions) (*Stream, error) {
	if numData < 0 {
		return nil, errors.New("rio: negative numData")
	}
	s := &Stream{numData: numData, opts: o, maxWindow: o.MaxWindow, maxShapes: o.MaxShapes}
	if s.maxWindow == 0 {
		s.maxWindow = DefaultMaxWindow
	}
	if s.maxShapes == 0 {
		s.maxShapes = DefaultMaxShapes
	}
	s.win[0] = stf.NewWindow(numData)
	s.win[1] = stf.NewWindow(numData)
	return s, nil
}

// Stream implements Streamer natively: the session owns the engine's
// workers and per-data state for its whole lifetime, and repeated window
// shapes replay through cached compiled programs. Options.Timeout bounds
// each window; the engine's mapping is snapshotted at open (SetMapping
// during a session does not affect it). While the stream is open, Run and
// RunGraph are rejected — Close releases the engine.
//
// Preflight analysis does not apply to stream windows: a window routinely
// reads data written by an earlier window, which single-window analysis
// would misdiagnose as a read of never-written data. Resume/Checkpoint are
// finite-flow notions and are likewise not in effect during a session.
func (e *Engine) Stream(numData int, opts StreamOptions) (*Stream, error) {
	s, err := newStream(numData, opts)
	if err != nil {
		return nil, err
	}
	sess, err := e.core.OpenSession(numData, e.opts.Timeout)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	s.mapping = e.mapping
	e.mu.Unlock()
	s.eng = e
	s.sess = sess
	s.workers = e.core.NumWorkers()
	s.shapes = make(map[[32]byte]*compiledShape)
	return s, nil
}

// newRuntimeStream opens a fallback stream over any Runtime: each window
// executes as one ordinary synchronous run of rt. This keeps the Stream
// semantics (windowed submission, epoch barriers, sticky errors) identical
// across models, with the per-window cost profile of the underlying engine
// — the centralized baseline of the pipeline ablation pays a full unroll,
// dependency derivation and goroutine fan-out per window.
func newRuntimeStream(rt Runtime, numData int, opts StreamOptions) (*Stream, error) {
	s, err := newStream(numData, opts)
	if err != nil {
		return nil, err
	}
	s.rt = rt
	return s, nil
}

// OpenStream opens a streaming session over rt: natively when rt
// implements Streamer, through the per-window fallback otherwise.
func OpenStream(rt Runtime, numData int, opts StreamOptions) (*Stream, error) {
	if st, ok := rt.(Streamer); ok {
		return st.Stream(numData, opts)
	}
	return newRuntimeStream(rt, numData, opts)
}

// Submit records a closure task accessing the given data into the current
// window and returns its flow-global ID (informational; windows replay by
// position). The body runs when the window is flushed. On a poisoned or
// closed stream the task is dropped and NoTask returned — the sticky error
// surfaces from the next Flush/Drain/Close.
func (s *Stream) Submit(fn TaskFunc, accesses ...Access) TaskID {
	if s.closed || s.err != nil {
		return stf.NoTask
	}
	if fn == nil {
		s.fail(errors.New("rio: Stream.Submit: nil task body"))
		return stf.NoTask
	}
	id := TaskID(s.submitted)
	if _, err := s.win[s.cur].Add(fn, 0, 0, 0, 0, accesses); err != nil {
		s.fail(fmt.Errorf("rio: stream task %d: %w", id, err))
		return stf.NoTask
	}
	s.submitted++
	s.maybeAutoFlush()
	return id
}

// Task records a kernel-dispatched task (the allocation-free path): the
// session's StreamOptions.Kernel receives a Task carrying these selectors
// and accesses. Requires StreamOptions.Kernel.
func (s *Stream) Task(kernel, i, j, k int, accesses ...Access) TaskID {
	if s.closed || s.err != nil {
		return stf.NoTask
	}
	if s.opts.Kernel == nil {
		s.fail(errors.New("rio: Stream.Task requires StreamOptions.Kernel"))
		return stf.NoTask
	}
	id := TaskID(s.submitted)
	if _, err := s.win[s.cur].Add(nil, kernel, i, j, k, accesses); err != nil {
		s.fail(fmt.Errorf("rio: stream task %d: %w", id, err))
		return stf.NoTask
	}
	s.submitted++
	s.maybeAutoFlush()
	return id
}

func (s *Stream) maybeAutoFlush() {
	if s.maxWindow > 0 && s.win[s.cur].Len() >= s.maxWindow {
		// An error here is sticky and surfaces on the next explicit
		// Flush/Drain/Close, like every other streaming failure.
		_ = s.Flush()
	}
}

// Flush closes the current window and publishes it for execution. On the
// native backend this is the epoch hand-off: Flush waits until the
// *previous* window completed (the epoch barrier), hands the new window to
// the session's workers and returns while it executes — recording and
// execution pipeline with one window in flight. On the fallback backend
// the window runs synchronously. Flushing an empty window is a no-op.
func (s *Stream) Flush() error {
	if s.closed {
		return errStreamClosed
	}
	w := s.win[s.cur]
	if s.err != nil || w.Len() == 0 {
		return s.err
	}
	if err := s.flushWindow(w); err != nil {
		s.fail(err)
		return s.err
	}
	s.windows++
	// Swap the double buffer: the other buffer's window has completed (the
	// barrier inside this Flush proved it), so its storage is free to reuse.
	s.cur ^= 1
	s.win[s.cur].Reset()
	return nil
}

func (s *Stream) flushWindow(w *stf.Window) error {
	tasks, bodies := w.Tasks(), w.Bodies()
	kern := windowKernel(bodies, s.opts.Kernel)
	if s.sess != nil {
		wr := core.WindowRun{Tasks: tasks, Kernel: kern, Touched: w.Touched()}
		if !s.opts.NoCompile {
			cs, err := s.shapeFor(w)
			if err != nil {
				return err
			}
			wr.Compiled = cs.cp
		}
		return s.sess.Flush(wr)
	}
	prog := func(sub Submitter) {
		for i := range tasks {
			if b := bodies[i]; b != nil {
				sub.Submit(b, tasks[i].Accesses...)
			} else {
				sub.SubmitTask(&tasks[i], kern)
			}
		}
	}
	if err := s.rt.Run(s.numData, prog); err != nil {
		return fmt.Errorf("rio: stream window %d: %w", s.windows+1, err)
	}
	return nil
}

// shapeFor resolves the window's compiled shape through the content-hash
// cache: windows whose access structure repeats — the steady state of a
// periodic pipeline — compile once and replay the cached micro-op streams
// against each window's own task table.
func (s *Stream) shapeFor(w *stf.Window) (*compiledShape, error) {
	fp := w.Fingerprint()
	if cs, ok := s.shapes[fp]; ok {
		s.shapeHits++
		return cs, nil
	}
	s.shapeMisses++
	cs, err := s.compileShape(w)
	if err != nil {
		return nil, err
	}
	if s.maxShapes > 0 && len(s.shapes) >= s.maxShapes {
		for k := range s.shapes {
			delete(s.shapes, k)
			break
		}
	}
	s.shapes[fp] = cs
	return cs, nil
}

// compileShape lowers one window shape under the session's mapping
// snapshot. The graph is deep-copied out of the reusable window buffer
// first: compiled programs alias their source graph's task table, and a
// cached program must not alias storage the next window overwrites.
// Partial mappings (SharedWorker) yield a negative entry — those windows
// replay through the closure path, which resolves ownership dynamically.
func (s *Stream) compileShape(w *stf.Window) (*compiledShape, error) {
	for i := range w.Tasks() {
		o := s.mapping(TaskID(i))
		if o == SharedWorker {
			return &compiledShape{}, nil
		}
		if o < 0 || int(o) >= s.workers {
			return nil, fmt.Errorf("rio: stream mapping(%d) = %d out of range [0,%d)", i, o, s.workers)
		}
	}
	g := w.CloneGraph(fmt.Sprintf("stream-shape-%d", s.shapeMisses))
	var rel [][]bool
	if s.eng.opts.Prune {
		rel = sched.Relevant(g, s.mapping, s.workers)
	}
	cp, err := stf.Compile(g, s.mapping, s.workers, rel)
	if err != nil {
		return nil, err
	}
	if s.eng.opts.Verify {
		if err := certify(g, cp, s.mapping, nil); err != nil {
			return nil, err
		}
	}
	return &compiledShape{cp: cp}, nil
}

// windowKernel dispatches a window's recorded tasks: closure tasks run
// their body, kernel tasks go through the stream's Kernel. Task IDs are
// window-local, so the body table is indexed directly.
func windowKernel(bodies []stf.TaskFunc, k Kernel) Kernel {
	return func(t *stf.Task, w WorkerID) {
		if b := bodies[t.ID]; b != nil {
			b()
			return
		}
		k(t, w)
	}
}

// Drain flushes the pending window and blocks until every published window
// has completed, then reports the stream's sticky error.
func (s *Stream) Drain() error {
	if s.closed {
		return errStreamClosed
	}
	if err := s.Flush(); err != nil {
		return err
	}
	if s.sess != nil {
		if err := s.sess.Drain(); err != nil {
			s.fail(err)
		}
	}
	return s.err
}

// Close drains the stream, stops the session's workers (native backend)
// and releases the engine for ordinary runs. Idempotent; returns the
// stream's sticky error. A Stream must be Closed — an un-Closed native
// stream keeps the engine's worker goroutines parked forever.
func (s *Stream) Close() error {
	if s.closed {
		return s.err
	}
	derr := s.Drain()
	if s.sess != nil {
		if cerr := s.sess.Close(); cerr != nil && derr == nil {
			s.fail(cerr)
		}
	}
	s.closed = true
	return s.err
}

// Err returns the stream's sticky error without flushing or draining.
func (s *Stream) Err() error { return s.err }

// Submitted reports the number of tasks recorded over the stream's
// lifetime (including the pending window).
func (s *Stream) Submitted() int64 { return s.submitted }

// Windows reports the number of windows flushed so far.
func (s *Stream) Windows() int64 { return s.windows }

// Pending reports the number of tasks recorded in the not-yet-flushed
// window.
func (s *Stream) Pending() int {
	return s.win[s.cur].Len()
}

// CacheStats reports the native session's compiled-shape cache counters
// (all zero on a fallback stream): hits and misses are per flushed window,
// entries is the current cache size.
func (s *Stream) CacheStats() (hits, misses int64, entries int) {
	return s.shapeHits, s.shapeMisses, len(s.shapes)
}

func (s *Stream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}
