package rio

import (
	"context"
	"fmt"
	"sync"

	"rio/internal/core"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/verify"
)

// CompiledProgram is a recorded task flow lowered into flat per-worker
// instruction streams for one (mapping, workers) pair — the fast replay
// path. Closure replay pays the paper's n·t_r replay term (eq. 2) on
// every run of every worker: the mapping is re-evaluated, the access
// lists re-walked and the divergence guard re-folded each time. A
// compiled program pays that cost once, at Compile time; running it
// interprets pre-resolved micro-ops with no closure dispatch, no
// interface values and no guard (all streams derive from one graph, so
// replay divergence is impossible by construction).
type CompiledProgram = stf.CompiledProgram

// Compile lowers a recorded graph for the given worker count and mapping
// (nil means the cyclic default). With prune set, §3.5 task pruning is
// applied at compile time: tasks irrelevant to a worker are omitted from
// its stream entirely.
//
// The mapping must give every task a static owner in [0, workers);
// partial mappings (SharedWorker) resolve ownership at run time and
// require closure replay. The returned program is immutable, reusable
// across runs and engines of the same worker count, and assumes g is not
// mutated while it is in use.
func Compile(g *Graph, workers int, m Mapping, prune bool) (*CompiledProgram, error) {
	if m == nil {
		if workers < 1 {
			return nil, fmt.Errorf("rio: Compile: workers must be >= 1, got %d", workers)
		}
		m = CyclicMapping(workers)
	}
	var rel [][]bool
	if prune {
		rel = sched.Relevant(g, m, workers)
	}
	return stf.Compile(g, m, workers, rel)
}

// Engine is an in-order (RIO) runtime with a compiled-program cache:
// RunGraph compiles a recorded graph on first sight and replays the
// cached streams on every later run, so iterative workloads (outer
// loops re-running an identical flow) pay the n·t_r unrolling cost once
// per engine instead of once per run. The cache is keyed by graph
// identity (the *Graph pointer); SetMapping flushes it, since the
// streams bake the task→worker assignment in.
//
// Engine also implements Runtime, executing closure programs through the
// ordinary replay path — use that for flows that change between runs or
// need partial (SharedWorker) mappings. Options.Timeout is honored for
// all runs. Options.Preflight is honored on both paths: closure programs
// are analyzed in record mode before every run, recorded graphs once per
// compilation (at the cache miss, so iterative replays pay it once).
// Programs pre-compiled explicitly via Compile bypass preflight — their
// graphs were validated structurally at compile time.
//
// Concurrency: the cache surface — Precompile, CacheStats, SetMapping,
// Invalidate, Progress — is safe for concurrent use from any goroutine.
// Concurrent first callers of the same uncached graph share a single
// compilation (and, with Options.Verify, a single certification): one
// caller compiles, the rest wait for its result, so CacheStats reports
// exactly one miss however many goroutines raced. Runs themselves
// (Run/RunGraph/RunCompiled) still must not overlap: an Engine executes
// one task flow at a time, and callers wanting concurrent executions must
// serialize runs externally (see internal/server for the serving-side
// pattern: concurrent Precompile, serialized RunCompiledContext).
type Engine struct {
	core    *core.Engine
	opts    Options
	mapping Mapping

	mu           sync.Mutex
	cache        map[*Graph]*CompiledProgram
	inflight     map[*Graph]*inflightCompile
	gen          uint64 // bumped by SetMapping/Invalidate; stale compiles are discarded
	hits, misses int64
}

// inflightCompile is one in-progress compilation that concurrent
// cache-miss callers of the same graph wait on instead of recompiling.
type inflightCompile struct {
	done chan struct{} // closed when the leader finished
	cp   *CompiledProgram
	err  error
	// cp == nil && err == nil after done means the leader's compile was
	// invalidated mid-flight (SetMapping/Invalidate); waiters retry.
}

// NewEngine returns a caching in-order engine. Options.Model must be
// InOrder (the zero value): the compiled path is specific to
// decentralized replay.
func NewEngine(o Options) (*Engine, error) {
	o, err := normalizeOptions(o)
	if err != nil {
		return nil, err
	}
	if o.Model != InOrder {
		return nil, fmt.Errorf("rio: NewEngine: compiled replay requires the InOrder model, got %v", o.Model)
	}
	c, err := core.New(coreOptions(o))
	if err != nil {
		return nil, err
	}
	m := o.Mapping
	if m == nil {
		m = CyclicMapping(o.Workers)
	}
	return &Engine{
		core:     c,
		opts:     o,
		mapping:  m,
		cache:    make(map[*Graph]*CompiledProgram),
		inflight: make(map[*Graph]*inflightCompile),
	}, nil
}

// RunGraph executes g with kernel k through the compiled fast path,
// compiling (and caching) the graph on first use.
func (e *Engine) RunGraph(g *Graph, k Kernel) error {
	return e.RunGraphContext(context.Background(), g, k)
}

// RunGraphContext is RunGraph with cancellation.
func (e *Engine) RunGraphContext(ctx context.Context, g *Graph, k Kernel) error {
	cp, err := e.compiled(g)
	if err != nil {
		return err
	}
	return e.RunCompiledContext(ctx, cp, k)
}

// Precompile ensures g's compiled program is in the cache, compiling —
// and, with Options.Verify, certifying — it on a miss, and returns it.
// Safe for concurrent use: concurrent first callers of the same graph
// share one compilation (CacheStats records one miss, the waiters count
// as hits). Use it to warm the cache before a run, or to overlap the
// compilation of the next graph with the execution of the current one.
func (e *Engine) Precompile(g *Graph) (*CompiledProgram, error) {
	return e.compiled(g)
}

// testCompileDelay, when non-nil, runs at the start of every off-lock
// compilation. White-box race tests use it to hold a compile open while
// SetMapping/Invalidate land mid-flight; it is never set in production.
var testCompileDelay func(g *Graph)

// compiled returns the cached program for g, compiling on a miss. The
// miss path is also where Options.Preflight analyzes the graph and
// Options.Verify certifies the streams: once per (engine, graph) pair,
// not once per run.
//
// Concurrent misses of the same graph are deduplicated: the first caller
// becomes the leader and compiles outside the lock; the rest park on the
// leader's inflightCompile. A SetMapping or Invalidate racing the
// compile bumps e.gen, and a leader that observes a generation change
// discards its program instead of inserting it — a program compiled
// under the old mapping must never enter the new mapping's cache — and
// retries under the new state, as do its waiters.
func (e *Engine) compiled(g *Graph) (*CompiledProgram, error) {
	for {
		e.mu.Lock()
		if cp, ok := e.cache[g]; ok {
			e.hits++
			e.mu.Unlock()
			return cp, nil
		}
		if f, ok := e.inflight[g]; ok {
			e.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, f.err
			}
			if f.cp != nil {
				e.mu.Lock()
				e.hits++
				e.mu.Unlock()
				return f.cp, nil
			}
			continue // leader's compile was invalidated; retry
		}
		f := &inflightCompile{done: make(chan struct{})}
		e.inflight[g] = f
		gen := e.gen
		mapping := e.mapping
		e.mu.Unlock()

		cp, err := e.compileOne(g, mapping)

		e.mu.Lock()
		delete(e.inflight, g)
		stale := e.gen != gen
		if err == nil && !stale {
			e.misses++
			e.cache[g] = cp
		}
		e.mu.Unlock()
		if err != nil {
			f.err = err
			close(f.done)
			return nil, err
		}
		if stale {
			// Mapping (or the graph itself) changed mid-compile; cp bakes
			// the old state in. Drop it and recompile under the new one.
			close(f.done)
			continue
		}
		f.cp = cp
		close(f.done)
		return cp, nil
	}
}

// compileOne is the off-lock miss path: preflight, compile and certify g
// under one mapping snapshot. It reads only immutable engine state
// (opts, worker count) besides its arguments.
func (e *Engine) compileOne(g *Graph, mapping Mapping) (*CompiledProgram, error) {
	if testCompileDelay != nil {
		testCompileDelay(g)
	}
	if e.opts.Preflight != 0 {
		if err := preflightGraph(g, e.opts, e.core.NumWorkers()); err != nil {
			return nil, err
		}
	}
	var rel [][]bool
	if e.opts.Prune {
		rel = sched.Relevant(g, mapping, e.core.NumWorkers())
	}
	cp, err := stf.Compile(g, mapping, e.core.NumWorkers(), rel)
	if err != nil {
		return nil, err
	}
	if e.opts.Verify {
		if err := certify(g, cp, mapping, nil); err != nil {
			return nil, err
		}
		if e.opts.Resume != nil {
			// The run will prune the checkpointed tasks out (see
			// core.RunCompiledContext); certify what will actually run.
			pruned := stf.PruneCompleted(cp, e.opts.Resume)
			if err := certify(g, pruned, mapping, e.opts.Resume); err != nil {
				return nil, err
			}
		}
	}
	return cp, nil
}

// certify runs translation validation and converts a failed certificate
// into the preflight rejection error.
func certify(g *Graph, cp *CompiledProgram, m Mapping, resume *Checkpoint) error {
	report := verify.Certify(g, cp, verify.Config{Mapping: m, Resume: resume})
	if report.Reject() {
		return &PreflightError{Report: report}
	}
	return nil
}

// Verify statically certifies that cp is a faithful lowering of g under
// mapping m (nil means the cyclic default for cp's worker count):
// coverage and program order, ownership, §3.5 pruning soundness, and the
// vector-clock happens-before certificate over every conflicting access
// pair. resume, when non-nil, declares that cp had the checkpoint's
// completed tasks pruned out (for chained checkpoints, pass the union).
// The returned report is empty when the program is certified; findings
// carry the RIO-V00x codes. Options.Verify runs the same certification
// automatically on every Engine cache miss.
func Verify(g *Graph, cp *CompiledProgram, m Mapping, resume *Checkpoint) *AnalysisReport {
	if m == nil && cp != nil && cp.Workers > 0 {
		m = CyclicMapping(cp.Workers)
	}
	return verify.Certify(g, cp, verify.Config{Mapping: m, Resume: resume})
}

// RunCompiled executes an explicitly pre-compiled program (see Compile)
// with kernel k, bypassing the cache. The program's baked-in mapping
// governs, not the engine's.
func (e *Engine) RunCompiled(cp *CompiledProgram, k Kernel) error {
	return e.RunCompiledContext(context.Background(), cp, k)
}

// RunCompiledContext is RunCompiled with cancellation.
func (e *Engine) RunCompiledContext(ctx context.Context, cp *CompiledProgram, k Kernel) error {
	ctx, cancel := deadlineContext(ctx, e.opts.Timeout)
	defer cancel()
	return e.core.RunCompiledContext(ctx, cp, k)
}

// Run implements Runtime: closure programs take the ordinary (uncached)
// replay path.
func (e *Engine) Run(numData int, prog Program) error {
	return e.RunContext(context.Background(), numData, prog)
}

// RunContext implements Runtime. With Options.Preflight set the program
// is analyzed in record mode (no task body executes) before every run.
func (e *Engine) RunContext(ctx context.Context, numData int, prog Program) error {
	if e.opts.Preflight != 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("rio: run not started: %w", context.Cause(ctx))
		}
		if err := preflightProgram(numData, prog, e.opts, e.core.NumWorkers()); err != nil {
			return err
		}
	}
	ctx, cancel := deadlineContext(ctx, e.opts.Timeout)
	defer cancel()
	return e.core.RunContext(ctx, numData, prog)
}

// SetMapping replaces the engine's task mapping (nil restores the cyclic
// default) and flushes the compiled-program cache: cached streams bake
// the old task→worker assignment in and would execute tasks on the wrong
// workers. Compilations in flight when the mapping changes are discarded
// and redone under the new mapping (the cache generation bump), so a
// miss racing a flush can never insert an old-mapping program into the
// new-mapping cache. Programs compiled explicitly via Compile are
// unaffected. Must not be called while a run is in flight.
func (e *Engine) SetMapping(m Mapping) {
	if m == nil {
		m = CyclicMapping(e.core.NumWorkers())
	}
	e.mu.Lock()
	e.mapping = m
	e.cache = make(map[*Graph]*CompiledProgram)
	e.gen++
	e.mu.Unlock()
	e.core.SetMapping(m)
}

// Invalidate drops g's cached compiled program (use after mutating a
// graph in place; re-adding tasks to a cached graph would otherwise keep
// replaying the stale streams). Like SetMapping it bumps the cache
// generation, so an in-flight compilation of the just-mutated graph is
// discarded rather than cached.
func (e *Engine) Invalidate(g *Graph) {
	e.mu.Lock()
	delete(e.cache, g)
	e.gen++
	e.mu.Unlock()
}

// CacheStats reports the compiled-program cache's hit/miss counters and
// current size.
func (e *Engine) CacheStats() (hits, misses int64, entries int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses, len(e.cache)
}

// Stats implements Runtime.
func (e *Engine) Stats() *Stats { return e.core.Stats() }

// Progress implements Runtime: a snapshot of the always-on run counters,
// callable from any goroutine while a run (closure or compiled) is in
// flight.
func (e *Engine) Progress() Progress { return e.core.Progress() }

// Name implements Runtime. (Before the Engine became the default InOrder
// runtime it reported "rio-compiled"; both its replay paths are the same
// RIO protocol, so it now reports the model name.)
func (e *Engine) Name() string { return "rio" }

// NumWorkers implements Runtime.
func (e *Engine) NumWorkers() int { return e.core.NumWorkers() }
