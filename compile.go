package rio

import (
	"context"
	"fmt"
	"sync"

	"rio/internal/core"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/verify"
)

// CompiledProgram is a recorded task flow lowered into flat per-worker
// instruction streams for one (mapping, workers) pair — the fast replay
// path. Closure replay pays the paper's n·t_r replay term (eq. 2) on
// every run of every worker: the mapping is re-evaluated, the access
// lists re-walked and the divergence guard re-folded each time. A
// compiled program pays that cost once, at Compile time; running it
// interprets pre-resolved micro-ops with no closure dispatch, no
// interface values and no guard (all streams derive from one graph, so
// replay divergence is impossible by construction).
type CompiledProgram = stf.CompiledProgram

// Compile lowers a recorded graph for the given worker count and mapping
// (nil means the cyclic default). With prune set, §3.5 task pruning is
// applied at compile time: tasks irrelevant to a worker are omitted from
// its stream entirely.
//
// The mapping must give every task a static owner in [0, workers);
// partial mappings (SharedWorker) resolve ownership at run time and
// require closure replay. The returned program is immutable, reusable
// across runs and engines of the same worker count, and assumes g is not
// mutated while it is in use.
func Compile(g *Graph, workers int, m Mapping, prune bool) (*CompiledProgram, error) {
	if m == nil {
		if workers < 1 {
			return nil, fmt.Errorf("rio: Compile: workers must be >= 1, got %d", workers)
		}
		m = CyclicMapping(workers)
	}
	var rel [][]bool
	if prune {
		rel = sched.Relevant(g, m, workers)
	}
	return stf.Compile(g, m, workers, rel)
}

// Engine is an in-order (RIO) runtime with a compiled-program cache:
// RunGraph compiles a recorded graph on first sight and replays the
// cached streams on every later run, so iterative workloads (outer
// loops re-running an identical flow) pay the n·t_r unrolling cost once
// per engine instead of once per run. The cache is keyed by graph
// identity (the *Graph pointer); SetMapping flushes it, since the
// streams bake the task→worker assignment in.
//
// Engine also implements Runtime, executing closure programs through the
// ordinary replay path — use that for flows that change between runs or
// need partial (SharedWorker) mappings. Options.Timeout is honored for
// all runs. Options.Preflight is honored on both paths: closure programs
// are analyzed in record mode before every run, recorded graphs once per
// compilation (at the cache miss, so iterative replays pay it once).
// Programs pre-compiled explicitly via Compile bypass preflight — their
// graphs were validated structurally at compile time. Like the other
// runtimes, an Engine is reusable but not concurrently (except Progress,
// which any goroutine may call at any time).
type Engine struct {
	core    *core.Engine
	opts    Options
	mapping Mapping

	mu           sync.Mutex
	cache        map[*Graph]*CompiledProgram
	hits, misses int64
}

// NewEngine returns a caching in-order engine. Options.Model must be
// InOrder (the zero value): the compiled path is specific to
// decentralized replay.
func NewEngine(o Options) (*Engine, error) {
	if o.Model != InOrder {
		return nil, fmt.Errorf("rio: NewEngine: compiled replay requires the InOrder model, got %v", o.Model)
	}
	c, err := core.New(coreOptions(o))
	if err != nil {
		return nil, err
	}
	m := o.Mapping
	if m == nil {
		m = CyclicMapping(o.Workers)
	}
	return &Engine{
		core:    c,
		opts:    o,
		mapping: m,
		cache:   make(map[*Graph]*CompiledProgram),
	}, nil
}

// RunGraph executes g with kernel k through the compiled fast path,
// compiling (and caching) the graph on first use.
func (e *Engine) RunGraph(g *Graph, k Kernel) error {
	return e.RunGraphContext(context.Background(), g, k)
}

// RunGraphContext is RunGraph with cancellation.
func (e *Engine) RunGraphContext(ctx context.Context, g *Graph, k Kernel) error {
	cp, err := e.compiled(g)
	if err != nil {
		return err
	}
	return e.RunCompiledContext(ctx, cp, k)
}

// compiled returns the cached program for g, compiling on a miss. The
// miss path is also where Options.Preflight analyzes the graph: once per
// (engine, graph) pair, not once per run.
func (e *Engine) compiled(g *Graph) (*CompiledProgram, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cp, ok := e.cache[g]; ok {
		e.hits++
		return cp, nil
	}
	if e.opts.Preflight != 0 {
		if err := preflightGraph(g, e.opts, e.core.NumWorkers()); err != nil {
			return nil, err
		}
	}
	var rel [][]bool
	if e.opts.Prune {
		rel = sched.Relevant(g, e.mapping, e.core.NumWorkers())
	}
	cp, err := stf.Compile(g, e.mapping, e.core.NumWorkers(), rel)
	if err != nil {
		return nil, err
	}
	if e.opts.Verify {
		if err := certify(g, cp, e.mapping, nil); err != nil {
			return nil, err
		}
		if e.opts.Resume != nil {
			// The run will prune the checkpointed tasks out (see
			// core.RunCompiledContext); certify what will actually run.
			pruned := stf.PruneCompleted(cp, e.opts.Resume)
			if err := certify(g, pruned, e.mapping, e.opts.Resume); err != nil {
				return nil, err
			}
		}
	}
	e.misses++
	e.cache[g] = cp
	return cp, nil
}

// certify runs translation validation and converts a failed certificate
// into the preflight rejection error.
func certify(g *Graph, cp *CompiledProgram, m Mapping, resume *Checkpoint) error {
	report := verify.Certify(g, cp, verify.Config{Mapping: m, Resume: resume})
	if report.Reject() {
		return &PreflightError{Report: report}
	}
	return nil
}

// Verify statically certifies that cp is a faithful lowering of g under
// mapping m (nil means the cyclic default for cp's worker count):
// coverage and program order, ownership, §3.5 pruning soundness, and the
// vector-clock happens-before certificate over every conflicting access
// pair. resume, when non-nil, declares that cp had the checkpoint's
// completed tasks pruned out (for chained checkpoints, pass the union).
// The returned report is empty when the program is certified; findings
// carry the RIO-V00x codes. Options.Verify runs the same certification
// automatically on every Engine cache miss.
func Verify(g *Graph, cp *CompiledProgram, m Mapping, resume *Checkpoint) *AnalysisReport {
	if m == nil && cp != nil && cp.Workers > 0 {
		m = CyclicMapping(cp.Workers)
	}
	return verify.Certify(g, cp, verify.Config{Mapping: m, Resume: resume})
}

// RunCompiled executes an explicitly pre-compiled program (see Compile)
// with kernel k, bypassing the cache. The program's baked-in mapping
// governs, not the engine's.
func (e *Engine) RunCompiled(cp *CompiledProgram, k Kernel) error {
	return e.RunCompiledContext(context.Background(), cp, k)
}

// RunCompiledContext is RunCompiled with cancellation.
func (e *Engine) RunCompiledContext(ctx context.Context, cp *CompiledProgram, k Kernel) error {
	ctx, cancel := deadlineContext(ctx, e.opts.Timeout)
	defer cancel()
	return e.core.RunCompiledContext(ctx, cp, k)
}

// Run implements Runtime: closure programs take the ordinary (uncached)
// replay path.
func (e *Engine) Run(numData int, prog Program) error {
	return e.RunContext(context.Background(), numData, prog)
}

// RunContext implements Runtime. With Options.Preflight set the program
// is analyzed in record mode (no task body executes) before every run.
func (e *Engine) RunContext(ctx context.Context, numData int, prog Program) error {
	if e.opts.Preflight != 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("rio: run not started: %w", context.Cause(ctx))
		}
		if err := preflightProgram(numData, prog, e.opts, e.core.NumWorkers()); err != nil {
			return err
		}
	}
	ctx, cancel := deadlineContext(ctx, e.opts.Timeout)
	defer cancel()
	return e.core.RunContext(ctx, numData, prog)
}

// SetMapping replaces the engine's task mapping (nil restores the cyclic
// default) and flushes the compiled-program cache: cached streams bake
// the old task→worker assignment in and would execute tasks on the wrong
// workers. Programs compiled explicitly via Compile are unaffected.
func (e *Engine) SetMapping(m Mapping) {
	if m == nil {
		m = CyclicMapping(e.core.NumWorkers())
	}
	e.mu.Lock()
	e.mapping = m
	e.cache = make(map[*Graph]*CompiledProgram)
	e.mu.Unlock()
	e.core.SetMapping(m)
}

// Invalidate drops g's cached compiled program (use after mutating a
// graph in place; re-adding tasks to a cached graph would otherwise keep
// replaying the stale streams).
func (e *Engine) Invalidate(g *Graph) {
	e.mu.Lock()
	delete(e.cache, g)
	e.mu.Unlock()
}

// CacheStats reports the compiled-program cache's hit/miss counters and
// current size.
func (e *Engine) CacheStats() (hits, misses int64, entries int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses, len(e.cache)
}

// Stats implements Runtime.
func (e *Engine) Stats() *Stats { return e.core.Stats() }

// Progress implements Runtime: a snapshot of the always-on run counters,
// callable from any goroutine while a run (closure or compiled) is in
// flight.
func (e *Engine) Progress() Progress { return e.core.Progress() }

// Name implements Runtime. (Before the Engine became the default InOrder
// runtime it reported "rio-compiled"; both its replay paths are the same
// RIO protocol, so it now reports the model name.)
func (e *Engine) Name() string { return "rio" }

// NumWorkers implements Runtime.
func (e *Engine) NumWorkers() int { return e.core.NumWorkers() }
