package rio_test

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rio"
)

// streamModels are the models the streaming tests sweep: the native
// in-order session plus the per-window fallback backends.
var streamModels = []rio.Model{rio.InOrder, rio.Centralized, rio.CentralizedWS, rio.Sequential}

// TestStreamChainAllModels runs the same unbounded chained flow — every
// window reads the accumulator the previous window wrote — through every
// model's streaming backend and checks the final value against the
// sequential recurrence. Cross-window reads are exactly what single-shot
// Run cannot express without re-submitting the whole history.
func TestStreamChainAllModels(t *testing.T) {
	const windows, perWindow = 40, 25
	for _, m := range streamModels {
		rt, err := rio.New(rio.Options{Model: m, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		st, ok := rt.(rio.Streamer)
		if !ok {
			t.Fatalf("%v: rio.New runtime does not implement Streamer", m)
		}
		var acc, want int64
		s, err := st.Stream(1, rio.StreamOptions{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for w := 0; w < windows; w++ {
			for i := 0; i < perWindow; i++ {
				k := int64(w*perWindow + i)
				s.Submit(func() { atomic.AddInt64(&acc, k) }, rio.RW(0))
				want += k
			}
			if err := s.Flush(); err != nil {
				t.Fatalf("%v: flush %d: %v", m, w, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%v: close: %v", m, err)
		}
		if got := atomic.LoadInt64(&acc); got != want {
			t.Errorf("%v: acc = %d, want %d", m, got, want)
		}
		if s.Submitted() != windows*perWindow {
			t.Errorf("%v: Submitted = %d, want %d", m, s.Submitted(), windows*perWindow)
		}
		if s.Windows() != windows {
			t.Errorf("%v: Windows = %d, want %d", m, s.Windows(), windows)
		}
	}
}

// TestStreamWindowParallelism checks that tasks inside one window still run
// in dependency order while independent chains spread across workers: per
// data object the window's tasks must observe strictly increasing values.
func TestStreamWindowParallelism(t *testing.T) {
	const numData, windows, perData = 8, 30, 6
	rt, err := rio.New(rio.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rio.OpenStream(rt, numData, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, numData)
	var bad atomic.Int64
	for w := 0; w < windows; w++ {
		for r := 0; r < perData; r++ {
			for d := 0; d < numData; d++ {
				d := d
				expect := int64(w*perData + r)
				s.Submit(func() {
					if vals[d] != expect {
						bad.Add(1)
					}
					vals[d]++
				}, rio.RW(rio.DataID(d)))
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("flush %d: %v", w, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := bad.Load(); n != 0 {
		t.Errorf("%d tasks observed out-of-order values", n)
	}
	for d, v := range vals {
		if v != windows*perData {
			t.Errorf("data %d: %d increments, want %d", d, v, windows*perData)
		}
	}
}

// TestStreamShapeCache: a periodic pipeline whose window shape repeats must
// compile once and replay the cached program for every later window.
func TestStreamShapeCache(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(4, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	const windows = 20
	for w := 0; w < windows; w++ {
		for d := 0; d < 4; d++ {
			s.Submit(func() { n.Add(1) }, rio.RW(rio.DataID(d)))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries := s.CacheStats()
	if misses != 1 || entries != 1 {
		t.Errorf("shape cache: misses = %d, entries = %d, want 1, 1", misses, entries)
	}
	if hits != windows-1 {
		t.Errorf("shape cache: hits = %d, want %d", hits, windows-1)
	}
	if n.Load() != windows*4 {
		t.Errorf("executed %d tasks, want %d", n.Load(), windows*4)
	}
}

// TestStreamShapeCacheDistinctShapes: windows with different access
// structure must not collide in the shape cache.
func TestStreamShapeCacheDistinctShapes(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(4, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 4)
	// Shape A: write 0, read 0 -> write 1. Shape B: independent writes.
	for w := 0; w < 6; w++ {
		if w%2 == 0 {
			s.Submit(func() { atomic.AddInt64(&vals[0], 1) }, rio.Write(0))
			s.Submit(func() { atomic.AddInt64(&vals[1], atomic.LoadInt64(&vals[0])) }, rio.Read(0), rio.Write(1))
		} else {
			s.Submit(func() { atomic.AddInt64(&vals[2], 1) }, rio.Write(2))
			s.Submit(func() { atomic.AddInt64(&vals[3], 1) }, rio.Write(3))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, misses, entries := s.CacheStats(); misses != 2 || entries != 2 {
		t.Errorf("shape cache: misses = %d, entries = %d, want 2, 2", misses, entries)
	}
}

// TestStreamNoCompile forces closure replay (per-epoch divergence guard
// armed) and checks the shape cache stays untouched.
func TestStreamNoCompile(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(2, rio.StreamOptions{NoCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	for w := 0; w < 10; w++ {
		s.Submit(func() { n.Add(1) }, rio.RW(0))
		s.Submit(func() { n.Add(1) }, rio.RW(1))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if hits, misses, _ := s.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("NoCompile stream used the shape cache: hits=%d misses=%d", hits, misses)
	}
	if n.Load() != 20 {
		t.Errorf("executed %d, want 20", n.Load())
	}
}

// TestStreamAutoFlush: reaching MaxWindow flushes automatically.
func TestStreamAutoFlush(t *testing.T) {
	rt, err := rio.New(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rio.OpenStream(rt, 1, rio.StreamOptions{MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		s.Submit(func() { n.Add(1) }, rio.RW(0))
	}
	if got := s.Windows(); got != 6 { // 48 tasks auto-flushed in 6 windows of 8
		t.Errorf("auto-flushed %d windows, want 6", got)
	}
	if got := s.Pending(); got != 2 {
		t.Errorf("pending = %d, want 2", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Errorf("executed %d, want 50", n.Load())
	}
}

// TestStreamKernelTasks drives the allocation-free Task path.
func TestStreamKernelTasks(t *testing.T) {
	var sum atomic.Int64
	kern := func(tk *rio.Task, _ rio.WorkerID) { sum.Add(int64(tk.I * tk.J)) }
	eng, err := rio.NewEngine(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(2, rio.StreamOptions{Kernel: kern})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for w := 1; w <= 10; w++ {
		s.Task(0, w, 2, 0, rio.RW(0))
		s.Task(0, w, 3, 0, rio.RW(1))
		want += int64(w*2 + w*3)
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != want {
		t.Errorf("kernel sum = %d, want %d", got, want)
	}
}

// TestStreamTaskWithoutKernel: Task on a kernel-less stream poisons it.
func TestStreamTaskWithoutKernel(t *testing.T) {
	rt, _ := rio.New(rio.Options{Workers: 2})
	s, err := rio.OpenStream(rt, 1, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id := s.Task(0, 1, 2, 3, rio.RW(0)); id != -1 {
		t.Errorf("Task without kernel returned id %d, want NoTask", id)
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "Kernel") {
		t.Errorf("Close error = %v, want kernel requirement", err)
	}
}

// TestStreamStickyError: the first failing window poisons the stream;
// later submissions are dropped, and the error surfaces from every
// subsequent Flush, Drain and Close.
func TestStreamStickyError(t *testing.T) {
	for _, m := range streamModels {
		rt, err := rio.New(rio.Options{Model: m, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := rio.OpenStream(rt, 1, rio.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var after atomic.Int64
		s.Submit(func() { panic("boom") }, rio.RW(0))
		// The native backend's Flush is asynchronous (the window executes
		// while the producer records the next one), so the failure may
		// surface here or at the following Drain — both count.
		ferr := s.Flush()
		if derr := s.Drain(); ferr == nil {
			ferr = derr
		}
		if ferr == nil || !strings.Contains(ferr.Error(), "boom") {
			t.Fatalf("%v: flush+drain of panicking window: %v, want boom", m, ferr)
		}
		if id := s.Submit(func() { after.Add(1) }, rio.RW(0)); id != -1 {
			t.Errorf("%v: post-poison Submit returned id %d, want NoTask", m, id)
		}
		if err := s.Drain(); err == nil {
			t.Errorf("%v: Drain on poisoned stream returned nil", m)
		}
		if err := s.Close(); err == nil {
			t.Errorf("%v: Close on poisoned stream returned nil", m)
		}
		if s.Err() == nil {
			t.Errorf("%v: Err on poisoned stream returned nil", m)
		}
		if after.Load() != 0 {
			t.Errorf("%v: task ran after the stream was poisoned", m)
		}
	}
}

// TestStreamUseAfterClose: operations on a closed stream report closure.
func TestStreamUseAfterClose(t *testing.T) {
	rt, _ := rio.New(rio.Options{Workers: 2})
	s, err := rio.OpenStream(rt, 1, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Errorf("second Close: %v", err)
	}
	if id := s.Submit(func() {}, rio.RW(0)); id != -1 {
		t.Errorf("Submit after Close returned id %d", id)
	}
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Flush after Close: %v, want closed error", err)
	}
	if err := s.Drain(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Drain after Close: %v, want closed error", err)
	}
}

// TestStreamBlocksEngineRuns: while a native session is open, ordinary
// runs and a second session are rejected; Close releases the engine.
func TestStreamBlocksEngineRuns(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(1, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(1, func(sub rio.Submitter) {
		sub.Submit(func() {}, rio.RW(0))
	}); err == nil || !strings.Contains(err.Error(), "session") {
		t.Errorf("Run during open session: %v, want session error", err)
	}
	if _, err := eng.Stream(1, rio.StreamOptions{}); err == nil {
		t.Error("second concurrent session accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(1, func(sub rio.Submitter) {
		sub.Submit(func() {}, rio.RW(0))
	}); err != nil {
		t.Errorf("Run after Close: %v", err)
	}
}

// TestStreamWindowTimeout: Options.Timeout bounds each window of a native
// session; an overrunning window poisons the stream with a timeout error.
// Cancellation is cooperative (a task body already running finishes), so
// the slow task sleeps finitely while a second worker's dependency wait is
// the thing the timeout interrupts.
func TestStreamWindowTimeout(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{Workers: 2, Timeout: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(1, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(func() { time.Sleep(250 * time.Millisecond) }, rio.RW(0)) // worker 0
	s.Submit(func() {}, rio.RW(0))                                     // worker 1, waits on task 0
	if err := s.Flush(); err != nil {
		t.Fatalf("flush returned synchronously with %v", err)
	}
	if err := s.Drain(); err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Errorf("Drain = %v, want window timeout", err)
	}
	if cerr := s.Close(); cerr == nil {
		t.Error("Close after timeout returned nil")
	}
}

// TestStreamInvalidAccessPoisons: a malformed submission is caught at
// record time and poisons the stream without executing anything.
func TestStreamInvalidAccessPoisons(t *testing.T) {
	rt, _ := rio.New(rio.Options{Workers: 2})
	s, err := rio.OpenStream(rt, 2, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if id := s.Submit(func() {}, rio.RW(7)); id != -1 {
		t.Errorf("out-of-range access accepted with id %d", id)
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("Close = %v, want out-of-range diagnosis", err)
	}
}

// TestStreamSharedWorkerFallsBackToClosure: a partial mapping cannot bake
// ownership into a compiled shape, so its windows replay through the
// closure path (a negative cache entry) and still execute correctly.
func TestStreamSharedWorkerFallsBackToClosure(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{
		Workers: 2,
		Mapping: func(id rio.TaskID) rio.WorkerID { return rio.SharedWorker },
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(2, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	for w := 0; w < 8; w++ {
		s.Submit(func() { n.Add(1) }, rio.RW(0))
		s.Submit(func() { n.Add(1) }, rio.RW(1))
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 16 {
		t.Errorf("executed %d, want 16", n.Load())
	}
	if hits, misses, _ := s.CacheStats(); misses != 1 || hits != 7 {
		t.Errorf("negative shape entry: hits=%d misses=%d, want 7, 1", hits, misses)
	}
}

// TestOpenStreamOnStreamer routes through the native path when available.
func TestOpenStreamOnStreamer(t *testing.T) {
	eng, err := rio.NewEngine(rio.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := rio.OpenStream(eng, 1, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(func() {}, rio.RW(0))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := s.CacheStats(); misses != 1 {
		t.Errorf("OpenStream on an Engine took the fallback path (misses = %d)", misses)
	}
}

// errorsIsStream sanity-checks sticky errors compose with errors.Is on the
// public sentinel-free API (the error chain carries the cause verbatim).
func TestStreamErrorChain(t *testing.T) {
	sentinel := errors.New("task exploded")
	rt, _ := rio.New(rio.Options{Model: rio.Sequential})
	s, err := rio.OpenStream(rt, 1, rio.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(func() { panic(sentinel) }, rio.RW(0))
	ferr := s.Flush()
	if ferr == nil || !strings.Contains(ferr.Error(), "task exploded") {
		t.Errorf("Flush = %v, want the panic cause in the chain", ferr)
	}
	_ = s.Close()
}
