package rio

import (
	"time"

	"rio/internal/sched"
)

// This file re-exports the static-mapping and task-pruning library
// (internal/sched) through the public API: the in-order execution model
// requires the programmer to provide a TaskID → WorkerID mapping (§3.2),
// and these are the standard ones from the static-scheduling literature.

// BlockMapping splits nTasks tasks into p contiguous chunks.
func BlockMapping(nTasks, p int) Mapping { return sched.Block(nTasks, p) }

// BlockCyclicMapping distributes blocks of blockSize consecutive tasks
// round-robin over p workers.
func BlockCyclicMapping(p, blockSize int) Mapping { return sched.BlockCyclic(p, blockSize) }

// TableMapping returns a mapping backed by a per-task owner table.
func TableMapping(owners []WorkerID) Mapping { return sched.Table(owners) }

// PartialMapping strips the static owner from the tasks selected by
// shared; those tasks are claimed dynamically at run time (SharedWorker).
func PartialMapping(m Mapping, shared func(TaskID) bool) Mapping {
	return sched.Partial(m, shared)
}

// Grid2D is a pr×pc process grid for 2-D block-cyclic tile ownership
// (the ScaLAPACK distribution used for dense linear algebra).
type Grid2D = sched.Grid2D

// NewGrid2D factors p workers into the squarest possible grid.
func NewGrid2D(p int) Grid2D { return sched.NewGrid2D(p) }

// OwnerComputesMapping assigns each task of a recorded graph to the owner
// of the tile it writes (tile coordinates are Task.I/Task.J).
func OwnerComputesMapping(g *Graph, grid Grid2D) Mapping { return sched.OwnerComputes(g, grid) }

// MappingFromTask precomputes a table mapping by inspecting each recorded
// task.
func MappingFromTask(g *Graph, f func(*Task) WorkerID) Mapping { return sched.FromTask(g, f) }

// ValidateMapping checks that m maps every task of g into [0, p).
func ValidateMapping(g *Graph, m Mapping, p int) error { return sched.Validate(g, m, p) }

// MappingHistogram returns the per-worker task counts of a mapping — a
// load-balance diagnostic.
func MappingHistogram(g *Graph, m Mapping, p int) []int { return sched.Histogram(g, m, p) }

// RankVictims ranks the workers of a mapping as steal victims for
// StealPolicy.Victims: workers owning at least one task, by descending
// owned-task count (ties by ascending worker ID), so thieves probe the
// most overloaded workers first.
func RankVictims(g *Graph, m Mapping, p int) []WorkerID { return sched.RankVictims(g, m, p) }

// RelevantTasks computes, for each worker, which tasks it must process
// (execute or declare) under mapping m — the task-pruning analysis of
// §3.5. Feed the result to PrunedReplay.
func RelevantTasks(g *Graph, m Mapping, p int) [][]bool { return sched.Relevant(g, m, p) }

// PrunedReplay returns a Program replaying only the tasks relevant to the
// executing worker. Pruning preserves correctness because a worker still
// sees every access to every data object it synchronizes on; it removes
// the decentralized model's per-worker unrolling overhead for everything
// else.
func PrunedReplay(g *Graph, k Kernel, relevant [][]bool) Program {
	return sched.PrunedReplay(g, k, relevant)
}

// PruneRatio reports the fraction of per-worker bookkeeping eliminated by
// pruning (0 = nothing, →1 = almost everything).
func PruneRatio(relevant [][]bool) float64 { return sched.PruneRatio(relevant) }

// AutoMapResult is a computed static schedule: mapping, predicted makespan
// and per-worker loads.
type AutoMapResult = sched.AutoMapResult

// AutoMapping computes a static mapping for a recorded graph by list
// scheduling with per-task duration estimates (nil = unit costs) — the
// "automatic computation of static mappings" the paper cites as an
// alternative to programmer-supplied ones.
func AutoMapping(g *Graph, p int, cost func(*Task) time.Duration) *AutoMapResult {
	return sched.AutoMap(g, p, cost)
}

// WeightCost estimates task durations from the recorded weight in Task.K,
// scaled by perUnit — for use with AutoMapping on weighted workloads.
func WeightCost(perUnit time.Duration) func(*Task) time.Duration {
	return sched.WeightCost(perUnit)
}
