// Package rio is a task-based runtime system for shared-memory machines
// implementing the Sequential Task Flow (STF) programming model under three
// interchangeable execution models, following Castes, Agullo, Aumage and
// Saillard, "Decentralized in-order execution of a sequential task-based
// code for shared-memory architectures" (Inria RR-9450, 2022):
//
//   - InOrder — the paper's contribution: a decentralized, in-order engine
//     in which every worker replays the whole task flow and a static
//     mapping assigns each task to its executing worker. Per-task overhead
//     is a handful of private-memory writes, making very fine-grained
//     tasks profitable.
//   - Centralized — the conventional baseline: a master thread unrolls the
//     task flow, derives dependencies and dispatches ready tasks to worker
//     queues (out-of-order execution, optional work stealing).
//   - Sequential — tasks run inline in submission order; the semantic
//     reference of the STF model.
//
// A program is written once against the Submitter interface and can be run
// unchanged under any engine:
//
//	eng, _ := rio.New(rio.Options{Workers: 4, Mapping: rio.CyclicMapping(4)})
//	err := eng.Run(numData, func(s rio.Submitter) {
//	    s.Submit(func() { ... }, rio.Read(x), rio.Write(y))
//	})
//
// The decentralized engine replays the program once per worker, so programs
// must be deterministic: every replay must submit the same tasks with the
// same accesses in the same order.
package rio

import (
	"context"
	"fmt"
	"time"

	"rio/internal/analyze"
	"rio/internal/centralized"
	"rio/internal/core"
	"rio/internal/sequential"
	"rio/internal/stf"
	"rio/internal/trace"
)

// Re-exported programming-model types; see package internal/stf.
type (
	// TaskID is a task's position in the task flow.
	TaskID = stf.TaskID
	// WorkerID identifies a worker.
	WorkerID = stf.WorkerID
	// DataID identifies a runtime-managed data object.
	DataID = stf.DataID
	// AccessMode declares how a task accesses a data object.
	AccessMode = stf.AccessMode
	// Access pairs a data object with an access mode.
	Access = stf.Access
	// Task is a recorded task (allocation-free submission path).
	Task = stf.Task
	// Kernel executes recorded tasks.
	Kernel = stf.Kernel
	// TaskFunc is a closure task body.
	TaskFunc = stf.TaskFunc
	// Submitter receives the task flow of a Program.
	Submitter = stf.Submitter
	// Program is a sequential task-based code.
	Program = stf.Program
	// Mapping statically assigns tasks to workers (required by the
	// in-order engine).
	Mapping = stf.Mapping
	// Graph is a recorded task flow.
	Graph = stf.Graph
	// Stats is the per-run time decomposition (task / idle / runtime).
	Stats = trace.Stats
	// Efficiency is the e_g·e_l·e_p·e_r decomposition of §2.3.
	Efficiency = trace.Efficiency
	// Hooks installs lifecycle callbacks on an engine (Options.Hooks):
	// run start/end, task start/end, dependency-wait start/end. A nil
	// Hooks pointer — the default — costs the hot path one pointer test
	// per site; see the field docs for the exact firing contract.
	Hooks = stf.Hooks
	// Progress is a mid-run snapshot of a run's always-on counters
	// (Runtime.Progress): per-worker executed/declared/claimed tallies,
	// the task each worker is executing right now, and a wait-time
	// histogram. Safe to take from any goroutine while a run is in flight.
	Progress = trace.Progress
	// WorkerProgress is one worker's slice of a Progress snapshot.
	WorkerProgress = trace.WorkerProgress
	// WaitPolicy selects how waits behave once busy-polling has not
	// resolved them (Options.WaitPolicy): see WaitAdaptive, WaitSpin,
	// WaitPark, WaitSleep.
	WaitPolicy = stf.WaitPolicy
	// StealPolicy enables bounded, dependency-safe work stealing in the
	// in-order engine (Options.Steal): an idle worker executes a victim's
	// next in-order task when the per-data counter state proves all of its
	// accesses available. The zero value of every field selects defaults;
	// a nil *StealPolicy (the default) keeps the paper's pure static model
	// at the cost of one pointer test per task.
	StealPolicy = stf.StealPolicy

	// StallError is the stall watchdog's structured diagnosis: no task
	// completed for Options.StallTimeout and the error names which
	// workers are stuck on which tasks and data accesses (use errors.As).
	StallError = stf.StallError
	// StalledWorker is one blocked worker inside a StallError.
	StalledWorker = stf.StalledWorker
	// BusyWorker is one task-executing worker inside a StallError.
	BusyWorker = stf.BusyWorker
	// StallKind distinguishes a global deadlock from a stuck task.
	StallKind = stf.StallKind
	// DivergenceError reports that the in-order engine's workers did not
	// replay the same task flow (the program is nondeterministic).
	DivergenceError = stf.DivergenceError

	// RetryPolicy configures transient-fault retry of task bodies with
	// write-set rollback (Options.Retry).
	RetryPolicy = stf.RetryPolicy
	// Snapshotter captures and restores data objects so a failed task's
	// write-set can be rolled back before a retry (Options.Snapshots).
	Snapshotter = stf.Snapshotter
	// SnapshotFuncs adapts two closures into a Snapshotter.
	SnapshotFuncs = stf.SnapshotFuncs
	// TaskFailure is the terminal failure of one task after retry was
	// exhausted or declined (use errors.As).
	TaskFailure = stf.TaskFailure
	// Checkpoint is the dependency-closed completed-task frontier of an
	// aborted run; pass it to Options.Resume to skip those tasks.
	Checkpoint = stf.Checkpoint
	// PartialResult describes how far an aborted run got: completed,
	// failed and skipped task sets.
	PartialResult = stf.PartialResult
	// PartialError wraps the cause of an aborted checkpointing run
	// together with its PartialResult (use errors.As).
	PartialError = stf.PartialError

	// PreflightPasses selects the static-analysis passes Options.Preflight
	// runs before every Run (see internal/analyze).
	PreflightPasses = analyze.Passes
	// PreflightError is returned by Run when preflight analysis rejects
	// the program before any worker starts; its Report field carries every
	// finding (use errors.As).
	PreflightError = analyze.PreflightError
	// AnalysisReport is the full outcome of a preflight analysis.
	AnalysisReport = analyze.Report
	// Finding is one diagnostic of a preflight analysis.
	Finding = analyze.Finding
)

// Preflight pass selectors; combine with | or use PreflightAll.
const (
	// PreflightAccess lints access declarations: malformed or duplicate
	// accesses, reads of never-written data, dead writes, unused data.
	PreflightAccess = analyze.PassAccess
	// PreflightMapping validates the static mapping: out-of-range
	// workers, load imbalance, and (in-order engine) mapping-induced
	// serialization of the dependency graph.
	PreflightMapping = analyze.PassMapping
	// PreflightDeterminism replays the program several times in record
	// mode and rejects structurally diverging replays — the static
	// complement of the runtime divergence guard.
	PreflightDeterminism = analyze.PassDeterminism
	// PreflightSpec model-checks small instances against the formal
	// specification (internal/spec); larger instances are skipped.
	PreflightSpec = analyze.PassSpec
	// PreflightRetry lints fault-tolerance configuration: with a retry
	// policy installed, every task's written data must be idempotent or
	// snapshottable to be retryable (RIO-R001), and oversized per-attempt
	// snapshots are flagged (RIO-R002). No-op without Options.Retry.
	PreflightRetry = analyze.PassRetry
	// PreflightAll runs every pass.
	PreflightAll = analyze.PassAll
)

// Stall kinds reported by the watchdog.
const (
	// Deadlock: every live worker blocked in a dependency wait, nothing
	// completing — the signature of a divergent replay.
	Deadlock = stf.Deadlock
	// StuckTask: a task body overran the watchdog threshold while nothing
	// else completed.
	StuckTask = stf.StuckTask
)

// Access-mode constants.
const (
	// ReadOnly accesses wait for all previous writes.
	ReadOnly = stf.ReadOnly
	// WriteOnly accesses wait for all previous reads and writes.
	WriteOnly = stf.WriteOnly
	// ReadWrite accesses combine both.
	ReadWrite = stf.ReadWrite
	// Reduction accesses commute with each other (a run of consecutive
	// reductions is ordered like one write against its surroundings, but
	// its members may execute in any order, serialized by the engine) —
	// the §3.4 extension beyond strict sequential consistency.
	Reduction = stf.Reduction
)

// Wait policies (Options.WaitPolicy). They apply to the in-order engine's
// dependency waits and to the centralized engine's ready-queue pops; the
// sequential engine never waits.
const (
	// WaitAdaptive (the default) busy-polls with a feedback-driven spin
	// budget, yields, then parks on an event gate until the dependency is
	// published. The all-round choice.
	WaitAdaptive = stf.WaitAdaptive
	// WaitSpin never blocks: lowest wake-up latency, burns a hardware
	// thread per waiter. For workers pinned 1:1 to otherwise idle cores.
	WaitSpin = stf.WaitSpin
	// WaitPark parks right after the spin budget: lowest CPU use, one
	// wake per dependency hand-off. For heavy contention or
	// oversubscription.
	WaitPark = stf.WaitPark
	// WaitSleep is the legacy spin → yield → exponential-sleep ladder,
	// kept for comparison (`rio-bench sync`).
	WaitSleep = stf.WaitSleep
)

// Read declares a read-only access to d.
func Read(d DataID) Access { return stf.R(d) }

// Write declares a write-only access to d.
func Write(d DataID) Access { return stf.W(d) }

// RW declares a read-write access to d.
func RW(d DataID) Access { return stf.RW(d) }

// Reduce declares a commutative reduction access to d.
func Reduce(d DataID) Access { return stf.Red(d) }

// Model selects an execution model.
type Model int

const (
	// InOrder is the decentralized in-order model (the paper's RIO).
	InOrder Model = iota
	// Centralized is the master/worker out-of-order baseline.
	Centralized
	// CentralizedWS is Centralized with per-worker queues and work
	// stealing.
	CentralizedWS
	// CentralizedPrio is Centralized with deepest-level-first dispatch
	// (an online critical-path heuristic).
	CentralizedPrio
	// Sequential runs tasks inline on the caller.
	Sequential
)

// String names the model as used in reports.
func (m Model) String() string {
	switch m {
	case InOrder:
		return "rio"
	case Centralized:
		return "centralized-fifo"
	case CentralizedWS:
		return "centralized-ws"
	case CentralizedPrio:
		return "centralized-prio"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// TuningOptions groups the wait-tuning knobs (Options.Tuning). They
// control how the engines behave once busy-polling has not resolved a wait;
// see the README's "Tuning" section for guidance. The zero value means
// engine defaults throughout.
type TuningOptions struct {
	// WaitPolicy selects how the engines wait — the in-order engine for
	// unresolved dependencies, the centralized engine for ready tasks:
	// WaitAdaptive (the default), WaitSpin, WaitPark or WaitSleep. The
	// sequential engine ignores it.
	WaitPolicy WaitPolicy
	// SpinLimit is the busy-poll budget before a wait escalates per
	// WaitPolicy (0 = default). Under WaitAdaptive it seeds the in-order
	// engine's per-worker adaptive budget.
	SpinLimit int
	// YieldLimit is the number of runtime.Gosched-polling iterations
	// between the spin phase and the policy's slow phase (0 = default).
	// In-order engine only.
	YieldLimit int
	// SleepInit and SleepMax bound the WaitSleep ladder's exponential
	// sleeps; SleepMax also seeds a parked waiter's failsafe timeout.
	// In-order engine only.
	SleepInit time.Duration
	SleepMax  time.Duration
}

// FaultOptions groups the fault-tolerance knobs (Options.Fault): retry
// with write-set rollback, checkpointing and resume. The zero value
// disables all of it.
type FaultOptions struct {
	// Retry installs transient-fault retry of task bodies with write-set
	// rollback (see Options.Retry for the full contract). Implies
	// Checkpoint.
	Retry *RetryPolicy
	// Snapshots captures and restores data objects for retry rollback.
	Snapshots Snapshotter
	// Resume skips the tasks recorded as completed in a previous run's
	// Checkpoint.
	Resume *Checkpoint
	// Checkpoint enables completed-task tracking so a failed run returns a
	// *PartialError carrying a resumable frontier. Implied by Retry.
	Checkpoint bool
}

// Options configures an engine.
//
// The wait-tuning and fault-tolerance knobs live in the Tuning and Fault
// sub-structs. Their top-level twins (WaitPolicy, SpinLimit, YieldLimit,
// SleepInit, SleepMax, Retry, Snapshots, Resume, Checkpoint) are kept as
// aliases for compatibility with existing callers; the two spellings are
// merged when an engine is built, and setting the same knob to different
// values in both places is a construction error rather than a silent
// preference. New code should use the grouped fields.
type Options struct {
	// Model selects the execution model (InOrder by default).
	Model Model
	// Workers is the number of threads. InOrder: all execute tasks.
	// Centralized: one is the master, Workers-1 execute. Ignored by
	// Sequential.
	Workers int
	// Mapping assigns tasks to workers. Required semantics differ by
	// model: InOrder treats it as the binding static mapping (defaults to
	// cyclic); Centralized uses it as a locality hint for work-stealing
	// queues; Sequential ignores it.
	Mapping Mapping
	// Window bounds in-flight tasks in the centralized engine (0 =
	// unbounded).
	Window int
	// Steal enables bounded, dependency-safe work stealing in the
	// in-order engine: an idle worker (parked or past its spin budget, or
	// done with its own replay) executes another worker's next in-order
	// task when the shared per-data counters prove every access available,
	// claiming it with one atomic CAS. Execution remains sequentially
	// consistent — readiness is derived from the same registered counter
	// values every worker's replay computes — while skewed mappings stop
	// serializing on the hot worker (see the RIO-M010 preflight finding
	// and sched-ranked Victims via RankVictims). nil (the default)
	// disables stealing and costs the hot path one pointer test per task.
	// Other models ignore it (CentralizedWS has its own queue stealing).
	Steal *StealPolicy
	// Tuning groups the wait-tuning knobs — the preferred spelling of
	// WaitPolicy, SpinLimit, YieldLimit, SleepInit and SleepMax.
	Tuning TuningOptions
	// Fault groups the fault-tolerance knobs — the preferred spelling of
	// Retry, Snapshots, Resume and Checkpoint.
	Fault FaultOptions
	// WaitPolicy is the flat alias of Tuning.WaitPolicy, kept for
	// compatibility; prefer the grouped field in new code.
	WaitPolicy WaitPolicy
	// SpinLimit is the flat alias of Tuning.SpinLimit.
	SpinLimit int
	// YieldLimit, SleepInit and SleepMax are the flat aliases of their
	// Tuning counterparts.
	YieldLimit int
	SleepInit  time.Duration
	SleepMax   time.Duration
	// NoAccounting disables fine-grained time-stamping (wall time and
	// task counts remain available).
	NoAccounting bool
	// Timeout, when positive, bounds every Run/RunContext call: the run
	// is canceled when the deadline expires, as if the caller had passed
	// a context with that timeout. A convenience over RunContext.
	Timeout time.Duration
	// StallTimeout arms the in-order engine's stall watchdog: when no
	// task completes for this long and the workers are provably
	// deadlocked (all blocked in dependency waits — the signature of a
	// nondeterministic replay) or stuck inside one task body, the run
	// aborts with a StallError naming the stuck tasks and data accesses.
	// 0 (the default) disables the watchdog; load imbalance never trips
	// it. Other engines ignore it.
	StallTimeout time.Duration
	// NoGuard disables the in-order engine's replay-divergence guard
	// (a few private arithmetic ops per task that detect nondeterministic
	// programs; see DESIGN.md "Failure semantics"). Other engines have no
	// replay to guard and ignore it.
	NoGuard bool
	// Prune applies §3.5 task pruning when a caching Engine (NewEngine)
	// compiles a graph: each worker's instruction stream omits the tasks
	// irrelevant to it (tasks it neither executes nor shares data with),
	// shrinking the replay work below n micro-op groups per worker. Other
	// runtimes ignore it; explicit Compile calls take pruning as an
	// argument instead.
	Prune bool
	// Retry installs transient-fault tolerance: a task body that panics
	// (or fails per Retry.Classify) has its write-set rolled back via
	// Snapshots and is re-executed after a deterministic backoff, up to
	// Retry.MaxAttempts times. Tasks whose written data is neither
	// idempotent (see Access.AsIdempotent) nor snapshottable get exactly
	// one attempt. nil (the default) disables retry and costs the hot
	// path one pointer test per task. Retry implies Checkpoint. Flat alias
	// of Fault.Retry; prefer the grouped field in new code.
	Retry *RetryPolicy
	// Snapshots captures and restores data objects for retry rollback.
	// Without it, only tasks whose writes are all idempotent are retried.
	// Flat alias of Fault.Snapshots.
	Snapshots Snapshotter
	// Resume skips the tasks recorded as completed in a previous run's
	// Checkpoint (obtained from a PartialError); their effects must still
	// be present in the data objects. The program (or graph) must be the
	// one that produced the checkpoint. Flat alias of Fault.Resume.
	Resume *Checkpoint
	// Checkpoint enables completed-task tracking: a failed run returns a
	// *PartialError whose PartialResult carries the dependency-closed
	// completed frontier for Resume. Implied by Retry. Flat alias of
	// Fault.Checkpoint (the two are OR-ed).
	Checkpoint bool
	// Hooks optionally installs lifecycle callbacks fired by every engine:
	// run start/end, task start/end and dependency-wait start/end. The
	// callbacks run on the worker goroutines and must be concurrency-safe;
	// nil (the default) costs the hot path one pointer test per site.
	Hooks *Hooks
	// Preflight, when non-zero, runs the selected static-analysis passes
	// (internal/analyze) over the program in record mode before every
	// Run: the program is recorded once — no task body executes — and
	// findings of Warning or Error severity reject the run with a
	// *PreflightError before any worker starts. Defects the engines
	// would otherwise surface mid-run (nondeterministic replays, broken
	// or serializing mappings, malformed accesses) are caught at
	// submission time instead. See PreflightAccess … PreflightAll.
	Preflight PreflightPasses
	// Verify runs translation validation (internal/verify) on every
	// compiled-program cache miss of a caching Engine: the freshly
	// compiled streams — and, with Resume set, their checkpoint-pruned
	// form — are statically certified against the recorded graph
	// (coverage, order, ownership, pruning soundness, happens-before)
	// before they enter the cache. A failed certificate rejects the run
	// with a *PreflightError carrying RIO-V00x findings. The cost is paid
	// once per (engine, graph) pair; cache hits are untouched. Other
	// runtimes and explicitly pre-compiled programs (Compile /
	// RunCompiled) ignore it — certify those with rio.Verify directly.
	Verify bool
}

// Runtime executes STF programs under one execution model.
type Runtime interface {
	// Run executes prog over numData data objects and blocks until the
	// whole task flow has executed. It returns an error — rather than
	// hanging or corrupting data — when a task panics, a protocol
	// violation is detected (out-of-range mapping, non-monotonic IDs),
	// the replay diverges across workers (in-order engine), or the stall
	// watchdog gives up on the run (see Options.StallTimeout).
	Run(numData int, prog Program) error
	// RunContext is Run with cancellation: when ctx is canceled or its
	// deadline expires, workers blocked inside the runtime unwind
	// promptly, no further tasks start, and the call returns an error
	// wrapping ctx's cause. Cancellation is cooperative — task bodies
	// already running finish first.
	RunContext(ctx context.Context, numData int, prog Program) error
	// Stats returns the time decomposition of the last Run.
	Stats() *Stats
	// Progress snapshots the current (or most recent) run's always-on
	// counters. Safe to call from any goroutine at any time, including
	// while a run is in flight; before the first run it returns a zero
	// Progress.
	Progress() Progress
	// Name identifies the engine ("rio", "centralized-fifo", ...).
	Name() string
	// NumWorkers returns the number of threads the engine uses.
	NumWorkers() int
}

// GraphRunner is implemented by runtimes that execute recorded graphs
// directly through the compiled fast path (per-worker instruction streams,
// cached per graph). The in-order Engine implements it; New returns a
// GraphRunner whenever Options.Model is InOrder.
type GraphRunner interface {
	// RunGraph executes g with kernel k, compiling (and caching) the
	// graph's per-worker instruction streams on first use.
	RunGraph(g *Graph, k Kernel) error
	// RunGraphContext is RunGraph with cancellation.
	RunGraphContext(ctx context.Context, g *Graph, k Kernel) error
}

// New builds a Runtime for the given options. With Model InOrder (the
// default) the returned Runtime is a caching *Engine: it additionally
// implements GraphRunner and Streamer, so recorded graphs can take the
// compiled fast path and unbounded flows the streaming path without a
// separate NewEngine call —
//
//	rt, _ := rio.New(rio.Options{Workers: 4})
//	if gr, ok := rt.(rio.GraphRunner); ok {
//	    err = gr.RunGraph(g, kernel)
//	}
//
// Every model's Runtime implements Streamer (the non-in-order models
// through a per-window fallback), and the Timeout/Preflight decorators
// preserve whatever optional interfaces the wrapped runtime offers — a
// type assertion that succeeds on a bare engine succeeds on its wrapped
// form too.
func New(o Options) (Runtime, error) {
	o, err := normalizeOptions(o)
	if err != nil {
		return nil, err
	}
	if o.Model == InOrder {
		// The caching engine applies Timeout and Preflight itself, across
		// the closure, compiled and streaming paths.
		return NewEngine(o)
	}
	rt, err := newEngine(o)
	if err != nil {
		return nil, err
	}
	if o.Timeout > 0 {
		rt = withDeadline(rt, o.Timeout)
	}
	// Stream windows execute on the deadline-wrapped form (each window is
	// one bounded run) but bypass preflight, whose single-window view would
	// misdiagnose cross-window dataflow; see withStreaming.
	streamBase := rt
	if o.Preflight != 0 {
		rt = withPreflight(rt, o)
	}
	return withStreaming(rt, streamBase), nil
}

// normalizeOptions merges the grouped option sub-structs (Options.Tuning,
// Options.Fault) with their flat aliases into one canonical form: after it
// returns, each knob's two spellings agree, so the internal consumers
// (coreOptions, the centralized branch, preflightConfig) keep reading the
// flat fields. A knob set to conflicting values in both places is an error
// — silently preferring one spelling would make the other a no-op.
// Idempotent, so New and NewEngine may both apply it.
func normalizeOptions(o Options) (Options, error) {
	// Wait-tuning knobs. Zero means "unset" for all of them (the engines
	// already treat zero as "use the default").
	if o.Tuning.WaitPolicy != 0 && o.WaitPolicy != 0 && o.Tuning.WaitPolicy != o.WaitPolicy {
		return o, optionConflict("WaitPolicy", "Tuning.WaitPolicy")
	}
	if o.Tuning.WaitPolicy != 0 {
		o.WaitPolicy = o.Tuning.WaitPolicy
	}
	o.Tuning.WaitPolicy = o.WaitPolicy
	if o.Tuning.SpinLimit != 0 && o.SpinLimit != 0 && o.Tuning.SpinLimit != o.SpinLimit {
		return o, optionConflict("SpinLimit", "Tuning.SpinLimit")
	}
	if o.Tuning.SpinLimit != 0 {
		o.SpinLimit = o.Tuning.SpinLimit
	}
	o.Tuning.SpinLimit = o.SpinLimit
	if o.Tuning.YieldLimit != 0 && o.YieldLimit != 0 && o.Tuning.YieldLimit != o.YieldLimit {
		return o, optionConflict("YieldLimit", "Tuning.YieldLimit")
	}
	if o.Tuning.YieldLimit != 0 {
		o.YieldLimit = o.Tuning.YieldLimit
	}
	o.Tuning.YieldLimit = o.YieldLimit
	if o.Tuning.SleepInit != 0 && o.SleepInit != 0 && o.Tuning.SleepInit != o.SleepInit {
		return o, optionConflict("SleepInit", "Tuning.SleepInit")
	}
	if o.Tuning.SleepInit != 0 {
		o.SleepInit = o.Tuning.SleepInit
	}
	o.Tuning.SleepInit = o.SleepInit
	if o.Tuning.SleepMax != 0 && o.SleepMax != 0 && o.Tuning.SleepMax != o.SleepMax {
		return o, optionConflict("SleepMax", "Tuning.SleepMax")
	}
	if o.Tuning.SleepMax != 0 {
		o.SleepMax = o.Tuning.SleepMax
	}
	o.Tuning.SleepMax = o.SleepMax

	// Fault knobs. Retry and Resume are pointers, comparable — the same
	// pointer in both places is not a conflict. Snapshotter is an
	// interface whose implementations (SnapshotFuncs) need not be
	// comparable, so any doubly-set Snapshots is rejected outright.
	if o.Fault.Retry != nil && o.Retry != nil && o.Fault.Retry != o.Retry {
		return o, optionConflict("Retry", "Fault.Retry")
	}
	if o.Fault.Retry != nil {
		o.Retry = o.Fault.Retry
	}
	o.Fault.Retry = o.Retry
	if o.Fault.Snapshots != nil && o.Snapshots != nil {
		return o, optionConflict("Snapshots", "Fault.Snapshots")
	}
	if o.Fault.Snapshots != nil {
		o.Snapshots = o.Fault.Snapshots
	}
	// The flat field is the canonical home; unlike the other knobs it is
	// not mirrored back, because a second normalization pass (New →
	// NewEngine) must not see two copies of a possibly-uncomparable value
	// and call them a conflict.
	o.Fault.Snapshots = nil
	if o.Fault.Resume != nil && o.Resume != nil && o.Fault.Resume != o.Resume {
		return o, optionConflict("Resume", "Fault.Resume")
	}
	if o.Fault.Resume != nil {
		o.Resume = o.Fault.Resume
	}
	o.Fault.Resume = o.Resume
	o.Checkpoint = o.Checkpoint || o.Fault.Checkpoint
	o.Fault.Checkpoint = o.Checkpoint
	return o, nil
}

func optionConflict(flat, grouped string) error {
	return fmt.Errorf("rio: Options.%s and Options.%s are set to different values; set one (the flat field is an alias of the grouped one)", flat, grouped)
}

// coreOptions is the single translation of the public Options into the
// in-order engine's — shared by New and NewEngine so every option (Hooks
// included) is wired exactly once.
func coreOptions(o Options) core.Options {
	return core.Options{
		Workers:      o.Workers,
		Mapping:      o.Mapping,
		Steal:        o.Steal,
		NoAccounting: o.NoAccounting,
		WaitPolicy:   o.WaitPolicy,
		SpinLimit:    o.SpinLimit,
		YieldLimit:   o.YieldLimit,
		SleepInit:    o.SleepInit,
		SleepMax:     o.SleepMax,
		StallTimeout: o.StallTimeout,
		NoGuard:      o.NoGuard,
		Hooks:        o.Hooks,
		Retry:        o.Retry,
		Snapshots:    o.Snapshots,
		Resume:       o.Resume,
		Checkpoint:   o.Checkpoint,
	}
}

func newEngine(o Options) (Runtime, error) {
	switch o.Model {
	case InOrder:
		return core.New(coreOptions(o))
	case Centralized, CentralizedWS, CentralizedPrio:
		kind := centralized.FIFO
		switch o.Model {
		case CentralizedWS:
			kind = centralized.WorkStealing
		case CentralizedPrio:
			kind = centralized.Priority
		}
		return centralized.New(centralized.Options{
			Workers:      o.Workers,
			Scheduler:    kind,
			Window:       o.Window,
			Hint:         o.Mapping,
			NoAccounting: o.NoAccounting,
			WaitPolicy:   o.WaitPolicy,
			SpinLimit:    o.SpinLimit,
			Hooks:        o.Hooks,
			Retry:        o.Retry,
			Snapshots:    o.Snapshots,
			Resume:       o.Resume,
			Checkpoint:   o.Checkpoint,
		})
	case Sequential:
		return sequential.New(sequential.Options{
			NoAccounting: o.NoAccounting, Hooks: o.Hooks,
			Retry: o.Retry, Snapshots: o.Snapshots,
			Resume: o.Resume, Checkpoint: o.Checkpoint,
		}), nil
	}
	return nil, fmt.Errorf("rio: unknown model %v", o.Model)
}

// deadlineContext applies an Options.Timeout to ctx: with a positive
// timeout it derives a deadline context (composing with any deadline ctx
// already carries — the earlier one wins), otherwise it returns ctx
// unchanged with a no-op cancel. The single implementation behind both
// the deadlineRuntime decorator and the caching Engine.
func deadlineContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}

// preflightConfig assembles the static-analysis configuration for the
// given options, mirroring the in-order engine's default mapping so the
// mapping pass analyzes what will actually run.
func preflightConfig(o Options, workers int) analyze.Config {
	cfg := analyze.Config{
		Passes:  o.Preflight,
		Workers: workers,
		Mapping: o.Mapping,
		InOrder: o.Model == InOrder,
		Retry:   o.Retry != nil,
	}
	if o.Snapshots != nil {
		cfg.Snapshottable = o.Snapshots.CanSnapshot
	}
	if cfg.Mapping == nil && o.Model == InOrder {
		cfg.Mapping = CyclicMapping(workers)
	}
	return cfg
}

// preflightProgram records prog (no task body executes) and runs the
// selected passes; a Warning-or-worse finding rejects the run with a
// *PreflightError.
func preflightProgram(numData int, prog Program, o Options, workers int) error {
	report, _ := analyze.Program(numData, prog, preflightConfig(o, workers))
	if report.Reject() {
		return &PreflightError{Report: report}
	}
	return nil
}

// preflightGraph runs the selected passes over an already-recorded graph.
func preflightGraph(g *Graph, o Options, workers int) error {
	report := analyze.Graph(g, preflightConfig(o, workers))
	if report.Reject() {
		return &PreflightError{Report: report}
	}
	return nil
}

// deadlineRuntime bounds every run of the wrapped engine with
// Options.Timeout.
type deadlineRuntime struct {
	Runtime
	timeout time.Duration
}

func (d *deadlineRuntime) Run(numData int, prog Program) error {
	return d.RunContext(context.Background(), numData, prog)
}

func (d *deadlineRuntime) RunContext(ctx context.Context, numData int, prog Program) error {
	ctx, cancel := deadlineContext(ctx, d.timeout)
	defer cancel()
	return d.Runtime.RunContext(ctx, numData, prog)
}

// preflightRuntime runs the selected static-analysis passes over the
// program before handing it to the wrapped engine. Recording executes no
// task body, so a rejected program has no side effects beyond those of
// the submission closure itself.
type preflightRuntime struct {
	Runtime
	opts Options
}

func (p *preflightRuntime) Run(numData int, prog Program) error {
	return p.RunContext(context.Background(), numData, prog)
}

func (p *preflightRuntime) RunContext(ctx context.Context, numData int, prog Program) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("rio: run not started: %w", context.Cause(ctx))
	}
	if err := preflightProgram(numData, prog, p.opts, p.Runtime.NumWorkers()); err != nil {
		return err
	}
	return p.Runtime.RunContext(ctx, numData, prog)
}

// CyclicMapping maps task id to worker id mod p — the default mapping of
// the in-order engine.
func CyclicMapping(p int) Mapping {
	return func(id TaskID) WorkerID { return WorkerID(id % TaskID(p)) }
}

// SharedWorker marks a task as having no static owner in a partial
// mapping: the in-order engine assigns it dynamically to the first worker
// whose replay reaches it (one compare-and-swap), trading a little shared
// state for load balancing — the hybrid the paper's conclusion sketches.
const SharedWorker = stf.SharedWorker

// Replay returns a Program submitting every task of g with kernel k.
func Replay(g *Graph, k Kernel) Program { return stf.Replay(g, k) }

// RecordProgram captures a program's task-flow structure (no task bodies
// run) for analysis: dependency derivation, pruning, automatic mapping,
// DOT/JSON export.
func RecordProgram(numData int, prog Program) (*Graph, error) {
	return stf.Record(numData, prog)
}

// Decompose computes the efficiency decomposition of a run given the best
// sequential time and the sequential time at the measured granularity.
var Decompose = trace.Decompose
