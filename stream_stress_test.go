package rio_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"rio"
)

// TestStreamEpochRecycleStress pushes thousands of tiny windows through one
// native streaming session under WaitPark, so dependency waits park on the
// per-data waiter registry in nearly every window and the epoch barrier
// recycles the registry's state (counters and park-channel epochs) right
// behind them. What it proves, under -race:
//
//   - generation-counter recycling never resurrects a stale wakeup: a task
//     that ran on a wakeup left over from a previous epoch would read its
//     data before the predecessor in the *current* epoch wrote it, and the
//     in-task oracle check below would trip;
//   - per-window results match the sequential oracle window by window — the
//     first task of window k+1 on each datum validates the final value
//     window k left there, so a single corrupted epoch is pinned to its
//     window instead of surfacing as a garbled final sum.
//
// The chains alternate owners (cyclic mapping, consecutive tasks on the
// same datum), so every hand-off is a cross-worker dependency — the
// worst case for the waiter registry and the best case for catching a
// stale wakeup.
func TestStreamEpochRecycleStress(t *testing.T) {
	const (
		numData = 4
		workers = 4
		chain   = 6 // RW tasks per datum per window -> 5 cross-worker hand-offs each
	)
	windows := 3000
	if testing.Short() {
		windows = 300
	}
	for _, mode := range []struct {
		name      string
		nocompile bool
	}{
		{"compiled", false}, // cached shape replay: recycle under compiled windows
		{"closure", true},   // closure replay: recycle under the per-epoch divergence guard
	} {
		t.Run(mode.name, func(t *testing.T) {
			eng, err := rio.NewEngine(rio.Options{
				Workers: workers,
				Tuning:  rio.TuningOptions{WaitPolicy: rio.WaitPark},
			})
			if err != nil {
				t.Fatal(err)
			}
			s, err := eng.Stream(numData, rio.StreamOptions{NoCompile: mode.nocompile})
			if err != nil {
				t.Fatal(err)
			}
			vals := make([]int64, numData)   // runtime-managed data
			oracle := make([]int64, numData) // producer-side sequential model
			var mismatches atomic.Int64
			report := func(d int, got, want int64, w int) {
				if mismatches.Add(1) <= 5 {
					t.Errorf("window %d, data %d: got %d, want %d", w, d, got, want)
				}
			}
			for w := 0; w < windows; w++ {
				for d := 0; d < numData; d++ {
					d := d
					w := w
					// First link validates what the previous window left
					// behind: a stale wakeup in window w-1 would have let a
					// task skip its dependency and leave a wrong value here.
					carried := oracle[d]
					s.Submit(func() {
						if vals[d] != carried {
							report(d, vals[d], carried, w)
						}
						vals[d] = vals[d]*3 + int64(w&7) + 1
					}, rio.RW(rio.DataID(d)))
					oracle[d] = oracle[d]*3 + int64(w&7) + 1
					for c := 1; c < chain; c++ {
						c := c
						s.Submit(func() { vals[d] += int64(c * (d + 1)) }, rio.RW(rio.DataID(d)))
						oracle[d] += int64(c * (d + 1))
					}
				}
				if err := s.Flush(); err != nil {
					t.Fatalf("window %d: %v", w, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			for d := range vals {
				if vals[d] != oracle[d] {
					t.Errorf("final data %d: got %d, want %d", d, vals[d], oracle[d])
				}
			}
			if n := mismatches.Load(); n > 0 {
				t.Fatalf("%d window-boundary mismatches (stale wakeup or bad recycle)", n)
			}
			if got := s.Submitted(); got != int64(windows*numData*chain) {
				t.Errorf("Submitted = %d, want %d", got, windows*numData*chain)
			}
		})
	}
}

// TestStreamShapeChurnStress alternates window shapes (different data
// subsets and dependency structures) across a long stream, so the shape
// cache recompiles, evicts and replays while epochs recycle state under
// it. Final values are checked against the oracle.
func TestStreamShapeChurnStress(t *testing.T) {
	const numData = 8
	windows := 1200
	if testing.Short() {
		windows = 150
	}
	eng, err := rio.NewEngine(rio.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Stream(numData, rio.StreamOptions{MaxShapes: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, numData)
	oracle := make([]int64, numData)
	for w := 0; w < windows; w++ {
		// 6 distinct shapes > MaxShapes 4, forcing eviction churn.
		shape := w % 6
		lo, hi := shape, shape+2
		for d := lo; d <= hi; d++ {
			d := d
			s.Submit(func() { vals[d]++ }, rio.RW(rio.DataID(d)))
			oracle[d]++
		}
		// A read-fan task: depends on every datum the window wrote.
		accs := []rio.Access{rio.RW(rio.DataID(lo))}
		for d := lo + 1; d <= hi; d++ {
			accs = append(accs, rio.Read(rio.DataID(d)))
		}
		lo0 := lo
		s.Submit(func() { vals[lo0] *= 2 }, accs...)
		oracle[lo] *= 2
		if err := s.Flush(); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for d := range vals {
		if vals[d] != oracle[d] {
			t.Errorf("data %d: got %d, want %d", d, vals[d], oracle[d])
		}
	}
	hits, misses, entries := s.CacheStats()
	if entries > 4 {
		t.Errorf("shape cache exceeded MaxShapes: %d entries", entries)
	}
	if misses < 6 {
		t.Errorf("expected recompiles under churn, got %d misses (%d hits)", misses, hits)
	}
}

// TestStreamFallbackOracleStress runs a shorter cross-window chained flow
// through the fallback backends under -race, so the windowed semantics are
// exercised on every model, not just the native session.
func TestStreamFallbackOracleStress(t *testing.T) {
	windows := 200
	if testing.Short() {
		windows = 40
	}
	for _, m := range []rio.Model{rio.Centralized, rio.CentralizedWS, rio.Sequential} {
		t.Run(fmt.Sprint(m), func(t *testing.T) {
			rt, err := rio.New(rio.Options{Model: m, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			s, err := rio.OpenStream(rt, 2, rio.StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var v0, v1, want0, want1 int64
			for w := 0; w < windows; w++ {
				s.Submit(func() { atomic.AddInt64(&v0, 1) }, rio.Write(0))
				s.Submit(func() { atomic.AddInt64(&v1, atomic.LoadInt64(&v0)) }, rio.Read(0), rio.RW(1))
				want0++
				want1 += want0
				if err := s.Flush(); err != nil {
					t.Fatalf("window %d: %v", w, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if atomic.LoadInt64(&v1) != want1 {
				t.Errorf("v1 = %d, want %d", v1, want1)
			}
		})
	}
}
