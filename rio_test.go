package rio_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rio"
	"rio/internal/analyze"
	"rio/internal/enginetest"
	"rio/internal/faultinject"
	"rio/internal/graphs"
	"rio/internal/sched"
)

func TestNewAllModels(t *testing.T) {
	for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.CentralizedWS, rio.CentralizedPrio, rio.Sequential} {
		rt, err := rio.New(rio.Options{Model: m, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if rt.Name() == "" {
			t.Errorf("%v: empty name", m)
		}
	}
	if _, err := rio.New(rio.Options{Model: rio.Model(99)}); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelString(t *testing.T) {
	cases := map[rio.Model]string{
		rio.InOrder:         "rio",
		rio.Centralized:     "centralized-fifo",
		rio.CentralizedWS:   "centralized-ws",
		rio.CentralizedPrio: "centralized-prio",
		rio.Sequential:      "sequential",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestAccessHelpers(t *testing.T) {
	if a := rio.Read(1); a.Mode != rio.ReadOnly {
		t.Errorf("Read mode = %v", a.Mode)
	}
	if a := rio.Write(1); a.Mode != rio.WriteOnly {
		t.Errorf("Write mode = %v", a.Mode)
	}
	if a := rio.RW(1); a.Mode != rio.ReadWrite {
		t.Errorf("RW mode = %v", a.Mode)
	}
}

// The README/quickstart program, as an API-stability test: all engines
// produce the same result for a closure-based STF program.
func TestQuickstartProgramAllModels(t *testing.T) {
	for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.CentralizedWS, rio.Sequential} {
		vals := make([]int64, 3)
		prog := func(s rio.Submitter) {
			s.Submit(func() { atomic.StoreInt64(&vals[0], 1) }, rio.Write(0))
			s.Submit(func() { atomic.StoreInt64(&vals[1], 2) }, rio.Write(1))
			s.Submit(func() {
				atomic.StoreInt64(&vals[2], atomic.LoadInt64(&vals[0])+atomic.LoadInt64(&vals[1]))
			}, rio.Read(0), rio.Read(1), rio.Write(2))
			s.Submit(func() { atomic.StoreInt64(&vals[2], 10*atomic.LoadInt64(&vals[2])) }, rio.RW(2))
		}
		rt, err := rio.New(rio.Options{Model: m, Workers: 2, Mapping: rio.CyclicMapping(2)})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(3, prog); err != nil {
			t.Fatalf("%s: %v", rt.Name(), err)
		}
		if got := atomic.LoadInt64(&vals[2]); got != 30 {
			t.Errorf("%s: z = %d, want 30", rt.Name(), got)
		}
	}
}

// Cross-model equivalence through the public API on the paper's workloads.
func TestModelsAgreeOnRecordedGraphs(t *testing.T) {
	for _, g := range []*rio.Graph{
		graphs.RandomDeps(300, 32, 2, 1, 13),
		graphs.LU(5),
		graphs.GEMM(4),
	} {
		want, err := enginetest.Golden(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []rio.Model{rio.InOrder, rio.Centralized, rio.CentralizedWS, rio.CentralizedPrio} {
			rt, err := rio.New(rio.Options{Model: m, Workers: 3, Mapping: rio.CyclicMapping(3)})
			if err != nil {
				t.Fatal(err)
			}
			got, err := enginetest.Run(rt, g)
			if err != nil {
				t.Fatalf("%s %s: %v", g.Name, rt.Name(), err)
			}
			if err := enginetest.Compare(g, want, got); err != nil {
				t.Errorf("%s %s: %v", g.Name, rt.Name(), err)
			}
		}
	}
}

func TestStatsExposedThroughPublicAPI(t *testing.T) {
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 2, Mapping: rio.CyclicMapping(2)})
	if err != nil {
		t.Fatal(err)
	}
	g := graphs.Independent(100)
	if _, err := enginetest.Run(rt, g); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Executed() != 100 {
		t.Errorf("executed = %d", st.Executed())
	}
	eff := rio.Decompose(st.Wall, st.Wall, st)
	if eff.Parallel <= 0 {
		t.Errorf("parallel efficiency = %v", eff.Parallel)
	}
}

func TestWindowOptionThroughPublicAPI(t *testing.T) {
	rt, err := rio.New(rio.Options{Model: rio.Centralized, Workers: 3, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Check(rt, graphs.LU(5)); err != nil {
		t.Error(err)
	}
}

func TestReplayHelper(t *testing.T) {
	g := graphs.Independent(10)
	var n atomic.Int64
	prog := rio.Replay(g, func(*rio.Task, rio.WorkerID) { n.Add(1) })
	rt, err := rio.New(rio.Options{Model: rio.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(0, prog); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 10 {
		t.Errorf("kernel ran %d times", n.Load())
	}
}

func TestReductionThroughPublicAPI(t *testing.T) {
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 3, Mapping: rio.CyclicMapping(3)})
	if err != nil {
		t.Fatal(err)
	}
	var sum, final int64
	err = rt.Run(1, func(s rio.Submitter) {
		for i := 1; i <= 100; i++ {
			v := int64(i)
			s.Submit(func() { sum += v }, rio.Reduce(0))
		}
		s.Submit(func() { final = sum }, rio.Read(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 5050 {
		t.Errorf("sum = %d, want 5050", final)
	}
}

func TestPartialMappingThroughPublicAPI(t *testing.T) {
	g := graphs.RandomDeps(200, 16, 2, 1, 9)
	m := rio.PartialMapping(rio.CyclicMapping(3), func(id rio.TaskID) bool { return id%2 == 0 })
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 3, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Check(rt, g); err != nil {
		t.Fatal(err)
	}
	if c := rt.Stats().Claimed(); c != 100 {
		t.Errorf("claimed = %d, want 100", c)
	}
}

// Options.Steal must reach the in-order engine through New: a fully
// skewed program on a steal-enabled runtime executes every task exactly
// once, reports thief-side steals through Progress, and fires the
// OnTaskSteal hook. RankVictims feeds the policy's preference list.
func TestStealThroughPublicAPI(t *testing.T) {
	const n = 32
	g := graphs.Independent(n)
	skew := func(rio.TaskID) rio.WorkerID { return 0 }
	victims := rio.RankVictims(g, skew, 3)
	if len(victims) != 1 || victims[0] != 0 {
		t.Fatalf("RankVictims = %v, want [0]", victims)
	}

	var hooks atomic.Int64
	rt, err := rio.New(rio.Options{
		Workers: 3,
		Mapping: skew,
		Steal:   &rio.StealPolicy{Victims: victims},
		Hooks: &rio.Hooks{OnTaskSteal: func(thief, owner rio.WorkerID, id rio.TaskID) {
			if owner != 0 || thief == 0 {
				t.Errorf("steal hook thief=%d owner=%d", thief, owner)
			}
			hooks.Add(1)
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var execs [n]atomic.Int64
	err = rt.Run(n, func(s rio.Submitter) {
		for i := 0; i < n; i++ {
			i := i
			s.Submit(func() {
				time.Sleep(200 * time.Microsecond)
				execs[i].Add(1)
			}, rio.Write(rio.DataID(i)))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range execs {
		if c := execs[i].Load(); c != 1 {
			t.Errorf("task %d executed %d times", i, c)
		}
	}
	pr := rt.Progress()
	if pr.Stolen() == 0 {
		t.Error("no steals on a fully skewed flow with idle thieves")
	}
	if hooks.Load() != pr.Stolen() {
		t.Errorf("OnTaskSteal fired %d times, Progress.Stolen = %d", hooks.Load(), pr.Stolen())
	}
}

// A defective steal policy must be rejected at construction.
func TestStealOptionValidatedThroughPublicAPI(t *testing.T) {
	_, err := rio.New(rio.Options{Workers: 2, Steal: &rio.StealPolicy{MaxScan: -1}})
	if err == nil {
		t.Error("negative MaxScan accepted")
	}
	_, err = rio.New(rio.Options{Workers: 2, Steal: &rio.StealPolicy{Victims: []rio.WorkerID{5}}})
	if err == nil {
		t.Error("out-of-range victim accepted")
	}
}

func TestSpinLimitOptionThroughPublicAPI(t *testing.T) {
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 2, Mapping: rio.CyclicMapping(2), SpinLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Check(rt, graphs.Chain(100)); err != nil {
		t.Error(err)
	}
}

func TestMappingHelpersThroughPublicAPI(t *testing.T) {
	g := graphs.LU(6)
	p := 4
	m := rio.OwnerComputesMapping(g, rio.NewGrid2D(p))
	if err := rio.ValidateMapping(g, m, p); err != nil {
		t.Fatal(err)
	}
	h := rio.MappingHistogram(g, m, p)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(g.Tasks) {
		t.Errorf("histogram total = %d, want %d", total, len(g.Tasks))
	}
	rel := rio.RelevantTasks(g, m, p)
	if r := rio.PruneRatio(rel); r < 0 || r >= 1 {
		t.Errorf("prune ratio = %v", r)
	}
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: p, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enginetest.RunProgram(rt, g, func(k rio.Kernel) rio.Program {
		return rio.PrunedReplay(g, k, rel)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Compare(g, want, got); err != nil {
		t.Error(err)
	}
}

func TestBlockMappingsThroughPublicAPI(t *testing.T) {
	if w := rio.BlockMapping(10, 2)(9); w != 1 {
		t.Errorf("BlockMapping(10,2)(9) = %d", w)
	}
	if w := rio.BlockCyclicMapping(2, 3)(3); w != 1 {
		t.Errorf("BlockCyclicMapping(2,3)(3) = %d", w)
	}
	if w := rio.TableMapping([]rio.WorkerID{2})(0); w != 2 {
		t.Errorf("TableMapping(0) = %d", w)
	}
}

func TestOwnerComputesThroughPublicAPI(t *testing.T) {
	g := graphs.Cholesky(5)
	m := sched.OwnerComputes(g, sched.NewGrid2D(4))
	rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: 4, Mapping: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Check(rt, g); err != nil {
		t.Error(err)
	}
}

// preflightDefects are the acceptance defect programs: each must be
// rejected by Options.Preflight before any task body runs.
var preflightDefects = []struct {
	name    string
	numData int
	opts    rio.Options
	prog    func(ran *atomic.Bool) rio.Program
	want    string
}{
	{
		name:    "uninitialized read",
		numData: 1,
		opts:    rio.Options{Workers: 2, Preflight: rio.PreflightAccess},
		prog: func(ran *atomic.Bool) rio.Program {
			return func(s rio.Submitter) {
				s.Submit(func() { ran.Store(true) }, rio.Read(0))
				s.Submit(func() { ran.Store(true) }, rio.Write(0))
			}
		},
		want: "RIO-A010",
	},
	{
		name:    "dead write",
		numData: 1,
		opts:    rio.Options{Workers: 2, Preflight: rio.PreflightAccess},
		prog: func(ran *atomic.Bool) rio.Program {
			return func(s rio.Submitter) {
				s.Submit(func() { ran.Store(true) }, rio.Write(0))
				s.Submit(func() { ran.Store(true) }, rio.Write(0))
				s.Submit(func() { ran.Store(true) }, rio.Read(0))
			}
		},
		want: "RIO-A012",
	},
	{
		name:    "out-of-range mapping",
		numData: 1,
		opts: rio.Options{Workers: 2, Preflight: rio.PreflightMapping,
			Mapping: func(rio.TaskID) rio.WorkerID { return 9 }},
		prog: func(ran *atomic.Bool) rio.Program {
			return func(s rio.Submitter) {
				s.Submit(func() { ran.Store(true) }, rio.Write(0))
				s.Submit(func() { ran.Store(true) }, rio.RW(0))
			}
		},
		want: "RIO-M001",
	},
	{
		name:    "serialized wavefront mapping",
		numData: 16,
		opts: rio.Options{Workers: 4, Preflight: rio.PreflightMapping,
			Mapping: func(rio.TaskID) rio.WorkerID { return 0 }},
		prog: func(ran *atomic.Bool) rio.Program {
			g := graphs.Wavefront(4, 4)
			return func(s rio.Submitter) {
				for i := range g.Tasks {
					s.Submit(func() { ran.Store(true) }, g.Tasks[i].Accesses...)
				}
			}
		},
		want: "RIO-M004",
	},
}

func TestPreflightRejectsDefectsBeforeAnyTaskRuns(t *testing.T) {
	for _, tc := range preflightDefects {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := rio.New(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			var ran atomic.Bool
			err = rt.Run(tc.numData, tc.prog(&ran))
			var pf *rio.PreflightError
			if !errors.As(err, &pf) {
				t.Fatalf("want *rio.PreflightError, got %v", err)
			}
			found := false
			for _, f := range pf.Report.Findings {
				if string(f.Code) == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a %s finding, got %+v", tc.want, pf.Report.Findings)
			}
			if ran.Load() {
				t.Fatal("a task body ran despite the preflight rejection")
			}
		})
	}
}

func TestPreflightRejectsNondeterministicProgram(t *testing.T) {
	rt, err := rio.New(rio.Options{Workers: 2, Preflight: rio.PreflightDeterminism})
	if err != nil {
		t.Fatal(err)
	}
	var replay atomic.Int64
	prog := func(s rio.Submitter) {
		n := replay.Add(1)
		s.Submit(nil, rio.Write(0))
		if n%2 == 1 {
			s.Submit(nil, rio.Read(0))
		} else {
			s.Submit(nil, rio.RW(0))
		}
	}
	err = rt.Run(1, prog)
	var pf *rio.PreflightError
	if !errors.As(err, &pf) {
		t.Fatalf("want *rio.PreflightError, got %v", err)
	}
	if !pf.Report.Has("RIO-D001") {
		t.Fatalf("want RIO-D001, got %+v", pf.Report.Findings)
	}
}

func TestPreflightPassesCleanProgramsThrough(t *testing.T) {
	g := graphs.LU(4)
	rt, err := rio.New(rio.Options{Workers: 4, Preflight: rio.PreflightAll})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Check(rt, g); err != nil {
		t.Error(err)
	}
}

// Options.Verify: each compiled program is certified on the cache miss;
// clean graphs run unchanged, later runs hit the cache and pay nothing.
func TestVerifyOptionCertifiesOnCacheMiss(t *testing.T) {
	e, err := rio.NewEngine(rio.Options{Workers: 3, Mapping: rio.CyclicMapping(3), Prune: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	g := graphs.LU(4)
	noop := func(*rio.Task, rio.WorkerID) {}
	for i := 0; i < 3; i++ {
		if err := e.RunGraph(g, noop); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if hits, misses, _ := e.CacheStats(); misses != 1 || hits != 2 {
		t.Errorf("cache stats = %d hits / %d misses, want 2 / 1", hits, misses)
	}
}

// With Resume set, Verify also certifies the checkpoint-pruned form the
// run will actually execute.
func TestVerifyOptionWithResume(t *testing.T) {
	g := graphs.LU(4)
	c := &rio.Checkpoint{Tasks: len(g.Tasks), Completed: []rio.TaskID{0, 1, 2}}
	e, err := rio.NewEngine(rio.Options{Workers: 2, Mapping: rio.CyclicMapping(2), Verify: true, Resume: c})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunGraph(g, func(*rio.Task, rio.WorkerID) {}); err != nil {
		t.Fatal(err)
	}
}

// rio.Verify is the library surface of the certifier: a fresh compile
// certifies clean, and a corrupted stream is rejected with a RIO-V code.
func TestVerifyFunctionRejectsCorruptedStream(t *testing.T) {
	g := graphs.GEMM(3)
	cp, err := rio.Compile(g, 3, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep := rio.Verify(g, cp, nil, nil); len(rep.Findings) != 0 {
		t.Fatalf("clean compile rejected: %+v", rep.Findings)
	}
	mutated, ok := faultinject.MutateStream(cp, faultinject.MutDropExec, 0)
	if !ok {
		t.Fatal("no mutation site for MutDropExec")
	}
	rep := rio.Verify(g, mutated, nil, nil)
	if !rep.Has(analyze.CodeVerifyCoverage) {
		t.Fatalf("dropped exec not flagged as %s: %+v", analyze.CodeVerifyCoverage, rep.Findings)
	}
}
