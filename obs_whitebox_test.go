package rio

// White-box tests of MetricsHandler's error contract: Content-Type on
// the success path, 500 when the exposition fails before the first byte,
// and a logged (not swallowed) error when it fails mid-stream.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// failAfterWriter fails every Write after the first n bytes went through.
type failAfterWriter struct {
	*httptest.ResponseRecorder
	budget int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("connection lost")
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
	}
	f.budget -= n
	f.ResponseRecorder.Write(p[:n])
	return n, errors.New("connection lost")
}

func metricsTestRuntime(t *testing.T) Runtime {
	t.Helper()
	rt, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(1, func(s Submitter) { s.Submit(func() {}, Write(0)) }); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestMetricsHandlerSuccess(t *testing.T) {
	rt := metricsTestRuntime(t)
	rec := httptest.NewRecorder()
	MetricsHandler(rt).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the Prometheus text exposition type", got)
	}
	body := rec.Body.String()
	for _, want := range []string{"rio_run_running", "rio_tasks_executed_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("body is missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsHandlerErrorBeforeFirstByte(t *testing.T) {
	rt := metricsTestRuntime(t)
	var logged error
	prev := logMetricsError
	logMetricsError = func(err error) { logged = err }
	t.Cleanup(func() { logMetricsError = prev })

	rec := &failAfterWriter{ResponseRecorder: httptest.NewRecorder(), budget: 0}
	MetricsHandler(rt).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500 when no exposition byte reached the client", rec.Code)
	}
	if logged != nil {
		t.Errorf("before-first-byte failure must become a 500, not a log line (logged %v)", logged)
	}
}

func TestMetricsHandlerErrorAfterFirstByte(t *testing.T) {
	rt := metricsTestRuntime(t)
	var logged error
	prev := logMetricsError
	logMetricsError = func(err error) { logged = err }
	t.Cleanup(func() { logMetricsError = prev })

	rec := &failAfterWriter{ResponseRecorder: httptest.NewRecorder(), budget: 10}
	MetricsHandler(rt).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if rec.Code != http.StatusOK {
		t.Errorf("status = %d; after the first byte the 200 is already on the wire", rec.Code)
	}
	if logged == nil {
		t.Error("mid-stream write failure was swallowed, want it logged")
	}
}
