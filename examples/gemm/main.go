// Tiled matrix multiplication under the three execution models.
//
// The task flow is the paper's Experiment 3 graph: C(i,j) += A(i,k)·B(k,j)
// with the k-loop innermost. The RIO engine gets the classic static mapping
// for dense linear algebra — 2-D block-cyclic ownership of the C tiles
// ("owner computes") — which is exactly the kind of application knowledge
// the paper's execution model asks the programmer to provide (§3.2).
//
// The result is verified against a single-shot dense multiplication.
//
// Run with: go run ./examples/gemm [-n 256] [-b 32] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
	"rio/internal/kernels" // the application's computational tile kernels
)

func main() {
	n := flag.Int("n", 256, "matrix dimension")
	b := flag.Int("b", 32, "tile dimension (must divide n)")
	workers := flag.Int("workers", 4, "worker count")
	flag.Parse()

	a, bm, err := operands(*n, *b)
	if err != nil {
		log.Fatal(err)
	}
	nt := *n / *b

	// Reference: dense product computed without the runtime.
	want := make([]float64, *n**n)
	kernels.MatMulDense(want, a.ToDense(), bm.ToDense(), *n)

	// Owner-computes mapping: worker grid pr×pc, C(i,j) owned by
	// worker (i mod pr)·pc + (j mod pc). Task (i,j,k) has ID
	// ((i·nt)+j)·nt + k, so ownership is derivable from the ID alone —
	// a pure TaskID → WorkerID closure, as the paper specifies.
	pr, pc := grid(*workers)
	mapping := func(id rio.TaskID) rio.WorkerID {
		ij := int(id) / nt
		i, j := ij/nt, ij%nt
		return rio.WorkerID((i%pr)*pc + j%pc)
	}

	for _, model := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		c, err := kernels.NewTiled(*n, *b)
		if err != nil {
			log.Fatal(err)
		}
		program := func(s rio.Submitter) {
			for i := 0; i < nt; i++ {
				for j := 0; j < nt; j++ {
					for k := 0; k < nt; k++ {
						i, j, k := i, j, k
						s.Submit(func() {
							kernels.GemmTile(c.Tile(i, j), a.Tile(i, k), bm.Tile(k, j), *b)
						},
							rio.Read(aID(nt, i, k)),
							rio.Read(bID(nt, k, j)),
							rio.RW(cID(nt, i, j)))
					}
				}
			}
		}
		rt, err := rio.New(rio.Options{Model: model, Workers: *workers, Mapping: mapping})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := rt.Run(3*nt*nt, program); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		diff := kernels.MaxAbsDiff(c.ToDense(), want)
		st := rt.Stats()
		fmt.Printf("%-16s n=%d b=%d tasks=%d wall=%-12v max|Δ|=%.2e",
			rt.Name(), *n, *b, st.Executed(), wall.Round(time.Microsecond), diff)
		if model == rio.InOrder {
			fmt.Printf(" declared=%d", st.Declared())
		}
		fmt.Println()
		if diff > 1e-9 {
			log.Fatalf("%s: result mismatch", rt.Name())
		}
	}
}

func operands(n, b int) (*kernels.Tiled, *kernels.Tiled, error) {
	a, err := kernels.NewTiled(n, b)
	if err != nil {
		return nil, nil, err
	}
	bm, err := kernels.NewTiled(n, b)
	if err != nil {
		return nil, nil, err
	}
	kernels.DiagDominant(a, 1)
	kernels.DiagDominant(bm, 2)
	return a, bm, nil
}

// grid factors p into the squarest pr×pc grid.
func grid(p int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return pr, p / pr
}

func aID(nt, i, k int) rio.DataID { return rio.DataID(i*nt + k) }
func bID(nt, k, j int) rio.DataID { return rio.DataID(nt*nt + k*nt + j) }
func cID(nt, i, j int) rio.DataID { return rio.DataID(2*nt*nt + i*nt + j) }
