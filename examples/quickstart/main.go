// Quickstart: a minimal Sequential Task Flow program run under the
// decentralized in-order (RIO) execution model.
//
// The program computes, over three runtime-managed data objects, a small
// dependency chain:
//
//	t0: x  = 1         (write x)
//	t1: y  = 2         (write y)
//	t2: z  = x + y     (read x, read y, write z)
//	t3: z  = z * 10    (read-write z)
//
// Every worker replays the program; the mapping decides who executes what;
// the runtime's decentralized counters enforce the data dependencies, so
// t2 always sees both writes and t3 always follows t2.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rio"
)

func main() {
	const (
		x = rio.DataID(0)
		y = rio.DataID(1)
		z = rio.DataID(2)
	)
	vals := make([]int, 3)

	program := func(s rio.Submitter) {
		s.Submit(func() { vals[x] = 1 }, rio.Write(x))
		s.Submit(func() { vals[y] = 2 }, rio.Write(y))
		s.Submit(func() { vals[z] = vals[x] + vals[y] },
			rio.Read(x), rio.Read(y), rio.Write(z))
		s.Submit(func() { vals[z] *= 10 }, rio.RW(z))
	}

	// The in-order engine needs a static mapping: here, tasks round-robin
	// over 2 workers (t0,t2 on worker 0; t1,t3 on worker 1).
	rt, err := rio.New(rio.Options{
		Model:   rio.InOrder,
		Workers: 2,
		Mapping: rio.CyclicMapping(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Run(3, program); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("z = %d (want 30)\n", vals[z])
	st := rt.Stats()
	fmt.Printf("engine=%s workers=%d executed=%d declared=%d wall=%v\n",
		rt.Name(), rt.NumWorkers(), st.Executed(), st.Declared(), st.Wall)

	// The same program runs unchanged under the other execution models.
	for _, model := range []rio.Model{rio.Centralized, rio.Sequential} {
		vals[x], vals[y], vals[z] = 0, 0, 0
		alt, err := rio.New(rio.Options{Model: model, Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		if err := alt.Run(3, program); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s z = %d\n", alt.Name(), vals[z])
	}
}
