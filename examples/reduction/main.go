// Commutative reductions: the extension beyond strict sequential
// consistency the paper points to in §3.4 (data versioning in SuperGlue).
//
// A blocked dot product accumulates per-block partial sums into a single
// accumulator. Two STF formulations are compared:
//
//   - ReadWrite accumulation — sequentially consistent but over-ordered:
//     every accumulation depends on the previous one, so the updates form
//     a serial chain across workers;
//   - Reduction accumulation — the updates commute: workers fold their
//     blocks into the accumulator in any order (the engine serializes the
//     bodies), and only the final read is ordered after all of them.
//
// Both produce the same sum; the reduction version removes the chain of
// cross-worker dependency waits.
//
// Run with: go run ./examples/reduction [-n 1048576] [-blocks 256] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
)

func main() {
	n := flag.Int("n", 1<<20, "vector length")
	blocks := flag.Int("blocks", 256, "number of accumulation blocks")
	workers := flag.Int("workers", 4, "worker count")
	flag.Parse()

	x := make([]float64, *n)
	y := make([]float64, *n)
	for i := range x {
		x[i] = float64(i%97) / 97
		y[i] = float64(i%89) / 89
	}
	// Reference.
	var want float64
	for i := range x {
		want += x[i] * y[i]
	}

	for _, mode := range []string{"read-write chain", "reduction"} {
		var acc float64
		var got float64
		const accData = rio.DataID(0)

		program := func(s rio.Submitter) {
			per := (*n + *blocks - 1) / *blocks
			for bl := 0; bl < *blocks; bl++ {
				lo := bl * per
				hi := min(lo+per, *n)
				access := rio.RW(accData)
				if mode == "reduction" {
					access = rio.Reduce(accData)
				}
				s.Submit(func() {
					var part float64
					for i := lo; i < hi; i++ {
						part += x[i] * y[i]
					}
					acc += part
				}, access)
			}
			s.Submit(func() { got = acc }, rio.Read(accData))
		}

		rt, err := rio.New(rio.Options{
			Model:   rio.InOrder,
			Workers: *workers,
			Mapping: rio.CyclicMapping(*workers),
		})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := rt.Run(1, program); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)

		st := rt.Stats()
		eff := rio.Decompose(st.Wall, st.Wall, st)
		rel := (got - want) / want
		fmt.Printf("%-18s wall=%-12v e_p=%.3f dot=%.6f (rel.err %.1e)\n",
			mode, wall.Round(time.Microsecond), eff.Pipelining, got, rel)
		if rel > 1e-9 || rel < -1e-9 {
			log.Fatalf("%s: wrong dot product", mode)
		}
	}
	fmt.Println("both formulations agree; the reduction one removes the serial accumulation chain.")
}
