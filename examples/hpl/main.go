// HPL core: blocked LU factorization with partial pivoting as a sequential
// task flow — the paper's motivating application (§1: "the pivoting itself
// requires fine-grained operations that can not be efficiently executed as
// tasks with such runtime systems").
//
// The flow mixes coarse trailing updates (per-column trsm/gemm) with the
// fine-grained panel work (per-column pivot search, row interchanges,
// rank-1 updates); internal/hpl builds it once and this example runs it
// unchanged under the decentralized in-order engine, the centralized
// baseline and the sequential reference, verifying ‖L·U − P·A‖ each time
// and reporting the fine-grained task share.
//
// Run with: go run ./examples/hpl [-n 256] [-b 32] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
	"rio/internal/hpl"
)

func main() {
	n := flag.Int("n", 256, "matrix dimension")
	b := flag.Int("b", 32, "panel width (must divide n)")
	workers := flag.Int("workers", 4, "worker count")
	flag.Parse()

	for _, model := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		f, err := hpl.NewFlow(*n, *b)
		if err != nil {
			log.Fatal(err)
		}
		f.A.FillRandom(42)
		orig := f.A.Clone()

		var kerr error
		kern := f.Kernel(func(e error) { kerr = e })
		rt, err := rio.New(rio.Options{
			Model:   model,
			Workers: *workers,
			Mapping: f.ColumnMapping(*workers),
		})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := rt.Run(f.Graph.NumData, rio.Replay(f.Graph, kern)); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		if kerr != nil {
			log.Fatal(kerr)
		}

		orig.ApplyPivots(f.Ipiv)
		res := hpl.Residual(f.A.Reconstruct(), orig)
		gflops := f.FLOPs() / wall.Seconds() / 1e9
		st := rt.Stats()
		fmt.Printf("%-16s n=%d b=%d tasks=%d (%.0f%% fine-grained panel ops) wall=%-10v %.3f GFLOPS residual=%.2e\n",
			rt.Name(), *n, *b, st.Executed(),
			100*float64(f.PanelTasks)/float64(len(f.Graph.Tasks)),
			wall.Round(time.Microsecond), gflops, res)
		if res > 1e-10 {
			log.Fatalf("%s: residual too large", rt.Name())
		}
	}
}
