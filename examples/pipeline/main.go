// Streaming pipeline: an unbounded task flow through one RIO session.
//
// The paper's engines execute a *finite* flow: record every task, then
// replay the whole flow on every worker. A service workload — a periodic
// pipeline processing batches forever — never ends, so "the whole flow"
// is unbounded and anything proportional to its length (the task table,
// per-data dependency counters, the workers' progress cursors) would grow
// without limit. The Stream API bounds all of it by the *window*: tasks
// are recorded into the current window, Flush publishes it behind an
// epoch barrier, and the per-data synchronization state is recycled by
// generation counters at each boundary, so a million-task flow costs no
// more memory than a thousand-task one.
//
// This example pushes >10^5 small tasks through >100 windows of a fixed
// shape (the steady state of a periodic pipeline: the window compiles
// once and every later window replays the cached program), checks the
// result against the sequential oracle, and demonstrates the O(1) claim
// directly: live heap measured after the 10th window matches live heap
// after the last one, while the flow grows 50× longer in between.
//
// Run with: go run ./examples/pipeline [-workers 4] [-data 64] [-windows 500] [-chain 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync/atomic"
	"time"

	"rio"
	"rio/internal/stf"
)

func main() {
	workers := flag.Int("workers", 4, "worker count")
	data := flag.Int("data", 64, "data objects (pipeline channels)")
	windows := flag.Int("windows", 500, "windows to stream")
	chain := flag.Int("chain", 4, "tasks per channel per window (dependency-chain depth)")
	flag.Parse()
	if *windows < 2 || *data < 1 || *chain < 1 {
		log.Fatal("need -windows >= 2, -data >= 1, -chain >= 1")
	}

	// One counter per channel; every task bumps its channel's counter, so
	// within a window each channel carries a chain of RW dependencies and
	// the final value counts the whole flow's tasks on that channel.
	vals := make([]int64, *data)
	kern := func(t *stf.Task, _ rio.WorkerID) {
		atomic.AddInt64(&vals[t.Accesses[0].Data], 1)
	}

	// Chain-affine mapping: channel c's tasks (window-local IDs c·chain ..
	// c·chain+chain-1) all live on one worker, the natural sharding of a
	// periodic pipeline.
	chainLen := *chain
	p := *workers
	eng, err := rio.NewEngine(rio.Options{
		Workers: p,
		Mapping: func(id rio.TaskID) rio.WorkerID { return rio.WorkerID(int(id) / chainLen % p) },
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := eng.Stream(*data, rio.StreamOptions{Kernel: kern, MaxWindow: -1})
	if err != nil {
		log.Fatal(err)
	}

	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}

	var heapWarm uint64
	warmAt := 10
	start := time.Now()
	for w := 0; w < *windows; w++ {
		for c := 0; c < *data; c++ {
			for l := 0; l < chainLen; l++ {
				s.Task(0, c, l, w, rio.RW(rio.DataID(c)))
			}
		}
		if err := s.Flush(); err != nil {
			log.Fatal(err)
		}
		if w+1 == warmAt {
			if err := s.Drain(); err != nil {
				log.Fatal(err)
			}
			heapWarm = heap()
		}
	}
	if err := s.Drain(); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	heapEnd := heap()
	hits, misses, entries := s.CacheStats()
	tasks := s.Submitted()
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	// Oracle: each channel saw chain tasks per window.
	want := int64(*windows) * int64(chainLen)
	for c, v := range vals {
		if v != want {
			log.Fatalf("channel %d: %d tasks executed, want %d", c, v, want)
		}
	}

	fmt.Printf("streamed %d tasks over %d windows on %d workers in %v (%.0f ns/task, %.2f Mtasks/s)\n",
		tasks, s.Windows(), p, wall.Round(time.Millisecond),
		float64(wall.Nanoseconds())/float64(tasks), float64(tasks)/wall.Seconds()/1e6)
	fmt.Printf("shape cache: %d compiled, %d replayed from cache (%.1f%% hit rate)\n",
		misses, hits, 100*float64(hits)/float64(hits+misses))
	fmt.Printf("live heap after window %d: %.1f KiB; after window %d: %.1f KiB (Δ %+.1f KiB, cache entries %d)\n",
		warmAt, float64(heapWarm)/1024, *windows, float64(heapEnd)/1024,
		(float64(heapEnd)-float64(heapWarm))/1024, entries)
	growth := float64(heapEnd) - float64(heapWarm)
	perTask := growth / float64(tasks-int64(warmAt**data*chainLen))
	if growth <= 0 {
		fmt.Println("per-data state is O(1) in flow length: the heap did not grow past warmup")
	} else {
		fmt.Printf("heap grew %.2f B/task past warmup (GC noise; the session allocates nothing per window in steady state)\n", perTask)
	}
}
