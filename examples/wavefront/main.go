// Wavefront pipeline: a rows×cols grid where each cell depends on its
// north and west neighbours. This example demonstrates the property the
// paper stresses about the in-order model: with no dynamic scheduler,
// performance hinges entirely on the programmer's mapping and the task
// submission order (§3.2). A row-block mapping pipelines the anti-diagonal
// wavefront nicely; a task-cyclic mapping scatters neighbouring cells
// across workers and serializes almost everything behind dependency waits.
//
// The example runs both mappings, checks that the numeric result is
// identical (sequential consistency does not depend on the mapping), and
// prints the pipelining efficiency e_p of each so the difference is
// visible in the decomposition of §2.3, not just in wall time.
//
// Run with: go run ./examples/wavefront [-rows 64] [-cols 64] [-workers 4] [-work 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
)

func main() {
	rows := flag.Int("rows", 64, "grid rows")
	cols := flag.Int("cols", 64, "grid cols")
	workers := flag.Int("workers", 4, "worker count")
	work := flag.Int("work", 2000, "per-cell busy work (iterations)")
	flag.Parse()

	// Sequential reference.
	ref := run(t{*rows, *cols, *workers, *work}, rio.Sequential, nil)

	// Row-block mapping: contiguous bands of rows per worker — neighbours
	// in a column cross worker boundaries only p−1 times.
	band := (*rows + *workers - 1) / *workers
	rowBlock := func(id rio.TaskID) rio.WorkerID {
		i := int(id) / *cols
		w := i / band
		if w >= *workers {
			w = *workers - 1
		}
		return rio.WorkerID(w)
	}
	// Task-cyclic mapping: ignores the grid structure entirely.
	cyclic := rio.CyclicMapping(*workers)

	good := run(t{*rows, *cols, *workers, *work}, rio.InOrder, rowBlock)
	bad := run(t{*rows, *cols, *workers, *work}, rio.InOrder, cyclic)

	if good.sum != ref.sum || bad.sum != ref.sum {
		log.Fatalf("results diverge: seq=%v rowblock=%v cyclic=%v", ref.sum, good.sum, bad.sum)
	}
	fmt.Printf("%-22s wall=%-12v e_p=%.3f e_r=%.3f\n", "sequential", ref.wall, 1.0, 1.0)
	fmt.Printf("%-22s wall=%-12v e_p=%.3f e_r=%.3f\n", "rio/row-block", good.wall, good.ep, good.er)
	fmt.Printf("%-22s wall=%-12v e_p=%.3f e_r=%.3f\n", "rio/cyclic", bad.wall, bad.ep, bad.er)
	fmt.Println("sequential consistency holds under both mappings; only efficiency differs.")
}

type t struct{ rows, cols, workers, work int }

type result struct {
	sum  float64
	wall time.Duration
	ep   float64
	er   float64
}

func run(cfg t, model rio.Model, mapping rio.Mapping) result {
	vals := make([]float64, cfg.rows*cfg.cols)
	for i := range vals {
		vals[i] = 1
	}
	cell := func(i, j int) rio.DataID { return rio.DataID(i*cfg.cols + j) }

	program := func(s rio.Submitter) {
		for i := 0; i < cfg.rows; i++ {
			for j := 0; j < cfg.cols; j++ {
				i, j := i, j
				accesses := make([]rio.Access, 0, 3)
				if i > 0 {
					accesses = append(accesses, rio.Read(cell(i-1, j)))
				}
				if j > 0 {
					accesses = append(accesses, rio.Read(cell(i, j-1)))
				}
				accesses = append(accesses, rio.RW(cell(i, j)))
				s.Submit(func() {
					v := vals[i*cfg.cols+j]
					if i > 0 {
						v += 0.25 * vals[(i-1)*cfg.cols+j]
					}
					if j > 0 {
						v += 0.25 * vals[i*cfg.cols+j-1]
					}
					// Busy work standing in for a real stencil kernel.
					for it := 0; it < cfg.work; it++ {
						v += 1e-9
					}
					vals[i*cfg.cols+j] = v
				}, accesses...)
			}
		}
	}

	rt, err := rio.New(rio.Options{Model: model, Workers: cfg.workers, Mapping: mapping})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if err := rt.Run(cfg.rows*cfg.cols, program); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	var sum float64
	for _, v := range vals {
		sum += v
	}
	st := rt.Stats()
	eff := rio.Decompose(st.Wall, st.Wall, st) // e_g, e_l not of interest here
	return result{sum: sum, wall: wall.Round(time.Microsecond), ep: eff.Pipelining, er: eff.Runtime}
}
