// Tiled LU factorization without pivoting — the paper's Experiment 4 graph
// and the case study of its formal specification — executed with real tile
// kernels under the decentralized in-order model, and verified by
// reconstructing L·U and comparing against the input matrix.
//
// The static mapping is owner-computes over a 2-D block-cyclic tile
// distribution; the submission order is the natural right-looking order, so
// panel tasks of step k+1 follow the trailing updates of step k.
//
// Run with: go run ./examples/lu [-n 256] [-b 32] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
	"rio/internal/kernels" // the application's computational tile kernels
)

func main() {
	n := flag.Int("n", 256, "matrix dimension")
	b := flag.Int("b", 32, "tile dimension (must divide n)")
	workers := flag.Int("workers", 4, "worker count")
	flag.Parse()
	nt := *n / *b

	pr, pc := grid(*workers)
	tileOwner := func(i, j int) rio.WorkerID { return rio.WorkerID((i%pr)*pc + j%pc) }

	for _, model := range []rio.Model{rio.InOrder, rio.Centralized, rio.Sequential} {
		m, err := kernels.NewTiled(*n, *b)
		if err != nil {
			log.Fatal(err)
		}
		kernels.DiagDominant(m, 7)
		orig := m.ToDense()

		// The in-order engine needs a TaskID → WorkerID closure. Rather
		// than deriving tile coordinates from task IDs (awkward for LU's
		// irregular flow), we precompute the owner table by unrolling the
		// loop nest once — the standard "parametric allocation" pattern.
		var owners []rio.WorkerID
		forEachTask(nt, func(kind string, i, j, k int) {
			owners = append(owners, tileOwner(i, j))
		})
		mapping := func(id rio.TaskID) rio.WorkerID { return owners[id] }

		tile := func(i, j int) rio.DataID { return rio.DataID(i*nt + j) }
		bb := *b
		program := func(s rio.Submitter) {
			forEachTask(nt, func(kind string, i, j, k int) {
				switch kind {
				case "getrf":
					s.Submit(func() {
						if err := kernels.Getrf(m.Tile(k, k), bb); err != nil {
							panic(err)
						}
					}, rio.RW(tile(k, k)))
				case "trsm-row":
					s.Submit(func() { kernels.TrsmLowerLeft(m.Tile(k, k), m.Tile(k, j), bb) },
						rio.Read(tile(k, k)), rio.RW(tile(k, j)))
				case "trsm-col":
					s.Submit(func() { kernels.TrsmUpperRight(m.Tile(k, k), m.Tile(i, k), bb) },
						rio.Read(tile(k, k)), rio.RW(tile(i, k)))
				case "gemm":
					s.Submit(func() { kernels.GemmSubTile(m.Tile(i, j), m.Tile(i, k), m.Tile(k, j), bb) },
						rio.Read(tile(i, k)), rio.Read(tile(k, j)), rio.RW(tile(i, j)))
				}
			})
		}

		rt, err := rio.New(rio.Options{Model: model, Workers: *workers, Mapping: mapping})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := rt.Run(nt*nt, program); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)

		diff := kernels.MaxAbsDiff(kernels.LUReconstruct(m), orig)
		st := rt.Stats()
		fmt.Printf("%-16s n=%d b=%d tasks=%d wall=%-12v ‖LU−A‖max=%.2e\n",
			rt.Name(), *n, *b, st.Executed(), wall.Round(time.Microsecond), diff)
		if diff > 1e-6 {
			log.Fatalf("%s: factorization residual too large", rt.Name())
		}
	}
}

// forEachTask enumerates the right-looking LU task flow in submission
// order, calling fn once per task with the written tile's coordinates.
func forEachTask(nt int, fn func(kind string, i, j, k int)) {
	for k := 0; k < nt; k++ {
		fn("getrf", k, k, k)
		for j := k + 1; j < nt; j++ {
			fn("trsm-row", k, j, k)
		}
		for i := k + 1; i < nt; i++ {
			fn("trsm-col", i, k, k)
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j < nt; j++ {
				fn("gemm", i, j, k)
			}
		}
	}
}

func grid(p int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return pr, p / pr
}
