// Sparse multifrontal factorization over an elimination tree with
// proportional mapping — the paper's cited static-mapping technique for
// sparse linear algebra (George/Liu/Ng; Pothen/Sun, §3.2).
//
// A random elimination tree models the supernodes of a sparse Cholesky
// factorization; each node's task reads its children's frontal
// contributions and updates its own. Three static mappings are compared
// under the decentralized in-order engine:
//
//   - proportional: workers own disjoint subtrees sized by work — all
//     synchronization concentrates on the (inherently sequential) top of
//     the tree;
//   - automap: the list-scheduling mapping computed from the task weights
//     (the "automatic static mapping" the paper cites);
//   - cyclic: tree-oblivious round-robin.
//
// All three produce the same results (sequential consistency does not
// depend on the mapping); the example prints wall time and the e_p/e_r
// decomposition so the scheduling quality is visible.
//
// Run with: go run ./examples/sparse [-nodes 400] [-workers 4] [-work 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 400, "elimination-tree nodes (leaves for the balanced shape)")
	shape := flag.String("tree", "balanced", "elimination-tree shape: balanced | random | chain — proportional mapping excels on balanced trees, degrades on skewed ones")
	workers := flag.Int("workers", 4, "worker count")
	work := flag.Int("work", 2000, "busy-work iterations per unit of node weight")
	flag.Parse()

	var tree *graphs.ETree
	switch *shape {
	case "balanced":
		tree = graphs.BalancedETree(*nodes / 2)
	case "random":
		tree = graphs.RandomETree(*nodes, 4, 42)
	case "chain":
		tree = graphs.ChainETree(*nodes)
	default:
		log.Fatalf("unknown tree shape %q", *shape)
	}
	g := graphs.SparseCholesky(tree)
	fmt.Printf("%s elimination tree: %d nodes, task flow depth %d\n", *shape, tree.Nodes(), depth(g))

	mappings := []struct {
		name string
		m    rio.Mapping
	}{
		{"proportional", sched.Proportional(tree, *workers)},
		{"automap", rio.AutoMapping(g, *workers, rio.WeightCost(time.Microsecond)).Mapping},
		{"cyclic", rio.CyclicMapping(*workers)},
	}

	var ref []float64
	for _, v := range mappings {
		vals := make([]float64, tree.Nodes())
		kern := func(t *rio.Task, _ rio.WorkerID) {
			// Fold the children's contributions, then busy-work
			// proportional to the node weight (t.K).
			acc := 1.0
			for _, a := range t.Accesses[:len(t.Accesses)-1] {
				acc += 0.5 * vals[a.Data]
			}
			for i := 0; i < *work*t.K; i++ {
				acc += 1e-12
			}
			vals[t.I] = acc
		}
		rt, err := rio.New(rio.Options{Model: rio.InOrder, Workers: *workers, Mapping: v.m})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := rt.Run(g.NumData, rio.Replay(g, kern)); err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)

		if ref == nil {
			ref = append([]float64(nil), vals...)
		} else {
			for i := range vals {
				if vals[i] != ref[i] {
					log.Fatalf("%s: node %d diverged", v.name, i)
				}
			}
		}
		st := rt.Stats()
		eff := rio.Decompose(st.Wall, st.Wall, st)
		fmt.Printf("%-14s wall=%-12v e_p=%.3f e_r=%.3f\n",
			v.name, wall.Round(time.Microsecond), eff.Pipelining, eff.Runtime)
	}
	fmt.Println("identical results under all mappings; only the schedule quality differs.")

	// On a host with few hardware threads the differences above are
	// muted; the discrete-event simulator shows the schedule quality on
	// an ideal 8-worker machine (per-task durations ∝ node weight).
	const simWorkers = 8
	w := sim.Workload{Graph: g, Duration: func(id rio.TaskID) time.Duration {
		return time.Duration(g.Tasks[id].K) * 10 * time.Microsecond
	}}
	critical, work8 := sim.CriticalPath(w)
	fmt.Printf("\nsimulated on %d ideal workers (critical path %v, work %v):\n",
		simWorkers, critical.Round(time.Microsecond), work8.Round(time.Microsecond))
	simMappings := []struct {
		name string
		m    rio.Mapping
	}{
		{"proportional", sched.Proportional(tree, simWorkers)},
		{"automap", rio.AutoMapping(g, simWorkers, rio.WeightCost(10*time.Microsecond)).Mapping},
		{"cyclic", rio.CyclicMapping(simWorkers)},
	}
	for _, v := range simMappings {
		r, err := sim.SimulateRIO(w, simWorkers, v.m, sim.Costs{DeclareCost: 15 * time.Nanosecond})
		if err != nil {
			log.Fatal(err)
		}
		eff := r.Efficiency()
		fmt.Printf("%-14s makespan=%-12v e_p=%.3f (bound %.0f%% of optimum)\n",
			v.name, r.Makespan.Round(time.Microsecond), eff.Pipelining,
			100*float64(maxDur(critical, work8/simWorkers))/float64(r.Makespan))
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func depth(g *rio.Graph) int {
	_, d := g.Levels()
	return d
}
