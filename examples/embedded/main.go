// Embedded fine-grained runtime: the deployment the paper motivates.
//
// The paper's introduction uses HPL's LU factorization as the motivating
// case: most work is coarse tiled kernels, but the panel factorization is
// made of fine-grained column operations that general-purpose centralized
// runtimes cannot execute profitably as tasks. Its conclusion proposes
// letting a centralized runtime "delegate relevant computations to an
// embedded low-overhead runtime" — exactly what this example does:
//
//   - an *outer* centralized out-of-order runtime executes the coarse
//     tiled LU task flow (getrf / trsm / gemm on tiles);
//   - the getrf panel task does not call a monolithic kernel: it spins up
//     an *inner* decentralized in-order (RIO) runtime that factors the
//     tile as a flow of fine-grained per-column tasks (scale column k,
//     rank-1-update column j) with a cyclic column mapping.
//
// The example verifies the factorization against L·U reconstruction and
// reports the inner flow's task counts — hundreds of microsecond-scale
// tasks per panel, the granularity regime the RIO model is built for.
//
// Run with: go run ./examples/embedded [-n 256] [-b 64] [-workers 4] [-inner 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rio"
	"rio/internal/kernels"
)

func main() {
	n := flag.Int("n", 256, "matrix dimension")
	b := flag.Int("b", 64, "tile dimension (must divide n)")
	workers := flag.Int("workers", 4, "outer runtime worker count")
	inner := flag.Int("inner", 2, "inner (embedded RIO) worker count")
	flag.Parse()
	nt := *n / *b

	m, err := kernels.NewTiled(*n, *b)
	if err != nil {
		log.Fatal(err)
	}
	kernels.DiagDominant(m, 11)
	orig := m.ToDense()

	outer, err := rio.New(rio.Options{Model: rio.Centralized, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}

	var panels, fineTasks int
	tile := func(i, j int) rio.DataID { return rio.DataID(i*nt + j) }
	bb, in := *b, *inner

	t0 := time.Now()
	err = outer.Run(nt*nt, func(s rio.Submitter) {
		for k := 0; k < nt; k++ {
			k := k
			// The panel task delegates to an embedded RIO runtime.
			s.Submit(func() {
				nTasks, err := panelFactorRIO(m.Tile(k, k), bb, in)
				if err != nil {
					panic(err)
				}
				panels++
				fineTasks += nTasks
			}, rio.RW(tile(k, k)))
			for j := k + 1; j < nt; j++ {
				j := j
				s.Submit(func() { kernels.TrsmLowerLeft(m.Tile(k, k), m.Tile(k, j), bb) },
					rio.Read(tile(k, k)), rio.RW(tile(k, j)))
			}
			for i := k + 1; i < nt; i++ {
				i := i
				s.Submit(func() { kernels.TrsmUpperRight(m.Tile(k, k), m.Tile(i, k), bb) },
					rio.Read(tile(k, k)), rio.RW(tile(i, k)))
			}
			for i := k + 1; i < nt; i++ {
				for j := k + 1; j < nt; j++ {
					i, j := i, j
					s.Submit(func() { kernels.GemmSubTile(m.Tile(i, j), m.Tile(i, k), m.Tile(k, j), bb) },
						rio.Read(tile(i, k)), rio.Read(tile(k, j)), rio.RW(tile(i, j)))
				}
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	diff := kernels.MaxAbsDiff(kernels.LUReconstruct(m), orig)
	fmt.Printf("outer=%s (p=%d) + embedded rio (p=%d)\n", outer.Name(), *workers, *inner)
	fmt.Printf("n=%d b=%d: %d coarse tasks, %d panels → %d fine-grained inner tasks\n",
		*n, *b, outer.Stats().Executed(), panels, fineTasks)
	fmt.Printf("wall=%v ‖LU−A‖max=%.2e\n", wall.Round(time.Microsecond), diff)
	if diff > 1e-6 {
		log.Fatal("factorization residual too large")
	}
}

// panelFactorRIO factors one b×b tile in place (unpivoted LU) as a
// fine-grained STF flow on an embedded RIO runtime: data objects are the
// tile's columns; step k scales column k below the diagonal, then updates
// every column j > k with a rank-1 contribution. It returns the number of
// fine-grained tasks executed.
func panelFactorRIO(a []float64, b, workers int) (int, error) {
	rt, err := rio.New(rio.Options{
		Model:   rio.InOrder,
		Workers: workers,
		Mapping: rio.CyclicMapping(workers),
	})
	if err != nil {
		return 0, err
	}
	var bad bool
	err = rt.Run(b, func(s rio.Submitter) {
		for k := 0; k < b; k++ {
			k := k
			s.Submit(func() {
				p := a[k*b+k]
				if p == 0 {
					bad = true
					return
				}
				inv := 1 / p
				for i := k + 1; i < b; i++ {
					a[i*b+k] *= inv
				}
			}, rio.RW(rio.DataID(k)))
			for j := k + 1; j < b; j++ {
				j := j
				s.Submit(func() {
					for i := k + 1; i < b; i++ {
						a[i*b+j] -= a[i*b+k] * a[k*b+j]
					}
				}, rio.Read(rio.DataID(k)), rio.RW(rio.DataID(j)))
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if bad {
		return 0, fmt.Errorf("zero pivot in unpivoted panel factorization")
	}
	return int(rt.Stats().Executed()), nil
}
