// Package sim is a discrete-event simulator of the two execution models,
// parameterized by the per-task cost constants measured on real hardware
// (internal/bench's cost-model fit). It exists because fine-grained
// overhead measurements on a live Go runtime are polluted by the goroutine
// scheduler and GC — and because this reproduction may run on fewer
// hardware threads than the paper's 24-core testbed. The simulator
// replays a task graph on any number of *ideal* workers and reports the
// same quantities as the real engines (makespan, cumulative task / idle /
// runtime time, efficiency decomposition), so the paper's figures can be
// regenerated at their original scale and the measured engine behaviour
// can be cross-checked against the cost models of §3.3.
//
// Two models are simulated:
//
//   - Decentralized in-order (RIO): every worker scans the whole task
//     flow in order, paying DeclareCost for foreign tasks and
//     AcquireCost + duration + ReleaseCost for owned ones, blocking until
//     the task's dependencies have completed. Because each worker is
//     strictly in-order, a single pass over the flow in task order
//     computes the exact schedule.
//
//   - Centralized out-of-order: a master thread pays DispatchCost per
//     task to unroll and wire it (eq. (1)'s n·t_r term); a task becomes
//     available when it is both wired and dependency-free; idle workers
//     take the earliest-available task (FIFO). An event loop computes the
//     schedule.
package sim

import (
	"fmt"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// Costs are the per-task runtime-cost constants of an execution model, in
// simulated time. Fit them from measurements (bench.CostModel) or explore
// hypothetical hardware.
type Costs struct {
	// DeclareCost is RIO's cost to skip over a foreign task (a couple of
	// private writes, §3.3).
	DeclareCost time.Duration
	// AcquireCost and ReleaseCost bracket an owned task's execution
	// (get_* / terminate_* on its accesses).
	AcquireCost, ReleaseCost time.Duration
	// DispatchCost is the centralized master's per-task management time
	// (unrolling, wiring, queueing) — eq. (1)'s t_r.
	DispatchCost time.Duration
	// CompleteCost is the centralized per-task completion handling on the
	// worker (successor release, queue traffic).
	CompleteCost time.Duration
}

// Workload couples a task graph with per-task durations.
type Workload struct {
	Graph *stf.Graph
	// Duration returns the kernel time of task id.
	Duration func(id stf.TaskID) time.Duration
}

// UniformWorkload gives every task of g the same duration.
func UniformWorkload(g *stf.Graph, d time.Duration) Workload {
	return Workload{Graph: g, Duration: func(stf.TaskID) time.Duration { return d }}
}

// Result is a simulated run.
type Result struct {
	// Makespan is the simulated t_p.
	Makespan time.Duration
	// Stats mirrors the real engines' decomposition (per simulated
	// worker; the centralized master is worker 0).
	Stats trace.Stats
	// Start and Finish hold each task's simulated schedule.
	Start, Finish []time.Duration
}

// Efficiency computes e_p and e_r of the simulated run (e_g = e_l = 1 in
// simulation, as with the paper's synthetic kernel).
func (r *Result) Efficiency() trace.Efficiency {
	task, _, _ := r.Stats.Cumulative()
	return trace.Decompose(task, task, &r.Stats)
}

// SimulateRIO computes the exact decentralized in-order schedule of w on
// workers workers under mapping m.
//
// Correctness of the single pass: workers execute their tasks in task-flow
// order, so when task t is processed every earlier task's finish time is
// already final; the owner's clock advances by waiting (idle) until the
// dependencies' max finish time, and every other worker's clock advances by
// DeclareCost.
func SimulateRIO(w Workload, workers int, m stf.Mapping, c Costs) (*Result, error) {
	g := w.Graph
	if workers < 1 {
		return nil, fmt.Errorf("sim: need at least 1 worker")
	}
	deps := g.Dependencies()
	n := len(g.Tasks)
	res := &Result{
		Start:  make([]time.Duration, n),
		Finish: make([]time.Duration, n),
	}
	clock := make([]time.Duration, workers)
	busy := make([]time.Duration, workers) // task+overhead time per worker
	idleAcc := make([]time.Duration, workers)

	for i := range g.Tasks {
		id := stf.TaskID(i)
		owner := m(id)
		if owner < 0 || int(owner) >= workers {
			return nil, fmt.Errorf("sim: mapping(%d) = %d out of range", id, owner)
		}
		var ready time.Duration
		for _, d := range deps[i] {
			if res.Finish[d] > ready {
				ready = res.Finish[d]
			}
		}
		for v := 0; v < workers; v++ {
			if stf.WorkerID(v) != owner {
				clock[v] += c.DeclareCost
				busy[v] += c.DeclareCost
				continue
			}
			start := clock[v] + c.AcquireCost
			if ready > start {
				idleAcc[v] += ready - start
				start = ready
			}
			dur := w.Duration(id)
			finish := start + dur + c.ReleaseCost
			res.Start[i], res.Finish[i] = start, finish
			busy[v] += c.AcquireCost + dur + c.ReleaseCost
			clock[v] = finish
		}
	}
	for _, t := range clock {
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	res.Stats = trace.Stats{Wall: res.Makespan, Accounted: true,
		Workers: make([]trace.WorkerStats, workers)}
	for v := 0; v < workers; v++ {
		taskTime := time.Duration(0)
		for i := range g.Tasks {
			if m(stf.TaskID(i)) == stf.WorkerID(v) {
				taskTime += w.Duration(stf.TaskID(i))
			}
		}
		res.Stats.Workers[v] = trace.WorkerStats{
			Task:    taskTime,
			Idle:    idleAcc[v],
			Runtime: busy[v] - taskTime,
			Wall:    clock[v],
		}
	}
	return res, nil
}

// SimulateCentralized computes the centralized out-of-order schedule:
// worker 0 is the master (pure runtime time), workers 1..p-1 execute.
// Dispatch is FIFO over availability time (ties by task ID).
func SimulateCentralized(w Workload, workers int, c Costs) (*Result, error) {
	if workers < 2 {
		return nil, fmt.Errorf("sim: centralized needs a master and at least one executor")
	}
	g := w.Graph
	n := len(g.Tasks)
	deps := g.Dependencies()
	res := &Result{
		Start:  make([]time.Duration, n),
		Finish: make([]time.Duration, n),
	}

	// Wiring time: the master processes tasks in flow order.
	wired := make([]time.Duration, n)
	for i := range wired {
		wired[i] = time.Duration(i+1) * c.DispatchCost
	}
	masterWall := time.Duration(0)
	if n > 0 {
		masterWall = wired[n-1]
	}

	// available[i]: max(wired, deps' finish + CompleteCost).
	remaining := make([]int, n)
	for i, ds := range deps {
		remaining[i] = len(ds)
	}
	succs := g.Successors()

	// Ready pool ordered by (availableTime, id).
	type readyTask struct {
		at time.Duration
		id int
	}
	var pool []readyTask
	push := func(id int, at time.Duration) {
		pool = append(pool, readyTask{at, id})
	}

	avail := make([]time.Duration, n)
	for i := range avail {
		avail[i] = wired[i]
	}
	for i, r := range remaining {
		if r == 0 {
			push(i, avail[i])
		}
	}

	nexec := workers - 1
	clock := make([]time.Duration, nexec)
	taskTime := make([]time.Duration, nexec)
	overTime := make([]time.Duration, nexec)
	idleAcc := make([]time.Duration, nexec)
	done := 0
	for done < n {
		// Pick the executor that frees up first, give it the earliest
		// available ready task.
		wv := 0
		for v := 1; v < nexec; v++ {
			if clock[v] < clock[wv] {
				wv = v
			}
		}
		// Earliest-available ready task (FIFO by availability then ID).
		best := -1
		for i, rt := range pool {
			if best == -1 || rt.at < pool[best].at || (rt.at == pool[best].at && rt.id < pool[best].id) {
				best = i
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("sim: no ready task but %d tasks unfinished (cyclic graph?)", n-done)
		}
		rt := pool[best]
		pool[best] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]

		start := clock[wv]
		if rt.at > start {
			idleAcc[wv] += rt.at - start
			start = rt.at
		}
		dur := w.Duration(stf.TaskID(rt.id))
		finish := start + dur + c.CompleteCost
		res.Start[rt.id], res.Finish[rt.id] = start, finish
		clock[wv] = finish
		taskTime[wv] += dur
		overTime[wv] += c.CompleteCost
		done++
		for _, s := range succs[rt.id] {
			si := int(s)
			if fin := res.Finish[rt.id]; fin > avail[si] {
				avail[si] = fin
			}
			remaining[si]--
			if remaining[si] == 0 {
				push(si, avail[si])
			}
		}
	}
	for _, t := range clock {
		if t > res.Makespan {
			res.Makespan = t
		}
	}
	if masterWall > res.Makespan {
		res.Makespan = masterWall
	}
	res.Stats = trace.Stats{Wall: res.Makespan, Accounted: true,
		Workers: make([]trace.WorkerStats, workers)}
	// The master thread is dedicated to task management for the whole run
	// (as in StarPU), which is what caps the centralized runtime
	// efficiency at (p-1)/p (paper §5.2).
	res.Stats.Workers[0] = trace.WorkerStats{Runtime: res.Makespan, Wall: res.Makespan}
	for v := 0; v < nexec; v++ {
		res.Stats.Workers[v+1] = trace.WorkerStats{
			Task:    taskTime[v],
			Idle:    idleAcc[v],
			Runtime: overTime[v],
			Wall:    clock[v],
		}
	}
	return res, nil
}

// CriticalPath returns the workload's dependency-path lower bound and
// total work — no schedule can beat max(critical, work/p).
func CriticalPath(w Workload) (critical, work time.Duration) {
	deps := w.Graph.Dependencies()
	finish := make([]time.Duration, len(w.Graph.Tasks))
	for i := range w.Graph.Tasks {
		var ready time.Duration
		for _, d := range deps[i] {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		dur := w.Duration(stf.TaskID(i))
		finish[i] = ready + dur
		if finish[i] > critical {
			critical = finish[i]
		}
		work += dur
	}
	return critical, work
}
