package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/sim"
	"rio/internal/stf"
)

const us = time.Microsecond

func zeroCosts() sim.Costs { return sim.Costs{} }

func TestRIOZeroOverheadSingleWorkerIsSerial(t *testing.T) {
	g := graphs.Independent(10)
	w := sim.UniformWorkload(g, 5*us)
	r, err := sim.SimulateRIO(w, 1, sched.Single(0), zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 50*us {
		t.Errorf("makespan = %v, want 50µs", r.Makespan)
	}
}

func TestRIOIndependentTasksPerfectSpeedup(t *testing.T) {
	// 40 independent 5µs tasks on 4 zero-overhead workers: 50µs.
	g := graphs.Independent(40)
	w := sim.UniformWorkload(g, 5*us)
	r, err := sim.SimulateRIO(w, 4, sched.Cyclic(4), zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 50*us {
		t.Errorf("makespan = %v, want 50µs", r.Makespan)
	}
	eff := r.Efficiency()
	if eff.Parallel < 0.999 {
		t.Errorf("parallel efficiency = %v, want ≈1", eff.Parallel)
	}
}

func TestRIOChainIsSerialRegardlessOfWorkers(t *testing.T) {
	g := graphs.Chain(20)
	w := sim.UniformWorkload(g, 3*us)
	r, err := sim.SimulateRIO(w, 4, sched.Cyclic(4), zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 60*us {
		t.Errorf("chain makespan = %v, want 60µs", r.Makespan)
	}
}

func TestRIODeclareCostGrowsWithForeignTasks(t *testing.T) {
	// Eq. (2): t_p = n·t_r + n·t_t/w. With declare = 1µs, 100 tasks on 2
	// workers (50 each, 10µs tasks): each worker: 50 declares ×1µs + own
	// acquire/release 0 + 50×10µs = 550µs.
	g := graphs.Independent(100)
	w := sim.UniformWorkload(g, 10*us)
	r, err := sim.SimulateRIO(w, 2, sched.Cyclic(2), sim.Costs{DeclareCost: 1 * us})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 550*us {
		t.Errorf("makespan = %v, want 550µs (cost model eq. 2)", r.Makespan)
	}
}

func TestRIOWaitsForDependencies(t *testing.T) {
	// Writer on worker 0 (10µs), reader on worker 1: reader idles 10µs.
	g := stf.NewGraph("pair", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.R(0))
	w := sim.UniformWorkload(g, 10*us)
	r, err := sim.SimulateRIO(w, 2, sched.Cyclic(2), zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Start[1] != 10*us {
		t.Errorf("reader starts at %v, want 10µs", r.Start[1])
	}
	if r.Stats.Workers[1].Idle != 10*us {
		t.Errorf("reader idle = %v, want 10µs", r.Stats.Workers[1].Idle)
	}
	if r.Makespan != 20*us {
		t.Errorf("makespan = %v", r.Makespan)
	}
}

func TestCentralizedMasterBottleneck(t *testing.T) {
	// Eq. (1): with near-zero task bodies, t_p ≈ n·t_r. 1000 zero-length
	// tasks, dispatch 1µs: makespan ≈ 1000µs whatever the worker count.
	g := graphs.Independent(1000)
	w := sim.UniformWorkload(g, 0)
	for _, p := range []int{2, 4, 8, 24} {
		r, err := sim.SimulateCentralized(w, p, sim.Costs{DispatchCost: 1 * us})
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan != 1000*us {
			t.Errorf("p=%d: makespan = %v, want 1000µs (master bottleneck)", p, r.Makespan)
		}
	}
}

func TestCentralizedComputeBoundAtCoarseGrain(t *testing.T) {
	// Coarse tasks: t_p ≈ n·t_t/(p-1); the master keeps up.
	g := graphs.Independent(120)
	w := sim.UniformWorkload(g, 100*us)
	r, err := sim.SimulateCentralized(w, 5, sim.Costs{DispatchCost: 1 * us})
	if err != nil {
		t.Fatal(err)
	}
	// 120 tasks / 4 executors × 100µs = 3000µs (+ small dispatch skew).
	if r.Makespan < 3000*us || r.Makespan > 3200*us {
		t.Errorf("makespan = %v, want ≈3000µs", r.Makespan)
	}
}

func TestCentralizedRespectsDependencies(t *testing.T) {
	g := graphs.Chain(10)
	w := sim.UniformWorkload(g, 10*us)
	r, err := sim.SimulateCentralized(w, 4, zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 100*us {
		t.Errorf("chain makespan = %v, want 100µs", r.Makespan)
	}
	for i := 1; i < 10; i++ {
		if r.Start[i] < r.Finish[i-1] {
			t.Fatalf("task %d started before its predecessor finished", i)
		}
	}
}

func TestCentralizedOutOfOrderBeatsInOrderOnBadOrdering(t *testing.T) {
	// Adversarial submission order for in-order execution: a long chain
	// interleaved with independent tasks mapped to the same worker as the
	// chain's consumers. OoO can overtake; RIO cannot.
	g := stf.NewGraph("bad-order", 1)
	for i := 0; i < 10; i++ {
		g.Add(0, i, 0, 0, stf.RW(0)) // chain
		g.Add(0, i, 1, 0)            // independent
	}
	w := sim.UniformWorkload(g, 10*us)
	rio, err := sim.SimulateRIO(w, 2, sched.Single(0), zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	cen, err := sim.SimulateCentralized(w, 3, zeroCosts())
	if err != nil {
		t.Fatal(err)
	}
	if cen.Makespan >= rio.Makespan {
		t.Errorf("OoO (%v) should beat single-worker in-order (%v) here", cen.Makespan, rio.Makespan)
	}
}

func TestCrossoverShapeMatchesPaper(t *testing.T) {
	// The headline shape of Figures 6/8 at the paper's scale (24 workers)
	// with the cost constants fitted on this machine's engines: at fine
	// granularity RIO wins, at coarse granularity the centralized model
	// catches up (and its makespan approaches n·t_t/(p-1)).
	rioCosts := sim.Costs{DeclareCost: 60 * time.Nanosecond, AcquireCost: 50 * time.Nanosecond, ReleaseCost: 50 * time.Nanosecond}
	cenCosts := sim.Costs{DispatchCost: 400 * time.Nanosecond, CompleteCost: 150 * time.Nanosecond}
	g := graphs.Independent(1 << 14)
	const p = 24
	fineWins, coarseClose := false, false
	for _, taskNs := range []time.Duration{100, 1000, 10_000, 100_000} {
		w := sim.UniformWorkload(g, taskNs)
		r1, err := sim.SimulateRIO(w, p, sched.Cyclic(p), rioCosts)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := sim.SimulateCentralized(w, p, cenCosts)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(r2.Makespan) / float64(r1.Makespan)
		if taskNs == 100 && ratio > 2 {
			fineWins = true
		}
		if taskNs == 100_000 && ratio < 1.2 {
			coarseClose = true
		}
	}
	if !fineWins {
		t.Error("RIO does not win at fine granularity in simulation")
	}
	if !coarseClose {
		t.Error("centralized does not catch up at coarse granularity in simulation")
	}
}

func TestMakespanNeverBeatsLowerBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 50, 8)
		durs := make([]time.Duration, len(g.Tasks))
		for i := range durs {
			durs[i] = time.Duration(rng.Intn(100)) * us
		}
		w := sim.Workload{Graph: g, Duration: func(id stf.TaskID) time.Duration { return durs[id] }}
		p := 1 + rng.Intn(6)
		critical, work := sim.CriticalPath(w)
		bound := critical
		if perW := work / time.Duration(p); perW > bound {
			bound = perW
		}
		r1, err := sim.SimulateRIO(w, p, sched.Cyclic(p), zeroCosts())
		if err != nil || r1.Makespan < critical || r1.Makespan < work/time.Duration(p) {
			return false
		}
		if p >= 2 {
			r2, err := sim.SimulateCentralized(w, p+1, zeroCosts())
			if err != nil || r2.Makespan < critical || r2.Makespan < work/time.Duration(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestScheduleInternallyConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 40, 6)
		w := sim.UniformWorkload(g, time.Duration(1+rng.Intn(20))*us)
		p := 1 + rng.Intn(4)
		r, err := sim.SimulateRIO(w, p, sched.Cyclic(p), sim.Costs{DeclareCost: 100 * time.Nanosecond})
		if err != nil {
			return false
		}
		deps := g.Dependencies()
		for i := range g.Tasks {
			if r.Finish[i] < r.Start[i] {
				return false
			}
			for _, d := range deps[i] {
				if r.Start[i] < r.Finish[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSimulateValidation(t *testing.T) {
	g := graphs.Independent(3)
	w := sim.UniformWorkload(g, us)
	if _, err := sim.SimulateRIO(w, 0, sched.Cyclic(1), zeroCosts()); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := sim.SimulateRIO(w, 2, sched.Single(7), zeroCosts()); err == nil {
		t.Error("out-of-range mapping accepted")
	}
	if _, err := sim.SimulateCentralized(w, 1, zeroCosts()); err == nil {
		t.Error("centralized without executor accepted")
	}
}
