package enginetest_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"rio"
	"rio/internal/enginetest"
	"rio/internal/faultinject"
	"rio/internal/graphs"
	"rio/internal/stf"
)

// Resume-after-failure correctness, cross-engine: a run is killed mid-flow
// by a permanent fault, the checkpoint is captured from the PartialError,
// and a second run with Options.Resume finishes the job over the same data
// memory. The combined outcome must match the sequential reference exactly
// (values and dependency order) — the end-to-end statement that the
// checkpointed frontier is dependency-closed and resume preserves
// sequential consistency.
//
// The two phases share one oracle trace and one ticket clock: phase-1
// tickets stay in place for the skipped tasks, so CheckOrder validates the
// stitched execution order across the failure boundary.

// failResume runs g on a fresh engine built from opts with a permanent
// fault at failID and returns the captured checkpoint. Retry with
// MaxAttempts 1 turns the fault into an immediate terminal TaskFailure on
// every engine (and enables checkpoint tracking).
func failResume(t *testing.T, opts rio.Options, g *stf.Graph, tr *enginetest.Trace, clock *atomic.Int64, failID stf.TaskID) *rio.Checkpoint {
	t.Helper()
	opts.Retry = &rio.RetryPolicy{MaxAttempts: 1}
	rt := mustEngine(t, opts)
	kern := faultinject.PanicAt(enginetest.Kernel(tr, clock), failID)
	err := rt.Run(g.NumData, stf.Replay(g, kern))
	if err == nil {
		t.Fatal("run survived a permanent fault")
	}
	var pe *rio.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not wrap a PartialError", err)
	}
	cp := pe.Result.Checkpoint()
	if cp.Contains(failID) {
		t.Fatal("failed task recorded as completed")
	}
	if cp.Len() == 0 {
		t.Fatal("empty checkpoint: nothing completed before the fault")
	}
	// Every skipped task's ticket must still be zero (its body never ran),
	// and every checkpointed task's must be stamped.
	for _, id := range cp.Completed {
		if tr.Tickets[id] == 0 {
			t.Fatalf("checkpointed task %d has no execution stamp", id)
		}
	}
	return cp
}

func TestResumeAfterFailure(t *testing.T) {
	g := graphs.LURect(3, 3)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	const failID = 7
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			cp := failResume(t, spec.opts, g, tr, &clock, failID)

			opts := spec.opts
			opts.Resume = cp
			rt := mustEngine(t, opts)
			if err := rt.Run(g.NumData, stf.Replay(g, enginetest.Kernel(tr, &clock))); err != nil {
				t.Fatalf("resumed run failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Errorf("resumed run diverged from the sequential reference: %v", err)
			}
			if p := rt.Progress(); p.Skipped() != int64(cp.Len()) {
				t.Errorf("Progress().Skipped() = %d, want %d (the checkpoint size)", p.Skipped(), cp.Len())
			}
		})
	}
}

// The compiled fast path prunes checkpointed tasks out of the cached
// instruction streams (§3.5 machinery reused for resume) instead of
// skipping them at replay time; the outcome must be identical.
func TestResumeCompiledReplay(t *testing.T) {
	g := graphs.LURect(3, 3)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	const failID = 7
	for _, prune := range []bool{false, true} {
		name := "unpruned"
		if prune {
			name = "pruned"
		}
		t.Run(name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64

			eng1, err := rio.NewEngine(rio.Options{Workers: 2, Prune: prune, Retry: &rio.RetryPolicy{MaxAttempts: 1}})
			if err != nil {
				t.Fatal(err)
			}
			kern := faultinject.PanicAt(enginetest.Kernel(tr, &clock), failID)
			runErr := eng1.RunGraph(g, kern)
			if runErr == nil {
				t.Fatal("compiled run survived a permanent fault")
			}
			var pe *rio.PartialError
			if !errors.As(runErr, &pe) {
				t.Fatalf("error %v does not wrap a PartialError", runErr)
			}
			cp := pe.Result.Checkpoint()
			if cp.Len() == 0 {
				t.Fatal("empty checkpoint")
			}

			eng2, err := rio.NewEngine(rio.Options{Workers: 2, Prune: prune, Resume: cp})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng2.RunGraph(g, enginetest.Kernel(tr, &clock)); err != nil {
				t.Fatalf("resumed compiled run failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Errorf("resumed compiled run diverged: %v", err)
			}
			if p := eng2.Progress(); p.Skipped() != int64(cp.Len()) {
				t.Errorf("Progress().Skipped() = %d, want %d", p.Skipped(), cp.Len())
			}
		})
	}
}

// A second-generation failure: the resumed run itself dies and is resumed
// again. The checkpoint chain must accumulate — the second PartialError's
// completed set contains the first checkpoint — so recovery composes.
func TestResumeChained(t *testing.T) {
	g := graphs.Chain(20)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			cp1 := failResume(t, spec.opts, g, tr, &clock, 5)

			opts := spec.opts
			opts.Resume = cp1
			cp2 := failResume(t, opts, g, tr, &clock, 12)
			for _, id := range cp1.Completed {
				if !cp2.Contains(id) {
					t.Fatalf("second checkpoint lost task %d from the first", id)
				}
			}

			opts = spec.opts
			opts.Resume = cp2
			rt := mustEngine(t, opts)
			if err := rt.Run(g.NumData, stf.Replay(g, enginetest.Kernel(tr, &clock))); err != nil {
				t.Fatalf("final resumed run failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Error(err)
			}
		})
	}
}
