// Package enginetest provides a sequential-consistency oracle shared by the
// test suites of all execution engines.
//
// The oracle kernel makes every task write, into each data object it
// writes, a value derived from the task's ID and from the values it read.
// Because the derivation is a non-commutative hash chain, *any* execution
// that violates the STF ordering rules (a read overtaking a write, two
// writes swapping, a lost update) ends with data values different from the
// sequential execution's — so comparing final values against the
// sequential engine's checks sequential consistency end-to-end.
//
// The kernel additionally stamps each task with a global ticket at
// execution time; the resulting start order must respect the graph's
// dependencies (stf.Graph.CheckOrder), a second, independent oracle.
package enginetest

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rio/internal/sequential"
	"rio/internal/stf"
)

// Engine is the minimal surface the oracle needs from an execution engine.
type Engine interface {
	Run(numData int, prog stf.Program) error
}

// mix is a non-commutative 64-bit combiner (splitmix-style).
func mix(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 + b + 0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	return x
}

// Trace holds the observable outcome of one oracle run.
type Trace struct {
	// Vals is the final value of every data object.
	Vals []uint64
	// Tickets holds each task's global execution stamp (1-based).
	Tickets []int64
}

// Order returns the task IDs sorted by execution stamp.
func (tr *Trace) Order() []stf.TaskID {
	order := make([]stf.TaskID, len(tr.Tickets))
	for i := range order {
		order[i] = stf.TaskID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return tr.Tickets[order[a]] < tr.Tickets[order[b]]
	})
	return order
}

// Kernel returns the oracle kernel writing into tr, which must have been
// sized for the graph (use NewTrace).
//
// Reduction accesses use plain addition — a commutative combine — so the
// final value is the same for every legal ordering of a reduction run,
// while any run member racing with a read or write still shows up as a
// value mismatch (and as a data race under -race, since the engines must
// serialize reduction bodies).
func Kernel(tr *Trace, clock *atomic.Int64) stf.Kernel {
	return func(t *stf.Task, _ stf.WorkerID) {
		tr.Tickets[t.ID] = clock.Add(1)
		h := uint64(t.ID)
		for _, a := range t.Accesses {
			if a.Mode.Reads() {
				h = mix(h, tr.Vals[a.Data])
			}
		}
		for _, a := range t.Accesses {
			switch {
			case a.Mode == stf.WriteOnly:
				// Write-only semantics: overwrite without reading.
				tr.Vals[a.Data] = mix(0, h)
			case a.Mode == stf.ReadWrite:
				tr.Vals[a.Data] = mix(tr.Vals[a.Data], h)
			case a.Mode.Commutes():
				tr.Vals[a.Data] += h
			}
		}
	}
}

// NewTrace allocates a trace for g.
func NewTrace(g *stf.Graph) *Trace {
	return &Trace{
		Vals:    make([]uint64, g.NumData),
		Tickets: make([]int64, len(g.Tasks)),
	}
}

// Run executes g on e with the oracle kernel and returns the trace.
func Run(e Engine, g *stf.Graph) (*Trace, error) {
	tr := NewTrace(g)
	var clock atomic.Int64
	if err := e.Run(g.NumData, stf.Replay(g, Kernel(tr, &clock))); err != nil {
		return nil, err
	}
	return tr, nil
}

// RunProgram executes an arbitrary pruned/custom program over g's data with
// the oracle kernel; progFor builds the program from the kernel.
func RunProgram(e Engine, g *stf.Graph, progFor func(stf.Kernel) stf.Program) (*Trace, error) {
	tr := NewTrace(g)
	var clock atomic.Int64
	if err := e.Run(g.NumData, progFor(Kernel(tr, &clock))); err != nil {
		return nil, err
	}
	return tr, nil
}

// CompiledEngine is the surface the oracle needs to check the compiled
// replay path.
type CompiledEngine interface {
	RunCompiled(cp *stf.CompiledProgram, k stf.Kernel) error
}

// RunCompiled executes a program compiled from g with the oracle kernel
// and returns the trace.
func RunCompiled(e CompiledEngine, g *stf.Graph, cp *stf.CompiledProgram) (*Trace, error) {
	tr := NewTrace(g)
	var clock atomic.Int64
	if err := e.RunCompiled(cp, Kernel(tr, &clock)); err != nil {
		return nil, err
	}
	return tr, nil
}

// CheckCompiled runs cp (compiled from g) on e and verifies both oracles
// against the sequential reference, like Check does for closure replay.
func CheckCompiled(e CompiledEngine, g *stf.Graph, cp *stf.CompiledProgram) error {
	want, err := Golden(g)
	if err != nil {
		return fmt.Errorf("golden run: %w", err)
	}
	got, err := RunCompiled(e, g, cp)
	if err != nil {
		return fmt.Errorf("compiled run: %w", err)
	}
	return Compare(g, want, got)
}

// Golden returns the sequential-execution trace of g (the STF reference
// semantics).
func Golden(g *stf.Graph) (*Trace, error) {
	return Run(sequential.New(sequential.Options{}), g)
}

// Check runs g on e and verifies both oracles against the sequential
// reference: identical final data values, and a dependency-respecting
// execution order. It returns a descriptive error on the first violation.
func Check(e Engine, g *stf.Graph) error {
	want, err := Golden(g)
	if err != nil {
		return fmt.Errorf("golden run: %w", err)
	}
	got, err := Run(e, g)
	if err != nil {
		return fmt.Errorf("engine run: %w", err)
	}
	return Compare(g, want, got)
}

// Compare verifies got against the sequential reference trace want.
func Compare(g *stf.Graph, want, got *Trace) error {
	for d := range want.Vals {
		if want.Vals[d] != got.Vals[d] {
			return fmt.Errorf("data %d: got %#x, sequential reference %#x (sequential consistency violated)", d, got.Vals[d], want.Vals[d])
		}
	}
	for id, tk := range got.Tickets {
		if tk == 0 && len(g.Tasks) > 0 {
			return fmt.Errorf("task %d never executed", id)
		}
	}
	if bad := g.CheckOrder(got.Order()); bad != stf.NoTask {
		return fmt.Errorf("execution order violates dependencies at task %d", bad)
	}
	return nil
}
