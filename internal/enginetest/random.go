package enginetest

import (
	"math/rand"

	"rio/internal/stf"
)

// RandomGraph generates a random STF task flow for property-based tests:
// up to maxTasks tasks over up to maxData data objects, each task accessing
// up to 4 distinct data objects in random modes. The generator is
// deterministic in rng.
func RandomGraph(rng *rand.Rand, maxTasks, maxData int) *stf.Graph {
	nTasks := 1 + rng.Intn(maxTasks)
	nData := 1 + rng.Intn(maxData)
	g := stf.NewGraph("random-property", nData)
	modes := []stf.AccessMode{stf.ReadOnly, stf.WriteOnly, stf.ReadWrite}
	for i := 0; i < nTasks; i++ {
		na := rng.Intn(5)
		if na > nData {
			na = nData
		}
		perm := rng.Perm(nData)
		accesses := make([]stf.Access, 0, na)
		for _, d := range perm[:na] {
			accesses = append(accesses, stf.Access{
				Data: stf.DataID(d),
				Mode: modes[rng.Intn(len(modes))],
			})
		}
		g.Add(KOracle, i, 0, 0, accesses...)
	}
	return g
}

// KOracle is the kernel selector used by randomly generated oracle tasks.
const KOracle = 999

// RandomGraphWithReductions is RandomGraph with Reduction accesses mixed
// in. It is used by engine property tests; the model checker does not
// accept reductions, so spec tests use RandomGraph instead.
func RandomGraphWithReductions(rng *rand.Rand, maxTasks, maxData int) *stf.Graph {
	nTasks := 1 + rng.Intn(maxTasks)
	nData := 1 + rng.Intn(maxData)
	g := stf.NewGraph("random-reductions", nData)
	modes := []stf.AccessMode{stf.ReadOnly, stf.WriteOnly, stf.ReadWrite, stf.Reduction, stf.Reduction}
	for i := 0; i < nTasks; i++ {
		na := rng.Intn(4)
		if na > nData {
			na = nData
		}
		perm := rng.Perm(nData)
		accesses := make([]stf.Access, 0, na)
		for _, d := range perm[:na] {
			accesses = append(accesses, stf.Access{
				Data: stf.DataID(d),
				Mode: modes[rng.Intn(len(modes))],
			})
		}
		g.Add(KOracle, i, 0, 0, accesses...)
	}
	return g
}
