package enginetest_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rio"
	"rio/internal/enginetest"
	"rio/internal/faultinject"
	"rio/internal/graphs"
	"rio/internal/stf"
)

// The fault matrix: every engine against every fault class from
// internal/faultinject. Every case must return a descriptive error (or
// demonstrably survive the fault) — never hang; the package-level test
// timeout is the backstop, the assertions below are the specification.

type engineSpec struct {
	name string
	opts rio.Options
}

func faultEngines() []engineSpec {
	return []engineSpec{
		{"rio-2w", rio.Options{Model: rio.InOrder, Workers: 2}},
		{"rio-4w", rio.Options{Model: rio.InOrder, Workers: 4}},
		{"centralized-fifo", rio.Options{Model: rio.Centralized, Workers: 3}},
		{"centralized-ws", rio.Options{Model: rio.CentralizedWS, Workers: 3}},
		{"centralized-prio", rio.Options{Model: rio.CentralizedPrio, Workers: 3}},
		{"sequential", rio.Options{Model: rio.Sequential, Workers: 1}},
	}
}

func mustEngine(t *testing.T, opts rio.Options) rio.Runtime {
	t.Helper()
	rt, err := rio.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func noop(*stf.Task, stf.WorkerID) {}

// sleepKernel burns d of wall time per task, so a run stays in flight long
// enough for an external event (cancellation, deadline) to land mid-run.
func sleepKernel(d time.Duration) stf.Kernel {
	return func(*stf.Task, stf.WorkerID) { time.Sleep(d) }
}

func TestFaultPanic(t *testing.T) {
	g := graphs.Chain(50)
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			rt := mustEngine(t, spec.opts)
			kern := faultinject.PanicAt(noop, 7)
			err := rt.Run(g.NumData, rio.Replay(g, kern))
			if err == nil {
				t.Fatal("injected panic returned nil error")
			}
			if !strings.Contains(err.Error(), "panic") {
				t.Fatalf("error does not mention the panic: %v", err)
			}
		})
	}
}

func TestFaultCancelMidRun(t *testing.T) {
	g := graphs.Chain(400)
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			rt := mustEngine(t, spec.opts)
			started := make(chan struct{})
			var once sync.Once
			kern := func(tk *stf.Task, w stf.WorkerID) {
				if tk.ID == 0 {
					once.Do(func() { close(started) })
				}
				time.Sleep(500 * time.Microsecond)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				<-started
				cancel()
			}()
			err := rt.RunContext(ctx, g.NumData, rio.Replay(g, kern))
			if err == nil {
				t.Fatal("canceled run returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
		})
	}
}

func TestFaultDeadlineExpiry(t *testing.T) {
	g := graphs.Chain(400)
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			opts := spec.opts
			opts.Timeout = 30 * time.Millisecond
			rt := mustEngine(t, opts)
			// The chain serializes everything: ~400ms of task time against
			// a 30ms budget, under plain Run (the Options.Timeout path).
			err := rt.Run(g.NumData, rio.Replay(g, sleepKernel(time.Millisecond)))
			if err == nil {
				t.Fatal("run past its deadline returned nil error")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
			}
		})
	}
}

// TestFaultWatchdogDeadlock injects the fault the paper's determinism
// assumption warns about: one worker's replay silently drops a task it
// owns, so the task never executes and every worker ends up blocked in a
// dependency wait. Without the watchdog this hangs forever; with it the
// run must abort with a StallError naming the stuck tasks and data.
func TestFaultWatchdogDeadlock(t *testing.T) {
	g := graphs.Chain(64)
	for _, workers := range []int{2, 4} {
		t.Run(rio.InOrder.String()+"-"+itoa(workers)+"w", func(t *testing.T) {
			rt := mustEngine(t, rio.Options{
				Model:        rio.InOrder,
				Workers:      workers,
				StallTimeout: 50 * time.Millisecond,
			})
			// Task 1 is owned by worker 1 under the cyclic mapping; worker
			// 1's replay drops it, so nobody executes it.
			prog := faultinject.DropTaskAt(g, noop, 1, 1)
			start := time.Now()
			err := rt.Run(g.NumData, prog)
			if err == nil {
				t.Fatal("divergent replay deadlock returned nil error")
			}
			var st *rio.StallError
			if !errors.As(err, &st) {
				t.Fatalf("error is not a StallError: %v", err)
			}
			if st.Kind != rio.Deadlock {
				t.Fatalf("StallError kind = %v, want Deadlock (err: %v)", st.Kind, err)
			}
			if len(st.Stalled) == 0 {
				t.Fatalf("StallError names no stalled workers: %v", err)
			}
			for _, sw := range st.Stalled {
				if sw.Data != 0 {
					t.Errorf("stalled worker %d blocked on data %d, want 0", sw.Worker, sw.Data)
				}
				if sw.Task < 2 {
					t.Errorf("stalled worker %d blocked on task %d, want a task after the dropped one", sw.Worker, sw.Task)
				}
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("deadlock detection took %v", d)
			}
		})
	}
}

// TestFaultWatchdogStuckTask wedges one task body forever: the watchdog
// must classify the stall as a stuck task (not a deadlock), name the task,
// and abandon the run instead of blocking RunContext forever.
func TestFaultWatchdogStuckTask(t *testing.T) {
	g := graphs.Chain(32)
	rt := mustEngine(t, rio.Options{
		Model:        rio.InOrder,
		Workers:      2,
		StallTimeout: 50 * time.Millisecond,
	})
	release := make(chan struct{})
	defer close(release) // let the wedged goroutine exit after the test
	kern := faultinject.HangAt(noop, 2, release)
	err := rt.Run(g.NumData, rio.Replay(g, kern))
	if err == nil {
		t.Fatal("never-terminating task returned nil error")
	}
	var st *rio.StallError
	if !errors.As(err, &st) {
		t.Fatalf("error is not a StallError: %v", err)
	}
	if st.Kind != rio.StuckTask {
		t.Fatalf("StallError kind = %v, want StuckTask (err: %v)", st.Kind, err)
	}
	found := false
	for _, bw := range st.Busy {
		if bw.Task == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("StallError does not name the wedged task 2: %v", err)
	}
}

// TestFaultStragglerBelowThreshold: a slow task under the watchdog
// threshold is imbalance, not a stall — the run must complete cleanly.
func TestFaultStragglerBelowThreshold(t *testing.T) {
	g := graphs.Independent(64)
	rt := mustEngine(t, rio.Options{
		Model:        rio.InOrder,
		Workers:      4,
		StallTimeout: 400 * time.Millisecond,
	})
	kern := faultinject.DelayAt(noop, 3, 60*time.Millisecond)
	if err := rt.Run(g.NumData, rio.Replay(g, kern)); err != nil {
		t.Fatalf("sub-threshold straggler tripped the watchdog: %v", err)
	}
}

func TestFaultOutOfRangeMapping(t *testing.T) {
	g := graphs.Chain(16)
	t.Run("rio", func(t *testing.T) {
		// The in-order engine must reject the mapping as a protocol
		// violation and unwind every worker.
		rt := mustEngine(t, rio.Options{
			Model:   rio.InOrder,
			Workers: 2,
			Mapping: faultinject.OutOfRange(rio.CyclicMapping(2), 3),
		})
		err := rt.Run(g.NumData, rio.Replay(g, noop))
		if err == nil {
			t.Fatal("out-of-range mapping returned nil error")
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("error does not mention the range violation: %v", err)
		}
	})
	t.Run("centralized-ws", func(t *testing.T) {
		// The centralized engine only uses the mapping as a locality hint;
		// an out-of-range hint falls back to round-robin and the run must
		// still be sequentially consistent.
		rt := mustEngine(t, rio.Options{
			Model:   rio.CentralizedWS,
			Workers: 3,
			Mapping: faultinject.OutOfRange(rio.CyclicMapping(2), 3),
		})
		if err := enginetest.Check(rt, g); err != nil {
			t.Fatalf("out-of-range hint broke the centralized engine: %v", err)
		}
	})
}

// TestFaultDivergenceCompletes injects a replay divergence that does NOT
// deadlock (one worker sees an extra read of an otherwise-untouched data
// object): the run completes and the divergence guard must report it
// instead of silently accepting corrupted bookkeeping.
func TestFaultDivergenceCompletes(t *testing.T) {
	g := stf.NewGraph("div", 2)
	for i := 0; i < 40; i++ {
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	for _, workers := range []int{2, 4} {
		t.Run(itoa(workers)+"w", func(t *testing.T) {
			rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: workers})
			prog := faultinject.ExtraAccessAt(g, noop, 1, 5, stf.R(1))
			err := rt.Run(g.NumData, prog)
			if err == nil {
				t.Fatal("divergent replay returned nil error")
			}
			var div *rio.DivergenceError
			if !errors.As(err, &div) {
				t.Fatalf("error is not a DivergenceError: %v", err)
			}
		})
	}
	t.Run("NoGuard", func(t *testing.T) {
		// Opting out must restore the old behavior: the run completes
		// without an error (the caller has accepted the risk).
		rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 2, NoGuard: true})
		prog := faultinject.ExtraAccessAt(g, noop, 1, 5, stf.R(1))
		if err := rt.Run(g.NumData, prog); err != nil {
			t.Fatalf("NoGuard run reported: %v", err)
		}
	})
}

// TestFaultDivergenceAccessOrder: one worker replays task 5's accesses in
// reverse order — same access *set*, same IDs, same modes. The per-data
// protocol bookkeeping is order-insensitive on data nothing else
// synchronizes on, so the run completes; the divergence guard's stream
// hash must still tell the replays apart ([R(x),W(y)] vs [W(y),R(x)]).
func TestFaultDivergenceAccessOrder(t *testing.T) {
	g := stf.NewGraph("div-order", 3)
	for i := 0; i < 40; i++ {
		if i == 5 {
			// The reorder target: two extra reads of data nobody else
			// touches, so both orders execute identically.
			g.Add(0, i, 0, 0, stf.RW(0), stf.R(1), stf.R(2))
			continue
		}
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 2})
	err := rt.Run(g.NumData, faultinject.ReorderAccessesAt(g, noop, 1, 5))
	if err == nil {
		t.Fatal("order-divergent replay returned nil error")
	}
	var div *rio.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("error is not a DivergenceError: %v", err)
	}
}

// TestFaultDivergenceAccessMode: one worker replays task 5's extra access
// with a different mode (R vs RW, and R vs Red) on data nothing else
// synchronizes on — the run completes and only a mode-sensitive guard
// hash can catch it.
func TestFaultDivergenceAccessMode(t *testing.T) {
	g := stf.NewGraph("div-mode", 2)
	for i := 0; i < 40; i++ {
		if i == 5 {
			g.Add(0, i, 0, 0, stf.RW(0), stf.R(1))
			continue
		}
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	for _, tc := range []struct {
		name string
		mode stf.AccessMode
	}{
		{"R-vs-RW", stf.RW(1).Mode},
		{"R-vs-Red", stf.Red(1).Mode},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 2})
			err := rt.Run(g.NumData, faultinject.ChangeModeAt(g, noop, 1, 5, 1, tc.mode))
			if err == nil {
				t.Fatal("mode-divergent replay returned nil error")
			}
			var div *rio.DivergenceError
			if !errors.As(err, &div) {
				t.Fatalf("error is not a DivergenceError: %v", err)
			}
		})
	}
}

// TestFaultGuardAcceptsCleanRuns: the guard must stay silent on correct
// programs (this is the false-positive control for the whole guard).
func TestFaultGuardAcceptsCleanRuns(t *testing.T) {
	for _, g := range []*stf.Graph{graphs.Chain(100), graphs.LU(5), graphs.RandomDeps(200, 16, 2, 1, 3)} {
		rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 4})
		if err := enginetest.Check(rt, g); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
