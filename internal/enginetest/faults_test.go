package enginetest_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rio"
	"rio/internal/enginetest"
	"rio/internal/faultinject"
	"rio/internal/graphs"
	"rio/internal/stf"
)

// The fault matrix: every engine against every fault class from
// internal/faultinject. Every case must return a descriptive error (or
// demonstrably survive the fault) — never hang; the package-level test
// timeout is the backstop, the assertions below are the specification.

type engineSpec struct {
	name string
	opts rio.Options
}

func faultEngines() []engineSpec {
	return []engineSpec{
		{"rio-2w", rio.Options{Model: rio.InOrder, Workers: 2}},
		{"rio-4w", rio.Options{Model: rio.InOrder, Workers: 4}},
		{"centralized-fifo", rio.Options{Model: rio.Centralized, Workers: 3}},
		{"centralized-ws", rio.Options{Model: rio.CentralizedWS, Workers: 3}},
		{"centralized-prio", rio.Options{Model: rio.CentralizedPrio, Workers: 3}},
		{"sequential", rio.Options{Model: rio.Sequential, Workers: 1}},
	}
}

func mustEngine(t *testing.T, opts rio.Options) rio.Runtime {
	t.Helper()
	rt, err := rio.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func noop(*stf.Task, stf.WorkerID) {}

// sleepKernel burns d of wall time per task, so a run stays in flight long
// enough for an external event (cancellation, deadline) to land mid-run.
func sleepKernel(d time.Duration) stf.Kernel {
	return func(*stf.Task, stf.WorkerID) { time.Sleep(d) }
}

func TestFaultPanic(t *testing.T) {
	g := graphs.Chain(50)
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			rt := mustEngine(t, spec.opts)
			kern := faultinject.PanicAt(noop, 7)
			err := rt.Run(g.NumData, rio.Replay(g, kern))
			if err == nil {
				t.Fatal("injected panic returned nil error")
			}
			if !strings.Contains(err.Error(), "panic") {
				t.Fatalf("error does not mention the panic: %v", err)
			}
		})
	}
}

func TestFaultCancelMidRun(t *testing.T) {
	g := graphs.Chain(400)
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			rt := mustEngine(t, spec.opts)
			started := make(chan struct{})
			var once sync.Once
			kern := func(tk *stf.Task, w stf.WorkerID) {
				if tk.ID == 0 {
					once.Do(func() { close(started) })
				}
				time.Sleep(500 * time.Microsecond)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				<-started
				cancel()
			}()
			err := rt.RunContext(ctx, g.NumData, rio.Replay(g, kern))
			if err == nil {
				t.Fatal("canceled run returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
		})
	}
}

func TestFaultDeadlineExpiry(t *testing.T) {
	g := graphs.Chain(400)
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			opts := spec.opts
			opts.Timeout = 30 * time.Millisecond
			rt := mustEngine(t, opts)
			// The chain serializes everything: ~400ms of task time against
			// a 30ms budget, under plain Run (the Options.Timeout path).
			err := rt.Run(g.NumData, rio.Replay(g, sleepKernel(time.Millisecond)))
			if err == nil {
				t.Fatal("run past its deadline returned nil error")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
			}
		})
	}
}

// TestFaultWatchdogDeadlock injects the fault the paper's determinism
// assumption warns about: one worker's replay silently drops a task it
// owns, so the task never executes and every worker ends up blocked in a
// dependency wait. Without the watchdog this hangs forever; with it the
// run must abort with a StallError naming the stuck tasks and data.
func TestFaultWatchdogDeadlock(t *testing.T) {
	g := graphs.Chain(64)
	for _, workers := range []int{2, 4} {
		t.Run(rio.InOrder.String()+"-"+itoa(workers)+"w", func(t *testing.T) {
			rt := mustEngine(t, rio.Options{
				Model:        rio.InOrder,
				Workers:      workers,
				StallTimeout: 50 * time.Millisecond,
			})
			// Task 1 is owned by worker 1 under the cyclic mapping; worker
			// 1's replay drops it, so nobody executes it.
			prog := faultinject.DropTaskAt(g, noop, 1, 1)
			start := time.Now()
			err := rt.Run(g.NumData, prog)
			if err == nil {
				t.Fatal("divergent replay deadlock returned nil error")
			}
			var st *rio.StallError
			if !errors.As(err, &st) {
				t.Fatalf("error is not a StallError: %v", err)
			}
			if st.Kind != rio.Deadlock {
				t.Fatalf("StallError kind = %v, want Deadlock (err: %v)", st.Kind, err)
			}
			if len(st.Stalled) == 0 {
				t.Fatalf("StallError names no stalled workers: %v", err)
			}
			for _, sw := range st.Stalled {
				if sw.Data != 0 {
					t.Errorf("stalled worker %d blocked on data %d, want 0", sw.Worker, sw.Data)
				}
				if sw.Task < 2 {
					t.Errorf("stalled worker %d blocked on task %d, want a task after the dropped one", sw.Worker, sw.Task)
				}
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("deadlock detection took %v", d)
			}
		})
	}
}

// TestFaultWatchdogStuckTask wedges one task body forever: the watchdog
// must classify the stall as a stuck task (not a deadlock), name the task,
// and abandon the run instead of blocking RunContext forever.
func TestFaultWatchdogStuckTask(t *testing.T) {
	g := graphs.Chain(32)
	rt := mustEngine(t, rio.Options{
		Model:        rio.InOrder,
		Workers:      2,
		StallTimeout: 50 * time.Millisecond,
	})
	release := make(chan struct{})
	defer close(release) // let the wedged goroutine exit after the test
	kern := faultinject.HangAt(noop, 2, release)
	err := rt.Run(g.NumData, rio.Replay(g, kern))
	if err == nil {
		t.Fatal("never-terminating task returned nil error")
	}
	var st *rio.StallError
	if !errors.As(err, &st) {
		t.Fatalf("error is not a StallError: %v", err)
	}
	if st.Kind != rio.StuckTask {
		t.Fatalf("StallError kind = %v, want StuckTask (err: %v)", st.Kind, err)
	}
	found := false
	for _, bw := range st.Busy {
		if bw.Task == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("StallError does not name the wedged task 2: %v", err)
	}
}

// TestFaultStragglerBelowThreshold: a slow task under the watchdog
// threshold is imbalance, not a stall — the run must complete cleanly.
func TestFaultStragglerBelowThreshold(t *testing.T) {
	g := graphs.Independent(64)
	rt := mustEngine(t, rio.Options{
		Model:        rio.InOrder,
		Workers:      4,
		StallTimeout: 400 * time.Millisecond,
	})
	kern := faultinject.DelayAt(noop, 3, 60*time.Millisecond)
	if err := rt.Run(g.NumData, rio.Replay(g, kern)); err != nil {
		t.Fatalf("sub-threshold straggler tripped the watchdog: %v", err)
	}
}

func TestFaultOutOfRangeMapping(t *testing.T) {
	g := graphs.Chain(16)
	t.Run("rio", func(t *testing.T) {
		// The in-order engine must reject the mapping as a protocol
		// violation and unwind every worker.
		rt := mustEngine(t, rio.Options{
			Model:   rio.InOrder,
			Workers: 2,
			Mapping: faultinject.OutOfRange(rio.CyclicMapping(2), 3),
		})
		err := rt.Run(g.NumData, rio.Replay(g, noop))
		if err == nil {
			t.Fatal("out-of-range mapping returned nil error")
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("error does not mention the range violation: %v", err)
		}
	})
	t.Run("centralized-ws", func(t *testing.T) {
		// The centralized engine only uses the mapping as a locality hint;
		// an out-of-range hint falls back to round-robin and the run must
		// still be sequentially consistent.
		rt := mustEngine(t, rio.Options{
			Model:   rio.CentralizedWS,
			Workers: 3,
			Mapping: faultinject.OutOfRange(rio.CyclicMapping(2), 3),
		})
		if err := enginetest.Check(rt, g); err != nil {
			t.Fatalf("out-of-range hint broke the centralized engine: %v", err)
		}
	})
}

// TestFaultDivergenceCompletes injects a replay divergence that does NOT
// deadlock (one worker sees an extra read of an otherwise-untouched data
// object): the run completes and the divergence guard must report it
// instead of silently accepting corrupted bookkeeping.
func TestFaultDivergenceCompletes(t *testing.T) {
	g := stf.NewGraph("div", 2)
	for i := 0; i < 40; i++ {
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	for _, workers := range []int{2, 4} {
		t.Run(itoa(workers)+"w", func(t *testing.T) {
			rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: workers})
			prog := faultinject.ExtraAccessAt(g, noop, 1, 5, stf.R(1))
			err := rt.Run(g.NumData, prog)
			if err == nil {
				t.Fatal("divergent replay returned nil error")
			}
			var div *rio.DivergenceError
			if !errors.As(err, &div) {
				t.Fatalf("error is not a DivergenceError: %v", err)
			}
		})
	}
	t.Run("NoGuard", func(t *testing.T) {
		// Opting out must restore the old behavior: the run completes
		// without an error (the caller has accepted the risk).
		rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 2, NoGuard: true})
		prog := faultinject.ExtraAccessAt(g, noop, 1, 5, stf.R(1))
		if err := rt.Run(g.NumData, prog); err != nil {
			t.Fatalf("NoGuard run reported: %v", err)
		}
	})
}

// TestFaultDivergenceAccessOrder: one worker replays task 5's accesses in
// reverse order — same access *set*, same IDs, same modes. The per-data
// protocol bookkeeping is order-insensitive on data nothing else
// synchronizes on, so the run completes; the divergence guard's stream
// hash must still tell the replays apart ([R(x),W(y)] vs [W(y),R(x)]).
func TestFaultDivergenceAccessOrder(t *testing.T) {
	g := stf.NewGraph("div-order", 3)
	for i := 0; i < 40; i++ {
		if i == 5 {
			// The reorder target: two extra reads of data nobody else
			// touches, so both orders execute identically.
			g.Add(0, i, 0, 0, stf.RW(0), stf.R(1), stf.R(2))
			continue
		}
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 2})
	err := rt.Run(g.NumData, faultinject.ReorderAccessesAt(g, noop, 1, 5))
	if err == nil {
		t.Fatal("order-divergent replay returned nil error")
	}
	var div *rio.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("error is not a DivergenceError: %v", err)
	}
}

// TestFaultDivergenceAccessMode: one worker replays task 5's extra access
// with a different mode (R vs RW, and R vs Red) on data nothing else
// synchronizes on — the run completes and only a mode-sensitive guard
// hash can catch it.
func TestFaultDivergenceAccessMode(t *testing.T) {
	g := stf.NewGraph("div-mode", 2)
	for i := 0; i < 40; i++ {
		if i == 5 {
			g.Add(0, i, 0, 0, stf.RW(0), stf.R(1))
			continue
		}
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	for _, tc := range []struct {
		name string
		mode stf.AccessMode
	}{
		{"R-vs-RW", stf.RW(1).Mode},
		{"R-vs-Red", stf.Red(1).Mode},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 2})
			err := rt.Run(g.NumData, faultinject.ChangeModeAt(g, noop, 1, 5, 1, tc.mode))
			if err == nil {
				t.Fatal("mode-divergent replay returned nil error")
			}
			var div *rio.DivergenceError
			if !errors.As(err, &div) {
				t.Fatalf("error is not a DivergenceError: %v", err)
			}
		})
	}
}

// TestFaultGuardAcceptsCleanRuns: the guard must stay silent on correct
// programs (this is the false-positive control for the whole guard).
func TestFaultGuardAcceptsCleanRuns(t *testing.T) {
	for _, g := range []*stf.Graph{graphs.Chain(100), graphs.LU(5), graphs.RandomDeps(200, 16, 2, 1, 3)} {
		rt := mustEngine(t, rio.Options{Model: rio.InOrder, Workers: 4})
		if err := enginetest.Check(rt, g); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// --- Transient-fault retry matrix -----------------------------------------
//
// Every engine against the transient-fault injectors of internal/faultinject
// with a retry policy installed: a fault that clears within the attempt
// budget must leave the run indistinguishable from a fault-free one (same
// final values as the sequential reference), and an exhausted budget must
// surface as a *rio.TaskFailure wrapped in a *rio.PartialError whose
// completed set is dependency-closed.

// snapshotVals adapts an oracle trace's value array into a Snapshotter:
// rollback restores the written objects' pre-attempt values. Snapshot is
// only ever called by the worker holding write access to d, so the
// unsynchronized copy is race-free by the STF discipline itself.
func snapshotVals(tr *enginetest.Trace) stf.Snapshotter {
	return stf.SnapshotFuncs{Save: func(d stf.DataID) func() {
		v := tr.Vals[d]
		return func() { tr.Vals[d] = v }
	}}
}

func TestFaultRetryToSuccess(t *testing.T) {
	g := graphs.LURect(3, 3)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	const failID, failures = 7, 2
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			var mu sync.Mutex
			var retries []int
			opts := spec.opts
			opts.Retry = &rio.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond}
			opts.Snapshots = snapshotVals(tr)
			opts.Hooks = &rio.Hooks{OnTaskRetry: func(_ stf.WorkerID, id stf.TaskID, attempt int, _ any) {
				mu.Lock()
				defer mu.Unlock()
				if id != failID {
					t.Errorf("OnTaskRetry for unexpected task %d", id)
				}
				retries = append(retries, attempt)
			}}
			rt := mustEngine(t, opts)
			kern := faultinject.FailNTimes(enginetest.Kernel(tr, &clock), failID, failures)
			if err := rt.Run(g.NumData, stf.Replay(g, kern)); err != nil {
				t.Fatalf("run with transient fault failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Error(err)
			}
			if p := rt.Progress(); p.Retried() != failures {
				t.Errorf("Progress().Retried() = %d, want %d", p.Retried(), failures)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(retries) != failures || retries[0] != 1 || retries[1] != 2 {
				t.Errorf("OnTaskRetry attempts = %v, want [1 2]", retries)
			}
		})
	}
}

// A fault that dirties the write-set before failing makes rollback
// load-bearing: without the snapshot restore, the retried body would
// re-execute over corrupted values and the oracle comparison would fail.
func TestFaultRetryRollsBackWriteSet(t *testing.T) {
	g := stf.NewGraph("rollback", 2)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.RW(0), stf.W(1))
	g.Add(0, 2, 0, 0, stf.R(0), stf.RW(1))
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			opts := spec.opts
			opts.Retry = &rio.RetryPolicy{MaxAttempts: 3}
			opts.Snapshots = snapshotVals(tr)
			rt := mustEngine(t, opts)
			kern := faultinject.CorruptThenFail(enginetest.Kernel(tr, &clock), 1, 2, func() {
				tr.Vals[0] = 0xDEAD // dirty task 1's write-set mid-body
				tr.Vals[1] = 0xBEEF
			})
			if err := rt.Run(g.NumData, stf.Replay(g, kern)); err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Errorf("write-set rollback did not restore pre-attempt values: %v", err)
			}
		})
	}
}

func TestFaultRetriesExhausted(t *testing.T) {
	g := graphs.LURect(3, 3)
	const failID = 7
	deps := g.Dependencies()
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			opts := spec.opts
			opts.Retry = &rio.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}
			opts.Snapshots = snapshotVals(tr)
			rt := mustEngine(t, opts)
			kern := faultinject.PanicAt(enginetest.Kernel(tr, &clock), failID)
			err := rt.Run(g.NumData, stf.Replay(g, kern))
			if err == nil {
				t.Fatal("run survived a permanent fault")
			}
			var tf *rio.TaskFailure
			if !errors.As(err, &tf) {
				t.Fatalf("error %v does not wrap a TaskFailure", err)
			}
			if tf.Task != failID || tf.Attempts != 3 {
				t.Errorf("TaskFailure = task %d after %d attempts, want task %d after 3", tf.Task, tf.Attempts, failID)
			}
			var pe *rio.PartialError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v does not wrap a PartialError", err)
			}
			completed := make(map[stf.TaskID]bool, len(pe.Result.Completed))
			for _, id := range pe.Result.Completed {
				completed[id] = true
			}
			if completed[failID] {
				t.Error("failed task listed as completed")
			}
			if len(pe.Result.Failed) != 1 || pe.Result.Failed[0] != failID {
				t.Errorf("Failed = %v, want [%d]", pe.Result.Failed, failID)
			}
			// The frontier must be dependency-closed: every predecessor of
			// a completed task is itself completed.
			for _, id := range pe.Result.Completed {
				for _, p := range deps[id] {
					if !completed[p] {
						t.Errorf("completed task %d has uncompleted predecessor %d", id, p)
					}
				}
			}
		})
	}
}

// Backoff sleeps must read as liveness to the stall watchdog: a retrying
// task re-stamps its heartbeat across every backoff slice, so a backoff
// longer than StallTimeout must NOT abort the run as a stuck task.
func TestFaultRetryBackoffKeepsWatchdogQuiet(t *testing.T) {
	g := graphs.Chain(10)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	const failID, failures = 5, 2
	tr := enginetest.NewTrace(g)
	var clock atomic.Int64
	rt := mustEngine(t, rio.Options{
		Model: rio.InOrder, Workers: 2,
		StallTimeout: 50 * time.Millisecond,
		Retry:        &rio.RetryPolicy{MaxAttempts: 4, Backoff: 150 * time.Millisecond},
		Snapshots:    snapshotVals(tr),
	})
	kern := faultinject.FailNTimes(enginetest.Kernel(tr, &clock), failID, failures)
	start := time.Now()
	err = rt.Run(g.NumData, stf.Replay(g, kern))
	elapsed := time.Since(start)
	var se *rio.StallError
	if errors.As(err, &se) {
		t.Fatalf("watchdog fired during retry backoff: %v", se)
	}
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// Delay(2)+Delay(3) = 150ms+300ms of backoff actually slept.
	if elapsed < 300*time.Millisecond {
		t.Errorf("run took %v; backoff apparently not applied", elapsed)
	}
	if err := enginetest.Compare(g, want, tr); err != nil {
		t.Error(err)
	}
}

// A whole-flow storm of deterministic first-attempt failures — the chaos
// scenario of the CI fault matrix. With retry installed the run must be
// indistinguishable from a fault-free one on every engine.
func TestFaultChaosStorm(t *testing.T) {
	g := graphs.LURect(3, 3)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range faultEngines() {
		t.Run(spec.name, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			opts := spec.opts
			opts.Retry = &rio.RetryPolicy{MaxAttempts: 3}
			opts.Snapshots = snapshotVals(tr)
			rt := mustEngine(t, opts)
			kern := faultinject.Flaky(enginetest.Kernel(tr, &clock), 42, 0.4)
			if err := rt.Run(g.NumData, stf.Replay(g, kern)); err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Error(err)
			}
			if p := rt.Progress(); p.Retried() == 0 {
				t.Error("chaos storm triggered no retries (injector inert?)")
			}
		})
	}
}
