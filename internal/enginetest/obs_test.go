package enginetest_test

import (
	"fmt"
	"sync"
	"testing"

	"rio/internal/centralized"
	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sequential"
	"rio/internal/stf"
	"rio/internal/trace"
)

// Observability contract tests shared by every engine: the lifecycle
// hooks must fire in bracketed, paired order, and the always-on Progress
// counters must agree with the post-run Stats decomposition. Run under
// -race these also verify that hooks and Progress snapshots are safe
// against concurrently publishing workers.

// hookLog is a concurrency-safe hook recorder that checks the firing
// contract as it goes: run brackets around everything, task start/end
// paired and non-overlapping per worker, wait start/end paired.
type hookLog struct {
	mu         sync.Mutex
	runStarts  int
	runEnds    int
	runEndErr  error
	taskStarts map[stf.TaskID]int
	taskEnds   map[stf.TaskID]int
	waitStarts int
	waitEnds   int
	open       map[stf.WorkerID]stf.TaskID
	violations []string
}

func newHookLog() *hookLog {
	return &hookLog{
		taskStarts: map[stf.TaskID]int{},
		taskEnds:   map[stf.TaskID]int{},
		open:       map[stf.WorkerID]stf.TaskID{},
	}
}

func (l *hookLog) violatef(format string, args ...any) {
	if len(l.violations) < 10 {
		l.violations = append(l.violations, fmt.Sprintf(format, args...))
	}
}

func (l *hookLog) hooks() *stf.Hooks {
	return &stf.Hooks{
		OnRunStart: func(workers, numData int) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.runStarts++
			if len(l.taskStarts) > 0 {
				l.violatef("OnRunStart after a task already started")
			}
		},
		OnRunEnd: func(err error) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.runEnds++
			l.runEndErr = err
			for w, id := range l.open {
				l.violatef("OnRunEnd with task %d still open on worker %d", id, w)
			}
		},
		OnTaskStart: func(w stf.WorkerID, id stf.TaskID) {
			l.mu.Lock()
			defer l.mu.Unlock()
			if l.runStarts == 0 {
				l.violatef("OnTaskStart(%d) before OnRunStart", id)
			}
			if l.runEnds > 0 {
				l.violatef("OnTaskStart(%d) after OnRunEnd", id)
			}
			if prev, ok := l.open[w]; ok {
				l.violatef("worker %d started task %d while task %d is open", w, id, prev)
			}
			l.open[w] = id
			l.taskStarts[id]++
		},
		OnTaskEnd: func(w stf.WorkerID, id stf.TaskID) {
			l.mu.Lock()
			defer l.mu.Unlock()
			if prev, ok := l.open[w]; !ok || prev != id {
				l.violatef("worker %d ended task %d without a matching start", w, id)
			}
			delete(l.open, w)
			l.taskEnds[id]++
		},
		OnWaitStart: func(w stf.WorkerID, id stf.TaskID, a stf.Access) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.waitStarts++
		},
		OnWaitEnd: func(w stf.WorkerID, id stf.TaskID, a stf.Access) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.waitEnds++
		},
	}
}

// check asserts the universal post-run invariants against g.
func (l *hookLog) check(t *testing.T, g *stf.Graph) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, v := range l.violations {
		t.Errorf("hook contract: %s", v)
	}
	if l.runStarts != 1 || l.runEnds != 1 {
		t.Errorf("run hooks fired %d/%d times, want 1/1", l.runStarts, l.runEnds)
	}
	if l.runEndErr != nil {
		t.Errorf("OnRunEnd reported error: %v", l.runEndErr)
	}
	for id := range g.Tasks {
		if n := l.taskStarts[stf.TaskID(id)]; n != 1 {
			t.Errorf("task %d: %d OnTaskStart calls, want 1", id, n)
		}
		if n := l.taskEnds[stf.TaskID(id)]; n != 1 {
			t.Errorf("task %d: %d OnTaskEnd calls, want 1", id, n)
		}
	}
	if len(l.taskStarts) != len(g.Tasks) {
		t.Errorf("OnTaskStart saw %d distinct tasks, graph has %d", len(l.taskStarts), len(g.Tasks))
	}
	if l.waitStarts != l.waitEnds {
		t.Errorf("unpaired wait hooks: %d starts, %d ends", l.waitStarts, l.waitEnds)
	}
}

func TestHookContractAllEngines(t *testing.T) {
	g := graphs.Wavefront(8, 8)
	const p = 4

	t.Run("rio-closure", func(t *testing.T) {
		l := newHookLog()
		e, err := core.New(core.Options{Workers: p, Hooks: l.hooks()})
		if err != nil {
			t.Fatal(err)
		}
		if err := enginetest.Check(e, g); err != nil {
			t.Fatal(err)
		}
		l.check(t, g)
	})

	t.Run("rio-compiled", func(t *testing.T) {
		l := newHookLog()
		e, err := core.New(core.Options{Workers: p, Hooks: l.hooks()})
		if err != nil {
			t.Fatal(err)
		}
		m := func(id stf.TaskID) stf.WorkerID { return stf.WorkerID(id % p) }
		cp, err := stf.Compile(g, m, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := enginetest.CheckCompiled(e, g, cp); err != nil {
			t.Fatal(err)
		}
		l.check(t, g)
	})

	t.Run("centralized", func(t *testing.T) {
		l := newHookLog()
		e, err := centralized.New(centralized.Options{Workers: p, Hooks: l.hooks()})
		if err != nil {
			t.Fatal(err)
		}
		if err := enginetest.Check(e, g); err != nil {
			t.Fatal(err)
		}
		l.check(t, g)
	})

	t.Run("sequential", func(t *testing.T) {
		l := newHookLog()
		e := sequential.New(sequential.Options{Hooks: l.hooks()})
		if err := enginetest.Check(e, g); err != nil {
			t.Fatal(err)
		}
		l.check(t, g)
	})
}

// A panicking task body must skip OnTaskEnd (and fail the run), leaving
// every other pairing intact.
func TestHooksPanicSkipsTaskEnd(t *testing.T) {
	l := newHookLog()
	h := l.hooks()
	// The bracketing checks assume clean completion; here the interesting
	// bits are the counts only.
	h.OnRunEnd = func(error) { l.mu.Lock(); l.runEnds++; l.mu.Unlock() }
	e, err := core.New(core.Options{Workers: 2, Hooks: h})
	if err != nil {
		t.Fatal(err)
	}
	runErr := e.Run(1, func(s stf.Submitter) {
		s.Submit(func() { panic("boom") }, stf.W(0))
	})
	if runErr == nil {
		t.Fatal("run with panicking task returned nil error")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.taskStarts[0] != 1 {
		t.Errorf("OnTaskStart fired %d times, want 1", l.taskStarts[0])
	}
	if l.taskEnds[0] != 0 {
		t.Errorf("OnTaskEnd fired %d times for a panicking body, want 0", l.taskEnds[0])
	}
	if l.runEnds != 1 {
		t.Errorf("OnRunEnd fired %d times, want 1", l.runEnds)
	}
}

// Progress must agree with Stats once a run is over — including under
// NoAccounting, where time decomposition stops but task counting does not.
func TestProgressMatchesStats(t *testing.T) {
	g := graphs.Wavefront(8, 8)
	const p = 4
	for _, noAcct := range []bool{false, true} {
		name := "accounting"
		if noAcct {
			name = "noaccounting"
		}
		t.Run("rio-"+name, func(t *testing.T) {
			e, err := core.New(core.Options{Workers: p, NoAccounting: noAcct})
			if err != nil {
				t.Fatal(err)
			}
			if err := enginetest.Check(e, g); err != nil {
				t.Fatal(err)
			}
			st, pr := e.Stats(), e.Progress()
			if pr.Running {
				t.Error("Progress.Running true after the run returned")
			}
			if len(pr.Workers) != len(st.Workers) {
				t.Fatalf("Progress has %d workers, Stats %d", len(pr.Workers), len(st.Workers))
			}
			for w := range pr.Workers {
				if pr.Workers[w].Executed != st.Workers[w].Executed {
					t.Errorf("worker %d: Progress.Executed=%d, Stats.Executed=%d", w, pr.Workers[w].Executed, st.Workers[w].Executed)
				}
				if pr.Workers[w].Declared != st.Workers[w].Declared {
					t.Errorf("worker %d: Progress.Declared=%d, Stats.Declared=%d", w, pr.Workers[w].Declared, st.Workers[w].Declared)
				}
				if pr.Workers[w].Claimed != st.Workers[w].Claimed {
					t.Errorf("worker %d: Progress.Claimed=%d, Stats.Claimed=%d", w, pr.Workers[w].Claimed, st.Workers[w].Claimed)
				}
				if pr.Workers[w].Current != stf.NoTask {
					t.Errorf("worker %d: Current=%d after the run, want NoTask", w, pr.Workers[w].Current)
				}
			}
			hist := pr.WaitHist()
			var waits int64
			for _, n := range hist {
				waits += n
			}
			if noAcct && waits != 0 {
				t.Errorf("NoAccounting run bucketed %d waits, want 0", waits)
			}
		})
	}

	t.Run("centralized", func(t *testing.T) {
		e, err := centralized.New(centralized.Options{Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		if err := enginetest.Check(e, g); err != nil {
			t.Fatal(err)
		}
		st, pr := e.Stats(), e.Progress()
		if len(pr.Workers) != len(st.Workers) {
			t.Fatalf("Progress has %d workers, Stats %d", len(pr.Workers), len(st.Workers))
		}
		if pr.Executed() != st.Executed() {
			t.Errorf("Progress.Executed=%d, Stats.Executed=%d", pr.Executed(), st.Executed())
		}
		if got, want := pr.Workers[0].Declared, int64(len(g.Tasks)); got != want {
			t.Errorf("master Declared=%d, want %d (all tasks submitted)", got, want)
		}
	})

	t.Run("sequential", func(t *testing.T) {
		e := sequential.New(sequential.Options{})
		if err := enginetest.Check(e, g); err != nil {
			t.Fatal(err)
		}
		pr := e.Progress()
		if got, want := pr.Executed(), int64(len(g.Tasks)); got != want {
			t.Errorf("Progress.Executed=%d, want %d", got, want)
		}
		if h := pr.WaitHist(); h != ([trace.NumWaitBuckets]int64{}) {
			t.Errorf("sequential run bucketed waits: %v", h)
		}
	})
}

// Progress must be callable from any goroutine while a run is in flight
// (the race detector is the real assertion here), and the snapshots must
// be monotonic in the executed count.
func TestProgressConcurrentWithRun(t *testing.T) {
	g := graphs.Wavefront(16, 16)
	const p = 4
	e, err := core.New(core.Options{Workers: p})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				pr := e.Progress()
				if n := pr.Executed(); n < 0 || n > int64(len(g.Tasks)) {
					panic(fmt.Sprintf("snapshot out of range: %d of %d", n, len(g.Tasks)))
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	var runErr error
	for i := 0; i < 5; i++ {
		if _, runErr = enginetest.Run(e, g); runErr != nil {
			break
		}
	}
	close(done)
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	pr := e.Progress()
	if pr.Running {
		t.Error("Running true after all runs returned")
	}
	if got, want := pr.Executed(), int64(len(g.Tasks)); got != want {
		t.Errorf("final Executed=%d, want %d", got, want)
	}
}
