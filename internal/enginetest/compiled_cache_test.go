package enginetest_test

import (
	"sync/atomic"
	"testing"

	"rio"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// runGraph executes g through the caching engine's compiled fast path
// with the oracle kernel and returns the trace.
func runGraph(t *testing.T, e *rio.Engine, g *stf.Graph) *enginetest.Trace {
	t.Helper()
	tr := enginetest.NewTrace(g)
	var clock atomic.Int64
	if err := e.RunGraph(g, enginetest.Kernel(tr, &clock)); err != nil {
		t.Fatalf("RunGraph: %v", err)
	}
	return tr
}

// The compiled-cache contract end to end, against the sequential oracle:
// the first RunGraph compiles (miss), the second reuses the cached
// streams (hit), SetMapping flushes the cache and the next run compiles
// fresh — every run sequentially consistent.
func TestCompiledCacheReuseAndInvalidation(t *testing.T) {
	g := graphs.LU(5)
	const p = 3
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}

	e, err := rio.NewEngine(rio.Options{Workers: p})
	if err != nil {
		t.Fatal(err)
	}

	// First run: cache miss, compiled under the default cyclic mapping.
	tr := runGraph(t, e, g)
	if err := enginetest.Compare(g, want, tr); err != nil {
		t.Fatalf("first run (cache miss): %v", err)
	}
	if h, m, n := e.CacheStats(); h != 0 || m != 1 || n != 1 {
		t.Fatalf("after first run: hits=%d misses=%d entries=%d, want 0/1/1", h, m, n)
	}

	// Second run: cache hit — no recompilation, same oracle outcome.
	tr = runGraph(t, e, g)
	if err := enginetest.Compare(g, want, tr); err != nil {
		t.Fatalf("second run (cache hit): %v", err)
	}
	if h, m, n := e.CacheStats(); h != 1 || m != 1 || n != 1 {
		t.Fatalf("after second run: hits=%d misses=%d entries=%d, want 1/1/1", h, m, n)
	}

	// Changing the mapping must invalidate: cached streams bake the old
	// task→worker assignment in. The next run recompiles and must still
	// match the sequential reference under the new mapping.
	e.SetMapping(sched.Block(len(g.Tasks), p))
	if h, m, n := e.CacheStats(); n != 0 {
		t.Fatalf("after SetMapping: hits=%d misses=%d entries=%d, want empty cache", h, m, n)
	}
	tr = runGraph(t, e, g)
	if err := enginetest.Compare(g, want, tr); err != nil {
		t.Fatalf("post-SetMapping run: %v", err)
	}
	if h, m, n := e.CacheStats(); h != 1 || m != 2 || n != 1 {
		t.Fatalf("after recompile: hits=%d misses=%d entries=%d, want 1/2/1", h, m, n)
	}

	// Invalidate drops a single graph; the next run is a miss again.
	e.Invalidate(g)
	tr = runGraph(t, e, g)
	if err := enginetest.Compare(g, want, tr); err != nil {
		t.Fatalf("post-Invalidate run: %v", err)
	}
	if h, m, n := e.CacheStats(); h != 1 || m != 3 || n != 1 {
		t.Fatalf("after Invalidate: hits=%d misses=%d entries=%d, want 1/3/1", h, m, n)
	}
}

// The same checks with §3.5 pruning applied at compile time, plus the
// explicit pre-compiled path (Compile + RunCompiled) on a reused engine.
func TestCompiledCachePrunedAndExplicit(t *testing.T) {
	g := graphs.GEMM(4)
	const p = 4
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}

	e, err := rio.NewEngine(rio.Options{Workers: p, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		tr := runGraph(t, e, g)
		if err := enginetest.Compare(g, want, tr); err != nil {
			t.Fatalf("pruned run %d: %v", i, err)
		}
	}
	if h, m, _ := e.CacheStats(); h != 1 || m != 1 {
		t.Fatalf("pruned cache: hits=%d misses=%d, want 1/1", h, m)
	}

	// An explicitly compiled program with a non-default mapping runs
	// through the same engine without touching the cache.
	m := sched.BlockCyclic(p, 2)
	cp, err := rio.Compile(g, p, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Pruned {
		t.Error("Compile(prune=true) did not set Pruned")
	}
	tr := enginetest.NewTrace(g)
	var clock atomic.Int64
	if err := e.RunCompiled(cp, enginetest.Kernel(tr, &clock)); err != nil {
		t.Fatalf("RunCompiled: %v", err)
	}
	if err := enginetest.Compare(g, want, tr); err != nil {
		t.Fatalf("explicit compiled run: %v", err)
	}
	if h, m, n := e.CacheStats(); h != 1 || m != 1 || n != 1 {
		t.Fatalf("RunCompiled touched the cache: hits=%d misses=%d entries=%d", h, m, n)
	}
}

// NewEngine rejects non-InOrder models and propagates core validation.
func TestNewEngineValidation(t *testing.T) {
	if _, err := rio.NewEngine(rio.Options{Model: rio.Centralized, Workers: 2}); err == nil {
		t.Error("Centralized model accepted")
	}
	if _, err := rio.NewEngine(rio.Options{Workers: 0}); err == nil {
		t.Error("Workers=0 accepted")
	}
	// A partial mapping cannot be compiled: RunGraph must surface the
	// compile error rather than execute half a flow.
	e, err := rio.NewEngine(rio.Options{
		Workers: 2,
		Mapping: func(rio.TaskID) rio.WorkerID { return rio.SharedWorker },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RunGraph(graphs.Independent(8), noop); err == nil {
		t.Error("SharedWorker mapping compiled")
	}
}
