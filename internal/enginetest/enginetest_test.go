package enginetest_test

import (
	"math/rand"
	"testing"

	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/stf"
)

// The oracle is what the whole engine test suite rests on; these negative
// controls verify it actually detects broken execution models.

// shuffledEngine executes the submitted tasks in a dependency-violating
// order: it collects everything, then runs tasks in reverse.
type shuffledEngine struct{}

func (shuffledEngine) Run(numData int, prog stf.Program) error {
	rec := &collector{}
	prog(rec)
	for i := len(rec.run) - 1; i >= 0; i-- {
		rec.run[i]()
	}
	return nil
}

// dropEngine silently drops every third task.
type dropEngine struct{}

func (dropEngine) Run(numData int, prog stf.Program) error {
	rec := &collector{}
	prog(rec)
	for i, f := range rec.run {
		if i%3 != 2 {
			f()
		}
	}
	return nil
}

// doubleEngine runs every task twice.
type doubleEngine struct{}

func (doubleEngine) Run(numData int, prog stf.Program) error {
	rec := &collector{}
	prog(rec)
	for _, f := range rec.run {
		f()
		f()
	}
	return nil
}

type collector struct {
	run []func()
}

func (c *collector) Submit(fn stf.TaskFunc, _ ...stf.Access) stf.TaskID {
	c.run = append(c.run, func() { fn() })
	return stf.TaskID(len(c.run) - 1)
}

func (c *collector) SubmitTask(t *stf.Task, k stf.Kernel) stf.TaskID {
	c.run = append(c.run, func() { k(t, 0) })
	return t.ID
}

func (c *collector) Worker() stf.WorkerID { return stf.MasterWorker }
func (c *collector) NumWorkers() int      { return 1 }

func TestOracleCatchesReordering(t *testing.T) {
	g := graphs.LU(4) // dependency-rich
	if err := enginetest.Check(shuffledEngine{}, g); err == nil {
		t.Error("reverse-order execution passed the oracle")
	}
}

func TestOracleCatchesDroppedTasks(t *testing.T) {
	g := graphs.Independent(30)
	if err := enginetest.Check(dropEngine{}, g); err == nil {
		t.Error("dropped tasks passed the oracle")
	}
}

func TestOracleCatchesDoubleExecution(t *testing.T) {
	g := graphs.RandomDeps(60, 8, 1, 1, 2)
	if err := enginetest.Check(doubleEngine{}, g); err == nil {
		t.Error("double execution passed the oracle")
	}
}

func TestOracleAcceptsValidPermutation(t *testing.T) {
	// Reversing an *independent* flow is a legal OoO execution: the value
	// oracle must accept it (tickets order is irrelevant without deps).
	g := graphs.Independent(30)
	if err := enginetest.Check(shuffledEngine{}, g); err != nil {
		t.Errorf("legal reordering rejected: %v", err)
	}
}

func TestRandomGraphGeneratorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := enginetest.RandomGraph(rng, 30, 6)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for j := range g.Tasks {
			for _, a := range g.Tasks[j].Accesses {
				if a.Mode == stf.Reduction {
					t.Fatal("RandomGraph produced a reduction (reserved for RandomGraphWithReductions)")
				}
			}
		}
		gr := enginetest.RandomGraphWithReductions(rng, 30, 6)
		if err := gr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGoldenDeterministic(t *testing.T) {
	g := graphs.RandomDeps(100, 16, 2, 1, 5)
	a, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.Vals {
		if a.Vals[d] != b.Vals[d] {
			t.Fatalf("golden not deterministic at data %d", d)
		}
	}
}
