package sched_test

import (
	"testing"

	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func TestRankVictimsSkewed(t *testing.T) {
	g := graphs.Independent(10)
	owners := []stf.WorkerID{0, 0, 0, 0, 0, 2, 2, 2, 1, 1}
	got := sched.RankVictims(g, sched.Table(owners), 4)
	want := []stf.WorkerID{0, 2, 1} // loads 5, 3, 2; worker 3 owns nothing
	if len(got) != len(want) {
		t.Fatalf("RankVictims = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankVictims = %v, want %v", got, want)
		}
	}
}

func TestRankVictimsTieBreak(t *testing.T) {
	g := graphs.Independent(6)
	got := sched.RankVictims(g, sched.Cyclic(3), 3)
	// Equal loads: ascending worker IDs, deterministically.
	want := []stf.WorkerID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankVictims = %v, want %v", got, want)
		}
	}
}

func TestRankVictimsSharedExcluded(t *testing.T) {
	g := graphs.Independent(4)
	m := sched.Partial(sched.Single(1), func(id stf.TaskID) bool { return id < 2 })
	got := sched.RankVictims(g, m, 2)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("RankVictims = %v, want [1]", got)
	}
}
