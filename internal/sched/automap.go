package sched

import (
	"time"

	"rio/internal/stf"
)

// Automatic static-mapping computation (the paper points to Agullo,
// Beaumont, Eyraud-Dubois & Kumar, "Are static schedules so bad?", IPDPS
// 2016, as evidence that computed static schedules can rival dynamic
// ones). AutoMap is a list scheduler: tasks are visited in task-flow order
// and each is assigned to the worker that can finish it earliest, given
// the workers' accumulated loads and the finish times of the task's
// dependencies. The resulting owner table is a valid static mapping for
// the in-order engine, and the predicted makespan is a byproduct.
//
// Because the in-order engine executes each worker's tasks strictly in
// task-flow order, the list schedule's per-worker sequences are exactly
// realizable — no reordering is lost in translation.

// AutoMapResult carries the computed mapping and its schedule estimate.
type AutoMapResult struct {
	// Mapping is the computed TaskID → WorkerID table.
	Mapping stf.Mapping
	// Makespan is the schedule's predicted completion time.
	Makespan time.Duration
	// Loads is the per-worker busy time under the schedule.
	Loads []time.Duration
}

// AutoMap computes a static mapping of g onto p workers using per-task
// duration estimates (cost may be nil for unit costs).
func AutoMap(g *stf.Graph, p int, cost func(*stf.Task) time.Duration) *AutoMapResult {
	if cost == nil {
		cost = func(*stf.Task) time.Duration { return time.Microsecond }
	}
	deps := g.Dependencies()
	owners := make([]stf.WorkerID, len(g.Tasks))
	finish := make([]time.Duration, len(g.Tasks))
	clock := make([]time.Duration, p) // per-worker ready time
	load := make([]time.Duration, p)

	for i := range g.Tasks {
		t := &g.Tasks[i]
		var ready time.Duration
		for _, d := range deps[i] {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		dur := cost(t)
		// Earliest-finish-time worker; ties go to the least loaded.
		best := 0
		bestStart := maxDur(clock[0], ready)
		for w := 1; w < p; w++ {
			start := maxDur(clock[w], ready)
			if start < bestStart || (start == bestStart && load[w] < load[best]) {
				best, bestStart = w, start
			}
		}
		owners[i] = stf.WorkerID(best)
		finish[i] = bestStart + dur
		clock[best] = finish[i]
		load[best] += dur
	}

	res := &AutoMapResult{Mapping: Table(owners), Loads: load}
	for _, c := range clock {
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	return res
}

// WeightCost builds a duration estimator from the tasks' K field scaled by
// perUnit — matching workloads (like SparseCholesky) that carry a work
// weight there.
func WeightCost(perUnit time.Duration) func(*stf.Task) time.Duration {
	return func(t *stf.Task) time.Duration {
		w := t.K
		if w < 1 {
			w = 1
		}
		return time.Duration(w) * perUnit
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
