package sched

import "rio/internal/stf"

// Task pruning (paper §3.5): the main drawback of the decentralized model
// is that every worker unrolls the whole task flow, so the bookkeeping work
// grows with the *total* task count. When the application knows its access
// pattern, each worker can unroll only the relevant part of the flow.
//
// A task is relevant to worker w if (a) w executes it, or (b) it accesses a
// data object that some task owned by w also accesses. Rule (b) is what
// keeps the protocol of §3.4 correct under pruning: the worker's local
// counters for every data object it will ever synchronize on still see
// every access to that object, while objects it never touches may drift —
// harmlessly, since their counters are never consulted.

// Relevant computes, for each of p workers, which tasks of g it must
// process (execute or declare) under mapping m. The result feeds
// PrunedReplay. Tasks mapped to stf.SharedWorker (partial mappings) may be
// executed by anyone, so they are relevant to every worker and their data
// counts as touched by every worker.
func Relevant(g *stf.Graph, m stf.Mapping, p int) [][]bool {
	// Pass 1: which data objects does each worker own tasks on?
	touches := make([][]bool, p)
	for w := range touches {
		touches[w] = make([]bool, g.NumData)
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		w := m(t.ID)
		if w == stf.SharedWorker {
			for _, a := range t.Accesses {
				for v := 0; v < p; v++ {
					touches[v][a.Data] = true
				}
			}
			continue
		}
		for _, a := range t.Accesses {
			touches[w][a.Data] = true
		}
	}
	// Pass 2: a task is relevant to w if owned by w (or shared) or
	// touching w's data.
	rel := make([][]bool, p)
	for w := range rel {
		rel[w] = make([]bool, len(g.Tasks))
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		owner := m(t.ID)
		if owner == stf.SharedWorker {
			for w := 0; w < p; w++ {
				rel[w][i] = true
			}
			continue
		}
		rel[owner][i] = true
		for w := 0; w < p; w++ {
			if rel[w][i] {
				continue
			}
			for _, a := range t.Accesses {
				if touches[w][a.Data] {
					rel[w][i] = true
					break
				}
			}
		}
	}
	return rel
}

// PruneRatio returns the fraction of (worker, task) pairs eliminated by
// pruning: 0 means every worker still unrolls everything, values close to 1
// mean almost all foreign bookkeeping was removed.
func PruneRatio(rel [][]bool) float64 {
	var kept, total int
	for _, r := range rel {
		total += len(r)
		for _, b := range r {
			if b {
				kept++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(kept)/float64(total)
}

// PrunedReplay returns a Program that replays only the tasks relevant to
// the executing worker, per the relevance bitmaps from Relevant. Submitters
// that are not a decentralized worker (sequential and centralized engines
// report stf.MasterWorker) receive the full flow.
func PrunedReplay(g *stf.Graph, k stf.Kernel, rel [][]bool) stf.Program {
	return func(s stf.Submitter) {
		w := s.Worker()
		if w < 0 || int(w) >= len(rel) {
			for i := range g.Tasks {
				s.SubmitTask(&g.Tasks[i], k)
			}
			return
		}
		r := rel[w]
		for i := range g.Tasks {
			if r[i] {
				s.SubmitTask(&g.Tasks[i], k)
			}
		}
	}
}
