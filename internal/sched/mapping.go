// Package sched provides the static task mappings the RIO execution model
// requires (paper §3.2: "parametric resources allocation" — the programmer
// supplies a closure TaskID → WorkerID) and the task-pruning analysis of
// §3.5.
//
// The mappings mirror the classic static-scheduling literature the paper
// points to: cyclic and block distributions, ScaLAPACK-style 2-D
// block-cyclic tile ownership for dense linear algebra, and owner-computes
// derivations that assign each task to the owner of the tile it writes.
package sched

import (
	"fmt"

	"rio/internal/stf"
)

// Cyclic distributes tasks round-robin: task id runs on worker id mod p.
func Cyclic(p int) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID {
		return stf.WorkerID(id % stf.TaskID(p))
	}
}

// Block splits the first nTasks tasks into p contiguous chunks (the last
// workers get one task fewer when p does not divide nTasks). Tasks beyond
// nTasks map to the last worker.
func Block(nTasks, p int) stf.Mapping {
	if nTasks < p {
		nTasks = p
	}
	chunk := (nTasks + p - 1) / p
	return func(id stf.TaskID) stf.WorkerID {
		w := int(id) / chunk
		if w >= p {
			w = p - 1
		}
		return stf.WorkerID(w)
	}
}

// BlockCyclic distributes blocks of blockSize consecutive tasks round-robin
// over p workers.
func BlockCyclic(p, blockSize int) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID {
		return stf.WorkerID((int(id) / blockSize) % p)
	}
}

// Single maps every task to worker w (a degenerate mapping useful for
// tests and for measuring pure unrolling overhead).
func Single(w stf.WorkerID) stf.Mapping {
	return func(stf.TaskID) stf.WorkerID { return w }
}

// Table returns a mapping backed by a lookup table; tasks beyond the table
// map cyclically over p = max(owners)+1 — callers should size the table to
// the task flow.
func Table(owners []stf.WorkerID) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID {
		if int(id) < len(owners) {
			return owners[id]
		}
		return 0
	}
}

// FromTask precomputes a table mapping for a recorded graph by applying f
// to each task (f can inspect kernel and tile coordinates).
func FromTask(g *stf.Graph, f func(*stf.Task) stf.WorkerID) stf.Mapping {
	owners := make([]stf.WorkerID, len(g.Tasks))
	for i := range g.Tasks {
		owners[i] = f(&g.Tasks[i])
	}
	return Table(owners)
}

// Grid2D is a pr×pc process grid for 2-D block-cyclic tile ownership
// (ScaLAPACK's distribution, which the paper cites as the standard static
// mapping for dense linear algebra).
type Grid2D struct {
	// PR and PC are the grid dimensions; worker (r, c) has ID r·PC + c.
	PR, PC int
}

// NewGrid2D returns a process grid for p workers, as square as possible
// (pr·pc == p with pr the largest divisor of p not exceeding √p).
func NewGrid2D(p int) Grid2D {
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Grid2D{PR: pr, PC: p / pr}
}

// Owner returns the worker owning tile (i, j) under 2-D block-cyclic
// distribution.
func (g Grid2D) Owner(i, j int) stf.WorkerID {
	return stf.WorkerID((i%g.PR)*g.PC + j%g.PC)
}

// OwnerComputes derives a mapping for a recorded linear-algebra graph by
// assigning each task to the owner of the tile it writes. All graphs in
// internal/graphs store the written tile's coordinates in (Task.I, Task.J),
// so the rule applies uniformly to GEMM, LU, Cholesky and wavefront flows.
func OwnerComputes(g *stf.Graph, grid Grid2D) stf.Mapping {
	return FromTask(g, func(t *stf.Task) stf.WorkerID { return grid.Owner(t.I, t.J) })
}

// Validate checks that m maps every task of g into [0, p) or to
// stf.SharedWorker (partial mappings).
func Validate(g *stf.Graph, m stf.Mapping, p int) error {
	for i := range g.Tasks {
		w := m(stf.TaskID(i))
		if w == stf.SharedWorker {
			continue
		}
		if w < 0 || int(w) >= p {
			return fmt.Errorf("sched: mapping(%d) = %d out of range [0,%d)", i, w, p)
		}
	}
	return nil
}

// Partial wraps a mapping, replacing the ownership of tasks selected by
// shared with stf.SharedWorker: those tasks are claimed dynamically by the
// first worker to reach them (partial mappings).
func Partial(m stf.Mapping, shared func(stf.TaskID) bool) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID {
		if shared(id) {
			return stf.SharedWorker
		}
		return m(id)
	}
}

// Histogram returns the number of tasks mapped to each of p workers — a
// quick load-balance diagnostic for a static mapping. Tasks without a
// static owner (stf.SharedWorker) are not counted.
func Histogram(g *stf.Graph, m stf.Mapping, p int) []int {
	h := make([]int, p)
	for i := range g.Tasks {
		if w := m(stf.TaskID(i)); w >= 0 && int(w) < p {
			h[w]++
		}
	}
	return h
}
