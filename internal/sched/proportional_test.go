package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func TestProportionalValidAndComplete(t *testing.T) {
	for _, tree := range []*graphs.ETree{
		graphs.BalancedETree(16),
		graphs.RandomETree(100, 5, 3),
		graphs.ChainETree(20),
	} {
		g := graphs.SparseCholesky(tree)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 4, 7} {
			m := sched.Proportional(tree, p)
			if err := sched.Validate(g, m, p); err != nil {
				t.Errorf("p=%d: %v", p, err)
			}
		}
	}
}

func TestProportionalBalancesBalancedTree(t *testing.T) {
	// A complete binary tree over p=4 workers: the four depth-2 subtrees
	// have equal weight, so the leaf work must split exactly evenly.
	tree := graphs.BalancedETree(64)
	g := graphs.SparseCholesky(tree)
	p := 4
	m := sched.Proportional(tree, p)
	// Weighted load per worker over leaf nodes (the bulk of the tree).
	load := make([]int64, p)
	for i := 0; i < tree.Nodes(); i++ {
		load[m(stf.TaskID(i))] += int64(tree.Weight[i])
	}
	min, max := load[0], load[0]
	for _, l := range load[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if float64(max) > 1.3*float64(min) {
		t.Errorf("unbalanced proportional mapping: %v", load)
	}
	_ = g
}

func TestProportionalDisjointSubtrees(t *testing.T) {
	// With p=2 on a balanced tree, the two depth-1 subtrees must land on
	// different single workers (zero inter-worker synchronization below
	// the root).
	tree := graphs.BalancedETree(8)
	m := sched.Proportional(tree, 2)
	ch := tree.Children()
	root := tree.Nodes() - 1
	kids := ch[root]
	if len(kids) != 2 {
		t.Fatalf("root children = %d", len(kids))
	}
	wa, wb := m(stf.TaskID(kids[0])), m(stf.TaskID(kids[1]))
	if wa == wb {
		t.Errorf("both root subtrees mapped to worker %d", wa)
	}
	// Every node strictly inside a subtree shares its subtree's worker.
	var checkSub func(r int, w stf.WorkerID)
	checkSub = func(r int, w stf.WorkerID) {
		if got := m(stf.TaskID(r)); got != w {
			t.Fatalf("node %d on worker %d, subtree owner %d", r, got, w)
		}
		for _, c := range ch[r] {
			checkSub(c, w)
		}
	}
	checkSub(kids[0], wa)
	checkSub(kids[1], wb)
}

func TestProportionalSingleWorker(t *testing.T) {
	tree := graphs.RandomETree(30, 3, 1)
	m := sched.Proportional(tree, 1)
	for i := 0; i < tree.Nodes(); i++ {
		if m(stf.TaskID(i)) != 0 {
			t.Fatalf("node %d not on worker 0", i)
		}
	}
}

func TestSparseCholeskyStructure(t *testing.T) {
	tree := graphs.BalancedETree(4)
	g := graphs.SparseCholesky(tree)
	// 4 leaves + 2 + 1 = 7 nodes; depth = 3 (leaf → mid → root).
	if len(g.Tasks) != 7 {
		t.Fatalf("tasks = %d", len(g.Tasks))
	}
	_, depth := g.Levels()
	if depth != 3 {
		t.Errorf("depth = %d, want 3", depth)
	}
	// The root task depends on its two children.
	deps := g.Dependencies()
	if len(deps[6]) != 2 {
		t.Errorf("root deps = %v", deps[6])
	}
}

func TestETreeHelpers(t *testing.T) {
	tree := graphs.ChainETree(5)
	sub := tree.SubtreeWeights()
	if sub[4] != 5 || sub[0] != 1 {
		t.Errorf("chain subtree weights = %v", sub)
	}
	ch := tree.Children()
	if len(ch[4]) != 1 || ch[4][0] != 3 {
		t.Errorf("chain children = %v", ch[4])
	}
	if graphs.BalancedETree(5).Nodes() != 15 { // rounded to 8 leaves
		t.Errorf("balanced tree rounding wrong")
	}
	if graphs.RandomETree(0, 0, 1).Nodes() != 1 {
		t.Error("degenerate random tree")
	}
}

func TestProportionalExecutionCorrect(t *testing.T) {
	for _, tree := range []*graphs.ETree{
		graphs.BalancedETree(16),
		graphs.RandomETree(80, 4, 7),
		graphs.ChainETree(12),
	} {
		g := graphs.SparseCholesky(tree)
		for _, p := range []int{2, 4} {
			e, err := core.New(core.Options{Workers: p, Mapping: sched.Proportional(tree, p)})
			if err != nil {
				t.Fatal(err)
			}
			if err := enginetest.Check(e, g); err != nil {
				t.Errorf("p=%d: %v", p, err)
			}
		}
	}
}

// Property: proportional mappings are always valid and always produce
// correct executions under RIO for random trees.
func TestPropertyProportional(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := graphs.RandomETree(1+rng.Intn(60), 1+rng.Intn(6), seed)
		p := 1 + rng.Intn(6)
		g := graphs.SparseCholesky(tree)
		m := sched.Proportional(tree, p)
		if sched.Validate(g, m, p) != nil {
			return false
		}
		e, err := core.New(core.Options{Workers: p, Mapping: m})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
