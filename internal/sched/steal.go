package sched

import (
	"sort"

	"rio/internal/stf"
)

// RankVictims ranks the workers of a mapping as steal victims, for use as
// StealPolicy.Victims: every worker owning at least one task of g under m,
// ordered by descending owned-task count with ties broken by ascending
// worker ID. Thieves scanning in this order probe the most overloaded
// workers first — where stealable work is most likely to sit — instead of
// the neighbor-ring default. Callers may truncate the list to bound the
// scan further. Tasks without a static owner (stf.SharedWorker) are
// claimed dynamically anyway and do not count.
func RankVictims(g *stf.Graph, m stf.Mapping, p int) []stf.WorkerID {
	h := Histogram(g, m, p)
	out := make([]stf.WorkerID, 0, p)
	for w, n := range h {
		if n > 0 {
			out = append(out, stf.WorkerID(w))
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if h[out[a]] != h[out[b]] {
			return h[out[a]] > h[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}
