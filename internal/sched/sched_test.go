package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func TestCyclic(t *testing.T) {
	m := sched.Cyclic(3)
	want := []stf.WorkerID{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := m(stf.TaskID(i)); got != w {
			t.Errorf("cyclic(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestBlockCoversAllWorkers(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {12, 4}, {7, 7}, {100, 6}, {3, 5}} {
		m := sched.Block(tc.n, tc.p)
		seen := make(map[stf.WorkerID]bool)
		for i := 0; i < tc.n; i++ {
			w := m(stf.TaskID(i))
			if w < 0 || int(w) >= tc.p {
				t.Fatalf("Block(%d,%d)(%d) = %d out of range", tc.n, tc.p, i, w)
			}
			seen[w] = true
		}
		// Block must be monotone: chunk boundaries never go backwards.
		last := stf.WorkerID(0)
		for i := 0; i < tc.n; i++ {
			w := m(stf.TaskID(i))
			if w < last {
				t.Fatalf("Block(%d,%d) not monotone at %d", tc.n, tc.p, i)
			}
			last = w
		}
	}
}

func TestBlockCyclic(t *testing.T) {
	m := sched.BlockCyclic(2, 3)
	want := []stf.WorkerID{0, 0, 0, 1, 1, 1, 0, 0, 0, 1}
	for i, w := range want {
		if got := m(stf.TaskID(i)); got != w {
			t.Errorf("blockcyclic(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestSingle(t *testing.T) {
	m := sched.Single(2)
	for i := 0; i < 10; i++ {
		if m(stf.TaskID(i)) != 2 {
			t.Fatalf("Single(2)(%d) != 2", i)
		}
	}
}

func TestTableFallsBackBeyondLength(t *testing.T) {
	m := sched.Table([]stf.WorkerID{1, 0})
	if m(0) != 1 || m(1) != 0 {
		t.Error("table lookup wrong")
	}
	if m(5) != 0 {
		t.Error("out-of-table task should map to worker 0")
	}
}

func TestNewGrid2D(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {1, 2},
		4:  {2, 2},
		6:  {2, 3},
		12: {3, 4},
		7:  {1, 7},
		24: {4, 6},
	}
	for p, want := range cases {
		g := sched.NewGrid2D(p)
		if g.PR != want[0] || g.PC != want[1] {
			t.Errorf("NewGrid2D(%d) = %dx%d, want %dx%d", p, g.PR, g.PC, want[0], want[1])
		}
		if g.PR*g.PC != p {
			t.Errorf("NewGrid2D(%d): grid does not cover all workers", p)
		}
	}
}

func TestGrid2DOwnerInRange(t *testing.T) {
	g := sched.NewGrid2D(6)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			w := g.Owner(i, j)
			if w < 0 || int(w) >= 6 {
				t.Fatalf("Owner(%d,%d) = %d out of range", i, j, w)
			}
		}
	}
	// 2-D block-cyclic periodicity.
	if g.Owner(0, 0) != g.Owner(g.PR, g.PC) {
		t.Error("block-cyclic periodicity broken")
	}
}

func TestOwnerComputesValid(t *testing.T) {
	for _, gph := range []*stf.Graph{graphs.LU(8), graphs.Cholesky(8), graphs.GEMM(5), graphs.Wavefront(6, 6)} {
		for _, p := range []int{1, 2, 4, 6} {
			m := sched.OwnerComputes(gph, sched.NewGrid2D(p))
			if err := sched.Validate(gph, m, p); err != nil {
				t.Errorf("%s p=%d: %v", gph.Name, p, err)
			}
		}
	}
}

func TestValidateDetectsBadMapping(t *testing.T) {
	g := graphs.Independent(5)
	bad := func(stf.TaskID) stf.WorkerID { return 9 }
	if err := sched.Validate(g, bad, 2); err == nil {
		t.Error("invalid mapping accepted")
	}
}

func TestHistogram(t *testing.T) {
	g := graphs.Independent(10)
	h := sched.Histogram(g, sched.Cyclic(3), 3)
	if h[0] != 4 || h[1] != 3 || h[2] != 3 {
		t.Errorf("histogram = %v, want [4 3 3]", h)
	}
}

func TestRelevantOwnedTasksAlwaysRelevant(t *testing.T) {
	g := graphs.LU(6)
	p := 4
	m := sched.Cyclic(p)
	rel := sched.Relevant(g, m, p)
	for i := range g.Tasks {
		w := m(stf.TaskID(i))
		if !rel[w][i] {
			t.Fatalf("task %d not relevant to its own worker %d", i, w)
		}
	}
}

// The soundness condition of pruning: for every data object some owned task
// of worker w touches, *every* task accessing that object must be relevant
// to w (otherwise w's local counters would miss accesses it synchronizes
// on).
func TestRelevantSoundness(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.LU(6), graphs.GEMM(4), graphs.RandomDeps(200, 16, 2, 1, 3), graphs.Wavefront(5, 5),
	} {
		p := 3
		m := sched.Cyclic(p)
		rel := sched.Relevant(g, m, p)
		for w := 0; w < p; w++ {
			owned := make([]bool, g.NumData)
			for i := range g.Tasks {
				if m(stf.TaskID(i)) != stf.WorkerID(w) {
					continue
				}
				for _, a := range g.Tasks[i].Accesses {
					owned[a.Data] = true
				}
			}
			for i := range g.Tasks {
				touches := false
				for _, a := range g.Tasks[i].Accesses {
					if owned[a.Data] {
						touches = true
						break
					}
				}
				if touches && !rel[w][i] {
					t.Fatalf("%s: task %d touches worker %d's data but is pruned", g.Name, i, w)
				}
			}
		}
	}
}

func TestRelevantPropertySound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 40, 8)
		p := 1 + rng.Intn(4)
		m := sched.Cyclic(p)
		rel := sched.Relevant(g, m, p)
		for w := 0; w < p; w++ {
			owned := make([]bool, g.NumData)
			for i := range g.Tasks {
				if m(stf.TaskID(i)) == stf.WorkerID(w) {
					for _, a := range g.Tasks[i].Accesses {
						owned[a.Data] = true
					}
				}
			}
			for i := range g.Tasks {
				for _, a := range g.Tasks[i].Accesses {
					if owned[a.Data] && !rel[w][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPruneRatio(t *testing.T) {
	// Independent tasks: everything foreign is pruned; with p workers and
	// cyclic mapping the kept fraction is 1/p.
	g := graphs.Independent(100)
	p := 4
	rel := sched.Relevant(g, sched.Cyclic(p), p)
	if got := sched.PruneRatio(rel); got < 0.74 || got > 0.76 {
		t.Errorf("PruneRatio = %v, want 0.75", got)
	}
	// A single chain shared by everyone: nothing can be pruned.
	chain := stf.NewGraph("chain", 1)
	for i := 0; i < 50; i++ {
		chain.Add(0, i, 0, 0, stf.RW(0))
	}
	rel = sched.Relevant(chain, sched.Cyclic(p), p)
	if got := sched.PruneRatio(rel); got != 0 {
		t.Errorf("chain PruneRatio = %v, want 0", got)
	}
}

func TestPrunedReplayFullFlowForMaster(t *testing.T) {
	g := graphs.Independent(10)
	rel := sched.Relevant(g, sched.Cyclic(2), 2)
	prog := sched.PrunedReplay(g, func(*stf.Task, stf.WorkerID) {}, rel)
	rec := &countingSubmitter{w: stf.MasterWorker}
	prog(rec)
	if rec.n != 10 {
		t.Errorf("master got %d tasks, want full flow of 10", rec.n)
	}
	rec = &countingSubmitter{w: 0}
	prog(rec)
	if rec.n != 5 {
		t.Errorf("worker 0 got %d tasks, want 5", rec.n)
	}
}

type countingSubmitter struct {
	w stf.WorkerID
	n int
}

func (c *countingSubmitter) Submit(fn stf.TaskFunc, _ ...stf.Access) stf.TaskID {
	c.n++
	return stf.TaskID(c.n - 1)
}
func (c *countingSubmitter) SubmitTask(t *stf.Task, _ stf.Kernel) stf.TaskID {
	c.n++
	return t.ID
}
func (c *countingSubmitter) Worker() stf.WorkerID { return c.w }
func (c *countingSubmitter) NumWorkers() int      { return 2 }
