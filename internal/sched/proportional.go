package sched

import (
	"sort"

	"rio/internal/graphs"
	"rio/internal/stf"
)

// Proportional mapping (Pothen & Sun; George, Liu & Ng — the sparse
// counterpart of 2-D block-cyclic mappings, cited by the paper in §3.2):
// workers are assigned to elimination-tree subtrees proportionally to the
// subtrees' total work. Starting at the root with the full worker set, each
// node's worker group is split among its children subtrees by weight;
// descent stops when a group has a single worker, which then owns the
// whole subtree. Nodes above the cut (owned by groups of more than one
// worker) are sequential bottlenecks anyway and are given to the group's
// first worker.
//
// The result: disjoint subtrees run on disjoint workers with zero
// synchronization between them (RIO's ideal case — all waits concentrate
// on the upper, inherently sequential part of the tree).

// Proportional computes the proportional mapping of the tree's
// SparseCholesky task flow (task i = node i) onto p workers.
func Proportional(t *graphs.ETree, p int) stf.Mapping {
	n := t.Nodes()
	owner := make([]stf.WorkerID, n)
	sub := t.SubtreeWeights()
	ch := t.Children()

	// assign gives nodes of the subtree rooted at r to workers [lo, hi).
	var assign func(r, lo, hi int)
	assign = func(r, lo, hi int) {
		owner[r] = stf.WorkerID(lo)
		if hi-lo <= 1 {
			// Single worker: the whole subtree is its.
			markSubtree(ch, r, stf.WorkerID(lo), owner)
			return
		}
		kids := append([]int(nil), ch[r]...)
		if len(kids) == 0 {
			return
		}
		// Largest-weight children first, then split the worker range
		// proportionally to subtree weights.
		sort.Slice(kids, func(a, b int) bool { return sub[kids[a]] > sub[kids[b]] })
		var total int64
		for _, c := range kids {
			total += sub[c]
		}
		if total == 0 {
			total = 1
		}
		workers := hi - lo
		cursor := lo
		remaining := workers
		for i, c := range kids {
			share := int(int64(workers) * sub[c] / total)
			if share < 1 {
				share = 1
			}
			if share > remaining-(len(kids)-1-i) {
				share = remaining - (len(kids) - 1 - i)
			}
			if share < 1 {
				share = 1
			}
			if cursor+share > hi {
				share = hi - cursor
			}
			if share <= 0 {
				// Worker range exhausted: remaining children go to the
				// last worker.
				markSubtree(ch, c, stf.WorkerID(hi-1), owner)
				owner[c] = stf.WorkerID(hi - 1)
				continue
			}
			assign(c, cursor, cursor+share)
			cursor += share
			remaining -= share
		}
	}
	// Roots (usually one) share the full worker range.
	var roots []int
	for i, par := range t.Parent {
		if par < 0 {
			roots = append(roots, i)
		}
	}
	for _, r := range roots {
		assign(r, 0, p)
	}
	return Table(owner)
}

// markSubtree assigns w to every node under r (r excluded; callers set it).
func markSubtree(ch [][]int, r int, w stf.WorkerID, owner []stf.WorkerID) {
	stack := append([]int(nil), ch[r]...)
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		owner[nd] = w
		stack = append(stack, ch[nd]...)
	}
}
