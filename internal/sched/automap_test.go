package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/sim"
	"rio/internal/stf"
)

func TestAutoMapValidAndCorrect(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.Independent(100),
		graphs.LU(5),
		graphs.Wavefront(6, 6),
		graphs.RandomDeps(200, 16, 2, 1, 3),
		graphs.SparseCholesky(graphs.RandomETree(60, 4, 1)),
	} {
		for _, p := range []int{1, 2, 4} {
			res := sched.AutoMap(g, p, nil)
			if err := sched.Validate(g, res.Mapping, p); err != nil {
				t.Fatalf("%s p=%d: %v", g.Name, p, err)
			}
			if res.Makespan <= 0 {
				t.Errorf("%s p=%d: makespan %v", g.Name, p, res.Makespan)
			}
			e, err := core.New(core.Options{Workers: p, Mapping: res.Mapping})
			if err != nil {
				t.Fatal(err)
			}
			if err := enginetest.Check(e, g); err != nil {
				t.Errorf("%s p=%d: %v", g.Name, p, err)
			}
		}
	}
}

func TestAutoMapBalancesIndependentTasks(t *testing.T) {
	g := graphs.Independent(100)
	res := sched.AutoMap(g, 4, nil)
	for w, l := range res.Loads {
		if l != 25*time.Microsecond {
			t.Errorf("worker %d load = %v, want 25µs", w, l)
		}
	}
	if res.Makespan != 25*time.Microsecond {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestAutoMapRespectsWeights(t *testing.T) {
	// Two heavy tasks and many light ones: the heavy pair must land on
	// different workers.
	g := stf.NewGraph("weights", 0)
	g.Add(0, 0, 0, 100)
	g.Add(0, 1, 0, 100)
	for i := 0; i < 10; i++ {
		g.Add(0, i, 0, 1)
	}
	res := sched.AutoMap(g, 2, sched.WeightCost(time.Microsecond))
	if res.Mapping(0) == res.Mapping(1) {
		t.Error("both heavy tasks on one worker")
	}
}

// AutoMap's schedule must be at least as good as cyclic in simulation on
// structured graphs (it optimizes for exactly the simulator's model).
func TestAutoMapBeatsCyclicInSimulation(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.Wavefront(8, 8),
		graphs.SparseCholesky(graphs.RandomETree(80, 4, 5)),
	} {
		const p = 4
		dur := 10 * time.Microsecond
		w := sim.UniformWorkload(g, dur)
		auto := sched.AutoMap(g, p, func(*stf.Task) time.Duration { return dur })
		rAuto, err := sim.SimulateRIO(w, p, auto.Mapping, sim.Costs{})
		if err != nil {
			t.Fatal(err)
		}
		rCyc, err := sim.SimulateRIO(w, p, sched.Cyclic(p), sim.Costs{})
		if err != nil {
			t.Fatal(err)
		}
		if rAuto.Makespan > rCyc.Makespan {
			t.Errorf("%s: automap %v worse than cyclic %v", g.Name, rAuto.Makespan, rCyc.Makespan)
		}
	}
}

func TestPropertyAutoMapAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 50, 8)
		p := 1 + rng.Intn(6)
		res := sched.AutoMap(g, p, nil)
		if sched.Validate(g, res.Mapping, p) != nil {
			return false
		}
		// The makespan estimate is bounded below by both work/p and the
		// unit-cost critical path.
		_, depth := g.Levels()
		unit := time.Microsecond
		if res.Makespan < time.Duration(depth)*unit {
			return false
		}
		total := time.Duration(len(g.Tasks)) * unit
		return res.Makespan >= total/time.Duration(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
