package stf

import "fmt"

// Compiled replay: a recorded Graph, a static mapping and a worker count
// are statically known before a run, yet closure replay re-derives all
// three on every run of every worker — each worker calls the mapping once
// per task, re-walks the access list through the Submitter interface and
// folds the divergence guard, paying the full n·t_r replay term of the
// paper's cost model (eq. 2) again and again. Compilation hoists that work
// out of the run loop: the flow is lowered ONCE into flat per-worker
// instruction streams of pre-resolved micro-ops, and the engine's compiled
// execution loop just interprets them — no closure dispatch, no interface
// values, no per-run mapping calls, no guard folding (all workers'
// streams derive from the same graph, so replay divergence is impossible
// by construction). Task pruning (§3.5) is applied at compile time by
// simply omitting irrelevant tasks from a worker's stream.
//
// The synchronization protocol is untouched: the micro-ops invoke exactly
// the declare/get/terminate operations of Algorithms 1 and 2, in the same
// order closure replay would.

// OpCode identifies one compiled micro-op. The access mode is folded into
// the opcode so the execution loop dispatches on a single byte; the
// original declared mode is still carried in Instr.Mode for diagnostics
// (the stall watchdog reports what a worker is blocked on).
type OpCode uint8

const (
	// OpDeclareRead … OpDeclareRed are the declare_* calls of Algorithm 1:
	// private-memory bookkeeping for a task owned by another worker.
	OpDeclareRead OpCode = iota
	OpDeclareWrite
	OpDeclareRed
	// OpGetRead … OpGetRed are the get_* dependency waits.
	OpGetRead
	OpGetWrite
	OpGetRed
	// OpExec runs the task body (kernel dispatch on Tasks[Instr.Task]).
	OpExec
	// OpTermRead … OpTermRed are the terminate_* completion publications.
	OpTermRead
	OpTermWrite
	OpTermRed
)

// String names the opcode for dumps and tests.
func (op OpCode) String() string {
	switch op {
	case OpDeclareRead:
		return "declare_read"
	case OpDeclareWrite:
		return "declare_write"
	case OpDeclareRed:
		return "declare_red"
	case OpGetRead:
		return "get_read"
	case OpGetWrite:
		return "get_write"
	case OpGetRed:
		return "get_red"
	case OpExec:
		return "exec"
	case OpTermRead:
		return "terminate_read"
	case OpTermWrite:
		return "terminate_write"
	case OpTermRed:
		return "terminate_red"
	}
	return fmt.Sprintf("OpCode(%d)", uint8(op))
}

// Instr is one pre-resolved micro-op of a compiled stream: which protocol
// operation to perform, on which data object, on behalf of which task.
// 12 bytes; streams are flat []Instr arrays walked linearly, so the
// compiled execution loop is cache-friendly and allocation-free.
type Instr struct {
	// Op selects the protocol operation (mode pre-dispatched).
	Op OpCode
	// Mode is the originally declared access mode (diagnostics only; the
	// execution loop dispatches on Op alone).
	Mode AccessMode
	// Data is the accessed data object (unused by OpExec).
	Data DataID
	// Task is the index into CompiledProgram.Tasks (equal to the TaskID,
	// since recorded graphs have sequential IDs).
	Task int32
}

// StreamStats counts, for one worker's stream, the tasks it executes and
// the tasks it declares — known at compile time, so the engine charges
// them to the run's statistics without per-op counters.
type StreamStats struct {
	// Executed is the number of OpExec micro-ops in the stream.
	Executed int64
	// Declared is the number of distinct foreign tasks the stream declares
	// accesses for (tasks pruned from the stream count for neither).
	Declared int64
	// Skipped is the number of owned tasks removed from the stream by a
	// checkpoint resume (PruneCompleted). Zero for freshly compiled
	// programs.
	Skipped int64
}

// CompiledProgram is a recorded Graph lowered for one (mapping, workers)
// pair: one flat instruction stream per worker. It is immutable after
// Compile and safe to run concurrently on different engines (each run owns
// its synchronization state; the program is read-only).
//
// Tasks aliases the source graph's task slice — the graph must not be
// mutated while compiled programs over it are in use.
type CompiledProgram struct {
	// Name labels the workload (copied from the graph).
	Name string
	// NumData is the number of data objects the streams reference.
	NumData int
	// Workers is the worker count the program was compiled for; a run
	// must use exactly this many workers.
	Workers int
	// Tasks is the task table OpExec and OpDeclareWrite index into.
	Tasks []Task
	// Streams holds one micro-op stream per worker.
	Streams [][]Instr
	// Stats gives each stream's compile-time execute/declare counts.
	Stats []StreamStats
	// Pruned records whether §3.5 pruning was applied.
	Pruned bool
}

// Ops returns the total micro-op count across all streams — the compiled
// measure of per-run replay work (the n·t_r term, now paid at compile
// time).
func (cp *CompiledProgram) Ops() int {
	n := 0
	for _, s := range cp.Streams {
		n += len(s)
	}
	return n
}

// Compile lowers g into per-worker instruction streams for the given
// mapping and worker count. relevant, when non-nil, is the §3.5 pruning
// analysis (one bitmap per worker over g's tasks, as computed by
// sched.Relevant): tasks irrelevant to a worker are omitted from its
// stream entirely. A nil relevant compiles the full flow for every
// worker.
//
// The mapping is evaluated exactly once per task, at compile time. It
// must be total over g and must not return SharedWorker: partial mappings
// resolve ownership at run time by first-to-reach claims, which a
// pre-resolved stream cannot express — use closure replay for those.
func Compile(g *Graph, m Mapping, workers int, relevant [][]bool) (*CompiledProgram, error) {
	if workers < 1 {
		return nil, fmt.Errorf("stf: compile: workers must be >= 1, got %d", workers)
	}
	if m == nil {
		return nil, fmt.Errorf("stf: compile: nil mapping")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("stf: compile: %w", err)
	}
	if relevant != nil {
		if len(relevant) != workers {
			return nil, fmt.Errorf("stf: compile: pruning bitmaps for %d workers, compiling for %d", len(relevant), workers)
		}
		for w, r := range relevant {
			if len(r) != len(g.Tasks) {
				return nil, fmt.Errorf("stf: compile: worker %d pruning bitmap covers %d tasks, graph has %d", w, len(r), len(g.Tasks))
			}
		}
	}
	if len(g.Tasks) > 1<<31-1 {
		return nil, fmt.Errorf("stf: compile: graph has %d tasks, compiled task indices are 32-bit", len(g.Tasks))
	}

	// Resolve ownership once per task (not once per task per worker).
	owners := make([]WorkerID, len(g.Tasks))
	for i := range g.Tasks {
		o := m(g.Tasks[i].ID)
		if o == SharedWorker {
			return nil, fmt.Errorf("stf: compile: task %d has no static owner (SharedWorker); partial mappings require closure replay", i)
		}
		if o < 0 || int(o) >= workers {
			return nil, fmt.Errorf("stf: compile: mapping(%d) = %d out of range [0,%d)", i, o, workers)
		}
		owners[i] = o
	}

	cp := &CompiledProgram{
		Name:    g.Name,
		NumData: g.NumData,
		Workers: workers,
		Tasks:   g.Tasks,
		Streams: make([][]Instr, workers),
		Stats:   make([]StreamStats, workers),
		Pruned:  relevant != nil,
	}
	for w := 0; w < workers; w++ {
		stream := make([]Instr, 0, streamSize(g, owners, relevant, w))
		for i := range g.Tasks {
			if relevant != nil && !relevant[w][i] {
				continue
			}
			t := &g.Tasks[i]
			if owners[i] == WorkerID(w) {
				stream = appendOwned(stream, t)
				cp.Stats[w].Executed++
			} else if len(t.Accesses) > 0 {
				stream = appendForeign(stream, t)
				cp.Stats[w].Declared++
			} else {
				// A foreign task with no accesses needs no bookkeeping at
				// all — it synchronizes on nothing. Closure replay still
				// pays a submission for it; the compiled stream is free.
				cp.Stats[w].Declared++
			}
		}
		cp.Streams[w] = stream
	}
	return cp, nil
}

// streamSize pre-computes worker w's exact stream length so compilation
// allocates each stream once.
func streamSize(g *Graph, owners []WorkerID, relevant [][]bool, w int) int {
	n := 0
	for i := range g.Tasks {
		if relevant != nil && !relevant[w][i] {
			continue
		}
		if owners[i] == WorkerID(w) {
			n += 2*len(g.Tasks[i].Accesses) + 1
		} else {
			n += len(g.Tasks[i].Accesses)
		}
	}
	return n
}

// appendOwned emits the micro-ops of a task the worker executes: the
// get_* waits in declared access order, the body, then the terminate_*
// publications — exactly the sequence of Algorithm 1's execute path.
func appendOwned(stream []Instr, t *Task) []Instr {
	id := int32(t.ID)
	for _, a := range t.Accesses {
		stream = append(stream, Instr{Op: getOp(a.Mode), Mode: a.Mode, Data: a.Data, Task: id})
	}
	stream = append(stream, Instr{Op: OpExec, Task: id})
	for _, a := range t.Accesses {
		stream = append(stream, Instr{Op: termOp(a.Mode), Mode: a.Mode, Data: a.Data, Task: id})
	}
	return stream
}

// appendForeign emits the declare_* bookkeeping of a task owned by another
// worker.
func appendForeign(stream []Instr, t *Task) []Instr {
	id := int32(t.ID)
	for _, a := range t.Accesses {
		stream = append(stream, Instr{Op: declareOp(a.Mode), Mode: a.Mode, Data: a.Data, Task: id})
	}
	return stream
}

func declareOp(m AccessMode) OpCode {
	switch {
	case m.Writes():
		return OpDeclareWrite
	case m.Commutes():
		return OpDeclareRed
	default:
		return OpDeclareRead
	}
}

func getOp(m AccessMode) OpCode {
	switch {
	case m.Writes():
		return OpGetWrite
	case m.Commutes():
		return OpGetRed
	default:
		return OpGetRead
	}
}

func termOp(m AccessMode) OpCode {
	switch {
	case m.Writes():
		return OpTermWrite
	case m.Commutes():
		return OpTermRed
	default:
		return OpTermRead
	}
}
