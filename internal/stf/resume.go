package stf

// Checkpoint resume for compiled replay: skipping the completed tasks of a
// Checkpoint is literal instruction-stream pruning — the same mechanism as
// the paper's §3.5 task pruning, applied to the frontier of an interrupted
// run instead of a static relevance analysis. Because the checkpoint is
// dependency-closed and every worker drops exactly the same task set, the
// pruned streams still replay a consistent flow: a surviving task's get_*
// waits only ever reference terminations that either survive too or were
// already published (in data memory) by the previous run.

// PruneCompleted returns a copy of cp with every instruction belonging to
// a task in c's completed set removed from every stream, and per-stream
// stats adjusted: skipped owned tasks move from Executed to Skipped,
// skipped foreign tasks leave Declared. cp itself is never mutated (it may
// be cached and shared); when the checkpoint is empty cp is returned
// as-is.
//
// The checkpoint must come from a run of the same flow cp was compiled
// from (same graph, any engine). Completed IDs beyond cp's task table are
// ignored.
//
// One accounting nuance: a zero-access foreign task emits no instructions
// (Compile charges it straight to Declared), so when cp was itself
// §3.5-pruned the compiler's relevance decision for it is no longer
// recoverable and its Declared charge is left in place — a documented
// over-count of at most the completed zero-access task count, affecting
// statistics only, never synchronization.
func PruneCompleted(cp *CompiledProgram, c *Checkpoint) *CompiledProgram {
	if c == nil || len(c.Completed) == 0 {
		return cp
	}
	out := &CompiledProgram{
		Name:    cp.Name,
		NumData: cp.NumData,
		Workers: cp.Workers,
		Tasks:   cp.Tasks,
		Streams: make([][]Instr, cp.Workers),
		Stats:   make([]StreamStats, cp.Workers),
		Pruned:  cp.Pruned,
	}
	// Owners of completed zero-access tasks, discovered while scanning (an
	// owned task always emits an OpExec, even with no accesses).
	var zeroOwner map[TaskID]WorkerID
	for w := range cp.Streams {
		old := cp.Streams[w]
		st := cp.Stats[w]
		ns := make([]Instr, 0, len(old))
		// A task's instructions are contiguous in its stream (Compile emits
		// task by task), so group by task and drop whole groups.
		for i := 0; i < len(old); {
			id := old[i].Task
			j := i
			hasExec := false
			for j < len(old) && old[j].Task == id {
				if old[j].Op == OpExec {
					hasExec = true
				}
				j++
			}
			if c.Contains(TaskID(id)) {
				if hasExec {
					st.Executed--
					st.Skipped++
					if j-i == 1 && !cp.Pruned {
						if zeroOwner == nil {
							zeroOwner = make(map[TaskID]WorkerID)
						}
						zeroOwner[TaskID(id)] = WorkerID(w)
					}
				} else {
					st.Declared--
				}
			} else {
				ns = append(ns, old[i:j]...)
			}
			i = j
		}
		out.Streams[w] = ns
		out.Stats[w] = st
	}
	if !cp.Pruned {
		// Completed zero-access foreign tasks left no instructions to drop,
		// but Compile charged them to every non-owner's Declared.
		for _, id := range c.Completed {
			if int(id) >= len(cp.Tasks) || len(cp.Tasks[id].Accesses) != 0 {
				continue
			}
			owner, ok := zeroOwner[id]
			for w := range out.Stats {
				if !ok || WorkerID(w) != owner {
					out.Stats[w].Declared--
				}
			}
		}
	}
	return out
}
