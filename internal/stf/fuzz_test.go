package stf_test

import (
	"bytes"
	"testing"

	"rio/internal/stf"
)

// graphFromBytes decodes an arbitrary byte string into a small valid task
// flow: every 3 bytes define one access (task ID delta, data, mode).
func graphFromBytes(data []byte) *stf.Graph {
	const maxData = 6
	g := stf.NewGraph("fuzz", maxData)
	var accesses []stf.Access
	seen := map[stf.DataID]bool{}
	flush := func(kernel int) {
		if len(accesses) > 0 || kernel%3 == 0 {
			g.Add(kernel, 0, 0, 0, accesses...)
			accesses = nil
			seen = map[stf.DataID]bool{}
		}
	}
	for i := 0; i+2 < len(data) && len(g.Tasks) < 24; i += 3 {
		if data[i]%2 == 0 {
			flush(int(data[i]))
		}
		d := stf.DataID(data[i+1] % maxData)
		if seen[d] {
			continue
		}
		seen[d] = true
		mode := []stf.AccessMode{stf.ReadOnly, stf.WriteOnly, stf.ReadWrite, stf.Reduction}[data[i+2]%4]
		accesses = append(accesses, stf.Access{Data: d, Mode: mode})
	}
	flush(0)
	return g
}

// FuzzDependencyInvariants checks the structural invariants of dependency
// derivation on arbitrary task flows: edges only point backwards, levels
// are consistent, the submission order is always a valid execution order,
// and the JSON round trip preserves the dependency structure.
func FuzzDependencyInvariants(f *testing.F) {
	f.Add([]byte{1, 0, 0, 2, 1, 1, 3, 2, 2, 4, 3, 3})
	f.Add([]byte{0, 0, 1, 0, 0, 0, 0, 1, 3, 2, 2, 3})
	f.Add(bytes.Repeat([]byte{5, 1, 2}, 20))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		if len(g.Tasks) == 0 {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced invalid graph: %v", err)
		}
		deps := g.Dependencies()
		levels, depth := g.Levels()
		if depth > len(g.Tasks) {
			t.Fatalf("depth %d > tasks %d", depth, len(g.Tasks))
		}
		order := make([]stf.TaskID, len(g.Tasks))
		for i := range order {
			order[i] = stf.TaskID(i)
		}
		if bad := g.CheckOrder(order); bad != stf.NoTask {
			t.Fatalf("submission order rejected at %d", bad)
		}
		for id, ds := range deps {
			for _, d := range ds {
				if d >= stf.TaskID(id) {
					t.Fatalf("forward edge %d -> %d", d, id)
				}
				if levels[d] >= levels[id] {
					t.Fatalf("level inversion %d -> %d", d, id)
				}
				if stf.ConflictFree(&g.Tasks[id], &g.Tasks[d]) {
					t.Fatalf("dependency between conflict-free tasks %d, %d", d, id)
				}
			}
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := stf.ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		deps2 := got.Dependencies()
		for i := range deps {
			if len(deps[i]) != len(deps2[i]) {
				t.Fatalf("JSON round trip changed deps of task %d", i)
			}
		}
	})
}
