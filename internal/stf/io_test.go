package stf_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.LU(4),
		graphs.GEMM(3),
		graphs.RandomDeps(50, 16, 2, 1, 3),
		graphs.Independent(10),
	} {
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		got, err := stf.ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name, err)
		}
		if got.Name != g.Name || got.NumData != g.NumData || len(got.Tasks) != len(g.Tasks) {
			t.Fatalf("%s: header mismatch", g.Name)
		}
		for i := range g.Tasks {
			a, b := &g.Tasks[i], &got.Tasks[i]
			if a.Kernel != b.Kernel || a.I != b.I || a.J != b.J || a.K != b.K || len(a.Accesses) != len(b.Accesses) {
				t.Fatalf("%s: task %d mismatch: %+v vs %+v", g.Name, i, a, b)
			}
			for j := range a.Accesses {
				if a.Accesses[j] != b.Accesses[j] {
					t.Fatalf("%s: task %d access %d mismatch", g.Name, i, j)
				}
			}
		}
	}
}

func TestJSONRoundTripWithReductions(t *testing.T) {
	g := stf.NewGraph("red", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.Red(0))
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := stf.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tasks[1].Accesses[0].Mode != stf.Reduction {
		t.Errorf("reduction mode lost: %v", got.Tasks[1].Accesses[0].Mode)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := stf.ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := stf.ReadJSON(strings.NewReader(`{"name":"x","num_data":1,"tasks":[{"accesses":[{"data":0,"mode":"XX"}]}]}`)); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := stf.ReadJSON(strings.NewReader(`{"name":"x","num_data":1,"tasks":[{"accesses":[{"data":9,"mode":"R"}]}]}`)); err == nil {
		t.Error("out-of-range data accepted (validation skipped)")
	}
}

func TestWriteDOT(t *testing.T) {
	g := stf.NewGraph("dot", 1)
	g.Add(1, 0, 0, 0, stf.W(0))
	g.Add(2, 0, 0, 0, stf.R(0))
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "t0", "t1", "t0 -> t1", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	g := graphs.Wavefront(3, 3)
	s := g.Summarize()
	if s.Tasks != 9 || s.NumData != 9 {
		t.Errorf("summary counts: %+v", s)
	}
	if s.Depth != 5 {
		t.Errorf("depth = %d, want 5", s.Depth)
	}
	if s.MaxWidth != 3 {
		t.Errorf("max width = %d, want 3 (longest anti-diagonal)", s.MaxWidth)
	}
	// Edges: each cell depends on north and west where they exist:
	// 2*rows*cols - rows - cols = 18-6 = 12.
	if s.Edges != 12 {
		t.Errorf("edges = %d, want 12", s.Edges)
	}
	if s.AvgDeps <= 0 {
		t.Errorf("avg deps = %v", s.AvgDeps)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := stf.NewGraph("empty", 0).Summarize()
	if s.Tasks != 0 || s.AvgDeps != 0 || s.Depth != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// Property: JSON round-trip preserves the dependency structure of random
// graphs (including ones with reductions).
func TestPropertyJSONPreservesDependencies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraphWithReductions(rng, 30, 6)
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := stf.ReadJSON(&buf)
		if err != nil {
			return false
		}
		a, b := g.Dependencies(), got.Dependencies()
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
