package stf_test

import (
	"strings"
	"testing"

	"rio/internal/stf"
)

// compileGraph: a small mixed-mode flow over 3 data objects.
//
//	task 0: W(0)
//	task 1: R(0), W(1)
//	task 2: Red(2)
//	task 3: (no accesses)
//	task 4: RW(1), R(0)
func compileGraph() *stf.Graph {
	g := stf.NewGraph("compile-test", 3)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.R(0), stf.W(1))
	g.Add(0, 2, 0, 0, stf.Red(2))
	g.Add(0, 3, 0, 0)
	g.Add(0, 4, 0, 0, stf.RW(1), stf.R(0))
	return g
}

func cyclic(p int) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID { return stf.WorkerID(id % stf.TaskID(p)) }
}

func TestCompileStreamStructure(t *testing.T) {
	g := compileGraph()
	cp, err := stf.Compile(g, cyclic(2), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Workers != 2 || cp.NumData != 3 || cp.Name != "compile-test" {
		t.Errorf("header = %d workers, %d data, %q", cp.Workers, cp.NumData, cp.Name)
	}
	if cp.Pruned {
		t.Error("Pruned set without pruning bitmaps")
	}

	// Worker 0 owns tasks 0, 2, 4; declares 1 (and 3, for free).
	want0 := []stf.Instr{
		{Op: stf.OpGetWrite, Mode: stf.WriteOnly, Data: 0, Task: 0},
		{Op: stf.OpExec, Task: 0},
		{Op: stf.OpTermWrite, Mode: stf.WriteOnly, Data: 0, Task: 0},
		{Op: stf.OpDeclareRead, Mode: stf.ReadOnly, Data: 0, Task: 1},
		{Op: stf.OpDeclareWrite, Mode: stf.WriteOnly, Data: 1, Task: 1},
		{Op: stf.OpGetRed, Mode: stf.Reduction, Data: 2, Task: 2},
		{Op: stf.OpExec, Task: 2},
		{Op: stf.OpTermRed, Mode: stf.Reduction, Data: 2, Task: 2},
		// task 3: owned by worker 1, no accesses — nothing to emit.
		{Op: stf.OpGetWrite, Mode: stf.ReadWrite, Data: 1, Task: 4},
		{Op: stf.OpGetRead, Mode: stf.ReadOnly, Data: 0, Task: 4},
		{Op: stf.OpExec, Task: 4},
		{Op: stf.OpTermWrite, Mode: stf.ReadWrite, Data: 1, Task: 4},
		{Op: stf.OpTermRead, Mode: stf.ReadOnly, Data: 0, Task: 4},
	}
	if len(cp.Streams[0]) != len(want0) {
		t.Fatalf("worker 0 stream has %d ops, want %d\n%v", len(cp.Streams[0]), len(want0), cp.Streams[0])
	}
	for i, in := range cp.Streams[0] {
		if in != want0[i] {
			t.Errorf("worker 0 op %d = %+v, want %+v", i, in, want0[i])
		}
	}

	// Worker 1 owns tasks 1, 3; declares 0, 2, 4.
	want1 := []stf.Instr{
		{Op: stf.OpDeclareWrite, Mode: stf.WriteOnly, Data: 0, Task: 0},
		{Op: stf.OpGetRead, Mode: stf.ReadOnly, Data: 0, Task: 1},
		{Op: stf.OpGetWrite, Mode: stf.WriteOnly, Data: 1, Task: 1},
		{Op: stf.OpExec, Task: 1},
		{Op: stf.OpTermRead, Mode: stf.ReadOnly, Data: 0, Task: 1},
		{Op: stf.OpTermWrite, Mode: stf.WriteOnly, Data: 1, Task: 1},
		{Op: stf.OpDeclareRed, Mode: stf.Reduction, Data: 2, Task: 2},
		{Op: stf.OpExec, Task: 3},
		{Op: stf.OpDeclareWrite, Mode: stf.ReadWrite, Data: 1, Task: 4},
		{Op: stf.OpDeclareRead, Mode: stf.ReadOnly, Data: 0, Task: 4},
	}
	if len(cp.Streams[1]) != len(want1) {
		t.Fatalf("worker 1 stream has %d ops, want %d\n%v", len(cp.Streams[1]), len(want1), cp.Streams[1])
	}
	for i, in := range cp.Streams[1] {
		if in != want1[i] {
			t.Errorf("worker 1 op %d = %+v, want %+v", i, in, want1[i])
		}
	}

	if s := cp.Stats[0]; s.Executed != 3 || s.Declared != 2 {
		t.Errorf("worker 0 stats = %+v, want {3 2}", s)
	}
	if s := cp.Stats[1]; s.Executed != 2 || s.Declared != 3 {
		t.Errorf("worker 1 stats = %+v, want {2 3}", s)
	}
	if cp.Ops() != len(want0)+len(want1) {
		t.Errorf("Ops() = %d, want %d", cp.Ops(), len(want0)+len(want1))
	}
}

// Foreign tasks without accesses cost a full submission under closure
// replay but zero micro-ops compiled — the core of the Fig 7 win.
func TestCompileAccessFreeForeignTasksAreFree(t *testing.T) {
	g := stf.NewGraph("independent", 0)
	for i := 0; i < 100; i++ {
		g.Add(0, i, 0, 0)
	}
	cp, err := stf.Compile(g, cyclic(4), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w, s := range cp.Streams {
		if len(s) != 25 {
			t.Errorf("worker %d: %d ops, want 25 (own execs only)", w, len(s))
		}
		for _, in := range s {
			if in.Op != stf.OpExec {
				t.Errorf("worker %d: unexpected op %v", w, in.Op)
			}
		}
		if cp.Stats[w].Executed != 25 || cp.Stats[w].Declared != 75 {
			t.Errorf("worker %d stats = %+v", w, cp.Stats[w])
		}
	}
}

func TestCompilePruning(t *testing.T) {
	g := compileGraph()
	// Hand-built relevance: worker 0 keeps everything; worker 1 keeps only
	// its own tasks (1 and 3) plus task 0 (writes data 0, read by task 1).
	rel := [][]bool{
		{true, true, true, true, true},
		{true, true, false, true, false},
	}
	cp, err := stf.Compile(g, cyclic(2), 2, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Pruned {
		t.Error("Pruned not set")
	}
	for _, in := range cp.Streams[1] {
		if in.Task == 2 || in.Task == 4 {
			t.Errorf("pruned task %d appears in worker 1 stream: %+v", in.Task, in)
		}
	}
	// Pruned tasks count as neither executed nor declared.
	if s := cp.Stats[1]; s.Executed != 2 || s.Declared != 1 {
		t.Errorf("worker 1 stats = %+v, want {2 1}", s)
	}
}

func TestCompileErrors(t *testing.T) {
	g := compileGraph()
	cases := []struct {
		name    string
		g       *stf.Graph
		m       stf.Mapping
		workers int
		rel     [][]bool
		want    string
	}{
		{"zero-workers", g, cyclic(2), 0, nil, "workers"},
		{"nil-mapping", g, nil, 2, nil, "nil mapping"},
		{"shared-worker", g, func(stf.TaskID) stf.WorkerID { return stf.SharedWorker }, 2, nil, "SharedWorker"},
		{"owner-out-of-range", g, cyclic(4), 2, nil, "out of range"},
		{"negative-owner", g, func(stf.TaskID) stf.WorkerID { return -5 }, 2, nil, "out of range"},
		{"bitmap-worker-count", g, cyclic(2), 2, [][]bool{{true, true, true, true, true}}, "bitmaps"},
		{"bitmap-task-count", g, cyclic(2), 2, [][]bool{{true}, {true}}, "bitmap covers"},
		{"invalid-graph", &stf.Graph{NumData: 0, Tasks: []stf.Task{{ID: 0, Accesses: []stf.Access{stf.R(9)}}}}, cyclic(1), 1, nil, "out of range"},
	}
	for _, tc := range cases {
		_, err := stf.Compile(tc.g, tc.m, tc.workers, tc.rel)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestOpCodeString(t *testing.T) {
	ops := map[stf.OpCode]string{
		stf.OpDeclareRead:  "declare_read",
		stf.OpDeclareWrite: "declare_write",
		stf.OpDeclareRed:   "declare_red",
		stf.OpGetRead:      "get_read",
		stf.OpGetWrite:     "get_write",
		stf.OpGetRed:       "get_red",
		stf.OpExec:         "exec",
		stf.OpTermRead:     "terminate_read",
		stf.OpTermWrite:    "terminate_write",
		stf.OpTermRed:      "terminate_red",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	if s := stf.OpCode(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown opcode String() = %q", s)
	}
}
