package stf

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Window records one bounded slice of an unbounded task flow. Task IDs are
// window-local (0..Len()-1): a streaming session replays one window at a
// time between epoch barriers, so identity only has to be unique within the
// window, and the per-data synchronization state recycled at the barrier is
// sized by the window, not the flow.
//
// A Window is a recording buffer, not a graph: Reset keeps every backing
// allocation (task slice, per-slot access storage, touched set) so a
// steady-state pipeline records window after window without allocating.
// Windows are not safe for concurrent use; one producer records while the
// previous window executes.
type Window struct {
	numData int
	tasks   []Task
	bodies  []TaskFunc // parallel to tasks; nil entries are kernel tasks

	// accs[i] is task i's reusable access storage. Each slot owns its own
	// backing array — a single flat arena would invalidate earlier tasks'
	// slices when an append reallocates it.
	accs [][]Access

	// Touched-data tracking. stamp[d] == gen marks d as already recorded in
	// touched this window; bumping gen on Reset clears every mark in O(1).
	touched []DataID
	stamp   []uint32
	gen     uint32
}

// NewWindow returns an empty window over numData data objects.
func NewWindow(numData int) *Window {
	if numData < 0 {
		numData = 0
	}
	return &Window{
		numData: numData,
		stamp:   make([]uint32, numData),
		gen:     1,
	}
}

// Len reports the number of tasks recorded since the last Reset.
func (w *Window) Len() int { return len(w.tasks) }

// NumData reports the size of the data universe the window records against.
func (w *Window) NumData() int { return w.numData }

// Tasks exposes the recorded tasks. The slice aliases the window's storage
// and is valid only until the next Reset.
func (w *Window) Tasks() []Task { return w.tasks }

// Bodies exposes the recorded closure bodies, parallel to Tasks. A nil
// entry means the task carries kernel coordinates instead of a closure.
func (w *Window) Bodies() []TaskFunc { return w.bodies }

// Touched lists the data objects accessed by at least one task recorded
// since the last Reset, in first-touch order. This is exactly the set whose
// per-data state must be recycled at the window's epoch boundary — O(touched)
// per window, independent of flow length.
func (w *Window) Touched() []DataID { return w.touched }

// Add records one task and returns its window-local ID. body may be nil for
// kernel-dispatched tasks (kernel/i/j/k select the work). Accesses are
// validated inline — range, mode, duplicate data — so a window that records
// cleanly is structurally valid by construction and Flush never has to
// re-walk it.
func (w *Window) Add(body TaskFunc, kernel, i, j, k int, accesses []Access) (TaskID, error) {
	id := TaskID(len(w.tasks))
	var acc []Access
	if int(id) < len(w.accs) {
		acc = w.accs[id][:0]
	}
	for ai := range accesses {
		a := accesses[ai]
		if a.Data < 0 || int(a.Data) >= w.numData {
			return NoTask, fmt.Errorf("stf: window task %d accesses data %d, outside [0,%d)", id, a.Data, w.numData)
		}
		if a.Mode == None || a.Mode > Reduction {
			return NoTask, fmt.Errorf("stf: window task %d declares invalid access mode %d on data %d", id, a.Mode, a.Data)
		}
		for _, prev := range accesses[:ai] {
			if prev.Data == a.Data {
				return NoTask, fmt.Errorf("stf: window task %d accesses data %d more than once", id, a.Data)
			}
		}
		acc = append(acc, a)
		if w.stamp[a.Data] != w.gen {
			w.stamp[a.Data] = w.gen
			w.touched = append(w.touched, a.Data)
		}
	}
	if int(id) < len(w.accs) {
		w.accs[id] = acc
	} else {
		w.accs = append(w.accs, acc)
	}
	w.tasks = append(w.tasks, Task{ID: id, Kernel: kernel, I: i, J: j, K: k, Accesses: acc})
	w.bodies = append(w.bodies, body)
	return id, nil
}

// Reset clears the window for the next epoch, keeping all capacity. The
// touched set is cleared by bumping the generation stamp, not by rewriting
// the per-data stamp array; only on the (rare) uint32 wraparound is the
// stamp array rewritten.
func (w *Window) Reset() {
	w.tasks = w.tasks[:0]
	w.bodies = w.bodies[:0]
	w.touched = w.touched[:0]
	w.gen++
	if w.gen == 0 {
		for i := range w.stamp {
			w.stamp[i] = 0
		}
		w.gen = 1
	}
}

// Fingerprint returns the window's shape hash: SHA-256 over the data-ID /
// access-mode structure plus numData and task count, excluding kernel
// selectors, coordinates, closure bodies and idempotence flags. Two windows
// with equal fingerprints synchronize identically under the same mapping, so
// a program compiled from one window's shape replays any window with the
// same fingerprint — the cache key for per-shape compiled windows. Periodic
// pipelines whose payloads vary but whose access structure repeats hit the
// cache every window after the first.
func (w *Window) Fingerprint() [32]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(w.numData))
	put(uint64(len(w.tasks)))
	for i := range w.tasks {
		t := &w.tasks[i]
		put(uint64(len(t.Accesses)))
		for _, a := range t.Accesses {
			put(uint64(uint32(a.Data))<<8 | uint64(a.Mode))
		}
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// Graph returns a Graph view over the window's storage. The view aliases
// the window and is valid only until the next Reset; use CloneGraph for
// anything that outlives the window (such as a cached compiled program).
func (w *Window) Graph(name string) *Graph {
	return &Graph{NumData: w.numData, Tasks: w.tasks, Name: name}
}

// CloneGraph deep-copies the recorded tasks — access lists included — into
// freshly owned storage. Compiled programs alias their source graph's task
// table, so a program cached across windows must be compiled from a clone,
// never from the reusable window buffer.
func (w *Window) CloneGraph(name string) *Graph {
	tasks := make([]Task, len(w.tasks))
	copy(tasks, w.tasks)
	for i := range tasks {
		tasks[i].Accesses = append([]Access(nil), tasks[i].Accesses...)
	}
	return &Graph{NumData: w.numData, Tasks: tasks, Name: name}
}
