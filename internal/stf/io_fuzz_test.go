package stf_test

// Wire-format lossiness fuzz: the JSON graph form is the wire format of
// rio-serve (clients POST it, the server preflights / compiles / replays
// it), so parse→serialize→parse must be a fixed point for every field
// the server consumes — task order, kernel selectors, tile coordinates
// (K doubles as the task weight consumed by rio.WeightCost and the
// automap), access lists, modes and idempotence flags, the name and the
// data-object count. A field the serializer silently drops is not a
// cosmetic bug here but a wire-protocol one: the program the server runs
// would differ from the program the client submitted. (The mapping half
// of the wire format lives in internal/server/ingest and has its own
// round-trip tests.)

import (
	"bytes"
	"reflect"
	"testing"

	"rio/internal/graphs"
	"rio/internal/stf"
)

// fuzzSeedGraphs are serialized seeds covering every field and edge the
// encoder can see: empty access lists (omitempty), zero and negative
// coordinates, weights, reductions, idempotence, unicode names.
func fuzzSeedGraphs() []*stf.Graph {
	weighted := stf.NewGraph("weighted π", 3)
	weighted.Add(7, -1, 0, 1000, stf.W(0).AsIdempotent(), stf.R(2))
	weighted.Add(0, 0, 0, 0) // no accesses: the omitempty edge
	weighted.Add(1, 2, 3, -4, stf.Red(1), stf.RW(0))
	return []*stf.Graph{
		graphs.LU(3),
		graphs.RandomDeps(20, 8, 2, 1, 7),
		graphs.Independent(4),
		stf.NewGraph("", 0),
		weighted,
	}
}

func FuzzGraphJSONRoundTrip(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"name":"x","num_data":2,"tasks":[{"kernel":1,"accesses":[{"data":1,"mode":"W","idempotent":true}]}]}`))
	f.Add([]byte(`{"tasks":[{"accesses":[]}],"num_data":0,"name":""}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g1, err := stf.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // not a well-formed graph; nothing to round-trip
		}
		var buf1 bytes.Buffer
		if err := g1.WriteJSON(&buf1); err != nil {
			t.Fatalf("serializing an accepted graph: %v", err)
		}
		g2, err := stf.ReadJSON(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing our own serialization: %v\n%s", err, buf1.Bytes())
		}
		if !reflect.DeepEqual(g1, g2) {
			t.Fatalf("parse→serialize→parse is lossy:\nfirst:  %+v\nsecond: %+v\nwire:\n%s", g1, g2, buf1.Bytes())
		}
		// And the serialization itself must be a fixed point: a second
		// encode of the re-parsed graph is byte-identical.
		var buf2 bytes.Buffer
		if err := g2.WriteJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("serialization is not a fixed point:\nfirst:\n%s\nsecond:\n%s", buf1.Bytes(), buf2.Bytes())
		}
	})
}

// TestJSONRoundTripEmptyAccessTask pins the concrete asymmetry the fuzz
// target guards against: a task with an empty access list used to
// deserialize to a non-nil empty slice while serialization omitted the
// field, so parse→serialize→parse was not a fixed point.
func TestJSONRoundTripEmptyAccessTask(t *testing.T) {
	g1, err := stf.ReadJSON(bytes.NewReader([]byte(`{"name":"e","num_data":1,"tasks":[{"kernel":1,"accesses":[]}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g1.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := stf.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1, g2) {
		t.Fatalf("empty access list does not round-trip:\nfirst:  %+v\nsecond: %+v", g1.Tasks[0], g2.Tasks[0])
	}
}
