package stf_test

import (
	"testing"

	"rio/internal/stf"
)

func TestStealPolicyDefaults(t *testing.T) {
	var nilPolicy *stf.StealPolicy
	if nilPolicy.ScanBound() != stf.DefaultStealScan {
		t.Errorf("nil ScanBound = %d", nilPolicy.ScanBound())
	}
	if nilPolicy.RingCap() != stf.DefaultStealBuffer {
		t.Errorf("nil RingCap = %d", nilPolicy.RingCap())
	}
	zero := &stf.StealPolicy{}
	if zero.ScanBound() != stf.DefaultStealScan || zero.RingCap() != stf.DefaultStealBuffer {
		t.Errorf("zero policy = scan %d, ring %d", zero.ScanBound(), zero.RingCap())
	}
	set := &stf.StealPolicy{MaxScan: 3, Buffer: 17}
	if set.ScanBound() != 3 || set.RingCap() != 17 {
		t.Errorf("set policy = scan %d, ring %d", set.ScanBound(), set.RingCap())
	}
}

// The readiness predicate must match the get_read / get_write / get_red
// conditions mode by mode: writes need exact agreement on all three
// counters, reads ignore the read count (readers commute with each other),
// reductions accept any reduction count at or past their run start
// (members of a run commute).
func TestStealReqReady(t *testing.T) {
	w := stf.StealReq{Mode: stf.WriteOnly, LastWrite: 4, Reads: 2, Reds: 1}
	if !w.Ready(4, 2, 1) {
		t.Error("write: exact state not ready")
	}
	for _, bad := range [][3]int64{{3, 2, 1}, {4, 1, 1}, {4, 2, 0}} {
		if w.Ready(bad[0], bad[1], bad[2]) {
			t.Errorf("write: ready at %v", bad)
		}
	}

	r := stf.StealReq{Mode: stf.ReadOnly, LastWrite: 4, Reads: 2, Reds: 1}
	if !r.Ready(4, 2, 1) || !r.Ready(4, 99, 1) {
		t.Error("read: must ignore the read count")
	}
	if r.Ready(3, 2, 1) || r.Ready(4, 2, 2) {
		t.Error("read: stale write or pending reduction accepted")
	}

	red := stf.StealReq{Mode: stf.Reduction, LastWrite: 4, Reads: 2, Reds: 3, RedsBefore: 1}
	if !red.Ready(4, 2, 1) || !red.Ready(4, 2, 2) {
		t.Error("red: members of the current run must commute")
	}
	if red.Ready(4, 2, 0) || red.Ready(4, 1, 1) || red.Ready(3, 2, 1) {
		t.Error("red: earlier run, missing read or stale write accepted")
	}
}

// BuildStealMeta over the compile-test flow: owners recovered from the
// streams, victim queues in flow order, registered values hand-checked
// against one declare-semantics replay.
//
//	task 0: W(0)          — worker 0
//	task 1: R(0), W(1)    — worker 1
//	task 2: Red(2)        — worker 0
//	task 3: (no accesses) — worker 1
//	task 4: RW(1), R(0)   — worker 0
func TestBuildStealMeta(t *testing.T) {
	g := compileGraph()
	cp, err := stf.Compile(g, cyclic(2), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := stf.BuildStealMeta(cp)

	wantOwners := []stf.WorkerID{0, 1, 0, 1, 0}
	for i, w := range wantOwners {
		if m.Owners[i] != w {
			t.Errorf("owner[%d] = %d, want %d", i, m.Owners[i], w)
		}
	}
	assertQueue(t, "queue[0]", m.ByOwner[0], []int32{0, 2, 4})
	assertQueue(t, "queue[1]", m.ByOwner[1], []int32{1, 3})

	none := int64(stf.NoTask)
	wantReqs := [][]stf.StealReq{
		{{Data: 0, Mode: stf.WriteOnly, LastWrite: none}},
		{
			{Data: 0, Mode: stf.ReadOnly, LastWrite: 0},
			{Data: 1, Mode: stf.WriteOnly, LastWrite: none},
		},
		{{Data: 2, Mode: stf.Reduction, LastWrite: none}},
		{},
		{
			{Data: 1, Mode: stf.ReadWrite, LastWrite: 1},
			{Data: 0, Mode: stf.ReadOnly, LastWrite: 0, Reads: 1},
		},
	}
	for i, want := range wantReqs {
		got := m.Reqs[i]
		if len(got) != len(want) {
			t.Errorf("reqs[%d] has %d entries, want %d: %+v", i, len(got), len(want), got)
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("reqs[%d][%d] = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// Checkpoint-pruned tasks must be unstealable — no owner, no requirements,
// absent from every victim queue — and the surviving tasks' registered
// values must be computed over the surviving flow alone, matching the
// pruned streams in which the completed tasks' declares were dropped from
// every worker.
func TestBuildStealMetaPruned(t *testing.T) {
	g := compileGraph()
	cp, err := stf.Compile(g, cyclic(2), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned := stf.PruneCompleted(cp, &stf.Checkpoint{
		Tasks:     len(g.Tasks),
		Completed: []stf.TaskID{0, 1},
	})
	m := stf.BuildStealMeta(pruned)

	for _, id := range []int{0, 1} {
		if m.Owners[id] != -1 || m.Reqs[id] != nil {
			t.Errorf("pruned task %d still stealable: owner %d reqs %+v", id, m.Owners[id], m.Reqs[id])
		}
	}
	assertQueue(t, "queue[0]", m.ByOwner[0], []int32{2, 4})
	assertQueue(t, "queue[1]", m.ByOwner[1], []int32{3})

	// Task 4's counters now describe a flow in which tasks 0 and 1 never
	// happened (their data effects live in checkpointed memory, their
	// declares in no stream): both data start pristine.
	none := int64(stf.NoTask)
	want := []stf.StealReq{
		{Data: 1, Mode: stf.ReadWrite, LastWrite: none},
		{Data: 0, Mode: stf.ReadOnly, LastWrite: none},
	}
	for j := range want {
		if m.Reqs[4][j] != want[j] {
			t.Errorf("pruned reqs[4][%d] = %+v, want %+v", j, m.Reqs[4][j], want[j])
		}
	}
}

// Compile rejects a task accessing the same data twice — pinned here
// because BuildStealMeta's snapshot-then-update pass additionally defends
// against it (all of a task's requirements see the pre-task counters), and
// that defense should not silently become load-bearing.
func TestBuildStealMetaDuplicateDataRejected(t *testing.T) {
	g := stf.NewGraph("dup", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.R(0), stf.R(0))
	if _, err := stf.Compile(g, cyclic(2), 2, nil); err == nil {
		t.Fatal("duplicate-data task compiled; BuildStealMeta relies on its rejection")
	}
}

func assertQueue(t *testing.T, name string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", name, got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s = %v, want %v", name, got, want)
			return
		}
	}
}
