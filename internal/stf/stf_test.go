package stf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccessModeString(t *testing.T) {
	cases := map[AccessMode]string{
		None: "None", ReadOnly: "R", WriteOnly: "W", ReadWrite: "RW",
		Reduction:      "Red",
		AccessMode(42): "AccessMode(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestAccessModePredicates(t *testing.T) {
	cases := []struct {
		m                       AccessMode
		reads, writes, commutes bool
	}{
		{None, false, false, false},
		{ReadOnly, true, false, false},
		{WriteOnly, false, true, false},
		{ReadWrite, true, true, false},
		{Reduction, false, false, true},
	}
	for _, c := range cases {
		if c.m.Reads() != c.reads {
			t.Errorf("%v.Reads() = %v, want %v", c.m, c.m.Reads(), c.reads)
		}
		if c.m.Writes() != c.writes {
			t.Errorf("%v.Writes() = %v, want %v", c.m, c.m.Writes(), c.writes)
		}
		if c.m.Commutes() != c.commutes {
			t.Errorf("%v.Commutes() = %v, want %v", c.m, c.m.Commutes(), c.commutes)
		}
	}
}

func TestAccessConstructors(t *testing.T) {
	if a := R(3); a.Data != 3 || a.Mode != ReadOnly {
		t.Errorf("R(3) = %+v", a)
	}
	if a := W(4); a.Data != 4 || a.Mode != WriteOnly {
		t.Errorf("W(4) = %+v", a)
	}
	if a := RW(5); a.Data != 5 || a.Mode != ReadWrite {
		t.Errorf("RW(5) = %+v", a)
	}
}

func TestGraphAddAssignsSequentialIDs(t *testing.T) {
	g := NewGraph("t", 2)
	for i := 0; i < 5; i++ {
		if id := g.Add(0, i, 0, 0, R(0)); id != TaskID(i) {
			t.Fatalf("Add #%d returned ID %d", i, id)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGraphValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"out-of-range data", &Graph{NumData: 1, Tasks: []Task{{ID: 0, Accesses: []Access{R(1)}}}}},
		{"negative data", &Graph{NumData: 1, Tasks: []Task{{ID: 0, Accesses: []Access{R(-1)}}}}},
		{"none mode", &Graph{NumData: 1, Tasks: []Task{{ID: 0, Accesses: []Access{{Data: 0, Mode: None}}}}}},
		{"duplicate data", &Graph{NumData: 1, Tasks: []Task{{ID: 0, Accesses: []Access{R(0), W(0)}}}}},
		{"bad id", &Graph{NumData: 1, Tasks: []Task{{ID: 7}}}},
	}
	for _, c := range cases {
		if err := c.g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid graph", c.name)
		}
	}
}

func TestDependenciesReadAfterWrite(t *testing.T) {
	g := NewGraph("raw", 1)
	g.Add(0, 0, 0, 0, W(0)) // task 0 writes
	g.Add(0, 0, 0, 0, R(0)) // task 1 reads
	g.Add(0, 0, 0, 0, R(0)) // task 2 reads
	deps := g.Dependencies()
	if len(deps[0]) != 0 {
		t.Errorf("task 0 deps = %v, want none", deps[0])
	}
	for _, id := range []TaskID{1, 2} {
		if len(deps[id]) != 1 || deps[id][0] != 0 {
			t.Errorf("task %d deps = %v, want [0]", id, deps[id])
		}
	}
}

func TestDependenciesWriteAfterReads(t *testing.T) {
	g := NewGraph("war", 1)
	g.Add(0, 0, 0, 0, W(0)) // 0
	g.Add(0, 0, 0, 0, R(0)) // 1
	g.Add(0, 0, 0, 0, R(0)) // 2
	g.Add(0, 0, 0, 0, W(0)) // 3: waits for both readers (which imply task 0)
	deps := g.Dependencies()
	if got := deps[3]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("task 3 deps = %v, want [1 2]", got)
	}
}

func TestDependenciesWriteAfterWrite(t *testing.T) {
	g := NewGraph("waw", 1)
	g.Add(0, 0, 0, 0, W(0))
	g.Add(0, 0, 0, 0, W(0))
	deps := g.Dependencies()
	if got := deps[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("task 1 deps = %v, want [0]", got)
	}
}

func TestDependenciesReadWriteChains(t *testing.T) {
	// RW behaves as both a read (depends on last write) and a write
	// (next readers/writers depend on it).
	g := NewGraph("rw", 1)
	g.Add(0, 0, 0, 0, RW(0)) // 0
	g.Add(0, 0, 0, 0, RW(0)) // 1
	g.Add(0, 0, 0, 0, R(0))  // 2
	deps := g.Dependencies()
	if got := deps[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("task 1 deps = %v, want [0]", got)
	}
	if got := deps[2]; len(got) != 1 || got[0] != 1 {
		t.Errorf("task 2 deps = %v, want [1]", got)
	}
}

func TestDependenciesIndependentData(t *testing.T) {
	g := NewGraph("ind", 2)
	g.Add(0, 0, 0, 0, W(0))
	g.Add(0, 0, 0, 0, W(1))
	deps := g.Dependencies()
	if len(deps[1]) != 0 {
		t.Errorf("tasks on different data must be independent, got %v", deps[1])
	}
}

func TestDependenciesDeduplicated(t *testing.T) {
	// Task 2 reads two data objects both last written by task 0: the
	// dependency list must contain 0 exactly once.
	g := NewGraph("dedup", 2)
	g.Add(0, 0, 0, 0, W(0), W(1))
	g.Add(0, 0, 0, 0, R(0), R(1))
	deps := g.Dependencies()
	if got := deps[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("task 1 deps = %v, want [0]", got)
	}
}

func TestSuccessorsInverseOfDependencies(t *testing.T) {
	g := NewGraph("succ", 1)
	g.Add(0, 0, 0, 0, W(0))
	g.Add(0, 0, 0, 0, R(0))
	g.Add(0, 0, 0, 0, W(0))
	succs := g.Successors()
	if got := succs[0]; len(got) != 1 || got[0] != 1 {
		t.Errorf("succs[0] = %v, want [1]", got)
	}
	if got := succs[1]; len(got) != 1 || got[0] != 2 {
		t.Errorf("succs[1] = %v, want [2]", got)
	}
	if len(succs[2]) != 0 {
		t.Errorf("succs[2] = %v, want none", succs[2])
	}
}

func TestLevels(t *testing.T) {
	g := NewGraph("levels", 2)
	g.Add(0, 0, 0, 0, W(0))       // level 0
	g.Add(0, 0, 0, 0, W(1))       // level 0
	g.Add(0, 0, 0, 0, R(0), R(1)) // level 1
	g.Add(0, 0, 0, 0, W(0))       // level 2 (after the reader)
	levels, depth := g.Levels()
	want := []int{0, 0, 1, 2}
	for i, l := range levels {
		if l != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, l, want[i])
		}
	}
	if depth != 3 {
		t.Errorf("depth = %d, want 3", depth)
	}
}

func TestLevelsEmptyGraph(t *testing.T) {
	g := NewGraph("empty", 0)
	levels, depth := g.Levels()
	if len(levels) != 0 || depth != 0 {
		t.Errorf("empty graph: levels=%v depth=%d", levels, depth)
	}
}

func TestCheckOrderAcceptsSubmissionOrder(t *testing.T) {
	g := chainGraph(10)
	order := make([]TaskID, 10)
	for i := range order {
		order[i] = TaskID(i)
	}
	if bad := g.CheckOrder(order); bad != NoTask {
		t.Errorf("submission order rejected at task %d", bad)
	}
}

func TestCheckOrderRejectsViolations(t *testing.T) {
	g := chainGraph(3)
	if bad := g.CheckOrder([]TaskID{1, 0, 2}); bad == NoTask {
		t.Error("order violating a write-write chain accepted")
	}
	if bad := g.CheckOrder([]TaskID{0, 1}); bad == NoTask {
		t.Error("incomplete order accepted")
	}
	if bad := g.CheckOrder([]TaskID{0, 0, 1}); bad == NoTask {
		t.Error("duplicated task accepted")
	}
	if bad := g.CheckOrder([]TaskID{0, 5, 1}); bad == NoTask {
		t.Error("out-of-range task accepted")
	}
}

func TestCheckOrderAllowsIndependentPermutations(t *testing.T) {
	g := NewGraph("perm", 2)
	g.Add(0, 0, 0, 0, W(0))
	g.Add(0, 0, 0, 0, W(1))
	if bad := g.CheckOrder([]TaskID{1, 0}); bad != NoTask {
		t.Errorf("independent permutation rejected at %d", bad)
	}
}

func TestConflictFree(t *testing.T) {
	ra := Task{Accesses: []Access{R(0)}}
	rb := Task{Accesses: []Access{R(0)}}
	wa := Task{Accesses: []Access{W(0)}}
	other := Task{Accesses: []Access{W(1)}}
	if !ConflictFree(&ra, &rb) {
		t.Error("two readers must not conflict")
	}
	if ConflictFree(&ra, &wa) {
		t.Error("reader and writer on same data must conflict")
	}
	if ConflictFree(&wa, &wa) {
		t.Error("two writers on same data must conflict")
	}
	if !ConflictFree(&wa, &other) {
		t.Error("writers on different data must not conflict")
	}
}

func TestReplaySubmitsAllTasksInOrder(t *testing.T) {
	g := chainGraph(5)
	rec := &recordingSubmitter{}
	Replay(g, func(*Task, WorkerID) {})(rec)
	if len(rec.ids) != 5 {
		t.Fatalf("replay submitted %d tasks, want 5", len(rec.ids))
	}
	for i, id := range rec.ids {
		if id != TaskID(i) {
			t.Errorf("replay order[%d] = %d", i, id)
		}
	}
}

// chainGraph builds n tasks all writing the same data (a full chain).
func chainGraph(n int) *Graph {
	g := NewGraph("chain", 1)
	for i := 0; i < n; i++ {
		g.Add(0, i, 0, 0, W(0))
	}
	return g
}

type recordingSubmitter struct {
	ids []TaskID
}

func (r *recordingSubmitter) Submit(fn TaskFunc, accesses ...Access) TaskID {
	id := TaskID(len(r.ids))
	r.ids = append(r.ids, id)
	return id
}

func (r *recordingSubmitter) SubmitTask(t *Task, k Kernel) TaskID {
	r.ids = append(r.ids, t.ID)
	return t.ID
}

func (r *recordingSubmitter) Worker() WorkerID { return MasterWorker }
func (r *recordingSubmitter) NumWorkers() int  { return 1 }

// Property: for any randomly generated task flow, the dependency relation
// only points backwards and dependency levels are consistent with it.
func TestDependenciesPropertyBackwardEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomFlow(r, 40, 8)
		deps := g.Dependencies()
		levels, _ := g.Levels()
		for id, ds := range deps {
			for _, d := range ds {
				if d >= TaskID(id) {
					return false
				}
				if levels[d] >= levels[id] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the submission order itself always passes CheckOrder (STF task
// flows are valid sequential executions by construction).
func TestCheckOrderPropertySubmissionOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomFlow(r, 40, 8)
		order := make([]TaskID, len(g.Tasks))
		for i := range order {
			order[i] = TaskID(i)
		}
		return g.CheckOrder(order) == NoTask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a pair of direct-dependency tasks always conflicts (they share
// a data object with at least one write) — dependencies never link
// conflict-free tasks.
func TestDependenciesPropertyImplyConflict(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomFlow(r, 30, 6)
		deps := g.Dependencies()
		for id, ds := range deps {
			for _, d := range ds {
				if ConflictFree(&g.Tasks[id], &g.Tasks[d]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomFlow(r *rand.Rand, maxTasks, maxData int) *Graph {
	n := 1 + r.Intn(maxTasks)
	nd := 1 + r.Intn(maxData)
	g := NewGraph("prop", nd)
	modes := []AccessMode{ReadOnly, WriteOnly, ReadWrite}
	for i := 0; i < n; i++ {
		na := r.Intn(4)
		if na > nd {
			na = nd
		}
		perm := r.Perm(nd)
		accesses := make([]Access, 0, na)
		for _, d := range perm[:na] {
			accesses = append(accesses, Access{Data: DataID(d), Mode: modes[r.Intn(3)]})
		}
		g.Add(0, i, 0, 0, accesses...)
	}
	return g
}
