package stf

// Task-flow import/export: a JSON form for persisting workloads and a
// Graphviz DOT form for visualizing the derived dependency DAG. Both are
// used by the cmd/rio-graph inspection tool.

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the serialized form of a Graph.
type jsonGraph struct {
	Name    string     `json:"name"`
	NumData int        `json:"num_data"`
	Tasks   []jsonTask `json:"tasks"`
}

type jsonTask struct {
	Kernel   int          `json:"kernel"`
	I        int          `json:"i,omitempty"`
	J        int          `json:"j,omitempty"`
	K        int          `json:"k,omitempty"`
	Accesses []jsonAccess `json:"accesses,omitempty"`
}

type jsonAccess struct {
	Data       DataID `json:"data"`
	Mode       string `json:"mode"`
	Idempotent bool   `json:"idempotent,omitempty"`
}

// WriteJSON serializes g.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.Name, NumData: g.NumData, Tasks: make([]jsonTask, len(g.Tasks))}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		jt := jsonTask{Kernel: t.Kernel, I: t.I, J: t.J, K: t.K}
		for _, a := range t.Accesses {
			jt.Accesses = append(jt.Accesses, jsonAccess{Data: a.Data, Mode: a.Mode.String(), Idempotent: a.Idempotent})
		}
		jg.Tasks[i] = jt
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadJSON deserializes a graph written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("stf: decoding graph: %w", err)
	}
	g := NewGraph(jg.Name, jg.NumData)
	for i, jt := range jg.Tasks {
		// Allocate only for non-empty access lists: WriteJSON omits empty
		// ones (omitempty), so a non-nil empty slice here would make
		// parse→serialize→parse not a fixed point — a wire-protocol
		// asymmetry the round-trip fuzz test pins down.
		var accesses []Access
		if len(jt.Accesses) > 0 {
			accesses = make([]Access, 0, len(jt.Accesses))
		}
		for _, ja := range jt.Accesses {
			mode, err := parseMode(ja.Mode)
			if err != nil {
				return nil, fmt.Errorf("stf: task %d: %w", i, err)
			}
			accesses = append(accesses, Access{Data: ja.Data, Mode: mode, Idempotent: ja.Idempotent})
		}
		g.Add(jt.Kernel, jt.I, jt.J, jt.K, accesses...)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseMode(s string) (AccessMode, error) {
	switch s {
	case "R":
		return ReadOnly, nil
	case "W":
		return WriteOnly, nil
	case "RW":
		return ReadWrite, nil
	case "Red":
		return Reduction, nil
	}
	return None, fmt.Errorf("unknown access mode %q", s)
}

// WriteDOT renders the derived dependency DAG in Graphviz format: one node
// per task (labelled with ID, kernel and tile coordinates), one edge per
// direct dependency.
func (g *Graph) WriteDOT(w io.Writer) error {
	deps := g.Dependencies()
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name); err != nil {
		return err
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%d: k%d (%d,%d,%d)\"];\n",
			t.ID, t.ID, t.Kernel, t.I, t.J, t.K); err != nil {
			return err
		}
	}
	for id, ds := range deps {
		for _, d := range ds {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", d, id); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Summary describes a graph's structure for inspection tools.
type Summary struct {
	// Name and counts of the graph.
	Name    string
	Tasks   int
	NumData int
	// Edges is the number of direct dependencies, Depth the critical-path
	// length in tasks, MaxWidth the largest dependency level.
	Edges    int
	Depth    int
	MaxWidth int
	// AvgDeps is Edges / Tasks.
	AvgDeps float64
}

// Summarize computes structural statistics of g.
func (g *Graph) Summarize() Summary {
	deps := g.Dependencies()
	levels, depth := g.Levels()
	edges := 0
	for _, d := range deps {
		edges += len(d)
	}
	width := make(map[int]int)
	maxWidth := 0
	for _, l := range levels {
		width[l]++
		if width[l] > maxWidth {
			maxWidth = width[l]
		}
	}
	s := Summary{
		Name:     g.Name,
		Tasks:    len(g.Tasks),
		NumData:  g.NumData,
		Edges:    edges,
		Depth:    depth,
		MaxWidth: maxWidth,
	}
	if len(g.Tasks) > 0 {
		s.AvgDeps = float64(edges) / float64(len(g.Tasks))
	}
	return s
}
