package stf

// This file derives explicit dependency information from a recorded task
// flow, following the STF rules (paper §2.1): each read access happens
// after all previous writes to the same data, and each write access happens
// after all previous reads and writes to the same data. Engines that need
// an explicit DAG (the centralized baseline, the model checker, analysis
// tools) use these routines; the decentralized RIO engine does not — its
// whole point is that dependencies stay implicit in per-data counters.

// Dependencies returns, for each task, the sorted list of direct
// predecessor task IDs implied by STF semantics. Transitively implied
// predecessors are not repeated: a read depends only on the last writer,
// and a write depends on the last writer plus all readers since that write
// (the last writer is included only when there are no intervening readers,
// since readers already depend on it).
//
// Reduction accesses form runs: a maximal sequence of consecutive
// reductions on the same data has no internal ordering (the tasks commute);
// the run as a whole is ordered like a single write — after all earlier
// readers/writers, before all later ones.
func (g *Graph) Dependencies() [][]TaskID {
	deps := make([][]TaskID, len(g.Tasks))
	type dataState struct {
		lastWriter TaskID
		readers    []TaskID
		// openRun is the current (not yet closed) reduction run;
		// closedRun is the most recently closed one — direct
		// predecessors of readers arriving after the closing read(s).
		openRun   []TaskID
		closedRun []TaskID
	}
	states := make([]dataState, g.NumData)
	for i := range states {
		states[i].lastWriter = NoTask
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		var pred []TaskID
		for _, a := range t.Accesses {
			st := &states[a.Data]
			switch {
			case a.Mode.Writes():
				switch {
				case len(st.readers)+len(st.openRun) > 0:
					pred = append(pred, st.readers...)
					pred = append(pred, st.openRun...)
				case st.lastWriter != NoTask:
					pred = append(pred, st.lastWriter)
				}
			case a.Mode.Commutes():
				// A reduction waits for the readers since the last
				// write (which transitively cover earlier runs), or
				// the writer itself.
				if len(st.readers) > 0 {
					pred = append(pred, st.readers...)
				} else if st.lastWriter != NoTask {
					pred = append(pred, st.lastWriter)
				}
			default: // read
				switch {
				case len(st.openRun) > 0:
					pred = append(pred, st.openRun...)
				case len(st.closedRun) > 0:
					pred = append(pred, st.closedRun...)
				case st.lastWriter != NoTask:
					pred = append(pred, st.lastWriter)
				}
			}
		}
		deps[t.ID] = dedupSorted(pred)
		// Update the per-data state after computing this task's deps.
		for _, a := range t.Accesses {
			st := &states[a.Data]
			switch {
			case a.Mode.Writes():
				st.lastWriter = t.ID
				st.readers = st.readers[:0]
				st.openRun = nil
				st.closedRun = nil
			case a.Mode.Commutes():
				st.openRun = append(st.openRun, t.ID)
			default: // read closes any open run
				if len(st.openRun) > 0 {
					st.closedRun = st.openRun
					st.openRun = nil
				}
				st.readers = append(st.readers, t.ID)
			}
		}
	}
	return deps
}

// Successors inverts Dependencies: for each task, the sorted list of tasks
// that directly depend on it.
func (g *Graph) Successors() [][]TaskID {
	deps := g.Dependencies()
	succs := make([][]TaskID, len(g.Tasks))
	for id, ds := range deps {
		for _, d := range ds {
			succs[d] = append(succs[d], TaskID(id))
		}
	}
	return succs
}

// Levels returns the dependency depth of each task (0 for tasks with no
// predecessors) and the critical-path length in tasks (max level + 1, or 0
// for an empty graph). Because the task flow is submitted in a valid
// sequential order, a single forward pass suffices.
func (g *Graph) Levels() ([]int, int) {
	deps := g.Dependencies()
	levels := make([]int, len(g.Tasks))
	depth := 0
	for id := range g.Tasks {
		lvl := 0
		for _, d := range deps[id] {
			if levels[d]+1 > lvl {
				lvl = levels[d] + 1
			}
		}
		levels[id] = lvl
		if lvl+1 > depth {
			depth = lvl + 1
		}
	}
	if len(g.Tasks) == 0 {
		depth = 0
	}
	return levels, depth
}

// CheckOrder verifies that order (a permutation of all task IDs, in
// observed start order) is consistent with the STF dependencies of g: every
// task appears after all its predecessors. It returns the ID of the first
// offending task, or NoTask if the order is valid. Tests use this as a
// sequential-consistency oracle against execution traces.
func (g *Graph) CheckOrder(order []TaskID) TaskID {
	deps := g.Dependencies()
	pos := make([]int, len(g.Tasks))
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range order {
		if id < 0 || int(id) >= len(g.Tasks) || pos[id] != -1 {
			return id
		}
		pos[id] = i
	}
	for id := range g.Tasks {
		if pos[id] == -1 {
			return TaskID(id)
		}
		for _, d := range deps[id] {
			if pos[d] > pos[id] {
				return TaskID(id)
			}
		}
	}
	return NoTask
}

// ConflictFree reports whether tasks a and b may run concurrently under STF
// semantics: they must not access a common data object with at least one
// write (the data-race-freedom condition of the paper's formal spec). Two
// reductions on the same data do not conflict — they commute and the
// engine serializes their bodies — but a reduction conflicts with any read
// or write of the data.
func ConflictFree(a, b *Task) bool {
	for _, aa := range a.Accesses {
		for _, ba := range b.Accesses {
			if aa.Data != ba.Data {
				continue
			}
			if aa.Mode.Commutes() && ba.Mode.Commutes() {
				continue
			}
			if aa.Mode.Writes() || ba.Mode.Writes() || aa.Mode.Commutes() || ba.Mode.Commutes() {
				return false
			}
		}
	}
	return true
}

func dedupSorted(ids []TaskID) []TaskID {
	if len(ids) < 2 {
		return ids
	}
	// Insertion sort: dependency lists are short.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
