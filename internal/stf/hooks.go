package stf

// Hooks is the engine-agnostic lifecycle-hook surface of the runtime: a set
// of optional callbacks observing a run from the outside, designed so that the
// disabled case costs the hot path a single pointer test. Engines hold a
// *Hooks; a nil pointer (no hooks installed) short-circuits every site with
// one branch, and no allocation ever happens on behalf of the hooks — the
// callbacks receive only values the engine already has in registers.
//
// The paper's evaluation methodology (§2.3, §5.1) is deliberately post-hoc:
// fine-grained tracing perturbs fine-grained tasks, which is why the
// headline numbers rely on the aggregate time decomposition. Hooks are the
// mid-run complement for production use — progress bars, live schedulers'
// dashboards, custom profilers — with the perturbation opt-in and priced
// (see BenchmarkHookOverhead).
//
// Concurrency: the task and wait hooks are invoked concurrently from every
// worker goroutine; implementations must be safe for concurrent use.
// OnRunStart happens before any worker starts, OnRunEnd after every worker
// has returned (both from the goroutine driving Run). Individual callbacks
// may be nil; a Hooks value with all-nil fields behaves like no hooks.
type Hooks struct {
	// OnRunStart fires once per run, after option validation and before
	// any worker goroutine starts, with the worker count and the number of
	// data objects of the run.
	OnRunStart func(workers, numData int)
	// OnRunEnd fires once per run, after every worker has finished, with
	// the run's verdict (nil on success).
	OnRunEnd func(err error)
	// OnTaskStart fires on the executing worker immediately before a task
	// body runs (after its dependencies resolved and its reduction locks
	// are held).
	OnTaskStart func(w WorkerID, id TaskID)
	// OnTaskEnd fires on the executing worker immediately after the task
	// body returned. A panicking body skips its OnTaskEnd: the run is
	// aborting and the panic is reported through the run error instead.
	OnTaskEnd func(w WorkerID, id TaskID)
	// OnWaitStart fires when a dependency wait turns blocking (the
	// readiness condition was not already true), identifying the waiting
	// worker, the acquiring task and the unsatisfied access. Centralized
	// engines report queue waits with id == NoTask and a zero Access.
	OnWaitStart func(w WorkerID, id TaskID, a Access)
	// OnWaitEnd fires when the corresponding wait resolved (or was
	// abandoned by a run abort); every OnWaitStart is paired with exactly
	// one OnWaitEnd.
	OnWaitEnd func(w WorkerID, id TaskID, a Access)
	// OnTaskSteal fires on the thief immediately after it won the claim on
	// a stealable task owned by another worker (Options.Steal), before the
	// task's OnTaskStart. Requires a StealPolicy; see internal/stf/steal.go.
	OnTaskSteal func(thief, owner WorkerID, id TaskID)
	// OnTaskRetry fires on the executing worker after a task attempt
	// failed, its write-set was rolled back, and the runtime decided to
	// retry: attempt is the number of the attempt that just failed (1 for
	// the first try), cause the recovered failure. It fires before the
	// backoff sleep, and never for terminal failures (those surface through
	// the run error). Requires a RetryPolicy; see internal/stf/retry.go.
	OnTaskRetry func(w WorkerID, id TaskID, attempt int, cause any)
}
