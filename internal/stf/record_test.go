package stf_test

import (
	"testing"

	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestRecordClosureProgram(t *testing.T) {
	ran := false
	g, err := stf.Record(2, func(s stf.Submitter) {
		s.Submit(func() { ran = true }, stf.W(0))
		s.Submit(func() {}, stf.R(0), stf.W(1))
		s.Submit(func() {}, stf.RW(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("recording executed a task body")
	}
	if len(g.Tasks) != 3 || g.NumData != 2 {
		t.Fatalf("recorded %d tasks over %d data", len(g.Tasks), g.NumData)
	}
	deps := g.Dependencies()
	if len(deps[1]) != 1 || deps[1][0] != 0 {
		t.Errorf("task 1 deps = %v", deps[1])
	}
	if len(deps[2]) != 1 || deps[2][0] != 1 {
		t.Errorf("task 2 deps = %v", deps[2])
	}
	for i := range g.Tasks {
		if g.Tasks[i].Kernel != stf.RecordedClosure {
			t.Errorf("task %d kernel = %d", i, g.Tasks[i].Kernel)
		}
	}
}

func TestRecordPreservesRecordedTasks(t *testing.T) {
	src := graphs.LU(4)
	g, err := stf.Record(src.NumData, stf.Replay(src, func(*stf.Task, stf.WorkerID) {
		t.Fatal("kernel executed during recording")
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != len(src.Tasks) {
		t.Fatalf("recorded %d tasks, want %d", len(g.Tasks), len(src.Tasks))
	}
	for i := range src.Tasks {
		a, b := &src.Tasks[i], &g.Tasks[i]
		if a.Kernel != b.Kernel || a.I != b.I || a.J != b.J || a.K != b.K {
			t.Fatalf("task %d metadata mismatch", i)
		}
	}
}

func TestRecordRejectsGaps(t *testing.T) {
	tk := stf.Task{ID: 5}
	_, err := stf.Record(0, func(s stf.Submitter) {
		s.SubmitTask(&tk, func(*stf.Task, stf.WorkerID) {})
	})
	if err == nil {
		t.Error("ID gap accepted during recording")
	}
}

func TestRecordValidates(t *testing.T) {
	_, err := stf.Record(1, func(s stf.Submitter) {
		s.Submit(func() {}, stf.R(7)) // data out of range
	})
	if err == nil {
		t.Error("invalid accesses accepted")
	}
}

func TestRecordSubmitterIdentity(t *testing.T) {
	_, err := stf.Record(0, func(s stf.Submitter) {
		if s.Worker() != stf.MasterWorker {
			t.Errorf("recorder worker = %d", s.Worker())
		}
		if s.NumWorkers() != 1 {
			t.Errorf("recorder NumWorkers = %d", s.NumWorkers())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
