package stf

import (
	"fmt"
	"strings"
	"time"
)

// This file defines the structured failure vocabulary shared by all
// execution engines. The STF model itself cannot fail; these errors
// describe the ways an *execution* of an STF program can go wrong beyond a
// plain task panic: a run that stops making progress (StallError) and a
// replay that is not the same on every worker (DivergenceError). They live
// here, next to the programming-model types, so that every engine and the
// public API can share one vocabulary without import cycles.

// StallKind classifies what a stall watchdog observed when it gave up on a
// run.
type StallKind int

const (
	// Deadlock means every live worker was blocked in a dependency wait
	// and no task completed for the whole watchdog window — the signature
	// of a divergent replay or an impossible dependency, since a correct
	// in-order run always has a runnable earliest task.
	Deadlock StallKind = iota
	// StuckTask means no task completed for the whole watchdog window
	// while at least one worker sat inside the same task body — the
	// signature of a task that never terminates (or vastly exceeds the
	// configured threshold).
	StuckTask
)

// String names the stall kind.
func (k StallKind) String() string {
	switch k {
	case Deadlock:
		return "deadlock"
	case StuckTask:
		return "stuck task"
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// StalledWorker describes one worker blocked in a dependency wait: the
// task whose acquisition is blocked, the data access that is unsatisfied,
// and for how long the worker has been waiting.
type StalledWorker struct {
	Worker WorkerID
	Task   TaskID
	Data   DataID
	Mode   AccessMode
	For    time.Duration
}

// BusyWorker describes one worker that was inside a task body when the
// watchdog fired.
type BusyWorker struct {
	Worker WorkerID
	Task   TaskID
	For    time.Duration
}

// StallError is the structured diagnosis produced by the stall watchdog:
// no task completed for Threshold, and the per-worker states below explain
// why. It is returned (wrapped) by Run/RunContext; use errors.As to
// retrieve it.
type StallError struct {
	// Kind distinguishes a global deadlock from a stuck task.
	Kind StallKind
	// Threshold is the configured watchdog window that elapsed without a
	// task completion.
	Threshold time.Duration
	// Stalled lists the workers blocked in dependency waits.
	Stalled []StalledWorker
	// Busy lists the workers inside task bodies.
	Busy []BusyWorker
	// Done lists the workers that had already finished their replay.
	Done []WorkerID
	// Divergence is non-nil when the replay-divergence guard could prove,
	// from the already-committed portion of each worker's replay, that the
	// workers were not replaying the same task flow — the usual root cause
	// of an in-order deadlock.
	Divergence *DivergenceError
}

// Error formats the full diagnosis on one line.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall watchdog: %s: no task completed for %v", e.Kind, e.Threshold)
	for _, s := range e.Stalled {
		fmt.Fprintf(&b, "; worker %d stuck at task %d waiting for %s access to data %d (%v)",
			s.Worker, s.Task, s.Mode, s.Data, s.For.Round(time.Millisecond))
	}
	for _, s := range e.Busy {
		fmt.Fprintf(&b, "; worker %d executing task %d for %v",
			s.Worker, s.Task, s.For.Round(time.Millisecond))
	}
	if len(e.Done) > 0 {
		fmt.Fprintf(&b, "; finished workers: %v", e.Done)
	}
	if e.Divergence != nil {
		fmt.Fprintf(&b, "; %v", e.Divergence)
	}
	return b.String()
}

// DivergenceError reports that the workers of a decentralized engine did
// not replay the same task flow — the program violated the determinism
// assumption of the in-order model (every replay must submit the same
// tasks with the same accesses in the same order). It is produced by the
// replay-divergence guard, either at the end of a run that completed with
// differing replay streams, or as the Divergence field of a StallError
// when a divergent replay deadlocked mid-run.
type DivergenceError struct {
	// Window is the [Lo, Hi) task-index range in which the workers' replay
	// streams are first known to differ. The guard checkpoints its stream
	// hash periodically, so the window is a checkpoint stride wide, not a
	// single task.
	Window [2]TaskID
	// Counts holds each worker's total submitted-task count, when known
	// (nil for a mid-run diagnosis).
	Counts []int64
}

// Error describes the divergence.
func (e *DivergenceError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay divergence: workers submitted different task flows, first differing in tasks [%d,%d)", e.Window[0], e.Window[1])
	if len(e.Counts) > 0 {
		fmt.Fprintf(&b, " (per-worker task counts %v)", e.Counts)
	}
	b.WriteString("; the program is nondeterministic: every worker must replay the same tasks with the same accesses in the same order")
	return b.String()
}
