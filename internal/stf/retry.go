package stf

import (
	"fmt"
	"sort"
	"time"
)

// Fault tolerance: the types shared by every engine's retry / checkpoint /
// resume machinery. The design follows the distributed task runtimes cited
// in PAPERS.md (Bosch et al.'s dependency-tracked re-execution, DuctTeip's
// runtime-managed data versioning), specialized to RIO's in-order model —
// where each worker's replay position plus the per-data termination state
// already forms a dependency-closed frontier, so a consistent checkpoint
// falls out of the protocol instead of requiring extra coordination.

// RetryPolicy configures transient-fault retry of task bodies. A task
// whose body panics (or is failed by a fault injector) is rolled back —
// its write-set restored from the pre-attempt snapshot — and re-executed,
// up to MaxAttempts total attempts with deterministic bounded backoff
// between them. A nil *RetryPolicy (the default everywhere) disables
// retry entirely and costs the execution hot path one pointer test.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per task, first try
	// included. Values <= 1 mean a single attempt (no retry), which still
	// enables completed-task tracking for checkpoints.
	MaxAttempts int
	// Backoff is the delay before the second attempt; subsequent delays
	// double, capped at MaxBackoff. Zero means no delay. The schedule is
	// deterministic (no jitter) so failing runs are reproducible.
	Backoff time.Duration
	// MaxBackoff caps the exponential schedule; 0 means 100*Backoff.
	MaxBackoff time.Duration
	// Classify, when non-nil, decides whether a recovered failure cause
	// is transient (retryable). A nil Classify treats every failure as
	// transient. A cause rejected by Classify fails the task on the spot,
	// with the attempts made so far recorded in the TaskFailure.
	Classify func(cause any) bool
}

// Transient reports whether the policy classifies cause as retryable.
func (p *RetryPolicy) Transient(cause any) bool {
	if p.Classify == nil {
		return true
	}
	return p.Classify(cause)
}

// Delay returns the backoff before attempt number attempt (attempt >= 2;
// the first attempt never waits). The schedule is Backoff * 2^(attempt-2),
// capped at MaxBackoff — deterministic, so a failing run replays the same
// timing every time.
func (p *RetryPolicy) Delay(attempt int) time.Duration {
	if p.Backoff <= 0 || attempt <= 1 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 100 * p.Backoff
	}
	d := p.Backoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Snapshotter is the capability that makes rollback possible: it captures
// the value of one runtime-managed data object and returns a closure that
// restores it. The runtime invokes it on the executing worker, after the
// task's dependencies have resolved and its reduction locks are held, so a
// snapshot always observes a quiescent object — no other task is accessing
// it (sequential consistency guarantees exclusivity of the write-set).
//
// Data objects the Snapshotter cannot capture (CanSnapshot false) make the
// tasks writing them non-retryable, unless every such access carries the
// Idempotent flag (re-executing the write is harmless by construction).
type Snapshotter interface {
	// CanSnapshot reports whether d can be captured and restored.
	CanSnapshot(d DataID) bool
	// Snapshot captures d's current value and returns a closure restoring
	// it. Called only for data CanSnapshot accepted.
	Snapshot(d DataID) (restore func())
}

// SnapshotFuncs adapts two closures into a Snapshotter. A nil Can accepts
// every data object.
type SnapshotFuncs struct {
	Can  func(DataID) bool
	Save func(DataID) (restore func())
}

// CanSnapshot implements Snapshotter.
func (s SnapshotFuncs) CanSnapshot(d DataID) bool {
	return s.Can == nil || s.Can(d)
}

// Snapshot implements Snapshotter.
func (s SnapshotFuncs) Snapshot(d DataID) func() { return s.Save(d) }

// SnapshotWriteSet captures the write-set of a task about to execute: every
// access that writes or reduces into a data object and is not flagged
// Idempotent. It returns a single closure restoring all captured objects
// (nil when nothing needed capturing) and whether retrying the task is safe
// — false when some non-idempotent written data cannot be snapshotted (s is
// nil or CanSnapshot rejected it), in which case nothing is captured and
// the task must not be retried.
func SnapshotWriteSet(s Snapshotter, accesses []Access) (restore func(), ok bool) {
	var restores []func()
	for _, a := range accesses {
		if !a.Mode.Writes() && !a.Mode.Commutes() {
			continue
		}
		if a.Idempotent {
			continue
		}
		if s == nil || !s.CanSnapshot(a.Data) {
			return nil, false
		}
		restores = append(restores, s.Snapshot(a.Data))
	}
	if len(restores) == 0 {
		return nil, true
	}
	if len(restores) == 1 {
		return restores[0], true
	}
	return func() {
		for _, r := range restores {
			r()
		}
	}, true
}

// TaskFailure is the terminal failure of one task: its retries (if any)
// were exhausted, its failure was classified permanent, or its write-set
// could not be snapshotted so no retry was possible. The task's write-set
// was restored to its pre-attempt state where a snapshot existed, so the
// data a checkpointed resume re-executes over is clean. Retrieve it from a
// run error with errors.As.
type TaskFailure struct {
	// Task is the failed task.
	Task TaskID
	// Attempts is the number of attempts made (>= 1).
	Attempts int
	// Cause is the recovered failure cause of the last attempt.
	Cause any
}

// Error implements error.
func (f *TaskFailure) Error() string {
	return fmt.Sprintf("task %d failed after %d attempt(s): %v", f.Task, f.Attempts, f.Cause)
}

// Checkpoint is a dependency-closed frontier of a partially executed task
// flow: the set of tasks whose effects are fully published in data memory.
// Passing it as Options.Resume makes the next run of the same flow skip
// exactly these tasks; because the set is dependency-closed and the skipped
// tasks' results are already in memory, the resumed run converges to the
// same final state as an uninterrupted one (see DESIGN.md, "Fault
// tolerance").
type Checkpoint struct {
	// Tasks is the length of the task-flow prefix the interrupted run
	// observed (the highest submitted ID + 1); tasks at or beyond it were
	// never reached.
	Tasks int
	// Completed lists the completed tasks, sorted ascending.
	Completed []TaskID
}

// Contains reports whether id is in the completed set.
func (c *Checkpoint) Contains(id TaskID) bool {
	n := len(c.Completed)
	i := sort.Search(n, func(i int) bool { return c.Completed[i] >= id })
	return i < n && c.Completed[i] == id
}

// Len returns the number of completed tasks.
func (c *Checkpoint) Len() int { return len(c.Completed) }

// PartialResult describes how far an aborted run got: which tasks
// completed (effects fully published), which failed terminally, and — by
// subtraction — which were skipped. Engines attach it to the run error
// through a PartialError whenever fault-tolerance tracking is enabled
// (a retry policy or checkpointing requested).
type PartialResult struct {
	// Tasks is the observed task-flow prefix length (highest submitted
	// ID + 1). Under an abort the engines may not have unrolled the whole
	// flow, so this is a lower bound on the flow's true length.
	Tasks int
	// Completed lists tasks whose effects are fully published, sorted
	// ascending. The set is dependency-closed: every predecessor of a
	// completed task is itself completed.
	Completed []TaskID
	// Failed lists tasks that failed terminally (retries exhausted or
	// permanent failure), sorted ascending.
	Failed []TaskID
}

// Checkpoint returns the resumable frontier of the partial run.
func (r *PartialResult) Checkpoint() *Checkpoint {
	return &Checkpoint{Tasks: r.Tasks, Completed: r.Completed}
}

// Skipped returns the tasks of the observed prefix that neither completed
// nor failed: tasks the abort drained away before they could run.
func (r *PartialResult) Skipped() []TaskID {
	in := make(map[TaskID]bool, len(r.Completed)+len(r.Failed))
	for _, id := range r.Completed {
		in[id] = true
	}
	for _, id := range r.Failed {
		in[id] = true
	}
	var out []TaskID
	for id := TaskID(0); id < TaskID(r.Tasks); id++ {
		if !in[id] {
			out = append(out, id)
		}
	}
	return out
}

// PartialError wraps a run's failure cause with the PartialResult of the
// aborted run. Unwrap exposes the cause, so errors.Is / errors.As keep
// seeing through to context cancellation, StallError, TaskFailure and the
// other verdicts.
type PartialError struct {
	// Cause is the run's underlying failure.
	Cause error
	// Result describes what the aborted run completed.
	Result *PartialResult
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("%v (%d task(s) completed, %d failed; resumable)",
		e.Cause, len(e.Result.Completed), len(e.Result.Failed))
}

// Unwrap exposes the underlying failure for errors.Is / errors.As.
func (e *PartialError) Unwrap() error { return e.Cause }

// SortTaskIDs sorts ids ascending in place — the canonical order of
// Checkpoint.Completed and the PartialResult sets.
func SortTaskIDs(ids []TaskID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
