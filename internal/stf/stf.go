// Package stf defines the Sequential Task Flow (STF) programming model used
// throughout this repository: a program is a sequence of tasks, each
// declaring the data it accesses and an access mode, from which data
// dependencies are implicitly derived (paper §2.1).
//
// The package is deliberately engine-agnostic. Execution engines (the
// decentralized in-order RIO engine, the centralized out-of-order baseline
// and the sequential reference executor) all consume the same Program /
// Submitter contract defined here, so a single STF program can be run
// unchanged under any execution model.
package stf

import "fmt"

// TaskID identifies a task by its position in the task flow. IDs are
// assigned in submission order starting at 0; the sequential-consistency
// guarantee of STF is defined with respect to this order.
type TaskID int64

// WorkerID identifies a compute unit (one worker goroutine). The special
// value MasterWorker denotes the control thread of a centralized engine,
// which never executes tasks itself.
type WorkerID int

// MasterWorker is the WorkerID reported by a Submitter driven by a
// centralized master thread (or a recorder) rather than by a worker.
const MasterWorker WorkerID = -1

// SharedWorker may be returned by a Mapping for tasks with no static
// owner: the decentralized engine assigns such a task dynamically to the
// first worker whose replay reaches it (partial mappings — the paper's
// concluding future-work direction). Other engines treat it like an
// unhinted task.
const SharedWorker WorkerID = -2

// NoTask is a sentinel TaskID meaning "no task", used e.g. as the initial
// value of last-write registers before any write happened.
const NoTask TaskID = -1

// DataID identifies a data object (a shared-memory region managed by the
// runtime). Data objects are pre-registered: an engine's Run method is told
// how many exist and allocates synchronization state for each.
type DataID int32

// AccessMode declares how a task accesses a data object (paper §2.1).
type AccessMode uint8

const (
	// None means the data is not accessed. It never appears in a task's
	// access list; it exists to mirror the paper's formal specification.
	None AccessMode = iota
	// ReadOnly accesses must happen after all previous writes.
	ReadOnly
	// WriteOnly accesses must happen after all previous reads and writes.
	WriteOnly
	// ReadWrite accesses combine both constraints; for synchronization
	// purposes they are handled exactly like WriteOnly (the write-side
	// wait already subsumes the read-side one).
	ReadWrite
	// Reduction accesses commute with each other: a maximal run of
	// consecutive Reduction accesses to the same data behaves like a
	// single write (ordered after all earlier reads and writes, and
	// before all later ones), but the tasks *within* the run may execute
	// in any order, under mutual exclusion provided by the engine. This
	// is the paper's §3.4 extension beyond strict sequential consistency
	// (data versioning in SuperGlue, Zafari/Tillenius/Larsson), typical
	// for accumulations: sum += partial.
	Reduction
)

// String returns the conventional short name of the mode.
func (m AccessMode) String() string {
	switch m {
	case None:
		return "None"
	case ReadOnly:
		return "R"
	case WriteOnly:
		return "W"
	case ReadWrite:
		return "RW"
	case Reduction:
		return "Red"
	}
	return fmt.Sprintf("AccessMode(%d)", uint8(m))
}

// Writes reports whether the mode includes a write.
func (m AccessMode) Writes() bool { return m == WriteOnly || m == ReadWrite }

// Reads reports whether the mode includes a read.
func (m AccessMode) Reads() bool { return m == ReadOnly || m == ReadWrite }

// Commutes reports whether the mode is a commutative reduction.
func (m AccessMode) Commutes() bool { return m == Reduction }

// Access declares one data dependency of a task.
type Access struct {
	Data DataID
	Mode AccessMode
	// Idempotent marks a write or reduction as safe to re-execute without
	// rollback: running the task body twice over this data leaves the same
	// value as running it once (e.g. the body fully overwrites the object
	// from read-only inputs). Retry machinery skips snapshotting idempotent
	// accesses; read-only accesses never need the flag. See RetryPolicy.
	Idempotent bool
}

// AsIdempotent returns a copy of a with the Idempotent flag set.
func (a Access) AsIdempotent() Access {
	a.Idempotent = true
	return a
}

// R constructs a read-only access.
func R(d DataID) Access { return Access{Data: d, Mode: ReadOnly} }

// W constructs a write-only access.
func W(d DataID) Access { return Access{Data: d, Mode: WriteOnly} }

// RW constructs a read-write access.
func RW(d DataID) Access { return Access{Data: d, Mode: ReadWrite} }

// Red constructs a commutative reduction access.
func Red(d DataID) Access { return Access{Data: d, Mode: Reduction} }

// Task is one node of a recorded task flow. Recorded tasks carry a kernel
// selector and tile coordinates instead of a closure so that replaying a
// graph allocates nothing per task (important when measuring fine-grained
// per-task overhead, the paper's central concern).
type Task struct {
	// ID is the task's position in the task flow.
	ID TaskID
	// Kernel selects the operation to perform; values are defined by the
	// workload (see internal/graphs for the kernels of the paper's four
	// experiments).
	Kernel int
	// I, J, K are kernel parameters, typically tile coordinates.
	I, J, K int
	// Accesses lists the data dependencies of the task.
	Accesses []Access
}

// Kernel executes a recorded task on behalf of worker w. Implementations
// dispatch on t.Kernel and use t.I/J/K to locate their operands.
type Kernel func(t *Task, w WorkerID)

// TaskFunc is a task body submitted as a closure through Submitter.Submit.
type TaskFunc func()

// Submitter is the interface through which an STF program hands tasks to an
// execution engine. The decentralized engine replays the program once per
// worker, so a Program must be deterministic: every replay must produce the
// same sequence of tasks with the same accesses (paper §3.3, assumption 2).
type Submitter interface {
	// Submit appends a closure task to the task flow and returns its ID.
	Submit(fn TaskFunc, accesses ...Access) TaskID

	// SubmitTask appends a recorded task. The task's ID field must be
	// at least the next unseen ID; gaps are permitted and mean the IDs in
	// between were pruned from this worker's view of the flow (paper
	// §3.5). This path performs no per-task allocation.
	SubmitTask(t *Task, k Kernel) TaskID

	// Worker returns the identity of the worker replaying the program
	// (MasterWorker for centralized and sequential engines). Programs may
	// use it for task pruning.
	Worker() WorkerID

	// NumWorkers returns the number of workers of the running engine.
	NumWorkers() int
}

// Program is a sequential task-based code: a function that submits a
// deterministic sequence of tasks.
type Program func(Submitter)

// Mapping deterministically assigns each task to the worker that must
// execute it (paper §3.2, "parametric resources allocation": a closure of
// type TaskID → WorkerID).
type Mapping func(TaskID) WorkerID

// Graph is a recorded task flow over a fixed set of data objects.
type Graph struct {
	// NumData is the number of data objects referenced by the tasks.
	NumData int
	// Tasks is the task flow, in submission order; Tasks[i].ID == i.
	Tasks []Task
	// Name labels the workload for reports.
	Name string
}

// NewGraph returns an empty graph over numData data objects.
func NewGraph(name string, numData int) *Graph {
	return &Graph{NumData: numData, Name: name}
}

// Add appends a task with the given kernel, coordinates and accesses, and
// returns its ID.
func (g *Graph) Add(kernel, i, j, k int, accesses ...Access) TaskID {
	id := TaskID(len(g.Tasks))
	g.Tasks = append(g.Tasks, Task{ID: id, Kernel: kernel, I: i, J: j, K: k, Accesses: accesses})
	return id
}

// Validate checks structural well-formedness: sequential IDs, data IDs in
// range, no None modes, and no data accessed twice by the same task.
func (g *Graph) Validate() error {
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.ID != TaskID(i) {
			return fmt.Errorf("stf: task at position %d has ID %d", i, t.ID)
		}
		seen := make(map[DataID]bool, len(t.Accesses))
		for _, a := range t.Accesses {
			if a.Data < 0 || int(a.Data) >= g.NumData {
				return fmt.Errorf("stf: task %d accesses data %d, out of range [0,%d)", i, a.Data, g.NumData)
			}
			if a.Mode == None {
				return fmt.Errorf("stf: task %d declares a None access on data %d", i, a.Data)
			}
			if seen[a.Data] {
				return fmt.Errorf("stf: task %d accesses data %d twice", i, a.Data)
			}
			seen[a.Data] = true
		}
	}
	return nil
}

// Replay returns a Program that submits every task of g, executing each
// with kernel k. This is the allocation-free path used by all benchmarks.
func Replay(g *Graph, k Kernel) Program {
	return func(s Submitter) {
		for i := range g.Tasks {
			s.SubmitTask(&g.Tasks[i], k)
		}
	}
}
