package stf

// Hybrid in-order execution with bounded, dependency-safe work stealing.
//
// The paper's static TaskID→WorkerID mapping makes the in-order model
// serialize on a hot worker when the mapping is skewed — its own preflight
// (RIO-M004) proves the bound. A StealPolicy lets an idle worker execute a
// victim's *next* in-order task when the per-data counter state proves all
// of the task's accesses are already available, so executing it elsewhere
// is indistinguishable from the owner running it:
//
//   - The registered counter values of a task T (the values Algorithm 2
//     waits on) are a function of the task-flow prefix before T alone, so
//     they are identical on every worker's replay. A thief therefore checks
//     readiness against the shared cells with T's *registered* values —
//     either snapshotted from its own private counters as its replay passes
//     T (closure replay), or precomputed per task by BuildStealMeta
//     (compiled replay).
//   - Readiness is stable once true: any task that could perturb a shared
//     cell past T's registered values is registered after T and therefore
//     transitively waits for T's completion, whoever executes T.
//   - Claiming is a per-task atomic CAS (the claim table of partial
//     mappings): exactly one executor wins. The owner, on reaching a
//     claimed slot, advances its private counters exactly as if it had run
//     the task (the declare_* bookkeeping of any foreign task); the thief
//     publishes the task's terminate_* effects through the same shared-cell
//     protocol, so downstream wakeups and the divergence guard observe the
//     canonical order.
//
// A nil policy keeps the paper's pure static model at the cost of a single
// pointer test per task (see BenchmarkStealOverhead).

// DefaultStealScan bounds how many steal candidates one attempt inspects
// when StealPolicy.MaxScan is zero.
const DefaultStealScan = 8

// DefaultStealBuffer is the per-worker candidate ring capacity of closure
// replay when StealPolicy.Buffer is zero.
const DefaultStealBuffer = 256

// StealPolicy enables bounded, dependency-safe work stealing in the
// in-order engine (Options.Steal). The zero value of every field selects a
// sensible default; a nil *StealPolicy disables stealing entirely.
type StealPolicy struct {
	// MaxScan bounds one steal attempt: in closure replay, how many
	// recorded candidates are inspected; in compiled replay, how many
	// victims' next-task slots are probed. 0 means DefaultStealScan.
	MaxScan int
	// Victims is the ranked victim preference — workers to steal from, in
	// descending priority (typically the overloaded workers the preflight
	// mapping analysis ranked, see sched.RankVictims). Empty means every
	// other worker, scanned in neighbor-ring order starting after the
	// thief.
	Victims []WorkerID
	// Buffer is the per-worker steal-candidate ring capacity of closure
	// replay (compiled replay needs no ring — candidates come from the
	// program's precomputed steal metadata). 0 means DefaultStealBuffer;
	// when the ring is full new candidates are dropped, never blocking
	// the replay.
	Buffer int
}

// ScanBound returns the effective MaxScan.
func (p *StealPolicy) ScanBound() int {
	if p == nil || p.MaxScan <= 0 {
		return DefaultStealScan
	}
	return p.MaxScan
}

// RingCap returns the effective closure-replay candidate capacity.
func (p *StealPolicy) RingCap() int {
	if p == nil || p.Buffer <= 0 {
		return DefaultStealBuffer
	}
	return p.Buffer
}

// StealReq is the readiness requirement of one access of a stealable task:
// the registered per-data counter values the get_* call of Algorithm 2
// compares against. They depend only on the task-flow prefix before the
// task, never on which worker evaluates them.
type StealReq struct {
	// Data and Mode identify the access.
	Data DataID
	Mode AccessMode
	// LastWrite is the required lastExecutedWrite (the last write
	// registered before the task; NoTask if none).
	LastWrite int64
	// Reads and Reds are the required nbReadsSinceWrite /
	// nbRedsSinceWrite counts at the task's registration.
	Reads int64
	Reds  int64
	// RedsBefore is the reduction count at the start of the task's
	// reduction run (Reduction accesses wait with >=, so members of the
	// same run commute).
	RedsBefore int64
}

// Ready reports whether the access may proceed given the shared cell's
// current counters — exactly the readiness predicate of the get_read /
// get_write / get_red calls.
func (r *StealReq) Ready(lastWrite, reads, reds int64) bool {
	switch {
	case r.Mode.Writes():
		return lastWrite == r.LastWrite && reads == r.Reads && reds == r.Reds
	case r.Mode.Commutes():
		return lastWrite == r.LastWrite && reads == r.Reads && reds >= r.RedsBefore
	default:
		return lastWrite == r.LastWrite && reds == r.Reds
	}
}

// StealMeta is the per-task claim/ownership metadata of a compiled
// program: for every task its owner, its readiness requirements, and a
// per-owner index of tasks in flow order. It is immutable after
// BuildStealMeta and shared read-only by every thief.
type StealMeta struct {
	// Owners maps each task index to its owning worker, or -1 for tasks
	// absent from every stream (checkpoint-resume pruned: already
	// executed, never stealable).
	Owners []WorkerID
	// Reqs holds, per task, one StealReq per access (flow-order
	// registered values; nil for non-surviving tasks).
	Reqs [][]StealReq
	// ByOwner lists each worker's owned surviving tasks in flow order —
	// the victim queues thieves scan.
	ByOwner [][]int32
}

// BuildStealMeta derives steal metadata from a compiled program. Ownership
// is recovered from the streams (each OpExec belongs to the stream's
// worker); the registered counter values are produced by replaying the
// surviving flow's declare_* semantics once. Tasks without an OpExec in
// any stream (checkpoint-resume pruned) contribute neither requirements
// nor counter updates, matching PruneCompleted's streams, which dropped
// their micro-ops everywhere.
func BuildStealMeta(cp *CompiledProgram) *StealMeta {
	n := len(cp.Tasks)
	m := &StealMeta{
		Owners:  make([]WorkerID, n),
		Reqs:    make([][]StealReq, n),
		ByOwner: make([][]int32, cp.Workers),
	}
	for i := range m.Owners {
		m.Owners[i] = -1
	}
	for w, stream := range cp.Streams {
		for i := range stream {
			if stream[i].Op == OpExec {
				m.Owners[stream[i].Task] = WorkerID(w)
			}
		}
	}

	// One forward pass simulating every worker's (identical) private
	// counters over the surviving flow.
	type cell struct {
		lastWrite  int64
		reads      int64
		reds       int64
		redsBefore int64
	}
	cells := make([]cell, cp.NumData)
	for d := range cells {
		cells[d].lastWrite = int64(NoTask)
	}
	for i := range cp.Tasks {
		w := m.Owners[i]
		if w < 0 {
			continue
		}
		t := &cp.Tasks[i]
		reqs := make([]StealReq, len(t.Accesses))
		// Snapshot every requirement against the pre-task counters before
		// applying any of the task's own updates: the owner's get_* calls all
		// evaluate against the local state registered *before* the task (its
		// declares happen at the terminates), so two accesses of one task to
		// the same data must both see the pre-task values.
		for j, a := range t.Accesses {
			c := &cells[a.Data]
			reqs[j] = StealReq{
				Data:       a.Data,
				Mode:       a.Mode,
				LastWrite:  c.lastWrite,
				Reads:      c.reads,
				Reds:       c.reds,
				RedsBefore: c.redsBefore,
			}
		}
		for _, a := range t.Accesses {
			c := &cells[a.Data]
			switch {
			case a.Mode.Writes():
				c.lastWrite = int64(t.ID)
				c.reads, c.reds, c.redsBefore = 0, 0, 0
			case a.Mode.Commutes():
				c.reds++
			default:
				c.reads++
				c.redsBefore = c.reds
			}
		}
		m.Reqs[i] = reqs
		m.ByOwner[w] = append(m.ByOwner[w], int32(i))
	}
	return m
}
