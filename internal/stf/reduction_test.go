package stf

import "testing"

// Dependency-rule tests for commutative Reduction accesses (§3.4
// extension): a run of consecutive reductions is ordered like one write
// against its surroundings, with no edges inside the run.

func TestReductionRunHasNoInternalEdges(t *testing.T) {
	g := NewGraph("run", 1)
	g.Add(0, 0, 0, 0, W(0))   // 0: writer
	g.Add(0, 1, 0, 0, Red(0)) // 1
	g.Add(0, 2, 0, 0, Red(0)) // 2
	g.Add(0, 3, 0, 0, Red(0)) // 3
	deps := g.Dependencies()
	for _, id := range []TaskID{1, 2, 3} {
		if got := deps[id]; len(got) != 1 || got[0] != 0 {
			t.Errorf("reduction %d deps = %v, want [0] only", id, got)
		}
	}
}

func TestReadAfterRunDependsOnWholeRun(t *testing.T) {
	g := NewGraph("read-after", 1)
	g.Add(0, 0, 0, 0, Red(0)) // 0
	g.Add(0, 1, 0, 0, Red(0)) // 1
	g.Add(0, 2, 0, 0, R(0))   // 2
	deps := g.Dependencies()
	if got := deps[2]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("read deps = %v, want [0 1]", got)
	}
}

func TestSecondReadAfterRunAlsoDependsOnRun(t *testing.T) {
	// Reads commute with each other, so the second read cannot rely on
	// the first one to order it after the run.
	g := NewGraph("two-reads", 1)
	g.Add(0, 0, 0, 0, Red(0)) // 0
	g.Add(0, 1, 0, 0, R(0))   // 1
	g.Add(0, 2, 0, 0, R(0))   // 2
	deps := g.Dependencies()
	if got := deps[2]; len(got) != 1 || got[0] != 0 {
		t.Errorf("second read deps = %v, want [0]", got)
	}
}

func TestWriteAfterRunDependsOnRun(t *testing.T) {
	g := NewGraph("write-after", 1)
	g.Add(0, 0, 0, 0, Red(0)) // 0
	g.Add(0, 1, 0, 0, Red(0)) // 1
	g.Add(0, 2, 0, 0, W(0))   // 2
	deps := g.Dependencies()
	if got := deps[2]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("write deps = %v, want [0 1]", got)
	}
}

func TestReadSplitsRuns(t *testing.T) {
	// red0; read1; red2 — the second run must wait for the read, which
	// waits for the first run: two distinct runs, transitively ordered.
	g := NewGraph("split", 1)
	g.Add(0, 0, 0, 0, Red(0)) // 0
	g.Add(0, 1, 0, 0, R(0))   // 1
	g.Add(0, 2, 0, 0, Red(0)) // 2
	deps := g.Dependencies()
	if got := deps[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("read deps = %v, want [0]", got)
	}
	if got := deps[2]; len(got) != 1 || got[0] != 1 {
		t.Errorf("second run deps = %v, want [1]", got)
	}
}

func TestWriteResetsRunState(t *testing.T) {
	g := NewGraph("reset", 1)
	g.Add(0, 0, 0, 0, Red(0)) // 0
	g.Add(0, 1, 0, 0, W(0))   // 1: waits for run
	g.Add(0, 2, 0, 0, R(0))   // 2: waits for write only
	deps := g.Dependencies()
	if got := deps[1]; len(got) != 1 || got[0] != 0 {
		t.Errorf("write deps = %v, want [0]", got)
	}
	if got := deps[2]; len(got) != 1 || got[0] != 1 {
		t.Errorf("read deps = %v, want [1]", got)
	}
}

func TestReductionConflictRules(t *testing.T) {
	r1 := Task{Accesses: []Access{Red(0)}}
	r2 := Task{Accesses: []Access{Red(0)}}
	rd := Task{Accesses: []Access{R(0)}}
	wr := Task{Accesses: []Access{W(0)}}
	if !ConflictFree(&r1, &r2) {
		t.Error("two reductions on the same data must commute (no conflict)")
	}
	if ConflictFree(&r1, &rd) {
		t.Error("reduction and read must conflict")
	}
	if ConflictFree(&r1, &wr) {
		t.Error("reduction and write must conflict")
	}
}

func TestCheckOrderAllowsReductionPermutation(t *testing.T) {
	g := NewGraph("perm", 1)
	g.Add(0, 0, 0, 0, W(0))   // 0
	g.Add(0, 1, 0, 0, Red(0)) // 1
	g.Add(0, 2, 0, 0, Red(0)) // 2
	g.Add(0, 3, 0, 0, R(0))   // 3
	if bad := g.CheckOrder([]TaskID{0, 2, 1, 3}); bad != NoTask {
		t.Errorf("swapped reduction run rejected at %d", bad)
	}
	if bad := g.CheckOrder([]TaskID{0, 2, 3, 1}); bad == NoTask {
		t.Error("read overtaking a reduction accepted")
	}
}
