package stf

import "fmt"

// Record captures the *structure* of an STF program — the task flow with
// its access declarations — without executing any task body. The result
// can be fed to everything that operates on recorded graphs: dependency
// analysis, DOT/JSON export, pruning analysis, automatic mapping
// computation. Because Programs must be deterministic (the decentralized
// engine replays them), the recorded structure is faithful to what any
// engine would observe.
//
// Closure tasks lose their bodies (the recorded Task carries only the
// kernel selector RecordedClosure); recorded graphs from Record are
// therefore for analysis, not re-execution — unless the program was built
// from recorded tasks in the first place, which are copied verbatim.
func Record(numData int, prog Program) (*Graph, error) {
	r := &recorder{g: NewGraph("recorded", numData)}
	prog(r)
	if r.err != nil {
		return nil, r.err
	}
	if err := r.g.Validate(); err != nil {
		return nil, err
	}
	return r.g, nil
}

// RecordedClosure is the kernel selector assigned to closure tasks
// captured by Record.
const RecordedClosure = -1

type recorder struct {
	g   *Graph
	err error
}

func (r *recorder) Submit(fn TaskFunc, accesses ...Access) TaskID {
	return r.g.Add(RecordedClosure, 0, 0, 0, accesses...)
}

func (r *recorder) SubmitTask(t *Task, k Kernel) TaskID {
	want := TaskID(len(r.g.Tasks))
	if t.ID != want {
		if r.err == nil {
			r.err = fmt.Errorf("stf: cannot record a flow with ID gaps (task %d at position %d); record the unpruned program", t.ID, want)
		}
		return t.ID
	}
	r.g.Add(t.Kernel, t.I, t.J, t.K, t.Accesses...)
	return t.ID
}

func (r *recorder) Worker() WorkerID { return MasterWorker }
func (r *recorder) NumWorkers() int  { return 1 }
