package stf

// WaitPolicy selects how an engine's dependency waits trade latency for CPU
// time once the fast busy-poll phase has not resolved them. The in-order
// engine applies it to the protocol waits of Algorithm 1 (get_read /
// get_write / get_red); the centralized engine applies it to its executors'
// ready-queue pops. Every policy preserves the waits' obligations: lifecycle
// hook pairing, stall-watchdog publication, abort/cancellation
// responsiveness and idle-time accounting.
type WaitPolicy int32

const (
	// WaitAdaptive (the default) busy-polls with a per-worker spin budget
	// fed back from completed-wait durations — workers whose waits resolve
	// within the spin phase grow their budget, workers whose waits escalate
	// shrink it and park early — then yields, then parks on the data
	// object's event gate until a terminate publishes a wake.
	WaitAdaptive WaitPolicy = iota
	// WaitSpin never blocks: busy-poll, then yield-poll forever. Lowest
	// wake-up latency, burns a hardware thread per waiter; appropriate when
	// workers are pinned 1:1 to otherwise idle cores.
	WaitSpin
	// WaitPark parks on the data object's event gate right after the spin
	// budget: lowest CPU use, pays one wake on every dependency hand-off.
	// Appropriate under heavy contention or oversubscription.
	WaitPark
	// WaitSleep is the legacy spin → yield → exponential-sleep ladder that
	// parking replaced, kept selectable for the synchronization ablation
	// (`rio-bench sync`) and as a fallback that uses no event gates.
	WaitSleep
)

// String names the policy as used in reports and benchmark labels.
func (p WaitPolicy) String() string {
	switch p {
	case WaitAdaptive:
		return "adaptive"
	case WaitSpin:
		return "spin"
	case WaitPark:
		return "park"
	case WaitSleep:
		return "sleep"
	}
	return "unknown"
}
