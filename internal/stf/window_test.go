package stf

import (
	"testing"
)

func TestWindowAddAndReset(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.NumData() != 3 {
		t.Fatalf("fresh window: Len=%d NumData=%d", w.Len(), w.NumData())
	}
	id, err := w.Add(func() {}, 0, 0, 0, 0, []Access{R(0), W(1)})
	if err != nil || id != 0 {
		t.Fatalf("Add = %d, %v", id, err)
	}
	id, err = w.Add(nil, 2, 1, 2, 3, []Access{RW(1)})
	if err != nil || id != 1 {
		t.Fatalf("Add = %d, %v", id, err)
	}
	if got := w.Tasks(); len(got) != 2 || got[1].Kernel != 2 || got[1].I != 1 {
		t.Fatalf("Tasks = %+v", got)
	}
	if b := w.Bodies(); b[0] == nil || b[1] != nil {
		t.Fatal("bodies not parallel to tasks")
	}
	if got := w.Touched(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Touched = %v, want [0 1]", got)
	}
	w.Reset()
	if w.Len() != 0 || len(w.Touched()) != 0 {
		t.Fatal("Reset did not clear the window")
	}
	// Recording after Reset reuses storage and re-derives touched.
	if _, err := w.Add(func() {}, 0, 0, 0, 0, []Access{RW(2)}); err != nil {
		t.Fatal(err)
	}
	if got := w.Touched(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Touched after reset = %v, want [2]", got)
	}
}

func TestWindowAddValidation(t *testing.T) {
	w := NewWindow(2)
	if _, err := w.Add(func() {}, 0, 0, 0, 0, []Access{R(2)}); err == nil {
		t.Error("out-of-range data accepted")
	}
	if _, err := w.Add(func() {}, 0, 0, 0, 0, []Access{{Data: 0, Mode: None}}); err == nil {
		t.Error("invalid mode accepted")
	}
	if _, err := w.Add(func() {}, 0, 0, 0, 0, []Access{R(0), W(0)}); err == nil {
		t.Error("duplicate data accepted")
	}
	if w.Len() != 0 {
		t.Errorf("rejected Adds recorded %d tasks", w.Len())
	}
}

// TestWindowTouchedGenerationWrap: the O(1) touched-clear survives the
// uint32 generation wraparound.
func TestWindowTouchedGenerationWrap(t *testing.T) {
	w := NewWindow(2)
	w.gen = ^uint32(0) // next Reset wraps
	if _, err := w.Add(func() {}, 0, 0, 0, 0, []Access{RW(0)}); err != nil {
		t.Fatal(err)
	}
	w.Reset()
	if w.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", w.gen)
	}
	if _, err := w.Add(func() {}, 0, 0, 0, 0, []Access{RW(0)}); err != nil {
		t.Fatal(err)
	}
	if got := w.Touched(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Touched after wrap = %v, want [0]", got)
	}
}

// TestWindowFingerprint: equal shapes hash equal regardless of bodies and
// kernel coordinates; access structure, modes, order, numData and task
// count all distinguish.
func TestWindowFingerprint(t *testing.T) {
	shape := func(numData int, build func(w *Window)) [32]byte {
		w := NewWindow(numData)
		build(w)
		return w.Fingerprint()
	}
	a := shape(3, func(w *Window) {
		w.Add(func() {}, 0, 0, 0, 0, []Access{R(0), W(1)})
		w.Add(func() {}, 0, 0, 0, 0, []Access{RW(1)})
	})
	b := shape(3, func(w *Window) { // same shape, different bodies/coords
		w.Add(nil, 9, 7, 8, 9, []Access{R(0), W(1)})
		w.Add(nil, 4, 1, 1, 1, []Access{RW(1)})
	})
	if a != b {
		t.Error("same shape with different payloads hashed differently")
	}
	variants := [][32]byte{
		shape(3, func(w *Window) { // different mode
			w.Add(nil, 0, 0, 0, 0, []Access{R(0), W(1)})
			w.Add(nil, 0, 0, 0, 0, []Access{W(1)})
		}),
		shape(3, func(w *Window) { // different data
			w.Add(nil, 0, 0, 0, 0, []Access{R(0), W(2)})
			w.Add(nil, 0, 0, 0, 0, []Access{RW(1)})
		}),
		shape(3, func(w *Window) { // extra task
			w.Add(nil, 0, 0, 0, 0, []Access{R(0), W(1)})
			w.Add(nil, 0, 0, 0, 0, []Access{RW(1)})
			w.Add(nil, 0, 0, 0, 0, []Access{RW(1)})
		}),
		shape(4, func(w *Window) { // different numData
			w.Add(nil, 0, 0, 0, 0, []Access{R(0), W(1)})
			w.Add(nil, 0, 0, 0, 0, []Access{RW(1)})
		}),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collided with the base shape", i)
		}
	}
}

// TestWindowCloneGraphOwnsStorage: a cloned graph survives the window's
// next epoch — Reset and re-record must not alter it.
func TestWindowCloneGraphOwnsStorage(t *testing.T) {
	w := NewWindow(2)
	w.Add(func() {}, 0, 0, 0, 0, []Access{R(0), W(1)})
	g := w.CloneGraph("clone")
	w.Reset()
	w.Add(func() {}, 0, 0, 0, 0, []Access{RW(0)})
	w.Add(func() {}, 0, 0, 0, 0, []Access{RW(1)})
	if len(g.Tasks) != 1 {
		t.Fatalf("clone has %d tasks, want 1", len(g.Tasks))
	}
	if len(g.Tasks[0].Accesses) != 2 || g.Tasks[0].Accesses[0].Data != 0 || g.Tasks[0].Accesses[1].Mode != WriteOnly {
		t.Fatalf("clone accesses mutated: %+v", g.Tasks[0].Accesses)
	}
	// The aliasing view, by contrast, tracks the window.
	v := w.Graph("view")
	if len(v.Tasks) != 2 {
		t.Fatalf("view has %d tasks, want 2", len(v.Tasks))
	}
}

// TestWindowCompiles: a window's cloned graph goes through the ordinary
// compiler — the streaming shape cache depends on that round trip.
func TestWindowCompiles(t *testing.T) {
	w := NewWindow(2)
	w.Add(nil, 0, 0, 0, 0, []Access{W(0)})
	w.Add(nil, 0, 1, 0, 0, []Access{R(0), W(1)})
	g := w.CloneGraph("window")
	cp, err := Compile(g, func(id TaskID) WorkerID { return WorkerID(id % 2) }, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Workers != 2 || len(cp.Tasks) != 2 {
		t.Fatalf("compiled: workers=%d tasks=%d", cp.Workers, len(cp.Tasks))
	}
}
