package faultinject

import "rio/internal/stf"

// Compiled-stream mutators: deterministic corruptions of a
// stf.CompiledProgram, one per defect class the internal/verify certifier
// must catch. Each mutator deep-copies the program (the original may be
// cached and shared), picks its mutation site from a caller-supplied
// index (wrapped over the applicable sites, so any non-negative site
// selects one), and reports whether the program offered a site at all.
//
// The classes map one-to-one onto the certifier's codes:
//
//	MutCorruptOpcode  → RIO-V001 (unrecognized micro-op)
//	MutDropExec       → RIO-V002 (a task never executes)
//	MutRetargetExec   → RIO-V003 (execution on the wrong worker)
//	MutReorderGroups  → RIO-V004 (program order broken)
//	MutRetargetData   → RIO-V005 (micro-op points at the wrong data)
//	MutElideDeclares  → RIO-V006 (undominated declare elision)
//	MutSplitResume    → RIO-V007 (checkpoint pruning applied unevenly)
//	MutDropWait       → RIO-V008 (a dependency wait removed; also V005)

// StreamMutation enumerates the compiled-stream defect classes.
type StreamMutation int

const (
	MutCorruptOpcode StreamMutation = iota
	MutDropExec
	MutRetargetExec
	MutReorderGroups
	MutRetargetData
	MutElideDeclares
	MutSplitResume
	MutDropWait
	numStreamMutations
)

// StreamMutations lists every defect class, for exhaustive sweeps.
func StreamMutations() []StreamMutation {
	out := make([]StreamMutation, numStreamMutations)
	for i := range out {
		out[i] = StreamMutation(i)
	}
	return out
}

// String names the mutation class.
func (m StreamMutation) String() string {
	switch m {
	case MutCorruptOpcode:
		return "corrupt-opcode"
	case MutDropExec:
		return "drop-exec"
	case MutRetargetExec:
		return "retarget-exec"
	case MutReorderGroups:
		return "reorder-groups"
	case MutRetargetData:
		return "retarget-data"
	case MutElideDeclares:
		return "elide-declares"
	case MutSplitResume:
		return "split-resume"
	case MutDropWait:
		return "drop-wait"
	}
	return "unknown-mutation"
}

// MutateStream applies one defect of class m to a deep copy of cp, using
// site to select among the applicable locations. It returns the mutated
// copy and true, or (nil, false) when cp offers no site for the class
// (e.g. retargeting data in a single-data program). MutSplitResume needs
// a checkpoint and is not applicable through this driver — use
// SplitResume directly.
func MutateStream(cp *stf.CompiledProgram, m StreamMutation, site int) (*stf.CompiledProgram, bool) {
	if site < 0 {
		site = -site
	}
	switch m {
	case MutCorruptOpcode:
		return corruptOpcode(cp, site)
	case MutDropExec:
		return dropInstr(cp, site, func(in stf.Instr) bool { return in.Op == stf.OpExec })
	case MutRetargetExec:
		return retargetExec(cp, site)
	case MutReorderGroups:
		return reorderGroups(cp, site)
	case MutRetargetData:
		return retargetData(cp, site)
	case MutElideDeclares:
		return elideDeclares(cp, site)
	case MutDropWait:
		return dropInstr(cp, site, func(in stf.Instr) bool {
			return in.Op == stf.OpGetRead || in.Op == stf.OpGetWrite || in.Op == stf.OpGetRed
		})
	}
	return nil, false
}

// CloneProgram deep-copies a compiled program so mutations never reach
// the (possibly cached) original.
func CloneProgram(cp *stf.CompiledProgram) *stf.CompiledProgram {
	out := &stf.CompiledProgram{
		Name:    cp.Name,
		NumData: cp.NumData,
		Workers: cp.Workers,
		Tasks:   cp.Tasks,
		Streams: make([][]stf.Instr, len(cp.Streams)),
		Stats:   append([]stf.StreamStats(nil), cp.Stats...),
		Pruned:  cp.Pruned,
	}
	for w, s := range cp.Streams {
		out.Streams[w] = append([]stf.Instr(nil), s...)
	}
	return out
}

// corruptOpcode overwrites the site-th micro-op's opcode with a value no
// interpreter recognizes.
func corruptOpcode(cp *stf.CompiledProgram, site int) (*stf.CompiledProgram, bool) {
	n := 0
	for _, s := range cp.Streams {
		n += len(s)
	}
	if n == 0 {
		return nil, false
	}
	site %= n
	out := CloneProgram(cp)
	for w := range out.Streams {
		if site < len(out.Streams[w]) {
			out.Streams[w][site].Op = stf.OpCode(255)
			return out, true
		}
		site -= len(out.Streams[w])
	}
	return nil, false
}

// dropInstr removes the site-th micro-op satisfying pred.
func dropInstr(cp *stf.CompiledProgram, site int, pred func(stf.Instr) bool) (*stf.CompiledProgram, bool) {
	n := 0
	for _, s := range cp.Streams {
		for _, in := range s {
			if pred(in) {
				n++
			}
		}
	}
	if n == 0 {
		return nil, false
	}
	site %= n
	out := CloneProgram(cp)
	for w, s := range out.Streams {
		for k, in := range s {
			if !pred(in) {
				continue
			}
			if site == 0 {
				out.Streams[w] = append(s[:k:k], s[k+1:]...)
				return out, true
			}
			site--
		}
	}
	return nil, false
}

// retargetExec moves the site-th exec group wholesale into the next
// worker's stream (replacing that worker's declare group for the task, if
// any), so the task runs on a worker the mapping never assigned it to.
// Requires at least two workers.
func retargetExec(cp *stf.CompiledProgram, site int) (*stf.CompiledProgram, bool) {
	if cp.Workers < 2 {
		return nil, false
	}
	type pos struct{ w, start, end int }
	var groups []pos
	for w, s := range cp.Streams {
		for i := 0; i < len(s); {
			id := s[i].Task
			j, hasExec := i, false
			for j < len(s) && s[j].Task == id {
				hasExec = hasExec || s[j].Op == stf.OpExec
				j++
			}
			if hasExec {
				groups = append(groups, pos{w, i, j})
			}
			i = j
		}
	}
	if len(groups) == 0 {
		return nil, false
	}
	g := groups[site%len(groups)]
	out := CloneProgram(cp)
	src := out.Streams[g.w]
	moved := append([]stf.Instr(nil), src[g.start:g.end]...)
	id := moved[0].Task
	out.Streams[g.w] = append(src[:g.start:g.start], src[g.end:]...)
	dst := (g.w + 1) % cp.Workers
	s := out.Streams[dst]
	// Find where the group belongs in the destination's task order, and
	// whether a declare group for the task must give way.
	ins, end := len(s), len(s)
	for i := 0; i < len(s); {
		tid := s[i].Task
		j := i
		for j < len(s) && s[j].Task == tid {
			j++
		}
		if tid >= id {
			ins = i
			end = i
			if tid == id {
				end = j
			}
			break
		}
		i = j
	}
	ns := make([]stf.Instr, 0, len(s)-(end-ins)+len(moved))
	ns = append(ns, s[:ins]...)
	ns = append(ns, moved...)
	ns = append(ns, s[end:]...)
	out.Streams[dst] = ns
	return out, true
}

// reorderGroups swaps two adjacent task groups in the site-th stream that
// has at least two groups, breaking program order.
func reorderGroups(cp *stf.CompiledProgram, site int) (*stf.CompiledProgram, bool) {
	var candidates []int
	for w, s := range cp.Streams {
		if groupCount(s) >= 2 {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	w := candidates[site%len(candidates)]
	out := CloneProgram(cp)
	s := out.Streams[w]
	// Bounds of the first two groups.
	firstEnd := 1
	for firstEnd < len(s) && s[firstEnd].Task == s[0].Task {
		firstEnd++
	}
	secondEnd := firstEnd + 1
	for secondEnd < len(s) && s[secondEnd].Task == s[firstEnd].Task {
		secondEnd++
	}
	ns := make([]stf.Instr, 0, len(s))
	ns = append(ns, s[firstEnd:secondEnd]...)
	ns = append(ns, s[:firstEnd]...)
	ns = append(ns, s[secondEnd:]...)
	out.Streams[w] = ns
	return out, true
}

func groupCount(s []stf.Instr) int {
	n := 0
	for i := 0; i < len(s); {
		id := s[i].Task
		for i < len(s) && s[i].Task == id {
			i++
		}
		n++
	}
	return n
}

// retargetData points the site-th non-exec micro-op at the next data
// object, so the stream synchronizes on data the task never declared.
// Requires at least two data objects.
func retargetData(cp *stf.CompiledProgram, site int) (*stf.CompiledProgram, bool) {
	if cp.NumData < 2 {
		return nil, false
	}
	n := 0
	for _, s := range cp.Streams {
		for _, in := range s {
			if in.Op != stf.OpExec {
				n++
			}
		}
	}
	if n == 0 {
		return nil, false
	}
	site %= n
	out := CloneProgram(cp)
	for w, s := range out.Streams {
		for k := range s {
			if s[k].Op == stf.OpExec {
				continue
			}
			if site == 0 {
				out.Streams[w][k].Data = (s[k].Data + 1) % stf.DataID(cp.NumData)
				return out, true
			}
			site--
		}
	}
	return nil, false
}

// elideDeclares removes a declare-only group whose elision is provably
// unsound: the group contains a declare_write on some data whose next
// appearance in the same stream is a get_* — so no surviving declare
// re-establishes the version before a wait reads the counters. Sites
// without that property (where elision might be dominated, hence legal)
// are never picked; returns false when no unsound site exists.
func elideDeclares(cp *stf.CompiledProgram, site int) (*stf.CompiledProgram, bool) {
	type pos struct{ w, start, end int }
	var sites []pos
	for w, s := range cp.Streams {
		for i := 0; i < len(s); {
			id := s[i].Task
			j, hasExec := i, false
			for j < len(s) && s[j].Task == id {
				hasExec = hasExec || s[j].Op == stf.OpExec
				j++
			}
			if !hasExec && unsoundToElide(s, i, j) {
				sites = append(sites, pos{w, i, j})
			}
			i = j
		}
	}
	if len(sites) == 0 {
		return nil, false
	}
	g := sites[site%len(sites)]
	out := CloneProgram(cp)
	s := out.Streams[g.w]
	out.Streams[g.w] = append(s[:g.start:g.start], s[g.end:]...)
	return out, true
}

// unsoundToElide reports whether dropping the declare group s[start:end)
// must be flagged: some declare_write in it targets a data object whose
// next micro-op in the stream is a wait.
func unsoundToElide(s []stf.Instr, start, end int) bool {
	for k := start; k < end; k++ {
		if s[k].Op != stf.OpDeclareWrite {
			continue
		}
		d := s[k].Data
		for j := end; j < len(s); j++ {
			if s[j].Op == stf.OpExec || s[j].Data != d {
				continue
			}
			if s[j].Op == stf.OpGetRead || s[j].Op == stf.OpGetWrite || s[j].Op == stf.OpGetRed {
				return true
			}
			break // a surviving declare/terminate re-establishes the version
		}
	}
	return false
}

// SplitResume applies checkpoint pruning to exactly one worker's stream,
// leaving every other stream with the completed tasks' micro-ops intact —
// the inconsistent-resume defect (the protocol requires every worker to
// drop the same task set). It picks the site-th worker whose pruned
// stream still leaves the checkpointed tasks visible in some other
// stream; returns false when the checkpoint removes nothing anywhere.
func SplitResume(cp *stf.CompiledProgram, c *stf.Checkpoint, site int) (*stf.CompiledProgram, bool) {
	if c == nil || len(c.Completed) == 0 {
		return nil, false
	}
	pruned := stf.PruneCompleted(cp, c)
	var candidates []int
	for w := range cp.Streams {
		if len(pruned.Streams[w]) == len(cp.Streams[w]) {
			continue // pruning removed nothing here
		}
		for w2, s := range cp.Streams {
			if w2 == w {
				continue
			}
			if len(pruned.Streams[w2]) != len(s) {
				candidates = append(candidates, w)
				break
			}
		}
	}
	if len(candidates) == 0 {
		return nil, false
	}
	w := candidates[site%len(candidates)]
	out := CloneProgram(cp)
	out.Streams[w] = append([]stf.Instr(nil), pruned.Streams[w]...)
	out.Stats[w] = pruned.Stats[w]
	return out, true
}
