// Package faultinject builds deliberately broken STF programs, kernels and
// mappings for exercising the runtime's failure paths: task panics,
// delays, tasks that never terminate, replays that diverge across workers,
// and mappings that return out-of-range workers. The engine test suites
// (internal/enginetest) run every engine against every fault class under
// the race detector, asserting that each fault surfaces as a prompt,
// descriptive error instead of a hang or silent corruption.
//
// All injectors are deterministic: given the same graph and parameters
// they perturb the same tasks, so failing runs are reproducible.
package faultinject

import (
	"sync"
	"time"

	"rio/internal/stf"
)

// PanicAt wraps k to panic when executing task id — the baseline fault the
// runtime has always survived.
func PanicAt(k stf.Kernel, id stf.TaskID) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		if t.ID == id {
			panic("faultinject: injected panic")
		}
		k(t, w)
	}
}

// DelayAt wraps k to sleep for d before executing task id — a
// configurable straggler for exercising imbalance (which must NOT trip the
// stall watchdog: other tasks keep completing).
func DelayAt(k stf.Kernel, id stf.TaskID, d time.Duration) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		if t.ID == id {
			time.Sleep(d)
		}
		k(t, w)
	}
}

// HangAt wraps k to block on release when executing task id — a task that
// never terminates. Close release to let the wedged goroutine exit (the
// stall watchdog abandons such a run; the test must still release the
// goroutine during cleanup or it leaks for the process lifetime).
func HangAt(k stf.Kernel, id stf.TaskID, release <-chan struct{}) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		if t.ID == id {
			<-release
			return
		}
		k(t, w)
	}
}

// OutOfRange wraps mapping m to return an impossible worker for task at —
// the protocol violation the in-order engine must reject instead of
// wedging.
func OutOfRange(m stf.Mapping, at stf.TaskID) stf.Mapping {
	return func(id stf.TaskID) stf.WorkerID {
		if id == at {
			return stf.WorkerID(1 << 20)
		}
		return m(id)
	}
}

// DropTaskAt returns a Program replaying g with k, except that the worker
// with ID w silently skips task id — a divergent replay. When mapping(id)
// == w the task is never executed and every worker that depends on its
// data deadlocks: the scenario the stall watchdog must turn into a
// StallError. (The skip is an ID gap, so it masquerades as pruning; the
// divergence guard rightly stays silent and the watchdog is the detector.)
func DropTaskAt(g *stf.Graph, k stf.Kernel, w stf.WorkerID, id stf.TaskID) stf.Program {
	return func(s stf.Submitter) {
		drop := s.Worker() == w
		for i := range g.Tasks {
			if drop && g.Tasks[i].ID == id {
				continue
			}
			s.SubmitTask(&g.Tasks[i], k)
		}
	}
}

// ExtraAccessAt returns a Program replaying g with k, except that the
// worker with ID w sees task id with access a appended — a divergent
// replay with no ID gaps. Choose a data object nobody else touches and the
// run completes with corrupted bookkeeping instead of deadlocking: the
// scenario the replay-divergence guard must turn into a DivergenceError.
func ExtraAccessAt(g *stf.Graph, k stf.Kernel, w stf.WorkerID, id stf.TaskID, a stf.Access) stf.Program {
	return func(s stf.Submitter) {
		diverge := s.Worker() == w
		for i := range g.Tasks {
			t := &g.Tasks[i]
			if diverge && t.ID == id {
				alt := *t
				alt.Accesses = append(append([]stf.Access(nil), t.Accesses...), a)
				s.SubmitTask(&alt, k)
				continue
			}
			s.SubmitTask(t, k)
		}
	}
}

// ReorderAccessesAt returns a Program replaying g with k, except that the
// worker with ID w sees task id's access list reversed — the same access
// *set* in a different order. The protocol's per-data bookkeeping is
// order-insensitive, so on otherwise-untouched data the run completes;
// only an order-sensitive divergence guard can tell the replays apart.
func ReorderAccessesAt(g *stf.Graph, k stf.Kernel, w stf.WorkerID, id stf.TaskID) stf.Program {
	return func(s stf.Submitter) {
		diverge := s.Worker() == w
		for i := range g.Tasks {
			t := &g.Tasks[i]
			if diverge && t.ID == id {
				alt := *t
				alt.Accesses = make([]stf.Access, len(t.Accesses))
				for j, a := range t.Accesses {
					alt.Accesses[len(t.Accesses)-1-j] = a
				}
				s.SubmitTask(&alt, k)
				continue
			}
			s.SubmitTask(t, k)
		}
	}
}

// ChangeModeAt returns a Program replaying g with k, except that the worker
// with ID w sees task id's access to data d with mode m instead of the
// recorded one — same task, same data, different access mode. On data
// nothing else synchronizes on the run completes and only a mode-sensitive
// divergence guard can catch it.
func ChangeModeAt(g *stf.Graph, k stf.Kernel, w stf.WorkerID, id stf.TaskID, d stf.DataID, m stf.AccessMode) stf.Program {
	return func(s stf.Submitter) {
		diverge := s.Worker() == w
		for i := range g.Tasks {
			t := &g.Tasks[i]
			if diverge && t.ID == id {
				alt := *t
				alt.Accesses = append([]stf.Access(nil), t.Accesses...)
				for j := range alt.Accesses {
					if alt.Accesses[j].Data == d {
						alt.Accesses[j].Mode = m
					}
				}
				s.SubmitTask(&alt, k)
				continue
			}
			s.SubmitTask(t, k)
		}
	}
}

// SwapAccessesAt returns a Program replaying g with k, except that the
// worker with ID w sees tasks a and b with each other's access lists — a
// divergent replay that typically deadlocks (worker w's private dependency
// registers disagree with everyone else's).
func SwapAccessesAt(g *stf.Graph, k stf.Kernel, w stf.WorkerID, a, b stf.TaskID) stf.Program {
	return func(s stf.Submitter) {
		diverge := s.Worker() == w
		for i := range g.Tasks {
			t := &g.Tasks[i]
			if diverge && (t.ID == a || t.ID == b) {
				other := a
				if t.ID == a {
					other = b
				}
				alt := *t
				alt.Accesses = g.Tasks[other].Accesses
				s.SubmitTask(&alt, k)
				continue
			}
			s.SubmitTask(t, k)
		}
	}
}

// FailNTimes wraps k to panic the first n times task id is attempted,
// then succeed — the canonical transient fault for exercising the retry
// machinery. The injected panic fires *before* k runs, so a failed
// attempt leaves the task's write-set untouched; pair with CorruptThenFail
// to exercise rollback. The counter is engine-agnostic (guarded by a
// mutex) and counts attempts, not runs: a retrying engine decrements the
// budget on every re-execution.
func FailNTimes(k stf.Kernel, id stf.TaskID, n int) stf.Kernel {
	var mu sync.Mutex
	remaining := n
	return func(t *stf.Task, w stf.WorkerID) {
		if t.ID == id {
			mu.Lock()
			fail := remaining > 0
			if fail {
				remaining--
			}
			mu.Unlock()
			if fail {
				panic("faultinject: injected transient fault")
			}
		}
		k(t, w)
	}
}

// CorruptThenFail wraps k to, on each of the first n attempts of task id,
// first run corrupt (dirtying the task's write-set mid-body) and then
// panic — the fault class that makes write-set rollback load-bearing: a
// retry without rollback re-executes on corrupted inputs and the
// sequential-consistency oracle catches it.
func CorruptThenFail(k stf.Kernel, id stf.TaskID, n int, corrupt func()) stf.Kernel {
	var mu sync.Mutex
	remaining := n
	return func(t *stf.Task, w stf.WorkerID) {
		if t.ID == id {
			mu.Lock()
			fail := remaining > 0
			if fail {
				remaining--
			}
			mu.Unlock()
			if fail {
				corrupt()
				panic("faultinject: injected fault after partial write")
			}
		}
		k(t, w)
	}
}

// Flaky wraps k so that each task's first attempt fails with probability
// p (deterministically derived from seed and the task ID — the same tasks
// fail on every run) and every later attempt succeeds. A whole-flow
// transient-fault storm for chaos testing: with retry enabled the run
// must complete with the sequential reference's results.
func Flaky(k stf.Kernel, seed uint64, p float64) stf.Kernel {
	var mu sync.Mutex
	attempted := make(map[stf.TaskID]bool)
	return func(t *stf.Task, w stf.WorkerID) {
		mu.Lock()
		first := !attempted[t.ID]
		attempted[t.ID] = true
		mu.Unlock()
		if first && flakyHash(seed, uint64(t.ID)) < p {
			panic("faultinject: injected flaky fault")
		}
		k(t, w)
	}
}

// flakyHash maps (seed, id) to [0, 1) with a splitmix64 finalizer.
func flakyHash(seed, id uint64) float64 {
	x := seed ^ id*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
