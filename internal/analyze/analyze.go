// Package analyze is the preflight static analyzer of the runtime: it
// records an STF program once (record mode, no task body runs) and runs a
// pipeline of verification passes over the extracted task flow, reporting
// findings *before* any worker starts.
//
// The passes certify, statically, the properties the engines otherwise
// only surface at runtime as stalls, DivergenceErrors or silently lost
// parallelism:
//
//   - access lint (access.go): structural well-formedness of the access
//     declarations plus data-flow hygiene — reads of never-written data,
//     dead write-after-write, never-touched data objects;
//   - mapping analysis (mapping.go): out-of-range or unused workers, load
//     imbalance, and an in-order feasibility check comparing the
//     dependency critical path against the makespan lower bound the given
//     TaskID→WorkerID mapping can achieve under per-worker in-order
//     execution (mapping-induced serialization, specific to the RIO
//     model);
//   - determinism lint (determinism.go): K independent record-mode
//     replays diffed structurally, localizing the first diverging task —
//     the static complement of the engine's runtime divergence guard;
//   - spec conformance (conformance.go): bounded exploration of small
//     instances against internal/spec's formal model, certifying that the
//     wait conditions imply sequential consistency for this exact flow
//     and mapping.
//
// The same pipeline backs three surfaces: rio.Options.Preflight (run
// before every Run), the cmd/rio-vet CLI (human and JSON reports), and
// the shared instance validation consumed by cmd/rio-check.
package analyze

import (
	"rio/internal/stf"
)

// Passes selects which analysis passes run; it is a bitmask so callers
// can compose exactly the checks they want.
type Passes uint

const (
	// PassAccess runs the access lint (structural findings are always
	// reported regardless of the selection; this adds the data-flow
	// hygiene checks).
	PassAccess Passes = 1 << iota
	// PassMapping runs the mapping analysis (requires Config.Mapping).
	PassMapping
	// PassDeterminism replays the program Config.Replays times in record
	// mode and diffs the replays structurally.
	PassDeterminism
	// PassSpec model-checks small instances against internal/spec.
	PassSpec
	// PassRetry lints fault-tolerance configuration: retryability of
	// every task's write-set and snapshot cost (retry.go). The pass only
	// fires when Config.Retry is set — without a retry policy there is
	// nothing to check — so it is safe to include in PassAll.
	PassRetry

	// PassAll selects every pass.
	PassAll = PassAccess | PassMapping | PassDeterminism | PassSpec | PassRetry
)

// Default bounds of the configurable passes.
const (
	// DefaultReplays is the record-mode replay count of the determinism
	// lint.
	DefaultReplays = 3
	// DefaultSpecTaskLimit bounds the task count of instances fed to the
	// exhaustive model checker (state explosion beyond it).
	DefaultSpecTaskLimit = 12
	// DefaultSpecWorkerLimit bounds the worker count of model-checked
	// instances.
	DefaultSpecWorkerLimit = 3
	// DefaultImbalanceFactor is the max/mean per-worker load ratio above
	// which the mapping analysis reports an imbalance.
	DefaultImbalanceFactor = 2.0
	// DefaultSerializationFactor is the mapped-makespan inflation over
	// the ideal lower bound above which the mapping analysis reports
	// mapping-induced serialization.
	DefaultSerializationFactor = 1.5
	// DefaultRetryWriteSetLimit is the per-task snapshotted-object count
	// above which the retry pass warns that rollback cost may dominate.
	DefaultRetryWriteSetLimit = 16
)

// Config parameterizes an analysis run.
type Config struct {
	// Passes selects the passes to run (PassAll when zero would be
	// surprising for a bitmask, so zero means "structural checks only";
	// use PassAll explicitly).
	Passes Passes
	// Workers is the worker count the program will run with; used by the
	// mapping and spec passes.
	Workers int
	// Mapping is the static mapping to analyze (nil skips the mapping
	// pass and makes the spec pass fall back to a cyclic mapping).
	Mapping stf.Mapping
	// InOrder enables the in-order feasibility check of the mapping pass
	// (the per-worker replay chain only constrains the RIO model).
	InOrder bool
	// Replays is the determinism lint's record count (DefaultReplays
	// when <= 1).
	Replays int
	// SpecTaskLimit and SpecWorkerLimit bound the spec pass
	// (defaults apply when <= 0).
	SpecTaskLimit   int
	SpecWorkerLimit int
	// ImbalanceFactor and SerializationFactor tune the mapping pass
	// thresholds (defaults apply when <= 0).
	ImbalanceFactor     float64
	SerializationFactor float64
	// Retry marks the program as running under a retry policy; the retry
	// pass (PassRetry) is a no-op without it.
	Retry bool
	// Snapshottable reports whether the configured Snapshotter can
	// capture a data object (mirror of stf.Snapshotter.CanSnapshot); nil
	// means no object is snapshottable — the same default as running
	// without rio.Options.Snapshots.
	Snapshottable func(stf.DataID) bool
	// RetryWriteSetLimit tunes the retry pass's write-set-size warning
	// (DefaultRetryWriteSetLimit when <= 0).
	RetryWriteSetLimit int
}

func (c *Config) replays() int {
	if c.Replays <= 1 {
		return DefaultReplays
	}
	return c.Replays
}

func (c *Config) specTaskLimit() int {
	if c.SpecTaskLimit <= 0 {
		return DefaultSpecTaskLimit
	}
	return c.SpecTaskLimit
}

func (c *Config) specWorkerLimit() int {
	if c.SpecWorkerLimit <= 0 {
		return DefaultSpecWorkerLimit
	}
	return c.SpecWorkerLimit
}

func (c *Config) imbalanceFactor() float64 {
	if c.ImbalanceFactor <= 0 {
		return DefaultImbalanceFactor
	}
	return c.ImbalanceFactor
}

func (c *Config) serializationFactor() float64 {
	if c.SerializationFactor <= 0 {
		return DefaultSerializationFactor
	}
	return c.SerializationFactor
}

func (c *Config) retryWriteSetLimit() int {
	if c.RetryWriteSetLimit <= 0 {
		return DefaultRetryWriteSetLimit
	}
	return c.RetryWriteSetLimit
}

// Program records prog once (plus Config.Replays-1 more times when the
// determinism lint is selected) and runs the selected passes. No task
// body executes. The returned graph is the sanitized recorded flow
// (structurally invalid accesses dropped) and may be nil when recording
// itself failed (e.g. the program panicked in record mode).
func Program(numData int, prog stf.Program, cfg Config) (*Report, *stf.Graph) {
	rep := &Report{NumData: numData}
	rec := record(numData, prog)
	rep.add(rec.findings...)
	rep.Tasks = len(rec.g.Tasks)
	if rec.panicked {
		return rep.finish(), nil
	}
	if cfg.Passes&PassDeterminism != 0 {
		determinismPass(rep, numData, prog, rec, cfg.replays())
	}
	g := rec.sanitized()
	graphPasses(rep, g, cfg)
	return rep.finish(), g
}

// Graph runs the selected passes over an already-recorded task flow.
// Unlike stf.Graph.Validate, structural defects are reported as findings
// rather than aborting the analysis.
func Graph(g *stf.Graph, cfg Config) *Report {
	rep := &Report{NumData: g.NumData, Tasks: len(g.Tasks)}
	structuralScan(rep, g)
	graphPasses(rep, sanitizeGraph(g), cfg)
	return rep.finish()
}

// graphPasses runs the graph-level passes (access, mapping, spec) on a
// sanitized (structurally valid) flow.
func graphPasses(rep *Report, g *stf.Graph, cfg Config) {
	if cfg.Passes&PassAccess != 0 {
		accessPass(rep, g)
	}
	if cfg.Passes&PassMapping != 0 && cfg.Mapping != nil {
		mappingPass(rep, g, cfg)
	}
	if cfg.Passes&PassSpec != 0 {
		specPass(rep, g, cfg)
	}
	if cfg.Passes&PassRetry != 0 && cfg.Retry {
		retryPass(rep, g, cfg)
	}
}
