package analyze

import (
	"rio/internal/sched"
	"rio/internal/stf"
)

// mappingPass analyzes a static TaskID→WorkerID mapping against the
// recorded flow:
//
//   - CodeBadMapping (error): a task mapped outside [0, Workers).
//   - CodeUnusedWorker (info): a worker owning no task while there are
//     at least as many tasks as workers.
//   - CodeImbalance (warning): max per-worker load beyond
//     Config.ImbalanceFactor times the mean (only when there are enough
//     tasks for balance to be possible).
//   - CodeSerialization (warning): in-order feasibility — under the RIO
//     model each worker executes its owned tasks in task-flow order, so
//     the achievable makespan is bounded below by the longest path in
//     the DAG formed by the dependency edges *plus* each worker's
//     ownership chain. When that bound exceeds
//     Config.SerializationFactor × max(critical path, ⌈n/p⌉), the
//     mapping — not the dependencies and not the load — is what
//     serializes the run.
//
// Tasks mapped to stf.SharedWorker (partial mappings) are claimed
// dynamically and contribute no ownership-chain edge.
func mappingPass(rep *Report, g *stf.Graph, cfg Config) {
	p := cfg.Workers
	if p <= 0 {
		rep.addf(CodeBadMapping, Error, NoID, NoID, NoID,
			"mapping analysis needs a positive worker count (got %d)", p)
		return
	}
	n := len(g.Tasks)
	owners := make([]stf.WorkerID, n)
	badRange := 0
	for i := 0; i < n; i++ {
		w := cfg.Mapping(stf.TaskID(i))
		owners[i] = w
		if w == stf.SharedWorker {
			continue
		}
		if w < 0 || int(w) >= p {
			badRange++
			if badRange <= capPerCode {
				rep.addf(CodeBadMapping, Error, stf.TaskID(i), NoID, w,
					"mapping(%d) = %d outside [0,%d)", i, w, p)
			}
		}
	}
	if badRange > 0 {
		if extra := badRange - capPerCode; extra > 0 {
			rep.addf(CodeBadMapping, Error, NoID, NoID, NoID,
				"%d more out-of-range mapping(s) not listed", extra)
		}
		return // load and feasibility are meaningless with a broken range
	}

	hist := make([]int, p)
	mapped := 0
	for _, w := range owners {
		if w != stf.SharedWorker {
			hist[w]++
			mapped++
		}
	}
	if n >= p {
		for w := 0; w < p; w++ {
			if hist[w] == 0 {
				rep.addf(CodeUnusedWorker, Info, NoID, NoID, stf.WorkerID(w),
					"worker %d owns no task (%d tasks over %d workers)", w, n, p)
			}
		}
	}
	if mapped >= 4*p && p > 1 {
		max, maxW := 0, 0
		for w, h := range hist {
			if h > max {
				max, maxW = h, w
			}
		}
		mean := float64(mapped) / float64(p)
		if float64(max) > cfg.imbalanceFactor()*mean {
			rep.addf(CodeImbalance, Warning, NoID, NoID, stf.WorkerID(maxW),
				"load imbalance: worker %d owns %d of %d tasks (mean %.1f); histogram %v",
				maxW, max, mapped, mean, hist)
		}
	}

	if cfg.InOrder && p > 1 && n > 1 {
		serializationCheck(rep, g, owners, p, cfg.serializationFactor())
	}
}

// serializationCheck computes, in one forward pass over the flow (task
// IDs are a topological order for both edge families), the dependency
// critical path and the in-order makespan lower bound of the mapping,
// counting every task as one unit of work.
func serializationCheck(rep *Report, g *stf.Graph, owners []stf.WorkerID, p int, factor float64) {
	deps := g.Dependencies()
	n := len(g.Tasks)
	depth := make([]int, n)  // dependency-only longest path ending at t
	finish := make([]int, n) // dependencies + ownership-chain longest path
	lastOwned := make([]int, p)
	for w := range lastOwned {
		lastOwned[w] = -1
	}
	cp, span := 0, 0
	for t := 0; t < n; t++ {
		d, f := 1, 1
		for _, pre := range deps[t] {
			if depth[pre]+1 > d {
				d = depth[pre] + 1
			}
			if finish[pre]+1 > f {
				f = finish[pre] + 1
			}
		}
		if w := owners[t]; w != stf.SharedWorker {
			if prev := lastOwned[w]; prev >= 0 && finish[prev]+1 > f {
				f = finish[prev] + 1
			}
			lastOwned[w] = t
		}
		depth[t], finish[t] = d, f
		if d > cp {
			cp = d
		}
		if f > span {
			span = f
		}
	}

	loadBound := (n + p - 1) / p
	ideal := cp
	if loadBound > ideal {
		ideal = loadBound
	}
	if float64(span) > factor*float64(ideal) {
		detail := ""
		if span == n {
			detail = " — the flow is fully serialized"
		}
		rep.addf(CodeSerialization, Warning, NoID, NoID, NoID,
			"mapping-induced serialization: in-order makespan lower bound is %d tasks "+
				"vs critical path %d and balanced-load bound %d (inflation %.2fx)%s",
			span, cp, loadBound, float64(span)/float64(ideal), detail)
		// The serialization comes from ownership chains, which stealing
		// dissolves: a thief executes an overloaded worker's next ready
		// task, so with perfect stealing the bound falls back to
		// max(critical path, balanced load) — the dependency and work
		// limits no mapping can beat.
		victims := sched.RankVictims(g, sched.Table(owners), p)
		rep.addf(CodeStealEscape, Info, NoID, NoID, NoID,
			"imbalance escapable by stealing: bound %d without vs ~%d with work "+
				"stealing (%.2fx); set Options.Steal (e.g. &StealPolicy{Victims: %v}, "+
				"ranked by RankVictims)",
			span, ideal, float64(span)/float64(ideal), victims)
	}
}
