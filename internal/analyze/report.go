package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rio/internal/stf"
)

// Severity grades a finding.
type Severity int

const (
	// Info findings are observations that never reject a program.
	Info Severity = iota
	// Warning findings indicate likely defects (lost parallelism, dead
	// code, reads of unwritten data); preflight rejects them.
	Warning
	// Error findings are programs the engines cannot run correctly
	// (malformed accesses, nondeterministic replays, broken mappings).
	Error
)

// String names the severity as printed in reports.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON encodes the severity by name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity parses a severity name.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("analyze: unknown severity %q (want info|warning|error)", name)
}

// Code identifies a class of finding. Codes are stable across releases so
// reports can be filtered mechanically.
type Code string

// Access-lint finding codes (RIO-Axxx).
const (
	// CodeBadAccess: a task declares an access with an out-of-range data
	// ID or a None mode.
	CodeBadAccess Code = "RIO-A001"
	// CodeDuplicateAccess: a task declares two accesses to the same data.
	CodeDuplicateAccess Code = "RIO-A002"
	// CodeBadTaskID: the program submitted recorded tasks with
	// non-monotonic IDs.
	CodeBadTaskID Code = "RIO-A003"
	// CodePrunedFlow: the program submitted recorded tasks with ID gaps
	// (a pruned flow — analyze the unpruned program).
	CodePrunedFlow Code = "RIO-A004"
	// CodeRecordPanic: the program panicked while being recorded.
	CodeRecordPanic Code = "RIO-A005"
	// CodeUninitRead: a task reads a data object before any task wrote
	// it, and some later task does write it — the flow treats the data
	// as produced but consumes it first.
	CodeUninitRead Code = "RIO-A010"
	// CodeAccumulateRead: the first access to a data object is a
	// read-modify (RW or Reduction); the data is assumed externally
	// initialized. Informational.
	CodeAccumulateRead Code = "RIO-A011"
	// CodeDeadWrite: a write is overwritten by a later write with no
	// intervening read — the first write's value is never observed.
	CodeDeadWrite Code = "RIO-A012"
	// CodeUnusedData: a registered data object is never accessed by any
	// task.
	CodeUnusedData Code = "RIO-A013"
)

// Mapping-analysis finding codes (RIO-Mxxx).
const (
	// CodeBadMapping: the mapping sends a task to a worker outside
	// [0, Workers).
	CodeBadMapping Code = "RIO-M001"
	// CodeUnusedWorker: a worker owns no task.
	CodeUnusedWorker Code = "RIO-M002"
	// CodeImbalance: the per-worker load is badly skewed.
	CodeImbalance Code = "RIO-M003"
	// CodeSerialization: under per-worker in-order execution, the mapping
	// inflates the achievable makespan well beyond both the dependency
	// critical path and the balanced-load bound (mapping-induced
	// serialization, specific to the RIO model).
	CodeSerialization Code = "RIO-M004"
	// CodeStealEscape: the mapping-induced serialization above is
	// escapable by dependency-safe work stealing — the makespan bound
	// with Options.Steal falls back to max(critical path, balanced load).
	// Informational companion to CodeSerialization, carrying the two
	// bounds and the ranked victim list (sched.RankVictims) to put in
	// StealPolicy.Victims.
	CodeStealEscape Code = "RIO-M010"
)

// Determinism-lint and spec-conformance finding codes.
const (
	// CodeNondeterminism: independent record-mode replays of the program
	// produced different task flows.
	CodeNondeterminism Code = "RIO-D001"
	// CodeSpecViolation: the bounded model check of this instance found a
	// property violation (data race, deadlock, or a RIO step that is not
	// a legal STF step).
	CodeSpecViolation Code = "RIO-S001"
	// CodeSpecSkipped: the instance exceeds the bounded-exploration
	// limits (or uses reductions) and was not model-checked.
	CodeSpecSkipped Code = "RIO-S002"
)

// Fault-tolerance finding codes (RIO-Rxxx).
const (
	// CodeRetryUnprotected: retry is enabled but a task writes data that
	// is neither idempotent nor snapshottable, so the runtime cannot roll
	// it back and will give the task exactly one attempt.
	CodeRetryUnprotected Code = "RIO-R001"
	// CodeRetryWriteSet: a task's per-attempt snapshot covers more data
	// objects than the configured limit; rollback cost may dominate.
	CodeRetryWriteSet Code = "RIO-R002"
)

// Translation-validation finding codes (RIO-Vxxx), produced by the
// internal/verify certifier over (Graph, Mapping, CompiledProgram)
// triples. All are Error severity: each one means a compiled stream is
// not a faithful lowering of the recorded flow.
const (
	// CodeVerifyStructure: a stream is structurally corrupt — unknown
	// opcode, out-of-range task or data ID, worker count or data count
	// disagreeing with the graph, or an unusable mapping.
	CodeVerifyStructure Code = "RIO-V001"
	// CodeVerifyCoverage: a task the checkpoint does not cover is never
	// executed, or is executed more than once.
	CodeVerifyCoverage Code = "RIO-V002"
	// CodeVerifyOwnership: a task executes on a worker other than the one
	// the mapping assigns it to.
	CodeVerifyOwnership Code = "RIO-V003"
	// CodeVerifyOrder: a stream violates program order — task groups out
	// of order or split, or a task's acquire/exec/terminate micro-ops out
	// of sequence within its group.
	CodeVerifyOrder Code = "RIO-V004"
	// CodeVerifyAccessSet: a task's micro-ops do not match its recorded
	// access list — a dropped, extra, retargeted or mode-changed
	// instruction.
	CodeVerifyAccessSet Code = "RIO-V005"
	// CodeVerifyElision: an elided declare is not dominated by a later
	// surviving op establishing the same version — §3.5 pruning or
	// checkpoint resume dropped a real dependency, so a wait would admit
	// a stale version.
	CodeVerifyElision Code = "RIO-V006"
	// CodeVerifyResume: inconsistent checkpoint resume — the checkpoint
	// is not dependency-closed, or a completed task's micro-ops survive
	// in some stream.
	CodeVerifyResume Code = "RIO-V007"
	// CodeVerifyHappensBefore: a conflicting access pair (W→W, W→R, R→W,
	// or a reduction fence) is not ordered by the certified
	// happens-before relation of the streams' waits.
	CodeVerifyHappensBefore Code = "RIO-V008"
)

// NoID marks the Task/Data/Worker fields of findings that are not tied to
// a specific task, data object or worker.
const NoID = -1

// Finding is one diagnostic produced by a pass.
type Finding struct {
	Code     Code         `json:"code"`
	Severity Severity     `json:"severity"`
	Task     stf.TaskID   `json:"task"`
	Data     stf.DataID   `json:"data"`
	Worker   stf.WorkerID `json:"worker"`
	Message  string       `json:"message"`
}

// String renders the finding as one report line.
func (f Finding) String() string {
	s := fmt.Sprintf("%-7s %s", f.Severity, f.Code)
	if f.Task != NoID {
		s += fmt.Sprintf(" task %d", f.Task)
	}
	if f.Data != NoID {
		s += fmt.Sprintf(" data %d", f.Data)
	}
	if f.Worker != NoID {
		s += fmt.Sprintf(" worker %d", f.Worker)
	}
	return s + ": " + f.Message
}

// Report is the outcome of an analysis run.
type Report struct {
	// NumData and Tasks describe the analyzed instance.
	NumData int `json:"num_data"`
	Tasks   int `json:"tasks"`
	// Findings is sorted by severity (most severe first), then task.
	Findings []Finding `json:"findings"`
	// Errors, Warnings and Infos count findings per severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

func (r *Report) add(fs ...Finding) { r.Findings = append(r.Findings, fs...) }

// Add appends findings produced outside this package (e.g. by the
// internal/verify certifier) to the report. Call Finish afterwards to
// restore sort order and severity tallies.
func (r *Report) Add(fs ...Finding) { r.add(fs...) }

// Finish sorts the findings and recomputes the severity tallies after
// external findings were merged with Add. It returns the report.
func (r *Report) Finish() *Report { return r.finish() }

func (r *Report) addf(code Code, sev Severity, task stf.TaskID, data stf.DataID, worker stf.WorkerID, format string, args ...any) {
	r.add(Finding{Code: code, Severity: sev, Task: task, Data: data, Worker: worker,
		Message: fmt.Sprintf(format, args...)})
}

// finish sorts the findings and recomputes the severity tallies.
func (r *Report) finish() *Report {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		if r.Findings[i].Severity != r.Findings[j].Severity {
			return r.Findings[i].Severity > r.Findings[j].Severity
		}
		return r.Findings[i].Task < r.Findings[j].Task
	})
	r.Errors, r.Warnings, r.Infos = 0, 0, 0
	for _, f := range r.Findings {
		switch f.Severity {
		case Error:
			r.Errors++
		case Warning:
			r.Warnings++
		default:
			r.Infos++
		}
	}
	return r
}

// Max returns the highest severity present, or Info-1 when the report is
// clean.
func (r *Report) Max() Severity {
	max := Info - 1
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// CountAtLeast returns the number of findings at or above sev.
func (r *Report) CountAtLeast(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity >= sev {
			n++
		}
	}
	return n
}

// Reject reports whether preflight must reject the program: any finding
// of Warning or Error severity.
func (r *Report) Reject() bool { return r.Max() >= Warning }

// Has reports whether any finding carries the given code.
func (r *Report) Has(code Code) bool {
	for _, f := range r.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// WriteJSON writes the machine-readable form of the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the human form of the report, omitting findings below
// minSev.
func (r *Report) WriteText(w io.Writer, minSev Severity) error {
	shown := 0
	for _, f := range r.Findings {
		if f.Severity < minSev {
			continue
		}
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
		shown++
	}
	_, err := fmt.Fprintf(w, "%d task(s), %d data object(s): %d error(s), %d warning(s), %d info (%d shown)\n",
		r.Tasks, r.NumData, r.Errors, r.Warnings, r.Infos, shown)
	return err
}

// PreflightError is returned by rio.Options.Preflight when the analyzer
// rejects a program before any worker starts. Use errors.As to retrieve
// the full Report.
type PreflightError struct {
	Report *Report
}

// Error summarizes the rejection with the most severe finding.
func (e *PreflightError) Error() string {
	r := e.Report
	n := r.CountAtLeast(Warning)
	if len(r.Findings) == 0 {
		return "analyze: preflight rejected the program"
	}
	return fmt.Sprintf("analyze: preflight rejected the program: %d finding(s) at warning or above, first: %s",
		n, r.Findings[0])
}
