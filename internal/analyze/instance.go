package analyze

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// This file is the shared instance plumbing of the analysis tools:
// building named workload graphs, parsing size and mapping specs, and
// validating a (graph, workers, mapping) instance. cmd/rio-check and
// cmd/rio-vet both consume it so the two tools cannot drift apart.

// WorkloadGraph builds the task flow of one named workload. size is the
// workload's scale (tile-grid side, chain length or task count); seed
// only affects the random workload.
func WorkloadGraph(workload string, size int, seed int64) (*stf.Graph, error) {
	if size <= 0 {
		return nil, fmt.Errorf("analyze: workload size must be positive (got %d)", size)
	}
	switch workload {
	case "lu":
		return graphs.LU(size), nil
	case "cholesky":
		return graphs.Cholesky(size), nil
	case "gemm":
		return graphs.GEMM(size), nil
	case "wavefront":
		return graphs.Wavefront(size, size), nil
	case "chain":
		return graphs.Chain(size), nil
	case "independent":
		return graphs.Independent(size), nil
	case "random":
		return graphs.RandomDeps(size, 4, 1, 1, seed), nil
	}
	return nil, fmt.Errorf("analyze: unknown workload %q (want lu|cholesky|gemm|wavefront|chain|independent|random)", workload)
}

// ParseSizes parses a comma-separated list of RxC tile-grid sizes
// ("2x2,3x2").
func ParseSizes(s string) ([][2]int, error) {
	var out [][2]int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		rc := strings.Split(part, "x")
		if len(rc) != 2 {
			return nil, fmt.Errorf("analyze: bad size %q (want RxC)", part)
		}
		r, err := strconv.Atoi(rc[0])
		if err != nil {
			return nil, err
		}
		c, err := strconv.Atoi(rc[1])
		if err != nil {
			return nil, err
		}
		out = append(out, [2]int{r, c})
	}
	return out, nil
}

// ParseMapping builds a mapping from a spec string:
//
//	cyclic          round-robin (the in-order engine's default)
//	block           contiguous chunks over the graph's tasks
//	blockcyclic:B   blocks of B tasks, round-robin
//	single:W        every task on worker W
//	owner2d         2-D block-cyclic owner-computes over (Task.I, Task.J)
//
// g may be nil for specs that do not need the graph (cyclic, single:W,
// blockcyclic:B).
func ParseMapping(mapSpec string, g *stf.Graph, p int) (stf.Mapping, error) {
	if p <= 0 {
		return nil, fmt.Errorf("analyze: mapping needs a positive worker count (got %d)", p)
	}
	name, arg, hasArg := strings.Cut(mapSpec, ":")
	switch name {
	case "cyclic", "":
		return sched.Cyclic(p), nil
	case "block":
		if g == nil {
			return nil, fmt.Errorf("analyze: mapping %q needs a task flow", mapSpec)
		}
		return sched.Block(len(g.Tasks), p), nil
	case "blockcyclic":
		bs := 4
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("analyze: bad block size in %q", mapSpec)
			}
			bs = v
		}
		return sched.BlockCyclic(p, bs), nil
	case "single":
		w := 0
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("analyze: bad worker in %q", mapSpec)
			}
			w = v
		}
		return sched.Single(stf.WorkerID(w)), nil
	case "owner2d", "owner":
		if g == nil {
			return nil, fmt.Errorf("analyze: mapping %q needs a task flow", mapSpec)
		}
		return sched.OwnerComputes(g, sched.NewGrid2D(p)), nil
	}
	return nil, fmt.Errorf("analyze: unknown mapping %q (want cyclic|block|blockcyclic:B|single:W|owner2d)", mapSpec)
}

// ValidateInstance is the strict (error, not finding) validation of one
// runnable instance: a structurally valid flow, a positive worker count,
// and a mapping staying in range. Tools validate instances through this
// single entry point.
func ValidateInstance(g *stf.Graph, workers int, m stf.Mapping) error {
	if workers < 1 {
		return fmt.Errorf("analyze: worker count %d < 1", workers)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if m != nil {
		if err := sched.Validate(g, m, workers); err != nil {
			return err
		}
	}
	return nil
}

// NondetDemo returns a deliberately nondeterministic program: every
// replay submits a different second task. It exists so tools and tests
// can demonstrate the determinism lint (the decentralized engine would
// fail such a program at runtime with a DivergenceError at best).
func NondetDemo(numData int) (int, stf.Program) {
	if numData < 1 {
		numData = 1
	}
	var replay atomic.Int32
	return numData, func(s stf.Submitter) {
		n := replay.Add(1)
		s.Submit(nil, stf.W(0))
		if n%2 == 1 {
			s.Submit(nil, stf.R(0))
		} else {
			s.Submit(nil, stf.RW(0))
		}
	}
}
