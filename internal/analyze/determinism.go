package analyze

import (
	"fmt"

	"rio/internal/stf"
)

// determinismPass replays the program in record mode replays-1 further
// times and diffs every replay structurally against the first. The
// decentralized engine replays the program once per worker (paper §3.3,
// assumption 2), so any structural divergence between replays is a
// program the RIO model cannot run: at execution time it surfaces as a
// DivergenceError or a deadlock. This pass is the static complement of
// the engine's runtime divergence guard — it localizes the first
// diverging task before any worker starts.
func determinismPass(rep *Report, numData int, prog stf.Program, first *recording, replays int) {
	for k := 1; k < replays; k++ {
		other := record(numData, prog)
		if other.panicked {
			rep.addf(CodeNondeterminism, Error, stf.TaskID(len(other.g.Tasks)), NoID, NoID,
				"replay %d of %d panicked in record mode while replay 1 did not", k+1, replays)
			return
		}
		if f, diverged := diffGraphs(first.g, other.g, k+1, replays); diverged {
			rep.add(f)
			return // one localized divergence is actionable; more is noise
		}
	}
}

// diffGraphs compares two recorded flows task by task and localizes the
// first divergence.
func diffGraphs(a, b *stf.Graph, replay, replays int) (Finding, bool) {
	n := len(a.Tasks)
	if len(b.Tasks) < n {
		n = len(b.Tasks)
	}
	for i := 0; i < n; i++ {
		if d := diffTask(&a.Tasks[i], &b.Tasks[i]); d != "" {
			return Finding{Code: CodeNondeterminism, Severity: Error,
				Task: stf.TaskID(i), Data: NoID, Worker: NoID,
				Message: fmt.Sprintf("replay %d of %d diverges at task %d: %s", replay, replays, i, d),
			}, true
		}
	}
	if len(a.Tasks) != len(b.Tasks) {
		return Finding{Code: CodeNondeterminism, Severity: Error,
			Task: stf.TaskID(n), Data: NoID, Worker: NoID,
			Message: fmt.Sprintf("replay %d of %d submitted %d task(s), replay 1 submitted %d: flows diverge after task %d",
				replay, replays, len(b.Tasks), len(a.Tasks), n-1),
		}, true
	}
	return Finding{}, false
}

// diffTask describes the first structural difference between two tasks,
// or returns "" when they match.
func diffTask(a, b *stf.Task) string {
	if a.Kernel != b.Kernel || a.I != b.I || a.J != b.J || a.K != b.K {
		return fmt.Sprintf("kernel/coordinates (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.Kernel, a.I, a.J, a.K, b.Kernel, b.I, b.J, b.K)
	}
	if len(a.Accesses) != len(b.Accesses) {
		return fmt.Sprintf("%d access(es) vs %d", len(a.Accesses), len(b.Accesses))
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			return fmt.Sprintf("access %d is %s(%d) vs %s(%d)", i,
				a.Accesses[i].Mode, a.Accesses[i].Data,
				b.Accesses[i].Mode, b.Accesses[i].Data)
		}
	}
	return ""
}
