package analyze

import (
	"fmt"

	"rio/internal/stf"
)

// capPerCode bounds how many findings of one repetitive class are
// reported individually; beyond it a single summary finding is emitted so
// a pathological program cannot drown the report.
const capPerCode = 16

// recording is one record-mode replay of a program, tolerant of
// malformed flows: instead of aborting on the first structural defect
// (as stf.Record does), every defect becomes a finding and the raw flow
// is kept for the determinism diff.
type recording struct {
	g        *stf.Graph
	findings []Finding
	panicked bool

	badAccess int
	dupAccess int
}

// record replays prog once in record mode. A panic in the program is
// recovered and reported as a finding (the engines would abort the run
// the same way).
func record(numData int, prog stf.Program) *recording {
	rec := &recording{g: stf.NewGraph("recorded", numData)}
	func() {
		defer func() {
			if r := recover(); r != nil {
				rec.panicked = true
				rec.findings = append(rec.findings, Finding{
					Code: CodeRecordPanic, Severity: Error,
					Task: stf.TaskID(len(rec.g.Tasks)), Data: NoID, Worker: NoID,
					Message: fmt.Sprintf("program panicked in record mode: %v", r),
				})
			}
		}()
		prog(rec)
	}()
	rec.summarize()
	return rec
}

func (r *recording) summarize() {
	if extra := r.badAccess - capPerCode; extra > 0 {
		r.findings = append(r.findings, Finding{Code: CodeBadAccess, Severity: Error,
			Task: NoID, Data: NoID, Worker: NoID,
			Message: fmt.Sprintf("%d more malformed access(es) not listed", extra)})
	}
	if extra := r.dupAccess - capPerCode; extra > 0 {
		r.findings = append(r.findings, Finding{Code: CodeDuplicateAccess, Severity: Error,
			Task: NoID, Data: NoID, Worker: NoID,
			Message: fmt.Sprintf("%d more duplicate access(es) not listed", extra)})
	}
}

func (r *recording) addf(code Code, sev Severity, task stf.TaskID, data stf.DataID, format string, args ...any) {
	r.findings = append(r.findings, Finding{Code: code, Severity: sev,
		Task: task, Data: data, Worker: NoID, Message: fmt.Sprintf(format, args...)})
}

// scanAccesses emits structural findings for one task's access list.
func (r *recording) scanAccesses(id stf.TaskID, accesses []stf.Access) {
	seen := make(map[stf.DataID]bool, len(accesses))
	for _, a := range accesses {
		switch {
		case a.Data < 0 || int(a.Data) >= r.g.NumData:
			r.badAccess++
			if r.badAccess <= capPerCode {
				r.addf(CodeBadAccess, Error, id, a.Data,
					"access to data %d outside [0,%d)", a.Data, r.g.NumData)
			}
		case a.Mode == stf.None:
			r.badAccess++
			if r.badAccess <= capPerCode {
				r.addf(CodeBadAccess, Error, id, a.Data, "access declares mode None")
			}
		case seen[a.Data]:
			r.dupAccess++
			if r.dupAccess <= capPerCode {
				r.addf(CodeDuplicateAccess, Error, id, a.Data,
					"data %d accessed more than once by the same task", a.Data)
			}
		default:
			seen[a.Data] = true
		}
	}
}

// Submit implements stf.Submitter: the closure body is not executed.
func (r *recording) Submit(fn stf.TaskFunc, accesses ...stf.Access) stf.TaskID {
	id := r.g.Add(stf.RecordedClosure, 0, 0, 0, accesses...)
	r.scanAccesses(id, accesses)
	return id
}

// SubmitTask implements stf.Submitter for recorded tasks. Unlike
// stf.Record, non-monotonic IDs and gaps are findings, not hard errors;
// the task is re-recorded at the next position either way so downstream
// passes still see the whole flow.
func (r *recording) SubmitTask(t *stf.Task, k stf.Kernel) stf.TaskID {
	want := stf.TaskID(len(r.g.Tasks))
	switch {
	case t.ID < want:
		r.addf(CodeBadTaskID, Error, want, NoID,
			"recorded task resubmits ID %d at position %d (IDs must be monotonic)", t.ID, want)
	case t.ID > want:
		r.addf(CodePrunedFlow, Warning, want, NoID,
			"ID gap before task %d at position %d: the flow looks pruned; analyze the unpruned program", t.ID, want)
	}
	id := r.g.Add(t.Kernel, t.I, t.J, t.K, t.Accesses...)
	r.scanAccesses(id, t.Accesses)
	return t.ID
}

// Worker implements stf.Submitter; like stf.Record, the recorder presents
// itself as the master so worker-pruned programs record the full flow.
func (r *recording) Worker() stf.WorkerID { return stf.MasterWorker }

// NumWorkers implements stf.Submitter.
func (r *recording) NumWorkers() int { return 1 }

// sanitized returns a structurally valid copy of the recorded flow:
// out-of-range and None accesses are dropped, duplicate accesses keep
// the first declaration. The copy passes stf.Graph.Validate and is what
// the graph-level passes analyze.
func (r *recording) sanitized() *stf.Graph { return sanitizeGraph(r.g) }

// structuralScan is the Graph-entry-point counterpart of the recorder's
// inline scanning.
func structuralScan(rep *Report, g *stf.Graph) {
	rec := &recording{g: stf.NewGraph(g.Name, g.NumData)}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		want := stf.TaskID(len(rec.g.Tasks))
		if t.ID != want {
			rec.addf(CodeBadTaskID, Error, want, NoID,
				"task at position %d carries ID %d", want, t.ID)
		}
		rec.g.Add(t.Kernel, t.I, t.J, t.K, t.Accesses...)
		rec.scanAccesses(want, t.Accesses)
	}
	rec.summarize()
	rep.add(rec.findings...)
}

// sanitizeGraph drops structurally invalid accesses (the matching
// findings are produced by the recorder / structuralScan).
func sanitizeGraph(g *stf.Graph) *stf.Graph {
	out := stf.NewGraph(g.Name, g.NumData)
	for i := range g.Tasks {
		t := &g.Tasks[i]
		seen := make(map[stf.DataID]bool, len(t.Accesses))
		accesses := make([]stf.Access, 0, len(t.Accesses))
		for _, a := range t.Accesses {
			if a.Data < 0 || int(a.Data) >= g.NumData || a.Mode == stf.None || seen[a.Data] {
				continue
			}
			seen[a.Data] = true
			accesses = append(accesses, a)
		}
		out.Add(t.Kernel, t.I, t.J, t.K, accesses...)
	}
	return out
}
