package analyze

import (
	"rio/internal/sched"
	"rio/internal/spec"
	"rio/internal/stf"
)

// specPass certifies small instances against the formal model of
// internal/spec: exhaustive exploration of every interleaving checks
// data-race freedom and termination of the STF module and that the
// Run-In-Order module (this exact flow under this exact mapping) refines
// it — i.e. the decentralized wait conditions imply sequential
// consistency for the instance.
//
// Exhaustive exploration explodes combinatorially, so the pass is
// bounded: instances beyond Config.SpecTaskLimit tasks or
// Config.SpecWorkerLimit workers, and flows using Reduction accesses
// (outside the strict R/W protocol the model covers), are reported as
// skipped (info), not silently certified.
func specPass(rep *Report, g *stf.Graph, cfg Config) {
	n := len(g.Tasks)
	if n == 0 {
		return
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if n > cfg.specTaskLimit() {
		rep.addf(CodeSpecSkipped, Info, NoID, NoID, NoID,
			"model check skipped: %d tasks exceed the bounded-exploration limit %d", n, cfg.specTaskLimit())
		return
	}
	limit := cfg.specWorkerLimit()
	if limit > spec.MaxWorkers {
		limit = spec.MaxWorkers
	}
	if workers > limit {
		rep.addf(CodeSpecSkipped, Info, NoID, NoID, NoID,
			"model check skipped: %d workers exceed the bounded-exploration limit %d", workers, limit)
		return
	}
	for i := range g.Tasks {
		for _, a := range g.Tasks[i].Accesses {
			if a.Mode.Commutes() {
				rep.addf(CodeSpecSkipped, Info, stf.TaskID(i), a.Data, NoID,
					"model check skipped: task %d uses a Reduction access; the formal model covers the strict R/W protocol only", i)
				return
			}
		}
	}
	mapping := cfg.Mapping
	if mapping == nil {
		mapping = sched.Cyclic(workers)
	}
	row, err := spec.CheckPair(g, workers, mapping)
	if err != nil {
		rep.addf(CodeSpecSkipped, Info, NoID, NoID, NoID, "model check skipped: %v", err)
		return
	}
	for _, v := range row.STF.Violations {
		rep.addf(CodeSpecViolation, Error, NoID, NoID, NoID, "STF module: %s", v)
	}
	for _, v := range row.RIO.Violations {
		rep.addf(CodeSpecViolation, Error, NoID, NoID, NoID, "Run-In-Order module: %s", v)
	}
}
