package analyze

import (
	"rio/internal/stf"
)

// accessPass is the data-flow hygiene lint over a sanitized flow:
//
//   - CodeUninitRead (warning): a ReadOnly access to a data object no
//     task has written yet, while some later task does write it — the
//     flow treats the object as produced data but consumes it first.
//     Objects that are only ever read are assumed externally initialized
//     inputs and not reported.
//   - CodeAccumulateRead (info): the first access to an object is a
//     read-modify (RW or Reduction) — the common accumulate-into idiom;
//     correctness depends on external initialization.
//   - CodeDeadWrite (warning): a WriteOnly access overwrites a value no
//     task ever read. The final write to an object is never dead (it is
//     the program's output).
//   - CodeUnusedData (info): a registered object no task touches.
//
// Uninitialized and accumulate reads are reported once per data object
// (at the first offending task); dead writes are reported per overwrite.
func accessPass(rep *Report, g *stf.Graph) {
	type dataState struct {
		touched      bool
		written      bool       // some write already happened
		pendingWrite stf.TaskID // last unread write, NoTask if none
		reported     bool       // uninit/accumulate already reported
	}
	states := make([]dataState, g.NumData)
	for i := range states {
		states[i].pendingWrite = stf.NoTask
	}

	// writtenEver[d]: does any task in the whole flow write (or reduce)
	// d? Distinguishes "consumed before produced" from pure inputs.
	writtenEver := make([]bool, g.NumData)
	for i := range g.Tasks {
		for _, a := range g.Tasks[i].Accesses {
			if a.Mode.Writes() || a.Mode.Commutes() {
				writtenEver[a.Data] = true
			}
		}
	}

	deadWrites, uninitReads, accumReads := 0, 0, 0
	for i := range g.Tasks {
		t := &g.Tasks[i]
		for _, a := range t.Accesses {
			st := &states[a.Data]
			st.touched = true
			reads := a.Mode.Reads() || a.Mode.Commutes()
			writes := a.Mode.Writes() || a.Mode.Commutes()

			if reads && !st.written && !st.reported {
				switch {
				case a.Mode == stf.ReadOnly && writtenEver[a.Data]:
					st.reported = true
					uninitReads++
					if uninitReads <= capPerCode {
						rep.addf(CodeUninitRead, Warning, t.ID, a.Data, NoID,
							"read of data %d before any task wrote it (first write comes later in the flow)", a.Data)
					}
				case a.Mode != stf.ReadOnly:
					st.reported = true
					accumReads++
					if accumReads <= capPerCode {
						rep.addf(CodeAccumulateRead, Info, t.ID, a.Data, NoID,
							"first access to data %d is a read-modify (%s): assumed externally initialized", a.Data, a.Mode)
					}
				}
			}

			if a.Mode == stf.WriteOnly && st.pendingWrite != stf.NoTask {
				deadWrites++
				if deadWrites <= capPerCode {
					rep.addf(CodeDeadWrite, Warning, st.pendingWrite, a.Data, NoID,
						"write to data %d by task %d is dead: overwritten by task %d with no read in between",
						a.Data, st.pendingWrite, t.ID)
				}
			}

			if reads {
				st.pendingWrite = stf.NoTask
			}
			if writes {
				st.written = true
				st.pendingWrite = t.ID
			}
		}
	}
	if extra := deadWrites - capPerCode; extra > 0 {
		rep.addf(CodeDeadWrite, Warning, NoID, NoID, NoID, "%d more dead write(s) not listed", extra)
	}
	if extra := uninitReads - capPerCode; extra > 0 {
		rep.addf(CodeUninitRead, Warning, NoID, NoID, NoID, "%d more uninitialized read(s) not listed", extra)
	}
	if extra := accumReads - capPerCode; extra > 0 {
		rep.addf(CodeAccumulateRead, Info, NoID, NoID, NoID, "%d more read-modify first access(es) not listed", extra)
	}

	unused := 0
	for d := range states {
		if !states[d].touched {
			unused++
			if unused <= capPerCode {
				rep.addf(CodeUnusedData, Info, NoID, stf.DataID(d), NoID,
					"data %d is registered but never accessed", d)
			}
		}
	}
	if extra := unused - capPerCode; extra > 0 {
		rep.addf(CodeUnusedData, Info, NoID, NoID, NoID, "%d more unused data object(s) not listed", extra)
	}
}
