package analyze

import (
	"fmt"

	"rio/internal/stf"
)

// retryPass lints a flow that will run under a retry policy (fault
// tolerance): a task can only be re-executed safely when every data
// object it writes (or reduces into) can be rolled back first — either
// the access is declared Idempotent, or the configured Snapshotter can
// capture the object. The pass mirrors the runtime rule exactly (see
// stf.SnapshotWriteSet): a task with any unprotected written access gets
// one attempt at run time, silently losing its retries — which is almost
// certainly not what a caller who configured a retry policy wants, so it
// is an Error here.
//
//   - CodeRetryUnprotected (error): a task writes a data object that is
//     neither Idempotent nor snapshottable; the runtime will not retry
//     this task.
//   - CodeRetryWriteSet (warning): a task's snapshotted write-set exceeds
//     Config.RetryWriteSetLimit objects; every failed attempt copies and
//     restores all of them, so retry cost (and snapshot memory) may
//     dominate.
func retryPass(rep *Report, g *stf.Graph, cfg Config) {
	limit := cfg.retryWriteSetLimit()
	for i := range g.Tasks {
		t := &g.Tasks[i]
		snapshotted := 0
		reported := false
		for _, a := range t.Accesses {
			if !a.Mode.Writes() && !a.Mode.Commutes() {
				continue
			}
			if a.Idempotent {
				continue
			}
			if cfg.Snapshottable == nil || !cfg.Snapshottable(a.Data) {
				if !reported {
					reported = true
					rep.add(Finding{
						Code: CodeRetryUnprotected, Severity: Error,
						Task: t.ID, Data: a.Data, Worker: NoID,
						Message: fmt.Sprintf(
							"retry is enabled but data %d (written by task %d) is neither idempotent nor snapshottable; the task would get exactly one attempt",
							a.Data, t.ID),
					})
				}
				continue
			}
			snapshotted++
		}
		if !reported && snapshotted > limit {
			rep.add(Finding{
				Code: CodeRetryWriteSet, Severity: Warning,
				Task: t.ID, Data: NoID, Worker: NoID,
				Message: fmt.Sprintf(
					"task %d snapshots %d data objects per attempt (limit %d); rollback cost may dominate — consider splitting the task or declaring idempotent writes",
					t.ID, snapshotted, limit),
			})
		}
	}
}
