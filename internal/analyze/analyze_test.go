package analyze_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rio/internal/analyze"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// mustFind asserts the report carries a finding with the given code.
func mustFind(t *testing.T, rep *analyze.Report, code analyze.Code) {
	t.Helper()
	if !rep.Has(code) {
		t.Fatalf("want a %s finding, got: %+v", code, rep.Findings)
	}
}

// mustNotFind asserts the report carries no finding with the given code.
func mustNotFind(t *testing.T, rep *analyze.Report, code analyze.Code) {
	t.Helper()
	if rep.Has(code) {
		t.Fatalf("unexpected %s finding in: %+v", code, rep.Findings)
	}
}

func TestAccessLintUninitializedRead(t *testing.T) {
	g := stf.NewGraph("uninit", 2)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0), stf.W(1))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})
	mustFind(t, rep, analyze.CodeUninitRead)
	if !rep.Reject() {
		t.Fatal("uninitialized read must reject")
	}
}

func TestAccessLintPureInputsAreNotUninitialized(t *testing.T) {
	// Data 0 is only ever read: an externally initialized input.
	g := stf.NewGraph("input", 2)
	g.Add(0, 0, 0, 0, stf.R(0), stf.W(1))
	g.Add(0, 1, 0, 0, stf.R(0), stf.R(1))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})
	mustNotFind(t, rep, analyze.CodeUninitRead)
	if rep.Reject() {
		t.Fatalf("clean flow rejected: %+v", rep.Findings)
	}
}

func TestAccessLintDeadWrite(t *testing.T) {
	g := stf.NewGraph("dead", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.W(0)) // kills task 0's write
	g.Add(0, 2, 0, 0, stf.R(0))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})
	mustFind(t, rep, analyze.CodeDeadWrite)

	// The final write is the program's output, never dead; and a write
	// that was read is not dead.
	g2 := stf.NewGraph("alive", 1)
	g2.Add(0, 0, 0, 0, stf.W(0))
	g2.Add(0, 1, 0, 0, stf.R(0))
	g2.Add(0, 2, 0, 0, stf.W(0))
	rep2 := analyze.Graph(g2, analyze.Config{Passes: analyze.PassAccess})
	mustNotFind(t, rep2, analyze.CodeDeadWrite)
}

func TestAccessLintReadWriteIsNotADeadWrite(t *testing.T) {
	g := stf.NewGraph("rw", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.RW(0)) // reads task 0's value before writing
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})
	mustNotFind(t, rep, analyze.CodeDeadWrite)
}

func TestAccessLintUnusedDataAndAccumulate(t *testing.T) {
	g := stf.NewGraph("unused", 3)
	g.Add(0, 0, 0, 0, stf.RW(0))
	g.Add(0, 1, 0, 0, stf.Red(1))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})
	mustFind(t, rep, analyze.CodeUnusedData)     // data 2 untouched
	mustFind(t, rep, analyze.CodeAccumulateRead) // RW/Red first access
	if rep.Reject() {
		t.Fatalf("info findings must not reject: %+v", rep.Findings)
	}
}

func TestStructuralFindingsFromProgram(t *testing.T) {
	rep, g := analyze.Program(1, func(s stf.Submitter) {
		s.Submit(nil, stf.R(7))           // out of range
		s.Submit(nil, stf.R(0), stf.W(0)) // duplicate data
	}, analyze.Config{Passes: analyze.PassAccess})
	mustFind(t, rep, analyze.CodeBadAccess)
	mustFind(t, rep, analyze.CodeDuplicateAccess)
	if g == nil {
		t.Fatal("sanitized graph missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("sanitized graph invalid: %v", err)
	}
}

func TestRecordPanicBecomesFinding(t *testing.T) {
	rep, _ := analyze.Program(1, func(s stf.Submitter) {
		s.Submit(nil, stf.W(0))
		panic("boom")
	}, analyze.Config{Passes: analyze.PassAll})
	mustFind(t, rep, analyze.CodeRecordPanic)
	if !rep.Reject() {
		t.Fatal("panicking program must reject")
	}
}

func TestMappingPassOutOfRange(t *testing.T) {
	g := graphs.Chain(4)
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 2,
		Mapping: sched.Single(9),
		InOrder: true,
	})
	mustFind(t, rep, analyze.CodeBadMapping)
	if !rep.Reject() {
		t.Fatal("out-of-range mapping must reject")
	}
}

func TestMappingPassUnusedWorkerAndImbalance(t *testing.T) {
	g := graphs.Independent(16)
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 4,
		Mapping: sched.Single(0),
		InOrder: false, // isolate the load diagnostics
	})
	mustFind(t, rep, analyze.CodeUnusedWorker)
	mustFind(t, rep, analyze.CodeImbalance)
}

func TestMappingPassSerializedWavefront(t *testing.T) {
	g := graphs.Wavefront(4, 4)
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 4,
		Mapping: sched.Single(0),
		InOrder: true,
	})
	mustFind(t, rep, analyze.CodeSerialization)
	if !rep.Reject() {
		t.Fatal("fully serialized mapping must reject")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Code == analyze.CodeSerialization && strings.Contains(f.Message, "fully serialized") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want the fully-serialized detail, got %+v", rep.Findings)
	}
}

// Every mapping-induced serialization finding carries an informational
// escape hatch: the bound with stealing and the ranked victim list.
func TestMappingPassStealEscape(t *testing.T) {
	g := graphs.Wavefront(4, 4)
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 4,
		Mapping: sched.Single(2),
		InOrder: true,
	})
	mustFind(t, rep, analyze.CodeStealEscape)
	var msg string
	for _, f := range rep.Findings {
		if f.Code == analyze.CodeStealEscape {
			if f.Severity != analyze.Info {
				t.Errorf("steal-escape severity = %v, want info (advice must not reject)", f.Severity)
			}
			msg = f.Message
		}
	}
	// The victim ranking for a fully skewed mapping is the hot worker.
	if !strings.Contains(msg, "Options.Steal") || !strings.Contains(msg, "Victims: [2]") {
		t.Fatalf("steal-escape message lacks the suggestion or ranked victims: %q", msg)
	}

	// A healthy mapping gets no steal advice.
	clean := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 4,
		Mapping: sched.Cyclic(4),
		InOrder: true,
	})
	mustNotFind(t, clean, analyze.CodeStealEscape)
}

func TestMappingPassAcceptsParallelMapping(t *testing.T) {
	g := graphs.Wavefront(4, 4)
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 4,
		Mapping: sched.Cyclic(4),
		InOrder: true,
	})
	mustNotFind(t, rep, analyze.CodeSerialization)
	mustNotFind(t, rep, analyze.CodeBadMapping)
}

func TestMappingPassSharedWorkerTasks(t *testing.T) {
	g := graphs.Independent(8)
	partial := sched.Partial(sched.Cyclic(2), func(id stf.TaskID) bool { return id%2 == 0 })
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassMapping,
		Workers: 2,
		Mapping: partial,
		InOrder: true,
	})
	mustNotFind(t, rep, analyze.CodeBadMapping)
}

func TestDeterminismPass(t *testing.T) {
	numData, prog := analyze.NondetDemo(1)
	rep, _ := analyze.Program(numData, prog, analyze.Config{Passes: analyze.PassDeterminism})
	mustFind(t, rep, analyze.CodeNondeterminism)
	if !rep.Reject() {
		t.Fatal("nondeterministic program must reject")
	}

	g := graphs.LU(3)
	rep2, _ := analyze.Program(g.NumData, stf.Replay(g, nil), analyze.Config{Passes: analyze.PassDeterminism})
	mustNotFind(t, rep2, analyze.CodeNondeterminism)
}

func TestDeterminismLocalizesFirstDivergence(t *testing.T) {
	_, prog := analyze.NondetDemo(1)
	rep, _ := analyze.Program(1, prog, analyze.Config{Passes: analyze.PassDeterminism})
	for _, f := range rep.Findings {
		if f.Code == analyze.CodeNondeterminism {
			if f.Task != 1 {
				t.Fatalf("divergence localized at task %d, want 1", f.Task)
			}
			return
		}
	}
	t.Fatal("no nondeterminism finding")
}

func TestSpecPassCertifiesSmallInstance(t *testing.T) {
	g := graphs.LURect(2, 2)
	rep := analyze.Graph(g, analyze.Config{
		Passes:  analyze.PassSpec,
		Workers: 2,
		Mapping: sched.Cyclic(2),
	})
	mustNotFind(t, rep, analyze.CodeSpecViolation)
	mustNotFind(t, rep, analyze.CodeSpecSkipped)
}

func TestSpecPassSkipsLargeInstances(t *testing.T) {
	g := graphs.GEMM(3)
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassSpec, Workers: 2, Mapping: sched.Cyclic(2)})
	mustFind(t, rep, analyze.CodeSpecSkipped)
	if rep.Reject() {
		t.Fatal("a skipped model check must not reject")
	}
}

func TestSpecPassSkipsReductions(t *testing.T) {
	g := stf.NewGraph("red", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.Red(0))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassSpec, Workers: 2, Mapping: sched.Cyclic(2)})
	mustFind(t, rep, analyze.CodeSpecSkipped)
}

func TestWorkloadGraphAndParsers(t *testing.T) {
	for _, w := range []string{"lu", "cholesky", "gemm", "wavefront", "chain", "random"} {
		g, err := analyze.WorkloadGraph(w, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", w, err)
		}
	}
	if _, err := analyze.WorkloadGraph("nope", 3, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := analyze.WorkloadGraph("lu", 0, 1); err == nil {
		t.Fatal("non-positive size accepted")
	}

	sizes, err := analyze.ParseSizes("2x2, 3x2")
	if err != nil || len(sizes) != 2 || sizes[1] != [2]int{3, 2} {
		t.Fatalf("ParseSizes: %v %v", sizes, err)
	}
	if _, err := analyze.ParseSizes("3"); err == nil {
		t.Fatal("bad size accepted")
	}

	g := graphs.Chain(6)
	for _, spec := range []string{"cyclic", "block", "blockcyclic:2", "single:1", "owner2d"} {
		m, err := analyze.ParseMapping(spec, g, 2)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if err := analyze.ValidateInstance(g, 2, m); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
	}
	if _, err := analyze.ParseMapping("nope", g, 2); err == nil {
		t.Fatal("unknown mapping accepted")
	}
	if m, _ := analyze.ParseMapping("single:7", g, 2); m != nil {
		if err := analyze.ValidateInstance(g, 2, m); err == nil {
			t.Fatal("out-of-range mapping validated")
		}
	}
}

func TestReportOutputs(t *testing.T) {
	g := stf.NewGraph("out", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded analyze.Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if !decoded.Has(analyze.CodeUninitRead) {
		t.Fatalf("decoded report lost findings: %+v", decoded)
	}

	buf.Reset()
	if err := rep.WriteText(&buf, analyze.Info); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), string(analyze.CodeUninitRead)) {
		t.Fatalf("text report missing code: %q", buf.String())
	}
}

func TestPreflightErrorMessage(t *testing.T) {
	g := stf.NewGraph("err", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	rep := analyze.Graph(g, analyze.Config{Passes: analyze.PassAccess})
	err := &analyze.PreflightError{Report: rep}
	if !strings.Contains(err.Error(), string(analyze.CodeUninitRead)) {
		t.Fatalf("error does not name the finding: %s", err)
	}
}
