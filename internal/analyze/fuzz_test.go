package analyze_test

import (
	"math/rand"
	"reflect"
	"testing"

	"rio/internal/analyze"
	"rio/internal/enginetest"
	"rio/internal/stf"
)

// FuzzAnalyzer feeds random task graphs through the full pass pipeline
// and checks the analyzer's own invariants: it never panics, it is
// deterministic (re-analyzing yields identical findings), its sanitized
// graph always validates, and a graph built by the generators never
// produces structural (RIO-A00x) findings — those are reserved for
// malformed submissions.
func FuzzAnalyzer(f *testing.F) {
	f.Add(int64(1), 8, 4, 2)
	f.Add(int64(42), 16, 6, 3)
	f.Add(int64(7), 1, 1, 1)
	f.Add(int64(99), 24, 3, 4)
	f.Fuzz(func(t *testing.T, seed int64, maxTasks, maxData, workers int) {
		if maxTasks < 1 || maxTasks > 48 || maxData < 1 || maxData > 16 {
			t.Skip()
		}
		if workers < 1 || workers > 8 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraphWithReductions(rng, maxTasks, maxData)
		cfg := analyze.Config{
			Passes:  analyze.PassAll,
			Workers: workers,
			InOrder: true,
		}
		rep, sg := analyze.Program(g.NumData, stf.Replay(g, nil), cfg)
		if sg == nil {
			t.Fatal("record-mode replay of a valid graph produced no graph")
		}
		if err := sg.Validate(); err != nil {
			t.Fatalf("sanitized graph invalid: %v", err)
		}
		for _, code := range []analyze.Code{
			analyze.CodeBadAccess, analyze.CodeDuplicateAccess,
			analyze.CodeBadTaskID, analyze.CodePrunedFlow,
			analyze.CodeRecordPanic, analyze.CodeNondeterminism,
			analyze.CodeSpecViolation,
		} {
			if rep.Has(code) {
				t.Fatalf("generated graph produced %s: %+v", code, rep.Findings)
			}
		}
		rep2, _ := analyze.Program(g.NumData, stf.Replay(g, nil), cfg)
		if !reflect.DeepEqual(rep.Findings, rep2.Findings) {
			t.Fatalf("analysis is nondeterministic:\n%+v\nvs\n%+v", rep.Findings, rep2.Findings)
		}

		// A cleaned-up variant of the same flow must pass the access lint
		// outright: force the first access to every data object to be a
		// write and drop writes that would kill an unread pending write.
		clean := cleanGraph(rng, g)
		crep := analyze.Graph(clean, analyze.Config{Passes: analyze.PassAccess})
		if crep.CountAtLeast(analyze.Warning) != 0 {
			t.Fatalf("clean program flagged: %+v", crep.Findings)
		}

		// Seeding a read-before-write defect on a fresh data object must be
		// caught.
		defective := seedUninitRead(clean)
		drep := analyze.Graph(defective, analyze.Config{Passes: analyze.PassAccess})
		if !drep.Has(analyze.CodeUninitRead) {
			t.Fatalf("seeded uninitialized read not found: %+v", drep.Findings)
		}
	})
}

// cleanGraph rewrites g so the access lint has nothing to say at warning
// level: every data object's first access becomes WriteOnly, and a
// WriteOnly access over a still-unread write is downgraded to ReadWrite.
func cleanGraph(rng *rand.Rand, g *stf.Graph) *stf.Graph {
	out := stf.NewGraph(g.Name+"-clean", g.NumData)
	touched := make([]bool, g.NumData)
	pending := make([]bool, g.NumData)
	for _, tk := range g.Tasks {
		accs := make([]stf.Access, 0, len(tk.Accesses))
		for _, a := range tk.Accesses {
			mode := a.Mode
			if !touched[a.Data] {
				mode = stf.WriteOnly
			} else if mode == stf.WriteOnly && pending[a.Data] {
				mode = stf.ReadWrite
			}
			touched[a.Data] = true
			// Mirror the analyzer's model: every write (including the write
			// half of RW/Red) leaves a pending unread value; a pure read
			// consumes it.
			switch mode {
			case stf.ReadOnly:
				pending[a.Data] = false
			default:
				pending[a.Data] = true
			}
			accs = append(accs, stf.Access{Data: a.Data, Mode: mode})
		}
		out.Add(tk.Kernel, tk.I, tk.J, tk.K, accs...)
	}
	_ = rng
	return out
}

// seedUninitRead appends a data object that is read before its only
// write — the canonical access-lint defect.
func seedUninitRead(g *stf.Graph) *stf.Graph {
	out := stf.NewGraph(g.Name+"-defect", g.NumData+1)
	bad := stf.DataID(g.NumData)
	out.Add(0, 0, 0, 0, stf.R(bad))
	for _, tk := range g.Tasks {
		out.Add(tk.Kernel, tk.I, tk.J, tk.K, tk.Accesses...)
	}
	out.Add(0, 0, 0, 0, stf.W(bad))
	return out
}
