package core

import (
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"rio/internal/stf"
)

// Run hardening: the paper's protocol trusts the program — a
// nondeterministic replay, an out-of-range mapping or a task that never
// finishes would silently wedge every worker inside a dependency wait.
// This file adds the three defenses that turn such a hang into a prompt,
// descriptive error:
//
//   - abortState: a shared run-abort latch with a recorded first cause,
//     raised by panics, protocol violations, context cancellation and the
//     watchdog; dependency waits poll it in their sleep phase and unwind.
//   - workerHealth: per-worker published execution state (waiting on which
//     task/data, executing which task, done) plus a completion counter,
//     maintained only when the watchdog is armed.
//   - the stall watchdog: a monitor goroutine that distinguishes global
//     deadlock (all live workers blocked, nothing completing) from mere
//     imbalance (completions still happening), and from a stuck task
//     (a body overrunning the threshold), and aborts with a StallError.
//   - guardState: the replay-divergence guard — each worker folds its
//     observed (taskID, accesses) stream into a running hash with periodic
//     checkpoints, so diverging replays are reported as a DivergenceError
//     instead of a silent hang or corruption.

// abortState is the run-wide abort latch. The flag is polled by dependency
// waits (and once per task submission); the first recorded cause wins.
type abortState struct {
	flag atomic.Bool
	mu   sync.Mutex
	// cause is the first error that aborted the run. external records
	// whether it originated outside any worker's own error slot (context
	// cancellation, watchdog) and must therefore be reported separately.
	cause    error
	external bool
	// onRaise, when set, runs after the flag is raised — the engine wires
	// it to wake every data event gate so parked waiters observe the
	// abort promptly. Set once before any worker starts (never concurrent
	// with raise); must be idempotent, as every raise invokes it.
	onRaise func()
}

// raised reports whether the run is aborting.
func (a *abortState) raised() bool { return a.flag.Load() }

// raise aborts the run with err as the cause if none was recorded yet.
// external marks causes that are not already recorded in a worker's err.
func (a *abortState) raise(err error, external bool) {
	a.mu.Lock()
	if a.cause == nil {
		a.cause = err
		a.external = external
	}
	a.mu.Unlock()
	a.flag.Store(true)
	if a.onRaise != nil {
		a.onRaise()
	}
}

// state returns the recorded cause.
func (a *abortState) state() (cause error, external bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cause, a.external
}

// Worker phases published for the watchdog.
const (
	phaseReplay int32 = iota // unrolling the flow (submitting / declaring)
	phaseExec                // inside a task body
	phaseWait                // blocked in a dependency wait (slow phase)
	phaseDone                // replay finished, worker returned
)

// workerHealth is one worker's published execution state, read by the
// watchdog monitor. All fields are atomics because the owning worker
// writes them while the monitor reads them; the trailing pad keeps
// adjacent workers' health words on separate cache lines.
type workerHealth struct {
	healthWords
	_ [(cacheLine - unsafe.Sizeof(healthWords{})%cacheLine) % cacheLine]byte
}

// healthWords is the payload of a workerHealth cell.
type healthWords struct {
	phase    atomic.Int32
	mode     atomic.Int32
	task     atomic.Int64
	data     atomic.Int64
	since    atomic.Int64 // UnixNano of the last phase change to exec/wait
	executed atomic.Int64 // tasks completed by this worker
}

func (h *workerHealth) setExec(id int64) {
	h.task.Store(id)
	h.since.Store(time.Now().UnixNano())
	h.phase.Store(phaseExec)
}

func (h *workerHealth) endExec() {
	h.executed.Add(1)
	h.phase.Store(phaseReplay)
}

func (h *workerHealth) setWait(id stf.TaskID, a stf.Access) {
	h.task.Store(int64(id))
	h.data.Store(int64(a.Data))
	h.mode.Store(int32(a.Mode))
	h.since.Store(time.Now().UnixNano())
	h.phase.Store(phaseWait)
}

func (h *workerHealth) setReplay() { h.phase.Store(phaseReplay) }
func (h *workerHealth) setDone()   { h.phase.Store(phaseDone) }

// guardStride is the checkpoint period of the divergence guard: every
// stride tasks, a worker commits its running stream hash to a shared
// checkpoint list (under a mutex, amortized over the stride).
const guardStride = 256

// guardState is one worker's replay-divergence guard. The hot-path fields
// (count, hash, gapSeen) are private to the worker; the mutexed section is
// the committed view the watchdog may read mid-run: the checkpoint trail
// plus the latest committed (count, hash) head, refreshed at every
// checkpoint and whenever the worker enters a slow dependency wait.
type guardState struct {
	count   int64  // tasks folded so far
	hash    uint64 // running stream hash
	gapSeen bool   // worker-local fast mirror of sawGap

	// sawGap records that the replay skipped IDs (a pruned flow, §3.5):
	// per-worker streams then differ legitimately and the cross-worker
	// check is disabled.
	sawGap atomic.Bool

	mu        sync.Mutex
	marks     []uint64 // hash checkpoints, one per guardStride tasks
	headCount int64    // committed stream position
	headHash  uint64   // committed stream hash at headCount
}

// mix64 is a splitmix64-style non-commutative combiner.
func mix64(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 + b + 0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	return x
}

// fold absorbs one observed task (ID and access list) into the stream
// hash. This is the guard's whole per-task cost: a few multiply-xor steps
// in private memory, plus one mutexed checkpoint per guardStride tasks.
func (g *guardState) fold(id stf.TaskID, accesses []stf.Access) {
	h := mix64(g.hash, uint64(id))
	for _, a := range accesses {
		h = mix64(h, uint64(a.Data)<<8|uint64(a.Mode))
	}
	g.hash = h
	g.count++
	if g.count%guardStride == 0 {
		g.mu.Lock()
		g.marks = append(g.marks, h)
		g.headCount = g.count
		g.headHash = h
		g.mu.Unlock()
	}
}

// markGap records that this worker's replay skipped task IDs.
func (g *guardState) markGap() {
	if !g.gapSeen {
		g.gapSeen = true
		g.sawGap.Store(true)
	}
}

// commitHead publishes the worker's exact stream position; called when the
// worker parks in a slow dependency wait, so a deadlock diagnosis can
// compare the stalled workers' positions.
func (g *guardState) commitHead() {
	g.mu.Lock()
	g.headCount = g.count
	g.headHash = g.hash
	g.mu.Unlock()
}

// committed returns the checkpoint trail and head under the lock.
func (g *guardState) committed() (marks []uint64, headCount int64, headHash uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]uint64(nil), g.marks...), g.headCount, g.headHash
}

// divergencePrefix compares the committed checkpoint trails and heads of
// all workers and returns a DivergenceError if any two provably disagree —
// safe to call mid-run (it reads only committed state). Pruned flows (any
// worker with an ID gap) are exempt: their streams differ by design.
// Returns nil when the guard is off or no divergence is provable.
func divergencePrefix(subs []*submitter) *stf.DivergenceError {
	if len(subs) < 2 || subs[0].guard == nil {
		return nil
	}
	trails := make([][]uint64, len(subs))
	headCounts := make([]int64, len(subs))
	headHashes := make([]uint64, len(subs))
	minLen := -1
	for i, s := range subs {
		if s.guard.sawGap.Load() {
			return nil
		}
		trails[i], headCounts[i], headHashes[i] = s.guard.committed()
		if minLen < 0 || len(trails[i]) < minLen {
			minLen = len(trails[i])
		}
	}
	// Two workers disagreeing on the same checkpoint prove a divergence
	// inside that stride.
	for m := 0; m < minLen; m++ {
		for i := 1; i < len(trails); i++ {
			if trails[i][m] != trails[0][m] {
				lo := stf.TaskID(m * guardStride)
				return &stf.DivergenceError{Window: [2]stf.TaskID{lo, lo + guardStride}}
			}
		}
	}
	// Two workers parked at the same stream position with different
	// hashes prove a divergence since their last agreeing checkpoint.
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			if headCounts[i] > 0 && headCounts[i] == headCounts[j] && headHashes[i] != headHashes[j] {
				lo := min(len(trails[i]), len(trails[j])) * guardStride
				return &stf.DivergenceError{Window: [2]stf.TaskID{stf.TaskID(lo), stf.TaskID(headCounts[i])}}
			}
		}
	}
	return nil
}

// guardVerdict is the end-of-run cross-worker divergence check: with all
// workers finished (so their private guard fields are safely readable), it
// verifies that every worker folded the same stream. Pruned replays
// legitimately differ per worker (the pruning contract covers their
// safety), so any worker that skipped IDs disables the check — and since a
// trailing prune produces no observable gap, differing task *counts* alone
// are never reported; only equal-length streams with differing hashes (or
// differing checkpoints within the common prefix) are provable divergence.
func guardVerdict(subs []*submitter) error {
	if len(subs) < 2 || subs[0].guard == nil {
		return nil
	}
	base := subs[0].guard
	counts := make([]int64, len(subs))
	equalStreams := true
	for i, s := range subs {
		g := s.guard
		if g.gapSeen {
			return nil
		}
		counts[i] = g.count
		if g.count != base.count || g.hash != base.hash {
			equalStreams = false
		}
	}
	if equalStreams {
		return nil
	}
	if div := divergencePrefix(subs); div != nil {
		div.Counts = counts
		return div
	}
	// Same-length streams with different hashes: divergence in the
	// uncheckpointed tail.
	allSameCount := true
	for _, c := range counts {
		if c != counts[0] {
			allSameCount = false
		}
	}
	if allSameCount {
		common := -1
		for _, s := range subs {
			marks, _, _ := s.guard.committed()
			if common < 0 || len(marks) < common {
				common = len(marks)
			}
		}
		return &stf.DivergenceError{
			Window: [2]stf.TaskID{stf.TaskID(common * guardStride), stf.TaskID(counts[0])},
			Counts: counts,
		}
	}
	// Differing counts without an observed gap are indistinguishable from
	// a trailing prune: not provable, stay silent.
	return nil
}

// stallGrace is how long Run waits, after the watchdog has aborted the
// run, for the workers to unwind before giving up on them. Workers blocked
// in dependency waits poll the abort flag within at most ~100µs sleeps, so
// this is generous; only a worker wedged inside a task body can miss it.
const stallGrace = 500 * time.Millisecond

// monitor is the stall watchdog goroutine. It watches the global
// completion count; when no task completes for the configured threshold it
// inspects the published worker states and, if they prove a deadlock or a
// stuck task (rather than mere imbalance or a long replay), aborts the run
// with a StallError and delivers the diagnosis on stalled.
func (e *Engine) monitor(subs []*submitter, abort *abortState, done <-chan struct{}, stalled chan<- *stf.StallError) {
	threshold := e.stallTimeout
	tick := threshold / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	lastSum := int64(-1)
	lastProgress := time.Now()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
		}
		if abort.raised() {
			// The run is already failing for another reason; the workers
			// unwind through the same flag the watchdog would have raised.
			return
		}
		var sum int64
		for _, s := range subs {
			sum += s.health.executed.Load()
			// A worker finishing its replay is progress too.
			if s.health.phase.Load() == phaseDone {
				sum++
			}
		}
		if sum != lastSum {
			lastSum = sum
			lastProgress = time.Now()
			continue
		}
		if time.Since(lastProgress) < threshold {
			continue
		}

		now := time.Now()
		st := &stf.StallError{Threshold: threshold}
		allBlockedOrDone := true
		longBusy := false
		for w, s := range subs {
			h := s.health
			switch h.phase.Load() {
			case phaseDone:
				st.Done = append(st.Done, stf.WorkerID(w))
			case phaseWait:
				st.Stalled = append(st.Stalled, stf.StalledWorker{
					Worker: stf.WorkerID(w),
					Task:   stf.TaskID(h.task.Load()),
					Data:   stf.DataID(h.data.Load()),
					Mode:   stf.AccessMode(h.mode.Load()),
					For:    now.Sub(time.Unix(0, h.since.Load())),
				})
			case phaseExec:
				allBlockedOrDone = false
				busyFor := now.Sub(time.Unix(0, h.since.Load()))
				if busyFor >= threshold {
					longBusy = true
				}
				st.Busy = append(st.Busy, stf.BusyWorker{
					Worker: stf.WorkerID(w),
					Task:   stf.TaskID(h.task.Load()),
					For:    busyFor,
				})
			default:
				// Actively unrolling the flow: not conclusive, keep
				// watching.
				allBlockedOrDone = false
			}
		}
		switch {
		case len(st.Stalled) > 0 && allBlockedOrDone:
			st.Kind = stf.Deadlock
		case longBusy:
			st.Kind = stf.StuckTask
		default:
			// Completions may merely be rare (long declare stretches, a
			// task just under the threshold): not provably stalled.
			continue
		}
		st.Divergence = divergencePrefix(subs)
		abort.raise(st, true)
		stalled <- st
		return
	}
}
