package core

import (
	"rio/internal/trace"
)

// Always-on run counters. Unlike workerHealth (maintained only when the
// stall watchdog is armed) and the Stats decomposition (assembled after the
// run), these counters are published on every run so that any goroutine can
// snapshot the run's progress mid-flight via Engine.Progress — the
// "is the flow moving, who is the straggler" question the watchdog only
// answers once it has already given up. The table itself (padded per-worker
// cells, atomic publication) lives in trace.ProgressTable and is shared by
// all engines.

// Progress snapshots the current (or, between runs, the most recent) run's
// always-on counters. Safe to call from any goroutine at any time,
// including while a run is in flight; before the first run it returns a
// zero Progress.
func (e *Engine) Progress() trace.Progress {
	t := e.progress.Load()
	if t == nil {
		return trace.Progress{}
	}
	return t.Snapshot()
}
