package core

import (
	"rio/internal/trace"
)

// Always-on run counters. Unlike workerHealth (maintained only when the
// stall watchdog is armed) and the Stats decomposition (assembled after the
// run), these counters are published on every run so that any goroutine can
// snapshot the run's progress mid-flight via Engine.Progress — the
// "is the flow moving, who is the straggler" question the watchdog only
// answers once it has already given up. The table itself (padded per-worker
// cells, atomic publication) lives in trace.ProgressTable and is shared by
// all engines.

// Progress snapshots the current (or, between runs, the most recent) run's
// always-on counters. Safe to call from any goroutine at any time,
// including while a run is in flight; before the first run it returns a
// zero Progress.
func (e *Engine) Progress() trace.Progress {
	t := e.progress.Load()
	if t == nil {
		return trace.Progress{}
	}
	return t.Snapshot()
}

// adaptiveSeed derives the starting per-worker spin budget of a WaitAdaptive
// run from the previous run's wait histogram (the same feedback signal the
// per-wait adaptation uses, aggregated): a run whose waits overwhelmingly
// resolved in busy-poll territory (< 10µs) starts the next run with a larger
// budget; a run dominated by long waits starts small and parks early. With
// no history (first run, or NoAccounting leaving the histogram empty) the
// configured base is used unchanged.
func adaptiveSeed(hist [trace.NumWaitBuckets]int64, base int) int {
	var short, long int64
	for b, n := range hist {
		if b <= 1 { // < 10µs, see trace.WaitBucketBounds
			short += n
		} else {
			long += n
		}
	}
	switch {
	case short+long == 0:
		return base
	case long*4 <= short:
		return min(base*8, maxSpinBudget)
	case short*4 <= long:
		return max(base/4, minSpinBudget)
	}
	return base
}
