package core_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// Partial-mapping tests: tasks mapped to stf.SharedWorker are claimed
// dynamically by the first worker to reach them.

// sharedMapping maps every task to SharedWorker.
func sharedMapping(stf.TaskID) stf.WorkerID { return stf.SharedWorker }

func TestAllSharedTasksRunExactlyOnce(t *testing.T) {
	const n = 2000
	for _, p := range []int{1, 2, 4} {
		e := newEngine(t, core.Options{Workers: p, Mapping: sharedMapping})
		var ran atomic.Int64
		counts := make([]atomic.Int32, n)
		err := e.Run(0, func(s stf.Submitter) {
			for i := 0; i < n; i++ {
				i := i
				s.Submit(func() {
					counts[i].Add(1)
					ran.Add(1)
				})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran.Load() != n {
			t.Fatalf("p=%d: %d executions, want %d", p, ran.Load(), n)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("p=%d: task %d executed %d times", p, i, c)
			}
		}
		st := e.Stats()
		if st.Claimed() != n {
			t.Errorf("p=%d: claimed = %d, want %d", p, st.Claimed(), n)
		}
		if st.Executed() != n {
			t.Errorf("p=%d: executed = %d, want %d", p, st.Executed(), n)
		}
	}
}

func TestSharedTasksRespectDependencies(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.LU(5),
		graphs.RandomDeps(300, 16, 2, 1, 21),
		graphs.Wavefront(6, 6),
	} {
		for _, p := range []int{2, 4} {
			e := newEngine(t, core.Options{Workers: p, Mapping: sharedMapping})
			if err := enginetest.Check(e, g); err != nil {
				t.Errorf("%s p=%d all-shared: %v", g.Name, p, err)
			}
		}
	}
}

func TestPartialMappingMixesStaticAndShared(t *testing.T) {
	g := graphs.RandomDeps(400, 24, 2, 1, 5)
	p := 3
	// Every third task has no static owner.
	m := sched.Partial(sched.Cyclic(p), func(id stf.TaskID) bool { return id%3 == 0 })
	if err := sched.Validate(g, m, p); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, core.Options{Workers: p, Mapping: m})
	if err := enginetest.Check(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	wantShared := int64(0)
	for i := range g.Tasks {
		if i%3 == 0 {
			wantShared++
		}
	}
	if st.Claimed() != wantShared {
		t.Errorf("claimed = %d, want %d", st.Claimed(), wantShared)
	}
	if st.Executed() != int64(len(g.Tasks)) {
		t.Errorf("executed = %d, want %d", st.Executed(), len(g.Tasks))
	}
}

func TestSharedTasksLoadBalance(t *testing.T) {
	// One worker is given a single long static task up front; the shared
	// tail should be picked up overwhelmingly by the other worker. The
	// long task sleeps (rather than spins) so the test does not depend on
	// preemption of a tight loop when goroutines outnumber hardware
	// threads.
	const tail = 400
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Partial(
		sched.Single(0),
		func(id stf.TaskID) bool { return id > 0 },
	)})
	perWorker := make([]atomic.Int64, 2)
	err := e.Run(0, func(s stf.Submitter) {
		s.Submit(func() { time.Sleep(20 * time.Millisecond) })
		for i := 0; i < tail; i++ {
			s.Submit(func() { perWorker[s.Worker()].Add(1) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := perWorker[0].Load() + perWorker[1].Load(); got != tail {
		t.Fatalf("tail executions = %d, want %d", got, tail)
	}
	if perWorker[1].Load() == 0 {
		t.Error("worker 1 claimed nothing despite worker 0 being busy")
	}
}

func TestPartialMappingPrunedReplay(t *testing.T) {
	g := graphs.RandomDeps(200, 16, 2, 1, 17)
	p := 3
	m := sched.Partial(sched.Cyclic(p), func(id stf.TaskID) bool { return id%5 == 0 })
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	rel := sched.Relevant(g, m, p)
	// Shared tasks must be relevant to every worker.
	for i := range g.Tasks {
		if i%5 != 0 {
			continue
		}
		for w := 0; w < p; w++ {
			if !rel[w][i] {
				t.Fatalf("shared task %d pruned from worker %d", i, w)
			}
		}
	}
	e := newEngine(t, core.Options{Workers: p, Mapping: m})
	got, err := enginetest.RunProgram(e, g, func(k stf.Kernel) stf.Program {
		return sched.PrunedReplay(g, k, rel)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Compare(g, want, got); err != nil {
		t.Error(err)
	}
}

func TestPropertyPartialMappingsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 50, 8)
		p := 1 + rng.Intn(4)
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			if rng.Intn(3) == 0 {
				owners[i] = stf.SharedWorker
			} else {
				owners[i] = stf.WorkerID(rng.Intn(p))
			}
		}
		e, err := core.New(core.Options{Workers: p, Mapping: sched.Table(owners)})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// claimTable paging: task IDs far beyond one page must work (pages
// allocated on demand, including gaps).
func TestClaimTablePaging(t *testing.T) {
	const n = 10_000 // crosses several 4096-entry pages
	e := newEngine(t, core.Options{Workers: 3, Mapping: sharedMapping})
	var ran atomic.Int64
	err := e.Run(0, func(s stf.Submitter) {
		for i := 0; i < n; i++ {
			s.Submit(func() { ran.Add(1) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}
