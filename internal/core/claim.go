package core

import (
	"sync"
	"sync/atomic"
)

// Partial mappings (the paper's concluding future-work direction:
// "combining both execution models, and thus requiring only partial
// mappings"). A mapping may return stf.SharedWorker for a task instead of
// a concrete worker: such a task has no static owner and is *claimed* at
// run time by the first worker whose replay reaches it — a lightweight
// dynamic load-balancing escape hatch inside the otherwise static in-order
// model.
//
// Cost: one compare-and-swap per unmapped task for the winning worker and
// one atomic load for everyone else, plus one bit of shared memory per
// unmapped task — a middle ground between the paper's zero-cost static
// mapping and a centralized scheduler. Mapped tasks keep the original
// zero-shared-cost path.
//
// Correctness: exactly one worker wins the claim, so each task still has a
// unique executor; the synchronization protocol of §3.4 never relied on
// *who* executes a task, only on every worker declaring it — which losers
// do, exactly as for any foreign task. In-order execution per worker is
// preserved, so the no-deadlock argument (the earliest unexecuted task is
// always runnable) carries over: if it is unclaimed, whoever reaches it
// claims it; if claimed, its claimant is at it.

// claimTable tracks claimed task IDs in fixed-size pages so that the flow
// length need not be known in advance. Pages are allocated on demand; the
// page index is guarded by a mutex but cached read-side with an atomic
// pointer, so the steady-state cost of a claim check is two atomic loads.
type claimTable struct {
	mu    sync.Mutex
	pages atomic.Pointer[[]*claimPage]
}

const claimPageBits = 12 // 4096 tasks per page

type claimPage struct {
	bits [1 << (claimPageBits - 6)]atomic.Uint64
}

func newClaimTable() *claimTable {
	t := &claimTable{}
	empty := make([]*claimPage, 0)
	t.pages.Store(&empty)
	return t
}

// tryClaim atomically claims task id; it returns true for exactly one
// caller per id. A single atomic fetch-Or decides the race: the caller that
// flipped the bit wins. Unlike a CAS loop, the Or cannot livelock-retry
// when neighboring bits of the word are being claimed concurrently.
func (t *claimTable) tryClaim(id int64) bool {
	page := t.page(id)
	word := &page.bits[(id>>6)&((1<<(claimPageBits-6))-1)]
	bit := uint64(1) << (uint(id) & 63)
	return word.Or(bit)&bit == 0
}

// claimed reports whether task id has been claimed, without claiming it and
// without allocating pages: an id beyond the allocated pages is unclaimed by
// definition. Steal scans use it to skip resolved candidates cheaply.
func (t *claimTable) claimed(id int64) bool {
	ps := *t.pages.Load()
	idx := int(id >> claimPageBits)
	if idx >= len(ps) {
		return false
	}
	word := &ps[idx].bits[(id>>6)&((1<<(claimPageBits-6))-1)]
	return word.Load()&(uint64(1)<<(uint(id)&63)) != 0
}

// page returns the page holding id, allocating it (and any gap before it)
// if needed.
func (t *claimTable) page(id int64) *claimPage {
	idx := int(id >> claimPageBits)
	if ps := *t.pages.Load(); idx < len(ps) {
		return ps[idx]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := *t.pages.Load()
	for idx >= len(ps) {
		grown := make([]*claimPage, len(ps)+1)
		copy(grown, ps)
		grown[len(ps)] = &claimPage{}
		ps = grown
	}
	t.pages.Store(&ps)
	return ps[idx]
}
