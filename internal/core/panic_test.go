package core_test

import (
	"strings"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/sched"
	"rio/internal/stf"
)

// A task panic must fail the run with a descriptive error instead of
// deadlocking the workers blocked on the panicked task's data.
func TestPanicAbortsRunWithoutDeadlock(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 3, Mapping: sched.Cyclic(3)})
	done := make(chan error, 1)
	go func() {
		done <- e.Run(1, func(s stf.Submitter) {
			s.Submit(func() { panic("boom") }, stf.W(0)) // worker 0
			s.Submit(func() {}, stf.R(0))                // worker 1 waits on data 0
			s.Submit(func() {}, stf.RW(0))               // worker 2 waits on data 0
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicking run returned nil error")
		}
		if !strings.Contains(err.Error(), "panic") {
			t.Errorf("error does not mention the panic: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked after task panic")
	}
}

func TestPanicWithReductionLockHeldDoesNotWedge(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Cyclic(2)})
	done := make(chan error, 1)
	go func() {
		done <- e.Run(1, func(s stf.Submitter) {
			s.Submit(func() { panic("red boom") }, stf.Red(0))
			s.Submit(func() {}, stf.Red(0))
			s.Submit(func() {}, stf.R(0))
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicking reduction returned nil error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run wedged on the reduction mutex after a panic")
	}
}

func TestRunAfterPanicStillWorks(t *testing.T) {
	// The engine is reusable after a failed run.
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Cyclic(2)})
	if err := e.Run(1, func(s stf.Submitter) {
		s.Submit(func() { panic("x") }, stf.W(0))
	}); err == nil {
		t.Fatal("no error from panicking run")
	}
	ok := false
	if err := e.Run(1, func(s stf.Submitter) {
		s.Submit(func() { ok = true }, stf.W(0))
	}); err != nil {
		t.Fatalf("engine unusable after failed run: %v", err)
	}
	if !ok {
		t.Error("second run did not execute")
	}
}
