// Package core implements the paper's contribution: the RIO (Run-In-Order)
// decentralized in-order execution model for STF programs (paper §3).
//
// Every worker replays the whole task flow (decentralized task management,
// §3.3). A deterministic mapping function assigns each task to exactly one
// worker (§3.2). A worker executes the tasks mapped to it, in task-flow
// order, and merely *declares* — a couple of writes to private memory — the
// tasks mapped to others. Data accesses are synchronized by the
// decentralized protocol of §3.4 (Algorithms 1 and 2): per-data shared
// state records what has *executed*, per-worker local state records what
// has been *encountered*, and a worker acquiring a data object waits until
// the two agree.
//
// Beyond the paper's strict R/W protocol, the package implements the §3.4
// extension it points to (data versioning à la SuperGlue): commutative
// Reduction accesses. A run of consecutive reductions is ordered like a
// single write with respect to everything around it, but its members may
// execute in any order, serialized by a per-data mutex.
package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"rio/internal/stf"
)

// cacheLine is the coherence granularity the state layout is padded to.
// 64 bytes on every platform this runs on (x86-64, arm64).
const cacheLine = 64

// sharedCell is the shared half of a data object's synchronization state
// (Algorithm 2) plus the event gate parked waiters block on. It is wrapped
// by sharedState, which pads it to an exact cache-line multiple — keep the
// fields here and the padding arithmetic there.
//
// Invariant: at most one task at a time is between get_write and
// terminate_write on a given data object (guaranteed by the protocol
// itself), so lastExecutedWrite is only ever advanced by a single writer;
// readers and reducers increment their counters concurrently.
type sharedCell struct {
	// lastExecutedWrite is the TaskID of the last write performed on the
	// data (stf.NoTask before any write).
	lastExecutedWrite atomic.Int64
	// nbReadsSinceWrite counts the reads performed since the last write.
	nbReadsSinceWrite atomic.Int64
	// nbRedsSinceWrite counts the reductions performed since the last
	// write.
	nbRedsSinceWrite atomic.Int64
	// waiters counts the workers currently registered with the park gate.
	// Terminates check it with one atomic load and skip the gate entirely
	// when it is zero, so the uncontended release path pays nothing for
	// the parking machinery.
	waiters atomic.Int32
	// redMu serializes reduction task bodies on this data (members of a
	// reduction run commute but must not overlap).
	redMu sync.Mutex
	// parkMu guards parkCh. It is only ever taken by already-slow waiters
	// and by terminates that observed waiters != 0.
	parkMu sync.Mutex
	// parkCh is the park gate: a channel closed (and reset to nil) by the
	// next wake, allocated lazily by the first parking waiter of an epoch.
	// nil means nobody is parked and nobody is about to park on it.
	parkCh chan struct{}
}

// sharedState pads sharedCell to an exact multiple of the cache line, so a
// []sharedState never lets two data objects' protocol words share a line
// (false sharing between unrelated readers/writers). The pad is computed,
// not hand-counted: it stays correct when the cell grows.
type sharedState struct {
	sharedCell
	_ [(cacheLine - unsafe.Sizeof(sharedCell{})%cacheLine) % cacheLine]byte
}

// parkChan returns the gate channel to park on, allocating it if this
// waiter opens the epoch. Callers must already be registered (waiters > 0)
// and must re-check their readiness condition *after* this call, before
// blocking — that ordering is what makes the gate lost-wakeup-free (see
// the proof sketch on wake).
func (s *sharedCell) parkChan() chan struct{} {
	s.parkMu.Lock()
	ch := s.parkCh
	if ch == nil {
		ch = make(chan struct{})
		s.parkCh = ch
	}
	s.parkMu.Unlock()
	return ch
}

// wake publishes one wake to every waiter currently parked (or about to
// park) on the gate. Terminates call it after their atomic counter stores.
//
// No lost wakeups: all atomics are sequentially consistent (Go memory
// model), so for any releaser/waiter pair either (a) the releaser's
// waiters.Load observes the waiter's registration — then the releaser takes
// parkMu and closes the channel the waiter fetched (or the waiter fetches
// the post-close nil→fresh channel, in which case its mandatory re-check
// after the fetch observes the already-published counters); or (b) the
// load observes no registration — then the waiter registered later, and its
// re-check (which follows its registration) observes the counters published
// before the load. Either way the waiter cannot block on a state that has
// already been released. Spurious wakes are benign: parked waiters loop on
// their condition.
func (s *sharedCell) wake() {
	if s.waiters.Load() == 0 {
		return
	}
	s.parkMu.Lock()
	if ch := s.parkCh; ch != nil {
		close(ch)
		s.parkCh = nil
	}
	s.parkMu.Unlock()
}

// recycle resets the shared protocol counters to their pre-flow state for a
// new epoch. Callers must guarantee quiescence: no worker is between a get
// and a terminate on this data, and no waiter is parked on the gate (the
// streaming session calls it from the epoch barrier's last arriver, after
// every worker has finished the window). The reduction mutex and park gate
// need no reset — an unlocked mutex and a nil gate channel *are* their idle
// states, and the no-lost-wakeup protocol re-derives the gate per epoch.
func (s *sharedCell) recycle() {
	s.lastExecutedWrite.Store(int64(stf.NoTask))
	s.nbReadsSinceWrite.Store(0)
	s.nbRedsSinceWrite.Store(0)
}

// localState is the private half, one per (worker, data) pair: what this
// worker has encountered in the task flow so far, whether or not the
// corresponding tasks have executed yet. Only its owning worker touches it,
// so plain (non-atomic) fields suffice — this is what makes declaring a
// foreign task nearly free (one or two private writes per dependency,
// §3.3).
type localState struct {
	// lastRegisteredWrite is the TaskID of the last write encountered.
	lastRegisteredWrite int64
	// nbReadsSinceWrite counts the reads encountered since that write.
	nbReadsSinceWrite int64
	// nbRedsSinceWrite counts the reductions encountered since that
	// write.
	nbRedsSinceWrite int64
	// nbRedsBeforeRun is the reduction count at the start of the current
	// reduction run (any non-reduction access closes the run). A
	// reduction waits only for reductions of *earlier* runs, never for
	// members of its own run — that is what lets them commute.
	nbRedsBeforeRun int64
}

// localArena backs every worker's localState slice with one flat
// allocation: worker w's states live at [w*stride, w*stride+numData), a
// contiguous run indexed directly by data ID (no pointer chasing on the
// declare path). The stride leaves a full guard cache line between
// neighboring workers' segments, so no two workers' local states can share
// a line regardless of how the allocator aligned the backing array —
// declares are private-memory writes in the coherence sense, not just the
// ownership sense.
type localArena struct {
	backing []localState
	stride  int
	numData int
}

// localStatesPerLine is how many localState entries fit one cache line;
// the arena's guard gap is expressed in entries. A compile-time-constant
// relationship the white-box layout test pins.
const localStatesPerLine = cacheLine / int(unsafe.Sizeof(localState{}))

func newLocalArena(workers, numData int) *localArena {
	stride := numData
	if r := stride % localStatesPerLine; r != 0 {
		stride += localStatesPerLine - r
	}
	stride += localStatesPerLine // full guard line between workers
	a := &localArena{
		backing: make([]localState, workers*stride),
		stride:  stride,
		numData: numData,
	}
	for i := range a.backing {
		a.backing[i].recycle()
	}
	return a
}

// worker returns worker w's localState segment.
func (a *localArena) worker(w int) []localState {
	return a.backing[w*a.stride : w*a.stride+a.numData : w*a.stride+a.numData]
}

// recycle resets a worker's private view of one data object for a new
// epoch. Each worker calls it for the data its next window touches before
// replaying the window — private memory, so no synchronization is involved.
func (l *localState) recycle() {
	*l = localState{lastRegisteredWrite: int64(stf.NoTask)}
}

// declareRead implements declare_read: the worker encountered a read it
// will not execute. A read also closes any open reduction run.
func (l *localState) declareRead() {
	l.nbReadsSinceWrite++
	l.nbRedsBeforeRun = l.nbRedsSinceWrite
}

// declareWrite implements declare_write(task_id). A write resets all
// since-write counters.
func (l *localState) declareWrite(id int64) {
	l.nbReadsSinceWrite = 0
	l.lastRegisteredWrite = id
	l.nbRedsSinceWrite = 0
	l.nbRedsBeforeRun = 0
}

// declareRed registers an encountered reduction; it extends (or opens) the
// current run.
func (l *localState) declareRed() { l.nbRedsSinceWrite++ }

// readReady reports whether a read registered against l may proceed: every
// write *and reduction* encountered before it has executed (get_read's
// condition).
func (l *localState) readReady(s *sharedState) bool {
	return s.lastExecutedWrite.Load() == l.lastRegisteredWrite &&
		s.nbRedsSinceWrite.Load() == l.nbRedsSinceWrite
}

// writeReady reports whether a write registered against l may proceed:
// every previously encountered write, read and reduction has executed
// (get_write's condition). The write-ID check must pass before the counts
// are meaningful; callers wait for the conditions in that order.
func (l *localState) writeReady(s *sharedState) bool {
	return s.lastExecutedWrite.Load() == l.lastRegisteredWrite &&
		s.nbReadsSinceWrite.Load() == l.nbReadsSinceWrite &&
		s.nbRedsSinceWrite.Load() == l.nbRedsSinceWrite
}

// redReady reports whether a reduction may proceed: every earlier write and
// read has executed, and every reduction of *earlier runs* has executed
// (>= because members of the current run may have completed too).
func (l *localState) redReady(s *sharedState) bool {
	return s.lastExecutedWrite.Load() == l.lastRegisteredWrite &&
		s.nbReadsSinceWrite.Load() == l.nbReadsSinceWrite &&
		s.nbRedsSinceWrite.Load() >= l.nbRedsBeforeRun
}

// terminateRead implements terminate_read: publish one performed read, then
// register it locally. The wake covers waiters gated on the read count
// (writers); when nobody is parked it is a single atomic load.
func (l *localState) terminateRead(s *sharedState) {
	s.nbReadsSinceWrite.Add(1)
	s.wake()
	l.declareRead()
}

// terminateWrite implements terminate_write(task_id). The counters are
// reset *before* the write ID is published so that a waiter observing the
// new write ID can never pair it with the previous epoch's counts
// (single-writer-at-a-time is guaranteed by the protocol itself). The wake
// follows every store, so a woken waiter's re-check sees the whole
// publication.
func (l *localState) terminateWrite(s *sharedState, id int64) {
	s.nbReadsSinceWrite.Store(0)
	s.nbRedsSinceWrite.Store(0)
	s.lastExecutedWrite.Store(id)
	s.wake()
	l.declareWrite(id)
}

// terminateRed publishes one performed reduction.
func (l *localState) terminateRed(s *sharedState) {
	s.nbRedsSinceWrite.Add(1)
	s.wake()
	l.declareRed()
}
