// Package core implements the paper's contribution: the RIO (Run-In-Order)
// decentralized in-order execution model for STF programs (paper §3).
//
// Every worker replays the whole task flow (decentralized task management,
// §3.3). A deterministic mapping function assigns each task to exactly one
// worker (§3.2). A worker executes the tasks mapped to it, in task-flow
// order, and merely *declares* — a couple of writes to private memory — the
// tasks mapped to others. Data accesses are synchronized by the
// decentralized protocol of §3.4 (Algorithms 1 and 2): per-data shared
// state records what has *executed*, per-worker local state records what
// has been *encountered*, and a worker acquiring a data object waits until
// the two agree.
//
// Beyond the paper's strict R/W protocol, the package implements the §3.4
// extension it points to (data versioning à la SuperGlue): commutative
// Reduction accesses. A run of consecutive reductions is ordered like a
// single write with respect to everything around it, but its members may
// execute in any order, serialized by a per-data mutex.
package core

import (
	"sync"
	"sync/atomic"
)

// sharedState is the shared half of a data object's synchronization state
// (Algorithm 2). It occupies its own cache line to avoid false sharing
// between data objects.
//
// Invariant: at most one task at a time is between get_write and
// terminate_write on a given data object (guaranteed by the protocol
// itself), so lastExecutedWrite is only ever advanced by a single writer;
// readers and reducers increment their counters concurrently.
type sharedState struct {
	// lastExecutedWrite is the TaskID of the last write performed on the
	// data (stf.NoTask before any write).
	lastExecutedWrite atomic.Int64
	// nbReadsSinceWrite counts the reads performed since the last write.
	nbReadsSinceWrite atomic.Int64
	// nbRedsSinceWrite counts the reductions performed since the last
	// write.
	nbRedsSinceWrite atomic.Int64
	// redMu serializes reduction task bodies on this data (members of a
	// reduction run commute but must not overlap).
	redMu sync.Mutex
	_     [24]byte // pad to a 64-byte cache line
}

// localState is the private half, one per (worker, data) pair: what this
// worker has encountered in the task flow so far, whether or not the
// corresponding tasks have executed yet. Only its owning worker touches it,
// so plain (non-atomic) fields suffice — this is what makes declaring a
// foreign task nearly free (one or two private writes per dependency,
// §3.3).
type localState struct {
	// lastRegisteredWrite is the TaskID of the last write encountered.
	lastRegisteredWrite int64
	// nbReadsSinceWrite counts the reads encountered since that write.
	nbReadsSinceWrite int64
	// nbRedsSinceWrite counts the reductions encountered since that
	// write.
	nbRedsSinceWrite int64
	// nbRedsBeforeRun is the reduction count at the start of the current
	// reduction run (any non-reduction access closes the run). A
	// reduction waits only for reductions of *earlier* runs, never for
	// members of its own run — that is what lets them commute.
	nbRedsBeforeRun int64
}

// declareRead implements declare_read: the worker encountered a read it
// will not execute. A read also closes any open reduction run.
func (l *localState) declareRead() {
	l.nbReadsSinceWrite++
	l.nbRedsBeforeRun = l.nbRedsSinceWrite
}

// declareWrite implements declare_write(task_id). A write resets all
// since-write counters.
func (l *localState) declareWrite(id int64) {
	l.nbReadsSinceWrite = 0
	l.lastRegisteredWrite = id
	l.nbRedsSinceWrite = 0
	l.nbRedsBeforeRun = 0
}

// declareRed registers an encountered reduction; it extends (or opens) the
// current run.
func (l *localState) declareRed() { l.nbRedsSinceWrite++ }

// readReady reports whether a read registered against l may proceed: every
// write *and reduction* encountered before it has executed (get_read's
// condition).
func (l *localState) readReady(s *sharedState) bool {
	return s.lastExecutedWrite.Load() == l.lastRegisteredWrite &&
		s.nbRedsSinceWrite.Load() == l.nbRedsSinceWrite
}

// writeReady reports whether a write registered against l may proceed:
// every previously encountered write, read and reduction has executed
// (get_write's condition). The write-ID check must pass before the counts
// are meaningful; callers wait for the conditions in that order.
func (l *localState) writeReady(s *sharedState) bool {
	return s.lastExecutedWrite.Load() == l.lastRegisteredWrite &&
		s.nbReadsSinceWrite.Load() == l.nbReadsSinceWrite &&
		s.nbRedsSinceWrite.Load() == l.nbRedsSinceWrite
}

// redReady reports whether a reduction may proceed: every earlier write and
// read has executed, and every reduction of *earlier runs* has executed
// (>= because members of the current run may have completed too).
func (l *localState) redReady(s *sharedState) bool {
	return s.lastExecutedWrite.Load() == l.lastRegisteredWrite &&
		s.nbReadsSinceWrite.Load() == l.nbReadsSinceWrite &&
		s.nbRedsSinceWrite.Load() >= l.nbRedsBeforeRun
}

// terminateRead implements terminate_read: publish one performed read, then
// register it locally.
func (l *localState) terminateRead(s *sharedState) {
	s.nbReadsSinceWrite.Add(1)
	l.declareRead()
}

// terminateWrite implements terminate_write(task_id). The counters are
// reset *before* the write ID is published so that a waiter observing the
// new write ID can never pair it with the previous epoch's counts
// (single-writer-at-a-time is guaranteed by the protocol itself).
func (l *localState) terminateWrite(s *sharedState, id int64) {
	s.nbReadsSinceWrite.Store(0)
	s.nbRedsSinceWrite.Store(0)
	s.lastExecutedWrite.Store(id)
	l.declareWrite(id)
}

// terminateRed publishes one performed reduction.
func (l *localState) terminateRed(s *sharedState) {
	s.nbRedsSinceWrite.Add(1)
	l.declareRed()
}
