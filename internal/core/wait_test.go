package core_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// TestWaitEscalatesThroughSleepPhase forces the full spin → yield → sleep
// escalation: a tiny spin budget and a producer that holds the dependency
// for several milliseconds.
func TestWaitEscalatesThroughSleepPhase(t *testing.T) {
	const delay = 5 * time.Millisecond
	e := newEngine(t, core.Options{
		Workers:   2,
		Mapping:   sched.Cyclic(2),
		SpinLimit: 1,
	})
	var got int
	err := e.Run(1, func(s stf.Submitter) {
		s.Submit(func() {
			time.Sleep(delay)
			got = 1
		}, stf.W(0))
		s.Submit(func() { got *= 10 }, stf.RW(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("got = %d, want 10 (dependency violated)", got)
	}
	// Worker 1 (owner of task 1) must have accumulated idle time on the
	// order of the producer's delay.
	st := e.Stats()
	if idle := st.Workers[1].Idle; idle < delay/2 {
		t.Errorf("worker 1 idle = %v, want >= %v (wait not accounted)", idle, delay/2)
	}
}

// TestHeavyOversubscription runs 16 workers on one hardware thread; the
// escalation must keep the engine live on dependency-heavy graphs. The
// test previously relied on the host happening to be single-core —
// GOMAXPROCS is now pinned to 1 so the oversubscription is real
// everywhere: without the Gosched/sleep escalation phases, 16 goroutines
// busy-polling one thread would livelock (a pure busy-poll never yields,
// so the producing goroutine could never be scheduled).
func TestHeavyOversubscription(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for _, g := range []*stf.Graph{
		graphs.Chain(200),
		graphs.LU(6),
		graphs.RandomDeps(400, 16, 2, 1, 77),
	} {
		e := newEngine(t, core.Options{Workers: 16, Mapping: sched.Cyclic(16)})
		if err := enginetest.Check(e, g); err != nil {
			t.Errorf("%s p=16: %v", g.Name, err)
		}
	}
}

// TestOversubscribedTinySpinLimit is the same pressure with a one-iteration
// spin budget: every wait escalates immediately, exercising the yield and
// sleep phases under contention (and proving the budget is not required
// for correctness, only latency).
func TestOversubscribedTinySpinLimit(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	e := newEngine(t, core.Options{Workers: 8, Mapping: sched.Cyclic(8), SpinLimit: 1})
	if err := enginetest.Check(e, graphs.Chain(300)); err != nil {
		t.Fatal(err)
	}
}

// TestMixedClosureAndRecordedSubmission interleaves the two submission
// paths in one program; IDs must stay consistent across workers.
func TestMixedClosureAndRecordedSubmission(t *testing.T) {
	rec := stf.Task{ID: 1, Accesses: []stf.Access{stf.RW(0)}}
	rec2 := stf.Task{ID: 3, Accesses: []stf.Access{stf.R(0), stf.W(1)}}
	var mu sync.Mutex
	var order []stf.TaskID
	log := func(id stf.TaskID) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	kern := func(tk *stf.Task, _ stf.WorkerID) { log(tk.ID) }

	e := newEngine(t, core.Options{Workers: 3, Mapping: sched.Cyclic(3)})
	err := e.Run(2, func(s stf.Submitter) {
		s.Submit(func() { log(0) }, stf.W(0)) // id 0
		s.SubmitTask(&rec, kern)              // id 1
		s.Submit(func() { log(2) }, stf.R(0)) // id 2
		s.SubmitTask(&rec2, kern)             // id 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("executed %d tasks, want 4 (order %v)", len(order), order)
	}
	// Tasks 0 and 1 chain on data 0; 2 and 3 read data 0 after 1.
	pos := map[stf.TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[0] > pos[1] || pos[1] > pos[2] || pos[1] > pos[3] {
		t.Errorf("order %v violates dependencies", order)
	}
}

// TestChainLatency sanity-checks the dependency hand-off path: a long
// strict chain across workers must finish and execute strictly in order.
func TestChainLatency(t *testing.T) {
	const n = 2000
	g := graphs.Chain(n)
	for _, p := range []int{2, 5} {
		e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
		if err := enginetest.Check(e, g); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if e.Stats().Executed() != n {
			t.Fatalf("p=%d: executed %d", p, e.Stats().Executed())
		}
	}
}

// TestRunWithDifferentNumData reuses one engine across runs with different
// data counts (state must be re-allocated per run).
func TestRunWithDifferentNumData(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Cyclic(2)})
	for _, g := range []*stf.Graph{
		graphs.RandomDeps(100, 4, 1, 1, 1),
		graphs.RandomDeps(100, 64, 2, 1, 2),
		graphs.Independent(50),
	} {
		if err := enginetest.Check(e, g); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}
