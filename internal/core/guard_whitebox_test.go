package core

// White-box regression tests for two audited hot-path mechanisms:
//
//   - the replay-divergence guard's stream hash (fold) must distinguish
//     access order and access mode *within* one task — a commutative or
//     mode-blind fold would let real divergences collide;
//   - the spin-then-park dependency wait must budget its busy-poll phase
//     per *wait*, not per worker lifetime — a leaked budget would push
//     every later wait straight into the sleep phase.

import (
	"testing"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// foldHash folds one task into a fresh guard and returns the stream hash.
func foldHash(id stf.TaskID, accesses ...stf.Access) uint64 {
	g := &guardState{}
	g.fold(id, accesses)
	return g.hash
}

// The fold must be order-sensitive within a task: [R(x),W(y)] and
// [W(y),R(x)] are different replays even though they carry the same
// access set (audited: mix64 chains sequentially, so this holds).
func TestGuardFoldDistinguishesAccessOrder(t *testing.T) {
	a := foldHash(7, stf.R(1), stf.W(2))
	b := foldHash(7, stf.W(2), stf.R(1))
	if a == b {
		t.Fatalf("fold([R(1),W(2)]) == fold([W(2),R(1)]) = %#x: access order lost", a)
	}
	// Three accesses, rotated: all distinct.
	h1 := foldHash(7, stf.R(1), stf.R(2), stf.R(3))
	h2 := foldHash(7, stf.R(2), stf.R(3), stf.R(1))
	h3 := foldHash(7, stf.R(3), stf.R(1), stf.R(2))
	if h1 == h2 || h1 == h3 || h2 == h3 {
		t.Fatalf("rotated access lists collide: %#x %#x %#x", h1, h2, h3)
	}
}

// The fold must be mode-sensitive: the same data accessed R vs RW vs W vs
// Red are different protocol behaviors (audited: the access word packs
// data<<8|mode, so the mode bits survive).
func TestGuardFoldDistinguishesAccessMode(t *testing.T) {
	modes := []stf.Access{stf.R(3), stf.W(3), stf.RW(3), stf.Red(3)}
	seen := make(map[uint64]stf.AccessMode, len(modes))
	for _, a := range modes {
		h := foldHash(5, a)
		if prev, dup := seen[h]; dup {
			t.Fatalf("mode %v and mode %v fold to the same hash %#x", prev, a.Mode, h)
		}
		seen[h] = a.Mode
	}
}

// Folding the same accesses under different task IDs, or the same tasks
// in a different sequence, must differ: the guard hashes the whole
// replayed stream, not a bag of tasks.
func TestGuardFoldDistinguishesTaskSequence(t *testing.T) {
	if foldHash(1, stf.R(0)) == foldHash(2, stf.R(0)) {
		t.Fatal("task ID not folded")
	}
	a := &guardState{}
	a.fold(1, []stf.Access{stf.R(0)})
	a.fold(2, []stf.Access{stf.W(0)})
	b := &guardState{}
	b.fold(2, []stf.Access{stf.W(0)})
	b.fold(1, []stf.Access{stf.R(0)})
	if a.hash == b.hash {
		t.Fatalf("task order lost: both streams fold to %#x", a.hash)
	}
}

// The access word packs data<<8|mode; neighbouring data IDs with swapped
// mode bits are the classic packing collision ((d,mode+256) vs (d+1,mode))
// — impossible while modes stay below 256, which this test pins.
func TestGuardFoldPackingHeadroom(t *testing.T) {
	for _, m := range []stf.AccessMode{stf.None, stf.ReadOnly, stf.Red(0).Mode, stf.W(0).Mode, stf.RW(0).Mode} {
		if int64(m) >= 1<<8 {
			t.Fatalf("access mode %d no longer fits the 8-bit field of the guard's packing", m)
		}
	}
	if foldHash(1, stf.Access{Data: 0, Mode: stf.ReadOnly}) == foldHash(1, stf.Access{Data: 1, Mode: stf.None}) {
		t.Fatal("packing collision between (data 0, mode 1) and (data 1, mode 0)")
	}
}

// The spin budget must be per wait: a worker that waits many times, each
// resolving within the busy-poll phase, must never escalate to the
// publish/sleep phase (audited: `spin` is a local of wait(), so the budget
// resets — this test fails if it is ever hoisted into worker state).
func TestWaitSpinBudgetIsPerWait(t *testing.T) {
	// WaitSleep pins the busy budget to the engine's SpinLimit (under
	// WaitAdaptive the per-worker budget floats by design).
	e, err := New(Options{Workers: 1, SpinLimit: 1000, StallTimeout: time.Minute, WaitPolicy: stf.WaitSleep})
	if err != nil {
		t.Fatal(err)
	}
	h := &workerHealth{}
	sh := &sharedState{}
	s := &submitter{eng: e, abort: &abortState{}, health: h, prog: &trace.ProgressCell{}}
	const waits = 50
	for i := 0; i < waits; i++ {
		polls := 0
		s.wait(3, stf.R(0), sh, func() bool {
			polls++
			// Resolve well inside one wait's busy budget, but so that the
			// cumulative polls across waits far exceed SpinLimit: a budget
			// leaked across waits escalates by the third iteration.
			return polls > 40
		})
		if h.phase.Load() == phaseWait {
			t.Fatalf("wait %d escalated to the slow phase: spin budget not per-wait", i)
		}
	}
	// Control: a single wait exceeding the budget must escalate and then
	// return the worker to the replay phase.
	polls := 0
	s.wait(4, stf.W(0), sh, func() bool {
		polls++
		return polls > 1000+1024+3 // past busy and yield phases
	})
	if got := h.phase.Load(); got != phaseReplay {
		t.Fatalf("after a slow wait, phase = %d, want %d (replay)", got, phaseReplay)
	}
	if h.task.Load() != 4 || h.data.Load() != 0 {
		t.Fatalf("slow wait published task %d data %d, want 4/0", h.task.Load(), h.data.Load())
	}
}
