package core

// Bounded, dependency-safe work stealing (Options.Steal): the imbalance
// escape hatch of the hybrid execution model. See internal/stf/steal.go for
// the safety argument (flow-prefix counter snapshots prove readiness; a
// per-task atomic claim arbitrates the executor; the thief publishes the
// canonical terminate effects), and DESIGN.md §13 for the full proof.
//
// Mechanically there are two modes, chosen by whether the run carries
// compiled steal metadata:
//
//   - ring mode (closure replay): as a worker's replay declares a foreign
//     task owned by a victim, it snapshots its private counters for the
//     task's accesses — those *are* the task's registered values — into a
//     bounded candidate ring. Steal attempts scan the ring front (earliest
//     task first), drop candidates already claimed elsewhere, and claim the
//     first candidate whose shared cells prove readiness.
//   - table mode (compiled replay): stf.BuildStealMeta precomputed every
//     task's owner and registered values, so no recording is needed; a
//     per-victim cursor walks each victim's owned tasks in flow order and
//     always points at the victim's next unclaimed task.
//
// Steal attempts fire from two places: the slow phase of a dependency wait
// (the worker is provably not runnable locally) and the end-of-replay drain
// (the worker has nothing left of its own; it keeps stealing until every
// candidate is claimed or the run aborts). Both sites poll the abort latch.

import (
	"runtime"
	"time"

	"rio/internal/stf"
)

// stealCand is one recorded steal opportunity of ring mode.
type stealCand struct {
	id       stf.TaskID
	owner    stf.WorkerID
	accesses []stf.Access
	// reqs are the task's registered counter values, snapshotted from the
	// recording worker's private state at declare time (one per access).
	reqs []stf.StealReq
	run  func()
}

// stealState is one worker's stealing machinery, allocated only when
// Options.Steal is set — a nil-policy run pays a single pointer test per
// task and allocates nothing.
type stealState struct {
	scanBound int
	// victims is the resolved scan order: the policy's ranked list (self
	// excluded) or, when empty, every other worker in neighbor-ring order
	// starting after the thief.
	victims []stf.WorkerID
	// victimSet indexes victims by worker for the ring-mode recording
	// filter.
	victimSet []bool
	ringCap   int
	ring      []stealCand

	// Table mode (nil meta selects ring mode). tasks and kernel are the
	// current run's (or window's) task table and dispatcher; cursors is
	// per-victim (parallel to victims) and points into meta.ByOwner.
	meta    *stf.StealMeta
	tasks   []stf.Task
	kernel  stf.Kernel
	cursors []int
}

// newStealState resolves a policy against this worker's identity. workers
// is the engine's worker count.
func newStealState(p *stf.StealPolicy, self stf.WorkerID, workers int) *stealState {
	st := &stealState{
		scanBound: p.ScanBound(),
		victimSet: make([]bool, workers),
		ringCap:   p.RingCap(),
	}
	if len(p.Victims) > 0 {
		for _, v := range p.Victims {
			if v != self && v >= 0 && int(v) < workers && !st.victimSet[v] {
				st.victims = append(st.victims, v)
				st.victimSet[v] = true
			}
		}
	} else {
		for i := 1; i < workers; i++ {
			v := stf.WorkerID((int(self) + i) % workers)
			st.victims = append(st.victims, v)
			st.victimSet[v] = true
		}
	}
	st.cursors = make([]int, len(st.victims))
	return st
}

// reset rearms the state for a new run or stream window: table mode when
// the caller supplies compiled steal metadata, ring mode otherwise. Steal
// state never survives an epoch boundary — the session resets it before
// each window and drains it before the window's barrier.
func (st *stealState) reset(meta *stf.StealMeta, tasks []stf.Task, kernel stf.Kernel) {
	st.ring = st.ring[:0]
	st.meta, st.tasks, st.kernel = meta, tasks, kernel
	for i := range st.cursors {
		st.cursors[i] = 0
	}
}

// wants reports whether a foreign task owned by owner should be recorded as
// a ring-mode steal candidate.
func (st *stealState) wants(owner stf.WorkerID) bool {
	return st.meta == nil && owner >= 0 && int(owner) < len(st.victimSet) &&
		st.victimSet[owner] && len(st.ring) < st.ringCap
}

// recordStealCand snapshots the registered counter values of a foreign task
// this worker's replay just reached — before declaring it, so the private
// counters still describe the flow prefix strictly before the task, which
// is exactly what its get_* calls will compare against. Only called when
// st.wants(owner) held.
func (s *submitter) recordStealCand(owner stf.WorkerID, id stf.TaskID, accesses []stf.Access, run func()) {
	reqs := make([]stf.StealReq, len(accesses))
	for i, a := range accesses {
		lo := &s.local[a.Data]
		reqs[i] = stf.StealReq{
			Data:       a.Data,
			Mode:       a.Mode,
			LastWrite:  lo.lastRegisteredWrite,
			Reads:      lo.nbReadsSinceWrite,
			Reds:       lo.nbRedsSinceWrite,
			RedsBefore: lo.nbRedsBeforeRun,
		}
	}
	s.steal.ring = append(s.steal.ring, stealCand{
		id: id, owner: owner, accesses: accesses, reqs: reqs, run: run,
	})
}

// trySteal makes one bounded steal attempt and reports whether a task was
// claimed and executed (or claimed and failed — either way the caller's
// local picture changed and its wait condition is worth re-checking).
func (s *submitter) trySteal() bool {
	if s.steal.meta != nil {
		return s.tryStealTable()
	}
	return s.tryStealRing()
}

// tryStealRing scans the candidate ring front: candidates claimed elsewhere
// are dropped (their executor is decided), up to scanBound live candidates
// are probed for readiness, and the first ready one is claimed by CAS and
// executed. A lost CAS (the owner reached the task, or another thief beat
// us) drops the candidate and counts a StealFailed.
func (s *submitter) tryStealRing() bool {
	st := s.steal
	ring := st.ring
	out := ring[:0]
	probed := 0
	stole := false
	for i := range ring {
		c := ring[i]
		if stole || probed >= st.scanBound {
			out = append(out, c)
			continue
		}
		if s.claims.claimed(int64(c.id)) {
			continue // resolved elsewhere: drop
		}
		probed++
		if !s.stealReady(c.reqs) {
			out = append(out, c)
			continue
		}
		if !s.claims.tryClaim(int64(c.id)) {
			s.noteStealFailed()
			continue // lost the race at the last moment: drop
		}
		s.stealExec(c.owner, c.id, c.accesses, c.run)
		stole = true
	}
	st.ring = out
	return stole
}

// tryStealTable probes each victim's next unclaimed owned task (per-victim
// cursors over the compiled steal metadata), bounded by scanBound probes.
func (s *submitter) tryStealTable() bool {
	st := s.steal
	probed := 0
	for vi, v := range st.victims {
		if probed >= st.scanBound {
			return false
		}
		list := st.meta.ByOwner[v]
		cur := st.cursors[vi]
		for cur < len(list) && s.claims.claimed(int64(list[cur])) {
			cur++
		}
		st.cursors[vi] = cur
		if cur >= len(list) {
			continue
		}
		probed++
		idx := list[cur]
		if !s.stealReady(st.meta.Reqs[idx]) {
			continue
		}
		if !s.claims.tryClaim(int64(idx)) {
			st.cursors[vi] = cur + 1
			s.noteStealFailed()
			continue
		}
		st.cursors[vi] = cur + 1
		t := &st.tasks[idx]
		k := st.kernel
		s.stealExec(v, stf.TaskID(idx), t.Accesses, func() { k(t, s.worker) })
		return true
	}
	return false
}

// stealReady checks a candidate's registered values against the live shared
// cells — the same readiness predicate its owner's get_* calls would
// evaluate, valid from any worker because the values describe the flow, not
// the evaluator. Once true it stays true (see internal/stf/steal.go), so a
// subsequent claim cannot outrun the proof.
func (s *submitter) stealReady(reqs []stf.StealReq) bool {
	for i := range reqs {
		r := &reqs[i]
		sh := &s.shared[r.Data]
		if !r.Ready(sh.lastExecutedWrite.Load(), sh.nbReadsSinceWrite.Load(), sh.nbRedsSinceWrite.Load()) {
			return false
		}
	}
	return true
}

// stealExec runs a task this worker just claimed from owner: the stolen
// twin of execLocked. The lifecycle (reduction locks, health, hooks, retry)
// is identical; the completion publication differs — the thief performs
// shared-only terminates (releaseStolen), because its *own* replay declares
// the task separately at its flow position (it already has, in ring mode;
// it may not have reached it yet, in table mode — either way the private
// bookkeeping belongs to the replay, not to the execution).
func (s *submitter) stealExec(owner stf.WorkerID, id stf.TaskID, accesses []stf.Access, run func()) {
	if h := s.hooks; h != nil && h.OnTaskSteal != nil {
		h.OnTaskSteal(s.worker, owner, id)
	}
	if s.lockReductions(accesses) {
		defer s.unlockReductions(accesses)
	}
	if h := s.health; h != nil {
		h.setExec(int64(id))
		defer h.endExec()
	}
	s.prog.SetCurrent(id)
	if h := s.hooks; h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(s.worker, id)
	}
	if s.retry != nil {
		if !s.runAttempts(accesses, int64(id), run) {
			s.prog.SetCurrent(stf.NoTask)
			return // terminal failure: completion stays unpublished
		}
	} else if s.eng.noAcct {
		run()
	} else {
		t0 := time.Now()
		run()
		s.ws.Task += time.Since(t0)
	}
	if h := s.hooks; h != nil && h.OnTaskEnd != nil {
		h.OnTaskEnd(s.worker, id)
	}
	s.prog.SetCurrent(stf.NoTask)
	s.releaseStolen(accesses, int64(id))
	s.ws.Executed++
	s.prog.StoreExecuted(s.ws.Executed)
	s.ws.Stolen++
	s.prog.StoreStolen(s.ws.Stolen)
	if s.track {
		s.done = append(s.done, id)
	}
}

// releaseStolen publishes a stolen task's completion to the shared cells:
// the terminate_* protocol minus the local declare (see stealExec). The
// published values are the task's own — terminate_write stores the task's
// ID — so downstream waiters observe exactly what the owner would have
// published: the canonical order is preserved regardless of the executor.
func (s *submitter) releaseStolen(accesses []stf.Access, id int64) {
	for _, a := range accesses {
		sh := &s.shared[a.Data]
		switch {
		case a.Mode.Writes():
			sh.nbReadsSinceWrite.Store(0)
			sh.nbRedsSinceWrite.Store(0)
			sh.lastExecutedWrite.Store(id)
			sh.wake()
		case a.Mode.Commutes():
			sh.nbRedsSinceWrite.Add(1)
			sh.wake()
		default:
			sh.nbReadsSinceWrite.Add(1)
			sh.wake()
		}
	}
}

func (s *submitter) noteStealFailed() {
	s.ws.StealFailed++
	s.prog.StoreStealFailed(s.ws.StealFailed)
}

// stealDrain keeps stealing after this worker's replay finished, until
// every candidate it can see is claimed (each is then executed by its
// claimant, whose own replay or drain has not finished) or the run aborts.
// This is what lets a skewed mapping approach max(critical path, n/p): the
// owners of nothing sit in drain and eat the hot worker's backlog. The
// drain precedes a stream window's barrier arrival, so no steal ever
// crosses an epoch boundary.
func (s *submitter) stealDrain() {
	idle := 0
	for s.err == nil {
		if s.abort.raised() {
			return
		}
		if s.stealDrained() {
			return
		}
		if s.trySteal() {
			idle = 0
			continue
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// stealDrained reports whether no stealable work remains in this worker's
// view: an empty ring, or every victim cursor past its victim's last
// unclaimed task.
func (s *submitter) stealDrained() bool {
	st := s.steal
	if st.meta == nil {
		return len(st.ring) == 0
	}
	for vi, v := range st.victims {
		list := st.meta.ByOwner[v]
		cur := st.cursors[vi]
		for cur < len(list) && s.claims.claimed(int64(list[cur])) {
			cur++
		}
		st.cursors[vi] = cur
		if cur < len(list) {
			return false
		}
	}
	return true
}
