package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/sched"
	"rio/internal/stf"
)

// reductionGraph: w writes, then n reductions, then a read, then n more
// reductions, then a final write and read — exercising run splitting.
func reductionGraph(n int) *stf.Graph {
	g := stf.NewGraph("reductions", 2)
	g.Add(0, 0, 0, 0, stf.W(0))
	for i := 0; i < n; i++ {
		g.Add(0, i, 0, 0, stf.Red(0))
	}
	g.Add(0, 0, 0, 0, stf.R(0), stf.W(1))
	for i := 0; i < n; i++ {
		g.Add(0, i, 0, 0, stf.Red(0))
	}
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 0, 0, 0, stf.R(0), stf.RW(1))
	return g
}

func TestReductionsMatchSequential(t *testing.T) {
	g := reductionGraph(64)
	for _, p := range []int{1, 2, 4} {
		e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
		if err := enginetest.Check(e, g); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

// A pure sum reduction: many tasks adding into one accumulator, read at
// the end. The final value is exact regardless of execution order; the
// engine must serialize the (non-atomic) additions.
func TestReductionSumExact(t *testing.T) {
	const n = 500
	const p = 4
	var sum int64
	var final int64
	e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	err := e.Run(1, func(s stf.Submitter) {
		for i := 1; i <= n; i++ {
			v := int64(i)
			s.Submit(func() { sum += v }, stf.Red(0))
		}
		s.Submit(func() { final = sum }, stf.R(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n + 1) / 2); final != want {
		t.Errorf("sum = %d, want %d (lost updates: reductions not serialized?)", final, want)
	}
}

// Interleaved reads pin the intermediate values: with reads splitting the
// runs, every prefix sum is deterministic.
func TestReductionPrefixSumsDeterministic(t *testing.T) {
	const p = 3
	var acc int64
	var snaps []int64
	e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	err := e.Run(1, func(s stf.Submitter) {
		for block := 0; block < 10; block++ {
			for i := 0; i < 7; i++ {
				s.Submit(func() { acc++ }, stf.Red(0))
			}
			s.Submit(func() { snaps = append(snaps, acc) }, stf.RW(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 10 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	for i, v := range snaps {
		if want := int64(7 * (i + 1)); v != want {
			t.Errorf("snapshot %d = %d, want %d", i, v, want)
		}
	}
}

// Tasks reducing into two accumulators at once must not deadlock (locks
// are taken in data order) and must stay exact.
func TestMultiReductionNoDeadlock(t *testing.T) {
	const n = 200
	const p = 4
	var a, b int64
	var finalA, finalB int64
	e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	err := e.Run(2, func(s stf.Submitter) {
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				s.Submit(func() { a++; b++ }, stf.Red(0), stf.Red(1))
			} else {
				s.Submit(func() { b++; a++ }, stf.Red(1), stf.Red(0))
			}
		}
		s.Submit(func() { finalA, finalB = a, b }, stf.R(0), stf.R(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalA != n || finalB != n {
		t.Errorf("a=%d b=%d, want %d each", finalA, finalB, n)
	}
}

func TestPropertyReductionGraphsSequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraphWithReductions(rng, 50, 8)
		p := 1 + rng.Intn(4)
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			owners[i] = stf.WorkerID(rng.Intn(p))
		}
		e, err := core.New(core.Options{Workers: p, Mapping: sched.Table(owners)})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 100}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPrunedReductionEquivalence(t *testing.T) {
	g := reductionGraph(32)
	p := 3
	m := sched.Cyclic(p)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	rel := sched.Relevant(g, m, p)
	e := newEngine(t, core.Options{Workers: p, Mapping: m})
	got, err := enginetest.RunProgram(e, g, func(k stf.Kernel) stf.Program {
		return sched.PrunedReplay(g, k, rel)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enginetest.Compare(g, want, got); err != nil {
		t.Error(err)
	}
}
