package core_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func compile(t *testing.T, g *stf.Graph, m stf.Mapping, p int, rel [][]bool) *stf.CompiledProgram {
	t.Helper()
	cp, err := stf.Compile(g, m, p, rel)
	if err != nil {
		t.Fatalf("compile %s p=%d: %v", g.Name, p, err)
	}
	return cp
}

// The compiled counterpart of TestSequentialConsistencyMatrix: every
// workload, worker count and mapping must produce the sequential reference
// result through the compiled execution loop too — both unpruned and with
// §3.5 pruning applied at compile time.
func TestCompiledMatchesSequentialMatrix(t *testing.T) {
	workloads := []*stf.Graph{
		graphs.Independent(200),
		graphs.RandomDeps(300, 16, 2, 1, 42),
		graphs.GEMM(4),
		graphs.LU(5),
		graphs.Cholesky(5),
		graphs.Wavefront(6, 6),
		reductionGraph(64),
	}
	for _, g := range workloads {
		for _, p := range []int{1, 2, 3, 7} {
			mappings := map[string]stf.Mapping{
				"cyclic": sched.Cyclic(p),
				"block":  sched.Block(len(g.Tasks), p),
			}
			for mname, m := range mappings {
				e := newEngine(t, core.Options{Workers: p, Mapping: m})
				cp := compile(t, g, m, p, nil)
				if err := enginetest.CheckCompiled(e, g, cp); err != nil {
					t.Errorf("%s p=%d mapping=%s: %v", g.Name, p, mname, err)
				}
				pruned := compile(t, g, m, p, sched.Relevant(g, m, p))
				if err := enginetest.CheckCompiled(e, g, pruned); err != nil {
					t.Errorf("%s p=%d mapping=%s pruned: %v", g.Name, p, mname, err)
				}
			}
		}
	}
}

// Compiled and closure replay must agree on the run statistics for a
// complete run; Declared comes from the compile-time stream counts.
func TestCompiledStats(t *testing.T) {
	g := graphs.LU(5)
	p := 3
	m := sched.Cyclic(p)
	e := newEngine(t, core.Options{Workers: p, Mapping: m})
	cp := compile(t, g, m, p, nil)
	if err := e.RunCompiled(cp, func(*stf.Task, stf.WorkerID) {}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Executed() != int64(len(g.Tasks)) {
		t.Errorf("executed %d, want %d", st.Executed(), len(g.Tasks))
	}
	if want := int64(len(g.Tasks) * (p - 1)); st.Declared() != want {
		t.Errorf("declared %d, want %d", st.Declared(), want)
	}
}

func TestCompiledValidation(t *testing.T) {
	g := graphs.Independent(10)
	cp := compile(t, g, sched.Cyclic(2), 2, nil)
	noop := func(*stf.Task, stf.WorkerID) {}

	e := newEngine(t, core.Options{Workers: 4})
	if err := e.RunCompiled(cp, noop); err == nil || !strings.Contains(err.Error(), "compiled for 2 workers") {
		t.Errorf("worker mismatch: %v", err)
	}
	e2 := newEngine(t, core.Options{Workers: 2})
	if err := e2.RunCompiled(nil, noop); err == nil || !strings.Contains(err.Error(), "nil compiled program") {
		t.Errorf("nil program: %v", err)
	}
	if err := e2.RunCompiled(cp, nil); err == nil || !strings.Contains(err.Error(), "nil kernel") {
		t.Errorf("nil kernel: %v", err)
	}
}

// A panicking kernel must abort the whole compiled run promptly: workers
// blocked in dependency waits unwind through the abort flag instead of
// waiting forever for the dead worker's terminates.
func TestCompiledPanicAborts(t *testing.T) {
	g := graphs.Chain(64) // task i writes data i, reads data i-1: full serialization
	p := 2
	m := sched.Cyclic(p)
	e := newEngine(t, core.Options{Workers: p, Mapping: m})
	cp := compile(t, g, m, p, nil)
	err := e.RunCompiled(cp, func(t *stf.Task, _ stf.WorkerID) {
		if t.ID == 7 {
			panic("kaboom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic propagated", err)
	}
}

// Cancellation semantics of RunCompiledContext mirror RunContext: a
// pre-canceled context refuses to start; cancellation mid-run unwinds
// workers blocked in dependency waits.
func TestCompiledCancellation(t *testing.T) {
	g := graphs.Chain(8)
	p := 2
	m := sched.Cyclic(p)
	e := newEngine(t, core.Options{Workers: p, Mapping: m})
	cp := compile(t, g, m, p, nil)
	noop := func(*stf.Task, stf.WorkerID) {}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCompiledContext(canceled, cp, noop); err == nil || !strings.Contains(err.Error(), "not started") {
		t.Errorf("pre-canceled: %v", err)
	}

	// Mid-run: a fully serialized chain of sleeping tasks keeps the run in
	// flight long enough for the cancellation to land while workers are
	// blocked in dependency waits (same shape as TestFaultCancelMidRun).
	long := graphs.Chain(400)
	lcp := compile(t, long, m, p, nil)
	started := make(chan struct{})
	var once sync.Once
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	go func() {
		<-started
		cancelMid()
	}()
	err := e.RunCompiledContext(ctx, lcp, func(tk *stf.Task, _ stf.WorkerID) {
		if tk.ID == 0 {
			once.Do(func() { close(started) })
		}
		time.Sleep(500 * time.Microsecond)
	})
	if err == nil {
		t.Fatal("canceled compiled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
}

// A corrupted stream (unknown opcode) must fail the run, not be skipped.
func TestCompiledCorruptStream(t *testing.T) {
	g := graphs.Independent(4)
	cp := compile(t, g, sched.Cyclic(1), 1, nil)
	cp.Streams[0][2].Op = stf.OpCode(99)
	e := newEngine(t, core.Options{Workers: 1})
	if err := e.RunCompiled(cp, func(*stf.Task, stf.WorkerID) {}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("err = %v, want corrupt-stream error", err)
	}
}

// A CompiledProgram is immutable: the same program must be runnable many
// times, and on a fresh engine of the same width.
func TestCompiledProgramReuse(t *testing.T) {
	g := graphs.GEMM(3)
	p := 2
	m := sched.Cyclic(p)
	cp := compile(t, g, m, p, nil)
	for i := 0; i < 3; i++ {
		e := newEngine(t, core.Options{Workers: p, Mapping: m})
		if err := enginetest.CheckCompiled(e, g, cp); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
