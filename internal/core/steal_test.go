package core_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/faultinject"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// writeGraph: n independent tasks, task i writing data i — the simplest
// flow in which every task is stealable from the start.
func writeGraph(n int) *stf.Graph {
	g := stf.NewGraph("steal-writes", n)
	for i := 0; i < n; i++ {
		g.Add(0, i, 0, 0, stf.W(stf.DataID(i)))
	}
	return g
}

func TestStealOptionValidation(t *testing.T) {
	bad := []core.Options{
		{Workers: 2, Steal: &stf.StealPolicy{MaxScan: -1}},
		{Workers: 2, Steal: &stf.StealPolicy{Buffer: -1}},
		{Workers: 2, Steal: &stf.StealPolicy{Victims: []stf.WorkerID{-1}}},
		{Workers: 2, Steal: &stf.StealPolicy{Victims: []stf.WorkerID{2}}},
	}
	for i, o := range bad {
		if _, err := core.New(o); err == nil {
			t.Errorf("case %d: invalid steal policy accepted", i)
		}
	}
	if _, err := core.New(core.Options{Workers: 2, Steal: &stf.StealPolicy{Victims: []stf.WorkerID{0, 1}}}); err != nil {
		t.Errorf("valid steal policy rejected: %v", err)
	}
}

// A fully skewed mapping (every task on worker 0) with a task body slow
// enough that the owner cannot outrun the thieves: the idle workers'
// end-of-replay drain must pick up a substantial share of the backlog.
// This is the imbalance-escape scenario of the hybrid model, on both
// replay paths.
func TestStealSkewedDrain(t *testing.T) {
	const n = 64
	g := writeGraph(n)
	p := 4
	run := func(t *testing.T, exec func(e *core.Engine, k stf.Kernel) error) {
		var execs [n]atomic.Int32
		kern := func(tk *stf.Task, _ stf.WorkerID) {
			time.Sleep(200 * time.Microsecond)
			execs[tk.ID].Add(1)
		}
		e := newEngine(t, core.Options{Workers: p, Mapping: sched.Single(0), Steal: &stf.StealPolicy{}})
		if err := exec(e, kern); err != nil {
			t.Fatal(err)
		}
		for i := range execs {
			if got := execs[i].Load(); got != 1 {
				t.Errorf("task %d executed %d times", i, got)
			}
		}
		st := e.Stats()
		if st.Executed() != n {
			t.Errorf("executed %d, want %d", st.Executed(), n)
		}
		if st.Stolen() == 0 {
			t.Error("no steals on a fully skewed mapping with slow tasks")
		}
		if w0 := st.Workers[0].Stolen; w0 != 0 {
			t.Errorf("the lone owner stole %d tasks from itself", w0)
		}
	}
	t.Run("closure", func(t *testing.T) {
		run(t, func(e *core.Engine, k stf.Kernel) error {
			return e.Run(g.NumData, stf.Replay(g, k))
		})
	})
	t.Run("compiled", func(t *testing.T) {
		run(t, func(e *core.Engine, k stf.Kernel) error {
			return e.RunCompiled(compile(t, g, sched.Single(0), p, nil), k)
		})
	})
}

// The other trigger point: a worker blocked in a dependency wait (not done
// with its replay) must steal from the wait's slow phase. Worker 1 owns
// only the final task, which reads every data object worker 0's slow
// writes produce — so it spends the whole run inside get_read waits, and
// any steals it makes happened there.
func TestStealFromDependencyWait(t *testing.T) {
	const n = 48
	g := stf.NewGraph("steal-wait", n)
	for i := 0; i < n; i++ {
		g.Add(0, i, 0, 0, stf.W(stf.DataID(i)))
	}
	accesses := make([]stf.Access, n)
	for i := range accesses {
		accesses[i] = stf.R(stf.DataID(i))
	}
	last := g.Add(0, n, 0, 0, accesses...)
	m := func(id stf.TaskID) stf.WorkerID {
		if id == last {
			return 1
		}
		return 0
	}
	var sum atomic.Int64
	vals := make([]int64, n)
	kern := func(tk *stf.Task, _ stf.WorkerID) {
		if tk.ID == last {
			var s int64
			for d := 0; d < n; d++ {
				s += vals[d]
			}
			sum.Store(s)
			return
		}
		time.Sleep(200 * time.Microsecond)
		vals[tk.ID] = int64(tk.ID) + 1
	}
	// A short spin/yield budget sends worker 1's waits into the slow phase
	// (where steal attempts live) well before a 200µs dependency resolves;
	// the default yield budget alone can eat that long.
	e := newEngine(t, core.Options{
		Workers: 2, Mapping: m, Steal: &stf.StealPolicy{MaxScan: 16},
		SpinLimit: 16, YieldLimit: 16,
	})
	if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * (int64(n) + 1) / 2; sum.Load() != want {
		t.Errorf("final task saw sum %d, want %d", sum.Load(), want)
	}
	st := e.Stats()
	if st.Workers[1].Stolen == 0 {
		t.Error("the waiting worker stole nothing during its dependency waits")
	}
}

// Every workload, mapping and policy variant must stay sequentially
// consistent with stealing enabled — the steal protocol is an executor
// choice, never an ordering choice. Both replay paths.
func TestStealMatchesSequentialMatrix(t *testing.T) {
	workloads := []*stf.Graph{
		graphs.Independent(200),
		writeGraph(64),
		graphs.Chain(64),
		graphs.RandomDeps(300, 16, 2, 1, 42),
		graphs.GEMM(4),
		graphs.LU(5),
		graphs.Wavefront(6, 6),
		reductionGraph(64),
	}
	policies := map[string]*stf.StealPolicy{
		"default": {},
		"tight":   {MaxScan: 1, Buffer: 4},
		"ranked":  {Victims: []stf.WorkerID{0, 1}},
	}
	for _, g := range workloads {
		for _, p := range []int{2, 3, 7} {
			mappings := map[string]stf.Mapping{
				"single": sched.Single(0),
				"cyclic": sched.Cyclic(p),
				"block":  sched.Block(len(g.Tasks), p),
			}
			for mname, m := range mappings {
				for pname, pol := range policies {
					e := newEngine(t, core.Options{Workers: p, Mapping: m, Steal: pol})
					if err := enginetest.Check(e, g); err != nil {
						t.Errorf("%s p=%d %s/%s closure: %v", g.Name, p, mname, pname, err)
					}
					if n := e.Stats().Executed(); n != int64(len(g.Tasks)) {
						t.Errorf("%s p=%d %s/%s closure: executed %d of %d", g.Name, p, mname, pname, n, len(g.Tasks))
					}
					cp := compile(t, g, m, p, nil)
					if err := enginetest.CheckCompiled(e, g, cp); err != nil {
						t.Errorf("%s p=%d %s/%s compiled: %v", g.Name, p, mname, pname, err)
					}
					if n := e.Stats().Executed(); n != int64(len(g.Tasks)) {
						t.Errorf("%s p=%d %s/%s compiled: executed %d of %d", g.Name, p, mname, pname, n, len(g.Tasks))
					}
				}
			}
		}
	}
}

// The claim-race hammer: thousands of owner-vs-thief CAS races on tiny
// tasks. Exactly-once execution is the whole point of the claim table —
// any double execution or drop shows up in the per-task counters.
func TestStealClaimRaceHammer(t *testing.T) {
	const n = 64
	iters := 1500
	if testing.Short() {
		iters = 200
	}
	g := writeGraph(n)
	p := 4
	m := sched.Single(0)
	cp := compile(t, g, m, p, nil)
	hammer := func(t *testing.T, exec func(e *core.Engine, k stf.Kernel) error) {
		e := newEngine(t, core.Options{Workers: p, Mapping: m, Steal: &stf.StealPolicy{}, NoAccounting: true})
		var stolen int64
		for it := 0; it < iters; it++ {
			var execs [n]atomic.Int32
			// The kernel yields so owner and thieves interleave even at
			// GOMAXPROCS=1 — without a scheduling point the owner can hold
			// the only P and clear its backlog before any thief runs. On
			// multi-core boxes the yield is nearly free and the claim race
			// is a true parallel CAS race.
			kern := func(tk *stf.Task, _ stf.WorkerID) {
				runtime.Gosched()
				execs[tk.ID].Add(1)
			}
			if err := exec(e, kern); err != nil {
				t.Fatalf("iter %d: %v", it, err)
			}
			for i := range execs {
				if got := execs[i].Load(); got != 1 {
					t.Fatalf("iter %d: task %d executed %d times", it, i, got)
				}
			}
			st := e.Stats()
			if st.Executed() != n {
				t.Fatalf("iter %d: executed %d, want %d", it, st.Executed(), n)
			}
			stolen += st.Stolen()
		}
		if stolen == 0 {
			t.Errorf("%d iterations produced no steals (race never exercised)", iters)
		}
	}
	t.Run("closure", func(t *testing.T) {
		hammer(t, func(e *core.Engine, k stf.Kernel) error {
			return e.Run(g.NumData, stf.Replay(g, k))
		})
	})
	t.Run("compiled", func(t *testing.T) {
		hammer(t, func(e *core.Engine, k stf.Kernel) error {
			return e.RunCompiled(cp, k)
		})
	})
}

// Stealing must compose with transient-fault retry: a stolen task's failed
// attempts roll back and re-run on the thief, and the storm as a whole
// stays indistinguishable from a fault-free run.
func TestStealRetryChaos(t *testing.T) {
	g := graphs.LU(5)
	want, err := enginetest.Golden(g)
	if err != nil {
		t.Fatal(err)
	}
	p := 4
	m := sched.Single(0)
	cp := compile(t, g, m, p, nil)
	for _, mode := range []string{"closure", "compiled"} {
		t.Run(mode, func(t *testing.T) {
			tr := enginetest.NewTrace(g)
			var clock atomic.Int64
			e := newEngine(t, core.Options{
				Workers: p,
				Mapping: m,
				Steal:   &stf.StealPolicy{},
				Retry:   &stf.RetryPolicy{MaxAttempts: 3},
				Snapshots: stf.SnapshotFuncs{Save: func(d stf.DataID) func() {
					v := tr.Vals[d]
					return func() { tr.Vals[d] = v }
				}},
			})
			kern := faultinject.Flaky(enginetest.Kernel(tr, &clock), 42, 0.4)
			if mode == "closure" {
				err = e.Run(g.NumData, stf.Replay(g, kern))
			} else {
				err = e.RunCompiled(cp, kern)
			}
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			if err := enginetest.Compare(g, want, tr); err != nil {
				t.Error(err)
			}
			if e.Stats().Retried() == 0 {
				t.Error("chaos storm triggered no retries (injector inert?)")
			}
		})
	}
}

// The observability contract: OnTaskSteal fires once per successful steal
// with the thief's and owner's identities, and the Stats / Progress stolen
// counters agree with it.
func TestStealHooksAndCounters(t *testing.T) {
	const n = 48
	g := writeGraph(n)
	p := 3
	var mu sync.Mutex
	type ev struct {
		thief, owner stf.WorkerID
		id           stf.TaskID
	}
	var events []ev
	e := newEngine(t, core.Options{
		Workers: p,
		Mapping: sched.Single(0),
		Steal:   &stf.StealPolicy{},
		Hooks: &stf.Hooks{OnTaskSteal: func(thief, owner stf.WorkerID, id stf.TaskID) {
			mu.Lock()
			events = append(events, ev{thief, owner, id})
			mu.Unlock()
		}},
	})
	kern := func(*stf.Task, stf.WorkerID) { time.Sleep(100 * time.Microsecond) }
	if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Stolen() == 0 {
		t.Fatal("no steals to observe")
	}
	if int64(len(events)) != st.Stolen() {
		t.Errorf("OnTaskSteal fired %d times, Stats counted %d steals", len(events), st.Stolen())
	}
	seen := make(map[stf.TaskID]bool)
	for _, v := range events {
		if v.owner != 0 || v.thief == 0 || int(v.id) >= n {
			t.Errorf("bad steal event %+v", v)
		}
		if seen[v.id] {
			t.Errorf("task %d reported stolen twice", v.id)
		}
		seen[v.id] = true
	}
	prog := e.Progress()
	if prog.Stolen() != st.Stolen() {
		t.Errorf("Progress stolen %d, Stats stolen %d", prog.Stolen(), st.Stolen())
	}
	if prog.StealFailed() != st.StealFailed() {
		t.Errorf("Progress stealFailed %d, Stats %d", prog.StealFailed(), st.StealFailed())
	}
}

// Streaming sessions with stealing: windows alternate a steal-heavy shape
// (independent slow writes, fully skewed) and a fully serialized chain
// whose values thread through the whole window — sequential consistency
// within each window, epoch recycling between them, and steals confined to
// their window must all hold across many epochs. Both window replay paths.
func TestStealStreamSession(t *testing.T) {
	const (
		numData = 16
		windows = 20
	)
	indep := stf.NewGraph("win-indep", numData)
	for i := 0; i < numData; i++ {
		indep.Add(0, i, 0, 0, stf.W(stf.DataID(i)))
	}
	chain := stf.NewGraph("win-chain", numData)
	chain.Add(0, 0, 0, 0, stf.W(0))
	for i := 1; i < numData; i++ {
		chain.Add(0, i, 0, 0, stf.R(stf.DataID(i-1)), stf.W(stf.DataID(i)))
	}
	touched := make([]stf.DataID, numData)
	for i := range touched {
		touched[i] = stf.DataID(i)
	}
	p := 3
	m := sched.Single(0)
	cpIndep := compile(t, indep, m, p, nil)
	cpChain := compile(t, chain, m, p, nil)

	for _, mode := range []string{"closure", "compiled"} {
		t.Run(mode, func(t *testing.T) {
			e := newEngine(t, core.Options{Workers: p, Mapping: m, Steal: &stf.StealPolicy{}})
			ss, err := e.OpenSession(numData, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer ss.Close()

			vals := make([]int64, numData)
			acc := make([]int64, numData)
			var wantAcc [numData]int64
			for w := 0; w < windows; w++ {
				base := int64(w * 1000)
				var wr core.WindowRun
				if w%2 == 0 {
					wr.Tasks = indep.Tasks
					wr.Kernel = func(tk *stf.Task, _ stf.WorkerID) {
						time.Sleep(50 * time.Microsecond)
						vals[tk.ID] = base + int64(tk.ID)
						acc[tk.ID] += vals[tk.ID]
					}
					if mode == "compiled" {
						wr.Compiled = cpIndep
					}
					for i := 0; i < numData; i++ {
						wantAcc[i] += base + int64(i)
					}
				} else {
					wr.Tasks = chain.Tasks
					wr.Kernel = func(tk *stf.Task, _ stf.WorkerID) {
						if tk.ID == 0 {
							vals[0] = base
						} else {
							vals[tk.ID] = vals[tk.ID-1] + 1
						}
						acc[tk.ID] += vals[tk.ID]
					}
					if mode == "compiled" {
						wr.Compiled = cpChain
					}
					for i := 0; i < numData; i++ {
						wantAcc[i] += base + int64(i)
					}
				}
				wr.Touched = touched
				if err := ss.Flush(wr); err != nil {
					t.Fatalf("window %d: %v", w, err)
				}
			}
			if err := ss.Drain(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < numData; i++ {
				if acc[i] != wantAcc[i] {
					t.Errorf("data %d accumulated %d over %d windows, want %d", i, acc[i], windows, wantAcc[i])
				}
			}
			prog := e.Progress()
			if got := prog.Stolen(); got == 0 {
				t.Error("no steals across a fully skewed streaming session")
			}
			if err := ss.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A steal policy must not mask real failures: a panicking stolen task
// aborts the run with the panic surfaced, exactly like an owner-executed
// one.
func TestStealPanicPropagates(t *testing.T) {
	const n = 32
	g := writeGraph(n)
	e := newEngine(t, core.Options{Workers: 4, Mapping: sched.Single(0), Steal: &stf.StealPolicy{}})
	kern := func(tk *stf.Task, _ stf.WorkerID) {
		time.Sleep(100 * time.Microsecond)
		if tk.ID == n-1 {
			panic("stolen kaboom")
		}
	}
	err := e.Run(g.NumData, stf.Replay(g, kern))
	if err == nil {
		t.Fatal("injected panic returned nil error")
	}
}
