package core

import (
	"time"

	"rio/internal/stf"
)

// Task retry with write-set rollback. When a RetryPolicy is installed, the
// per-worker recover moves from the worker goroutine (where a panic aborts
// the whole run) down to the individual attempt: the write-set is
// snapshotted before the first attempt, a recovered failure rolls it back,
// and the body re-executes after a deterministic bounded backoff. Only
// when the attempts are exhausted — or the failure is classified permanent,
// or the write-set cannot be snapshotted — does the failure surface as a
// run abort, now carrying a *stf.TaskFailure instead of a bare panic
// message. With a nil policy none of this code runs: the execution paths
// pay a single pointer test.

// runAttempts executes one task body under the worker's retry policy. It
// is only called with s.retry != nil; the reduction locks of the task are
// held and its dependencies have resolved, so the write-set is quiescent
// and safe to snapshot. It returns whether the task completed; on terminal
// failure the worker's error is set to a *stf.TaskFailure and the run
// abort is raised (graceful: other workers drain their in-flight bodies).
func (s *submitter) runAttempts(accesses []stf.Access, id int64, run func()) bool {
	p := s.retry
	restore, can := stf.SnapshotWriteSet(s.snaps, accesses)
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if !can {
		// No rollback possible: one shot. The preflight RIO-R001 pass
		// reports this configuration before a run ever gets here.
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		cause, ok := s.tryOnce(run)
		if ok {
			return true
		}
		if restore != nil {
			// Roll back even when the failure is terminal: a checkpointed
			// resume re-executes this task over its pre-attempt data.
			restore()
		}
		if attempt >= maxAttempts || !p.Transient(cause) || s.abort.raised() {
			tf := &stf.TaskFailure{Task: stf.TaskID(id), Attempts: attempt, Cause: cause}
			s.fail(tf)
			s.abort.raise(tf, false)
			return false
		}
		s.ws.Retried++
		s.prog.StoreRetried(s.ws.Retried)
		if h := s.hooks; h != nil && h.OnTaskRetry != nil {
			h.OnTaskRetry(s.worker, stf.TaskID(id), attempt, cause)
		}
		if !s.backoff(p.Delay(attempt+1), id) {
			s.fail(errAborted)
			return false
		}
	}
}

// tryOnce runs the body once, converting a panic into a returned cause.
func (s *submitter) tryOnce(run func()) (cause any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			cause = r
			ok = false
		}
	}()
	if s.eng.noAcct {
		run()
	} else {
		t0 := time.Now()
		run()
		s.ws.Task += time.Since(t0)
	}
	return nil, true
}

// backoffSlice bounds each individual sleep of a retry backoff so the
// worker keeps polling the abort latch and keeps refreshing its watchdog
// heartbeat: a task in backoff is live, not stuck, and must neither trip
// the StuckTask verdict nor outlive a run abort by a full backoff.
const backoffSlice = 10 * time.Millisecond

// backoff sleeps d in short slices. Returns false when the run aborted
// mid-wait.
func (s *submitter) backoff(d time.Duration, id int64) bool {
	for d > 0 {
		if s.abort.raised() {
			return false
		}
		step := d
		if step > backoffSlice {
			step = backoffSlice
		}
		time.Sleep(step)
		d -= step
		if h := s.health; h != nil {
			// Re-stamp the heartbeat: to the watchdog this task has been
			// "busy" only since the last slice, never across the whole
			// backoff schedule.
			h.setExec(id)
		}
	}
	return !s.abort.raised()
}
