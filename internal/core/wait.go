package core

import (
	"runtime"
	"time"
)

// wait blocks until cond() holds, accounting the elapsed time as idle time
// (τ_{p,i}) when accounting is enabled.
//
// The wait escalates in three phases, trading latency for CPU use:
//
//  1. busy-poll for SpinLimit iterations — a dependency produced by a
//     worker running on another core typically resolves within nanoseconds;
//  2. poll with runtime.Gosched() — lets the producing goroutine run when
//     goroutines are multiplexed on fewer hardware threads;
//  3. poll with exponentially growing sleeps capped at maxSleep — bounds
//     CPU waste on long waits without risking livelock.
//
// cond must read shared state with atomic loads; it is called repeatedly.
func (s *submitter) wait(cond func() bool) {
	if cond() {
		return
	}
	var t0 time.Time
	if !s.eng.noAcct {
		t0 = time.Now()
	}
	spin := 0
	const yieldPhase = 1024
	const maxSleep = 100 * time.Microsecond
	sleep := time.Microsecond
	for !cond() {
		spin++
		switch {
		case spin < s.eng.spinLimit:
			// busy poll
		case spin < s.eng.spinLimit+yieldPhase:
			runtime.Gosched()
		default:
			// A dependency held by a panicked worker will never
			// resolve; bail out once the run is aborting.
			if s.aborted.Load() {
				s.fail(errAborted)
				break
			}
			time.Sleep(sleep)
			if sleep < maxSleep {
				sleep *= 2
			}
		}
		if s.err != nil {
			break
		}
	}
	if !s.eng.noAcct {
		s.ws.Idle += time.Since(t0)
	}
}
