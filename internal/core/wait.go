package core

import (
	"runtime"
	"time"

	"rio/internal/stf"
)

// Wait tuning defaults (Options.SpinLimit / YieldLimit / SleepInit /
// SleepMax). The escalation keeps the engine live even when goroutines
// outnumber hardware threads (GOMAXPROCS oversubscription).
const (
	// DefaultSpinLimit is the busy-poll budget of dependency waits before
	// the waiter escalates to runtime.Gosched and then to its policy's
	// slow phase.
	DefaultSpinLimit = 128
	// DefaultYieldLimit is the number of Gosched-polling iterations after
	// the spin phase before the slow phase (sleep or park).
	DefaultYieldLimit = 1024
	// DefaultSleepInit and DefaultSleepMax bound the WaitSleep ladder's
	// exponential sleeps.
	DefaultSleepInit = time.Microsecond
	DefaultSleepMax  = 100 * time.Microsecond
)

// Adaptive spin-budget bounds (WaitAdaptive). The budget moves by powers of
// two between these bounds, fed back from each completed wait: a wait the
// busy-poll phase caught grows it, a wait that had to escalate shrinks it.
const (
	minSpinBudget = 16
	maxSpinBudget = 4096
)

// parkBackstopMax caps the failsafe timeout of a parked waiter. Wakes are
// event-driven (terminates and the abort latch publish them), so the
// backstop exists only to bound the damage of a missed-wake bug; it starts
// at the engine's SleepMax and doubles up to this cap.
const parkBackstopMax = 10 * time.Millisecond

// wait blocks until cond() holds, accounting the elapsed time as idle time
// (τ_{p,i}) when accounting is enabled. id and a identify the acquiring
// task and the unsatisfied data access, published for the stall watchdog
// once the wait turns slow; sh is the data object's shared cell, whose
// event gate the slow phase parks on.
//
// The wait escalates in three phases, trading latency for CPU use:
//
//  1. busy-poll for the spin budget — a dependency produced by a worker
//     running on another core typically resolves within nanoseconds. Under
//     WaitAdaptive the budget is per-worker and fed back from completed
//     waits; otherwise it is the engine's SpinLimit.
//  2. poll with runtime.Gosched() for YieldLimit iterations — lets the
//     producing goroutine run when goroutines are multiplexed on fewer
//     hardware threads. WaitPark skips this phase; WaitSpin stays in it
//     forever.
//  3. the policy's slow phase. On entry the worker publishes what it is
//     stuck on (watchdog armed runs only), and the phase polls the
//     run-abort flag so that a dependency held by a failed worker cannot
//     block forever. WaitAdaptive and WaitPark park on sh's event gate
//     (woken by the terminate that publishes the dependency, or by the
//     abort latch's wake-all); WaitSleep polls with exponentially growing
//     sleeps capped at SleepMax.
//
// Every phase keeps the wait's obligations: one OnWaitEnd per OnWaitStart,
// stall-watchdog publication, abort responsiveness, idle-time accounting.
//
// cond must read shared state with atomic loads; it is called repeatedly.
func (s *submitter) wait(id stf.TaskID, a stf.Access, sh *sharedState, cond func() bool) {
	if cond() {
		return
	}
	if h := s.hooks; h != nil && h.OnWaitStart != nil {
		h.OnWaitStart(s.worker, id, a)
	}
	var t0 time.Time
	if !s.eng.noAcct {
		t0 = time.Now()
	}

	policy := s.eng.policy
	spinCap := s.eng.spinLimit
	if policy == stf.WaitAdaptive {
		spinCap = s.spinBudget
	}
	yieldCap := spinCap + s.eng.yieldLimit
	if policy == stf.WaitPark {
		yieldCap = spinCap // park right after the spin phase
	}

	spin := 0
	published := false
	sleep := s.eng.sleepInit
	for !cond() {
		spin++
		switch {
		case spin < spinCap:
			// busy poll
		case spin < yieldCap:
			runtime.Gosched()
		default:
			if !published && s.health != nil {
				// The wait is officially slow: publish which task and
				// which access this worker is stuck on, and commit the
				// guard head so a deadlock diagnosis can compare the
				// stalled workers' replay positions.
				s.health.setWait(id, a)
				if s.guard != nil {
					s.guard.commitHead()
				}
				published = true
			}
			// A dependency held by a failed (panicked, canceled,
			// stalled) worker will never resolve; bail out once the run
			// is aborting.
			if s.abort.raised() {
				s.fail(errAborted)
				break
			}
			// A provably idle worker (slow-phase wait) is the steal
			// trigger: one bounded attempt per slow iteration, then back
			// to the condition (a stolen task may have been our own
			// blocker's producer — or our own task, taken by a thief).
			if s.steal != nil && s.trySteal() {
				if s.err != nil {
					break // terminal stolen-task failure: unwind below
				}
				if published {
					// The steal published exec health; restore the wait
					// diagnosis for the watchdog.
					s.health.setWait(id, a)
				}
				continue
			}
			switch policy {
			case stf.WaitSleep:
				time.Sleep(sleep)
				if sleep < s.eng.sleepMax {
					sleep *= 2
				}
			case stf.WaitSpin:
				runtime.Gosched()
			default: // WaitAdaptive, WaitPark
				if s.steal != nil {
					// Park one wake/backstop round at a time so parked
					// workers keep making steal attempts.
					if !s.parkOnce(sh, cond) {
						s.fail(errAborted)
					}
				} else if !s.park(sh, cond) {
					s.fail(errAborted)
				}
			}
		}
		if s.err != nil {
			break
		}
	}
	if published {
		s.health.setReplay()
	}
	var waited time.Duration
	if !s.eng.noAcct {
		waited = time.Since(t0)
		s.ws.Idle += waited
		s.prog.AddWait(waited)
	}
	if policy == stf.WaitAdaptive {
		// Feed the outcome back into the worker's spin budget by which
		// escalation phase resolved the wait. Only a wait the busy-poll
		// phase itself caught justifies more spinning; a wait that resolved
		// after yielding (or parking) means the producer needed the core —
		// on dedicated cores growing would not have changed the latency,
		// and oversubscribed it would have delayed the producer — so the
		// budget shrinks. Duration is deliberately not the signal: at
		// GOMAXPROCS=1 every hand-off is "fast" by the histogram yet every
		// busy-polled iteration is pure critical-path delay.
		if spin < spinCap {
			s.spinBudget = min(s.spinBudget*2, maxSpinBudget)
		} else {
			s.spinBudget = max(s.spinBudget/2, minSpinBudget)
		}
	}
	if h := s.hooks; h != nil && h.OnWaitEnd != nil {
		h.OnWaitEnd(s.worker, id, a)
	}
}

// park blocks on sh's event gate until cond holds. It returns false (without
// recording an error) if the run aborted instead. The gate protocol is
// lost-wakeup-free: register with the waiter counter first, fetch the gate
// channel, then re-check cond and the abort latch before blocking — any
// release or abort published before the fetch is visible to the re-check,
// and any published after it observes the registration and closes the
// fetched channel (see sharedCell.wake).
func (s *submitter) park(sh *sharedState, cond func() bool) bool {
	sh.waiters.Add(1)
	defer sh.waiters.Add(-1)
	backstop := s.eng.sleepMax
	for {
		ch := sh.parkChan()
		if cond() {
			return true
		}
		if s.abort.raised() {
			return false
		}
		t := s.parkTimer
		if t == nil {
			t = time.NewTimer(backstop)
			s.parkTimer = t
		} else {
			t.Reset(backstop)
		}
		select {
		case <-ch:
		case <-t.C:
			// Failsafe only: terminates wake the gate and the abort latch
			// wakes all gates, so an expiry means either a spurious near
			// miss or a missed-wake bug. Back off so a pathological case
			// degrades to slow polling instead of a busy timer loop.
			if backstop < parkBackstopMax {
				backstop *= 2
			}
		}
		t.Stop()
	}
}

// parkOnce is park's single-round variant for steal-enabled runs: register,
// block until one wake or one backstop expiry, deregister. The caller's
// wait loop re-checks the condition and interleaves steal attempts between
// rounds. Returns false when the run aborted. The registration/fetch/
// re-check ordering is the same lost-wakeup-free protocol as park's.
func (s *submitter) parkOnce(sh *sharedState, cond func() bool) bool {
	sh.waiters.Add(1)
	defer sh.waiters.Add(-1)
	ch := sh.parkChan()
	if cond() {
		return true
	}
	if s.abort.raised() {
		return false
	}
	t := s.parkTimer
	if t == nil {
		t = time.NewTimer(s.eng.sleepMax)
		s.parkTimer = t
	} else {
		t.Reset(s.eng.sleepMax)
	}
	select {
	case <-ch:
	case <-t.C:
	}
	t.Stop()
	return !s.abort.raised()
}
