package core

import (
	"runtime"
	"time"

	"rio/internal/stf"
)

// wait blocks until cond() holds, accounting the elapsed time as idle time
// (τ_{p,i}) when accounting is enabled. id and a identify the acquiring
// task and the unsatisfied data access, published for the stall watchdog
// once the wait turns slow.
//
// The wait escalates in three phases, trading latency for CPU use:
//
//  1. busy-poll for SpinLimit iterations — a dependency produced by a
//     worker running on another core typically resolves within nanoseconds;
//  2. poll with runtime.Gosched() — lets the producing goroutine run when
//     goroutines are multiplexed on fewer hardware threads;
//  3. poll with exponentially growing sleeps capped at maxSleep — bounds
//     CPU waste on long waits without risking livelock. On entry to this
//     phase the worker publishes what it is stuck on (watchdog armed
//     runs only), and each iteration polls the run-abort flag so that a
//     dependency held by a failed worker cannot block forever.
//
// cond must read shared state with atomic loads; it is called repeatedly.
func (s *submitter) wait(id stf.TaskID, a stf.Access, cond func() bool) {
	if cond() {
		return
	}
	if h := s.hooks; h != nil && h.OnWaitStart != nil {
		h.OnWaitStart(s.worker, id, a)
	}
	var t0 time.Time
	if !s.eng.noAcct {
		t0 = time.Now()
	}
	spin := 0
	published := false
	const yieldPhase = 1024
	const maxSleep = 100 * time.Microsecond
	sleep := time.Microsecond
	for !cond() {
		spin++
		switch {
		case spin < s.eng.spinLimit:
			// busy poll
		case spin < s.eng.spinLimit+yieldPhase:
			runtime.Gosched()
		default:
			if !published && s.health != nil {
				// The wait is officially slow: publish which task and
				// which access this worker is stuck on, and commit the
				// guard head so a deadlock diagnosis can compare the
				// stalled workers' replay positions.
				s.health.setWait(id, a)
				if s.guard != nil {
					s.guard.commitHead()
				}
				published = true
			}
			// A dependency held by a failed (panicked, canceled,
			// stalled) worker will never resolve; bail out once the run
			// is aborting.
			if s.abort.raised() {
				s.fail(errAborted)
				break
			}
			time.Sleep(sleep)
			if sleep < maxSleep {
				sleep *= 2
			}
		}
		if s.err != nil {
			break
		}
	}
	if published {
		s.health.setReplay()
	}
	if !s.eng.noAcct {
		waited := time.Since(t0)
		s.ws.Idle += waited
		s.prog.AddWait(waited)
	}
	if h := s.hooks; h != nil && h.OnWaitEnd != nil {
		h.OnWaitEnd(s.worker, id, a)
	}
}
