package core_test

// Synchronization-scalability tests for the wait policies (adaptive spin,
// pure spin, event-gate parking, legacy sleep ladder): sequential
// consistency under every policy, lost-wakeup stress under oversubscription,
// abort responsiveness while parked, and the agreement between idle-time
// accounting and the wait histogram.

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

var allPolicies = []stf.WaitPolicy{stf.WaitAdaptive, stf.WaitSpin, stf.WaitPark, stf.WaitSleep}

// Every policy must preserve sequential consistency on dependency-dense
// flows: a strict chain, the many-readers/one-writer-chain contention
// shape, reduction rounds (the terminate_red wake path), and random DAGs.
func TestWaitPolicyMatrixSequentialConsistency(t *testing.T) {
	for _, pol := range allPolicies {
		for _, g := range []*stf.Graph{
			graphs.Chain(200),
			graphs.ReadersWriter(30, 7),
			graphs.ReduceRounds(20, 11),
			graphs.RandomDeps(300, 16, 2, 1, 42),
		} {
			e := newEngine(t, core.Options{Workers: 4, Mapping: sched.Cyclic(4), WaitPolicy: pol})
			if err := enginetest.Check(e, g); err != nil {
				t.Errorf("policy %v, %s: %v", pol, g.Name, err)
			}
		}
	}
}

// The compiled replay path shares the wait/park helpers; check it under the
// parking policies explicitly.
func TestWaitPolicyCompiledReplay(t *testing.T) {
	m := sched.Cyclic(4)
	for _, pol := range []stf.WaitPolicy{stf.WaitAdaptive, stf.WaitPark} {
		for _, g := range []*stf.Graph{
			graphs.ReadersWriter(25, 6),
			graphs.ReduceRounds(15, 9),
		} {
			cp, err := stf.Compile(g, m, 4, nil)
			if err != nil {
				t.Fatalf("compile %s: %v", g.Name, err)
			}
			e := newEngine(t, core.Options{Workers: 4, Mapping: m, WaitPolicy: pol, SpinLimit: 1})
			if err := enginetest.CheckCompiled(e, g, cp); err != nil {
				t.Errorf("policy %v, %s (compiled): %v", pol, g.Name, err)
			}
		}
	}
}

// Lost-wakeup stress: GOMAXPROCS(1) oversubscription with a one-iteration
// spin budget forces every dependency wait straight onto the park gate, and
// the single hardware thread maximizes the window between a waiter's
// readiness check and its park — precisely where a lost wake would hang the
// run. Terminate orderings vary across repetitions (different graphs/seeds
// and scheduler interleavings); run with -race to also catch publication
// races between terminates and woken waiters.
func TestLostWakeupStressOversubscribed(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	reps := 5
	if testing.Short() {
		reps = 2
	}
	for _, pol := range []stf.WaitPolicy{stf.WaitPark, stf.WaitAdaptive} {
		for rep := 0; rep < reps; rep++ {
			e := newEngine(t, core.Options{Workers: 16, Mapping: sched.Cyclic(16), WaitPolicy: pol, SpinLimit: 1})
			for _, g := range []*stf.Graph{
				graphs.Chain(120),
				graphs.ReadersWriter(12, 15),
				graphs.ReduceRounds(8, 15),
				graphs.RandomDeps(200, 8, 2, 1, int64(100+rep)),
			} {
				if err := enginetest.Check(e, g); err != nil {
					t.Fatalf("policy %v rep %d, %s: %v", pol, rep, g.Name, err)
				}
			}
		}
	}
}

// Reduction contention on the wake path: rounds of one writer followed by
// many reducers on a single datum, with a one-probe spin budget so every
// dependency wait parks. Each round's reducers park on terminate_write's
// wake, and the next round's writer parks until the last terminateRed
// publishes its wake — the exact transitions the waiter registry added.
// Real closures (not the synthetic trace kernel) check the values: red
// bodies commute but must not overlap (redMu), and the writer must observe
// every prior round fully drained.
func TestReductionContentionWake(t *testing.T) {
	const (
		workers  = 8
		rounds   = 6
		reducers = 23 // not a multiple of workers: reds of one run span all workers unevenly
	)
	for _, pol := range []stf.WaitPolicy{stf.WaitPark, stf.WaitAdaptive} {
		e := newEngine(t, core.Options{Workers: workers, Mapping: sched.Cyclic(workers), WaitPolicy: pol, SpinLimit: 1})
		var sum int64
		var snaps [rounds]int64
		err := e.Run(1, func(s stf.Submitter) {
			for r := 0; r < rounds; r++ {
				r := r
				s.Submit(func() { snaps[r] = sum; sum++ }, stf.RW(0))
				for j := 0; j < reducers; j++ {
					s.Submit(func() { sum++ }, stf.Red(0))
				}
			}
		})
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		for r := 0; r < rounds; r++ {
			if want := int64(r) * (reducers + 1); snaps[r] != want {
				t.Errorf("policy %v: round %d writer saw sum %d, want %d (a reduction of an earlier run had not terminated)",
					pol, r, snaps[r], want)
			}
		}
		if want := int64(rounds) * (reducers + 1); sum != want {
			t.Errorf("policy %v: final sum %d, want %d (overlapping reduction bodies lost updates)", pol, sum, want)
		}
	}
}

// A panic on one worker must wake and unwind waiters parked on its
// unpublished dependencies: the abort latch's wake-all covers the event
// gates, not only the polling phases.
func TestAbortWakesParkedWaiters(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Cyclic(2), WaitPolicy: stf.WaitPark, SpinLimit: 1})
	err := e.Run(1, func(s stf.Submitter) {
		s.Submit(func() { panic("boom") }, stf.W(0)) // worker 0
		s.Submit(func() {}, stf.RW(0))               // worker 1: parks on data 0
	})
	if err == nil {
		t.Fatal("run with a panicking producer returned nil")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not carry the panic: %v", err)
	}
}

// Idle-time accounting and the wait histogram must agree under every
// policy: a forced multi-millisecond dependency wait shows up in both (and
// lands in a millisecond-scale bucket), and under NoAccounting both stay
// empty — no half-updated state.
func TestIdleAccountingMatchesWaitHistogram(t *testing.T) {
	const delay = 4 * time.Millisecond
	run := func(t *testing.T, pol stf.WaitPolicy, noAcct bool) (*trace.Stats, trace.Progress) {
		t.Helper()
		e := newEngine(t, core.Options{
			Workers: 2, Mapping: sched.Cyclic(2),
			WaitPolicy: pol, SpinLimit: 16, NoAccounting: noAcct,
		})
		err := e.Run(1, func(s stf.Submitter) {
			s.Submit(func() { time.Sleep(delay) }, stf.W(0))
			s.Submit(func() {}, stf.RW(0))
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.Stats(), e.Progress()
	}
	for _, pol := range allPolicies {
		st, pr := run(t, pol, false)
		idle := st.Workers[1].Idle
		if idle < delay/2 {
			t.Errorf("policy %v: worker 1 idle = %v, want >= %v", pol, idle, delay/2)
		}
		hist := pr.WaitHist()
		var total, slow int64
		for b, n := range hist {
			total += n
			if b >= 2 { // >= 10µs: where a multi-millisecond wait must land
				slow += n
			}
		}
		if total == 0 {
			t.Errorf("policy %v: idle accounted (%v) but wait histogram empty", pol, idle)
		}
		if slow == 0 {
			t.Errorf("policy %v: no wait landed in a >=10µs bucket despite a %v dependency delay (hist %v)", pol, delay, hist)
		}

		st, pr = run(t, pol, true)
		if got := st.Workers[1].Idle; got != 0 {
			t.Errorf("policy %v NoAccounting: idle = %v, want 0", pol, got)
		}
		for b, n := range pr.WaitHist() {
			if n != 0 {
				t.Errorf("policy %v NoAccounting: wait histogram bucket %d = %d, want empty", pol, b, n)
			}
		}
	}
}

// Reusing one engine across runs must reseed the adaptive budget from the
// previous run's histogram without perturbing correctness (the seed path
// reads the previous progress table just before it is replaced).
func TestAdaptiveReuseAcrossRuns(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 4, Mapping: sched.Cyclic(4), WaitPolicy: stf.WaitAdaptive})
	for rep := 0; rep < 3; rep++ {
		if err := enginetest.Check(e, graphs.ReadersWriter(20, 7)); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if err := enginetest.Check(e, graphs.Independent(100)); err != nil {
			t.Fatalf("rep %d (independent): %v", rep, err)
		}
	}
}

// An invalid policy must be rejected at construction, not misbehave at run
// time.
func TestInvalidWaitPolicyRejected(t *testing.T) {
	_, err := core.New(core.Options{Workers: 1, WaitPolicy: stf.WaitPolicy(99)})
	if err == nil {
		t.Fatal("New accepted WaitPolicy(99)")
	}
	var ignored *stf.StallError
	if errors.As(err, &ignored) {
		t.Fatal("wrong error kind")
	}
}
