package core_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// settleGoroutines polls the goroutine count until it drops to the
// baseline (goroutine exits are asynchronous — a just-finished run's
// monitor may still be unwinding) or a deadline passes.
func settleGoroutines(baseline int) int {
	var n int
	for i := 0; i < 200; i++ {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}

// TestWatchdogNoGoroutineLeak audits the stall watchdog's supervision
// machinery (monitor goroutine + ticker, the ctx watcher, the wg-closer):
// N runs that complete far below the stall threshold, and N runs canceled
// mid-dependency-wait, must leave the goroutine count where it started.
// (Audited: the monitor exits via the run's done channel with its ticker
// stopped by defer, and its final send cannot block because the stalled
// channel is buffered — this test pins that no future change regresses it.)
func TestWatchdogNoGoroutineLeak(t *testing.T) {
	g := graphs.LU(4)
	kern := func(*stf.Task, stf.WorkerID) {}
	e := newEngine(t, core.Options{Workers: 3, Mapping: sched.Cyclic(3), StallTimeout: time.Minute})

	// Prime the runtime (timer wheels, test plumbing) before baselining.
	if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(0)
	before := runtime.NumGoroutine()

	// Early completion: each run arms the watchdog and finishes far below
	// the threshold, so the monitor must exit with the run, not with the
	// ticker.
	for i := 0; i < 30; i++ {
		if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
			t.Fatal(err)
		}
	}

	// Cancellation mid-wait: workers blocked in dependency waits unwind
	// through the abort flag; monitor and ctx watcher must follow.
	chain := graphs.Chain(200)
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		k := func(tk *stf.Task, _ stf.WorkerID) {
			if tk.ID == 0 {
				close(started)
			}
			time.Sleep(200 * time.Microsecond)
		}
		canceled := make(chan struct{})
		go func() {
			<-started
			cancel()
			close(canceled)
		}()
		if err := e.RunContext(ctx, chain.NumData, stf.Replay(chain, k)); err == nil {
			t.Fatal("canceled run returned nil error")
		}
		<-canceled
	}

	// A couple of goroutines of slack: unrelated runtime internals
	// (timer maintenance) may come and go.
	after := settleGoroutines(before)
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d across %d watchdog-armed runs (monitor/timer leak)", before, after, 41)
	}
}
