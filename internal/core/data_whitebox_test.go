package core

// White-box guards for the cache-conscious state layout and the park gate:
//
//   - the padded shared cell must stay an exact cache-line multiple, or a
//     []sharedState silently reintroduces false sharing between adjacent
//     data objects (the pre-padding layout was 56 bytes — a comment said 64
//     and nothing enforced it);
//   - the local-state arena must keep a full guard line between neighboring
//     workers' segments regardless of allocator alignment;
//   - the event gate must not allocate until someone parks, and a wake must
//     reach both present and about-to-park waiters.

import (
	"testing"
	"unsafe"

	"rio/internal/stf"
)

func TestSharedStateIsCacheLineMultiple(t *testing.T) {
	size := unsafe.Sizeof(sharedState{})
	if size%cacheLine != 0 {
		t.Fatalf("sizeof(sharedState) = %d, not a multiple of the %d-byte cache line", size, cacheLine)
	}
	if size < cacheLine {
		t.Fatalf("sizeof(sharedState) = %d < one cache line (%d)", size, cacheLine)
	}
	// The pad must be computed from the cell, not hand-counted: growing the
	// cell by one word must still land on a line multiple. (Compile-time by
	// construction; pin the current relationship so a refactor that drops
	// the computed pad fails loudly.)
	cell := unsafe.Sizeof(sharedCell{})
	if want := (cell + cacheLine - 1) / cacheLine * cacheLine; size != want {
		t.Fatalf("sizeof(sharedState) = %d, want %d (cell %d rounded up to a line)", size, want, cell)
	}
	// Adjacent elements of a []sharedState must start on distinct lines.
	s := make([]sharedState, 2)
	d := uintptr(unsafe.Pointer(&s[1])) - uintptr(unsafe.Pointer(&s[0]))
	if d < cacheLine {
		t.Fatalf("adjacent sharedState elements %d bytes apart, want >= %d", d, cacheLine)
	}
}

func TestLocalArenaSeparatesWorkers(t *testing.T) {
	if cacheLine%unsafe.Sizeof(localState{}) != 0 {
		t.Fatalf("sizeof(localState) = %d no longer divides the cache line; the arena's guard-gap arithmetic needs revisiting", unsafe.Sizeof(localState{}))
	}
	for _, tc := range []struct{ workers, numData int }{
		{1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 7}, {4, 64}, {8, 129},
	} {
		a := newLocalArena(tc.workers, tc.numData)
		for w := 0; w < tc.workers; w++ {
			seg := a.worker(w)
			if len(seg) != tc.numData {
				t.Fatalf("workers=%d numData=%d: worker %d segment length %d", tc.workers, tc.numData, w, len(seg))
			}
			for d := range seg {
				if seg[d].lastRegisteredWrite != int64(stf.NoTask) {
					t.Fatalf("worker %d data %d: lastRegisteredWrite = %d, want NoTask", w, d, seg[d].lastRegisteredWrite)
				}
			}
		}
		if tc.numData == 0 {
			continue
		}
		// The end of worker w's segment and the start of worker w+1's must
		// be at least one full line apart, so no line holds state of two
		// workers no matter how the backing array is aligned.
		for w := 0; w+1 < tc.workers; w++ {
			lastEnd := uintptr(unsafe.Pointer(&a.worker(w)[tc.numData-1])) + unsafe.Sizeof(localState{})
			nextStart := uintptr(unsafe.Pointer(&a.worker(w + 1)[0]))
			if gap := nextStart - lastEnd; gap < cacheLine {
				t.Fatalf("workers=%d numData=%d: gap between worker %d and %d segments is %d bytes, want >= %d",
					tc.workers, tc.numData, w, w+1, gap, cacheLine)
			}
		}
	}
}

func TestParkGateLazyAndWakeable(t *testing.T) {
	var sh sharedState
	// No waiters: wake must not allocate a gate (nor take the slow path —
	// behaviorally: parkCh stays nil).
	sh.wake()
	if sh.parkCh != nil {
		t.Fatal("wake with no waiters allocated the gate channel")
	}
	// A registered waiter fetches the gate; a wake closes and clears it.
	sh.waiters.Add(1)
	ch := sh.parkChan()
	if ch == nil || sh.parkCh != ch {
		t.Fatal("parkChan did not install the gate")
	}
	sh.wake()
	select {
	case <-ch:
	default:
		t.Fatal("wake did not close the fetched gate channel")
	}
	if sh.parkCh != nil {
		t.Fatal("wake did not reset the gate for the next epoch")
	}
	// The next epoch gets a fresh channel.
	if ch2 := sh.parkChan(); ch2 == ch {
		t.Fatal("gate channel reused across epochs")
	}
	sh.waiters.Add(-1)
}
