package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEpochGateAdvanceWakes: a waiter parked on a future generation wakes
// exactly when the counter reaches its target, never on an older close.
func TestEpochGateAdvanceWakes(t *testing.T) {
	var g epochGate
	const target = 5
	done := make(chan bool, 1)
	go func() { done <- g.Wait(target) }()
	for i := 0; i < target; i++ {
		select {
		case <-done:
			t.Fatalf("Wait(%d) returned after only %d advances", target, i)
		default:
		}
		g.Advance()
	}
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Wait returned false after target was reached")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not wake after the target advance")
	}
	if g.Current() != target {
		t.Fatalf("Current = %d, want %d", g.Current(), target)
	}
}

// TestEpochGateStaleWakeupReparks: generation numbers, not channel
// identity, decide progress — a waiter woken by an intermediate epoch's
// close re-checks the counter and parks again instead of proceeding.
// The staircase of waiters (one per future generation) is exactly the
// shape a stale wakeup would corrupt: if waiter k+1 ran on waiter k's
// close, the premature flag would record a generation shortfall.
func TestEpochGateStaleWakeupReparks(t *testing.T) {
	var g epochGate
	const gens = 200
	var premature atomic.Int64
	var wg sync.WaitGroup
	for target := uint64(1); target <= gens; target++ {
		wg.Add(1)
		go func(target uint64) {
			defer wg.Done()
			if !g.Wait(target) {
				premature.Add(1)
				return
			}
			if got := g.Current(); got < target {
				premature.Add(1)
			}
		}(target)
	}
	for i := 0; i < gens; i++ {
		g.Advance()
	}
	wg.Wait()
	if n := premature.Load(); n != 0 {
		t.Fatalf("%d waiters proceeded before their generation", n)
	}
}

// TestEpochGateClose: Close wakes every parked waiter with a false
// verdict, and later Waits fail fast instead of blocking.
func TestEpochGateClose(t *testing.T) {
	var g epochGate
	g.Advance()
	const waiters = 8
	results := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		go func() { results <- g.Wait(100) }()
	}
	time.Sleep(10 * time.Millisecond) // let them reach the parked phase
	g.Close()
	for i := 0; i < waiters; i++ {
		select {
		case ok := <-results:
			if ok {
				t.Fatal("Wait reported its target reached on a closed gate")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked waiter not woken by Close")
		}
	}
	if g.Wait(100) {
		t.Fatal("Wait on a closed gate reported success")
	}
	if !g.Wait(1) {
		t.Fatal("Wait on an already-reached target must succeed even closed")
	}
}

// TestEpochGateHammer: concurrent waiters and one advancer, -race fodder
// for the counter-under-mutex publication protocol.
func TestEpochGateHammer(t *testing.T) {
	var g epochGate
	const gens = 5000
	const waiters = 4
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for target := uint64(1); target <= gens; target++ {
				if !g.Wait(target) {
					t.Error("gate closed mid-hammer")
					return
				}
			}
		}()
	}
	for i := 0; i < gens; i++ {
		g.Advance()
	}
	wg.Wait()
}

// TestSharedCellRecycle: recycle returns the protocol counters to their
// pre-flow state without touching the park gate's idle invariants.
func TestSharedCellRecycle(t *testing.T) {
	var c sharedCell
	c.recycle()
	if got := c.lastExecutedWrite.Load(); got != -1 {
		t.Errorf("lastExecutedWrite = %d, want -1 (NoTask)", got)
	}
	c.lastExecutedWrite.Store(7)
	c.nbReadsSinceWrite.Store(3)
	c.nbRedsSinceWrite.Store(2)
	c.recycle()
	if c.lastExecutedWrite.Load() != -1 || c.nbReadsSinceWrite.Load() != 0 || c.nbRedsSinceWrite.Load() != 0 {
		t.Error("recycle did not reset the protocol counters")
	}
}

// TestLocalStateRecycle: the private half resets to the pre-flow view.
func TestLocalStateRecycle(t *testing.T) {
	l := localState{}
	l.recycle()
	if l.lastRegisteredWrite != -1 {
		t.Errorf("lastRegisteredWrite = %d, want -1", l.lastRegisteredWrite)
	}
	l.declareWrite(4)
	l.declareRead()
	l.recycle()
	if l.lastRegisteredWrite != -1 || l.nbReadsSinceWrite != 0 || l.nbRedsSinceWrite != 0 {
		t.Error("recycle did not reset the private counters")
	}
}
