package core_test

import (
	"testing"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/sched"
	"rio/internal/stf"
)

// FuzzSequentialConsistency throws arbitrary byte-derived task flows,
// mappings and worker counts at the decentralized engine and requires the
// sequential-reference oracle to hold. This complements the testing/quick
// properties with corpus-guided exploration (go test -fuzz).
func FuzzSequentialConsistency(f *testing.F) {
	f.Add([]byte{2, 1, 0, 0, 3, 1, 1, 1, 4, 2, 2, 0}, uint8(2))
	f.Add([]byte{0, 0, 1, 0, 5, 3, 1, 2, 0, 4, 2, 3}, uint8(3))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, pRaw uint8) {
		p := 1 + int(pRaw%4)
		g := fuzzGraph(data)
		if len(g.Tasks) == 0 {
			return
		}
		// Owner table derived from the same bytes, including shared
		// (dynamically claimed) tasks.
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			b := byte(i)
			if i < len(data) {
				b = data[i]
			}
			if b%5 == 4 {
				owners[i] = stf.SharedWorker
			} else {
				owners[i] = stf.WorkerID(int(b) % p)
			}
		}
		e, err := core.New(core.Options{Workers: p, Mapping: sched.Table(owners)})
		if err != nil {
			t.Fatal(err)
		}
		if err := enginetest.Check(e, g); err != nil {
			t.Fatal(err)
		}
	})
}

// fuzzGraph decodes bytes into a small valid task flow (3 bytes per
// access, same scheme as the stf fuzzer).
func fuzzGraph(data []byte) *stf.Graph {
	const maxData = 5
	g := stf.NewGraph("fuzz", maxData)
	var accesses []stf.Access
	seen := map[stf.DataID]bool{}
	flush := func() {
		g.Add(0, len(g.Tasks), 0, 0, accesses...)
		accesses = nil
		seen = map[stf.DataID]bool{}
	}
	for i := 0; i+2 < len(data) && len(g.Tasks) < 20; i += 3 {
		if data[i]%2 == 0 && (len(accesses) > 0 || data[i]%4 == 0) {
			flush()
		}
		d := stf.DataID(data[i+1] % maxData)
		if seen[d] {
			continue
		}
		seen[d] = true
		mode := []stf.AccessMode{stf.ReadOnly, stf.WriteOnly, stf.ReadWrite, stf.Reduction}[data[i+2]%4]
		accesses = append(accesses, stf.Access{Data: d, Mode: mode})
	}
	if len(accesses) > 0 {
		flush()
	}
	return g
}
