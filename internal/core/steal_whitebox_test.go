package core

import (
	"testing"
	"time"

	"rio/internal/stf"
)

// TestStealStateVictimResolution: the policy's ranked list is deduped and
// self-filtered; an empty list resolves to the neighbor ring after self.
func TestStealStateVictimResolution(t *testing.T) {
	ranked := newStealState(&stf.StealPolicy{Victims: []stf.WorkerID{2, 1, 2, 1, 3}}, 1, 4)
	if got, want := ranked.victims, []stf.WorkerID{2, 3}; !equalVictims(got, want) {
		t.Errorf("ranked victims = %v, want %v", got, want)
	}
	if ranked.victimSet[1] || !ranked.victimSet[2] || !ranked.victimSet[3] || ranked.victimSet[0] {
		t.Errorf("ranked victimSet = %v", ranked.victimSet)
	}

	ring := newStealState(&stf.StealPolicy{}, 2, 4)
	if got, want := ring.victims, []stf.WorkerID{3, 0, 1}; !equalVictims(got, want) {
		t.Errorf("neighbor-ring victims = %v, want %v", got, want)
	}
	if len(ring.cursors) != len(ring.victims) {
		t.Errorf("cursors len %d, victims len %d", len(ring.cursors), len(ring.victims))
	}

	solo := newStealState(&stf.StealPolicy{}, 0, 1)
	if len(solo.victims) != 0 {
		t.Errorf("single-worker engine has victims %v", solo.victims)
	}
}

// TestStealEpochQuiescence: steal state never survives an epoch boundary.
// After a streaming session drains, every worker's candidate ring must be
// empty — the end-of-window drain runs before the barrier arrival, so a
// candidate recorded in window k can never be claimed or executed once
// window k's epoch has been recycled. The windows here are fully skewed
// with slow tasks, so the rings are heavily exercised.
func TestStealEpochQuiescence(t *testing.T) {
	const (
		numData = 8
		windows = 6
	)
	e, err := New(Options{
		Workers: 3,
		Mapping: func(stf.TaskID) stf.WorkerID { return 0 },
		Steal:   &stf.StealPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := e.OpenSession(numData, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	tasks := make([]stf.Task, numData)
	for i := range tasks {
		tasks[i] = stf.Task{ID: stf.TaskID(i), Accesses: []stf.Access{stf.W(stf.DataID(i))}}
	}
	touched := make([]stf.DataID, numData)
	for i := range touched {
		touched[i] = stf.DataID(i)
	}
	kern := func(*stf.Task, stf.WorkerID) { time.Sleep(100 * time.Microsecond) }

	var stolen int64
	for w := 0; w < windows; w++ {
		if err := ss.Flush(WindowRun{Tasks: tasks, Kernel: kern, Touched: touched}); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if err := ss.Drain(); err != nil {
			t.Fatalf("drain after window %d: %v", w, err)
		}
		// The barrier has passed: every worker finished its replay AND its
		// steal drain. Any candidate still in a ring here could be claimed
		// against recycled counters in the next epoch.
		for wk, sub := range ss.subs {
			if sub.steal == nil {
				t.Fatalf("worker %d has no steal state", wk)
			}
			if n := len(sub.steal.ring); n != 0 {
				t.Errorf("window %d: worker %d ring holds %d candidates at the epoch boundary", w, wk, n)
			}
			stolen += sub.ws.Stolen
		}
	}
	if stolen == 0 {
		t.Error("quiescence test exercised no steals")
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
}

func equalVictims(got, want []stf.WorkerID) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
