package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// Options configures a RIO engine.
type Options struct {
	// Workers is the number of worker goroutines (p). Must be >= 1.
	Workers int
	// Mapping assigns each task to its executing worker. It must be
	// deterministic and must return values in [0, Workers). If nil, a
	// cyclic mapping (id mod Workers) is used.
	Mapping stf.Mapping
	// NoAccounting disables per-task and per-wait time-stamping. Wall
	// time and task counters are still collected. Use for overhead
	// micro-measurements where two time.Now calls per task would matter.
	NoAccounting bool
	// WaitPolicy selects how dependency waits behave once the busy-poll
	// phase has not resolved them (see stf.WaitPolicy). The zero value is
	// WaitAdaptive: spin with a feedback-driven budget, yield, then park
	// on the data object's event gate.
	WaitPolicy stf.WaitPolicy
	// SpinLimit is the number of busy-poll iterations before a waiting
	// worker starts yielding to the Go scheduler (and eventually parking
	// or sleeping, per WaitPolicy). 0 means DefaultSpinLimit. Under
	// WaitAdaptive this is the starting budget; the per-worker budget
	// then floats between the adaptive bounds.
	SpinLimit int
	// YieldLimit is the number of runtime.Gosched-polling iterations
	// after the spin phase before a wait enters its policy's slow phase.
	// 0 means DefaultYieldLimit.
	YieldLimit int
	// SleepInit and SleepMax bound the WaitSleep policy's exponential
	// sleep ladder (initial and maximum sleep). Zero values mean
	// DefaultSleepInit and DefaultSleepMax. SleepMax also seeds the
	// parked-waiter failsafe timeout of the parking policies.
	SleepInit time.Duration
	SleepMax  time.Duration
	// StallTimeout arms the stall watchdog: when no task completes for
	// this long and the workers are provably deadlocked (all blocked in
	// dependency waits) or stuck inside one task body, the run aborts
	// with a stf.StallError naming the stuck tasks and data accesses.
	// 0 disables the watchdog (the default); mere load imbalance never
	// trips it because completions elsewhere reset the window.
	StallTimeout time.Duration
	// NoGuard disables the replay-divergence guard. By default every
	// worker folds its observed (taskID, accesses) stream into a running
	// hash (a few arithmetic ops per task, private memory only) and the
	// end of a run cross-checks the workers; a nondeterministic program
	// that happens to complete is then reported as a stf.DivergenceError
	// instead of silently corrupting data. Pruned replays (§3.5) are
	// exempt automatically. Set NoGuard for overhead micro-measurements.
	NoGuard bool
	// Hooks optionally installs lifecycle callbacks (see stf.Hooks). Nil
	// costs the hot path one pointer test per site.
	Hooks *stf.Hooks
	// Retry installs transient-fault retry of task bodies (see
	// stf.RetryPolicy): failed attempts roll back their write-set via
	// Snapshots and re-execute with deterministic backoff. Nil (the
	// default) disables retry at the cost of one pointer test per task.
	Retry *stf.RetryPolicy
	// Snapshots captures and restores data objects for retry rollback. A
	// task writing data the Snapshotter cannot capture (or nil Snapshots)
	// is not retried unless its write accesses are flagged Idempotent.
	Snapshots stf.Snapshotter
	// Resume skips the completed tasks of a previous run's checkpoint:
	// their effects are already in data memory, so the run converges to
	// the same final state as an uninterrupted one.
	Resume *stf.Checkpoint
	// Checkpoint enables completed-task tracking even without a retry
	// policy, so a failed run's error carries a stf.PartialResult (and
	// therefore a resumable stf.Checkpoint). Retry != nil implies it.
	Checkpoint bool
	// Steal enables bounded, dependency-safe work stealing: an idle worker
	// (parked or past its spin budget in a dependency wait, or done with
	// its own replay) may claim and execute a victim's next in-order task
	// when the shared counter state proves all of its accesses available
	// (see stf.StealPolicy and internal/core/steal.go). Nil (the default)
	// keeps the paper's pure static model at one pointer test per task.
	Steal *stf.StealPolicy
}

// Engine is a decentralized in-order STF execution engine. An Engine is
// reusable (Run may be called repeatedly) but not concurrently.
type Engine struct {
	workers int
	// mapping is published atomically: SetMapping may race a run's start
	// (the serving layer's cache-generation stress exercises exactly
	// that), and each run snapshots one consistent mapping for all of its
	// workers — a racing swap affects the next run, never a running one.
	mapping      atomic.Pointer[stf.Mapping]
	noAcct       bool
	policy       stf.WaitPolicy
	spinLimit    int
	yieldLimit   int
	sleepInit    time.Duration
	sleepMax     time.Duration
	stallTimeout time.Duration
	guard        bool
	hooks        *stf.Hooks
	retry        *stf.RetryPolicy
	snaps        stf.Snapshotter
	resume       *stf.Checkpoint
	checkpoint   bool
	steal        *stf.StealPolicy
	// stealMetaCache memoizes the steal metadata of the last compiled
	// program run with stealing enabled (steady-state serving replays the
	// same program, so one entry suffices; sessions keep their own
	// per-shape map).
	stealMetaCache atomic.Pointer[stealMetaEntry]
	stats          trace.Stats
	progress       atomic.Pointer[trace.ProgressTable]
	// sessionActive latches while a streaming Session (OpenSession) owns the
	// engine's workers; Run and a second OpenSession are rejected until the
	// session is closed.
	sessionActive atomic.Bool
}

// New returns a RIO engine for the given options.
func New(o Options) (*Engine, error) {
	if o.Workers < 1 {
		return nil, fmt.Errorf("core: Workers must be >= 1, got %d", o.Workers)
	}
	if o.StallTimeout < 0 {
		return nil, fmt.Errorf("core: negative StallTimeout %v", o.StallTimeout)
	}
	if p := o.Steal; p != nil {
		if p.MaxScan < 0 {
			return nil, fmt.Errorf("core: negative Steal.MaxScan %d", p.MaxScan)
		}
		if p.Buffer < 0 {
			return nil, fmt.Errorf("core: negative Steal.Buffer %d", p.Buffer)
		}
		for _, v := range p.Victims {
			if v < 0 || int(v) >= o.Workers {
				return nil, fmt.Errorf("core: Steal.Victims entry %d out of range [0,%d)", v, o.Workers)
			}
		}
	}
	m := o.Mapping
	if m == nil {
		p := o.Workers
		m = func(id stf.TaskID) stf.WorkerID { return stf.WorkerID(id % stf.TaskID(p)) }
	}
	if o.WaitPolicy < stf.WaitAdaptive || o.WaitPolicy > stf.WaitSleep {
		return nil, fmt.Errorf("core: unknown WaitPolicy %d", o.WaitPolicy)
	}
	sl := o.SpinLimit
	if sl <= 0 {
		sl = DefaultSpinLimit
	}
	yl := o.YieldLimit
	if yl <= 0 {
		yl = DefaultYieldLimit
	}
	si := o.SleepInit
	if si <= 0 {
		si = DefaultSleepInit
	}
	sm := o.SleepMax
	if sm <= 0 {
		sm = DefaultSleepMax
	}
	if sm < si {
		sm = si
	}
	e := &Engine{
		workers:      o.Workers,
		noAcct:       o.NoAccounting,
		policy:       o.WaitPolicy,
		spinLimit:    sl,
		yieldLimit:   yl,
		sleepInit:    si,
		sleepMax:     sm,
		stallTimeout: o.StallTimeout,
		guard:        !o.NoGuard,
		hooks:        o.Hooks,
		retry:        o.Retry,
		snaps:        o.Snapshots,
		resume:       o.Resume,
		checkpoint:   o.Checkpoint || o.Retry != nil,
		steal:        o.Steal,
	}
	e.mapping.Store(&m)
	return e, nil
}

// stealMetaEntry is the engine's one-entry compiled steal-metadata cache.
type stealMetaEntry struct {
	cp   *stf.CompiledProgram
	meta *stf.StealMeta
}

// stealMetaFor returns (building and memoizing if needed) the steal
// metadata of cp. Engine runs are serialized, but the pointer is atomic so
// a concurrent Progress reader can never observe a torn cache.
func (e *Engine) stealMetaFor(cp *stf.CompiledProgram) *stf.StealMeta {
	if c := e.stealMetaCache.Load(); c != nil && c.cp == cp {
		return c.meta
	}
	m := stf.BuildStealMeta(cp)
	e.stealMetaCache.Store(&stealMetaEntry{cp: cp, meta: m})
	return m
}

// Name identifies the execution model in reports.
func (e *Engine) Name() string { return "rio" }

// NumWorkers returns p.
func (e *Engine) NumWorkers() int { return e.workers }

// SetMapping replaces the engine's task mapping for subsequent runs. A nil
// mapping restores the default cyclic one. The swap is atomic: a call
// racing an in-flight run cannot corrupt it (each run snapshots the
// mapping once at its start), but which runs observe the new mapping is
// then up to the race.
func (e *Engine) SetMapping(m stf.Mapping) {
	if m == nil {
		p := e.workers
		m = func(id stf.TaskID) stf.WorkerID { return stf.WorkerID(id % stf.TaskID(p)) }
	}
	e.mapping.Store(&m)
}

// Run executes prog over numData data objects. Every worker replays prog
// (decentralized task management); the call returns once all workers have
// finished the whole task flow. Run returns an error if any worker detected
// a protocol violation (non-monotonic task IDs, mapping out of range), if a
// task body panicked, if the replay-divergence guard found the workers
// replaying different flows, or if the stall watchdog (when armed) gave up
// on the run — the run then aborts: the failing worker unwinds and the
// others stop at their next dependency wait or task submission.
func (e *Engine) Run(numData int, prog stf.Program) error {
	return e.RunContext(context.Background(), numData, prog)
}

// RunContext is Run with cancellation: when ctx is canceled (or its
// deadline expires), workers blocked in dependency waits unwind promptly
// and workers between tasks stop submitting; a worker already inside a
// task body finishes that body first. The returned error wraps ctx's
// cause. Cancellation is cooperative — a task body that never returns
// keeps RunContext blocked unless the stall watchdog is armed, in which
// case the run is abandoned with a StallError after the threshold (the
// wedged worker goroutine is leaked and the engine must not be reused).
func (e *Engine) RunContext(ctx context.Context, numData int, prog stf.Program) error {
	return e.run(ctx, numData, e.guard, -1, func(s *submitter) { prog(s) })
}

// run is the scaffolding shared by the closure-replay and compiled-replay
// paths: allocate the synchronization state, spawn one goroutine per
// worker executing body against its submitter, supervise the run
// (cancellation, stall watchdog) and assemble the error verdict. guard
// enables the replay-divergence guard; the compiled path passes false
// because all its streams derive from one graph and cannot diverge.
// flowLen is the known task-flow length (compiled replay), or -1 to derive
// it from the workers' replay positions (closure replay) — used only for
// the PartialResult of a failed fault-tolerant run.
func (e *Engine) run(ctx context.Context, numData int, guard bool, flowLen int, body func(*submitter)) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: run not started: %w", context.Cause(ctx))
	}
	if numData < 0 {
		return errors.New("core: negative numData")
	}
	if e.sessionActive.Load() {
		return errors.New("core: engine has an open streaming session; close it before Run")
	}
	// Seed the adaptive spin budgets from the previous run's wait
	// histogram (if any) before the new progress table replaces it.
	seed := e.spinLimit
	if e.policy == stf.WaitAdaptive {
		if prev := e.progress.Load(); prev != nil {
			p := prev.Snapshot()
			seed = adaptiveSeed(p.WaitHist(), e.spinLimit)
		}
	}
	rp := trace.NewProgressTable(e.workers)
	e.progress.Store(rp)
	if h := e.hooks; h != nil && h.OnRunStart != nil {
		h.OnRunStart(e.workers, numData)
	}
	err := e.execute(ctx, numData, guard, rp, seed, flowLen, body)
	rp.Finish()
	if h := e.hooks; h != nil && h.OnRunEnd != nil {
		h.OnRunEnd(err)
	}
	return err
}

// execute is run's engine room, split out so run can bracket it with the
// progress table's lifecycle and the OnRunStart/OnRunEnd hooks.
func (e *Engine) execute(ctx context.Context, numData int, guard bool, rp *trace.ProgressTable, spinSeed int, flowLen int, body func(*submitter)) error {
	shared := make([]sharedState, numData)
	for i := range shared {
		shared[i].lastExecutedWrite.Store(int64(stf.NoTask))
	}
	// One flat arena backs every worker's local protocol state: segments
	// indexed directly by data ID, separated by guard cache lines (see
	// localArena).
	arena := newLocalArena(e.workers, numData)

	claims := newClaimTable()
	abort := &abortState{}
	// An abort must reach waiters parked on data event gates, not only
	// polling ones: raise wakes every gate (set before any worker can
	// raise, so never racing a raise).
	abort.onRaise = func() {
		for i := range shared {
			shared[i].wake()
		}
	}
	var health []workerHealth
	if e.stallTimeout > 0 {
		health = make([]workerHealth, e.workers)
	}
	// One mapping snapshot for the whole run: every worker must resolve
	// ownership identically even if SetMapping races the run's start.
	mapping := *e.mapping.Load()
	subs := make([]*submitter, e.workers)
	for w := range subs {
		subs[w] = &submitter{
			eng:        e,
			worker:     stf.WorkerID(w),
			mapping:    mapping,
			shared:     shared,
			local:      arena.worker(w),
			claims:     claims,
			abort:      abort,
			prog:       rp.Worker(w),
			hooks:      e.hooks,
			retry:      e.retry,
			snaps:      e.snaps,
			resume:     e.resume,
			track:      e.checkpoint,
			spinBudget: spinSeed,
		}
		if health != nil {
			subs[w].health = &health[w]
		}
		if guard {
			subs[w].guard = &guardState{}
		}
		if e.steal != nil {
			subs[w].steal = newStealState(e.steal, stf.WorkerID(w), e.workers)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(e.workers)
	for _, s := range subs {
		go func(s *submitter) {
			defer wg.Done()
			t0 := time.Now()
			// A panicking task (or replay closure) must not leave the
			// other workers blocked on its unfinished dependencies:
			// record the panic, raise the abort flag (dependency waits
			// and submissions poll it) and unwind this worker.
			defer func() {
				if r := recover(); r != nil {
					err := fmt.Errorf("core: panic during replay: %v", r)
					s.fail(err)
					abort.raise(err, false)
				}
				if s.health != nil {
					s.health.setDone()
				}
				s.ws.Wall = time.Since(t0)
			}()
			body(s)
			if s.steal != nil && s.err == nil {
				// Replay done: keep eating other workers' backlogs until
				// every stealable task has an executor.
				s.stealDrain()
			}
		}(s)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				abort.raise(fmt.Errorf("core: run canceled: %w", context.Cause(ctx)), true)
			case <-done:
			}
		}()
	}
	var stalled chan *stf.StallError
	if e.stallTimeout > 0 {
		stalled = make(chan *stf.StallError, 1)
		go e.monitor(subs, abort, done, stalled)
	}

	select {
	case <-done:
	case st := <-stalled:
		// The watchdog aborted the run; give the workers the grace window
		// to unwind through the abort flag. Only a worker wedged inside a
		// task body can miss it — then the run is abandoned: the wedged
		// goroutine leaks and per-worker stats are unavailable (reading
		// them would race with the leaked goroutine).
		grace := time.NewTimer(stallGrace)
		select {
		case <-done:
			grace.Stop()
		case <-grace.C:
			e.stats = trace.Stats{Workers: make([]trace.WorkerStats, e.workers), Wall: time.Since(start)}
			return fmt.Errorf("core: run abandoned (a worker is wedged inside a task body and cannot be stopped; do not reuse this engine): %w", st)
		}
	}
	wall := time.Since(start)

	e.stats = trace.Stats{Workers: make([]trace.WorkerStats, e.workers), Wall: wall, Accounted: !e.noAcct}
	var errs []error
	if cause, external := abort.state(); external && cause != nil {
		// Cancellation or watchdog verdict: the root cause is not in any
		// worker's error slot, so report it first.
		errs = append(errs, cause)
	}
	aborted := 0
	for w, s := range subs {
		ws := s.ws
		if !e.noAcct {
			if r := ws.Wall - ws.Task - ws.Idle; r > 0 {
				ws.Runtime = r
			}
		}
		e.stats.Workers[w] = ws
		switch {
		case s.err == nil:
		case errors.Is(s.err, errAborted):
			// Secondary casualties of the abort: collapsed into one
			// summary entry below so the originating error stays on top.
			aborted++
		default:
			errs = append(errs, fmt.Errorf("worker %d: %w", w, s.err))
		}
	}
	if aborted > 0 {
		errs = append(errs, fmt.Errorf("core: %d worker(s) %w", aborted, errAborted))
	}
	if len(errs) == 0 {
		if err := guardVerdict(subs); err != nil {
			errs = append(errs, fmt.Errorf("core: %w", err))
		}
	}
	err := errors.Join(errs...)
	if err != nil && e.checkpoint {
		return &stf.PartialError{Cause: err, Result: e.partialResult(subs, flowLen)}
	}
	return err
}

// partialResult assembles the dependency-closed frontier of a failed
// fault-tolerant run from the workers' completed-task logs. A task is
// completed when its body finished (its effects are published in data
// memory); the set is dependency-closed because a body only ever started
// after its get_* waits observed every predecessor's completion. Tasks
// skipped by a Resume checkpoint are carried over: they stay completed.
func (e *Engine) partialResult(subs []*submitter, flowLen int) *stf.PartialResult {
	var completed, failed []stf.TaskID
	if e.resume != nil {
		completed = append(completed, e.resume.Completed...)
	}
	maxNext := stf.TaskID(0)
	for _, s := range subs {
		completed = append(completed, s.done...)
		if s.next > maxNext {
			maxNext = s.next
		}
		var tf *stf.TaskFailure
		if errors.As(s.err, &tf) {
			failed = append(failed, tf.Task)
		}
	}
	stf.SortTaskIDs(completed)
	stf.SortTaskIDs(failed)
	pr := &stf.PartialResult{
		Tasks:     int(maxNext),
		Completed: dedupeTaskIDs(completed),
		Failed:    dedupeTaskIDs(failed),
	}
	if flowLen >= 0 {
		pr.Tasks = flowLen
	}
	return pr
}

// dedupeTaskIDs compacts a sorted ID slice in place (each worker replays
// the whole flow, so resume-carried IDs repeat across workers).
func dedupeTaskIDs(ids []stf.TaskID) []stf.TaskID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Stats returns the time decomposition of the last Run.
func (e *Engine) Stats() *trace.Stats { return &e.stats }

// submitter is the per-worker view of the task flow (Algorithm 1). Each
// worker replays the program against its own submitter.
type submitter struct {
	eng    *Engine
	worker stf.WorkerID
	next   stf.TaskID
	// mapping is the task→worker assignment this replay resolves ownership
	// against: the engine's mapping for one-shot runs, the snapshot taken at
	// OpenSession for streaming sessions (so every window of a session — and
	// the compiled shapes cached for it — bakes in one consistent mapping).
	mapping stf.Mapping
	shared  []sharedState
	local   []localState
	claims  *claimTable
	abort   *abortState
	health  *workerHealth       // nil unless the stall watchdog is armed
	guard   *guardState         // nil when the divergence guard is disabled
	prog    *trace.ProgressCell // always-on published counters (Progress)
	hooks   *stf.Hooks          // nil when no lifecycle hooks are installed
	retry   *stf.RetryPolicy    // nil disables task retry
	snaps   stf.Snapshotter     // write-set capture for retry rollback
	resume  *stf.Checkpoint     // completed tasks of a previous run to skip
	track   bool                // log completed tasks for checkpoints
	steal   *stealState         // nil unless Options.Steal is set
	done    []stf.TaskID        // tasks this worker completed (track only)
	ws      trace.WorkerStats
	err     error
	// spinBudget is the busy-poll budget of the next dependency wait under
	// WaitAdaptive (ignored by the other policies): seeded from the
	// previous run's wait histogram, then fed back per completed wait.
	spinBudget int
	// parkTimer is the reusable failsafe timer of parked waits, allocated
	// by the first park.
	parkTimer *time.Timer
}

// errAborted marks workers stopped because the run aborted on another
// worker (panic, protocol violation, cancellation or watchdog).
var errAborted = errors.New("aborted after a failure elsewhere in the run")

// owns resolves the executor of task id for this worker: statically via
// the mapping, dynamically (first-to-reach claim) for SharedWorker tasks,
// or by claim CAS for the worker's own tasks when stealing is enabled — a
// lost self-claim means a thief proved the task ready and took it, and the
// owner treats it like any foreign task (declare only). It reports whether
// this worker executes the task and who its static owner is; ok is false
// on a mapping error (already recorded via fail).
func (s *submitter) owns(id stf.TaskID) (execute bool, owner stf.WorkerID, ok bool) {
	owner = s.mapping(id)
	switch {
	case owner == s.worker:
		if s.steal != nil && !s.claims.tryClaim(int64(id)) {
			return false, owner, true
		}
		return true, owner, true
	case owner == stf.SharedWorker:
		if s.claims.tryClaim(int64(id)) {
			s.ws.Claimed++
			s.prog.StoreClaimed(s.ws.Claimed)
			return true, owner, true
		}
		return false, owner, true
	case owner < 0 || int(owner) >= s.eng.workers:
		err := fmt.Errorf("core: mapping(%d) = %d out of range [0,%d)", id, owner, s.eng.workers)
		s.fail(err)
		// Every worker evaluates the same deterministic mapping, but a
		// worker may be blocked on this task's data rather than reach
		// this point itself — raise the abort so nobody waits forever.
		s.abort.raise(err, false)
		return false, owner, false
	default:
		return false, owner, true
	}
}

// Worker implements stf.Submitter.
func (s *submitter) Worker() stf.WorkerID { return s.worker }

// NumWorkers implements stf.Submitter.
func (s *submitter) NumWorkers() int { return s.eng.workers }

// Submit implements stf.Submitter for closure tasks.
func (s *submitter) Submit(fn stf.TaskFunc, accesses ...stf.Access) stf.TaskID {
	id := s.next
	s.submit(id, accesses, func() { fn() })
	return id
}

// SubmitTask implements stf.Submitter for recorded tasks. Task IDs may skip
// ahead of the submission counter: the skipped IDs are tasks pruned from
// this worker's view of the flow (paper §3.5), which by the pruning
// contract touch no data this worker ever synchronizes on.
func (s *submitter) SubmitTask(t *stf.Task, k stf.Kernel) stf.TaskID {
	if t.ID < s.next {
		err := fmt.Errorf("core: task ID %d submitted after ID %d (task flow must be replayed in order)", t.ID, s.next-1)
		s.fail(err)
		s.abort.raise(err, false)
		return t.ID
	}
	if t.ID > s.next && s.guard != nil {
		// A pruned flow: per-worker streams legitimately differ, so the
		// cross-worker divergence check does not apply.
		s.guard.markGap()
	}
	s.submitRecorded(t, k)
	return t.ID
}

func (s *submitter) submitRecorded(t *stf.Task, k stf.Kernel) {
	if s.err != nil {
		return
	}
	if s.abort.raised() {
		s.fail(errAborted)
		return
	}
	id := t.ID
	if s.resume != nil && s.resume.Contains(id) {
		s.skipCompleted(id)
		return
	}
	s.next = id + 1
	if s.guard != nil {
		s.guard.fold(id, t.Accesses)
	}
	execute, owner, ok := s.owns(id)
	if !ok {
		return
	}
	if execute {
		s.acquire(id, t.Accesses)
		if s.err != nil {
			return // aborted while waiting
		}
		if s.execLocked(t.Accesses, int64(id), func() { k(t, s.worker) }) {
			s.ws.Executed++
			s.prog.StoreExecuted(s.ws.Executed)
			if s.track {
				s.done = append(s.done, id)
			}
		}
	} else {
		if st := s.steal; st != nil && owner != s.worker && st.wants(owner) {
			s.recordStealCand(owner, id, t.Accesses, func() { k(t, s.worker) })
		}
		s.declare(t.Accesses, int64(id))
		s.ws.Declared++
		s.prog.StoreDeclared(s.ws.Declared)
	}
}

// skipCompleted advances past a task a Resume checkpoint marks completed:
// its effects are already in data memory, so no synchronization state may
// be touched on its behalf — every worker skips the same set, keeping the
// replays aligned (the §3.5 pruning argument). The guard does not fold
// skipped tasks (consistently, on every worker), and Skipped is charged to
// the task's owner so run totals line up with compiled-replay resume.
func (s *submitter) skipCompleted(id stf.TaskID) {
	s.next = id + 1
	if o := s.mapping(id); o == s.worker || (o == stf.SharedWorker && s.worker == 0) {
		s.ws.Skipped++
		s.prog.StoreSkipped(s.ws.Skipped)
	}
}

// execLocked runs a task body between its reduction locks and publishes
// completion, reporting whether the task completed. The unlock is deferred
// so a panicking body cannot leave the per-data mutexes held; completion
// is *not* published on a failure — without a retry policy the panic
// propagates to the worker recover and the run aborts; with one, the
// attempt loop (runAttempts) rolls the write-set back and either retries
// or fails the task gracefully, returning false.
func (s *submitter) execLocked(accesses []stf.Access, id int64, run func()) bool {
	if s.lockReductions(accesses) {
		defer s.unlockReductions(accesses)
	}
	if h := s.health; h != nil {
		h.setExec(id)
		defer h.endExec()
	}
	s.prog.SetCurrent(stf.TaskID(id))
	if h := s.hooks; h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(s.worker, stf.TaskID(id))
	}
	if s.retry != nil {
		if !s.runAttempts(accesses, id, run) {
			s.prog.SetCurrent(stf.NoTask)
			return false
		}
	} else if s.eng.noAcct {
		run()
	} else {
		t0 := time.Now()
		run()
		s.ws.Task += time.Since(t0)
	}
	if h := s.hooks; h != nil && h.OnTaskEnd != nil {
		h.OnTaskEnd(s.worker, stf.TaskID(id))
	}
	s.prog.SetCurrent(stf.NoTask)
	s.release(accesses, id)
	return true
}

func (s *submitter) submit(id stf.TaskID, accesses []stf.Access, run func()) {
	if s.err != nil {
		return
	}
	if s.abort.raised() {
		s.fail(errAborted)
		return
	}
	if s.resume != nil && s.resume.Contains(id) {
		s.skipCompleted(id)
		return
	}
	s.next = id + 1
	if s.guard != nil {
		s.guard.fold(id, accesses)
	}
	execute, owner, ok := s.owns(id)
	if !ok {
		return
	}
	if execute {
		s.acquire(id, accesses)
		if s.err != nil {
			return // aborted while waiting
		}
		if s.execLocked(accesses, int64(id), run) {
			s.ws.Executed++
			s.prog.StoreExecuted(s.ws.Executed)
			if s.track {
				s.done = append(s.done, id)
			}
		}
	} else {
		if st := s.steal; st != nil && owner != s.worker && st.wants(owner) {
			s.recordStealCand(owner, id, accesses, run)
		}
		s.declare(accesses, int64(id))
		s.ws.Declared++
		s.prog.StoreDeclared(s.ws.Declared)
	}
}

func (s *submitter) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// acquire implements the get_read / get_write / get_red calls of
// Algorithm 1: block until every dependency registered locally has
// executed. id is the acquiring task, threaded through for stall
// diagnosis.
func (s *submitter) acquire(id stf.TaskID, accesses []stf.Access) {
	for _, a := range accesses {
		switch {
		case a.Mode.Writes():
			s.getWrite(id, a)
		case a.Mode.Commutes():
			s.getRed(id, a)
		default:
			s.getRead(id, a)
		}
	}
}

// The get helpers below wait for each composite readiness condition
// piecewise; every piece is stable once true, because any task that could
// perturb it was registered after the current one and therefore
// transitively waits on it. They are shared by the closure-replay acquire
// above and the compiled execution loop.

// getWrite waits for previous writes, then reads, then reductions.
func (s *submitter) getWrite(id stf.TaskID, a stf.Access) {
	sh := &s.shared[a.Data]
	lo := &s.local[a.Data]
	if !lo.writeReady(sh) {
		s.wait(id, a, sh, func() bool { return sh.lastExecutedWrite.Load() == lo.lastRegisteredWrite })
		s.wait(id, a, sh, func() bool { return sh.nbReadsSinceWrite.Load() == lo.nbReadsSinceWrite })
		s.wait(id, a, sh, func() bool { return sh.nbRedsSinceWrite.Load() == lo.nbRedsSinceWrite })
	}
}

// getRed waits for previous writes, reads, and earlier-run reductions;
// members of the own run commute.
func (s *submitter) getRed(id stf.TaskID, a stf.Access) {
	sh := &s.shared[a.Data]
	lo := &s.local[a.Data]
	if !lo.redReady(sh) {
		s.wait(id, a, sh, func() bool { return sh.lastExecutedWrite.Load() == lo.lastRegisteredWrite })
		s.wait(id, a, sh, func() bool { return sh.nbReadsSinceWrite.Load() == lo.nbReadsSinceWrite })
		s.wait(id, a, sh, func() bool { return sh.nbRedsSinceWrite.Load() >= lo.nbRedsBeforeRun })
	}
}

// getRead waits for previous writes and reductions.
func (s *submitter) getRead(id stf.TaskID, a stf.Access) {
	sh := &s.shared[a.Data]
	lo := &s.local[a.Data]
	if !lo.readReady(sh) {
		s.wait(id, a, sh, func() bool { return sh.lastExecutedWrite.Load() == lo.lastRegisteredWrite })
		s.wait(id, a, sh, func() bool { return sh.nbRedsSinceWrite.Load() == lo.nbRedsSinceWrite })
	}
}

// lockReductions takes the per-data reduction mutexes of the task's
// commutative accesses, in ascending data order so that concurrent
// multi-reduction tasks cannot deadlock. It returns whether any lock was
// taken.
func (s *submitter) lockReductions(accesses []stf.Access) bool {
	locked := false
	last := stf.DataID(-1)
	for {
		next := stf.DataID(-1)
		for _, a := range accesses {
			if a.Mode.Commutes() && a.Data > last && (next == -1 || a.Data < next) {
				next = a.Data
			}
		}
		if next == -1 {
			return locked
		}
		s.shared[next].redMu.Lock()
		locked = true
		last = next
	}
}

func (s *submitter) unlockReductions(accesses []stf.Access) {
	for _, a := range accesses {
		if a.Mode.Commutes() {
			s.shared[a.Data].redMu.Unlock()
		}
	}
}

// release implements the terminate_read / terminate_write / terminate_red
// calls.
func (s *submitter) release(accesses []stf.Access, id int64) {
	for _, a := range accesses {
		sh := &s.shared[a.Data]
		lo := &s.local[a.Data]
		switch {
		case a.Mode.Writes():
			lo.terminateWrite(sh, id)
		case a.Mode.Commutes():
			lo.terminateRed(sh)
		default:
			lo.terminateRead(sh)
		}
	}
}

// declare implements the declare_read / declare_write / declare_red calls
// for tasks owned by other workers: private-memory bookkeeping only.
func (s *submitter) declare(accesses []stf.Access, id int64) {
	for _, a := range accesses {
		lo := &s.local[a.Data]
		switch {
		case a.Mode.Writes():
			lo.declareWrite(id)
		case a.Mode.Commutes():
			lo.declareRed()
		default:
			lo.declareRead()
		}
	}
}
