package core_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"rio/internal/core"
	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

func newEngine(t testing.TB, o core.Options) *core.Engine {
	t.Helper()
	e, err := core.New(o)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := core.New(core.Options{Workers: 0}); err == nil {
		t.Error("Workers=0 accepted")
	}
	if _, err := core.New(core.Options{Workers: -3}); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := core.New(core.Options{Workers: 1}); err != nil {
		t.Errorf("Workers=1 rejected: %v", err)
	}
}

func TestRunRejectsNegativeNumData(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 1})
	if err := e.Run(-1, func(stf.Submitter) {}); err == nil {
		t.Error("negative numData accepted")
	}
}

func TestEngineMetadata(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 3})
	if e.Name() != "rio" {
		t.Errorf("Name() = %q", e.Name())
	}
	if e.NumWorkers() != 3 {
		t.Errorf("NumWorkers() = %d", e.NumWorkers())
	}
}

// The central correctness matrix: every workload of the paper's evaluation,
// under several worker counts and mappings, must produce exactly the
// sequential reference result and a dependency-respecting execution order.
func TestSequentialConsistencyMatrix(t *testing.T) {
	workloads := []struct {
		name string
		g    *stf.Graph
	}{
		{"independent", graphs.Independent(200)},
		{"random-deps", graphs.RandomDeps(300, 16, 2, 1, 42)},
		{"random-deps-paper", graphs.RandomDeps(200, 128, 2, 1, 7)},
		{"gemm-4", graphs.GEMM(4)},
		{"lu-5", graphs.LU(5)},
		{"cholesky-5", graphs.Cholesky(5)},
		{"wavefront-6x6", graphs.Wavefront(6, 6)},
		{"chain", chain(64)},
		{"fanout", fanOut(64)},
	}
	for _, wl := range workloads {
		if err := wl.g.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", wl.name, err)
		}
		for _, p := range []int{1, 2, 3, 4, 7} {
			mappings := map[string]stf.Mapping{
				"cyclic": sched.Cyclic(p),
				"block":  sched.Block(len(wl.g.Tasks), p),
				"bc4":    sched.BlockCyclic(p, 4),
			}
			for mname, m := range mappings {
				e := newEngine(t, core.Options{Workers: p, Mapping: m})
				if err := enginetest.Check(e, wl.g); err != nil {
					t.Errorf("%s p=%d mapping=%s: %v", wl.name, p, mname, err)
				}
			}
		}
	}
}

func TestOwnerComputesMapping(t *testing.T) {
	for _, p := range []int{2, 4, 6} {
		grid := sched.NewGrid2D(p)
		for _, g := range []*stf.Graph{graphs.LU(6), graphs.Cholesky(6), graphs.GEMM(4)} {
			m := sched.OwnerComputes(g, grid)
			if err := sched.Validate(g, m, p); err != nil {
				t.Fatalf("p=%d %s: %v", p, g.Name, err)
			}
			e := newEngine(t, core.Options{Workers: p, Mapping: m})
			if err := enginetest.Check(e, g); err != nil {
				t.Errorf("p=%d %s owner-computes: %v", p, g.Name, err)
			}
		}
	}
}

func TestSingleWorkerMatchesSequential(t *testing.T) {
	g := graphs.LU(4)
	e := newEngine(t, core.Options{Workers: 1})
	if err := enginetest.Check(e, g); err != nil {
		t.Error(err)
	}
	st := e.Stats()
	if st.Executed() != int64(len(g.Tasks)) {
		t.Errorf("executed %d tasks, want %d", st.Executed(), len(g.Tasks))
	}
	if st.Declared() != 0 {
		t.Errorf("single worker declared %d foreign tasks", st.Declared())
	}
}

func TestTaskCountsAcrossWorkers(t *testing.T) {
	g := graphs.RandomDeps(500, 32, 2, 1, 3)
	p := 4
	e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	if _, err := enginetest.Run(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	n := int64(len(g.Tasks))
	if st.Executed() != n {
		t.Errorf("executed = %d, want %d", st.Executed(), n)
	}
	// Every worker unrolls the whole flow: executed + declared == n for
	// each worker (the decentralized overhead the paper's Fig. 7 shows).
	for w, ws := range st.Workers {
		if ws.Executed+ws.Declared != n {
			t.Errorf("worker %d processed %d tasks, want %d", w, ws.Executed+ws.Declared, n)
		}
	}
	if st.Declared() != n*int64(p-1) {
		t.Errorf("declared = %d, want %d", st.Declared(), n*int64(p-1))
	}
}

func TestClosureSubmitPath(t *testing.T) {
	const p = 3
	e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	var sum atomic.Int64
	err := e.Run(1, func(s stf.Submitter) {
		for i := 1; i <= 10; i++ {
			v := int64(i)
			s.Submit(func() { sum.Add(v) }, stf.RW(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 55 {
		t.Errorf("sum = %d, want 55", sum.Load())
	}
}

func TestClosureSubmitOrderOnSharedData(t *testing.T) {
	// All tasks RW the same data: execution must follow submission order
	// exactly, whichever worker owns each task.
	const p = 4
	e := newEngine(t, core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	var got []int
	err := e.Run(1, func(s stf.Submitter) {
		for i := 0; i < 50; i++ {
			i := i
			s.Submit(func() { got = append(got, i) }, stf.RW(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("executed %d tasks, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d executed task %d: chain order broken", i, v)
		}
	}
}

func TestMappingOutOfRangeReported(t *testing.T) {
	e := newEngine(t, core.Options{
		Workers: 2,
		Mapping: func(id stf.TaskID) stf.WorkerID { return 5 },
	})
	g := graphs.Independent(4)
	err := e.Run(0, stf.Replay(g, func(*stf.Task, stf.WorkerID) {}))
	if err == nil {
		t.Error("out-of-range mapping not reported")
	}
}

func TestTaskIDRegressionReported(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 1})
	tasks := []stf.Task{{ID: 0}, {ID: 0}}
	err := e.Run(0, func(s stf.Submitter) {
		s.SubmitTask(&tasks[0], func(*stf.Task, stf.WorkerID) {})
		s.SubmitTask(&tasks[1], func(*stf.Task, stf.WorkerID) {})
	})
	if err == nil {
		t.Error("task ID regression not reported")
	}
}

func TestNoAccountingStillCounts(t *testing.T) {
	g := graphs.LU(4)
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Cyclic(2), NoAccounting: true})
	if err := enginetest.Check(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Accounted {
		t.Error("stats claim accounting was on")
	}
	if st.Executed() != int64(len(g.Tasks)) {
		t.Errorf("executed = %d, want %d", st.Executed(), len(g.Tasks))
	}
	if st.Wall <= 0 {
		t.Error("wall time not measured")
	}
}

func TestStatsDecompositionSane(t *testing.T) {
	g := graphs.LU(6)
	e := newEngine(t, core.Options{Workers: 3, Mapping: sched.Cyclic(3)})
	if _, err := enginetest.Run(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	task, idle, rt := st.Cumulative()
	if task < 0 || idle < 0 || rt < 0 {
		t.Errorf("negative component: task=%v idle=%v runtime=%v", task, idle, rt)
	}
	if total := st.TotalCumulative(); task+idle+rt > total+total/4 {
		t.Errorf("components sum %v exceeds cumulative %v by >25%%", task+idle+rt, total)
	}
	for w, ws := range st.Workers {
		if ws.Wall < ws.Task+ws.Idle {
			t.Errorf("worker %d: wall %v < task %v + idle %v", w, ws.Wall, ws.Task, ws.Idle)
		}
	}
}

func TestEngineReusable(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 2, Mapping: sched.Cyclic(2)})
	g := graphs.GEMM(3)
	for run := 0; run < 3; run++ {
		if err := enginetest.Check(e, g); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
}

func TestPrunedReplayEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *stf.Graph
	}{
		{"independent", graphs.Independent(128)},
		{"lu", graphs.LU(6)},
		{"gemm", graphs.GEMM(4)},
		{"wavefront", graphs.Wavefront(5, 5)},
	} {
		want, err := enginetest.Golden(tc.g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 4} {
			m := sched.Cyclic(p)
			if tc.g.Name != "independent" {
				m = sched.OwnerComputes(tc.g, sched.NewGrid2D(p))
			}
			rel := sched.Relevant(tc.g, m, p)
			e := newEngine(t, core.Options{Workers: p, Mapping: m})
			got, err := enginetest.RunProgram(e, tc.g, func(k stf.Kernel) stf.Program {
				return sched.PrunedReplay(tc.g, k, rel)
			})
			if err != nil {
				t.Fatalf("%s p=%d: %v", tc.name, p, err)
			}
			if err := enginetest.Compare(tc.g, want, got); err != nil {
				t.Errorf("%s p=%d pruned: %v", tc.name, p, err)
			}
		}
	}
}

func TestPruningReducesDeclared(t *testing.T) {
	g := graphs.Independent(1000)
	p := 4
	m := sched.Cyclic(p)
	rel := sched.Relevant(g, m, p)

	full := newEngine(t, core.Options{Workers: p, Mapping: m})
	if _, err := enginetest.Run(full, g); err != nil {
		t.Fatal(err)
	}
	pruned := newEngine(t, core.Options{Workers: p, Mapping: m})
	if _, err := enginetest.RunProgram(pruned, g, func(k stf.Kernel) stf.Program {
		return sched.PrunedReplay(g, k, rel)
	}); err != nil {
		t.Fatal(err)
	}
	if fd, pd := full.Stats().Declared(), pruned.Stats().Declared(); pd != 0 || fd == 0 {
		t.Errorf("independent tasks: full declared=%d, pruned declared=%d (want >0 and 0)", fd, pd)
	}
}

// Property-based test: random task flows, random mappings, random worker
// counts — the decentralized engine must always match the sequential
// reference.
func TestPropertySequentialConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 60, 10)
		p := 1 + rng.Intn(5)
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			owners[i] = stf.WorkerID(rng.Intn(p))
		}
		e, err := core.New(core.Options{Workers: p, Mapping: sched.Table(owners)})
		if err != nil {
			return false
		}
		return enginetest.Check(e, g) == nil
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property-based test for pruning: pruned replay must be observationally
// identical to full replay under any random graph and mapping.
func TestPropertyPrunedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 40, 8)
		p := 1 + rng.Intn(4)
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			owners[i] = stf.WorkerID(rng.Intn(p))
		}
		m := sched.Table(owners)
		want, err := enginetest.Golden(g)
		if err != nil {
			return false
		}
		rel := sched.Relevant(g, m, p)
		e, err := core.New(core.Options{Workers: p, Mapping: m})
		if err != nil {
			return false
		}
		got, err := enginetest.RunProgram(e, g, func(k stf.Kernel) stf.Program {
			return sched.PrunedReplay(g, k, rel)
		})
		if err != nil {
			return false
		}
		return enginetest.Compare(g, want, got) == nil
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEmptyProgram(t *testing.T) {
	e := newEngine(t, core.Options{Workers: 3, Mapping: sched.Cyclic(3)})
	if err := e.Run(5, func(stf.Submitter) {}); err != nil {
		t.Fatal(err)
	}
	if n := e.Stats().Executed(); n != 0 {
		t.Errorf("executed %d tasks in empty program", n)
	}
}

func TestManyDataObjects(t *testing.T) {
	// One write + one read per data over many data objects: exercises
	// state allocation and per-data independence.
	const nd = 2000
	g := stf.NewGraph("wide", nd)
	for d := 0; d < nd; d++ {
		g.Add(0, d, 0, 0, stf.W(stf.DataID(d)))
	}
	for d := 0; d < nd; d++ {
		g.Add(0, d, 0, 0, stf.R(stf.DataID(d)))
	}
	e := newEngine(t, core.Options{Workers: 4, Mapping: sched.Cyclic(4)})
	if err := enginetest.Check(e, g); err != nil {
		t.Error(err)
	}
}

func chain(n int) *stf.Graph {
	g := stf.NewGraph("chain", 1)
	for i := 0; i < n; i++ {
		g.Add(0, i, 0, 0, stf.RW(0))
	}
	return g
}

func fanOut(n int) *stf.Graph {
	g := stf.NewGraph("fanout", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	for i := 1; i < n; i++ {
		g.Add(0, i, 0, 0, stf.R(0))
	}
	return g
}
