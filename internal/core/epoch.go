package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// gateSpin is the busy-poll budget of epochGate.Wait before it parks. Epoch
// hand-offs on a loaded pipeline resolve in microseconds (the flusher
// publishes the next window as soon as the barrier clears), so a short spin
// usually absorbs the whole wait; an idle stream parks on the channel.
const gateSpin = 2048

// epochGate is a monotonically advancing generation counter with an event
// gate: Wait(target) blocks until the generation reaches target. Each
// Advance closes the current park channel and replaces it with nil; a
// parked waiter woken by an older generation's close re-checks the counter
// and re-parks on the fresh channel. Generation numbers — never channel
// identity — decide progress, which is exactly why a stale wakeup (a close
// that raced a waiter from a previous epoch) can never satisfy a future
// target: the woken waiter re-reads the counter and parks again.
//
// The streaming session runs two gates: "published" (the flusher advances
// it when a window is handed to the workers) and "done" (the last worker
// arriving at the epoch barrier advances it). The single-outstanding-window
// invariant — published − done ≤ 1 — is enforced by the flusher waiting on
// "done" before advancing "published".
type epochGate struct {
	n      atomic.Uint64
	closed atomic.Bool
	mu     sync.Mutex
	ch     chan struct{}
}

// Current returns the gate's generation.
func (g *epochGate) Current() uint64 { return g.n.Load() }

// Advance publishes the next generation and wakes every parked waiter. The
// counter is advanced under the park mutex so a waiter that checked the
// counter inside the mutex and then parked cannot miss the close.
func (g *epochGate) Advance() {
	g.mu.Lock()
	g.n.Add(1)
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

// Close tears the gate down: every parked waiter wakes, and every present
// and future Wait whose target has not been reached returns false instead
// of blocking. Used at session shutdown so nothing can hang on a gate whose
// epochs will never advance again.
func (g *epochGate) Close() {
	g.mu.Lock()
	g.closed.Store(true)
	if g.ch != nil {
		close(g.ch)
		g.ch = nil
	}
	g.mu.Unlock()
}

// Wait blocks until the generation reaches target or the gate is closed,
// reporting which (true = target reached). Two phases: a short busy-poll
// for the common loaded-pipeline case, then channel parking with the
// mandatory generation re-check after every wakeup.
func (g *epochGate) Wait(target uint64) bool {
	for i := 0; i < gateSpin; i++ {
		if g.n.Load() >= target {
			return true
		}
		if g.closed.Load() {
			return g.n.Load() >= target
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	for {
		if g.n.Load() >= target {
			return true
		}
		if g.closed.Load() {
			return false
		}
		g.mu.Lock()
		if g.n.Load() >= target {
			g.mu.Unlock()
			return true
		}
		if g.closed.Load() {
			g.mu.Unlock()
			return false
		}
		if g.ch == nil {
			g.ch = make(chan struct{})
		}
		ch := g.ch
		g.mu.Unlock()
		<-ch
	}
}
