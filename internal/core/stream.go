// Streaming sessions: unbounded task flows executed window by window.
//
// The paper's model assumes a finite flow that every worker unrolls in
// full; a session removes that assumption while keeping the decentralized
// protocol intact. The producer records a bounded window of tasks with
// window-local IDs, publishes it, and all workers replay exactly that
// window — record-once-replay-everywhere, so replay divergence between
// workers is impossible by construction within a window. An epoch barrier
// separates consecutive windows: window k+1 is only published after every
// worker arrived at the end of window k, which makes the concatenation of
// windows sequentially consistent (everything in window k happens-before
// everything in window k+1).
//
// The barrier is also where per-data synchronization state is recycled:
// the last arriver resets the shared counters of the data the window
// touched (quiescent by definition — nobody is between a get and a
// terminate), and each worker resets its private counters for the next
// window's touched set before replaying it. State cost is O(numData) for
// the session plus O(touched) work per window — independent of how many
// tasks have flowed through, which is the whole point.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// WindowRun describes one window handed to a session's workers.
type WindowRun struct {
	// Tasks is the window's task table, IDs window-local (0..len-1). The
	// slice may alias a reusable recording buffer: the session guarantees it
	// is not read after the window's epoch barrier, so the producer may
	// reset the buffer as soon as the *next* Flush returns.
	Tasks []stf.Task
	// Kernel dispatches every task of the window (closure tasks are wrapped
	// into a kernel by the public layer). Required.
	Kernel stf.Kernel
	// Compiled optionally carries a program compiled from this window's
	// shape (same access structure, same mapping, same worker count). When
	// set, workers interpret its micro-op streams against Tasks; when nil,
	// workers replay Tasks through the closure protocol path with the
	// divergence guard armed per window (if the engine has it enabled).
	Compiled *stf.CompiledProgram
	// Touched lists the data objects the window accesses; exactly their
	// state is recycled at the window's epoch boundary.
	Touched []stf.DataID
}

// windowSpec is the published form of a window: the run plus the per-epoch
// machinery (abort latch, claim table for SharedWorker tasks, timeout
// timer). A spec with closed set is the shutdown marker, not a window.
type windowSpec struct {
	WindowRun
	epoch  uint64
	abort  *abortState
	claims *claimTable
	timer  *time.Timer
	closed bool
	// stealMeta carries the compiled window shape's steal metadata when the
	// session's engine has stealing enabled (nil for closure windows, which
	// record candidates live). Published with the spec, read-only after.
	stealMeta *stf.StealMeta
}

var errSessionClosed = errors.New("core: session is closed")

// Session executes an unbounded flow of windows over one engine's workers.
// The worker goroutines, the per-data shared state and the per-worker local
// arenas persist for the session's lifetime; windows borrow them between
// epoch barriers. Flush/Drain/Close must be called from a single producer
// goroutine. A failed window poisons the session: the error is sticky and
// no further windows run.
type Session struct {
	eng     *Engine
	numData int
	timeout time.Duration
	shared  []sharedState
	subs    []*submitter
	prog    *trace.ProgressTable

	pub  epochGate // windows published to the workers
	done epochGate // windows fully executed (barrier passed)

	spec      *windowSpec // current window; owned by the flusher between barriers
	published uint64

	// stealMetas caches steal metadata per compiled window shape (producer
	// side only; bounded by the caller's shape cache, which reuses
	// *CompiledProgram values for recurring shapes).
	stealMetas map[*stf.CompiledProgram]*stf.StealMeta

	arrivals atomic.Int32
	wg       sync.WaitGroup

	mu     sync.Mutex
	err    error
	closed bool
}

// OpenSession starts a streaming session over numData data objects. The
// engine's workers are spawned immediately and owned by the session until
// Close; Run and further OpenSession calls are rejected while it is open.
// timeout > 0 bounds each window's execution (a window exceeding it is
// aborted and poisons the session). The mapping is snapshotted at open:
// SetMapping during a session does not affect it.
//
// Sessions do not arm the stall watchdog (a window with no traffic is
// indistinguishable from a stall at this layer — use timeout for bounded
// windows), do not take checkpoints and ignore Options.Resume: those are
// finite-flow notions.
func (e *Engine) OpenSession(numData int, timeout time.Duration) (*Session, error) {
	if numData < 0 {
		return nil, errors.New("core: negative numData")
	}
	if !e.sessionActive.CompareAndSwap(false, true) {
		return nil, errors.New("core: engine already has an open streaming session")
	}
	shared := make([]sharedState, numData)
	for i := range shared {
		shared[i].recycle()
	}
	arena := newLocalArena(e.workers, numData)
	rp := trace.NewProgressTable(e.workers)
	e.progress.Store(rp)
	ss := &Session{
		eng:     e,
		numData: numData,
		timeout: timeout,
		shared:  shared,
		prog:    rp,
	}
	mapping := *e.mapping.Load()
	ss.subs = make([]*submitter, e.workers)
	for w := range ss.subs {
		ss.subs[w] = &submitter{
			eng:        e,
			worker:     stf.WorkerID(w),
			mapping:    mapping,
			shared:     shared,
			local:      arena.worker(w),
			prog:       rp.Worker(w),
			hooks:      e.hooks,
			retry:      e.retry,
			snaps:      e.snaps,
			spinBudget: e.spinLimit,
		}
		if e.steal != nil {
			ss.subs[w].steal = newStealState(e.steal, stf.WorkerID(w), e.workers)
		}
	}
	ss.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go ss.worker(w)
	}
	return ss, nil
}

// Flush publishes one window. It blocks until the previous window has fully
// completed (the epoch barrier), then hands the new window to the workers
// and returns immediately — the window executes while the producer records
// the next one, so recording and execution pipeline with exactly one
// window in flight. An empty window is a no-op. On a poisoned session the
// sticky error is returned and the window is dropped.
func (ss *Session) Flush(wr WindowRun) error {
	ss.mu.Lock()
	closed := ss.closed
	ss.mu.Unlock()
	if closed {
		return errSessionClosed
	}
	ss.done.Wait(ss.published)
	if err := ss.Err(); err != nil {
		return err
	}
	if len(wr.Tasks) == 0 {
		return nil
	}
	if wr.Kernel == nil {
		return errors.New("core: window has no kernel")
	}
	if cp := wr.Compiled; cp != nil {
		if cp.Workers != ss.eng.workers {
			return fmt.Errorf("core: window program compiled for %d workers, session has %d", cp.Workers, ss.eng.workers)
		}
		if len(cp.Tasks) != len(wr.Tasks) {
			return fmt.Errorf("core: window has %d tasks, its compiled shape %d", len(wr.Tasks), len(cp.Tasks))
		}
		if cp.NumData != ss.numData {
			return fmt.Errorf("core: window shape compiled over %d data, session has %d", cp.NumData, ss.numData)
		}
	}
	ss.published++
	spec := &windowSpec{
		WindowRun: wr,
		epoch:     ss.published,
		abort:     &abortState{},
		claims:    newClaimTable(),
	}
	shared := ss.shared
	spec.abort.onRaise = func() {
		for i := range shared {
			shared[i].wake()
		}
	}
	if ss.timeout > 0 {
		ab, d := spec.abort, ss.timeout
		spec.timer = time.AfterFunc(d, func() {
			ab.raise(fmt.Errorf("core: stream window exceeded its %v timeout", d), true)
		})
	}
	if ss.eng.steal != nil && wr.Compiled != nil {
		if ss.stealMetas == nil {
			ss.stealMetas = make(map[*stf.CompiledProgram]*stf.StealMeta)
		}
		meta := ss.stealMetas[wr.Compiled]
		if meta == nil {
			meta = stf.BuildStealMeta(wr.Compiled)
			ss.stealMetas[wr.Compiled] = meta
		}
		spec.stealMeta = meta
	}
	if h := ss.eng.hooks; h != nil && h.OnRunStart != nil {
		h.OnRunStart(ss.eng.workers, ss.numData)
	}
	ss.spec = spec
	ss.pub.Advance()
	return nil
}

// Drain blocks until every published window has completed, then reports the
// session's sticky error (nil if all windows succeeded so far).
func (ss *Session) Drain() error {
	ss.done.Wait(ss.published)
	return ss.Err()
}

// Close drains the session, stops the worker goroutines and releases the
// engine. Idempotent; returns the session's sticky error.
func (ss *Session) Close() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return ss.err
	}
	ss.closed = true
	ss.mu.Unlock()
	// Windows always reach their barrier (even failed ones), so this wait
	// terminates unless a task body is truly wedged — the same contract as
	// Run without the watchdog.
	ss.done.Wait(ss.published)
	ss.spec = &windowSpec{epoch: ss.published + 1, closed: true}
	ss.pub.Advance()
	ss.wg.Wait()
	ss.pub.Close()
	ss.done.Close()
	ss.prog.Finish()
	ss.eng.sessionActive.Store(false)
	return ss.Err()
}

// Err returns the session's sticky error: the verdict of the first failed
// window, wrapped with its epoch number.
func (ss *Session) Err() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.err
}

func (ss *Session) fail(err error) {
	ss.mu.Lock()
	if ss.err == nil {
		ss.err = err
	}
	ss.mu.Unlock()
}

// worker is one session worker goroutine: wait for the next epoch's window,
// replay it, arrive at the barrier, repeat until the shutdown spec (or a
// torn-down gate) is observed.
func (ss *Session) worker(w int) {
	defer ss.wg.Done()
	s := ss.subs[w]
	for next := uint64(1); ; next++ {
		if !ss.pub.Wait(next) {
			return // gate closed under us: session torn down
		}
		spec := ss.spec
		if spec.closed {
			return
		}
		ss.runWindow(s, spec)
		ss.arrive(spec)
	}
}

// runWindow replays one window on one worker: reset the worker's replay
// cursor and per-window plumbing, recycle its private state for the data
// this window touches, then walk the window — compiled micro-ops when the
// spec carries a program, the closure protocol path otherwise.
func (ss *Session) runWindow(s *submitter, spec *windowSpec) {
	s.next = 0
	s.err = nil
	s.abort = spec.abort
	s.claims = spec.claims
	if spec.Compiled == nil && ss.eng.guard {
		// Fresh divergence guard per epoch: each window is a complete replay
		// of its own flow, so the cross-worker fold/cross-check argument
		// applies window by window (see guardVerdict).
		s.guard = &guardState{}
	} else {
		s.guard = nil
	}
	for _, d := range spec.Touched {
		s.local[d].recycle()
	}
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("core: panic during replay: %v", r)
			s.fail(err)
			spec.abort.raise(err, false)
		}
	}()
	if st := s.steal; st != nil {
		st.reset(spec.stealMeta, spec.Tasks, spec.Kernel)
	}
	if cp := spec.Compiled; cp != nil {
		s.runStreamTasks(cp, spec.Tasks, spec.Kernel)
	} else {
		for i := range spec.Tasks {
			s.submitRecorded(&spec.Tasks[i], spec.Kernel)
		}
	}
	if s.steal != nil && s.err == nil {
		// Drain before arriving: every candidate of this window gets an
		// executor inside this epoch, so no steal crosses the barrier
		// (candidate state is also reset above — window-local by
		// construction).
		s.stealDrain()
	}
}

// arrive is the epoch barrier. The last worker to arrive owns the epoch's
// epilogue: assemble the window verdict from every worker's state (their
// writes happen-before their arrival increments, all observed by the last
// arriver), recycle the touched shared state on success, and advance the
// done gate — which both unblocks the flusher and carries the epilogue's
// writes to whichever worker starts the next window first.
func (ss *Session) arrive(spec *windowSpec) {
	if int(ss.arrivals.Add(1)) < ss.eng.workers {
		return
	}
	ss.arrivals.Store(0)
	if spec.timer != nil {
		spec.timer.Stop()
	}
	var errs []error
	aborted := 0
	for w, s := range ss.subs {
		switch {
		case s.err == nil:
		case errors.Is(s.err, errAborted):
			aborted++
		default:
			errs = append(errs, fmt.Errorf("worker %d: %w", w, s.err))
		}
	}
	if len(errs) > 0 || aborted > 0 {
		// The originating failure first when it came from outside the
		// workers (the window timeout). A raise that lost the race against
		// a fully completed window — every worker clean — is ignored: the
		// window met its deadline.
		if cause, external := spec.abort.state(); external && cause != nil {
			errs = append([]error{cause}, errs...)
		}
		if aborted > 0 {
			errs = append(errs, fmt.Errorf("core: %d worker(s) %w", aborted, errAborted))
		}
	} else if spec.Compiled == nil && ss.eng.guard {
		if err := guardVerdict(ss.subs); err != nil {
			errs = append(errs, fmt.Errorf("core: %w", err))
		}
	}
	if err := errors.Join(errs...); err != nil {
		ss.fail(fmt.Errorf("core: stream window %d: %w", spec.epoch, err))
	} else {
		// Quiescent recycle: every worker is past its last terminate on this
		// window's data and parked-waiter registration is zero (a successful
		// window leaves no waiter behind). Skipped on failure — the session
		// is poisoned and the state is never read again.
		for _, d := range spec.Touched {
			ss.shared[d].recycle()
		}
	}
	if h := ss.eng.hooks; h != nil && h.OnRunEnd != nil {
		h.OnRunEnd(ss.Err())
	}
	ss.done.Advance()
}
