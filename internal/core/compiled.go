package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rio/internal/stf"
)

// RunCompiled executes a compiled program (stf.Compile) with kernel k.
// This is the fast replay path: instead of every worker re-unrolling the
// task flow through the Submitter interface, each worker interprets its
// pre-resolved instruction stream — the replay term n·t_r of the paper's
// cost model (eq. 2) was paid once at compile time. The synchronization
// protocol (Algorithms 1 and 2) and its shared state are exactly those of
// the closure path; only the flow-unrolling layer above them changes.
func (e *Engine) RunCompiled(cp *stf.CompiledProgram, k stf.Kernel) error {
	return e.RunCompiledContext(context.Background(), cp, k)
}

// RunCompiledContext is RunCompiled with cancellation, with the semantics
// of RunContext. The program must have been compiled for exactly this
// engine's worker count; the engine's own mapping is NOT consulted — the
// ownership baked into the streams at compile time governs.
//
// The replay-divergence guard never runs on this path: all workers'
// streams derive from the same recorded graph, so replay divergence is
// impossible by construction.
func (e *Engine) RunCompiledContext(ctx context.Context, cp *stf.CompiledProgram, k stf.Kernel) error {
	if cp == nil {
		return errors.New("core: nil compiled program")
	}
	if k == nil {
		return errors.New("core: nil kernel")
	}
	if cp.Workers != e.workers {
		return fmt.Errorf("core: program compiled for %d workers run on an engine with %d", cp.Workers, e.workers)
	}
	if e.resume != nil {
		// Checkpoint resume is literal §3.5-style stream pruning: the
		// completed tasks' micro-ops are dropped from every stream.
		cp = stf.PruneCompleted(cp, e.resume)
	}
	// Steal metadata is derived from the (possibly pruned) program actually
	// run, so resumed tasks are never stealable — consistently with every
	// worker's stream having dropped them.
	var meta *stf.StealMeta
	if e.steal != nil {
		meta = e.stealMetaFor(cp)
	}
	return e.run(ctx, cp.NumData, false, len(cp.Tasks), func(s *submitter) {
		if s.steal != nil {
			s.steal.reset(meta, cp.Tasks, k)
		}
		s.runStream(cp, k)
	})
}

// runStream is the compiled execution loop: a flat walk over this worker's
// micro-op stream. Declares and terminates call the localState/sharedState
// protocol primitives directly; gets reuse the same escalating waits as
// closure replay (so the stall watchdog and abort latch behave
// identically); OpExec polls the abort flag once per task, mirroring the
// per-submission poll of the closure path.
func (s *submitter) runStream(cp *stf.CompiledProgram, k stf.Kernel) {
	s.runStreamTasks(cp, cp.Tasks, k)
}

// runStreamTasks interprets cp's micro-op stream for this worker against an
// explicit task table. For a one-shot run the table is cp.Tasks itself;
// streaming sessions pass the current window's tasks instead — a cached
// program carries only the window's *shape* (access structure and
// ownership), while kernel selectors, coordinates and closure bodies vary
// window to window. len(tasks) must equal len(cp.Tasks); the session
// enforces this via the shape fingerprint before publishing a window.
func (s *submitter) runStreamTasks(cp *stf.CompiledProgram, tasks []stf.Task, k stf.Kernel) {
	if st := s.steal; st != nil && st.meta != nil {
		// The steal-aware interpreter lives in its own loop so the
		// nil-policy walk below keeps its single-pointer-test cost.
		s.runStreamTasksSteal(cp, tasks, k)
		return
	}
	stream := cp.Streams[s.worker]
	for i := range stream {
		in := &stream[i]
		switch in.Op {
		case stf.OpDeclareRead:
			s.local[in.Data].declareRead()
		case stf.OpDeclareWrite:
			s.local[in.Data].declareWrite(int64(in.Task))
		case stf.OpDeclareRed:
			s.local[in.Data].declareRed()
		case stf.OpGetRead:
			s.getRead(stf.TaskID(in.Task), stf.Access{Data: in.Data, Mode: in.Mode})
			if s.err != nil {
				return // aborted while waiting
			}
		case stf.OpGetWrite:
			s.getWrite(stf.TaskID(in.Task), stf.Access{Data: in.Data, Mode: in.Mode})
			if s.err != nil {
				return
			}
		case stf.OpGetRed:
			s.getRed(stf.TaskID(in.Task), stf.Access{Data: in.Data, Mode: in.Mode})
			if s.err != nil {
				return
			}
		case stf.OpExec:
			if s.abort.raised() {
				s.fail(errAborted)
				return
			}
			s.execCompiled(&tasks[in.Task], k)
			if s.err != nil {
				return // task failed terminally (retries exhausted)
			}
		case stf.OpTermRead:
			s.local[in.Data].terminateRead(&s.shared[in.Data])
		case stf.OpTermWrite:
			s.local[in.Data].terminateWrite(&s.shared[in.Data], int64(in.Task))
		case stf.OpTermRed:
			s.local[in.Data].terminateRed(&s.shared[in.Data])
		default:
			err := fmt.Errorf("core: corrupt compiled stream: op %d at %d", in.Op, i)
			s.fail(err)
			s.abort.raise(err, false)
			return
		}
	}
	// Declared counts are known at compile time; charge them only on a
	// completed stream (an aborted run reports what actually happened:
	// Executed is counted live, Declared is unavailable). Resume-pruned
	// owned tasks are charged the same way. The counts accumulate so a
	// streaming session's windows add up; one-shot runs start from zero.
	s.ws.Declared += cp.Stats[s.worker].Declared
	s.prog.StoreDeclared(s.ws.Declared)
	if sk := cp.Stats[s.worker].Skipped; sk > 0 {
		s.ws.Skipped += sk
		s.prog.StoreSkipped(s.ws.Skipped)
	}
}

// runStreamTasksSteal is the steal-enabled twin of the interpreter loop.
// Owned tasks are claimed at their first micro-op — before the gets, which
// is load-bearing: a stolen-and-executed task's terminates have already
// advanced the shared counters past the values the owner's gets would wait
// for, so the owner must decide *before* waiting. On a lost claim the
// owner skips the task's gets and exec and converts its terminates into
// the local declares it would have performed for any foreign task.
func (s *submitter) runStreamTasksSteal(cp *stf.CompiledProgram, tasks []stf.Task, k stf.Kernel) {
	stream := cp.Streams[s.worker]
	cur := int32(-1) // owned task the current claim verdict applies to
	lost := false    // cur was stolen
	boundary := func(task int32) {
		if task == cur {
			return
		}
		cur = task
		lost = !s.claims.tryClaim(int64(task))
		if lost {
			// A stolen own task is accounted like a foreign one; the
			// compile-time Declared charge below never includes own tasks.
			s.ws.Declared++
			s.prog.StoreDeclared(s.ws.Declared)
		}
	}
	for i := range stream {
		in := &stream[i]
		switch in.Op {
		case stf.OpDeclareRead:
			s.local[in.Data].declareRead()
		case stf.OpDeclareWrite:
			s.local[in.Data].declareWrite(int64(in.Task))
		case stf.OpDeclareRed:
			s.local[in.Data].declareRed()
		case stf.OpGetRead:
			boundary(in.Task)
			if lost {
				continue
			}
			s.getRead(stf.TaskID(in.Task), stf.Access{Data: in.Data, Mode: in.Mode})
			if s.err != nil {
				return // aborted while waiting
			}
		case stf.OpGetWrite:
			boundary(in.Task)
			if lost {
				continue
			}
			s.getWrite(stf.TaskID(in.Task), stf.Access{Data: in.Data, Mode: in.Mode})
			if s.err != nil {
				return
			}
		case stf.OpGetRed:
			boundary(in.Task)
			if lost {
				continue
			}
			s.getRed(stf.TaskID(in.Task), stf.Access{Data: in.Data, Mode: in.Mode})
			if s.err != nil {
				return
			}
		case stf.OpExec:
			boundary(in.Task) // access-free tasks open with their exec
			if lost {
				continue
			}
			if s.abort.raised() {
				s.fail(errAborted)
				return
			}
			s.execCompiled(&tasks[in.Task], k)
			if s.err != nil {
				return // task failed terminally (retries exhausted)
			}
		case stf.OpTermRead:
			if lost && in.Task == cur {
				s.local[in.Data].declareRead()
				continue
			}
			s.local[in.Data].terminateRead(&s.shared[in.Data])
		case stf.OpTermWrite:
			if lost && in.Task == cur {
				s.local[in.Data].declareWrite(int64(in.Task))
				continue
			}
			s.local[in.Data].terminateWrite(&s.shared[in.Data], int64(in.Task))
		case stf.OpTermRed:
			if lost && in.Task == cur {
				s.local[in.Data].declareRed()
				continue
			}
			s.local[in.Data].terminateRed(&s.shared[in.Data])
		default:
			err := fmt.Errorf("core: corrupt compiled stream: op %d at %d", in.Op, i)
			s.fail(err)
			s.abort.raise(err, false)
			return
		}
	}
	s.ws.Declared += cp.Stats[s.worker].Declared
	s.prog.StoreDeclared(s.ws.Declared)
	if sk := cp.Stats[s.worker].Skipped; sk > 0 {
		s.ws.Skipped += sk
		s.prog.StoreSkipped(s.ws.Skipped)
	}
}

// execCompiled runs one task body of a compiled stream between its
// reduction locks. Unlike the closure path's execLocked, completion is
// NOT published here — the stream carries explicit terminate micro-ops.
// The reduction mutexes are therefore released before the terminates
// publish the counters, which is safe: the mutex only serializes bodies
// of commuting reductions, while waiters are gated by the counters, which
// advance only after the body has completed either way. Under a retry
// policy a terminal task failure sets s.err and the stream walk stops
// before the task's terminates — completion stays unpublished, exactly as
// a closure-path failure leaves release() uncalled.
func (s *submitter) execCompiled(t *stf.Task, k stf.Kernel) {
	if s.lockReductions(t.Accesses) {
		defer s.unlockReductions(t.Accesses)
	}
	if h := s.health; h != nil {
		h.setExec(int64(t.ID))
		defer h.endExec()
	}
	s.prog.SetCurrent(t.ID)
	if h := s.hooks; h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(s.worker, t.ID)
	}
	if s.retry != nil {
		if !s.runAttempts(t.Accesses, int64(t.ID), func() { k(t, s.worker) }) {
			s.prog.SetCurrent(stf.NoTask)
			return
		}
	} else if s.eng.noAcct {
		k(t, s.worker)
	} else {
		t0 := time.Now()
		k(t, s.worker)
		s.ws.Task += time.Since(t0)
	}
	if h := s.hooks; h != nil && h.OnTaskEnd != nil {
		h.OnTaskEnd(s.worker, t.ID)
	}
	s.prog.SetCurrent(stf.NoTask)
	s.ws.Executed++
	s.prog.StoreExecuted(s.ws.Executed)
	if s.track {
		s.done = append(s.done, t.ID)
	}
}
