// Package hpl implements the paper's motivating application (§1): the core
// of the High Performance Linpack benchmark — a right-looking blocked LU
// factorization *with partial pivoting* — expressed as a sequential task
// flow whose panel operations are fine-grained tasks.
//
// "While most operations are performed at coarse granularity, the pivoting
// itself requires fine-grained operations that can not be efficiently
// executed as tasks with such runtime systems." This package builds that
// exact task flow: per-column pivot-search/scale tasks, per-column row
// swaps, per-column panel rank-1 updates (all fine-grained), plus the
// per-column laswp / trsm / gemm trailing updates — and runs it unchanged
// under any of the repository's execution models.
//
// Synchronization granularity is one data object per matrix column; the
// matrix is stored column-major so each data object covers contiguous
// memory. Pivot indices live alongside their column (written by the
// pivot task that owns the column, read through the column's dependency).
package hpl

import (
	"fmt"
	"math"
)

// Dense is an n×n column-major dense matrix: Col(j)[i] is A[i][j].
type Dense struct {
	// N is the matrix dimension.
	N    int
	cols [][]float64
}

// NewDense allocates an n×n zero matrix backed by one contiguous slab.
func NewDense(n int) (*Dense, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hpl: invalid dimension %d", n)
	}
	backing := make([]float64, n*n)
	d := &Dense{N: n, cols: make([][]float64, n)}
	for j := range d.cols {
		d.cols[j], backing = backing[:n:n], backing[n:]
	}
	return d, nil
}

// Col returns column j (length N).
func (d *Dense) Col(j int) []float64 { return d.cols[j] }

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.cols[j][i] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.cols[j][i] = v }

// Clone deep-copies the matrix.
func (d *Dense) Clone() *Dense {
	c, _ := NewDense(d.N)
	for j := range d.cols {
		copy(c.cols[j], d.cols[j])
	}
	return c
}

// FillRandom fills the matrix with deterministic well-conditioned values
// (uniform in [-0.5, 0.5) with a strengthened diagonal) from seed. HPL uses
// a random matrix; the diagonal boost keeps growth factors tame at any
// size so residual checks stay tight.
func (d *Dense) FillRandom(seed uint64) {
	s := seed
	for j := 0; j < d.N; j++ {
		col := d.cols[j]
		for i := range col {
			s = s*6364136223846793005 + 1442695040888963407
			col[i] = float64(int64(s>>33)%2000)/2000.0 - 0.5
		}
	}
	for i := 0; i < d.N; i++ {
		d.cols[i][i] += 2
	}
}

// MaxAbs returns the largest absolute entry (for scaling residuals).
func (d *Dense) MaxAbs() float64 {
	var m float64
	for _, col := range d.cols {
		for _, v := range col {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	return m
}

// ApplyPivots permutes the rows of d in place according to ipiv in LAPACK
// getrf semantics: for c = 0..n-1 in order, swap rows c and ipiv[c].
func (d *Dense) ApplyPivots(ipiv []int) {
	for c := 0; c < d.N && c < len(ipiv); c++ {
		p := ipiv[c]
		if p == c {
			continue
		}
		for j := 0; j < d.N; j++ {
			col := d.cols[j]
			col[c], col[p] = col[p], col[c]
		}
	}
}

// Reconstruct multiplies the packed LU factors back: returns L·U where L is
// unit lower triangular (strictly-lower part of d) and U upper triangular.
func (d *Dense) Reconstruct() *Dense {
	n := d.N
	out, _ := NewDense(n)
	for j := 0; j < n; j++ {
		oc := out.cols[j]
		for i := 0; i < n; i++ {
			var s float64
			kmax := min(i, j)
			for k := 0; k <= kmax; k++ {
				l := d.cols[k][i]
				if k == i {
					l = 1
				}
				if k > i {
					l = 0
				}
				s += l * d.cols[j][k]
			}
			oc[i] = s
		}
	}
	return out
}

// Residual returns max |a-b| / (n · max|a|): the normalized factorization
// residual used to accept a run.
func Residual(a, b *Dense) float64 {
	var m float64
	for j := 0; j < a.N; j++ {
		ca, cb := a.cols[j], b.cols[j]
		for i := range ca {
			if d := math.Abs(ca[i] - cb[i]); d > m {
				m = d
			}
		}
	}
	scale := a.MaxAbs() * float64(a.N)
	if scale == 0 {
		return m
	}
	return m / scale
}
