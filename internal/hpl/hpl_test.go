package hpl_test

import (
	"testing"
	"testing/quick"

	"rio/internal/bench"
	"rio/internal/hpl"
	"rio/internal/sched"
	"rio/internal/stf"
)

// factor runs the flow on the given engine kind and returns the residual
// ‖L·U − P·A‖ / (n·‖A‖).
func factor(t *testing.T, kind bench.EngineKind, n, b, workers int, seed uint64) float64 {
	t.Helper()
	f, err := hpl.NewFlow(n, b)
	if err != nil {
		t.Fatal(err)
	}
	f.A.FillRandom(seed)
	orig := f.A.Clone()

	var kerr error
	kern := f.Kernel(func(e error) { kerr = e })
	mapping := f.ColumnMapping(max(1, workers))
	e, err := bench.NewEngine(kind, workers, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(f.Graph.NumData, stf.Replay(f.Graph, kern)); err != nil {
		t.Fatal(err)
	}
	if kerr != nil {
		t.Fatal(kerr)
	}
	orig.ApplyPivots(f.Ipiv)
	return hpl.Residual(f.A.Reconstruct(), orig)
}

func TestSequentialFactorization(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{8, 4}, {16, 4}, {32, 8}, {64, 16}, {48, 48}} {
		if r := factor(t, bench.Sequential, tc.n, tc.b, 1, 1); r > 1e-12 {
			t.Errorf("n=%d b=%d: residual %g", tc.n, tc.b, r)
		}
	}
}

func TestPivotingActuallyPivots(t *testing.T) {
	// A matrix needing pivoting: zero on the leading diagonal position.
	f, err := hpl.NewFlow(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.A.FillRandom(3)
	f.A.Set(0, 0, 0) // forces ipiv[0] != 0
	orig := f.A.Clone()
	var kerr error
	e, _ := bench.NewEngine(bench.Sequential, 1, nil)
	if err := e.Run(f.Graph.NumData, stf.Replay(f.Graph, f.Kernel(func(e error) { kerr = e }))); err != nil {
		t.Fatal(err)
	}
	if kerr != nil {
		t.Fatal(kerr)
	}
	if f.Ipiv[0] == 0 {
		t.Error("pivot search kept a zero pivot in place")
	}
	orig.ApplyPivots(f.Ipiv)
	if r := hpl.Residual(f.A.Reconstruct(), orig); r > 1e-12 {
		t.Errorf("residual %g", r)
	}
}

func TestParallelEnginesMatch(t *testing.T) {
	for _, kind := range []bench.EngineKind{bench.RIO, bench.CentralizedFIFO, bench.CentralizedWS, bench.CentralizedPrio} {
		for _, workers := range []int{2, 4} {
			if r := factor(t, kind, 32, 8, workers, 7); r > 1e-12 {
				t.Errorf("%s p=%d: residual %g", kind, workers, r)
			}
		}
	}
}

func TestFlowShape(t *testing.T) {
	f, err := hpl.NewFlow(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Panel tasks per panel: b pivscale + b(b-1) swaps + b(b-1)/2 rank-1.
	b, panels := 8, 4
	wantPanel := panels * (b + b*(b-1) + b*(b-1)/2)
	if f.PanelTasks != wantPanel {
		t.Errorf("panel tasks = %d, want %d", f.PanelTasks, wantPanel)
	}
	// The fine-grained share should dominate the task flow — the paper's
	// point about HPL.
	if 2*f.PanelTasks < len(f.Graph.Tasks) {
		t.Errorf("panel (fine-grained) tasks %d are not the majority of %d", f.PanelTasks, len(f.Graph.Tasks))
	}
}

func TestNewFlowValidation(t *testing.T) {
	if _, err := hpl.NewFlow(10, 3); err == nil {
		t.Error("b not dividing n accepted")
	}
	if _, err := hpl.NewFlow(0, 1); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestColumnMappingValid(t *testing.T) {
	f, err := hpl.NewFlow(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4} {
		if err := sched.Validate(f.Graph, f.ColumnMapping(p), p); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

func TestDenseHelpers(t *testing.T) {
	d, err := hpl.NewDense(4)
	if err != nil {
		t.Fatal(err)
	}
	d.Set(1, 2, -3)
	if d.At(1, 2) != -3 || d.Col(2)[1] != -3 {
		t.Error("Set/At/Col mismatch")
	}
	if d.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", d.MaxAbs())
	}
	c := d.Clone()
	c.Set(1, 2, 5)
	if d.At(1, 2) != -3 {
		t.Error("Clone aliases the original")
	}
	if _, err := hpl.NewDense(0); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestApplyPivotsComposes(t *testing.T) {
	d, _ := hpl.NewDense(3)
	for i := 0; i < 3; i++ {
		d.Set(i, 0, float64(i))
	}
	// ipiv = [2, 2]: swap rows 0,2 then rows 1,2.
	d.ApplyPivots([]int{2, 2})
	got := []float64{d.At(0, 0), d.At(1, 0), d.At(2, 0)}
	want := []float64{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after pivots col0 = %v, want %v", got, want)
		}
	}
}

// Property: random sizes, blockings, seeds and worker counts all factor
// correctly under RIO.
func TestPropertyFactorization(t *testing.T) {
	f := func(seed uint64) bool {
		nb := []struct{ n, b int }{{8, 2}, {12, 4}, {16, 8}, {24, 6}}
		c := nb[seed%uint64(len(nb))]
		workers := 1 + int(seed%3)
		fl, err := hpl.NewFlow(c.n, c.b)
		if err != nil {
			return false
		}
		fl.A.FillRandom(seed)
		orig := fl.A.Clone()
		var kerr error
		e, err := bench.NewEngine(bench.RIO, workers, fl.ColumnMapping(workers))
		if err != nil {
			return false
		}
		if err := e.Run(fl.Graph.NumData, stf.Replay(fl.Graph, fl.Kernel(func(e error) { kerr = e }))); err != nil {
			return false
		}
		if kerr != nil {
			return false
		}
		orig.ApplyPivots(fl.Ipiv)
		return hpl.Residual(fl.A.Reconstruct(), orig) < 1e-10
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
