package hpl

import (
	"fmt"
	"math"

	"rio/internal/stf"
)

// Kernel selectors of the pivoted-LU task flow.
const (
	// KPivScale searches the pivot of a column, records it, swaps it into
	// place within the column and scales the sub-diagonal (fine-grained,
	// one column of work).
	KPivScale = iota
	// KSwap applies one pivot interchange to one other panel column.
	KSwap
	// KRank1 applies one column's rank-1 panel update to one other panel
	// column.
	KRank1
	// KLaswp applies a panel's accumulated interchanges to one non-panel
	// column.
	KLaswp
	// KTrsm solves the unit-lower triangular panel system for one
	// trailing column (rows of the panel).
	KTrsm
	// KGemm applies the panel's Schur complement to one trailing column
	// (rows below the panel).
	KGemm
)

// Flow is the task-based pivoted LU factorization of one matrix.
type Flow struct {
	// Graph is the recorded task flow; one data object per column.
	Graph *stf.Graph
	// A is the matrix factored in place, Ipiv the pivot rows (LAPACK
	// getrf semantics).
	A    *Dense
	Ipiv []int
	// B is the block (panel) width.
	B int
	// PanelTasks counts the fine-grained tasks (pivot, swap, rank-1) —
	// the work the paper says makes HPL hard for centralized runtimes.
	PanelTasks int
}

// NewFlow builds the task flow for an n×n matrix with panel width b
// (b must divide n). The matrix contents can be (re)filled afterwards;
// the flow depends only on the shape.
func NewFlow(n, b int) (*Flow, error) {
	if n <= 0 || b <= 0 || n%b != 0 {
		return nil, fmt.Errorf("hpl: invalid blocking %d/%d", n, b)
	}
	a, err := NewDense(n)
	if err != nil {
		return nil, err
	}
	f := &Flow{A: a, Ipiv: make([]int, n), B: b}
	f.Graph = f.build(n, b)
	return f, nil
}

// col is the data object of column j.
func col(j int) stf.DataID { return stf.DataID(j) }

func (f *Flow) build(n, b int) *stf.Graph {
	g := stf.NewGraph("hpl-lu", n)
	for kb := 0; kb < n; kb += b {
		// Panel factorization: fine-grained per-column tasks.
		for c := kb; c < kb+b; c++ {
			g.Add(KPivScale, c, c, kb, stf.RW(col(c)))
			f.PanelTasks++
			for c2 := kb; c2 < kb+b; c2++ {
				if c2 == c {
					continue
				}
				g.Add(KSwap, c, c2, kb, stf.R(col(c)), stf.RW(col(c2)))
				f.PanelTasks++
			}
			for c2 := c + 1; c2 < kb+b; c2++ {
				g.Add(KRank1, c, c2, kb, stf.R(col(c)), stf.RW(col(c2)))
				f.PanelTasks++
			}
		}
		// Trailing and left updates: per-column tasks reading the panel.
		reads := make([]stf.Access, 0, b)
		for c := kb; c < kb+b; c++ {
			reads = append(reads, stf.R(col(c)))
		}
		for c2 := 0; c2 < n; c2++ {
			if c2 >= kb && c2 < kb+b {
				continue
			}
			accesses := append(append(make([]stf.Access, 0, b+1), reads...), stf.RW(col(c2)))
			g.Add(KLaswp, kb, c2, kb, accesses...)
			if c2 >= kb+b {
				accesses = append(append(make([]stf.Access, 0, b+1), reads...), stf.RW(col(c2)))
				g.Add(KTrsm, kb, c2, kb, accesses...)
				accesses = append(append(make([]stf.Access, 0, b+1), reads...), stf.RW(col(c2)))
				g.Add(KGemm, kb, c2, kb, accesses...)
			}
		}
	}
	return g
}

// Kernel returns the stf.Kernel executing the flow's tasks against f.A and
// f.Ipiv. Zero pivots are reported to sink (the diagonal-boosted random
// matrices never produce one).
func (f *Flow) Kernel(sink func(error)) stf.Kernel {
	a, ipiv, n := f.A, f.Ipiv, f.A.N
	return func(t *stf.Task, _ stf.WorkerID) {
		switch t.Kernel {
		case KPivScale:
			c := t.I
			cc := a.Col(c)
			p := c
			best := math.Abs(cc[c])
			for i := c + 1; i < n; i++ {
				if v := math.Abs(cc[i]); v > best {
					best, p = v, i
				}
			}
			ipiv[c] = p
			cc[c], cc[p] = cc[p], cc[c]
			if cc[c] == 0 {
				if sink != nil {
					sink(fmt.Errorf("hpl: zero pivot at column %d", c))
				}
				return
			}
			inv := 1 / cc[c]
			for i := c + 1; i < n; i++ {
				cc[i] *= inv
			}
		case KSwap:
			c, c2 := t.I, t.J
			p := ipiv[c]
			if p != c {
				cc := a.Col(c2)
				cc[c], cc[p] = cc[p], cc[c]
			}
		case KRank1:
			c, c2 := t.I, t.J
			src, dst := a.Col(c), a.Col(c2)
			mult := dst[c]
			if mult != 0 {
				for i := c + 1; i < n; i++ {
					dst[i] -= src[i] * mult
				}
			}
		case KLaswp:
			kb, c2 := t.I, t.J
			cc := a.Col(c2)
			for c := kb; c < kb+f.B; c++ {
				if p := ipiv[c]; p != c {
					cc[c], cc[p] = cc[p], cc[c]
				}
			}
		case KTrsm:
			kb, c2 := t.I, t.J
			cc := a.Col(c2)
			for r := kb + 1; r < kb+f.B; r++ {
				var s float64
				for rr := kb; rr < r; rr++ {
					s += a.Col(rr)[r] * cc[rr]
				}
				cc[r] -= s
			}
		case KGemm:
			kb, c2 := t.I, t.J
			cc := a.Col(c2)
			for i := kb + f.B; i < n; i++ {
				var s float64
				for r := kb; r < kb+f.B; r++ {
					s += a.Col(r)[i] * cc[r]
				}
				cc[i] -= s
			}
		default:
			if sink != nil {
				sink(fmt.Errorf("hpl: unknown kernel %d", t.Kernel))
			}
		}
	}
}

// ColumnMapping maps every task to the owner of the column it writes,
// distributed cyclically over p workers — the 1-D block-cyclic column
// distribution HPL itself uses (its process grids distribute columns).
func (f *Flow) ColumnMapping(p int) stf.Mapping {
	owners := make([]stf.WorkerID, len(f.Graph.Tasks))
	for i := range f.Graph.Tasks {
		t := &f.Graph.Tasks[i]
		// The written column is the data of the last access (RW).
		written := t.Accesses[len(t.Accesses)-1].Data
		owners[i] = stf.WorkerID(int(written) % p)
	}
	return func(id stf.TaskID) stf.WorkerID { return owners[id] }
}

// FLOPs returns the nominal LU operation count 2n³/3 used for GFLOPS
// reporting.
func (f *Flow) FLOPs() float64 {
	n := float64(f.A.N)
	return 2 * n * n * n / 3
}
