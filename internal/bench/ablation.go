package bench

import (
	"fmt"

	"rio/internal/centralized"
	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

// Ablation studies for the design choices of both execution models:
//
//   - centralized dispatch strategy (single FIFO vs work-stealing deques,
//     hinted or not) — the "scheduling heuristics" axis of §3.1;
//   - submission-window size — the task-storage bound of the centralized
//     model (its space is linear in in-flight tasks, §3.1);
//   - RIO's wait spin budget — the busy-poll/yield/sleep escalation of the
//     decentralized synchronization waits;
//   - mapping quality — the paper's central assumption that a proper
//     static mapping is supplied (§3.2): good vs oblivious mappings on
//     dependency-heavy graphs;
//   - trace instrumentation overhead — why the paper's evaluation avoids
//     dumping traces at fine granularity (§5.1).

// AblationConfig parameterizes the ablation suite.
type AblationConfig struct {
	// Workers, Warmup, Reps as elsewhere.
	Workers      int
	Warmup, Reps int
	// TaskSize is the synthetic kernel size used throughout (fine-grained
	// by default in the CLI).
	TaskSize uint64
	// Tasks scales the workloads.
	Tasks int
}

func (c AblationConfig) check() error {
	if c.Workers < 2 || c.Tasks < 1 {
		return fmt.Errorf("bench: bad ablation config %+v", c)
	}
	return nil
}

// SchedulerAblation compares the centralized engine's dispatch strategies
// on the LU graph.
func SchedulerAblation(cfg AblationConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	nt := 2
	for graphs.LUTaskCount(nt+1) <= cfg.Tasks {
		nt++
	}
	g := graphs.LU(nt)
	hint := sched.Cyclic(cfg.Workers - 1) // executor IDs
	variants := []struct {
		name string
		opts centralized.Options
	}{
		{"fifo", centralized.Options{Workers: cfg.Workers}},
		{"ws", centralized.Options{Workers: cfg.Workers, Scheduler: centralized.WorkStealing}},
		{"ws+hint", centralized.Options{Workers: cfg.Workers, Scheduler: centralized.WorkStealing, Hint: hint}},
		{"prio", centralized.Options{Workers: cfg.Workers, Scheduler: centralized.Priority}},
	}
	var rows []Row
	for _, v := range variants {
		e, err := centralized.New(v.opts)
		if err != nil {
			return nil, err
		}
		row, err := ablationRun(e, g, cfg, "ablation-sched", v.name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WindowAblation sweeps the centralized submission window on the
// random-dependency graph.
func WindowAblation(cfg AblationConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	g := graphs.RandomDeps(cfg.Tasks, 128, 2, 1, 42)
	var rows []Row
	for _, window := range []int{1, 4, 16, 64, 256, 0} {
		e, err := centralized.New(centralized.Options{Workers: cfg.Workers, Window: window})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("window=%d", window)
		if window == 0 {
			name = "window=∞"
		}
		row, err := ablationRun(e, g, cfg, "ablation-window", name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SpinAblation sweeps RIO's wait spin budget on the dependency-heavy LU
// graph.
func SpinAblation(cfg AblationConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	nt := 2
	for graphs.LUTaskCount(nt+1) <= cfg.Tasks {
		nt++
	}
	g := graphs.LU(nt)
	m := sched.OwnerComputes(g, sched.NewGrid2D(cfg.Workers))
	var rows []Row
	for _, spin := range []int{1, 16, 128, 1024, 8192} {
		e, err := core.New(core.Options{Workers: cfg.Workers, Mapping: m, SpinLimit: spin})
		if err != nil {
			return nil, err
		}
		row, err := ablationRun(e, g, cfg, "ablation-spin", fmt.Sprintf("spin=%d", spin))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MappingAblation contrasts mapping qualities on the wavefront graph under
// RIO — the paper's "proper task mapping supplied by the programmer"
// assumption made measurable.
func MappingAblation(cfg AblationConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	side := 4
	for (side+1)*(side+1) <= cfg.Tasks {
		side++
	}
	g := graphs.Wavefront(side, side)
	rowBand := (side + cfg.Workers - 1) / cfg.Workers
	mappings := []struct {
		name string
		m    stf.Mapping
	}{
		{"row-block", sched.FromTask(g, func(t *stf.Task) stf.WorkerID {
			w := t.I / rowBand
			if w >= cfg.Workers {
				w = cfg.Workers - 1
			}
			return stf.WorkerID(w)
		})},
		{"owner-2d", sched.OwnerComputes(g, sched.NewGrid2D(cfg.Workers))},
		{"cyclic", sched.Cyclic(cfg.Workers)},
		{"single-worker", sched.Single(0)},
		{"dynamic-claim", sched.Partial(sched.Cyclic(cfg.Workers), func(stf.TaskID) bool { return true })},
		{"automap", sched.AutoMap(g, cfg.Workers, nil).Mapping},
	}
	var rows []Row
	for _, v := range mappings {
		e, err := core.New(core.Options{Workers: cfg.Workers, Mapping: v.m})
		if err != nil {
			return nil, err
		}
		row, err := ablationRun(e, g, cfg, "ablation-mapping", v.name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SparseAblation contrasts the proportional mapping (the paper's cited
// technique for sparse factorization trees) against tree-oblivious
// mappings on a multifrontal sparse-Cholesky task flow. Task durations
// scale with node weight (Task.K), as frontal factorizations do.
func SparseAblation(cfg AblationConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	tree := graphs.RandomETree(cfg.Tasks, 4, 11)
	g := graphs.SparseCholesky(tree)
	cells := kernels.NewCells(cfg.Workers)
	kern := func(t *stf.Task, w stf.WorkerID) {
		idx := int(w)
		if idx < 0 {
			idx = 0
		}
		kernels.Spin(cells.Cell(idx), cfg.TaskSize*uint64(t.K))
	}
	mappings := []struct {
		name string
		m    stf.Mapping
	}{
		{"proportional", sched.Proportional(tree, cfg.Workers)},
		{"cyclic", sched.Cyclic(cfg.Workers)},
		{"block", sched.Block(len(g.Tasks), cfg.Workers)},
	}
	var rows []Row
	for _, v := range mappings {
		e, err := core.New(core.Options{Workers: cfg.Workers, Mapping: v.m})
		if err != nil {
			return nil, err
		}
		wall, st, err := Measure(e, g.NumData, stf.Replay(g, kern), cfg.Warmup, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("ablation-sparse/%s: %w", v.name, err)
		}
		taskCum, _, _ := st.Cumulative()
		var eff trace.Efficiency
		if taskCum > 0 {
			eff = trace.Decompose(taskCum, taskCum, st)
		}
		rows = append(rows, Row{
			Experiment: "ablation-sparse",
			Workload:   g.Name,
			Engine:     v.name,
			Workers:    cfg.Workers,
			TaskSize:   cfg.TaskSize,
			Tasks:      st.Executed(),
			Wall:       wall,
			PerTask:    perTask(wall, cfg.Workers, st.Executed()),
			Eff:        eff,
		})
	}
	return rows, nil
}

// TraceOverhead measures the cost of span recording at fine granularity —
// the effect the paper's methodology avoids by using aggregate accounting.
func TraceOverhead(cfg AblationConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	g := graphs.Independent(cfg.Tasks)
	m := sched.Cyclic(cfg.Workers)
	cells := kernels.NewCells(cfg.Workers)
	plain := graphs.CounterKernel(cells, cfg.TaskSize)
	rec := trace.NewRecorder(cfg.Workers)
	instrumented := rec.Instrument(plain)

	var rows []Row
	for _, v := range []struct {
		name string
		k    stf.Kernel
	}{{"plain", plain}, {"traced", instrumented}} {
		e, err := core.New(core.Options{Workers: cfg.Workers, Mapping: m})
		if err != nil {
			return nil, err
		}
		rec.Reset()
		wall, st, err := Measure(e, g.NumData, stf.Replay(g, v.k), cfg.Warmup, cfg.Reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Experiment: "ablation-trace",
			Workload:   g.Name,
			Engine:     "rio/" + v.name,
			Workers:    cfg.Workers,
			TaskSize:   cfg.TaskSize,
			Tasks:      st.Executed(),
			Wall:       wall,
			PerTask:    perTask(wall, cfg.Workers, st.Executed()),
		})
	}
	return rows, nil
}

// Ablations runs the whole suite.
func Ablations(cfg AblationConfig) ([]Row, error) {
	var rows []Row
	for _, f := range []func(AblationConfig) ([]Row, error){
		SchedulerAblation, WindowAblation, SpinAblation, MappingAblation, SparseAblation, TraceOverhead,
	} {
		r, err := f(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

func ablationRun(e Engine, g *stf.Graph, cfg AblationConfig, experiment, variant string) (Row, error) {
	cells := kernels.NewCells(cfg.Workers)
	kern := graphs.CounterKernel(cells, cfg.TaskSize)
	wall, st, err := Measure(e, g.NumData, stf.Replay(g, kern), cfg.Warmup, cfg.Reps)
	if err != nil {
		return Row{}, fmt.Errorf("%s/%s: %w", experiment, variant, err)
	}
	taskCum, _, _ := st.Cumulative()
	var eff trace.Efficiency
	if taskCum > 0 {
		eff = trace.Decompose(taskCum, taskCum, st)
	}
	return Row{
		Experiment: experiment,
		Workload:   g.Name,
		Engine:     variant,
		Workers:    cfg.Workers,
		TaskSize:   cfg.TaskSize,
		Tasks:      st.Executed(),
		Wall:       wall,
		PerTask:    perTask(wall, cfg.Workers, st.Executed()),
		Eff:        eff,
	}, nil
}
