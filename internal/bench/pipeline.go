package bench

// Streaming-pipeline ablation (the `rio-bench pipeline` subcommand): an
// unbounded task flow submitted window by window through the Stream API,
// RIO's native session against the centralized baseline's per-window
// fallback, at deliberately small task sizes.
//
// This is §2's eq. (1) vs eq. (2) restaged for service workloads: the
// centralized engine pays its master a dispatch per task of every window
// (eq. 1's n·t_s term, plus a full unroll and worker fan-out per window),
// while the in-order session pays a handful of private-memory writes per
// task and one epoch barrier per window — the paper predicts RIO wins
// decisively once tasks are small, and the streaming layers (windowed
// recording, epoch-recycled state, per-shape compiled replay) must
// preserve that edge for flows that never end. The rio-closure variant
// isolates what the per-shape compiled cache buys over closure replay of
// every window.

import (
	"fmt"
	"sort"
	"time"

	"rio"
	"rio/internal/graphs"
	"rio/internal/kernels"
)

// PipelineConfig parameterizes the streaming ablation.
type PipelineConfig struct {
	// Workers is the thread count p for both engines.
	Workers int
	// Windows is the number of windows per measured run.
	Windows int
	// WindowSizes sweeps the tasks-per-window axis (each window carries
	// this many tasks, split into ChainLen-deep dependency chains).
	WindowSizes []int
	// ChainLen is the depth of each within-window dependency chain; the
	// window holds WindowSize/ChainLen independent chains, each pinned to
	// one data object and (under the chain mapping) one worker.
	ChainLen int
	// TaskSizes sweeps the counter kernel's loop count. Keep small: the
	// ablation targets the fine-grained regime where runtime overhead
	// dominates.
	TaskSizes []uint64
	// Warmup, Reps as elsewhere (median wall over Reps).
	Warmup, Reps int
}

func (c PipelineConfig) check() error {
	if c.Workers < 1 || c.Windows < 1 || len(c.WindowSizes) == 0 || c.ChainLen < 1 {
		return fmt.Errorf("bench: bad pipeline config %+v", c)
	}
	for _, ws := range c.WindowSizes {
		if ws < c.ChainLen {
			return fmt.Errorf("bench: window size %d below chain length %d", ws, c.ChainLen)
		}
	}
	return nil
}

// pipelineVariants are the engines the ablation compares.
var pipelineVariants = []struct {
	engine    string
	model     rio.Model
	noCompile bool
}{
	{"rio", rio.InOrder, false},                  // native session, per-shape compiled replay
	{"rio-closure", rio.InOrder, true},           // native session, closure replay + per-epoch guard
	{"centralized-fifo", rio.Centralized, false}, // per-window fallback: unroll + dispatch every window
}

// PipelineAblation measures streaming throughput (wall, ns/task, process
// CPU) for every engine variant over the window-size × task-size sweep.
func PipelineAblation(cfg PipelineConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	p := cfg.Workers
	cells := kernels.NewCells(p)
	var rows []Row
	for _, winSize := range cfg.WindowSizes {
		chains := winSize / cfg.ChainLen
		perWindow := chains * cfg.ChainLen
		// Chain mapping: window-local task c·L+l belongs to chain c, and
		// every chain lives on one worker — the natural sharding of a
		// periodic pipeline, so cross-worker waits measure the protocol,
		// not an artificial ping-pong.
		chainLen := cfg.ChainLen
		mapping := func(id rio.TaskID) rio.WorkerID {
			return rio.WorkerID(int(id) / chainLen % p)
		}
		for _, size := range cfg.TaskSizes {
			kern := graphs.CounterKernel(cells, size)
			for _, v := range pipelineVariants {
				run := func() (time.Duration, error) {
					rt, err := rio.New(rio.Options{
						Model: v.model, Workers: p, Mapping: mapping,
						NoAccounting: true,
					})
					if err != nil {
						return 0, err
					}
					s, err := rio.OpenStream(rt, chains, rio.StreamOptions{
						Kernel:    kern,
						MaxWindow: -1, // explicit Flush marks the window
						NoCompile: v.noCompile,
					})
					if err != nil {
						return 0, err
					}
					start := time.Now()
					for w := 0; w < cfg.Windows; w++ {
						for c := 0; c < chains; c++ {
							for l := 0; l < cfg.ChainLen; l++ {
								s.Task(0, c, l, 0, rio.RW(rio.DataID(c)))
							}
						}
						if err := s.Flush(); err != nil {
							return 0, err
						}
					}
					if err := s.Close(); err != nil {
						return 0, err
					}
					return time.Since(start), nil
				}
				wall, cpu, err := measurePipeline(run, cfg.Warmup, cfg.Reps)
				if err != nil {
					return nil, fmt.Errorf("pipeline/w%d/%s/size%d: %w", winSize, v.engine, size, err)
				}
				tasks := int64(cfg.Windows) * int64(perWindow)
				rows = append(rows, Row{
					Experiment: "pipeline",
					Workload:   fmt.Sprintf("stream-w%d", winSize),
					Engine:     v.engine,
					Workers:    p,
					TaskSize:   size,
					Tasks:      tasks,
					Wall:       wall,
					PerTask:    perTask(wall, p, tasks),
					CPU:        cpu,
				})
			}
		}
	}
	return rows, nil
}

// measurePipeline runs warmup + reps whole-stream executions, reporting
// the median wall time and the mean process-CPU per run. The stream's own
// clock (submission + execution, Close included) is the measurement: a
// streaming workload has no single engine Stats to read.
func measurePipeline(run func() (time.Duration, error), warmup, reps int) (time.Duration, time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < warmup; i++ {
		if _, err := run(); err != nil {
			return 0, 0, err
		}
	}
	walls := make([]time.Duration, 0, reps)
	cpu0 := cpuTime()
	for i := 0; i < reps; i++ {
		w, err := run()
		if err != nil {
			return 0, 0, err
		}
		walls = append(walls, w)
	}
	cpu := (cpuTime() - cpu0) / time.Duration(reps)
	sort.Slice(walls, func(a, b int) bool { return walls[a] < walls[b] })
	return walls[len(walls)/2], cpu, nil
}
