package bench

import (
	"fmt"
	"time"

	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// Work-stealing ablation (the `rio-bench steal` subcommand): the hybrid
// execution model's headline matrix — {balanced, skewed} mapping ×
// {steal off, steal on} — on both replay paths (closure replay steals
// from the candidate ring, compiled replay from the precomputed steal
// metadata). The workload is a flow of independent tasks whose bodies
// *sleep* rather than compute:
//
//   - skewed + steal off is the adversarial case the preflight's RIO-M004
//     serialization bound predicts: every task is mapped to worker 0, so
//     the run degenerates to the sequential sum of task durations while
//     p−1 workers sit idle after their (instant) declare-only replay;
//   - skewed + steal on is the escape hatch: the idle workers drain
//     worker 0's backlog through the claim table and the run approaches
//     max(critical path, n/p) — here n·d/p, since the flow has no
//     dependencies;
//   - the balanced rows bound the cost of arming the policy when there is
//     nothing worth stealing.
//
// Sleeping bodies (I/O-like tasks) make the ablation meaningful on any
// host, including a single hardware thread: a sleeping task holds no
// core, so p workers overlap p sleeps regardless of GOMAXPROCS, and the
// wall-clock ratio measures the scheduling model alone. A compute-bound
// skewed flow shows the same escape only when real cores exist to absorb
// the stolen work.
//
// Each row reports wall time, ns/task and process CPU time: stealing must
// buy its wall-clock win with bounded probing, not by spinning the idle
// workers (the drain path yields and parks between failed probes).

// StealConfig parameterizes the work-stealing ablation.
type StealConfig struct {
	// Workers is the thread count p.
	Workers int
	// Tasks is the flow length n (independent tasks).
	Tasks int
	// TaskDur is each task body's sleep duration.
	TaskDur time.Duration
	// Warmup, Reps as elsewhere.
	Warmup, Reps int
}

func (c StealConfig) check() error {
	if c.Workers < 2 || c.Tasks < c.Workers || c.TaskDur <= 0 {
		return fmt.Errorf("bench: bad steal config %+v", c)
	}
	return nil
}

// StealAblation measures the mapping × stealing matrix on both replay
// paths.
func StealAblation(cfg StealConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	p := cfg.Workers
	g := graphs.Independent(cfg.Tasks)
	kern := func(*stf.Task, stf.WorkerID) { time.Sleep(cfg.TaskDur) }

	mappings := []struct {
		name string
		m    stf.Mapping
	}{
		{"balanced", sched.Cyclic(p)},
		{"skewed", sched.Single(0)},
	}

	var rows []Row
	for _, mp := range mappings {
		compiled, err := stf.Compile(g, mp.m, p, nil)
		if err != nil {
			return nil, err
		}
		for _, stealing := range []bool{false, true} {
			var pol *stf.StealPolicy
			policy := mp.name + "/steal=off"
			if stealing {
				// The ranked victim list the preflight's RIO-M010 finding
				// suggests: overloaded owners first.
				pol = &stf.StealPolicy{Victims: sched.RankVictims(g, mp.m, p)}
				policy = mp.name + "/steal=on"
			}
			variants := []struct {
				engine string
				run    func(e *core.Engine) error
			}{
				{"rio", func(e *core.Engine) error {
					return e.Run(g.NumData, stf.Replay(g, kern))
				}},
				{"rio-compiled", func(e *core.Engine) error {
					return e.RunCompiled(compiled, kern)
				}},
			}
			for _, v := range variants {
				e, err := core.New(core.Options{Workers: p, Mapping: mp.m, Steal: pol})
				if err != nil {
					return nil, err
				}
				run := v.run
				wall, cpu, st, err := MeasureRunCPU(func() error { return run(e) }, e.Stats, cfg.Warmup, cfg.Reps)
				if err != nil {
					return nil, fmt.Errorf("steal/%s/%s: %w", v.engine, policy, err)
				}
				rows = append(rows, Row{
					Experiment: "steal",
					Workload:   "independent+sleep",
					Engine:     v.engine,
					Policy:     policy,
					Workers:    p,
					// TaskSize carries the body's sleep in nanoseconds (the
					// counter-loop column does not apply to sleeping bodies).
					TaskSize: uint64(cfg.TaskDur.Nanoseconds()),
					Tasks:    st.Executed(),
					Wall:     wall,
					PerTask:  perTask(wall, p, st.Executed()),
					CPU:      cpu,
				})
			}
		}
	}
	return rows, nil
}
