package bench_test

import (
	"testing"

	"rio/internal/bench"
)

func ablCfg() bench.AblationConfig {
	return bench.AblationConfig{Workers: 3, Reps: 1, TaskSize: 50, Tasks: 100}
}

func TestSchedulerAblation(t *testing.T) {
	rows, err := bench.SchedulerAblation(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (fifo, ws, ws+hint, prio)", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Engine] = true
		if r.Tasks == 0 || r.Wall <= 0 {
			t.Errorf("bad row %+v", r)
		}
	}
	for _, want := range []string{"fifo", "ws", "ws+hint", "prio"} {
		if !names[want] {
			t.Errorf("variant %q missing", want)
		}
	}
}

func TestWindowAblation(t *testing.T) {
	rows, err := bench.WindowAblation(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Tasks != 100 {
			t.Errorf("%s executed %d tasks", r.Engine, r.Tasks)
		}
	}
}

func TestSpinAblation(t *testing.T) {
	rows, err := bench.SpinAblation(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestMappingAblation(t *testing.T) {
	rows, err := bench.MappingAblation(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// All variants execute the same task count (same graph).
	for _, r := range rows[1:] {
		if r.Tasks != rows[0].Tasks {
			t.Errorf("%s executed %d tasks, %s executed %d", r.Engine, r.Tasks, rows[0].Engine, rows[0].Tasks)
		}
	}
}

func TestSparseAblation(t *testing.T) {
	rows, err := bench.SparseAblation(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Tasks != 100 {
			t.Errorf("%s executed %d tasks", r.Engine, r.Tasks)
		}
	}
	if rows[0].Engine != "proportional" {
		t.Errorf("first variant = %s", rows[0].Engine)
	}
}

func TestTraceOverheadAblation(t *testing.T) {
	rows, err := bench.TraceOverhead(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Engine != "rio/plain" || rows[1].Engine != "rio/traced" {
		t.Errorf("variants = %s, %s", rows[0].Engine, rows[1].Engine)
	}
}

func TestAblationsAll(t *testing.T) {
	rows, err := bench.Ablations(ablCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4+6+5+6+3+2 {
		t.Fatalf("rows = %d, want 26", len(rows))
	}
}

func TestAblationRejectsBadConfig(t *testing.T) {
	if _, err := bench.Ablations(bench.AblationConfig{Workers: 1, Tasks: 10}); err == nil {
		t.Error("1 worker accepted")
	}
}
