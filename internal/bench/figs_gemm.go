package bench

import (
	"fmt"
	"time"

	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

// GEMMConfig parameterizes the real-kernel matrix-multiplication figures
// (Figures 2, 3 and 4 — the paper uses MKL DGEMM on a 4096² matrix; we use
// the pure-Go tile kernel on a configurable size).
type GEMMConfig struct {
	// N is the matrix dimension.
	N int
	// TileSizes sweeps the sub-matrix dimension; each must divide N.
	TileSizes []int
	// Workers is the thread count of the parallel engines.
	Workers int
	// Warmup, Reps as in CounterConfig.
	Warmup, Reps int
}

func (c GEMMConfig) check() error {
	if c.N < 1 || len(c.TileSizes) == 0 {
		return fmt.Errorf("bench: bad GEMM config %+v", c)
	}
	for _, b := range c.TileSizes {
		if b < 1 || c.N%b != 0 {
			return fmt.Errorf("bench: tile size %d does not divide N=%d", b, c.N)
		}
	}
	if c.Workers < 2 {
		return fmt.Errorf("bench: need at least 2 workers, got %d", c.Workers)
	}
	return nil
}

// gemmOperands allocates tiled operands at tile size b, with deterministic
// contents.
func gemmOperands(n, b int) (a, bm, c *kernels.Tiled, err error) {
	if a, err = kernels.NewTiled(n, b); err != nil {
		return
	}
	if bm, err = kernels.NewTiled(n, b); err != nil {
		return
	}
	if c, err = kernels.NewTiled(n, b); err != nil {
		return
	}
	kernels.DiagDominant(a, 1)
	kernels.DiagDominant(bm, 2)
	return
}

// seqGEMM measures t(g): the whole tiled product executed on one thread
// with no runtime, at tile size b.
func seqGEMM(n, b, warmup, reps int) (time.Duration, error) {
	a, bm, c, err := gemmOperands(n, b)
	if err != nil {
		return 0, err
	}
	nt := n / b
	run := func() {
		for i := 0; i < nt; i++ {
			for j := 0; j < nt; j++ {
				for k := 0; k < nt; k++ {
					kernels.GemmTile(c.Tile(i, j), a.Tile(i, k), bm.Tile(k, j), b)
				}
			}
		}
	}
	for i := 0; i < warmup; i++ {
		run()
	}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		run()
		d := time.Since(t0)
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Fig3 reproduces Figure 3: sequential kernel efficiency e_g(g) = t / t(g)
// as a function of tile size, where t is the time of the fastest tile size
// measured. Small tiles lose cache reuse and loop amortization, so
// efficiency drops — independent of any runtime.
func Fig3(cfg GEMMConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	times := make([]time.Duration, len(cfg.TileSizes))
	best := time.Duration(0)
	for i, b := range cfg.TileSizes {
		d, err := seqGEMM(cfg.N, b, cfg.Warmup, cfg.Reps)
		if err != nil {
			return nil, err
		}
		times[i] = d
		if best == 0 || d < best {
			best = d
		}
	}
	rows := make([]Row, 0, len(cfg.TileSizes))
	for i, b := range cfg.TileSizes {
		rows = append(rows, Row{
			Experiment: "fig3",
			Workload:   fmt.Sprintf("dgemm %d", cfg.N),
			Engine:     "sequential",
			Workers:    1,
			TaskSize:   uint64(b),
			Tasks:      int64((cfg.N / b) * (cfg.N / b) * (cfg.N / b)),
			Wall:       times[i],
			Eff:        trace.Efficiency{Granularity: float64(best) / float64(times[i])},
		})
	}
	return rows, nil
}

// Fig2 reproduces Figure 2: end-to-end execution time of the tiled matrix
// product under a parallel runtime, as a function of tile size. The paper
// shows StarPU; we report both the centralized baseline and RIO (with an
// owner-computes mapping) for comparison.
func Fig2(cfg GEMMConfig) ([]Row, error) {
	return gemmParallel(cfg, "fig2", false)
}

// Fig4 reproduces Figure 4: the full efficiency decomposition e_g·e_l·e_p·e_r
// of the parallel runs of Figure 2 (t = fastest sequential time overall,
// t(g) = sequential time at the measured tile size).
func Fig4(cfg GEMMConfig) ([]Row, error) {
	return gemmParallel(cfg, "fig4", true)
}

func gemmParallel(cfg GEMMConfig, experiment string, decompose bool) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	// Sequential references per tile size, and the overall best t.
	seq := make([]time.Duration, len(cfg.TileSizes))
	best := time.Duration(0)
	for i, b := range cfg.TileSizes {
		d, err := seqGEMM(cfg.N, b, cfg.Warmup, cfg.Reps)
		if err != nil {
			return nil, err
		}
		seq[i] = d
		if best == 0 || d < best {
			best = d
		}
	}
	var rows []Row
	for i, b := range cfg.TileSizes {
		nt := cfg.N / b
		g := graphs.GEMM(nt)
		mapping := sched.OwnerComputes(g, sched.NewGrid2D(cfg.Workers))
		for _, kind := range []EngineKind{CentralizedFIFO, RIO} {
			a, bm, c, err := gemmOperands(cfg.N, b)
			if err != nil {
				return nil, err
			}
			kern := graphs.GEMMKernel(a, bm, c)
			e, err := NewEngine(kind, cfg.Workers, mapping)
			if err != nil {
				return nil, err
			}
			wall, st, err := Measure(e, g.NumData, stf.Replay(g, kern), cfg.Warmup, cfg.Reps)
			if err != nil {
				return nil, fmt.Errorf("%s %s b=%d: %w", experiment, kind, b, err)
			}
			row := Row{
				Experiment: experiment,
				Workload:   fmt.Sprintf("dgemm %d", cfg.N),
				Engine:     kind.String(),
				Workers:    cfg.Workers,
				TaskSize:   uint64(b),
				Tasks:      st.Executed(),
				Wall:       wall,
				PerTask:    perTask(wall, cfg.Workers, st.Executed()),
			}
			if decompose {
				row.Eff = trace.Decompose(best, seq[i], st)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
