package bench

import (
	"fmt"
	"time"

	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
)

// Synchronization ablation (the `rio-bench sync` subcommand): the wait
// policies of RIO's phase-3 dependency waits — adaptive spin (default),
// pure spin, event-gate parking, and the legacy sleep-poll ladder — on
// three workloads chosen to bracket the design space:
//
//   - readers-writer   — rounds of one writer followed by many parallel
//     reads of a single data object: every task blocks on the previous
//     hand-off through one shared cell, so the run is almost nothing but
//     the wait path (the high-contention worst case);
//   - reduce-rounds    — same shape with commutative reductions, driving
//     the terminate_red wake path;
//   - readers-writer+block — the same contention shape with task bodies
//     that sleep instead of compute (I/O-like tasks): the producer holds
//     no core while it "works", so a spinning waiter burns CPU the
//     compute-bound shape hides behind the producer's own occupancy, and
//     a sleep-ladder waiter's oversleep lands on an otherwise-idle
//     critical path instead of being absorbed by runnable siblings. The
//     shape that separates the policies even on a single hardware thread;
//   - independent      — the Fig 7 weak-scaling flow on the compiled
//     replay path: no dependencies, so waits are rare and the ablation
//     shows what each policy costs when there is nothing to wait for.
//
// Each row reports wall time, ns/task AND process CPU time: on the
// contended workloads a spin policy can match parking on wall time while
// burning p× the compute, and on oversubscribed machines it loses both.

// SyncConfig parameterizes the synchronization ablation.
type SyncConfig struct {
	// Workers is the thread count p.
	Workers int
	// Rounds and Readers shape the contended workloads: Rounds rounds of
	// one writer followed by Readers readers (or reducers) of the single
	// shared data object.
	Rounds, Readers int
	// TasksPerWorker scales the uncontended replay flow:
	// n = TasksPerWorker · Workers independent tasks.
	TasksPerWorker int
	// TaskSize is the counter kernel's loop count; keep it small — the
	// point is synchronization overhead, not task work.
	TaskSize uint64
	// BlockDur is the sleeping task body of the readers-writer+block
	// workload (0 disables that workload).
	BlockDur time.Duration
	// SpinLimit and YieldLimit override the engines' escalation thresholds
	// (0 = engine defaults). The default yield phase is long enough to
	// absorb most waits on few-core hosts, in which case the policies'
	// slow phases — the thing this ablation compares — barely run; small
	// limits push every contended wait into its policy's slow phase.
	SpinLimit, YieldLimit int
	// Warmup, Reps as elsewhere.
	Warmup, Reps int
}

func (c SyncConfig) check() error {
	if c.Workers < 2 || c.Rounds < 1 || c.Readers < 1 || c.TasksPerWorker < 1 {
		return fmt.Errorf("bench: bad sync config %+v", c)
	}
	return nil
}

// SyncPolicies are the wait policies the ablation sweeps.
var SyncPolicies = []stf.WaitPolicy{stf.WaitAdaptive, stf.WaitSpin, stf.WaitPark, stf.WaitSleep}

// SyncAblation measures every wait policy on the contended and uncontended
// workloads.
func SyncAblation(cfg SyncConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	p := cfg.Workers
	m := sched.Cyclic(p)
	cells := kernels.NewCells(p)
	kern := graphs.CounterKernel(cells, cfg.TaskSize)

	contended := []*stf.Graph{
		graphs.ReadersWriter(cfg.Rounds, cfg.Readers),
		graphs.ReduceRounds(cfg.Rounds, cfg.Readers),
	}
	uncontended := graphs.Independent(cfg.TasksPerWorker * p)
	compiled, err := stf.Compile(uncontended, m, p, nil)
	if err != nil {
		return nil, err
	}

	var rows []Row
	measure := func(g *stf.Graph, engine string, pol stf.WaitPolicy, run func(*core.Engine) error) error {
		e, err := core.New(core.Options{
			Workers: p, Mapping: m, WaitPolicy: pol,
			SpinLimit: cfg.SpinLimit, YieldLimit: cfg.YieldLimit,
		})
		if err != nil {
			return err
		}
		wall, cpu, st, err := MeasureRunCPU(func() error { return run(e) }, e.Stats, cfg.Warmup, cfg.Reps)
		if err != nil {
			return fmt.Errorf("sync/%s/%s/%s: %w", g.Name, engine, pol, err)
		}
		rows = append(rows, Row{
			Experiment: "sync",
			Workload:   g.Name,
			Engine:     engine,
			Policy:     pol.String(),
			Workers:    p,
			TaskSize:   cfg.TaskSize,
			Tasks:      st.Executed(),
			Wall:       wall,
			PerTask:    perTask(wall, p, st.Executed()),
			CPU:        cpu,
		})
		return nil
	}

	blocking := graphs.ReadersWriter(cfg.Rounds, cfg.Readers)
	blocking.Name += "+block"
	blockKern := func(*stf.Task, stf.WorkerID) { time.Sleep(cfg.BlockDur) }

	for _, pol := range SyncPolicies {
		for _, g := range contended {
			g := g
			err := measure(g, "rio", pol, func(e *core.Engine) error {
				return e.Run(g.NumData, stf.Replay(g, kern))
			})
			if err != nil {
				return nil, err
			}
		}
		if cfg.BlockDur > 0 {
			err := measure(blocking, "rio", pol, func(e *core.Engine) error {
				return e.Run(blocking.NumData, stf.Replay(blocking, blockKern))
			})
			if err != nil {
				return nil, err
			}
		}
		err := measure(uncontended, "rio-compiled", pol, func(e *core.Engine) error {
			return e.RunCompiled(compiled, kern)
		})
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
