package bench

import (
	"fmt"
	"time"

	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/sim"
	"rio/internal/stf"
)

// Simulation bridge: fit the execution models' per-task cost constants
// from the real engines on this machine, then replay the paper's
// experiments on an *ideal* machine with the paper's worker count through
// internal/sim. This sidesteps the two measurement gates of this
// environment — few hardware threads, and Go scheduler/GC noise at
// sub-microsecond task sizes — while keeping the constants grounded in
// measurements.

// SimConfig parameterizes the simulated reproduction.
type SimConfig struct {
	// SimWorkers is the simulated thread count (the paper's evaluation
	// uses 24).
	SimWorkers int
	// FitWorkers/FitTasks control the micro-runs used to fit the cost
	// constants on the real engines.
	FitWorkers, FitTasks int
	// Tasks and TaskSizes define the simulated workloads (§5.1 sizes).
	Tasks     int
	TaskSizes []uint64
	// Seed feeds the random-dependency workload.
	Seed int64
	// Warmup, Reps for the fitting runs.
	Warmup, Reps int
}

// FittedCosts holds the measured constants used by the simulation.
type FittedCosts struct {
	// RIO and Centralized are the per-model cost constants.
	RIO, Centralized sim.Costs
	// NsPerOp calibrates counter-loop iterations to time.
	NsPerOp float64
}

// FitCosts measures the cost constants:
//
//   - RIO DeclareCost: a worker owning nothing processes the whole flow —
//     its wall time per task is the pure declare cost;
//   - RIO Acquire+Release: the owning worker's per-task time minus the
//     kernel; split evenly between the two;
//   - Centralized DispatchCost: master-bound wall per task with near-empty
//     bodies (eq. (1)'s t_r); CompleteCost: a third of it (successor
//     release and queue traffic happen on the worker side).
func FitCosts(cfg SimConfig) (*FittedCosts, error) {
	if cfg.FitWorkers < 2 || cfg.FitTasks < 1 {
		return nil, fmt.Errorf("bench: bad fit config %+v", cfg)
	}
	calib := kernels.Calibrate(20 * time.Millisecond)
	out := &FittedCosts{NsPerOp: calib.NsPerOp}
	g := graphs.RandomDeps(cfg.FitTasks, 64, 2, 1, 7)
	n := float64(cfg.FitTasks)

	// RIO micro-run: everything owned by worker 0.
	e, err := NewEngine(RIO, 2, sched.Single(0))
	if err != nil {
		return nil, err
	}
	cells := kernels.NewCells(2)
	prog := stf.Replay(g, graphs.CounterKernel(cells, 1))
	if _, st, err := Measure(e, g.NumData, prog, cfg.Warmup, max(1, cfg.Reps)); err != nil {
		return nil, err
	} else {
		declare := float64(st.Workers[1].Wall.Nanoseconds()) / n
		ownPer := float64(st.Workers[0].Wall.Nanoseconds())/n - calib.NsPerOp
		if ownPer < 0 {
			ownPer = 0
		}
		out.RIO = sim.Costs{
			DeclareCost: time.Duration(declare),
			AcquireCost: time.Duration(ownPer / 2),
			ReleaseCost: time.Duration(ownPer / 2),
		}
	}

	// Centralized micro-run: master-bound with near-empty bodies.
	ce, err := NewEngine(CentralizedFIFO, cfg.FitWorkers, nil)
	if err != nil {
		return nil, err
	}
	cells = kernels.NewCells(cfg.FitWorkers)
	prog = stf.Replay(graphs.Independent(cfg.FitTasks), graphs.CounterKernel(cells, 1))
	if wall, _, err := Measure(ce, 0, prog, cfg.Warmup, max(1, cfg.Reps)); err != nil {
		return nil, err
	} else {
		tr := float64(wall.Nanoseconds()) / n
		out.Centralized = sim.Costs{
			DispatchCost: time.Duration(tr),
			CompleteCost: time.Duration(tr / 3),
		}
	}
	return out, nil
}

// SimFig8 regenerates Figure 8's four experiments on SimWorkers simulated
// threads using fitted cost constants, reporting the same e_p/e_r
// decomposition the paper plots.
func SimFig8(cfg SimConfig) ([]Row, *FittedCosts, error) {
	if cfg.SimWorkers < 2 || cfg.Tasks < 1 || len(cfg.TaskSizes) == 0 {
		return nil, nil, fmt.Errorf("bench: bad sim config %+v", cfg)
	}
	costs, err := FitCosts(cfg)
	if err != nil {
		return nil, nil, err
	}
	var rows []Row
	for _, exp := range []Fig8Experiment{Exp1Independent, Exp2RandomDeps, Exp3GEMM, Exp4LU} {
		ccfg := CounterConfig{Workers: cfg.SimWorkers, Tasks: cfg.Tasks, TaskSizes: cfg.TaskSizes, Seed: cfg.Seed, Reps: 1}
		g, mapping, err := fig8Workload(exp, ccfg)
		if err != nil {
			return nil, nil, err
		}
		for _, size := range cfg.TaskSizes {
			dur := time.Duration(float64(size) * costs.NsPerOp)
			w := sim.UniformWorkload(g, dur)

			r1, err := sim.SimulateRIO(w, cfg.SimWorkers, mapping, costs.RIO)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, simRow(exp, "sim-rio", cfg.SimWorkers, size, g, r1))

			r2, err := sim.SimulateCentralized(w, cfg.SimWorkers, costs.Centralized)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, simRow(exp, "sim-centralized", cfg.SimWorkers, size, g, r2))
		}
	}
	return rows, costs, nil
}

// SimFig7 regenerates Figure 7 at the paper's scale (64 workers on the
// EPYC 7702, 2^15 independent tasks per worker) in simulation: total
// execution time at fixed per-worker load as the worker count grows. The
// decentralized model's total bookkeeping grows with p²·n (every worker
// declares everyone's tasks), which is the paper's point; with pruning the
// declare term vanishes and the curve goes flat.
func SimFig7(cfg SimConfig, tasksPerWorker int, maxWorkers int, taskSize uint64) ([]Row, *FittedCosts, error) {
	if tasksPerWorker < 1 || maxWorkers < 1 {
		return nil, nil, fmt.Errorf("bench: bad sim-fig7 config")
	}
	costs, err := FitCosts(cfg)
	if err != nil {
		return nil, nil, err
	}
	dur := time.Duration(float64(taskSize) * costs.NsPerOp)
	var rows []Row
	for p := 1; p <= maxWorkers; p *= 2 {
		g := graphs.Independent(tasksPerWorker * p)
		w := sim.UniformWorkload(g, dur)
		m := sched.Cyclic(p)

		full, err := sim.SimulateRIO(w, p, m, costs.RIO)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Row{
			Experiment: "sim-fig7", Workload: fmt.Sprintf("independent %d/worker", tasksPerWorker),
			Engine: "sim-rio", Workers: p, TaskSize: taskSize,
			Tasks: int64(len(g.Tasks)), Wall: full.Makespan,
			PerTask: perTask(full.Makespan, p, int64(len(g.Tasks))),
		})

		// Pruned: independent tasks make every foreign task prunable, so
		// the declare cost disappears entirely.
		pruned, err := sim.SimulateRIO(w, p, m, sim.Costs{
			AcquireCost: costs.RIO.AcquireCost,
			ReleaseCost: costs.RIO.ReleaseCost,
		})
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Row{
			Experiment: "sim-fig7", Workload: fmt.Sprintf("independent %d/worker", tasksPerWorker),
			Engine: "sim-rio-pruned", Workers: p, TaskSize: taskSize,
			Tasks: int64(len(g.Tasks)), Wall: pruned.Makespan,
			PerTask: perTask(pruned.Makespan, p, int64(len(g.Tasks))),
		})
	}
	return rows, costs, nil
}

func simRow(exp Fig8Experiment, engine string, p int, size uint64, g *stf.Graph, r *sim.Result) Row {
	return Row{
		Experiment: "sim-fig8-" + exp.String(),
		Workload:   g.Name,
		Engine:     engine,
		Workers:    p,
		TaskSize:   size,
		Tasks:      int64(len(g.Tasks)),
		Wall:       r.Makespan,
		PerTask:    perTask(r.Makespan, p, int64(len(g.Tasks))),
		Eff:        r.Efficiency(),
	}
}
