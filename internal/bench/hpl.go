package bench

import (
	"fmt"
	"time"

	"rio/internal/hpl"
	"rio/internal/stf"
)

// HPLConfig parameterizes the pivoted-LU (HPL core) experiment — the
// paper's motivating application, where the panel pivoting is inherently
// fine-grained.
type HPLConfig struct {
	// N is the matrix dimension; PanelWidths sweeps the blocking (each
	// must divide N). Narrow panels increase the fine-grained share.
	N           int
	PanelWidths []int
	// Workers, Warmup, Reps as elsewhere.
	Workers      int
	Warmup, Reps int
}

func (c HPLConfig) check() error {
	if c.N < 1 || len(c.PanelWidths) == 0 || c.Workers < 2 {
		return fmt.Errorf("bench: bad HPL config %+v", c)
	}
	for _, b := range c.PanelWidths {
		if b < 1 || c.N%b != 0 {
			return fmt.Errorf("bench: panel width %d does not divide N=%d", b, c.N)
		}
	}
	return nil
}

// HPL measures the pivoted-LU task flow under RIO, the centralized
// baseline and the sequential reference across panel widths, verifying the
// factorization residual on every run. The TaskSize column reports the
// panel width; PerTask the effective cumulative per-task cost.
func HPL(cfg HPLConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	var rows []Row
	for _, b := range cfg.PanelWidths {
		for _, kind := range []EngineKind{RIO, CentralizedFIFO, Sequential} {
			wall, tasks, err := hplRun(cfg, b, kind)
			if err != nil {
				return nil, fmt.Errorf("hpl b=%d %s: %w", b, kind, err)
			}
			p := cfg.Workers
			if kind == Sequential {
				p = 1
			}
			rows = append(rows, Row{
				Experiment: "hpl",
				Workload:   fmt.Sprintf("pivoted-lu %d", cfg.N),
				Engine:     kind.String(),
				Workers:    p,
				TaskSize:   uint64(b),
				Tasks:      tasks,
				Wall:       wall,
				PerTask:    perTask(wall, p, tasks),
			})
		}
	}
	return rows, nil
}

func hplRun(cfg HPLConfig, b int, kind EngineKind) (time.Duration, int64, error) {
	f, err := hpl.NewFlow(cfg.N, b)
	if err != nil {
		return 0, 0, err
	}
	var kerr error
	kern := f.Kernel(func(e error) { kerr = e })
	workers := cfg.Workers
	if kind == Sequential {
		workers = 1
	}
	e, err := NewEngine(kind, workers, f.ColumnMapping(workers))
	if err != nil {
		return 0, 0, err
	}

	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(0)
	for r := 0; r < cfg.Warmup+reps; r++ {
		f.A.FillRandom(uint64(r) + 1)
		orig := f.A.Clone()
		t0 := time.Now()
		if err := e.Run(f.Graph.NumData, stf.Replay(f.Graph, kern)); err != nil {
			return 0, 0, err
		}
		d := time.Since(t0)
		if kerr != nil {
			return 0, 0, kerr
		}
		orig.ApplyPivots(f.Ipiv)
		if res := hpl.Residual(f.A.Reconstruct(), orig); res > 1e-10 {
			return 0, 0, fmt.Errorf("residual %g", res)
		}
		if r >= cfg.Warmup && (best == 0 || d < best) {
			best = d
		}
	}
	return best, int64(len(f.Graph.Tasks)), nil
}
