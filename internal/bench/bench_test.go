package bench_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rio/internal/bench"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

func quickCfg() bench.CounterConfig {
	return bench.CounterConfig{
		Workers: 3, Tasks: 200, TaskSizes: []uint64{50, 500},
		Warmup: 0, Reps: 1, Seed: 1,
	}
}

func TestNewEngineKinds(t *testing.T) {
	for _, kind := range []bench.EngineKind{bench.RIO, bench.CentralizedFIFO, bench.CentralizedWS, bench.Sequential} {
		e, err := bench.NewEngine(kind, 3, sched.Cyclic(3))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if e.Name() == "" {
			t.Errorf("%s: empty name", kind)
		}
	}
	if _, err := bench.NewEngine(bench.EngineKind(99), 2, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMeasureMedianAndStats(t *testing.T) {
	e, err := bench.NewEngine(bench.Sequential, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graphs.Independent(50)
	prog := stf.Replay(g, func(*stf.Task, stf.WorkerID) {})
	wall, st, err := bench.Measure(e, 0, prog, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Errorf("wall = %v", wall)
	}
	if st.Executed() != 50 {
		t.Errorf("executed = %d", st.Executed())
	}
}

func TestFig6ProducesBothEngines(t *testing.T) {
	rows, err := bench.Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 engines × 2 sizes
		t.Fatalf("row count = %d, want 4", len(rows))
	}
	engines := map[string]bool{}
	for _, r := range rows {
		engines[r.Engine] = true
		if r.Wall <= 0 || r.Tasks != 200 {
			t.Errorf("bad row %+v", r)
		}
	}
	if !engines["rio"] || !engines["centralized-fifo"] {
		t.Errorf("engines covered: %v", engines)
	}
}

func TestFig6RejectsBadConfig(t *testing.T) {
	cfg := quickCfg()
	cfg.Workers = 1
	if _, err := bench.Fig6(cfg); err == nil {
		t.Error("1 worker accepted for engine comparison")
	}
	cfg = quickCfg()
	cfg.TaskSizes = nil
	if _, err := bench.Fig6(cfg); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestFig7WeakScalingRows(t *testing.T) {
	rows, err := bench.Fig7(bench.Fig7Config{
		MaxWorkers: 3, TasksPerWorker: 100, TaskSize: 50,
		Reps: 1, WithPruned: true, WithCentralized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// rio: p=1..3; rio-pruned: p=1..3; centralized: p=2..3 → 8 rows.
	if len(rows) != 8 {
		t.Fatalf("row count = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Tasks != int64(100*r.Workers) {
			t.Errorf("%s p=%d executed %d tasks, want %d", r.Engine, r.Workers, r.Tasks, 100*r.Workers)
		}
	}
}

func TestFig7BadConfig(t *testing.T) {
	if _, err := bench.Fig7(bench.Fig7Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFig8AllExperiments(t *testing.T) {
	cfg := quickCfg()
	cfg.Tasks = 64
	rows, err := bench.Fig8All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 experiments × 2 engines × 2 sizes.
	if len(rows) != 16 {
		t.Fatalf("row count = %d, want 16", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Experiment] = true
		if r.Eff.Pipelining <= 0 || r.Eff.Pipelining > 1.01 {
			t.Errorf("%s %s: e_p = %v out of (0,1]", r.Experiment, r.Engine, r.Eff.Pipelining)
		}
		if r.Eff.Runtime <= 0 || r.Eff.Runtime > 1.01 {
			t.Errorf("%s %s: e_r = %v out of (0,1]", r.Experiment, r.Engine, r.Eff.Runtime)
		}
	}
	for _, exp := range []string{"fig8-exp1-independent", "fig8-exp2-random", "fig8-exp3-gemm", "fig8-exp4-lu"} {
		if !seen[exp] {
			t.Errorf("experiment %s missing", exp)
		}
	}
}

func TestCostModelReport(t *testing.T) {
	cfg := quickCfg()
	rep, err := bench.CostModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrCentralized <= 0 || rep.TrRIO <= 0 {
		t.Errorf("non-positive fitted costs: %v %v", rep.TrCentralized, rep.TrRIO)
	}
	if rep.NsPerOp <= 0 {
		t.Errorf("NsPerOp = %v", rep.NsPerOp)
	}
	if len(rep.Rows) != 2*len(cfg.TaskSizes) {
		t.Errorf("rows = %d", len(rep.Rows))
	}
	var buf bytes.Buffer
	if err := bench.RenderCostModel(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crossover") {
		t.Error("report missing crossover estimate")
	}
}

func TestFig3SequentialEfficiency(t *testing.T) {
	rows, err := bench.Fig3(bench.GEMMConfig{
		N: 32, TileSizes: []int{8, 16, 32}, Workers: 2, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	bestSeen := false
	for _, r := range rows {
		if r.Eff.Granularity <= 0 || r.Eff.Granularity > 1.0001 {
			t.Errorf("e_g = %v out of (0,1]", r.Eff.Granularity)
		}
		if r.Eff.Granularity > 0.9999 {
			bestSeen = true
		}
	}
	if !bestSeen {
		t.Error("no tile size achieved e_g = 1 (the best must, by definition)")
	}
}

func TestFig2And4(t *testing.T) {
	cfg := bench.GEMMConfig{N: 32, TileSizes: []int{8, 32}, Workers: 3, Reps: 1}
	rows, err := bench.Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 engines × 2 tile sizes
		t.Fatalf("fig2 rows = %d", len(rows))
	}
	rows, err = bench.Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Eff.Parallel <= 0 {
			t.Errorf("fig4 %s b=%d: e = %v", r.Engine, r.TaskSize, r.Eff.Parallel)
		}
	}
}

func TestGEMMConfigValidation(t *testing.T) {
	bad := []bench.GEMMConfig{
		{N: 32, TileSizes: []int{7}, Workers: 2, Reps: 1}, // 7 does not divide 32
		{N: 0, TileSizes: []int{8}, Workers: 2, Reps: 1},  // empty matrix
		{N: 32, TileSizes: []int{8}, Workers: 1, Reps: 1}, // too few workers
		{N: 32, TileSizes: nil, Workers: 2, Reps: 1},      // empty sweep
	}
	for i, cfg := range bad {
		if _, err := bench.Fig2(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestRenderRows(t *testing.T) {
	rows := []bench.Row{
		{Experiment: "fig6", Workload: "independent", Engine: "rio", Workers: 4,
			TaskSize: 100, Tasks: 10, Wall: 123 * time.Microsecond, PerTask: time.Microsecond},
	}
	var buf bytes.Buffer
	if err := bench.RenderRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig6", "rio", "independent"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "e_p") {
		t.Error("efficiency columns shown for rows without decomposition")
	}
}

func TestRenderRowsWithEfficiency(t *testing.T) {
	rows := []bench.Row{{
		Experiment: "fig8-exp1", Engine: "rio", Workers: 2, Wall: time.Millisecond,
		Eff: rioEff(),
	}}
	var buf bytes.Buffer
	if err := bench.RenderRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "e_p") {
		t.Error("efficiency columns missing")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []bench.Row{{
		Experiment: "fig6", Workload: "w", Engine: "rio", Workers: 2,
		TaskSize: 10, Tasks: 5, Wall: time.Millisecond, Eff: rioEff(),
	}}
	var buf bytes.Buffer
	if err := bench.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,") {
		t.Errorf("header = %q", lines[0])
	}
	if fields := strings.Split(lines[1], ","); len(fields) != 15 {
		t.Errorf("field count = %d", len(fields))
	}
}

func TestWriteJSONTrajectorySchema(t *testing.T) {
	rows := []bench.Row{
		{Experiment: "sync", Workload: "readers-writer", Engine: "rio", Policy: "park",
			Workers: 4, Tasks: 100, Wall: time.Millisecond,
			PerTask: 40 * time.Microsecond, CPU: 3 * time.Millisecond},
		{Experiment: "fig6", Workload: "independent", Engine: "rio",
			Workers: 2, Tasks: 10, Wall: time.Microsecond, PerTask: 200 * time.Nanosecond},
	}
	var buf bytes.Buffer
	if err := bench.WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	if name := got[0]["name"]; name != "sync/readers-writer/rio/park" {
		t.Errorf("name = %v", name)
	}
	if ns := got[0]["ns_per_task"]; ns != float64(40000) {
		t.Errorf("ns_per_task = %v", ns)
	}
	if cpu := got[0]["cpu_ns"]; cpu != float64(3_000_000) {
		t.Errorf("cpu_ns = %v", cpu)
	}
	// Rows without a policy under test omit it and keep the short name.
	if name := got[1]["name"]; name != "fig6/independent/rio" {
		t.Errorf("name = %v", name)
	}
	if _, ok := got[1]["policy"]; ok {
		t.Error("empty policy serialized")
	}
}

// The sync ablation must produce one row per policy × workload, every row
// carrying its policy name and (on unix) a CPU measurement.
func TestSyncAblationRows(t *testing.T) {
	rows, err := bench.SyncAblation(bench.SyncConfig{
		Workers: 2, Rounds: 6, Readers: 3, TasksPerWorker: 50, Reps: 1,
		BlockDur: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.SyncPolicies)*4 {
		t.Fatalf("rows = %d, want %d", len(rows), len(bench.SyncPolicies)*4)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.Policy == "" {
			t.Errorf("row %s/%s without policy", r.Workload, r.Engine)
		}
		if r.Wall <= 0 || r.Tasks <= 0 {
			t.Errorf("bad row %+v", r)
		}
		seen[r.Workload+"/"+r.Policy] = true
	}
	for _, w := range []string{"readers-writer", "reduce-rounds", "readers-writer+block", "independent"} {
		for _, pol := range []string{"adaptive", "spin", "park", "sleep"} {
			if !seen[w+"/"+pol] {
				t.Errorf("missing row %s/%s", w, pol)
			}
		}
	}
}

func TestSyncAblationRejectsBadConfig(t *testing.T) {
	if _, err := bench.SyncAblation(bench.SyncConfig{Workers: 1, Rounds: 1, Readers: 1, TasksPerWorker: 1}); err == nil {
		t.Error("single-worker sync ablation accepted")
	}
}

func rioEff() trace.Efficiency {
	return trace.Efficiency{Granularity: 1, Locality: 1, Pipelining: 0.9, Runtime: 0.8, Parallel: 0.72}
}
