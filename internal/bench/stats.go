package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rio/internal/stf"
)

// Distribution summarizes repeated wall-time measurements. Medians are
// what the figures report; the spread quantifies the GC/scheduler noise
// the repro-band warned about, so EXPERIMENTS.md can state it.
type Distribution struct {
	// Samples holds the raw wall times, sorted ascending.
	Samples []time.Duration
}

// Min, Median, Max are order statistics of the samples.
func (d Distribution) Min() time.Duration { return d.at(0) }

// Median returns the middle sample.
func (d Distribution) Median() time.Duration { return d.at(len(d.Samples) / 2) }

// Max returns the largest sample.
func (d Distribution) Max() time.Duration { return d.at(len(d.Samples) - 1) }

// Mean returns the arithmetic mean.
func (d Distribution) Mean() time.Duration {
	if len(d.Samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range d.Samples {
		sum += s
	}
	return sum / time.Duration(len(d.Samples))
}

// Stddev returns the sample standard deviation.
func (d Distribution) Stddev() time.Duration {
	n := len(d.Samples)
	if n < 2 {
		return 0
	}
	mean := float64(d.Mean())
	var ss float64
	for _, s := range d.Samples {
		diff := float64(s) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(n-1)))
}

// RelSpread returns stddev / mean (the coefficient of variation).
func (d Distribution) RelSpread() float64 {
	if m := d.Mean(); m > 0 {
		return float64(d.Stddev()) / float64(m)
	}
	return 0
}

// String renders "median ±cv%" for reports.
func (d Distribution) String() string {
	return fmt.Sprintf("%v ±%.0f%%", d.Median().Round(time.Microsecond), 100*d.RelSpread())
}

func (d Distribution) at(i int) time.Duration {
	if len(d.Samples) == 0 {
		return 0
	}
	return d.Samples[i]
}

// MeasureDist runs prog warmup+reps times and returns the full wall-time
// distribution (Measure returns only the median run).
func MeasureDist(e Engine, numData int, prog stf.Program, warmup, reps int) (Distribution, error) {
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < warmup; i++ {
		if err := e.Run(numData, prog); err != nil {
			return Distribution{}, err
		}
	}
	samples := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		if err := e.Run(numData, prog); err != nil {
			return Distribution{}, err
		}
		samples = append(samples, e.Stats().Wall)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	return Distribution{Samples: samples}, nil
}
