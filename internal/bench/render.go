package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"
)

// RenderRows writes rows as an aligned text table, the format the
// cmd/rio-bench CLI prints. Efficiency, policy and CPU columns are shown
// only when at least one row carries them.
func RenderRows(w io.Writer, rows []Row) error {
	withEff, withPolicy, withCPU := false, false, false
	for _, r := range rows {
		withEff = withEff || r.Eff != (effZero)
		withPolicy = withPolicy || r.Policy != ""
		withCPU = withCPU || r.CPU != 0
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	head := "experiment\tworkload\tengine"
	if withPolicy {
		head += "\tpolicy"
	}
	head += "\tp\ttask-size\ttasks\twall\tper-task"
	if withCPU {
		head += "\tcpu"
	}
	if withEff {
		head += "\te_g\te_l\te_p\te_r\te"
	}
	fmt.Fprintln(tw, head)
	for _, r := range rows {
		base := fmt.Sprintf("%s\t%s\t%s", r.Experiment, r.Workload, r.Engine)
		if withPolicy {
			base += "\t" + r.Policy
		}
		base += fmt.Sprintf("\t%d\t%d\t%d\t%s\t%s",
			r.Workers, r.TaskSize, r.Tasks, fmtDur(r.Wall), fmtDur(r.PerTask))
		if withCPU {
			base += "\t" + fmtDur(r.CPU)
		}
		if withEff {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n", base,
				r.Eff.Granularity, r.Eff.Locality, r.Eff.Pipelining, r.Eff.Runtime, r.Eff.Parallel)
		} else {
			fmt.Fprintln(tw, base)
		}
	}
	return tw.Flush()
}

var effZero = Row{}.Eff

// WriteCSV emits rows as CSV for external plotting.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{"experiment", "workload", "engine", "policy", "workers", "task_size", "tasks",
		"wall_ns", "per_task_ns", "cpu_ns", "e_g", "e_l", "e_p", "e_r", "e"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Experiment, r.Workload, r.Engine, r.Policy,
			strconv.Itoa(r.Workers),
			strconv.FormatUint(r.TaskSize, 10),
			strconv.FormatInt(r.Tasks, 10),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
			strconv.FormatInt(r.PerTask.Nanoseconds(), 10),
			strconv.FormatInt(r.CPU.Nanoseconds(), 10),
			fmtF(r.Eff.Granularity), fmtF(r.Eff.Locality),
			fmtF(r.Eff.Pipelining), fmtF(r.Eff.Runtime), fmtF(r.Eff.Parallel),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonRow is the machine-readable perf-trajectory record: one benchmark
// point with its headline ns/task. BENCH_*.json artifacts (CI bench-smoke)
// are arrays of these; keeping the schema flat and additive lets trajectory
// tooling diff files from different commits.
type jsonRow struct {
	// Name is the fully-qualified benchmark name
	// (experiment/workload/engine, plus /policy when one is under test).
	Name       string  `json:"name"`
	Experiment string  `json:"experiment"`
	Workload   string  `json:"workload"`
	Engine     string  `json:"engine"`
	Policy     string  `json:"policy,omitempty"`
	Workers    int     `json:"workers"`
	TaskSize   uint64  `json:"task_size"`
	Tasks      int64   `json:"tasks"`
	WallNs     int64   `json:"wall_ns"`
	NsPerTask  float64 `json:"ns_per_task"`
	CPUNs      int64   `json:"cpu_ns,omitempty"`
}

// WriteJSON emits rows as an indented JSON array of perf-trajectory
// records (the cmd/rio-bench -json format).
func WriteJSON(w io.Writer, rows []Row) error {
	out := make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		name := r.Experiment + "/" + r.Workload + "/" + r.Engine
		if r.Policy != "" {
			name += "/" + r.Policy
		}
		out = append(out, jsonRow{
			Name: name, Experiment: r.Experiment, Workload: r.Workload,
			Engine: r.Engine, Policy: r.Policy, Workers: r.Workers,
			TaskSize: r.TaskSize, Tasks: r.Tasks,
			WallNs:    r.Wall.Nanoseconds(),
			NsPerTask: float64(r.PerTask.Nanoseconds()),
			CPUNs:     r.CPU.Nanoseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderCostModel writes a cost-model validation report.
func RenderCostModel(w io.Writer, rep *CostModelReport) error {
	fmt.Fprintf(w, "fitted per-task runtime cost: centralized t_r = %s, rio t_r = %s\n",
		fmtDur(rep.TrCentralized), fmtDur(rep.TrRIO))
	fmt.Fprintf(w, "counter kernel: %.3f ns/op; predicted centralized crossover ≈ %d ops/task\n",
		rep.NsPerOp, rep.CrossoverOps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\ttask-size\tmeasured\tpredicted\trel-err")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.0f%%\n",
			r.Engine, r.TaskSize, fmtDur(r.Measured), fmtDur(r.Predicted), 100*r.RelErr)
	}
	return tw.Flush()
}

// fmtDur rounds durations for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'f', 4, 64) }
