package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"
)

// RenderRows writes rows as an aligned text table, the format the
// cmd/rio-bench CLI prints. Efficiency columns are shown only when at least
// one row carries a decomposition.
func RenderRows(w io.Writer, rows []Row) error {
	withEff := false
	for _, r := range rows {
		if r.Eff != (effZero) {
			withEff = true
			break
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if withEff {
		fmt.Fprintln(tw, "experiment\tworkload\tengine\tp\ttask-size\ttasks\twall\tper-task\te_g\te_l\te_p\te_r\te")
	} else {
		fmt.Fprintln(tw, "experiment\tworkload\tengine\tp\ttask-size\ttasks\twall\tper-task")
	}
	for _, r := range rows {
		base := fmt.Sprintf("%s\t%s\t%s\t%d\t%d\t%d\t%s\t%s",
			r.Experiment, r.Workload, r.Engine, r.Workers, r.TaskSize, r.Tasks,
			fmtDur(r.Wall), fmtDur(r.PerTask))
		if withEff {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n", base,
				r.Eff.Granularity, r.Eff.Locality, r.Eff.Pipelining, r.Eff.Runtime, r.Eff.Parallel)
		} else {
			fmt.Fprintln(tw, base)
		}
	}
	return tw.Flush()
}

var effZero = Row{}.Eff

// WriteCSV emits rows as CSV for external plotting.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{"experiment", "workload", "engine", "workers", "task_size", "tasks",
		"wall_ns", "per_task_ns", "e_g", "e_l", "e_p", "e_r", "e"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Experiment, r.Workload, r.Engine,
			strconv.Itoa(r.Workers),
			strconv.FormatUint(r.TaskSize, 10),
			strconv.FormatInt(r.Tasks, 10),
			strconv.FormatInt(r.Wall.Nanoseconds(), 10),
			strconv.FormatInt(r.PerTask.Nanoseconds(), 10),
			fmtF(r.Eff.Granularity), fmtF(r.Eff.Locality),
			fmtF(r.Eff.Pipelining), fmtF(r.Eff.Runtime), fmtF(r.Eff.Parallel),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderCostModel writes a cost-model validation report.
func RenderCostModel(w io.Writer, rep *CostModelReport) error {
	fmt.Fprintf(w, "fitted per-task runtime cost: centralized t_r = %s, rio t_r = %s\n",
		fmtDur(rep.TrCentralized), fmtDur(rep.TrRIO))
	fmt.Fprintf(w, "counter kernel: %.3f ns/op; predicted centralized crossover ≈ %d ops/task\n",
		rep.NsPerOp, rep.CrossoverOps)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\ttask-size\tmeasured\tpredicted\trel-err")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.0f%%\n",
			r.Engine, r.TaskSize, fmtDur(r.Measured), fmtDur(r.Predicted), 100*r.RelErr)
	}
	return tw.Flush()
}

// fmtDur rounds durations for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'f', 4, 64) }
