package bench_test

import (
	"testing"

	"rio/internal/bench"
)

func TestHPLRows(t *testing.T) {
	rows, err := bench.HPL(bench.HPLConfig{
		N: 32, PanelWidths: []int{8, 16}, Workers: 3, Reps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 widths × 3 engines
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Wall <= 0 || r.Tasks == 0 {
			t.Errorf("bad row %+v", r)
		}
		if r.Engine == "sequential" && r.Workers != 1 {
			t.Errorf("sequential row reports %d workers", r.Workers)
		}
	}
	// Task count per width follows the flow formula:
	// panels·(b + b(b-1) + b(b-1)/2) + Σ_k (laswp + 2·right-cols).
	for i, b := range []int{8, 16} {
		n := 32
		want := int64(0)
		for kb := 0; kb < n; kb += b {
			want += int64(b + b*(b-1) + b*(b-1)/2)
			left := kb
			right := n - kb - b
			want += int64(left+right) + 2*int64(right)
		}
		if rows[3*i].Tasks != want {
			t.Errorf("b=%d: tasks = %d, want %d", b, rows[3*i].Tasks, want)
		}
	}
}

func TestHPLRejectsBadConfig(t *testing.T) {
	bad := []bench.HPLConfig{
		{N: 32, PanelWidths: []int{7}, Workers: 2, Reps: 1},
		{N: 0, PanelWidths: []int{8}, Workers: 2, Reps: 1},
		{N: 32, PanelWidths: nil, Workers: 2, Reps: 1},
		{N: 32, PanelWidths: []int{8}, Workers: 1, Reps: 1},
	}
	for i, cfg := range bad {
		if _, err := bench.HPL(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
