//go:build !unix

package bench

import "time"

// cpuTime is unavailable off unix; rows carry CPU = 0 and renderers omit
// the column.
func cpuTime() time.Duration { return 0 }
