// Package bench is the experiment harness regenerating every table and
// figure of the paper's evaluation (§5 and §2.3): workload construction,
// engine setup, repetition and median-taking, efficiency decomposition, and
// text-table rendering. The cmd/rio-bench binary is a thin CLI over this
// package; root-level testing.B benchmarks reuse the same runners.
package bench

import (
	"fmt"
	"sort"
	"time"

	"rio/internal/centralized"
	"rio/internal/core"
	"rio/internal/sequential"
	"rio/internal/stf"
	"rio/internal/trace"
)

// Engine is the runtime surface the harness drives.
type Engine interface {
	Run(numData int, prog stf.Program) error
	Stats() *trace.Stats
	Name() string
	NumWorkers() int
}

// EngineKind selects an execution model in experiment configurations.
type EngineKind int

// Engine kinds compared across the paper's figures.
const (
	RIO EngineKind = iota
	CentralizedFIFO
	CentralizedWS
	CentralizedPrio
	Sequential
)

// String names the kind as used in report rows.
func (k EngineKind) String() string {
	switch k {
	case RIO:
		return "rio"
	case CentralizedFIFO:
		return "centralized-fifo"
	case CentralizedWS:
		return "centralized-ws"
	case CentralizedPrio:
		return "centralized-prio"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// NewEngine builds an engine of the given kind with p threads and an
// optional static mapping (binding for RIO, locality hint for the
// centralized work-stealing scheduler).
func NewEngine(kind EngineKind, p int, mapping stf.Mapping) (Engine, error) {
	switch kind {
	case RIO:
		return core.New(core.Options{Workers: p, Mapping: mapping})
	case CentralizedFIFO:
		return centralized.New(centralized.Options{Workers: p})
	case CentralizedWS:
		return centralized.New(centralized.Options{Workers: p, Scheduler: centralized.WorkStealing, Hint: mapping})
	case CentralizedPrio:
		return centralized.New(centralized.Options{Workers: p, Scheduler: centralized.Priority})
	case Sequential:
		return sequential.New(sequential.Options{}), nil
	}
	return nil, fmt.Errorf("bench: unknown engine kind %d", int(k(kind)))
}

func k(x EngineKind) int { return int(x) }

// Measure runs prog on e warmup+reps times and returns the median wall time
// together with the stats of the median run.
func Measure(e Engine, numData int, prog stf.Program, warmup, reps int) (time.Duration, *trace.Stats, error) {
	return MeasureRun(func() error { return e.Run(numData, prog) }, e.Stats, warmup, reps)
}

// MeasureRun is Measure over an arbitrary run thunk (closure replay,
// compiled replay, …): warmup+reps runs, median wall time, stats of the
// median run as reported by stats() after each run.
func MeasureRun(run func() error, stats func() *trace.Stats, warmup, reps int) (time.Duration, *trace.Stats, error) {
	wall, _, st, err := MeasureRunCPU(run, stats, warmup, reps)
	return wall, st, err
}

// MeasureRunCPU is MeasureRun plus process-CPU accounting: it additionally
// returns the mean CPU time (user+system, whole process) per measured run,
// taken as a getrusage delta around the timed repetitions. Zero on
// platforms without rusage.
func MeasureRunCPU(run func() error, stats func() *trace.Stats, warmup, reps int) (time.Duration, time.Duration, *trace.Stats, error) {
	if reps < 1 {
		reps = 1
	}
	for i := 0; i < warmup; i++ {
		if err := run(); err != nil {
			return 0, 0, nil, err
		}
	}
	type sample struct {
		wall  time.Duration
		stats trace.Stats
	}
	samples := make([]sample, 0, reps)
	cpu0 := cpuTime()
	for i := 0; i < reps; i++ {
		if err := run(); err != nil {
			return 0, 0, nil, err
		}
		st := *stats()
		samples = append(samples, sample{st.Wall, st})
	}
	cpu := (cpuTime() - cpu0) / time.Duration(reps)
	sort.Slice(samples, func(a, b int) bool { return samples[a].wall < samples[b].wall })
	med := samples[len(samples)/2]
	return med.wall, cpu, &med.stats, nil
}

// Row is one measurement line of a report: an engine on a workload at a
// given granularity, with its time and efficiency decomposition.
type Row struct {
	// Experiment identifies the figure/table ("fig6", "fig8-exp2", ...).
	Experiment string
	// Workload names the task graph.
	Workload string
	// Engine names the execution model.
	Engine string
	// Workers is the thread count p.
	Workers int
	// TaskSize is the synthetic kernel's loop count (the paper's "task
	// size [instructions]"), or the tile dimension for GEMM figures.
	TaskSize uint64
	// Tasks is the number of tasks executed.
	Tasks int64
	// Policy names the wait policy under test ("" outside the
	// synchronization ablation, where every engine runs its default).
	Policy string
	// Wall is the median end-to-end time t_p.
	Wall time.Duration
	// PerTask is Wall·p/Tasks − an effective per-task cumulative cost.
	PerTask time.Duration
	// CPU is the process CPU time (user+system) consumed per run, averaged
	// over the measured repetitions; zero when not measured. Spin-heavy
	// policies can match on Wall while burning p× more CPU — this column is
	// what separates them.
	CPU time.Duration
	// Eff is the efficiency decomposition (zero-valued when not
	// applicable to the experiment).
	Eff trace.Efficiency
}
