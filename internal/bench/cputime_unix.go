//go:build unix

package bench

import (
	"syscall"
	"time"
)

// cpuTime returns the process's cumulative CPU time (user + system).
// Deltas around a measured region give the compute actually burned, which
// is what separates a spin policy from a parking one when their wall times
// agree.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
