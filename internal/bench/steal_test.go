package bench_test

import (
	"testing"
	"time"

	"rio/internal/bench"
)

// The steal ablation's own sanity contract: the full 2×2 matrix on both
// replay paths, every row executing the whole flow, and the escape the
// experiment exists to show — skewed+steal beating skewed alone. The
// margin here is deliberately loose (the acceptance ratio is measured by
// `rio-bench steal` at real scale); sleeping bodies make it hold even on
// a single hardware thread.
func TestStealAblation(t *testing.T) {
	cfg := bench.StealConfig{
		Workers: 3, Tasks: 48, TaskDur: 200 * time.Microsecond, Reps: 1,
	}
	rows, err := bench.StealAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 mappings × steal on/off × 2 replay paths)", len(rows))
	}
	wall := map[string]time.Duration{}
	for _, r := range rows {
		if r.Tasks != int64(cfg.Tasks) {
			t.Errorf("%s/%s executed %d tasks, want %d", r.Engine, r.Policy, r.Tasks, cfg.Tasks)
		}
		if r.Wall <= 0 || r.CPU < 0 {
			t.Errorf("bad row %+v", r)
		}
		wall[r.Engine+"/"+r.Policy] = r.Wall
	}
	for _, engine := range []string{"rio", "rio-compiled"} {
		off, on := wall[engine+"/skewed/steal=off"], wall[engine+"/skewed/steal=on"]
		if off == 0 || on == 0 {
			t.Fatalf("%s: missing skewed rows (%v)", engine, wall)
		}
		if on >= off {
			t.Errorf("%s: stealing did not beat the skewed serialization: on=%v off=%v", engine, on, off)
		}
	}
}

func TestStealAblationRejectsBadConfig(t *testing.T) {
	for _, cfg := range []bench.StealConfig{
		{Workers: 1, Tasks: 48, TaskDur: time.Microsecond, Reps: 1},
		{Workers: 3, Tasks: 2, TaskDur: time.Microsecond, Reps: 1},
		{Workers: 3, Tasks: 48, Reps: 1},
	} {
		if _, err := bench.StealAblation(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
