package bench

import (
	"fmt"
	"io"

	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

// Replay ablation: how much of RIO's per-run cost is the replay term
// n·t_r of eq. (2), and how much of it compilation removes. The workload
// is the Fig 7 weak-scaling one (n = TasksPerWorker·p independent counter
// tasks, cyclic mapping) because with no dependencies and negligible
// bodies the run is almost pure replay overhead. Variants:
//
//   - closure          — stf.Replay through the Submitter interface, the
//     default path (divergence guard on);
//   - closure-noguard  — same with the guard off, isolating the guard's
//     share of t_r;
//   - compiled         — pre-lowered per-worker instruction streams
//     (guard-free by construction);
//   - compiled-pruned  — streams with §3.5 pruning applied at compile
//     time; for independent tasks a worker's stream shrinks to just its
//     own n/p executions.

// ReplayConfig parameterizes the replay ablation.
type ReplayConfig struct {
	// Workers is the thread count p.
	Workers int
	// TasksPerWorker scales the flow: n = TasksPerWorker · Workers.
	TasksPerWorker int
	// TaskSize is the counter kernel's loop count (keep small: the point
	// is replay overhead, not task work).
	TaskSize uint64
	// Warmup, Reps as elsewhere.
	Warmup, Reps int
}

func (c ReplayConfig) check() error {
	if c.Workers < 1 || c.TasksPerWorker < 1 {
		return fmt.Errorf("bench: bad replay config %+v", c)
	}
	return nil
}

// WriteReplayChromeTrace runs the replay workload once — compiled path,
// spans recorded — and writes a graph-aware Chrome trace (task slices,
// ready/executed counter rows, dependency flow arrows) to w. The traced
// run is separate from the measured ones: recording perturbs fine-grained
// timings, so ReplayAblation's rows stay recorder-free.
func WriteReplayChromeTrace(w io.Writer, cfg ReplayConfig) error {
	if err := cfg.check(); err != nil {
		return err
	}
	p := cfg.Workers
	g := graphs.Independent(cfg.TasksPerWorker * p)
	m := sched.Cyclic(p)
	cells := kernels.NewCells(p)
	rec := trace.NewRecorder(p)
	kern := rec.Instrument(graphs.CounterKernel(cells, cfg.TaskSize))

	cp, err := stf.Compile(g, m, p, nil)
	if err != nil {
		return err
	}
	e, err := core.New(core.Options{Workers: p, Mapping: m})
	if err != nil {
		return err
	}
	if err := e.RunCompiled(cp, kern); err != nil {
		return err
	}
	return rec.WriteChromeTraceGraph(w, g, nil)
}

// ReplayAblation measures the four replay variants on the Fig 7 workload.
func ReplayAblation(cfg ReplayConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	p := cfg.Workers
	g := graphs.Independent(cfg.TasksPerWorker * p)
	m := sched.Cyclic(p)
	cells := kernels.NewCells(p)
	kern := graphs.CounterKernel(cells, cfg.TaskSize)

	compiled, err := stf.Compile(g, m, p, nil)
	if err != nil {
		return nil, err
	}
	pruned, err := stf.Compile(g, m, p, sched.Relevant(g, m, p))
	if err != nil {
		return nil, err
	}

	type variant struct {
		name    string
		noGuard bool
		cp      *stf.CompiledProgram
	}
	variants := []variant{
		{"closure", false, nil},
		{"closure-noguard", true, nil},
		{"compiled", false, compiled},
		{"compiled-pruned", false, pruned},
	}
	var rows []Row
	for _, v := range variants {
		e, err := core.New(core.Options{Workers: p, Mapping: m, NoGuard: v.noGuard})
		if err != nil {
			return nil, err
		}
		run := func() error { return e.Run(g.NumData, stf.Replay(g, kern)) }
		if v.cp != nil {
			cp := v.cp
			run = func() error { return e.RunCompiled(cp, kern) }
		}
		wall, st, err := MeasureRun(run, e.Stats, cfg.Warmup, cfg.Reps)
		if err != nil {
			return nil, fmt.Errorf("replay/%s: %w", v.name, err)
		}
		rows = append(rows, Row{
			Experiment: "replay",
			Workload:   g.Name,
			Engine:     v.name,
			Workers:    p,
			TaskSize:   cfg.TaskSize,
			Tasks:      st.Executed(),
			Wall:       wall,
			PerTask:    perTask(wall, p, st.Executed()),
		})
	}
	return rows, nil
}
