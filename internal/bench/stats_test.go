package bench_test

import (
	"strings"
	"testing"
	"time"

	"rio/internal/bench"
	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestDistributionStatistics(t *testing.T) {
	d := bench.Distribution{Samples: []time.Duration{1, 2, 3, 4, 10}}
	if d.Min() != 1 || d.Max() != 10 || d.Median() != 3 {
		t.Errorf("order stats: min=%v med=%v max=%v", d.Min(), d.Median(), d.Max())
	}
	if d.Mean() != 4 {
		t.Errorf("mean = %v", d.Mean())
	}
	// Sample stddev of {1,2,3,4,10}: variance = (9+4+1+0+36)/4 = 12.5.
	if sd := d.Stddev(); sd < 3 || sd > 4 {
		t.Errorf("stddev = %v, want ≈3.54", sd)
	}
	// Durations truncate to integer nanoseconds: stddev 3.54 → 3ns.
	if rs := d.RelSpread(); rs < 0.7 || rs > 0.95 {
		t.Errorf("rel spread = %v", rs)
	}
	if !strings.Contains(d.String(), "±") {
		t.Errorf("String = %q", d.String())
	}
}

func TestDistributionDegenerate(t *testing.T) {
	var d bench.Distribution
	if d.Min() != 0 || d.Median() != 0 || d.Max() != 0 || d.Mean() != 0 || d.Stddev() != 0 || d.RelSpread() != 0 {
		t.Error("empty distribution not all-zero")
	}
	one := bench.Distribution{Samples: []time.Duration{5}}
	if one.Stddev() != 0 {
		t.Error("single-sample stddev not zero")
	}
}

func TestMeasureDist(t *testing.T) {
	e, err := bench.NewEngine(bench.Sequential, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := graphs.Independent(100)
	prog := stf.Replay(g, func(*stf.Task, stf.WorkerID) {})
	d, err := bench.MeasureDist(e, 0, prog, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 5 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	for i := 1; i < len(d.Samples); i++ {
		if d.Samples[i] < d.Samples[i-1] {
			t.Fatal("samples not sorted")
		}
	}
	if d.Median() <= 0 {
		t.Error("non-positive median")
	}
}
