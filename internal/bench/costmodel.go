package bench

import (
	"fmt"
	"runtime"
	"time"

	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
)

// Cost-model validation (§3.3, equations (1) and (2)):
//
//	t_p,centralized   = max(n·t_r,  n·t_t(g)/w)      (1)
//	t_p,decentralized = n·t_r + n·t_t(g)/w           (2)
//
// The harness fits the per-task runtime cost t_r of each engine from a run
// with near-zero task bodies, predicts the execution time across a
// granularity sweep with the engine's cost model, and reports predicted vs
// measured. It also reports the model's predicted centralized crossover
// granularity — the task size above which the workers, not the master,
// bound the execution (t_t(g) > w·t_r).

// CostModelRow is one line of the cost-model report.
type CostModelRow struct {
	// Engine names the execution model.
	Engine string
	// TaskSize is the counter-kernel loop count.
	TaskSize uint64
	// Measured is the measured wall time, Predicted the cost model's.
	Measured, Predicted time.Duration
	// RelErr is |Predicted-Measured| / Measured.
	RelErr float64
}

// CostModelReport is the full validation result.
type CostModelReport struct {
	// TrCentralized and TrRIO are the fitted per-task runtime costs.
	TrCentralized, TrRIO time.Duration
	// NsPerOp is the counter-kernel calibration.
	NsPerOp float64
	// CrossoverOps is the predicted centralized crossover task size in
	// counter-loop iterations: w · t_r / nsPerOp.
	CrossoverOps uint64
	// Rows holds predicted-vs-measured lines for both engines.
	Rows []CostModelRow
}

// CostModel fits and validates the two cost models on independent counter
// tasks.
//
// The models' n·t_t/w term assumes w truly parallel execution units; when
// goroutine workers outnumber hardware threads (GOMAXPROCS), the effective
// compute parallelism is capped by the hardware, so the prediction uses
// min(w, GOMAXPROCS) — the paper's testbed always had w ≤ cores.
func CostModel(cfg CounterConfig) (*CostModelReport, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	calib := kernels.Calibrate(20 * time.Millisecond)
	g := graphs.Independent(cfg.Tasks)
	n := float64(cfg.Tasks)
	// Executing workers: RIO uses all p; the centralized engine dedicates
	// one thread to the master.
	hw := runtime.GOMAXPROCS(0)
	wRIO := float64(min(cfg.Workers, hw))
	wCent := float64(min(cfg.Workers-1, hw))

	fit := func(kind EngineKind) (time.Duration, error) {
		wall, _, err := counterRun(kind, cfg, g, sched.Cyclic(cfg.Workers), 1)
		if err != nil {
			return 0, err
		}
		return time.Duration(float64(wall) / n), nil
	}
	rep := &CostModelReport{NsPerOp: calib.NsPerOp}
	var err error
	if rep.TrCentralized, err = fit(CentralizedFIFO); err != nil {
		return nil, fmt.Errorf("costmodel fit centralized: %w", err)
	}
	if rep.TrRIO, err = fit(RIO); err != nil {
		return nil, fmt.Errorf("costmodel fit rio: %w", err)
	}
	rep.CrossoverOps = uint64(wCent * float64(rep.TrCentralized.Nanoseconds()) / calib.NsPerOp)

	predict := func(kind EngineKind, size uint64) time.Duration {
		tt := calib.NsPerOp * float64(size) // ns per task body
		switch kind {
		case CentralizedFIFO:
			mgmt := n * float64(rep.TrCentralized.Nanoseconds())
			comp := n * tt / wCent
			return time.Duration(max(mgmt, comp))
		default:
			return time.Duration(n*float64(rep.TrRIO.Nanoseconds()) + n*tt/wRIO)
		}
	}
	for _, kind := range []EngineKind{CentralizedFIFO, RIO} {
		for _, size := range cfg.TaskSizes {
			wall, _, err := counterRun(kind, cfg, g, sched.Cyclic(cfg.Workers), size)
			if err != nil {
				return nil, err
			}
			pred := predict(kind, size)
			rel := 0.0
			if wall > 0 {
				rel = abs(float64(pred-wall)) / float64(wall)
			}
			rep.Rows = append(rep.Rows, CostModelRow{
				Engine:    kind.String(),
				TaskSize:  size,
				Measured:  wall,
				Predicted: pred,
				RelErr:    rel,
			})
		}
	}
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
