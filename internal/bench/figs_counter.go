package bench

import (
	"fmt"
	"math"
	"time"

	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

// CounterConfig parameterizes the synthetic-kernel experiments (Figures 6,
// 7 and 8). The defaults in cmd/rio-bench scale the paper's sizes down to
// laptop-class runs; every knob is a flag there.
type CounterConfig struct {
	// Workers is the thread count p for parallel engines.
	Workers int
	// Tasks is the total task count of fixed-size experiments.
	Tasks int
	// TaskSizes is the granularity sweep (counter-loop iterations).
	TaskSizes []uint64
	// Warmup and Reps control repetition; the median rep is reported.
	Warmup, Reps int
	// Seed feeds the random-dependency generator (Experiment 2).
	Seed int64
}

func (c CounterConfig) check() error {
	if c.Workers < 2 {
		return fmt.Errorf("bench: need at least 2 workers to compare engines, got %d", c.Workers)
	}
	if c.Tasks < 1 || len(c.TaskSizes) == 0 {
		return fmt.Errorf("bench: empty workload (tasks=%d, sizes=%d)", c.Tasks, len(c.TaskSizes))
	}
	return nil
}

// counterRun measures one engine on one recorded graph with the counter
// kernel of the given size.
func counterRun(kind EngineKind, cfg CounterConfig, g *stf.Graph, mapping stf.Mapping, size uint64) (time.Duration, *trace.Stats, error) {
	e, err := NewEngine(kind, cfg.Workers, mapping)
	if err != nil {
		return 0, nil, err
	}
	cells := kernels.NewCells(cfg.Workers)
	prog := stf.Replay(g, graphs.CounterKernel(cells, size))
	return Measure(e, g.NumData, prog, cfg.Warmup, cfg.Reps)
}

// Fig6 reproduces Figure 6: execution time of a fixed number of
// independent counter tasks for the centralized runtime versus RIO, as a
// function of task size. The expected shape: the centralized engine's time
// flattens at a floor set by the master's per-task management cost
// (eq. (1)'s n·t_r term), while RIO keeps scaling down with the task size.
func Fig6(cfg CounterConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	g := graphs.Independent(cfg.Tasks)
	var rows []Row
	for _, kind := range []EngineKind{RIO, CentralizedFIFO} {
		for _, size := range cfg.TaskSizes {
			wall, st, err := counterRun(kind, cfg, g, sched.Cyclic(cfg.Workers), size)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s size=%d: %w", kind, size, err)
			}
			rows = append(rows, Row{
				Experiment: "fig6",
				Workload:   g.Name,
				Engine:     kind.String(),
				Workers:    cfg.Workers,
				TaskSize:   size,
				Tasks:      st.Executed(),
				Wall:       wall,
				PerTask:    perTask(wall, cfg.Workers, st.Executed()),
			})
		}
	}
	return rows, nil
}

// Fig7Config parameterizes the weak-scaling experiment of Figure 7.
type Fig7Config struct {
	// MaxWorkers sweeps p from 1 (2 for the centralized engine) upward.
	MaxWorkers int
	// TasksPerWorker is the paper's 2^15 (scaled down by default).
	TasksPerWorker int
	// TaskSize is the fixed counter-loop size.
	TaskSize uint64
	// Warmup, Reps as in CounterConfig.
	Warmup, Reps int
	// WithPruned additionally measures RIO with per-worker task pruning
	// (§3.5), the paper's proposed mitigation of the unrolling overhead.
	WithPruned bool
	// WithCentralized additionally measures the centralized baseline.
	WithCentralized bool
}

// Fig7 reproduces Figure 7: total execution time of a fixed number of
// independent tasks *per worker* as the worker count grows. Because every
// RIO worker unrolls the whole flow, total unrolling work grows
// quadratically with p at fixed per-worker load — the decentralized model's
// main drawback. Task pruning removes it: each worker only unrolls its own
// tasks, and the curve flattens.
func Fig7(cfg Fig7Config) ([]Row, error) {
	if cfg.MaxWorkers < 1 || cfg.TasksPerWorker < 1 {
		return nil, fmt.Errorf("bench: bad fig7 config %+v", cfg)
	}
	var rows []Row
	for p := 1; p <= cfg.MaxWorkers; p++ {
		n := cfg.TasksPerWorker * p
		g := graphs.Independent(n)
		m := sched.Cyclic(p)
		cells := kernels.NewCells(p)
		kern := graphs.CounterKernel(cells, cfg.TaskSize)

		variants := []struct {
			name string
			kind EngineKind
			prog stf.Program
			skip bool
		}{
			{"rio", RIO, stf.Replay(g, kern), false},
			{"rio-pruned", RIO, sched.PrunedReplay(g, kern, sched.Relevant(g, m, p)), !cfg.WithPruned},
			{"centralized-fifo", CentralizedFIFO, stf.Replay(g, kern), !cfg.WithCentralized || p < 2},
		}
		for _, v := range variants {
			if v.skip {
				continue
			}
			e, err := NewEngine(v.kind, p, m)
			if err != nil {
				return nil, err
			}
			wall, st, err := Measure(e, g.NumData, v.prog, cfg.Warmup, cfg.Reps)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s p=%d: %w", v.name, p, err)
			}
			rows = append(rows, Row{
				Experiment: "fig7",
				Workload:   fmt.Sprintf("independent %d/worker", cfg.TasksPerWorker),
				Engine:     v.name,
				Workers:    p,
				TaskSize:   cfg.TaskSize,
				Tasks:      st.Executed(),
				Wall:       wall,
				PerTask:    perTask(wall, p, st.Executed()),
			})
		}
	}
	return rows, nil
}

// Fig8Experiment identifies one row of Figure 8.
type Fig8Experiment int

// The four synthetic experiments of §5.1.
const (
	Exp1Independent Fig8Experiment = iota + 1
	Exp2RandomDeps
	Exp3GEMM
	Exp4LU
)

// String names the experiment.
func (e Fig8Experiment) String() string {
	switch e {
	case Exp1Independent:
		return "exp1-independent"
	case Exp2RandomDeps:
		return "exp2-random"
	case Exp3GEMM:
		return "exp3-gemm"
	case Exp4LU:
		return "exp4-lu"
	}
	return fmt.Sprintf("exp%d", int(e))
}

// fig8Workload builds the experiment's task graph (sized to ≈ cfg.Tasks
// tasks) and the RIO mapping the paper's methodology assumes the
// programmer supplies: cyclic for experiments 1–2 (no better mapping exists
// for random dependencies — the point of Experiment 2), owner-computes 2-D
// block-cyclic for the linear-algebra graphs.
func fig8Workload(exp Fig8Experiment, cfg CounterConfig) (*stf.Graph, stf.Mapping, error) {
	switch exp {
	case Exp1Independent:
		g := graphs.Independent(cfg.Tasks)
		return g, sched.Cyclic(cfg.Workers), nil
	case Exp2RandomDeps:
		g := graphs.RandomDeps(cfg.Tasks, 128, 2, 1, cfg.Seed)
		return g, sched.Cyclic(cfg.Workers), nil
	case Exp3GEMM:
		nt := int(math.Cbrt(float64(cfg.Tasks)))
		if nt < 2 {
			nt = 2
		}
		g := graphs.GEMM(nt)
		return g, sched.OwnerComputes(g, sched.NewGrid2D(cfg.Workers)), nil
	case Exp4LU:
		nt := 2
		for graphs.LUTaskCount(nt+1) <= cfg.Tasks {
			nt++
		}
		g := graphs.LU(nt)
		return g, sched.OwnerComputes(g, sched.NewGrid2D(cfg.Workers)), nil
	}
	return nil, nil, fmt.Errorf("bench: unknown experiment %d", int(exp))
}

// Fig8 reproduces one row of Figure 8: the efficiency decomposition (e_p,
// e_r and their product; e_g = e_l = 1 by the synthetic kernel) as a
// function of task size, for RIO and the centralized baseline, on the
// experiment's task graph.
func Fig8(exp Fig8Experiment, cfg CounterConfig) ([]Row, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	g, mapping, err := fig8Workload(exp, cfg)
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, size := range cfg.TaskSizes {
		for _, kind := range []EngineKind{RIO, CentralizedFIFO} {
			wall, st, err := counterRun(kind, cfg, g, mapping, size)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s %s size=%d: %w", exp, kind, size, err)
			}
			// With the synthetic counter kernel, t = t(g) = τ_{p,t} by
			// construction (§5.1): e_g = e_l = 1 and e = e_p · e_r, the
			// two factors Figure 8 plots.
			taskCum, _, _ := st.Cumulative()
			eff := trace.Decompose(taskCum, taskCum, st)
			rows = append(rows, Row{
				Experiment: "fig8-" + exp.String(),
				Workload:   g.Name,
				Engine:     kind.String(),
				Workers:    cfg.Workers,
				TaskSize:   size,
				Tasks:      st.Executed(),
				Wall:       wall,
				PerTask:    perTask(wall, cfg.Workers, st.Executed()),
				Eff:        eff,
			})
		}
	}
	return rows, nil
}

// Fig8All runs all four experiments.
func Fig8All(cfg CounterConfig) ([]Row, error) {
	var rows []Row
	for _, exp := range []Fig8Experiment{Exp1Independent, Exp2RandomDeps, Exp3GEMM, Exp4LU} {
		r, err := Fig8(exp, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

func perTask(wall time.Duration, p int, tasks int64) time.Duration {
	if tasks == 0 {
		return 0
	}
	return wall * time.Duration(p) / time.Duration(tasks)
}
