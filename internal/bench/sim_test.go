package bench_test

import (
	"testing"

	"rio/internal/bench"
)

func simCfg() bench.SimConfig {
	return bench.SimConfig{
		SimWorkers: 24, FitWorkers: 3, FitTasks: 512,
		Tasks: 256, TaskSizes: []uint64{100, 100000}, Seed: 1, Reps: 1,
	}
}

func TestFitCosts(t *testing.T) {
	costs, err := bench.FitCosts(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	if costs.NsPerOp <= 0 {
		t.Errorf("NsPerOp = %v", costs.NsPerOp)
	}
	if costs.RIO.DeclareCost <= 0 {
		t.Errorf("declare cost = %v", costs.RIO.DeclareCost)
	}
	if costs.Centralized.DispatchCost <= 0 {
		t.Errorf("dispatch cost = %v", costs.Centralized.DispatchCost)
	}
	// The structural relation the whole paper rests on: skipping a
	// foreign task is much cheaper than centrally dispatching one.
	if costs.RIO.DeclareCost >= costs.Centralized.DispatchCost {
		t.Errorf("declare (%v) should be far below dispatch (%v)",
			costs.RIO.DeclareCost, costs.Centralized.DispatchCost)
	}
}

func TestFitCostsValidation(t *testing.T) {
	if _, err := bench.FitCosts(bench.SimConfig{FitWorkers: 1, FitTasks: 10}); err == nil {
		t.Error("bad fit config accepted")
	}
}

func TestSimFig8ShapeAtPaperScale(t *testing.T) {
	rows, costs, err := bench.SimFig8(simCfg())
	if err != nil {
		t.Fatal(err)
	}
	if costs == nil {
		t.Fatal("no fitted costs returned")
	}
	// 4 experiments × 2 sizes × 2 models.
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	byKey := map[string]bench.Row{}
	for _, r := range rows {
		byKey[r.Experiment+"/"+r.Engine+"/"+itoa(r.TaskSize)] = r
		// The centralized runtime efficiency is capped by the dedicated
		// master: e_r <= (p-1)/p = 23/24 ≈ 0.9583 (paper §5.2).
		if r.Engine == "sim-centralized" && r.Eff.Runtime > float64(23)/24+1e-9 {
			t.Errorf("%s size=%d: centralized e_r = %v exceeds (p-1)/p", r.Experiment, r.TaskSize, r.Eff.Runtime)
		}
	}
	// Headline shape on exp1: at 100-op tasks RIO beats centralized by a
	// wide margin; at 100k-op tasks they converge.
	fineRIO := byKey["sim-fig8-exp1-independent/sim-rio/100"]
	fineCen := byKey["sim-fig8-exp1-independent/sim-centralized/100"]
	if fineRIO.Wall*4 > fineCen.Wall {
		t.Errorf("fine grain: rio %v vs centralized %v — expected >4x gap", fineRIO.Wall, fineCen.Wall)
	}
	coarseRIO := byKey["sim-fig8-exp1-independent/sim-rio/100000"]
	coarseCen := byKey["sim-fig8-exp1-independent/sim-centralized/100000"]
	ratio := float64(coarseCen.Wall) / float64(coarseRIO.Wall)
	if ratio < 0.7 || ratio > 1.5 {
		t.Errorf("coarse grain: engines should converge, ratio %v", ratio)
	}
}

func TestSimFig8Validation(t *testing.T) {
	cfg := simCfg()
	cfg.SimWorkers = 1
	if _, _, err := bench.SimFig8(cfg); err == nil {
		t.Error("1 simulated worker accepted")
	}
	cfg = simCfg()
	cfg.TaskSizes = nil
	if _, _, err := bench.SimFig8(cfg); err == nil {
		t.Error("empty sweep accepted")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
