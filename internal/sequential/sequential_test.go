package sequential_test

import (
	"testing"

	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sequential"
	"rio/internal/stf"
)

func TestExecutesInSubmissionOrder(t *testing.T) {
	e := sequential.New(sequential.Options{})
	var got []int
	err := e.Run(1, func(s stf.Submitter) {
		for i := 0; i < 20; i++ {
			i := i
			s.Submit(func() { got = append(got, i) }, stf.RW(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d ran task %d", i, v)
		}
	}
}

func TestSubmitRunsBeforeReturn(t *testing.T) {
	e := sequential.New(sequential.Options{})
	err := e.Run(0, func(s stf.Submitter) {
		ran := false
		s.Submit(func() { ran = true })
		if !ran {
			t.Error("Submit returned before the task ran")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMetadata(t *testing.T) {
	e := sequential.New(sequential.Options{})
	if e.Name() != "sequential" {
		t.Errorf("Name() = %q", e.Name())
	}
	if e.NumWorkers() != 1 {
		t.Errorf("NumWorkers() = %d", e.NumWorkers())
	}
}

func TestRunRejectsNegativeNumData(t *testing.T) {
	e := sequential.New(sequential.Options{})
	if err := e.Run(-1, func(stf.Submitter) {}); err == nil {
		t.Error("negative numData accepted")
	}
}

func TestTaskIDRegressionReported(t *testing.T) {
	e := sequential.New(sequential.Options{})
	tasks := []stf.Task{{ID: 3}, {ID: 1}}
	err := e.Run(0, func(s stf.Submitter) {
		s.SubmitTask(&tasks[0], func(*stf.Task, stf.WorkerID) {})
		s.SubmitTask(&tasks[1], func(*stf.Task, stf.WorkerID) {})
	})
	if err == nil {
		t.Error("ID regression not reported")
	}
}

func TestStats(t *testing.T) {
	e := sequential.New(sequential.Options{})
	g := graphs.LU(4)
	if _, err := enginetest.Run(e, g); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Executed() != int64(len(g.Tasks)) {
		t.Errorf("executed = %d, want %d", st.Executed(), len(g.Tasks))
	}
	if len(st.Workers) != 1 {
		t.Errorf("worker count = %d", len(st.Workers))
	}
	task, idle, _ := st.Cumulative()
	if idle != 0 {
		t.Errorf("sequential engine reported idle time %v", idle)
	}
	if task > st.Wall {
		t.Errorf("task time %v exceeds wall %v", task, st.Wall)
	}
}

func TestNoAccounting(t *testing.T) {
	e := sequential.New(sequential.Options{NoAccounting: true})
	g := graphs.GEMM(3)
	if err := enginetest.Check(e, g); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Accounted {
		t.Error("stats claim accounting was on")
	}
}

func TestPanicBecomesError(t *testing.T) {
	e := sequential.New(sequential.Options{})
	after := false
	err := e.Run(0, func(s stf.Submitter) {
		s.Submit(func() { panic("boom") })
		s.Submit(func() { after = true })
	})
	if err == nil {
		t.Fatal("panicking run returned nil error")
	}
	if after {
		t.Error("tasks after the panic still executed")
	}
}

func TestSelfConsistency(t *testing.T) {
	// The sequential engine is the oracle's reference; Check against
	// itself must trivially pass for all workloads.
	for _, g := range []*stf.Graph{
		graphs.Independent(50),
		graphs.RandomDeps(100, 16, 2, 1, 5),
		graphs.GEMM(3),
		graphs.LU(4),
		graphs.Cholesky(4),
		graphs.Wavefront(4, 4),
	} {
		if err := enginetest.Check(sequential.New(sequential.Options{}), g); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}
