// Package sequential implements the trivial STF execution model: run every
// task inline, in task-flow order, on the calling goroutine. It is
// semantically the reference implementation — the STF sequential-consistency
// guarantee says every valid parallel execution must produce the same
// result as this one — and it provides the t(g) measurements of the
// efficiency decomposition (paper §2.3).
package sequential

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// Engine executes STF programs sequentially. The zero value is not usable;
// use New.
type Engine struct {
	noAcct     bool
	hooks      *stf.Hooks
	retry      *stf.RetryPolicy
	snaps      stf.Snapshotter
	resume     *stf.Checkpoint
	checkpoint bool
	stats      trace.Stats
	progress   atomic.Pointer[trace.ProgressTable]
}

// Options configures a sequential engine.
type Options struct {
	// NoAccounting disables per-task time-stamping.
	NoAccounting bool
	// Hooks optionally installs lifecycle callbacks (see stf.Hooks). The
	// sequential engine never waits, so the wait hooks never fire.
	Hooks *stf.Hooks
	// Retry installs transient-fault retry of task bodies with write-set
	// rollback (see stf.RetryPolicy); nil disables retry. A terminal task
	// failure stops the run with a *stf.TaskFailure (instead of the
	// legacy bare panic message).
	Retry *stf.RetryPolicy
	// Snapshots captures and restores data objects for retry rollback.
	Snapshots stf.Snapshotter
	// Resume skips the completed tasks of a previous run's checkpoint.
	Resume *stf.Checkpoint
	// Checkpoint enables completed-task tracking even without a retry
	// policy; failed runs then return a stf.PartialError. Retry != nil
	// implies it.
	Checkpoint bool
}

// New returns a sequential engine.
func New(o Options) *Engine {
	return &Engine{
		noAcct: o.NoAccounting, hooks: o.Hooks,
		retry: o.Retry, snaps: o.Snapshots, resume: o.Resume,
		checkpoint: o.Checkpoint || o.Retry != nil,
	}
}

// Name identifies the execution model in reports.
func (e *Engine) Name() string { return "sequential" }

// NumWorkers returns 1.
func (e *Engine) NumWorkers() int { return 1 }

// Run executes prog, running each submitted task immediately.
func (e *Engine) Run(numData int, prog stf.Program) error {
	return e.RunContext(context.Background(), numData, prog)
}

// RunContext is Run with cancellation: the cancellation flag is checked
// before each task, so a canceled run stops at the next task boundary and
// returns an error wrapping ctx's cause (the task already executing runs
// to completion — cancellation is cooperative).
func (e *Engine) RunContext(ctx context.Context, numData int, prog stf.Program) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sequential: run not started: %w", context.Cause(ctx))
	}
	if numData < 0 {
		return errors.New("sequential: negative numData")
	}
	rp := trace.NewProgressTable(1)
	e.progress.Store(rp)
	if h := e.hooks; h != nil && h.OnRunStart != nil {
		h.OnRunStart(1, numData)
	}
	s := &submitter{
		noAcct: e.noAcct, hooks: e.hooks, prog: rp.Worker(0),
		retry: e.retry, snaps: e.snaps, resume: e.resume, track: e.checkpoint,
	}
	if ctx.Done() != nil {
		s.ctx = ctx
	}
	t0 := time.Now()
	prog(s)
	wall := time.Since(t0)
	s.ws.Wall = wall
	if !e.noAcct {
		if r := wall - s.ws.Task; r > 0 {
			s.ws.Runtime = r
		}
	}
	e.stats = trace.Stats{Workers: []trace.WorkerStats{s.ws}, Wall: wall, Accounted: !e.noAcct}
	rp.Finish()
	err := s.err
	if err != nil && e.checkpoint {
		err = &stf.PartialError{Cause: err, Result: s.partialResult(e.resume)}
	}
	if h := e.hooks; h != nil && h.OnRunEnd != nil {
		h.OnRunEnd(err)
	}
	return err
}

// Progress snapshots the current (or, between runs, the most recent) run's
// always-on counters: a single worker cell whose wait histogram is always
// empty (the sequential engine never blocks on a dependency). Safe to call
// from any goroutine; before the first run it returns a zero Progress.
func (e *Engine) Progress() trace.Progress {
	t := e.progress.Load()
	if t == nil {
		return trace.Progress{}
	}
	return t.Snapshot()
}

// Stats returns the time decomposition of the last Run.
func (e *Engine) Stats() *trace.Stats { return &e.stats }

type submitter struct {
	next   stf.TaskID
	noAcct bool
	ctx    context.Context // non-nil only for cancelable runs
	hooks  *stf.Hooks
	retry  *stf.RetryPolicy // nil disables task retry
	snaps  stf.Snapshotter  // write-set capture for retry rollback
	resume *stf.Checkpoint  // completed tasks of a previous run to skip
	track  bool             // log completed tasks for checkpoints
	done   []stf.TaskID     // completed tasks (track only)
	prog   *trace.ProgressCell
	ws     trace.WorkerStats
	err    error
}

// partialResult assembles the frontier of a failed checkpointing run;
// sequential execution makes it trivially dependency-closed (a prefix of
// the flow, minus nothing).
func (s *submitter) partialResult(resume *stf.Checkpoint) *stf.PartialResult {
	pr := &stf.PartialResult{Tasks: int(s.next)}
	if resume != nil {
		pr.Completed = append(pr.Completed, resume.Completed...)
	}
	pr.Completed = append(pr.Completed, s.done...)
	stf.SortTaskIDs(pr.Completed)
	var tf *stf.TaskFailure
	if errors.As(s.err, &tf) {
		pr.Failed = []stf.TaskID{tf.Task}
	}
	return pr
}

// Worker implements stf.Submitter; the sequential executor is its own
// master.
func (s *submitter) Worker() stf.WorkerID { return stf.MasterWorker }

// NumWorkers implements stf.Submitter.
func (s *submitter) NumWorkers() int { return 1 }

// Submit implements stf.Submitter: the task runs before Submit returns.
func (s *submitter) Submit(fn stf.TaskFunc, accesses ...stf.Access) stf.TaskID {
	id := s.next
	s.next++
	s.run(accesses, func() { fn() })
	return id
}

// SubmitTask implements stf.Submitter for recorded tasks.
func (s *submitter) SubmitTask(t *stf.Task, k stf.Kernel) stf.TaskID {
	if t.ID < s.next {
		if s.err == nil {
			s.err = fmt.Errorf("sequential: task ID %d submitted after ID %d", t.ID, s.next-1)
		}
		return t.ID
	}
	s.next = t.ID + 1
	s.run(t.Accesses, func() { k(t, stf.MasterWorker) })
	return t.ID
}

func (s *submitter) run(accesses []stf.Access, f func()) {
	if s.err != nil {
		return
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		s.err = fmt.Errorf("sequential: run canceled: %w", context.Cause(s.ctx))
		return
	}
	id := s.next - 1
	if s.resume != nil && s.resume.Contains(id) {
		// Completed in a previous run; its effects are already in memory.
		s.ws.Skipped++
		s.prog.StoreSkipped(s.ws.Skipped)
		return
	}
	if s.retry != nil {
		s.runAttempts(id, accesses, f)
		return
	}
	// A panicking task fails the run but does not unwind the caller
	// (Submit keeps its documented return-after-execution contract);
	// subsequent tasks are skipped via the sticky error. The unwinding
	// panic skips OnTaskEnd and leaves Current parked on the failed task,
	// matching the parallel engines' contract.
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("sequential: task %d panicked: %v", id, r)
		}
	}()
	s.prog.SetCurrent(id)
	if h := s.hooks; h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(stf.MasterWorker, id)
	}
	if s.noAcct {
		f()
	} else {
		t0 := time.Now()
		f()
		s.ws.Task += time.Since(t0)
	}
	if h := s.hooks; h != nil && h.OnTaskEnd != nil {
		h.OnTaskEnd(stf.MasterWorker, id)
	}
	s.prog.SetCurrent(stf.NoTask)
	s.ws.Executed++
	s.prog.StoreExecuted(s.ws.Executed)
	if s.track {
		s.done = append(s.done, id)
	}
}

// runAttempts executes one task body under the retry policy: failed
// attempts roll back the write-set (the sequential engine's data is
// trivially quiescent) and re-execute after a deterministic backoff. A
// terminal failure sets the sticky error to a *stf.TaskFailure; later
// tasks are skipped, so the completed set is a clean prefix.
func (s *submitter) runAttempts(id stf.TaskID, accesses []stf.Access, f func()) {
	s.prog.SetCurrent(id)
	if h := s.hooks; h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(stf.MasterWorker, id)
	}
	p := s.retry
	restore, can := stf.SnapshotWriteSet(s.snaps, accesses)
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 || !can {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		cause, ok := s.tryOnce(f)
		if ok {
			if h := s.hooks; h != nil && h.OnTaskEnd != nil {
				h.OnTaskEnd(stf.MasterWorker, id)
			}
			s.prog.SetCurrent(stf.NoTask)
			s.ws.Executed++
			s.prog.StoreExecuted(s.ws.Executed)
			if s.track {
				s.done = append(s.done, id)
			}
			return
		}
		if restore != nil {
			restore()
		}
		canceled := s.ctx != nil && s.ctx.Err() != nil
		if attempt >= maxAttempts || !p.Transient(cause) || canceled {
			// Current stays parked on the failed task, like the panic path.
			s.err = &stf.TaskFailure{Task: id, Attempts: attempt, Cause: cause}
			return
		}
		s.ws.Retried++
		s.prog.StoreRetried(s.ws.Retried)
		if h := s.hooks; h != nil && h.OnTaskRetry != nil {
			h.OnTaskRetry(stf.MasterWorker, id, attempt, cause)
		}
		if !s.backoff(p.Delay(attempt + 1)) {
			s.err = fmt.Errorf("sequential: run canceled: %w", context.Cause(s.ctx))
			return
		}
	}
}

// tryOnce runs the body once, converting a panic into a returned cause.
func (s *submitter) tryOnce(f func()) (cause any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			cause = r
			ok = false
		}
	}()
	if s.noAcct {
		f()
	} else {
		t0 := time.Now()
		f()
		s.ws.Task += time.Since(t0)
	}
	return nil, true
}

// backoffSlice bounds each individual sleep of a retry backoff so a
// canceled run cuts the wait short.
const backoffSlice = 10 * time.Millisecond

// backoff sleeps d in short slices, polling the run context. Returns
// false when the run was canceled mid-wait.
func (s *submitter) backoff(d time.Duration) bool {
	for d > 0 {
		if s.ctx != nil && s.ctx.Err() != nil {
			return false
		}
		step := d
		if step > backoffSlice {
			step = backoffSlice
		}
		time.Sleep(step)
		d -= step
	}
	return true
}
