// Package sequential implements the trivial STF execution model: run every
// task inline, in task-flow order, on the calling goroutine. It is
// semantically the reference implementation — the STF sequential-consistency
// guarantee says every valid parallel execution must produce the same
// result as this one — and it provides the t(g) measurements of the
// efficiency decomposition (paper §2.3).
package sequential

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

// Engine executes STF programs sequentially. The zero value is not usable;
// use New.
type Engine struct {
	noAcct   bool
	hooks    *stf.Hooks
	stats    trace.Stats
	progress atomic.Pointer[trace.ProgressTable]
}

// Options configures a sequential engine.
type Options struct {
	// NoAccounting disables per-task time-stamping.
	NoAccounting bool
	// Hooks optionally installs lifecycle callbacks (see stf.Hooks). The
	// sequential engine never waits, so the wait hooks never fire.
	Hooks *stf.Hooks
}

// New returns a sequential engine.
func New(o Options) *Engine { return &Engine{noAcct: o.NoAccounting, hooks: o.Hooks} }

// Name identifies the execution model in reports.
func (e *Engine) Name() string { return "sequential" }

// NumWorkers returns 1.
func (e *Engine) NumWorkers() int { return 1 }

// Run executes prog, running each submitted task immediately.
func (e *Engine) Run(numData int, prog stf.Program) error {
	return e.RunContext(context.Background(), numData, prog)
}

// RunContext is Run with cancellation: the cancellation flag is checked
// before each task, so a canceled run stops at the next task boundary and
// returns an error wrapping ctx's cause (the task already executing runs
// to completion — cancellation is cooperative).
func (e *Engine) RunContext(ctx context.Context, numData int, prog stf.Program) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sequential: run not started: %w", context.Cause(ctx))
	}
	if numData < 0 {
		return errors.New("sequential: negative numData")
	}
	rp := trace.NewProgressTable(1)
	e.progress.Store(rp)
	if h := e.hooks; h != nil && h.OnRunStart != nil {
		h.OnRunStart(1, numData)
	}
	s := &submitter{noAcct: e.noAcct, hooks: e.hooks, prog: rp.Worker(0)}
	if ctx.Done() != nil {
		s.ctx = ctx
	}
	t0 := time.Now()
	prog(s)
	wall := time.Since(t0)
	s.ws.Wall = wall
	if !e.noAcct {
		if r := wall - s.ws.Task; r > 0 {
			s.ws.Runtime = r
		}
	}
	e.stats = trace.Stats{Workers: []trace.WorkerStats{s.ws}, Wall: wall, Accounted: !e.noAcct}
	rp.Finish()
	if h := e.hooks; h != nil && h.OnRunEnd != nil {
		h.OnRunEnd(s.err)
	}
	return s.err
}

// Progress snapshots the current (or, between runs, the most recent) run's
// always-on counters: a single worker cell whose wait histogram is always
// empty (the sequential engine never blocks on a dependency). Safe to call
// from any goroutine; before the first run it returns a zero Progress.
func (e *Engine) Progress() trace.Progress {
	t := e.progress.Load()
	if t == nil {
		return trace.Progress{}
	}
	return t.Snapshot()
}

// Stats returns the time decomposition of the last Run.
func (e *Engine) Stats() *trace.Stats { return &e.stats }

type submitter struct {
	next   stf.TaskID
	noAcct bool
	ctx    context.Context // non-nil only for cancelable runs
	hooks  *stf.Hooks
	prog   *trace.ProgressCell
	ws     trace.WorkerStats
	err    error
}

// Worker implements stf.Submitter; the sequential executor is its own
// master.
func (s *submitter) Worker() stf.WorkerID { return stf.MasterWorker }

// NumWorkers implements stf.Submitter.
func (s *submitter) NumWorkers() int { return 1 }

// Submit implements stf.Submitter: the task runs before Submit returns.
func (s *submitter) Submit(fn stf.TaskFunc, accesses ...stf.Access) stf.TaskID {
	id := s.next
	s.next++
	s.run(func() { fn() })
	return id
}

// SubmitTask implements stf.Submitter for recorded tasks.
func (s *submitter) SubmitTask(t *stf.Task, k stf.Kernel) stf.TaskID {
	if t.ID < s.next {
		if s.err == nil {
			s.err = fmt.Errorf("sequential: task ID %d submitted after ID %d", t.ID, s.next-1)
		}
		return t.ID
	}
	s.next = t.ID + 1
	s.run(func() { k(t, stf.MasterWorker) })
	return t.ID
}

func (s *submitter) run(f func()) {
	if s.err != nil {
		return
	}
	if s.ctx != nil && s.ctx.Err() != nil {
		s.err = fmt.Errorf("sequential: run canceled: %w", context.Cause(s.ctx))
		return
	}
	id := s.next - 1
	// A panicking task fails the run but does not unwind the caller
	// (Submit keeps its documented return-after-execution contract);
	// subsequent tasks are skipped via the sticky error. The unwinding
	// panic skips OnTaskEnd and leaves Current parked on the failed task,
	// matching the parallel engines' contract.
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("sequential: task %d panicked: %v", id, r)
		}
	}()
	s.prog.SetCurrent(id)
	if h := s.hooks; h != nil && h.OnTaskStart != nil {
		h.OnTaskStart(stf.MasterWorker, id)
	}
	if s.noAcct {
		f()
	} else {
		t0 := time.Now()
		f()
		s.ws.Task += time.Since(t0)
	}
	if h := s.hooks; h != nil && h.OnTaskEnd != nil {
		h.OnTaskEnd(stf.MasterWorker, id)
	}
	s.prog.SetCurrent(stf.NoTask)
	s.ws.Executed++
	s.prog.StoreExecuted(s.ws.Executed)
}
