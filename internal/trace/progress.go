package trace

import (
	"sync/atomic"
	"time"
	"unsafe"

	"rio/internal/stf"
)

// NumWaitBuckets is the number of buckets of the per-worker wait-time
// histogram: seven bounded buckets plus one overflow bucket.
const NumWaitBuckets = 8

// WaitBucketBounds are the upper bounds of the first NumWaitBuckets-1
// histogram buckets; the last bucket counts waits of at least the largest
// bound. The exponential spacing spans the engine's wait escalation: the
// sub-microsecond buckets are busy-poll territory, the middle ones cover
// the Gosched and sleep phases, the top ones are stall territory.
var WaitBucketBounds = [NumWaitBuckets - 1]time.Duration{
	time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// WaitBucket returns the histogram bucket index for a wait of duration d.
func WaitBucket(d time.Duration) int {
	for i, b := range WaitBucketBounds {
		if d < b {
			return i
		}
	}
	return NumWaitBuckets - 1
}

// WorkerProgress is one worker's slice of a Progress snapshot.
type WorkerProgress struct {
	// Executed, Declared and Claimed count this worker's tasks so far,
	// with the semantics of the WorkerStats fields of the same names.
	// One addition: in the centralized engine the master's Declared counts
	// the tasks it has submitted so far (its mid-run unrolling position).
	Executed int64 `json:"executed"`
	Declared int64 `json:"declared"`
	Claimed  int64 `json:"claimed"`
	// Retried counts rolled-back-and-retried task attempts, Skipped the
	// tasks a Resume checkpoint let this worker skip (fault tolerance).
	Retried int64 `json:"retried"`
	Skipped int64 `json:"skipped"`
	// Stolen counts executed tasks taken from other workers' static
	// assignments under a steal policy; StealFailed counts steal attempts
	// that lost the claim race after proving a task ready.
	Stolen      int64 `json:"stolen"`
	StealFailed int64 `json:"steal_failed"`
	// Current is the ID of the task this worker is executing right now,
	// or stf.NoTask (-1) when it is between tasks (replaying, waiting or
	// done).
	Current stf.TaskID `json:"current"`
	// WaitHist is the histogram of completed dependency-wait durations
	// (bucket bounds in WaitBucketBounds). Populated only when accounting
	// is enabled: under NoAccounting waits are not timed.
	WaitHist [NumWaitBuckets]int64 `json:"wait_hist"`
}

// Progress is a mid-run snapshot of a run's always-on counters, readable
// from any goroutine while the run is in flight (engines publish the
// counters with atomic stores on per-worker cache lines). After a run
// finishes the last run's final counters stay readable.
type Progress struct {
	// Running reports whether a run is currently in flight.
	Running bool `json:"running"`
	// Workers holds one entry per engine thread, aligned with
	// Stats.Workers (for the centralized engine index 0 is the master).
	Workers []WorkerProgress `json:"workers"`
}

// Executed returns the total tasks executed so far across workers.
func (p *Progress) Executed() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Executed
	}
	return n
}

// Declared returns the total declare-only task visits so far.
func (p *Progress) Declared() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Declared
	}
	return n
}

// Claimed returns the total dynamically claimed executions so far.
func (p *Progress) Claimed() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Claimed
	}
	return n
}

// Retried returns the total retried task attempts so far.
func (p *Progress) Retried() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Retried
	}
	return n
}

// Skipped returns the total resume-skipped tasks so far.
func (p *Progress) Skipped() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Skipped
	}
	return n
}

// Stolen returns the total stolen task executions so far.
func (p *Progress) Stolen() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].Stolen
	}
	return n
}

// StealFailed returns the total lost steal claim races so far.
func (p *Progress) StealFailed() int64 {
	var n int64
	for i := range p.Workers {
		n += p.Workers[i].StealFailed
	}
	return n
}

// WaitHist returns the wait-duration histogram summed across workers.
func (p *Progress) WaitHist() [NumWaitBuckets]int64 {
	var h [NumWaitBuckets]int64
	for i := range p.Workers {
		for b, n := range p.Workers[i].WaitHist {
			h[b] += n
		}
	}
	return h
}

// ProgressCell is one worker's published counter block inside a
// ProgressTable. Each cell is cache-line padded and owned by exactly one
// worker, which publishes with uncontended atomic stores of its private
// tallies — no read-modify-write on shared lines, so the always-on cost is
// one atomic store per declare and three per execution.
type ProgressCell struct {
	progressCounters
	// Pad to a cache-line multiple to keep neighboring workers off this
	// line; computed, not hand-counted, so it stays correct when the
	// counter block grows.
	_ [(cacheLine - unsafe.Sizeof(progressCounters{})%cacheLine) % cacheLine]byte
}

// cacheLine is the coherence granularity ProgressCell pads to.
const cacheLine = 64

// progressCounters is the payload of a ProgressCell.
type progressCounters struct {
	executed atomic.Int64
	declared atomic.Int64
	claimed  atomic.Int64
	retried     atomic.Int64
	skipped     atomic.Int64
	stolen      atomic.Int64
	stealFailed atomic.Int64
	current     atomic.Int64 // task ID being executed, or stf.NoTask
	waitHist    [NumWaitBuckets]atomic.Int64
}

// StoreExecuted publishes the worker's executed-task tally.
func (c *ProgressCell) StoreExecuted(n int64) { c.executed.Store(n) }

// StoreDeclared publishes the worker's declare-only tally.
func (c *ProgressCell) StoreDeclared(n int64) { c.declared.Store(n) }

// StoreClaimed publishes the worker's dynamically-claimed tally.
func (c *ProgressCell) StoreClaimed(n int64) { c.claimed.Store(n) }

// StoreRetried publishes the worker's retried-attempt tally.
func (c *ProgressCell) StoreRetried(n int64) { c.retried.Store(n) }

// StoreSkipped publishes the worker's resume-skipped tally.
func (c *ProgressCell) StoreSkipped(n int64) { c.skipped.Store(n) }

// StoreStolen publishes the worker's stolen-execution tally.
func (c *ProgressCell) StoreStolen(n int64) { c.stolen.Store(n) }

// StoreStealFailed publishes the worker's lost-steal-race tally.
func (c *ProgressCell) StoreStealFailed(n int64) { c.stealFailed.Store(n) }

// SetCurrent publishes the task the worker is executing (stf.NoTask to
// clear).
func (c *ProgressCell) SetCurrent(id stf.TaskID) { c.current.Store(int64(id)) }

// AddWait buckets one completed dependency wait of duration d.
func (c *ProgressCell) AddWait(d time.Duration) {
	c.waitHist[WaitBucket(d)].Add(1)
}

// ProgressTable is the always-on counter table of one run, shared by the
// engines: one padded cell per worker plus a running flag. Engines publish
// a fresh table at run start through an atomic pointer, so snapshots never
// race with run setup or teardown.
type ProgressTable struct {
	running atomic.Bool
	workers []ProgressCell
}

// NewProgressTable returns a table for the given worker count with every
// current-task slot initialized to stf.NoTask and the running flag set.
func NewProgressTable(workers int) *ProgressTable {
	t := &ProgressTable{workers: make([]ProgressCell, workers)}
	for w := range t.workers {
		t.workers[w].current.Store(int64(stf.NoTask))
	}
	t.running.Store(true)
	return t
}

// Worker returns worker w's cell.
func (t *ProgressTable) Worker(w int) *ProgressCell { return &t.workers[w] }

// Finish clears the running flag (the counters stay readable).
func (t *ProgressTable) Finish() { t.running.Store(false) }

// Snapshot assembles a Progress view of the table. Safe to call from any
// goroutine while workers are publishing.
func (t *ProgressTable) Snapshot() Progress {
	p := Progress{
		Running: t.running.Load(),
		Workers: make([]WorkerProgress, len(t.workers)),
	}
	for w := range t.workers {
		cell := &t.workers[w]
		out := &p.Workers[w]
		out.Executed = cell.executed.Load()
		out.Declared = cell.declared.Load()
		out.Claimed = cell.claimed.Load()
		out.Retried = cell.retried.Load()
		out.Skipped = cell.skipped.Load()
		out.Stolen = cell.stolen.Load()
		out.StealFailed = cell.stealFailed.Load()
		out.Current = stf.TaskID(cell.current.Load())
		for b := range cell.waitHist {
			out.WaitHist[b] = cell.waitHist[b].Load()
		}
	}
	return p
}
