package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rio/internal/stf"
	"rio/internal/trace"
)

func TestWriteMetricsExposition(t *testing.T) {
	p := trace.Progress{
		Running: true,
		Workers: []trace.WorkerProgress{
			{Executed: 5, Declared: 7, Claimed: 1, Current: 12},
			{Executed: 3, Declared: 9, Current: stf.NoTask},
		},
	}
	p.Workers[0].WaitHist[0] = 2 // < 1µs
	p.Workers[0].WaitHist[3] = 1 // < 1ms
	var buf bytes.Buffer
	if err := trace.WriteMetrics(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"rio_run_running 1",
		`rio_tasks_executed_total{worker="0"} 5`,
		`rio_tasks_executed_total{worker="1"} 3`,
		`rio_tasks_declared_total{worker="1"} 9`,
		`rio_tasks_claimed_total{worker="0"} 1`,
		`rio_worker_current_task{worker="0"} 12`,
		`rio_worker_current_task{worker="1"} -1`,
		// Histogram buckets are cumulative: the 1ms bucket includes the
		// two sub-µs waits plus the sub-ms one.
		`rio_wait_duration_seconds_bucket{worker="0",le="1e-06"} 2`,
		`rio_wait_duration_seconds_bucket{worker="0",le="0.001"} 3`,
		`rio_wait_duration_seconds_bucket{worker="0",le="+Inf"} 3`,
		`rio_wait_duration_seconds_count{worker="0"} 3`,
		"# TYPE rio_wait_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestWaitBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{999 * time.Microsecond, 3},
		{time.Second, trace.NumWaitBuckets - 1},
		{time.Hour, trace.NumWaitBuckets - 1},
	}
	for _, c := range cases {
		if got := trace.WaitBucket(c.d); got != c.want {
			t.Errorf("WaitBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
