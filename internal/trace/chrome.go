package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rio/internal/stf"
)

// WriteChromeTrace exports the recorded spans in the Chrome trace-event
// format (the JSON array form), loadable in chrome://tracing, Perfetto or
// speedscope: one complete ("X") event per task span, one row per worker.
// kernelName optionally labels kernels; nil falls back to "kernel <id>".
func (r *Recorder) WriteChromeTrace(w io.Writer, kernelName func(int) string) error {
	type event struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		TS   int64  `json:"ts"`  // microseconds
		Dur  int64  `json:"dur"` // microseconds
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
		Args struct {
			Task int64 `json:"task"`
		} `json:"args"`
	}
	name := kernelName
	if name == nil {
		name = func(k int) string { return fmt.Sprintf("kernel %d", k) }
	}
	events := make([]event, 0, r.Count())
	for lane, spans := range r.lanes {
		for _, s := range spans {
			ev := event{
				Name: name(s.Kernel),
				Cat:  "task",
				Ph:   "X",
				TS:   s.Start.Microseconds(),
				Dur:  (s.End - s.Start).Microseconds(),
				PID:  1,
				TID:  lane,
			}
			ev.Args.Task = int64(s.Task)
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// chromeEvent is the superset of trace-event fields the graph-aware export
// uses: complete slices ("X"), thread metadata ("M"), counter rows ("C")
// and flow arrows along dependency edges ("s"/"f").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`            // microseconds
	Dur  int64          `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"` // flow-event binding
	BP   string         `json:"bp,omitempty"` // "e": bind flow end to enclosing slice
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTraceGraph is WriteChromeTrace upgraded with the recorded
// graph's structure: in addition to one "X" slice per task span it emits
//
//   - thread-name metadata ("M") labeling each worker lane (and the master
//     lane, when anything ran on it);
//   - two counter rows ("C"): "ready" — tasks whose dependencies have all
//     completed but which have not started — and "executed", the cumulative
//     completion count. The ready row makes starvation visible: a deep ready
//     backlog with idle lanes is a mapping problem, an empty ready row is a
//     dependency-chain (pipelining) problem;
//   - one flow arrow ("s" → "f") per dependency edge between recorded
//     spans, so Perfetto draws the graph's edges over the timeline.
//
// Tasks of g that have no recorded span (pruned, skipped, or the run
// aborted) contribute no events; edges touching them are dropped.
func (r *Recorder) WriteChromeTraceGraph(w io.Writer, g *stf.Graph, kernelName func(int) string) error {
	name := kernelName
	if name == nil {
		name = func(k int) string { return fmt.Sprintf("kernel %d", k) }
	}

	type spanAt struct {
		lane int
		span Span
	}
	byTask := make(map[stf.TaskID]spanAt, r.Count())
	events := make([]chromeEvent, 0, 4*r.Count())
	var stolen []spanAt

	for lane, spans := range r.lanes {
		if len(spans) == 0 {
			continue
		}
		label := fmt.Sprintf("worker %d", lane)
		if lane == len(r.lanes)-1 {
			label = "master"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane,
			Args: map[string]any{"name": label},
		})
		for _, s := range spans {
			byTask[s.Task] = spanAt{lane: lane, span: s}
			args := map[string]any{"task": int64(s.Task)}
			cat := "task"
			if s.Stolen {
				// A stolen task's slice lives in the thief's lane; the
				// owner it was claimed from is kept as an arg and drawn
				// as a hand-off arrow below.
				args["stolen_from"] = int64(s.Owner)
				cat = "task,steal"
				stolen = append(stolen, spanAt{lane: lane, span: s})
			}
			events = append(events, chromeEvent{
				Name: name(s.Kernel),
				Cat:  cat,
				Ph:   "X",
				TS:   s.Start.Microseconds(),
				Dur:  (s.End - s.Start).Microseconds(),
				PID:  1,
				TID:  lane,
				Args: args,
			})
		}
	}

	deps := g.Dependencies()

	// Flow arrows: one per dependency edge whose endpoints both ran. The
	// arrow leaves the producer's slice at its end and binds to the
	// consumer's enclosing slice at its start (bp:"e").
	var edge int64
	for id := range g.Tasks {
		to, ok := byTask[stf.TaskID(id)]
		if !ok {
			continue
		}
		for _, d := range deps[id] {
			from, ok := byTask[d]
			if !ok {
				continue
			}
			edge++
			events = append(events,
				chromeEvent{Name: "dep", Cat: "dep", Ph: "s", TS: from.span.End.Microseconds(),
					PID: 1, TID: from.lane, ID: edge},
				chromeEvent{Name: "dep", Cat: "dep", Ph: "f", TS: to.span.Start.Microseconds(),
					PID: 1, TID: to.lane, ID: edge, BP: "e"},
			)
		}
	}

	// Steal hand-off arrows: one per stolen span, leaving the owner's lane
	// at the claim instant and binding to the thief's slice — Perfetto
	// shows at a glance which tasks escaped their static owner.
	for _, sp := range stolen {
		edge++
		events = append(events,
			chromeEvent{Name: "steal", Cat: "steal", Ph: "s", TS: sp.span.Start.Microseconds(),
				PID: 1, TID: int(sp.span.Owner), ID: edge},
			chromeEvent{Name: "steal", Cat: "steal", Ph: "f", TS: sp.span.Start.Microseconds(),
				PID: 1, TID: sp.lane, ID: edge, BP: "e"},
		)
	}

	// Counter rows. A task becomes ready when its last dependency's span
	// ends (immediately, with no dependencies), leaves the ready set when
	// its own span starts, and counts as executed when its span ends.
	type tick struct {
		ts            int64
		ready, execed int64
	}
	var ticks []tick
	for id := range g.Tasks {
		at, ok := byTask[stf.TaskID(id)]
		if !ok {
			continue
		}
		var ready int64
		for _, d := range deps[id] {
			if from, ok := byTask[d]; ok {
				if e := from.span.End.Microseconds(); e > ready {
					ready = e
				}
			}
		}
		ticks = append(ticks,
			tick{ts: ready, ready: +1},
			tick{ts: at.span.Start.Microseconds(), ready: -1},
			tick{ts: at.span.End.Microseconds(), execed: +1},
		)
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i].ts < ticks[j].ts })
	var ready, execed int64
	for i, t := range ticks {
		ready += t.ready
		execed += t.execed
		// Coalesce simultaneous ticks into one sample per timestamp.
		if i+1 < len(ticks) && ticks[i+1].ts == t.ts {
			continue
		}
		events = append(events,
			chromeEvent{Name: "ready", Ph: "C", TS: t.ts, PID: 1, TID: 0,
				Args: map[string]any{"tasks": ready}},
			chromeEvent{Name: "executed", Ph: "C", TS: t.ts, PID: 1, TID: 0,
				Args: map[string]any{"tasks": execed}},
		)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
