package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace exports the recorded spans in the Chrome trace-event
// format (the JSON array form), loadable in chrome://tracing, Perfetto or
// speedscope: one complete ("X") event per task span, one row per worker.
// kernelName optionally labels kernels; nil falls back to "kernel <id>".
func (r *Recorder) WriteChromeTrace(w io.Writer, kernelName func(int) string) error {
	type event struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		TS   int64  `json:"ts"`  // microseconds
		Dur  int64  `json:"dur"` // microseconds
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
		Args struct {
			Task int64 `json:"task"`
		} `json:"args"`
	}
	name := kernelName
	if name == nil {
		name = func(k int) string { return fmt.Sprintf("kernel %d", k) }
	}
	events := make([]event, 0, r.Count())
	for lane, spans := range r.lanes {
		for _, s := range spans {
			ev := event{
				Name: name(s.Kernel),
				Cat:  "task",
				Ph:   "X",
				TS:   s.Start.Microseconds(),
				Dur:  (s.End - s.Start).Microseconds(),
				PID:  1,
				TID:  lane,
			}
			ev.Args.Task = int64(s.Task)
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
