package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

func TestRecorderCapturesAllTasks(t *testing.T) {
	const p = 3
	g := graphs.LU(5)
	rec := trace.NewRecorder(p)
	cells := kernels.NewCells(p)
	kern := rec.Instrument(graphs.CounterKernel(cells, 200))

	e, err := core.New(core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != len(g.Tasks) {
		t.Fatalf("recorded %d spans, want %d", rec.Count(), len(g.Tasks))
	}
	// Every span well-formed, lanes match the mapping.
	seen := make([]bool, len(g.Tasks))
	for w := 0; w < p; w++ {
		for _, s := range rec.Spans(w) {
			if s.End < s.Start {
				t.Fatalf("span %v ends before it starts", s)
			}
			if sched.Cyclic(p)(s.Task) != stf.WorkerID(w) {
				t.Fatalf("task %d recorded on lane %d, mapping says %d", s.Task, w, sched.Cyclic(p)(s.Task))
			}
			if seen[s.Task] {
				t.Fatalf("task %d recorded twice", s.Task)
			}
			seen[s.Task] = true
		}
	}
}

func TestRecorderKernelStats(t *testing.T) {
	rec := trace.NewRecorder(1)
	rec.Record(0, trace.Span{Task: 0, Kernel: 7, Start: 0, End: 10 * time.Microsecond})
	rec.Record(0, trace.Span{Task: 1, Kernel: 7, Start: 10 * time.Microsecond, End: 40 * time.Microsecond})
	rec.Record(0, trace.Span{Task: 2, Kernel: 9, Start: 40 * time.Microsecond, End: 45 * time.Microsecond})
	stats := rec.KernelStats()
	k7 := stats[7]
	if k7.Count != 2 || k7.Total != 40*time.Microsecond || k7.Max != 30*time.Microsecond {
		t.Errorf("kernel 7 stats = %+v", k7)
	}
	if k7.Mean() != 20*time.Microsecond {
		t.Errorf("kernel 7 mean = %v", k7.Mean())
	}
	if stats[9].Count != 1 {
		t.Errorf("kernel 9 stats = %+v", stats[9])
	}
	var zero trace.KernelStat
	if zero.Mean() != 0 {
		t.Error("zero-stat mean not 0")
	}
}

func TestRecorderWindowAndReset(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Record(0, trace.Span{Start: 5 * time.Microsecond, End: 9 * time.Microsecond})
	rec.Record(1, trace.Span{Start: 2 * time.Microsecond, End: 12 * time.Microsecond})
	first, last := rec.Window()
	if first != 2*time.Microsecond || last != 12*time.Microsecond {
		t.Errorf("window = [%v, %v]", first, last)
	}
	rec.Reset()
	if rec.Count() != 0 {
		t.Error("reset did not clear spans")
	}
}

func TestGanttRendering(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Record(0, trace.Span{Start: 0, End: 50 * time.Microsecond})
	rec.Record(1, trace.Span{Start: 50 * time.Microsecond, End: 100 * time.Microsecond})
	var buf bytes.Buffer
	if err := rec.Gantt(&buf, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	// Worker 0 busy in the first half, worker 1 in the second.
	if !strings.HasPrefix(lines[0], "w0") || !strings.Contains(lines[0], "#") {
		t.Errorf("lane 0 = %q", lines[0])
	}
	if strings.Count(lines[0], "#") != strings.Count(lines[1], "#") {
		t.Errorf("asymmetric lanes:\n%s", out)
	}
	first0 := strings.IndexByte(lines[0], '#')
	first1 := strings.IndexByte(lines[1], '#')
	if first0 >= first1 {
		t.Errorf("worker 1's busy period should start later:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	rec := trace.NewRecorder(1)
	var buf bytes.Buffer
	if err := rec.Gantt(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("empty gantt = %q", buf.String())
	}
}

func TestCriticalPath(t *testing.T) {
	// Chain of 3 tasks (10µs each) plus 1 independent task (5µs):
	// critical = 30µs, work = 35µs.
	g := stf.NewGraph("cp", 2)
	g.Add(0, 0, 0, 0, stf.RW(0))
	g.Add(0, 1, 0, 0, stf.RW(0))
	g.Add(0, 2, 0, 0, stf.RW(0))
	g.Add(0, 3, 0, 0, stf.RW(1))
	rec := trace.NewRecorder(1)
	for i := 0; i < 3; i++ {
		rec.Record(0, trace.Span{Task: stf.TaskID(i), Start: time.Duration(i*10) * time.Microsecond, End: time.Duration(i*10+10) * time.Microsecond})
	}
	rec.Record(0, trace.Span{Task: 3, Start: 30 * time.Microsecond, End: 35 * time.Microsecond})
	critical, work := rec.CriticalPath(g)
	if critical != 30*time.Microsecond {
		t.Errorf("critical = %v, want 30µs", critical)
	}
	if work != 35*time.Microsecond {
		t.Errorf("work = %v, want 35µs", work)
	}
}

func TestOrderedSpans(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Record(1, trace.Span{Task: 1, Start: 30 * time.Microsecond, End: 31 * time.Microsecond})
	rec.Record(0, trace.Span{Task: 0, Start: 10 * time.Microsecond, End: 11 * time.Microsecond})
	all := rec.OrderedSpans()
	if len(all) != 2 || all[0].Task != 0 || all[1].Task != 1 {
		t.Errorf("ordered spans = %+v", all)
	}
}

func TestCriticalPathOnRealRun(t *testing.T) {
	// The measured pipelining efficiency can never beat the task graph's
	// own bound work / (p · critical).
	const p = 2
	g := graphs.Wavefront(5, 5)
	rec := trace.NewRecorder(p)
	cells := kernels.NewCells(p)
	kern := rec.Instrument(graphs.CounterKernel(cells, 2000))
	e, err := core.New(core.Options{Workers: p, Mapping: sched.Cyclic(p)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	critical, work := rec.CriticalPath(g)
	if critical <= 0 || work < critical {
		t.Fatalf("critical=%v work=%v", critical, work)
	}
	// Wavefront 5x5 with uniform tasks: critical path is 9 cells of 25,
	// so work/critical ≈ 25/9 ≈ 2.8.
	ratio := float64(work) / float64(critical)
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("work/critical = %.2f, expected ≈ 2.8 for uniform 5x5 wavefront", ratio)
	}
}
