package trace

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rio/internal/stf"
)

// RaceDetector is a runtime validator for the data-race-freedom property
// of the formal specification (Appendix B.1): no two concurrently
// executing tasks may access a common data object with at least one write.
// It wraps a kernel and tracks, per data object, who is inside a task body
// right now — independently of the engines' own synchronization state, so
// a protocol bug shows up as a detected conflict rather than silent
// corruption. Tasks with commutative Reduction accesses are treated as
// writers (their bodies are engine-serialized; overlap is a bug).
//
// Overhead is one atomic RMW per access on entry and exit; use it in
// debugging and CI runs, not in overhead measurements.
type RaceDetector struct {
	// state[d]: 0 free, -1 writer inside, n>0 readers inside.
	state []atomic.Int32

	mu         sync.Mutex
	violations []string // first maxViolations, for the reports
	total      int      // every violation, including unrecorded ones
}

// maxViolations caps the stored descriptions; the total count keeps
// counting past it.
const maxViolations = 16

// NewRaceDetector returns a detector for numData data objects.
func NewRaceDetector(numData int) *RaceDetector {
	return &RaceDetector{state: make([]atomic.Int32, numData)}
}

// Instrument wraps k with conflict tracking.
func (r *RaceDetector) Instrument(k stf.Kernel) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		for _, a := range t.Accesses {
			r.enter(t, a)
		}
		k(t, w)
		for _, a := range t.Accesses {
			r.exit(a)
		}
	}
}

func (r *RaceDetector) enter(t *stf.Task, a stf.Access) {
	st := &r.state[a.Data]
	if a.Mode.Writes() || a.Mode.Commutes() {
		if !st.CompareAndSwap(0, -1) {
			r.report(fmt.Sprintf("task %d writes data %d while it is in use (state %d)", t.ID, a.Data, st.Load()))
		}
		return
	}
	for {
		v := st.Load()
		if v < 0 {
			r.report(fmt.Sprintf("task %d reads data %d while a writer is inside", t.ID, a.Data))
			return
		}
		if st.CompareAndSwap(v, v+1) {
			return
		}
	}
}

func (r *RaceDetector) exit(a stf.Access) {
	st := &r.state[a.Data]
	if a.Mode.Writes() || a.Mode.Commutes() {
		st.CompareAndSwap(-1, 0)
		return
	}
	for {
		v := st.Load()
		if v <= 0 {
			return // prior violation already reported
		}
		if st.CompareAndSwap(v, v-1) {
			return
		}
	}
}

func (r *RaceDetector) report(msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.violations) < maxViolations {
		r.violations = append(r.violations, msg)
	}
}

// Err returns an error describing the first detected conflicts, or nil.
// The count is the true total, which can exceed the number of recorded
// descriptions.
func (r *RaceDetector) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return nil
	}
	return fmt.Errorf("trace: %d data-race violations (%d recorded), first: %s",
		r.total, len(r.violations), r.violations[0])
}

// Total returns the number of violations detected, including those beyond
// the recording cap.
func (r *RaceDetector) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Violations returns the recorded conflict descriptions.
func (r *RaceDetector) Violations() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.violations...)
}
