package trace

import (
	"fmt"
	"io"
)

// WriteMetrics writes a Progress snapshot in the Prometheus text
// exposition format (one scrape's worth of samples; pair it with an HTTP
// handler that snapshots the engine per request). Counters reset when a
// new run starts: each run publishes a fresh table, so a scraper sees a
// per-run progression, not a process-lifetime total.
//
// The wait histogram is emitted in cumulative Prometheus convention
// (bucket le="0.001" counts all waits at most 1ms). No _sum series is
// emitted: the engines bucket wait durations without totalling them —
// one atomic increment per wait keeps the always-on cost flat.
func WriteMetrics(w io.Writer, p Progress) error {
	running := 0
	if p.Running {
		running = 1
	}
	ew := &errWriter{w: w}
	ew.printf("# HELP rio_run_running Whether a run is currently in flight.\n")
	ew.printf("# TYPE rio_run_running gauge\n")
	ew.printf("rio_run_running %d\n", running)

	ew.printf("# HELP rio_tasks_executed_total Tasks executed so far, per worker.\n")
	ew.printf("# TYPE rio_tasks_executed_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_tasks_executed_total{worker=\"%d\"} %d\n", i, p.Workers[i].Executed)
	}
	ew.printf("# HELP rio_tasks_declared_total Declare-only task visits so far, per worker.\n")
	ew.printf("# TYPE rio_tasks_declared_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_tasks_declared_total{worker=\"%d\"} %d\n", i, p.Workers[i].Declared)
	}
	ew.printf("# HELP rio_tasks_claimed_total Dynamically claimed executions so far, per worker.\n")
	ew.printf("# TYPE rio_tasks_claimed_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_tasks_claimed_total{worker=\"%d\"} %d\n", i, p.Workers[i].Claimed)
	}
	ew.printf("# HELP rio_tasks_retried_total Rolled-back-and-retried task attempts so far, per worker.\n")
	ew.printf("# TYPE rio_tasks_retried_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_tasks_retried_total{worker=\"%d\"} %d\n", i, p.Workers[i].Retried)
	}
	ew.printf("# HELP rio_tasks_skipped_total Resume-skipped completed tasks so far, per worker.\n")
	ew.printf("# TYPE rio_tasks_skipped_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_tasks_skipped_total{worker=\"%d\"} %d\n", i, p.Workers[i].Skipped)
	}
	ew.printf("# HELP rio_tasks_stolen_total Stolen task executions so far, per worker (thief side).\n")
	ew.printf("# TYPE rio_tasks_stolen_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_tasks_stolen_total{worker=\"%d\"} %d\n", i, p.Workers[i].Stolen)
	}
	ew.printf("# HELP rio_steal_failed_total Steal attempts that lost the claim race so far, per worker.\n")
	ew.printf("# TYPE rio_steal_failed_total counter\n")
	for i := range p.Workers {
		ew.printf("rio_steal_failed_total{worker=\"%d\"} %d\n", i, p.Workers[i].StealFailed)
	}
	ew.printf("# HELP rio_worker_current_task Task ID the worker is executing, -1 when idle.\n")
	ew.printf("# TYPE rio_worker_current_task gauge\n")
	for i := range p.Workers {
		ew.printf("rio_worker_current_task{worker=\"%d\"} %d\n", i, int64(p.Workers[i].Current))
	}
	ew.printf("# HELP rio_wait_duration_seconds Completed dependency-wait durations, per worker.\n")
	ew.printf("# TYPE rio_wait_duration_seconds histogram\n")
	for i := range p.Workers {
		var cum int64
		for b, n := range p.Workers[i].WaitHist {
			cum += n
			if b < len(WaitBucketBounds) {
				ew.printf("rio_wait_duration_seconds_bucket{worker=\"%d\",le=\"%g\"} %d\n",
					i, WaitBucketBounds[b].Seconds(), cum)
			} else {
				ew.printf("rio_wait_duration_seconds_bucket{worker=\"%d\",le=\"+Inf\"} %d\n", i, cum)
			}
		}
		ew.printf("rio_wait_duration_seconds_count{worker=\"%d\"} %d\n", i, cum)
	}
	return ew.err
}

// errWriter latches the first write error so the exposition code above
// stays a flat list of printf lines.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
