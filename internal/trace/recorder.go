package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rio/internal/stf"
)

// Recorder collects per-task execution spans. The paper (§5.1) notes that
// dumping full traces at fine granularity perturbs the measurement — the
// reason its evaluation relies on the aggregate time decomposition
// instead. The Recorder exists for the *analysis* use case: inspecting a
// schedule on a moderate workload (Gantt timeline, per-kernel breakdown,
// critical-path utilization), with its overhead measurable via the
// BenchmarkTraceOverhead target.
//
// Spans are appended to per-worker lanes; each lane is only touched by its
// worker, so recording is synchronization-free (two time stamps and an
// append per task).
type Recorder struct {
	start time.Time
	lanes [][]Span
}

// Span is one recorded task execution.
type Span struct {
	// Task is the task's ID, Kernel its kernel selector.
	Task   stf.TaskID
	Kernel int
	// Start and End are offsets from the recorder's epoch.
	Start, End time.Duration
	// Owner is the worker the static mapping assigned the task to, and
	// Stolen marks a span executed by a different worker (a work-stealing
	// thief under Options.Steal). Both are filled by InstrumentOwned only;
	// plain Instrument has no mapping to compare against.
	Owner  stf.WorkerID
	Stolen bool
}

// NewRecorder returns a recorder with one lane per worker plus a dedicated
// master lane (for spans recorded under a negative WorkerID — the control
// thread of the sequential and centralized engines). The epoch is the
// moment of the call.
func NewRecorder(workers int) *Recorder {
	return &Recorder{start: time.Now(), lanes: make([][]Span, workers+1)}
}

// lane maps a WorkerID to its lane index: workers keep their own index,
// every negative ID (the master) resolves to the dedicated last lane —
// master spans must not pollute worker 0's timeline.
func (r *Recorder) lane(w stf.WorkerID) int {
	if w < 0 {
		return len(r.lanes) - 1
	}
	return int(w)
}

// MasterSpans returns the spans recorded under negative worker IDs.
func (r *Recorder) MasterSpans() []Span { return r.lanes[len(r.lanes)-1] }

// Reset clears all lanes and restarts the epoch.
func (r *Recorder) Reset() {
	r.start = time.Now()
	for w := range r.lanes {
		r.lanes[w] = r.lanes[w][:0]
	}
}

// Instrument wraps k so every execution is recorded. Workers with negative
// IDs (a master executing inline, e.g. the sequential engine) record into
// the dedicated master lane, not worker 0's.
func (r *Recorder) Instrument(k stf.Kernel) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		lane := r.lane(w)
		s := time.Since(r.start)
		k(t, w)
		r.lanes[lane] = append(r.lanes[lane], Span{
			Task:   t.ID,
			Kernel: t.Kernel,
			Start:  s,
			End:    time.Since(r.start),
		})
	}
}

// InstrumentOwned is Instrument with the static mapping attached: each
// span records the task's owning worker, and spans executing on another
// worker are marked Stolen — the Chrome export then draws them in the
// thief's lane with a hand-off arrow from the owner. Tasks without a
// static owner (stf.SharedWorker under a partial mapping) are dynamically
// claimed, not stolen.
func (r *Recorder) InstrumentOwned(k stf.Kernel, owner stf.Mapping) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		lane := r.lane(w)
		o := owner(t.ID)
		s := time.Since(r.start)
		k(t, w)
		r.lanes[lane] = append(r.lanes[lane], Span{
			Task:   t.ID,
			Kernel: t.Kernel,
			Start:  s,
			End:    time.Since(r.start),
			Owner:  o,
			Stolen: w >= 0 && o >= 0 && o != w,
		})
	}
}

// Record appends a span directly (for closure tasks instrumented by hand).
func (r *Recorder) Record(w stf.WorkerID, s Span) {
	lane := r.lane(w)
	r.lanes[lane] = append(r.lanes[lane], s)
}

// Spans returns worker w's recorded spans in execution order.
func (r *Recorder) Spans(w int) []Span { return r.lanes[w] }

// Count returns the total number of recorded spans.
func (r *Recorder) Count() int {
	n := 0
	for _, l := range r.lanes {
		n += len(l)
	}
	return n
}

// Window returns the earliest start and latest end across all lanes.
func (r *Recorder) Window() (time.Duration, time.Duration) {
	first, last := time.Duration(-1), time.Duration(0)
	for _, lane := range r.lanes {
		for _, s := range lane {
			if first < 0 || s.Start < first {
				first = s.Start
			}
			if s.End > last {
				last = s.End
			}
		}
	}
	if first < 0 {
		first = 0
	}
	return first, last
}

// KernelStats aggregates span durations per kernel selector.
func (r *Recorder) KernelStats() map[int]KernelStat {
	out := map[int]KernelStat{}
	for _, lane := range r.lanes {
		for _, s := range lane {
			st := out[s.Kernel]
			st.Count++
			st.Total += s.End - s.Start
			if d := s.End - s.Start; d > st.Max {
				st.Max = d
			}
			out[s.Kernel] = st
		}
	}
	return out
}

// KernelStat is the per-kernel aggregate.
type KernelStat struct {
	// Count is the number of executions, Total their summed duration,
	// Max the longest single execution.
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average execution time.
func (k KernelStat) Mean() time.Duration {
	if k.Count == 0 {
		return 0
	}
	return k.Total / time.Duration(k.Count)
}

// Gantt renders an ASCII timeline: one row per worker, time bucketed into
// width columns; a bucket shows '#' when the worker spent more than half
// of it inside tasks, '+' for partially busy, '.' for idle.
func (r *Recorder) Gantt(w io.Writer, width int) error {
	if width < 1 {
		width = 80
	}
	first, last := r.Window()
	span := last - first
	if span <= 0 {
		_, err := fmt.Fprintln(w, "(no spans recorded)")
		return err
	}
	bucket := span / time.Duration(width)
	if bucket <= 0 {
		bucket = 1
	}
	for lane, spans := range r.lanes {
		if lane == len(r.lanes)-1 && len(spans) == 0 {
			continue // master lane: only shown when something ran on it
		}
		busy := make([]time.Duration, width)
		for _, s := range spans {
			for b := 0; b < width; b++ {
				bs := first + time.Duration(b)*bucket
				be := bs + bucket
				lo, hi := maxDur(s.Start, bs), minDur(s.End, be)
				if hi > lo {
					busy[b] += hi - lo
				}
			}
		}
		var row strings.Builder
		for _, d := range busy {
			switch {
			case d > bucket/2:
				row.WriteByte('#')
			case d > 0:
				row.WriteByte('+')
			default:
				row.WriteByte('.')
			}
		}
		label := fmt.Sprintf("w%-3d", lane)
		if lane == len(r.lanes)-1 {
			label = "m   " // the master lane
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, row.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      0%*s\n", width, last.Round(time.Microsecond))
	return err
}

// CriticalPath computes, from the recorded durations and the graph's
// dependencies, the length of the longest dependency chain (a lower bound
// on any schedule's makespan with these task durations) and the total work.
// The ratio work / (p · critical-path) bounds the achievable pipelining
// efficiency of the task graph itself, independent of any runtime.
func (r *Recorder) CriticalPath(g *stf.Graph) (critical, work time.Duration) {
	durs := make([]time.Duration, len(g.Tasks))
	for _, lane := range r.lanes {
		for _, s := range lane {
			if int(s.Task) < len(durs) {
				durs[s.Task] = s.End - s.Start
			}
		}
	}
	deps := g.Dependencies()
	finish := make([]time.Duration, len(g.Tasks))
	for id := range g.Tasks {
		var ready time.Duration
		for _, d := range deps[id] {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		finish[id] = ready + durs[id]
		if finish[id] > critical {
			critical = finish[id]
		}
		work += durs[id]
	}
	return critical, work
}

// OrderedSpans returns all spans sorted by start time (for exporting).
func (r *Recorder) OrderedSpans() []Span {
	var all []Span
	for _, lane := range r.lanes {
		all = append(all, lane...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
