// Package trace implements the efficiency-decomposition methodology of the
// paper's §2.3: the cumulative execution time τ_p = p·t_p of a parallel run
// is split into time spent executing tasks (τ_{p,t}), time spent idle
// waiting for dependencies (τ_{p,i}) and time spent inside the runtime
// managing tasks (τ_{p,r}), from which the parallel efficiency factors
//
//	e = e_g · e_l · e_p · e_r
//
// are computed (granularity, locality, pipelining and runtime efficiency).
package trace

import (
	"fmt"
	"time"
)

// WorkerStats accumulates the per-worker time decomposition. Engines record
// task and idle time inline; runtime time is the residual of the worker's
// wall-clock activity.
type WorkerStats struct {
	// Task is the cumulative time spent executing task bodies.
	Task time.Duration
	// Idle is the cumulative time spent blocked on dependency waits or
	// empty queues.
	Idle time.Duration
	// Runtime is the cumulative time spent in runtime management: task
	// flow unrolling, dependency bookkeeping, scheduling, dispatch. It is
	// computed as Wall - Task - Idle.
	Runtime time.Duration
	// Wall is the total time this worker was active (from engine start to
	// its own completion of the task flow).
	Wall time.Duration
	// Executed counts tasks this worker ran.
	Executed int64
	// Declared counts tasks this worker skipped over (decentralized
	// engine: tasks mapped to other workers, for which only the local
	// declare_* bookkeeping ran).
	Declared int64
	// Claimed counts executed tasks that had no static owner and were
	// won dynamically (partial mappings); Claimed <= Executed.
	Claimed int64
	// Retried counts failed task attempts that were rolled back and
	// re-executed under a retry policy (fault tolerance); each retried
	// attempt counts once, so a task succeeding on its third attempt
	// contributes 2.
	Retried int64
	// Skipped counts tasks a Resume checkpoint marked completed, charged
	// to the worker that would have executed them.
	Skipped int64
	// Stolen counts executed tasks this worker took from another worker's
	// static assignment under a steal policy; Stolen <= Executed.
	Stolen int64
	// StealFailed counts steal attempts that proved a task ready but lost
	// the claim race at the last moment (to the owner or another thief).
	StealFailed int64
}

// Stats aggregates a run: one entry per worker plus the run's wall time.
type Stats struct {
	// Workers holds per-worker decompositions. For the centralized engine
	// index 0 is the master thread (which executes no tasks).
	Workers []WorkerStats
	// Wall is the end-to-end run time t_p.
	Wall time.Duration
	// Accounted reports whether fine-grained time accounting was enabled;
	// when false only Wall and the task counters are meaningful.
	Accounted bool
}

// NumWorkers returns p, the number of threads participating in the run.
func (s *Stats) NumWorkers() int { return len(s.Workers) }

// Cumulative returns the three cumulative components (τ_{p,t}, τ_{p,i},
// τ_{p,r}). The runtime component is normalized so the three sum to
// τ_p = p·Wall: per-worker residuals plus the tail time between a worker's
// completion and the end of the run are counted as runtime time (a worker
// that finished early and is merely waiting for the others contributes idle
// time instead, matching the paper's accounting of dependency waits).
func (s *Stats) Cumulative() (task, idle, runtime time.Duration) {
	for _, w := range s.Workers {
		task += w.Task
		idle += w.Idle
		runtime += w.Runtime
		if tail := s.Wall - w.Wall; tail > 0 {
			idle += tail
		}
	}
	return task, idle, runtime
}

// TotalCumulative returns τ_p = p · t_p.
func (s *Stats) TotalCumulative() time.Duration {
	return time.Duration(len(s.Workers)) * s.Wall
}

// Executed returns the total number of tasks executed across workers.
func (s *Stats) Executed() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Executed
	}
	return n
}

// Declared returns the total number of task declarations (decentralized
// skip-over bookkeeping operations) across workers.
func (s *Stats) Declared() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Declared
	}
	return n
}

// Claimed returns the total number of dynamically claimed task executions
// (partial mappings) across workers.
func (s *Stats) Claimed() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Claimed
	}
	return n
}

// Retried returns the total number of rolled-back-and-retried task
// attempts across workers.
func (s *Stats) Retried() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Retried
	}
	return n
}

// Skipped returns the total number of resume-skipped tasks across workers.
func (s *Stats) Skipped() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Skipped
	}
	return n
}

// Stolen returns the total number of stolen task executions across workers.
func (s *Stats) Stolen() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.Stolen
	}
	return n
}

// StealFailed returns the total number of lost steal claim races across
// workers.
func (s *Stats) StealFailed() int64 {
	var n int64
	for _, w := range s.Workers {
		n += w.StealFailed
	}
	return n
}

// Efficiency is the decomposition e = e_g · e_l · e_p · e_r of §2.3.
type Efficiency struct {
	// Granularity is e_g(g) = t / t(g): how much the kernel itself slows
	// down when the problem is split at granularity g.
	Granularity float64
	// Locality is e_l(g) = t(g) / τ_{p,t}(g): cache effects of running the
	// same tasks on p threads (can exceed 1 when parallel caches help).
	Locality float64
	// Pipelining is e_p(g) = τ_{p,t} / (τ_{p,t} + τ_{p,i}): the runtime's
	// ability to keep workers busy.
	Pipelining float64
	// Runtime is e_r(g) = (τ_{p,t} + τ_{p,i}) / τ_p: the share of
	// cumulative time not spent on task management.
	Runtime float64
	// Parallel is e(g) = t / (p · t_p), the product of the four factors.
	Parallel float64
}

// Decompose computes the efficiency decomposition for a run.
//
//	tBest — execution time t of the fastest sequential algorithm;
//	tSeq  — execution time t(g) of the sequential algorithm split into
//	        tasks of the measured granularity;
//	s     — the parallel run's statistics.
//
// For the paper's synthetic counter kernel tBest == tSeq (e_g = 1) and
// τ_{p,t} == t(g) by construction (e_l = 1), leaving only the two factors
// of interest, e_p and e_r (§5.1).
func Decompose(tBest, tSeq time.Duration, s *Stats) Efficiency {
	task, idle, _ := s.Cumulative()
	total := s.TotalCumulative()
	e := Efficiency{
		Granularity: ratio(tBest, tSeq),
		Locality:    ratio(tSeq, task),
		Pipelining:  ratio(task, task+idle),
		Runtime:     ratio(task+idle, total),
	}
	e.Parallel = ratio(tBest, total)
	return e
}

func ratio(num, den time.Duration) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders the decomposition compactly.
func (e Efficiency) String() string {
	return fmt.Sprintf("e=%.3f (e_g=%.3f e_l=%.3f e_p=%.3f e_r=%.3f)",
		e.Parallel, e.Granularity, e.Locality, e.Pipelining, e.Runtime)
}

// Product returns e_g·e_l·e_p·e_r; up to floating-point rounding it equals
// Parallel (the identity the decomposition of §2.3 is built on).
func (e Efficiency) Product() float64 {
	return e.Granularity * e.Locality * e.Pipelining * e.Runtime
}
