package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rio/internal/centralized"
	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

func TestWriteChromeTrace(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Record(0, trace.Span{Task: 0, Kernel: 1, Start: 0, End: 10 * time.Microsecond})
	rec.Record(1, trace.Span{Task: 1, Kernel: 2, Start: 5 * time.Microsecond, End: 8 * time.Microsecond})
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("phase = %v", ev["ph"])
		}
	}
	if !strings.Contains(buf.String(), "kernel 1") {
		t.Error("default kernel naming missing")
	}

	buf.Reset()
	if err := rec.WriteChromeTrace(&buf, func(k int) string { return "custom" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "custom") {
		t.Error("custom kernel naming ignored")
	}
}

func TestRaceDetectorCleanOnEngines(t *testing.T) {
	g := graphs.RandomDeps(400, 24, 2, 1, 9)
	for _, mk := range []func() (interface {
		Run(int, stf.Program) error
	}, error){
		func() (interface {
			Run(int, stf.Program) error
		}, error) {
			return core.New(core.Options{Workers: 4, Mapping: sched.Cyclic(4)})
		},
		func() (interface {
			Run(int, stf.Program) error
		}, error) {
			return centralized.New(centralized.Options{Workers: 4})
		},
	} {
		e, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		det := trace.NewRaceDetector(g.NumData)
		cells := kernels.NewCells(4)
		kern := det.Instrument(graphs.CounterKernel(cells, 500))
		if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
			t.Fatal(err)
		}
		if err := det.Err(); err != nil {
			t.Errorf("false positive: %v", err)
		}
	}
}

func TestRaceDetectorCleanWithReductions(t *testing.T) {
	g := stf.NewGraph("reds", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	for i := 0; i < 64; i++ {
		g.Add(0, i, 0, 0, stf.Red(0))
	}
	g.Add(0, 0, 0, 0, stf.R(0))
	e, err := core.New(core.Options{Workers: 4, Mapping: sched.Cyclic(4)})
	if err != nil {
		t.Fatal(err)
	}
	det := trace.NewRaceDetector(1)
	kern := det.Instrument(func(*stf.Task, stf.WorkerID) {})
	if err := e.Run(1, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	if err := det.Err(); err != nil {
		t.Errorf("reduction serialization violated: %v", err)
	}
}

// Negative control: deliberately run conflicting kernels concurrently —
// the detector must notice.
func TestRaceDetectorCatchesConflicts(t *testing.T) {
	det := trace.NewRaceDetector(1)
	kern := det.Instrument(func(*stf.Task, stf.WorkerID) {
		time.Sleep(2 * time.Millisecond) // keep both bodies inside
	})
	w := stf.Task{ID: 0, Accesses: []stf.Access{stf.W(0)}}
	r := stf.Task{ID: 1, Accesses: []stf.Access{stf.R(0)}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); kern(&w, 0) }()
	go func() { defer wg.Done(); kern(&r, 1) }()
	wg.Wait()
	if det.Err() == nil {
		t.Error("concurrent read/write on one data not detected")
	}
	if len(det.Violations()) == 0 {
		t.Error("violations list empty")
	}
}

func TestRaceDetectorAllowsConcurrentReaders(t *testing.T) {
	det := trace.NewRaceDetector(1)
	kern := det.Instrument(func(*stf.Task, stf.WorkerID) {
		time.Sleep(time.Millisecond)
	})
	a := stf.Task{ID: 0, Accesses: []stf.Access{stf.R(0)}}
	b := stf.Task{ID: 1, Accesses: []stf.Access{stf.R(0)}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); kern(&a, 0) }()
	go func() { defer wg.Done(); kern(&b, 1) }()
	wg.Wait()
	if err := det.Err(); err != nil {
		t.Errorf("readers flagged: %v", err)
	}
}
