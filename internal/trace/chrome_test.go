package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rio/internal/centralized"
	"rio/internal/core"
	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sched"
	"rio/internal/stf"
	"rio/internal/trace"
)

func TestWriteChromeTrace(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Record(0, trace.Span{Task: 0, Kernel: 1, Start: 0, End: 10 * time.Microsecond})
	rec.Record(1, trace.Span{Task: 1, Kernel: 2, Start: 5 * time.Microsecond, End: 8 * time.Microsecond})
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("phase = %v", ev["ph"])
		}
	}
	if !strings.Contains(buf.String(), "kernel 1") {
		t.Error("default kernel naming missing")
	}

	buf.Reset()
	if err := rec.WriteChromeTrace(&buf, func(k int) string { return "custom" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "custom") {
		t.Error("custom kernel naming ignored")
	}
}

func TestRaceDetectorCleanOnEngines(t *testing.T) {
	g := graphs.RandomDeps(400, 24, 2, 1, 9)
	for _, mk := range []func() (interface {
		Run(int, stf.Program) error
	}, error){
		func() (interface {
			Run(int, stf.Program) error
		}, error) {
			return core.New(core.Options{Workers: 4, Mapping: sched.Cyclic(4)})
		},
		func() (interface {
			Run(int, stf.Program) error
		}, error) {
			return centralized.New(centralized.Options{Workers: 4})
		},
	} {
		e, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		det := trace.NewRaceDetector(g.NumData)
		cells := kernels.NewCells(4)
		kern := det.Instrument(graphs.CounterKernel(cells, 500))
		if err := e.Run(g.NumData, stf.Replay(g, kern)); err != nil {
			t.Fatal(err)
		}
		if err := det.Err(); err != nil {
			t.Errorf("false positive: %v", err)
		}
	}
}

func TestRaceDetectorCleanWithReductions(t *testing.T) {
	g := stf.NewGraph("reds", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	for i := 0; i < 64; i++ {
		g.Add(0, i, 0, 0, stf.Red(0))
	}
	g.Add(0, 0, 0, 0, stf.R(0))
	e, err := core.New(core.Options{Workers: 4, Mapping: sched.Cyclic(4)})
	if err != nil {
		t.Fatal(err)
	}
	det := trace.NewRaceDetector(1)
	kern := det.Instrument(func(*stf.Task, stf.WorkerID) {})
	if err := e.Run(1, stf.Replay(g, kern)); err != nil {
		t.Fatal(err)
	}
	if err := det.Err(); err != nil {
		t.Errorf("reduction serialization violated: %v", err)
	}
}

// Negative control: deliberately run conflicting kernels concurrently —
// the detector must notice.
func TestRaceDetectorCatchesConflicts(t *testing.T) {
	det := trace.NewRaceDetector(1)
	kern := det.Instrument(func(*stf.Task, stf.WorkerID) {
		time.Sleep(2 * time.Millisecond) // keep both bodies inside
	})
	w := stf.Task{ID: 0, Accesses: []stf.Access{stf.W(0)}}
	r := stf.Task{ID: 1, Accesses: []stf.Access{stf.R(0)}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); kern(&w, 0) }()
	go func() { defer wg.Done(); kern(&r, 1) }()
	wg.Wait()
	if det.Err() == nil {
		t.Error("concurrent read/write on one data not detected")
	}
	if len(det.Violations()) == 0 {
		t.Error("violations list empty")
	}
}

func TestRaceDetectorAllowsConcurrentReaders(t *testing.T) {
	det := trace.NewRaceDetector(1)
	kern := det.Instrument(func(*stf.Task, stf.WorkerID) {
		time.Sleep(time.Millisecond)
	})
	a := stf.Task{ID: 0, Accesses: []stf.Access{stf.R(0)}}
	b := stf.Task{ID: 1, Accesses: []stf.Access{stf.R(0)}}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); kern(&a, 0) }()
	go func() { defer wg.Done(); kern(&b, 1) }()
	wg.Wait()
	if err := det.Err(); err != nil {
		t.Errorf("readers flagged: %v", err)
	}
}

// Structural validation of the graph-aware export: a three-task chain
// (0 →(data) 1 →(data) 2) with hand-placed spans must produce thread
// metadata, task slices, paired flow arrows along both dependency edges,
// and ready/executed counter rows with the right final values.
func TestWriteChromeTraceGraph(t *testing.T) {
	g := stf.NewGraph("chain", 2)
	g.Add(0, 0, 0, 0, stf.W(0))           // task 0
	g.Add(0, 0, 0, 0, stf.R(0), stf.W(1)) // task 1 depends on 0
	g.Add(0, 0, 0, 0, stf.R(1))           // task 2 depends on 1

	rec := trace.NewRecorder(2)
	rec.Record(0, trace.Span{Task: 0, Kernel: 0, Start: 0, End: 10 * time.Microsecond})
	rec.Record(1, trace.Span{Task: 1, Kernel: 0, Start: 12 * time.Microsecond, End: 20 * time.Microsecond})
	rec.Record(0, trace.Span{Task: 2, Kernel: 0, Start: 22 * time.Microsecond, End: 30 * time.Microsecond})

	var buf bytes.Buffer
	if err := rec.WriteChromeTraceGraph(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}

	byPhase := map[string][]map[string]any{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		byPhase[ph] = append(byPhase[ph], ev)
	}
	if got := len(byPhase["X"]); got != 3 {
		t.Errorf("task slices = %d, want 3", got)
	}
	if got := len(byPhase["M"]); got != 2 {
		t.Errorf("thread metadata events = %d, want 2 (two active lanes)", got)
	}
	// Two dependency edges, each one s+f pair with matching IDs.
	if got := len(byPhase["s"]); got != 2 {
		t.Errorf("flow starts = %d, want 2", got)
	}
	if got := len(byPhase["f"]); got != 2 {
		t.Errorf("flow finishes = %d, want 2", got)
	}
	starts := map[any]bool{}
	for _, ev := range byPhase["s"] {
		starts[ev["id"]] = true
	}
	for _, ev := range byPhase["f"] {
		if !starts[ev["id"]] {
			t.Errorf("flow finish id %v has no matching start", ev["id"])
		}
		if ev["bp"] != "e" {
			t.Errorf("flow finish bp = %v, want \"e\"", ev["bp"])
		}
	}
	// Counter rows: both series present; the last "executed" sample says 3,
	// the last "ready" sample says 0 (everything ran).
	lastVal := map[string]float64{}
	for _, ev := range byPhase["C"] {
		name, _ := ev["name"].(string)
		args, _ := ev["args"].(map[string]any)
		v, _ := args["tasks"].(float64)
		lastVal[name] = v
	}
	if _, ok := lastVal["ready"]; !ok {
		t.Fatal("no \"ready\" counter row")
	}
	if v := lastVal["executed"]; v != 3 {
		t.Errorf("final executed counter = %v, want 3", v)
	}
	if v := lastVal["ready"]; v != 0 {
		t.Errorf("final ready counter = %v, want 0", v)
	}
}

// A stolen span (recorded by InstrumentOwned on a worker other than the
// task's owner) must appear in the thief's lane carrying a stolen_from
// arg, plus one "steal" flow-arrow pair from the owner's lane to the
// thief's slice.
func TestWriteChromeTraceGraphSteal(t *testing.T) {
	g := stf.NewGraph("steal", 2)
	g.Add(0, 0, 0, 0, stf.W(0)) // task 0, owner 0, runs on owner
	g.Add(0, 0, 0, 0, stf.W(1)) // task 1, owner 0, stolen by worker 1

	rec := trace.NewRecorder(2)
	kern := rec.InstrumentOwned(func(*stf.Task, stf.WorkerID) {}, sched.Single(0))
	kern(&g.Tasks[0], 0)
	kern(&g.Tasks[1], 1) // thief executes owner 0's task

	if spans := rec.Spans(1); len(spans) != 1 || !spans[0].Stolen || spans[0].Owner != 0 {
		t.Fatalf("thief lane spans = %+v, want one stolen span owned by 0", spans)
	}
	if spans := rec.Spans(0); len(spans) != 1 || spans[0].Stolen {
		t.Fatalf("owner lane spans = %+v, want one unstolen span", spans)
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTraceGraph(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var stealStarts, stealEnds int
	var stolenFrom any
	for _, ev := range events {
		if ev["cat"] == "steal" && ev["ph"] == "s" {
			if tid, _ := ev["tid"].(float64); tid != 0 {
				t.Errorf("steal arrow starts in lane %v, want the owner's lane 0", ev["tid"])
			}
			stealStarts++
		}
		if ev["cat"] == "steal" && ev["ph"] == "f" {
			if tid, _ := ev["tid"].(float64); tid != 1 {
				t.Errorf("steal arrow ends in lane %v, want the thief's lane 1", ev["tid"])
			}
			stealEnds++
		}
		if ev["ph"] == "X" {
			if args, _ := ev["args"].(map[string]any); args["task"] == float64(1) {
				stolenFrom = args["stolen_from"]
			}
		}
	}
	if stealStarts != 1 || stealEnds != 1 {
		t.Errorf("steal arrow events = %d starts, %d ends; want 1 and 1", stealStarts, stealEnds)
	}
	if stolenFrom != float64(0) {
		t.Errorf("stolen slice stolen_from = %v, want 0", stolenFrom)
	}
}

// The master lane must keep master spans out of worker 0's lane and get
// its own labeled row.
func TestRecorderMasterLane(t *testing.T) {
	rec := trace.NewRecorder(2)
	rec.Record(stf.MasterWorker, trace.Span{Task: 0, Kernel: 0, Start: 0, End: time.Microsecond})
	rec.Record(0, trace.Span{Task: 1, Kernel: 0, Start: 0, End: time.Microsecond})
	if n := len(rec.Spans(0)); n != 1 {
		t.Errorf("worker 0 lane has %d spans, want 1 (master span folded in?)", n)
	}
	if n := len(rec.MasterSpans()); n != 1 {
		t.Errorf("master lane has %d spans, want 1", n)
	}
	var buf bytes.Buffer
	if err := rec.Gantt(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "m    |") {
		t.Errorf("Gantt output missing the master row:\n%s", buf.String())
	}
}
