package trace

import (
	"fmt"
	"strings"
	"testing"

	"rio/internal/stf"
)

// The detector stores at most maxViolations descriptions, but the error
// must report the true total — the cap is a memory bound, not a count
// bound.
func TestRaceDetectorCountsPastTheRecordingCap(t *testing.T) {
	r := NewRaceDetector(1)
	const n = maxViolations + 9
	for i := 0; i < n; i++ {
		r.report(fmt.Sprintf("violation %d", i))
	}
	if got := r.Total(); got != n {
		t.Fatalf("Total() = %d, want %d", got, n)
	}
	if got := len(r.Violations()); got != maxViolations {
		t.Fatalf("recorded %d descriptions, want cap %d", got, maxViolations)
	}
	err := r.Err()
	if err == nil {
		t.Fatal("Err() = nil after violations")
	}
	msg := err.Error()
	if !strings.Contains(msg, fmt.Sprintf("%d data-race violations", n)) {
		t.Fatalf("error does not carry the true total: %q", msg)
	}
	if !strings.Contains(msg, fmt.Sprintf("(%d recorded)", maxViolations)) {
		t.Fatalf("error does not state how many were recorded: %q", msg)
	}
	if !strings.Contains(msg, "violation 0") {
		t.Fatalf("error does not show the first violation: %q", msg)
	}
}

func TestRaceDetectorCleanRun(t *testing.T) {
	r := NewRaceDetector(2)
	k := r.Instrument(func(*stf.Task, stf.WorkerID) {})
	task := &stf.Task{ID: 0, Accesses: []stf.Access{stf.RW(0), stf.R(1)}}
	k(task, 0)
	k(task, 0)
	if err := r.Err(); err != nil {
		t.Fatalf("clean serialized run reported: %v", err)
	}
	if r.Total() != 0 {
		t.Fatalf("Total() = %d on a clean run", r.Total())
	}
}

// Entering a write access while another task holds the object must be
// detected and counted through the instrumented path, not just report().
func TestRaceDetectorDetectsOverlap(t *testing.T) {
	r := NewRaceDetector(1)
	t0 := &stf.Task{ID: 0, Accesses: []stf.Access{stf.W(0)}}
	t1 := &stf.Task{ID: 1, Accesses: []stf.Access{stf.W(0)}}
	r.enter(t0, t0.Accesses[0])
	r.enter(t1, t1.Accesses[0]) // overlapping writer: violation
	r.exit(t0.Accesses[0])
	if r.Total() != 1 {
		t.Fatalf("Total() = %d, want 1", r.Total())
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "1 data-race violations") {
		t.Fatalf("Err() = %v", err)
	}
}
