package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCumulativeSumsWorkers(t *testing.T) {
	s := &Stats{
		Workers: []WorkerStats{
			{Task: 10, Idle: 2, Runtime: 3, Wall: 15},
			{Task: 8, Idle: 4, Runtime: 3, Wall: 15},
		},
		Wall: 15,
	}
	task, idle, rt := s.Cumulative()
	if task != 18 || idle != 6 || rt != 6 {
		t.Errorf("Cumulative = %v %v %v, want 18 6 6", task, idle, rt)
	}
	if s.TotalCumulative() != 30 {
		t.Errorf("TotalCumulative = %v, want 30", s.TotalCumulative())
	}
}

func TestCumulativeAddsTailAsIdle(t *testing.T) {
	// A worker that finished at 10 while the run lasted 15 contributes 5
	// units of tail idle time.
	s := &Stats{
		Workers: []WorkerStats{{Task: 10, Wall: 10}},
		Wall:    15,
	}
	_, idle, _ := s.Cumulative()
	if idle != 5 {
		t.Errorf("tail idle = %v, want 5", idle)
	}
}

func TestCounters(t *testing.T) {
	s := &Stats{Workers: []WorkerStats{
		{Executed: 3, Declared: 7},
		{Executed: 4, Declared: 6},
	}}
	if s.Executed() != 7 {
		t.Errorf("Executed = %d", s.Executed())
	}
	if s.Declared() != 13 {
		t.Errorf("Declared = %d", s.Declared())
	}
	if s.NumWorkers() != 2 {
		t.Errorf("NumWorkers = %d", s.NumWorkers())
	}
}

func TestDecomposeSyntheticKernelCase(t *testing.T) {
	// The paper's synthetic setting: e_g = e_l = 1, so e = e_p · e_r.
	// Build a run where the numbers are exact: p=2, wall=10; worker time
	// fully accounted.
	s := &Stats{
		Workers: []WorkerStats{
			{Task: 6, Idle: 2, Runtime: 2, Wall: 10},
			{Task: 6, Idle: 2, Runtime: 2, Wall: 10},
		},
		Wall: 10,
	}
	tSeq := time.Duration(12) // t(g) = τ_{p,t}: e_l = 1
	e := Decompose(tSeq, tSeq, s)
	if e.Granularity != 1 {
		t.Errorf("e_g = %v, want 1", e.Granularity)
	}
	if e.Locality != 1 {
		t.Errorf("e_l = %v, want 1", e.Locality)
	}
	if want := 12.0 / 16.0; math.Abs(e.Pipelining-want) > 1e-12 {
		t.Errorf("e_p = %v, want %v", e.Pipelining, want)
	}
	if want := 16.0 / 20.0; math.Abs(e.Runtime-want) > 1e-12 {
		t.Errorf("e_r = %v, want %v", e.Runtime, want)
	}
	if want := 12.0 / 20.0; math.Abs(e.Parallel-want) > 1e-12 {
		t.Errorf("e = %v, want %v", e.Parallel, want)
	}
}

// The defining identity of §2.3: the product of the four factors equals the
// parallel efficiency, for any run whose components are fully accounted.
func TestDecomposePropertyProductIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(8)
		wall := time.Duration(1+rng.Intn(1_000_000)) * time.Nanosecond
		s := &Stats{Wall: wall, Workers: make([]WorkerStats, p)}
		for w := range s.Workers {
			task := time.Duration(rng.Int63n(int64(wall)))
			idle := time.Duration(rng.Int63n(int64(wall - task + 1)))
			s.Workers[w] = WorkerStats{Task: task, Idle: idle, Runtime: wall - task - idle, Wall: wall}
		}
		tBest := time.Duration(1 + rng.Int63n(int64(wall)))
		tSeq := time.Duration(1 + rng.Int63n(int64(wall)))
		e := Decompose(tBest, tSeq, s)
		task, _, _ := s.Cumulative()
		if task == 0 {
			return true // degenerate: factors are reported as 0
		}
		return math.Abs(e.Product()-e.Parallel) < 1e-9*math.Max(1, e.Parallel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeZeroSafe(t *testing.T) {
	e := Decompose(0, 0, &Stats{Workers: make([]WorkerStats, 2)})
	for _, v := range []float64{e.Granularity, e.Locality, e.Pipelining, e.Runtime, e.Parallel} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate decomposition produced %v", e)
		}
	}
}

func TestEfficiencyString(t *testing.T) {
	e := Efficiency{Parallel: 0.5, Granularity: 1, Locality: 1, Pipelining: 0.8, Runtime: 0.625}
	s := e.String()
	if s == "" || s[0] != 'e' {
		t.Errorf("String() = %q", s)
	}
}
