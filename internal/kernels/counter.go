// Package kernels provides the task bodies used by the workloads: the
// paper's synthetic counter kernel (§5.1), a blocked double-precision
// matrix-multiplication tile kernel (the MKL DGEMM substitute for Figures
// 2–4), and the tile kernels of LU and Cholesky factorizations used by the
// examples.
package kernels

import (
	"time"
	"unsafe"
)

// Spin is the paper's synthetic task kernel: a loop performing n stores to
// a counter cell. With this kernel the granularity efficiency e_g and the
// locality efficiency e_l are 1 by construction — incrementing one counter
// up to N takes as long as incrementing n counters up to N/n, and the cell
// lives in the worker's private memory — leaving only the pipelining and
// runtime efficiencies, the quantities the paper's evaluation isolates.
//
// The function is noinline and stores through a caller-provided pointer,
// which is what the paper's volatile qualifier achieves in C: the compiler
// must materialize every store.
//
//go:noinline
func Spin(cell *uint64, n uint64) {
	for i := uint64(0); i < n; i++ {
		*cell = i
	}
}

// Cells provides one padded counter cell per worker so that concurrent
// tasks never share a cache line.
type Cells struct {
	cells []paddedCell
}

// cacheLine is the coherence granularity the cells are padded to.
const cacheLine = 64

type paddedCell struct {
	v uint64
	_ [cacheLine - unsafe.Sizeof(uint64(0))]byte
}

// NewCells returns counter cells for p workers.
func NewCells(p int) *Cells { return &Cells{cells: make([]paddedCell, p)} }

// Cell returns worker w's counter cell.
func (c *Cells) Cell(w int) *uint64 { return &c.cells[w].v }

// Calibration relates the counter kernel's abstract task size (loop
// iterations, the paper's x-axis "task size [instructions]") to wall-clock
// time on this machine.
type Calibration struct {
	// NsPerOp is the measured duration of one loop iteration in
	// nanoseconds.
	NsPerOp float64
}

// Calibrate measures the counter kernel's per-iteration cost. The
// measurement loops until it has spent at least minSample wall time
// (rounds of 1e6 iterations), so short scheduler hiccups average out.
func Calibrate(minSample time.Duration) Calibration {
	var cell uint64
	const round = 1 << 20
	// Warm up.
	Spin(&cell, round)
	var ops uint64
	start := time.Now()
	var elapsed time.Duration
	for elapsed < minSample {
		Spin(&cell, round)
		ops += round
		elapsed = time.Since(start)
	}
	return Calibration{NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops)}
}

// TaskDuration returns the expected wall time of one task of the given size.
func (c Calibration) TaskDuration(size uint64) time.Duration {
	return time.Duration(c.NsPerOp * float64(size))
}
