package kernels

// GemmTile computes C += A·B on b×b row-major tiles. It is the pure-Go
// substitute for the Intel MKL DGEMM tile kernel used in the paper's
// Figures 2–4: like any cache-blocked GEMM, its efficiency degrades when
// tiles become too small to amortize loop overhead and cache reuse —
// exactly the granularity-efficiency effect (e_g) Figure 3 isolates.
//
// The loop nest is i-l-j with the innermost loop streaming over rows of B
// and C, which keeps all accesses unit-stride and lets the compiler keep
// the accumulator traffic in registers/cache lines.
func GemmTile(c, a, b []float64, n int) {
	_ = c[n*n-1]
	_ = a[n*n-1]
	_ = b[n*n-1]
	for i := 0; i < n; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*n : i*n+n]
		for l := 0; l < n; l++ {
			ail := ai[l]
			if ail == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			for j, blj := range bl {
				ci[j] += ail * blj
			}
		}
	}
}

// GemmSubTile computes C -= A·B on b×b tiles (the Schur-complement update
// of LU and Cholesky factorizations).
func GemmSubTile(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*n : i*n+n]
		for l := 0; l < n; l++ {
			ail := ai[l]
			if ail == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			for j, blj := range bl {
				ci[j] -= ail * blj
			}
		}
	}
}

// GemmSubTileNT computes C -= A·Bᵀ on b×b tiles (the Cholesky update form).
func GemmSubTileNT(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*n : i*n+n]
		for j := 0; j < n; j++ {
			bj := b[j*n : j*n+n]
			var s float64
			for l := 0; l < n; l++ {
				s += ai[l] * bj[l]
			}
			ci[j] -= s
		}
	}
}
