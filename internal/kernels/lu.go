package kernels

import "fmt"

// Tile kernels of the right-looking tiled LU factorization *without
// pivoting* — the dependency graph of the paper's Experiment 4 and of the
// formal-specification case study (Table 1). After the factorization, tile
// (k,k) holds both the unit-lower factor L (below the diagonal, implicit
// ones on it) and the upper factor U (diagonal and above).

// Getrf factors an n×n tile in place: A = L·U with L unit lower triangular.
// It returns an error if a zero (or subnormal-tiny) pivot is met, since no
// pivoting is performed.
func Getrf(a []float64, n int) error {
	for k := 0; k < n; k++ {
		p := a[k*n+k]
		if p == 0 {
			return fmt.Errorf("kernels: zero pivot at %d in unpivoted LU", k)
		}
		inv := 1 / p
		for i := k + 1; i < n; i++ {
			a[i*n+k] *= inv
			lik := a[i*n+k]
			ai := a[i*n : i*n+n]
			ak := a[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				ai[j] -= lik * ak[j]
			}
		}
	}
	return nil
}

// TrsmLowerLeft solves L·X = B in place (B ← L⁻¹·B), with L the implicit
// unit-lower factor stored in lu. This is the update of a row-panel tile
// A(k, j) after Getrf on A(k, k).
func TrsmLowerLeft(lu, b []float64, n int) {
	for i := 1; i < n; i++ {
		bi := b[i*n : i*n+n]
		for l := 0; l < i; l++ {
			lil := lu[i*n+l]
			if lil == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			for j := range bi {
				bi[j] -= lil * bl[j]
			}
		}
	}
}

// TrsmUpperRight solves X·U = B in place (B ← B·U⁻¹), with U the upper
// factor stored in lu. This is the update of a column-panel tile A(i, k)
// after Getrf on A(k, k).
func TrsmUpperRight(lu, b []float64, n int) {
	for j := 0; j < n; j++ {
		inv := 1 / lu[j*n+j]
		for i := 0; i < n; i++ {
			bi := b[i*n : i*n+n]
			s := bi[j]
			for l := 0; l < j; l++ {
				s -= bi[l] * lu[l*n+j]
			}
			bi[j] = s * inv
		}
	}
}

// LUReconstruct multiplies the packed L and U factors of a tiled LU result
// back into a dense matrix, for residual checks: returns L·U as a row-major
// dense n×n matrix, where m holds the packed factors.
func LUReconstruct(m *Tiled) []float64 {
	n := m.N
	l := make([]float64, n*n)
	u := make([]float64, n*n)
	for r := 0; r < n; r++ {
		l[r*n+r] = 1
		for c := 0; c < n; c++ {
			v := m.At(r, c)
			if c < r {
				l[r*n+c] = v
			} else {
				u[r*n+c] = v
			}
		}
	}
	out := make([]float64, n*n)
	MatMulDense(out, l, u, n)
	return out
}

// DiagDominant fills m with a deterministic diagonally dominant matrix
// (safe for unpivoted LU and for Cholesky after symmetrization), seeded by
// seed so tests are reproducible.
func DiagDominant(m *Tiled, seed uint64) {
	s := seed
	for r := 0; r < m.N; r++ {
		var row float64
		for c := 0; c < m.N; c++ {
			if c == r {
				continue
			}
			s = s*6364136223846793005 + 1442695040888963407
			v := float64(int64(s>>33)%1000)/1000.0 - 0.5
			m.Set(r, c, v)
			if v < 0 {
				row -= v
			} else {
				row += v
			}
		}
		m.Set(r, r, row+1)
	}
}
