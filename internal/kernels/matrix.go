package kernels

import "fmt"

// Tiled is a dense square matrix stored as a grid of contiguous square
// tiles, the storage layout tile-based linear-algebra task flows operate
// on. Tile (i, j) holds rows i·B..(i+1)·B and columns j·B..(j+1)·B, each
// tile in row-major order.
type Tiled struct {
	// N is the matrix dimension, B the tile dimension; B must divide N.
	N, B int
	// NT is the number of tile rows/columns (N / B).
	NT int
	// Tiles holds the NT×NT tiles in row-major tile order.
	Tiles [][]float64
}

// NewTiled allocates an n×n zero matrix with b×b tiles.
func NewTiled(n, b int) (*Tiled, error) {
	if n <= 0 || b <= 0 || n%b != 0 {
		return nil, fmt.Errorf("kernels: invalid tiling %d/%d", n, b)
	}
	nt := n / b
	m := &Tiled{N: n, B: b, NT: nt, Tiles: make([][]float64, nt*nt)}
	backing := make([]float64, n*n)
	for i := range m.Tiles {
		m.Tiles[i], backing = backing[:b*b:b*b], backing[b*b:]
	}
	return m, nil
}

// Tile returns tile (i, j).
func (m *Tiled) Tile(i, j int) []float64 { return m.Tiles[i*m.NT+j] }

// At returns element (r, c) in matrix coordinates.
func (m *Tiled) At(r, c int) float64 {
	return m.Tile(r/m.B, c/m.B)[(r%m.B)*m.B+(c%m.B)]
}

// Set assigns element (r, c) in matrix coordinates.
func (m *Tiled) Set(r, c int, v float64) {
	m.Tile(r/m.B, c/m.B)[(r%m.B)*m.B+(c%m.B)] = v
}

// FromDense fills m from a row-major n×n dense matrix.
func (m *Tiled) FromDense(a []float64) error {
	if len(a) != m.N*m.N {
		return fmt.Errorf("kernels: dense length %d, want %d", len(a), m.N*m.N)
	}
	for r := 0; r < m.N; r++ {
		for c := 0; c < m.N; c++ {
			m.Set(r, c, a[r*m.N+c])
		}
	}
	return nil
}

// ToDense returns m as a row-major dense matrix.
func (m *Tiled) ToDense() []float64 {
	a := make([]float64, m.N*m.N)
	for r := 0; r < m.N; r++ {
		for c := 0; c < m.N; c++ {
			a[r*m.N+c] = m.At(r, c)
		}
	}
	return a
}

// MatMulDense computes C = A·B for row-major n×n dense matrices (a simple
// reference used by tests and by the granularity-efficiency baseline).
func MatMulDense(c, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		ci := c[i*n : (i+1)*n]
		for k := range ci {
			ci[k] = 0
		}
		for l := 0; l < n; l++ {
			ail := a[i*n+l]
			bl := b[l*n : (l+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += ail * bl[j]
			}
		}
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two equally sized vectors.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
