package kernels_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rio/internal/kernels"
)

func TestSpinTerminates(t *testing.T) {
	var cell uint64
	kernels.Spin(&cell, 0)
	kernels.Spin(&cell, 1000)
	if cell != 999 {
		t.Errorf("cell = %d, want 999", cell)
	}
}

func TestCellsPadded(t *testing.T) {
	c := kernels.NewCells(4)
	for w := 0; w < 4; w++ {
		*c.Cell(w) = uint64(w + 1)
	}
	for w := 0; w < 4; w++ {
		if *c.Cell(w) != uint64(w+1) {
			t.Errorf("cell %d clobbered", w)
		}
	}
}

func TestCalibrate(t *testing.T) {
	c := kernels.Calibrate(5 * time.Millisecond)
	if c.NsPerOp <= 0 || c.NsPerOp > 100 {
		t.Errorf("NsPerOp = %v, implausible", c.NsPerOp)
	}
	d := c.TaskDuration(1 << 20)
	if d <= 0 {
		t.Errorf("TaskDuration = %v", d)
	}
}

func TestNewTiledValidation(t *testing.T) {
	if _, err := kernels.NewTiled(10, 3); err == nil {
		t.Error("b not dividing n accepted")
	}
	if _, err := kernels.NewTiled(0, 1); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := kernels.NewTiled(8, 4); err != nil {
		t.Errorf("valid tiling rejected: %v", err)
	}
}

func TestTiledRoundTrip(t *testing.T) {
	m, _ := kernels.NewTiled(8, 2)
	a := make([]float64, 64)
	for i := range a {
		a[i] = float64(i)
	}
	if err := m.FromDense(a); err != nil {
		t.Fatal(err)
	}
	got := m.ToDense()
	if kernels.MaxAbsDiff(a, got) != 0 {
		t.Error("FromDense/ToDense round trip changed values")
	}
	if m.At(3, 5) != a[3*8+5] {
		t.Errorf("At(3,5) = %v, want %v", m.At(3, 5), a[3*8+5])
	}
	m.Set(3, 5, -1)
	if m.At(3, 5) != -1 {
		t.Error("Set/At mismatch")
	}
}

func TestFromDenseRejectsWrongLength(t *testing.T) {
	m, _ := kernels.NewTiled(4, 2)
	if err := m.FromDense(make([]float64, 3)); err == nil {
		t.Error("wrong dense length accepted")
	}
}

func TestGemmTileMatchesDense(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c := make([]float64, n*n)
	want := make([]float64, n*n)
	kernels.MatMulDense(want, a, b, n)
	kernels.GemmTile(c, a, b, n)
	if d := kernels.MaxAbsDiff(c, want); d > 1e-12 {
		t.Errorf("GemmTile differs from dense reference by %v", d)
	}
	// GemmTile accumulates: running it twice doubles the result.
	kernels.GemmTile(c, a, b, n)
	for i := range want {
		want[i] *= 2
	}
	if d := kernels.MaxAbsDiff(c, want); d > 1e-12 {
		t.Errorf("accumulation broken, diff %v", d)
	}
}

func TestGemmSubTile(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(2))
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c := randSlice(rng, n*n)
	orig := append([]float64(nil), c...)
	prod := make([]float64, n*n)
	kernels.MatMulDense(prod, a, b, n)
	kernels.GemmSubTile(c, a, b, n)
	for i := range c {
		if math.Abs(c[i]-(orig[i]-prod[i])) > 1e-12 {
			t.Fatalf("C -= A·B wrong at %d", i)
		}
	}
}

func TestGemmSubTileNT(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(3))
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c := randSlice(rng, n*n)
	orig := append([]float64(nil), c...)
	bt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bt[i*n+j] = b[j*n+i]
		}
	}
	prod := make([]float64, n*n)
	kernels.MatMulDense(prod, a, bt, n)
	kernels.GemmSubTileNT(c, a, b, n)
	for i := range c {
		if math.Abs(c[i]-(orig[i]-prod[i])) > 1e-12 {
			t.Fatalf("C -= A·Bᵀ wrong at %d", i)
		}
	}
}

func TestGetrfReconstruct(t *testing.T) {
	const n = 12
	m, _ := kernels.NewTiled(n, n)
	kernels.DiagDominant(m, 5)
	orig := m.ToDense()
	if err := kernels.Getrf(m.Tile(0, 0), n); err != nil {
		t.Fatal(err)
	}
	lu := kernels.LUReconstruct(m)
	if d := kernels.MaxAbsDiff(lu, orig); d > 1e-9 {
		t.Errorf("L·U differs from A by %v", d)
	}
}

func TestGetrfReportsZeroPivot(t *testing.T) {
	a := []float64{0, 1, 1, 0} // 2x2 with zero pivot
	if err := kernels.Getrf(a, 2); err == nil {
		t.Error("zero pivot not reported")
	}
}

func TestTrsmLowerLeft(t *testing.T) {
	// Factor a diagonally dominant tile, then check L · (L⁻¹B) == B.
	const n = 8
	rng := rand.New(rand.NewSource(4))
	m, _ := kernels.NewTiled(n, n)
	kernels.DiagDominant(m, 6)
	lu := m.Tile(0, 0)
	if err := kernels.Getrf(lu, n); err != nil {
		t.Fatal(err)
	}
	b := randSlice(rng, n*n)
	orig := append([]float64(nil), b...)
	kernels.TrsmLowerLeft(lu, b, n)
	// Rebuild L and multiply.
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		l[i*n+i] = 1
		for j := 0; j < i; j++ {
			l[i*n+j] = lu[i*n+j]
		}
	}
	chk := make([]float64, n*n)
	kernels.MatMulDense(chk, l, b, n)
	if d := kernels.MaxAbsDiff(chk, orig); d > 1e-9 {
		t.Errorf("L·X != B, diff %v", d)
	}
}

func TestTrsmUpperRight(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(5))
	m, _ := kernels.NewTiled(n, n)
	kernels.DiagDominant(m, 7)
	lu := m.Tile(0, 0)
	if err := kernels.Getrf(lu, n); err != nil {
		t.Fatal(err)
	}
	b := randSlice(rng, n*n)
	orig := append([]float64(nil), b...)
	kernels.TrsmUpperRight(lu, b, n)
	u := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u[i*n+j] = lu[i*n+j]
		}
	}
	chk := make([]float64, n*n)
	kernels.MatMulDense(chk, b, u, n)
	if d := kernels.MaxAbsDiff(chk, orig); d > 1e-9 {
		t.Errorf("X·U != B, diff %v", d)
	}
}

func TestPotrfReconstruct(t *testing.T) {
	const n = 12
	m, _ := kernels.NewTiled(n, n)
	kernels.SPDMatrix(m, 8)
	orig := m.ToDense()
	if err := kernels.Potrf(m.Tile(0, 0), n); err != nil {
		t.Fatal(err)
	}
	llt := kernels.CholReconstruct(m)
	if d := kernels.MaxAbsDiff(llt, orig); d > 1e-9 {
		t.Errorf("L·Lᵀ differs from A by %v", d)
	}
}

func TestPotrfReportsNonSPD(t *testing.T) {
	a := []float64{-1, 0, 0, 1}
	if err := kernels.Potrf(a, 2); err == nil {
		t.Error("non-SPD matrix not reported")
	}
}

func TestSyrkLower(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(9))
	a := randSlice(rng, n*n)
	c := randSlice(rng, n*n)
	orig := append([]float64(nil), c...)
	kernels.SyrkLower(c, a, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for l := 0; l < n; l++ {
				s += a[i*n+l] * a[j*n+l]
			}
			if math.Abs(c[i*n+j]-(orig[i*n+j]-s)) > 1e-12 {
				t.Fatalf("syrk wrong at (%d,%d)", i, j)
			}
		}
	}
	// Upper triangle untouched.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c[i*n+j] != orig[i*n+j] {
				t.Fatalf("syrk touched upper triangle at (%d,%d)", i, j)
			}
		}
	}
}

// Property: GemmTile agrees with the dense reference for random sizes and
// contents.
func TestPropertyGemmTileCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randSlice(rng, n*n)
		b := randSlice(rng, n*n)
		c := make([]float64, n*n)
		want := make([]float64, n*n)
		kernels.MatMulDense(want, a, b, n)
		kernels.GemmTile(c, a, b, n)
		return kernels.MaxAbsDiff(c, want) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: LU factorization of random diagonally dominant matrices always
// reconstructs the input.
func TestPropertyGetrfReconstructs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%10)
		m, err := kernels.NewTiled(n, n)
		if err != nil {
			return false
		}
		kernels.DiagDominant(m, seed)
		orig := m.ToDense()
		if err := kernels.Getrf(m.Tile(0, 0), n); err != nil {
			return false
		}
		return kernels.MaxAbsDiff(kernels.LUReconstruct(m), orig) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()*2 - 1
	}
	return s
}
