package kernels

import (
	"fmt"
	"math"
)

// Tile kernels of the right-looking tiled Cholesky factorization (A = L·Lᵀ
// for symmetric positive definite A, lower-triangular storage). Cholesky is
// the classic showcase of static mappings for task-based codes (the paper
// cites Agullo et al., "Are static schedules so bad?", IPDPS 2016); it is
// included as an extension workload beyond the paper's four experiments.

// Potrf factors an n×n SPD tile in place into its lower Cholesky factor;
// entries above the diagonal are left untouched.
func Potrf(a []float64, n int) error {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for l := 0; l < j; l++ {
			d -= a[j*n+l] * a[j*n+l]
		}
		if d <= 0 {
			return fmt.Errorf("kernels: non-positive pivot %g at %d in Cholesky", d, j)
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for l := 0; l < j; l++ {
				s -= a[i*n+l] * a[j*n+l]
			}
			a[i*n+j] = s * inv
		}
	}
	return nil
}

// TrsmRightLowerT solves X·Lᵀ = B in place (B ← B·L⁻ᵀ) with L the lower
// factor stored in l: the panel update A(i, k) after Potrf on A(k, k).
func TrsmRightLowerT(l, b []float64, n int) {
	for j := 0; j < n; j++ {
		inv := 1 / l[j*n+j]
		for i := 0; i < n; i++ {
			bi := b[i*n : i*n+n]
			s := bi[j]
			for c := 0; c < j; c++ {
				s -= bi[c] * l[j*n+c]
			}
			bi[j] = s * inv
		}
	}
}

// SyrkLower computes C -= A·Aᵀ on the lower triangle of an n×n tile (the
// diagonal-block update of Cholesky).
func SyrkLower(c, a []float64, n int) {
	for i := 0; i < n; i++ {
		ai := a[i*n : i*n+n]
		for j := 0; j <= i; j++ {
			aj := a[j*n : j*n+n]
			var s float64
			for l := 0; l < n; l++ {
				s += ai[l] * aj[l]
			}
			c[i*n+j] -= s
		}
	}
}

// CholReconstruct multiplies the packed lower factor back: returns L·Lᵀ as
// a dense row-major matrix, reading only the lower triangle of m.
func CholReconstruct(m *Tiled) []float64 {
	n := m.N
	l := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			l[r*n+c] = m.At(r, c)
		}
	}
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				s += l[i*n+k] * l[j*n+k]
			}
			out[i*n+j] = s
		}
	}
	return out
}

// SPDMatrix fills m with a deterministic symmetric positive definite
// matrix: a random symmetric matrix shifted by n on the diagonal.
func SPDMatrix(m *Tiled, seed uint64) {
	s := seed
	for r := 0; r < m.N; r++ {
		for c := 0; c <= r; c++ {
			s = s*6364136223846793005 + 1442695040888963407
			v := float64(int64(s>>33)%1000) / 1000.0
			if c == r {
				m.Set(r, c, v+float64(m.N))
			} else {
				m.Set(r, c, v)
				m.Set(c, r, v)
			}
		}
	}
}
