package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// WaitCancel enforces the engines' liveness invariant from PR 1's run
// hardening: any poll or park loop — a for loop that sleeps, yields, or
// blocks while re-checking shared state — must also poll the
// run-abort/cancellation state. A dependency produced by a worker that
// panicked, stalled or was canceled never resolves; a waiting loop that
// does not check for the abort flag turns that failure into a hang instead
// of an error.
//
// The check is syntactic: a for statement whose body calls time.Sleep or
// runtime.Gosched, blocks on a channel receive (bare or inside a select —
// the event-gate parking loops), or calls a method named "Wait" (sync.Cond
// parking) must, somewhere in the same statement, reference the
// cancellation state — an identifier or selector whose name contains
// "abort", "cancel", "done" or "close", equals "ctx" or "err", or a call
// to a method named "raised".
var WaitCancel = &Analyzer{
	Name:     "waitcancel",
	Doc:      "poll loops in the engines must check the run-abort/cancellation state",
	Packages: []string{"core", "centralized"},
	Run:      runWaitCancel,
}

func runWaitCancel(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			if loopPolls(loop) && !checksAbort(loop) {
				diags = append(diags, Diagnostic{
					Analyzer: "waitcancel",
					Pos:      p.Fset.Position(loop.Pos()),
					Message: "poll/park loop sleeps, yields or blocks without checking the run-abort/cancellation state; " +
						"a dependency held by a failed worker would block it forever",
				})
			}
			return true
		})
	}
	return diags
}

// loopPolls reports whether the loop body sleeps, yields, or blocks — the
// signature of a dependency poll or park loop. Blocking forms covered: a
// bare channel receive (including receives inside a select's comm clauses)
// and method calls named "Wait" (sync.Cond parking; sync.WaitGroup joins in
// a loop are the same hazard).
func loopPolls(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // <-ch: a parking receive
				found = true
				return false
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Wait" { // cond.Wait(), wg.Wait()
				found = true
				return false
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if (pkg.Name == "time" && sel.Sel.Name == "Sleep") ||
				(pkg.Name == "runtime" && sel.Sel.Name == "Gosched") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checksAbort reports whether the loop references cancellation state.
func checksAbort(loop *ast.ForStmt) bool {
	found := false
	consider := func(name string) {
		lower := strings.ToLower(name)
		switch {
		case name == "ctx" || name == "err" || name == "raised":
			found = true
		case strings.Contains(lower, "abort"), strings.Contains(lower, "cancel"),
			strings.Contains(lower, "done"), strings.Contains(lower, "close"):
			found = true
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			consider(n.Name)
		case *ast.SelectorExpr:
			consider(n.Sel.Name)
		}
		return !found
	})
	return found
}
