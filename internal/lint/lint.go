// Package lint holds the runtime's custom source analyzers: checks for
// protocol invariants of the engine implementation that the compiler and
// go vet cannot express, in the style of golang.org/x/tools/go/analysis.
//
// The x/tools analysis framework is not vendored into this module, so
// the package ships its own minimal driver over the standard library's
// go/ast: analyzers receive one parsed package at a time and return
// position-annotated diagnostics. They run two ways:
//
//   - cmd/rio-lint, a vet-style CLI over the repository tree (wired into
//     CI), and
//   - TestRepoIsLintClean in this package, so `go test ./...` already
//     enforces the invariants locally.
//
// Current analyzers:
//
//   - waitcancel: poll loops in the engines (anything sleeping or
//     yielding while waiting on shared state) must check the
//     run-abort/cancellation state, or a dependency held by a failed
//     worker blocks forever;
//   - atomicfield: struct fields declared with a sync/atomic type must
//     only be touched through atomic method calls (Load/Store/Add/...),
//     never read or written as plain fields — the shared half of the
//     per-data protocol state is exactly such a struct;
//   - padguard: blank struct pad fields (_ [N]byte) must compute N from
//     unsafe.Sizeof of the padded payload — a hand-counted pad silently
//     stops padding when the struct grows.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// File is one parsed source file of a package.
type File struct {
	Path string
	AST  *ast.File
}

// Package is the unit an analyzer runs on: every non-test file of one
// directory-level package, sharing a FileSet.
type Package struct {
	Fset  *token.FileSet
	Name  string
	Dir   string
	Files []*File
}

// Analyzer is one invariant check over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is the one-line description shown by rio-lint.
	Doc string
	// Packages restricts the analyzer to package names; nil means every
	// package.
	Packages []string
	// Run analyzes one package.
	Run func(p *Package) []Diagnostic
}

func (a *Analyzer) applies(pkgName string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if p == pkgName {
			return true
		}
	}
	return false
}

// All returns every analyzer of the runtime.
func All() []*Analyzer { return []*Analyzer{WaitCancel, AtomicField, PadGuard} }

// Dir walks root recursively, groups non-test .go files into packages
// and runs the analyzers. Hidden directories, testdata and vendor trees
// are skipped.
func Dir(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := parsePackage(dir, byDir[dir])
		if err != nil {
			return nil, err
		}
		diags = append(diags, Run(pkg, analyzers)...)
	}
	sortDiags(diags)
	return diags, nil
}

// Run applies the analyzers matching pkg's name.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.applies(pkg.Name) {
			diags = append(diags, a.Run(pkg)...)
		}
	}
	sortDiags(diags)
	return diags
}

// Source parses one file's source into a single-file package — the test
// entry point for feeding analyzers synthetic code.
func Source(filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return &Package{
		Fset:  fset,
		Name:  f.Name.Name,
		Dir:   filepath.Dir(filename),
		Files: []*File{{Path: filename, AST: f}},
	}, nil
}

func parsePackage(dir string, paths []string) (*Package, error) {
	sort.Strings(paths)
	fset := token.NewFileSet()
	pkg := &Package{Fset: fset, Dir: dir}
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// A directory can legally hold one package plus documentation
		// mains; keep the majority package (first seen wins, mirrors the
		// go tool's one-package-per-directory rule closely enough for
		// linting).
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			continue
		}
		pkg.Files = append(pkg.Files, &File{Path: path, AST: f})
	}
	return pkg, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
