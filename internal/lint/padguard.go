package lint

import (
	"go/ast"
	"go/token"
)

// PadGuard enforces the cache-line padding idiom of the protocol state
// (internal/core's sharedState, internal/kernels' paddedCell): a blank
// struct pad field `_ [N]byte` must compute N from unsafe.Sizeof of the
// padded payload, never hand-count it. A hand-counted pad silently stops
// padding — or overflows negative and stops compiling — the moment a
// field is added to the struct; the computed form
//
//	_ [(cacheLine - unsafe.Sizeof(cell{})%cacheLine) % cacheLine]byte
//
// tracks the layout by construction. The array-length expression may
// reach unsafe.Sizeof through package-level constants, which are resolved
// transitively; expressions mentioning identifiers the analyzer cannot
// resolve within the package are skipped (under-approximation, like the
// other analyzers — no false positives from cross-package constants).
var PadGuard = &Analyzer{
	Name: "padguard",
	Doc:  "struct pad fields (_ [N]byte) must compute N from unsafe.Sizeof, not hand-count it",
	Run:  runPadGuard,
}

func runPadGuard(p *Package) []Diagnostic {
	consts := indexConsts(p)
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !isBlankPad(fld) {
					continue
				}
				arr := fld.Type.(*ast.ArrayType)
				found, unresolved := sizeofIn(arr.Len, consts, map[string]bool{})
				if found || unresolved {
					continue
				}
				diags = append(diags, Diagnostic{
					Analyzer: "padguard",
					Pos:      p.Fset.Position(fld.Pos()),
					Message: "pad field's length is hand-counted; compute it from unsafe.Sizeof " +
						"so it tracks the struct layout",
				})
			}
			return true
		})
	}
	return diags
}

// isBlankPad reports whether fld is a padding field: every name blank and
// the type a byte (or uint8) array.
func isBlankPad(fld *ast.Field) bool {
	if len(fld.Names) == 0 {
		return false
	}
	for _, name := range fld.Names {
		if name.Name != "_" {
			return false
		}
	}
	arr, ok := fld.Type.(*ast.ArrayType)
	if !ok || arr.Len == nil { // slices are not pads
		return false
	}
	elt, ok := arr.Elt.(*ast.Ident)
	return ok && (elt.Name == "byte" || elt.Name == "uint8")
}

// indexConsts maps the package-level constant names to their value
// expressions (single-name, single-value specs only — enough for the
// cacheLine-style constants pads are built from).
func indexConsts(p *Package) map[string]ast.Expr {
	consts := map[string]ast.Expr{}
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						consts[name.Name] = vs.Values[i]
					}
				}
			}
		}
	}
	return consts
}

// sizeofIn walks a constant expression looking for an unsafe.Sizeof (or
// unsafe.Offsetof/Alignof — all layout-derived) call, resolving
// package-level constant identifiers transitively. It reports whether one
// was found, and whether the expression mentioned an identifier that
// could not be resolved within the package (imported constants, iota —
// the caller skips those rather than risk a false positive).
func sizeofIn(expr ast.Expr, consts map[string]ast.Expr, visiting map[string]bool) (found, unresolved bool) {
	switch e := expr.(type) {
	case nil:
		return false, false
	case *ast.BasicLit:
		return false, false
	case *ast.Ident:
		if def, ok := consts[e.Name]; ok {
			if visiting[e.Name] {
				return false, false
			}
			visiting[e.Name] = true
			defer delete(visiting, e.Name)
			return sizeofIn(def, consts, visiting)
		}
		return false, true
	case *ast.SelectorExpr:
		if pkg, ok := e.X.(*ast.Ident); ok && pkg.Name == "unsafe" {
			switch e.Sel.Name {
			case "Sizeof", "Offsetof", "Alignof":
				return true, false
			}
		}
		return false, true // a constant from another package
	case *ast.CallExpr:
		found, unresolved = sizeofIn(e.Fun, consts, visiting)
		if found {
			return true, false // arguments no longer matter
		}
		// unsafe.Sizeof(T{}) resolves through the Fun case above; a call
		// to anything else cannot hide a Sizeof in a constant expression,
		// but conversions like uintptr(x) can carry one in the argument.
		for _, arg := range e.Args {
			f, u := sizeofIn(arg, consts, visiting)
			found, unresolved = found || f, unresolved || u
		}
		return found, unresolved
	case *ast.BinaryExpr:
		lf, lu := sizeofIn(e.X, consts, visiting)
		rf, ru := sizeofIn(e.Y, consts, visiting)
		return lf || rf, lu || ru
	case *ast.UnaryExpr:
		return sizeofIn(e.X, consts, visiting)
	case *ast.ParenExpr:
		return sizeofIn(e.X, consts, visiting)
	case *ast.CompositeLit, *ast.ArrayType, *ast.StructType:
		return false, false // type literals inside Sizeof args
	default:
		return false, true
	}
}
