package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AtomicField enforces the protocol-state invariant of the in-order
// engine (internal/core's sharedState, and any struct like it): a struct
// field declared with a sync/atomic type is shared state and must only
// be touched through atomic method calls — Load, Store, Add, Swap,
// CompareAndSwap — never read or written as a plain field and never
// address-taken into a plain pointer. The per-worker localState half is
// deliberately plain (only its owner touches it); this analyzer is what
// keeps the two halves from being mixed up during refactors.
//
// The check runs without full type checking (x/tools is not vendored):
// struct fields of atomic type are indexed per package, and receiver,
// parameter, var and short-var declarations give enough local type
// inference to resolve the selector bases that matter. Unresolvable
// expressions are skipped, so the analyzer under-approximates instead of
// false-positiving.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "sync/atomic struct fields must be accessed only through atomic method calls",
	Run:  runAtomicField,
}

// atomicMethods are the sync/atomic value methods that constitute legal
// access.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

func runAtomicField(p *Package) []Diagnostic {
	idx := indexStructs(p)
	if len(idx.atomic) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			diags = append(diags, checkFunc(p, idx, fn)...)
		}
	}
	return diags
}

// structIndex records, per package, each struct's field types and which
// fields are atomic.
type structIndex struct {
	// fields[struct][field] = rendered type ("atomic.Int64",
	// "[]sharedState", "*submitter", ...).
	fields map[string]map[string]string
	// atomic[struct] = set of atomic-typed field names.
	atomic map[string]map[string]bool
}

func indexStructs(p *Package) *structIndex {
	idx := &structIndex{fields: map[string]map[string]string{}, atomic: map[string]map[string]bool{}}
	for _, f := range p.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fields := map[string]string{}
			atomics := map[string]bool{}
			for _, fld := range st.Fields.List {
				t := renderType(fld.Type)
				for _, name := range fld.Names {
					fields[name.Name] = t
					if strings.HasPrefix(t, "atomic.") {
						atomics[name.Name] = true
					}
				}
			}
			idx.fields[ts.Name.Name] = fields
			if len(atomics) > 0 {
				idx.atomic[ts.Name.Name] = atomics
			}
			return true
		})
	}
	return idx
}

// checkFunc flags illegal atomic-field accesses within one function.
func checkFunc(p *Package, idx *structIndex, fn *ast.FuncDecl) []Diagnostic {
	res := &resolver{idx: idx, bindings: map[string]ast.Expr{}, types: map[string]string{}}
	res.bindFieldList(fn.Recv)
	if fn.Type.Params != nil {
		res.bindFieldList(fn.Type.Params)
	}
	if fn.Type.Results != nil {
		res.bindFieldList(fn.Type.Results)
	}
	res.collect(fn.Body)

	// First pass: mark the field selectors that appear as the receiver
	// of an atomic method call — the legal form.
	legal := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !atomicMethods[method.Sel.Name] {
			return true
		}
		if fieldSel, ok := method.X.(*ast.SelectorExpr); ok {
			legal[fieldSel] = true
		}
		return true
	})

	// Second pass: every selector resolving to an atomic field must have
	// been marked legal.
	var diags []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || legal[sel] {
			return true
		}
		base := strings.TrimPrefix(res.typeOf(sel.X), "*")
		if fields, ok := idx.atomic[base]; ok && fields[sel.Sel.Name] {
			diags = append(diags, Diagnostic{
				Analyzer: "atomicfield",
				Pos:      p.Fset.Position(sel.Pos()),
				Message: "field " + base + "." + sel.Sel.Name +
					" has a sync/atomic type and must be accessed through atomic method calls only",
			})
		}
		return true
	})
	return diags
}

// resolver performs flat, best-effort local type inference: identifier →
// declared or assigned expression → rendered type. Closures share the
// enclosing function's namespace (Go shadowing is ignored — acceptable
// for a lint that skips what it cannot resolve).
type resolver struct {
	idx      *structIndex
	bindings map[string]ast.Expr // name -> defining value expression
	types    map[string]string   // name -> resolved (memoized) type
}

func (r *resolver) bindFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := renderType(f.Type)
		for _, name := range f.Names {
			r.types[name.Name] = t
		}
	}
}

// collect gathers binding sites in the function body: var declarations,
// short variable declarations, assignments and range statements.
func (r *resolver) collect(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if n.Type != nil {
				t := renderType(n.Type)
				for _, name := range n.Names {
					r.types[name.Name] = t
				}
			} else if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					r.bind(name.Name, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						r.bind(id.Name, n.Rhs[i])
					}
				}
			}
		case *ast.RangeStmt:
			if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
				r.bindings[v.Name] = &ast.IndexExpr{X: n.X, Index: n.Key}
			}
		case *ast.FuncLit:
			r.bindFieldList(n.Type.Params)
			if n.Type.Results != nil {
				r.bindFieldList(n.Type.Results)
			}
		}
		return true
	})
}

func (r *resolver) bind(name string, value ast.Expr) {
	if name == "_" {
		return
	}
	if _, done := r.types[name]; done {
		return // keep the declared type
	}
	if _, seen := r.bindings[name]; !seen {
		r.bindings[name] = value
	}
}

// typeOf renders the type of expr, or "" when it cannot be resolved.
func (r *resolver) typeOf(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		if t, ok := r.types[e.Name]; ok {
			return t
		}
		if def, ok := r.bindings[e.Name]; ok {
			delete(r.bindings, e.Name) // cycle guard
			t := r.typeOf(def)
			r.bindings[e.Name] = def
			if t != "" {
				r.types[e.Name] = t
			}
			return t
		}
	case *ast.ParenExpr:
		return r.typeOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if t := r.typeOf(e.X); t != "" {
				return "*" + t
			}
		}
	case *ast.StarExpr:
		return strings.TrimPrefix(r.typeOf(e.X), "*")
	case *ast.SelectorExpr:
		base := strings.TrimPrefix(r.typeOf(e.X), "*")
		if fields, ok := r.idx.fields[base]; ok {
			return fields[e.Sel.Name]
		}
	case *ast.IndexExpr:
		t := r.typeOf(e.X)
		if strings.HasPrefix(t, "[]") {
			return t[2:]
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && len(e.Args) > 0 {
			switch id.Name {
			case "make":
				return renderType(e.Args[0])
			case "new":
				if t := renderType(e.Args[0]); t != "" {
					return "*" + t
				}
			}
		}
	case *ast.CompositeLit:
		if e.Type != nil {
			return renderType(e.Type)
		}
	}
	return ""
}

// renderType renders a type expression to the canonical strings the
// resolver compares ("T", "*T", "[]T", "pkg.T").
func renderType(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		if pkg, ok := t.X.(*ast.Ident); ok {
			return pkg.Name + "." + t.Sel.Name
		}
	case *ast.StarExpr:
		if inner := renderType(t.X); inner != "" {
			return "*" + inner
		}
	case *ast.ArrayType:
		if inner := renderType(t.Elt); inner != "" {
			return "[]" + inner
		}
	case *ast.ParenExpr:
		return renderType(t.X)
	}
	return ""
}
