package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rio/internal/lint"
)

// lintSource runs every analyzer over one synthetic file.
func lintSource(t *testing.T, filename, src string) []lint.Diagnostic {
	t.Helper()
	pkg, err := lint.Source(filename, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return lint.Run(pkg, lint.All())
}

func hasAnalyzer(diags []lint.Diagnostic, name string) bool {
	for _, d := range diags {
		if d.Analyzer == name {
			return true
		}
	}
	return false
}

// The repository's own source must satisfy its protocol invariants —
// the same check CI runs via cmd/rio-lint.
func TestRepoIsLintClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Dir(root, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestWaitCancelFlagsUncheckedPollLoop(t *testing.T) {
	src := `package core

import "time"

func spin(cond func() bool) {
	for !cond() {
		time.Sleep(time.Microsecond)
	}
}
`
	diags := lintSource(t, "core/bad.go", src)
	if !hasAnalyzer(diags, "waitcancel") {
		t.Fatalf("want a waitcancel diagnostic, got %v", diags)
	}
}

func TestWaitCancelAcceptsAbortingPollLoop(t *testing.T) {
	src := `package core

import "time"

func spin(cond func() bool, abort func() bool) {
	for !cond() {
		if abort() {
			return
		}
		time.Sleep(time.Microsecond)
	}
}
`
	if diags := lintSource(t, "core/good.go", src); hasAnalyzer(diags, "waitcancel") {
		t.Fatalf("clean poll loop flagged: %v", diags)
	}
}

// A loop that parks on a channel receive (the event-gate pattern) without
// referencing the abort state must be flagged: a missed wake or a failed
// producer would park it forever.
func TestWaitCancelFlagsUncheckedParkLoop(t *testing.T) {
	src := `package core

func park(cond func() bool, gate func() chan struct{}) {
	for !cond() {
		<-gate()
	}
}
`
	diags := lintSource(t, "core/badpark.go", src)
	if !hasAnalyzer(diags, "waitcancel") {
		t.Fatalf("want a waitcancel diagnostic for a park loop, got %v", diags)
	}
}

// The engine's actual parking shape — register, select on the gate and a
// backstop timer, re-check the abort latch — must pass.
func TestWaitCancelAcceptsAbortCheckedParkLoop(t *testing.T) {
	src := `package core

import "time"

func park(cond func() bool, gate func() chan struct{}, aborted func() bool) bool {
	for !cond() {
		ch := gate()
		if aborted() {
			return false
		}
		t := time.NewTimer(time.Millisecond)
		select {
		case <-ch:
		case <-t.C:
		}
		t.Stop()
	}
	return true
}
`
	if diags := lintSource(t, "core/goodpark.go", src); hasAnalyzer(diags, "waitcancel") {
		t.Fatalf("clean park loop flagged: %v", diags)
	}
}

// Cond.Wait parking loops are in scope too: without a closed/abort check in
// the loop they would never observe shutdown.
func TestWaitCancelFlagsUncheckedCondWaitLoop(t *testing.T) {
	src := `package centralized

import "sync"

func drain(c *sync.Cond, empty func() bool) {
	for empty() {
		c.Wait()
	}
}
`
	diags := lintSource(t, "centralized/badcond.go", src)
	if !hasAnalyzer(diags, "waitcancel") {
		t.Fatalf("want a waitcancel diagnostic for a cond-wait loop, got %v", diags)
	}
}

func TestWaitCancelIgnoresOtherPackages(t *testing.T) {
	src := `package faultinject

import "time"

func slow() {
	for i := 0; i < 3; i++ {
		time.Sleep(time.Millisecond)
	}
}
`
	if diags := lintSource(t, "faultinject/f.go", src); hasAnalyzer(diags, "waitcancel") {
		t.Fatalf("out-of-scope package flagged: %v", diags)
	}
}

func TestAtomicFieldFlagsPlainAccess(t *testing.T) {
	src := `package core

import "sync/atomic"

type sharedState struct {
	lastWrite atomic.Int64
	plain     int64
}

func (s *sharedState) bad() int64 {
	return int64(s.lastWrite.Load()) + s.plain + readRaw(s)
}

func readRaw(s *sharedState) int64 {
	_ = s.lastWrite // plain read of an atomic field
	return 0
}
`
	diags := lintSource(t, "core/bad.go", src)
	if !hasAnalyzer(diags, "atomicfield") {
		t.Fatalf("want an atomicfield diagnostic, got %v", diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "plain int64") {
			t.Fatalf("plain field flagged: %s", d)
		}
	}
}

func TestAtomicFieldResolvesLocalBindings(t *testing.T) {
	src := `package core

import "sync/atomic"

type sharedState struct {
	ctr atomic.Int64
}

type engine struct {
	shared []sharedState
}

func (e *engine) bad(i int) {
	sh := &e.shared[i]
	sh.ctr = atomic.Int64{} // plain write through a derived local
}
`
	diags := lintSource(t, "core/derived.go", src)
	if !hasAnalyzer(diags, "atomicfield") {
		t.Fatalf("want an atomicfield diagnostic through local inference, got %v", diags)
	}
}

func TestAtomicFieldAcceptsMethodCalls(t *testing.T) {
	src := `package core

import "sync/atomic"

type sharedState struct {
	ctr atomic.Int64
}

func (s *sharedState) good() {
	s.ctr.Add(1)
	if s.ctr.Load() > 3 {
		s.ctr.Store(0)
	}
	s.ctr.CompareAndSwap(1, 2)
}

func viaSlice(shared []sharedState, i int) int64 {
	return shared[i].ctr.Load()
}
`
	if diags := lintSource(t, "core/good.go", src); len(diags) != 0 {
		t.Fatalf("clean atomic usage flagged: %v", diags)
	}
}

// The plain localState half must not be flagged even though its fields
// share names with sharedState's atomic fields — the analyzer must
// distinguish the receivers by type, not by field name.
func TestAtomicFieldDistinguishesTwinStructs(t *testing.T) {
	src := `package core

import "sync/atomic"

type sharedState struct {
	nbReads atomic.Int64
}

type localState struct {
	nbReads int64
}

func (l *localState) fine() {
	l.nbReads++
}
`
	if diags := lintSource(t, "core/twin.go", src); len(diags) != 0 {
		t.Fatalf("plain twin struct flagged: %v", diags)
	}
}

func TestPadGuardFlagsHandCountedPad(t *testing.T) {
	src := `package core

type padded struct {
	v uint64
	_ [56]byte
}
`
	diags := lintSource(t, "core/pad.go", src)
	if !hasAnalyzer(diags, "padguard") {
		t.Fatalf("want a padguard diagnostic, got %v", diags)
	}
}

// A pad whose length reaches unsafe.Sizeof — directly or through a
// package-level constant — is the computed idiom and must pass.
func TestPadGuardAcceptsComputedPad(t *testing.T) {
	src := `package core

import "unsafe"

const cacheLine = 64

type cell struct {
	v uint64
}

type padded struct {
	cell
	_ [(cacheLine - unsafe.Sizeof(cell{})%cacheLine) % cacheLine]byte
}

type simple struct {
	v uint64
	_ [cacheLine - unsafe.Sizeof(uint64(0))]byte
}
`
	if diags := lintSource(t, "core/pad.go", src); len(diags) != 0 {
		t.Fatalf("computed pad flagged: %v", diags)
	}
}

// A constant chain must be resolved transitively, and a hand-counted
// constant at the end of it still flagged.
func TestPadGuardResolvesConstChains(t *testing.T) {
	src := `package core

const lineSize = 64
const pad = lineSize - 8

type padded struct {
	v uint64
	_ [pad]byte
}
`
	diags := lintSource(t, "core/pad.go", src)
	if !hasAnalyzer(diags, "padguard") {
		t.Fatalf("want a padguard diagnostic through the const chain, got %v", diags)
	}
}

// Unresolvable length expressions (imported constants) are skipped, and
// non-pad blank fields or unsized arrays are not pads at all.
func TestPadGuardSkipsUnresolvableAndNonPads(t *testing.T) {
	src := `package core

import "rio/internal/other"

type padded struct {
	v uint64
	_ [other.Pad]byte
}

type notAPad struct {
	_ struct{}
	_ []byte
	w [8]byte
}
`
	if diags := lintSource(t, "core/pad.go", src); len(diags) != 0 {
		t.Fatalf("unresolvable/non-pad fields flagged: %v", diags)
	}
}
