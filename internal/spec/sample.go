package spec

import "math/rand"

// Monte-Carlo checking: where exhaustive enumeration explodes (the paper's
// TLC run on the 3×3 LU instance took 22 h for STF and did not finish in
// 48 h for Run-In-Order), random-walk sampling still gives probabilistic
// confidence: each run draws a uniformly random enabled transition until
// termination, checking the same invariants (data-race freedom, per-step
// STF readiness, progress) along the trace.

// SampleSTF performs runs random executions of the STF model. Generated
// counts transitions taken across all runs; Distinct counts distinct
// states visited. Depth reports the longest trace.
func (m *Model) SampleSTF(runs int, seed int64) *Result {
	res := &Result{}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[stfState]struct{})
	var buf []stfState
	for r := 0; r < runs; r++ {
		s := m.stfInit()
		steps := 0
		for {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
			}
			activeBits, race := m.activeBits(&s.active)
			if race {
				res.violate("STF(sample): data race in state pending=%#x active=%v", s.pending, s.active)
			}
			if s.pending == 0 && activeBits == 0 {
				break // terminated
			}
			buf = m.stfSuccessors(s, buf[:0])
			if len(buf) == 0 {
				res.violate("STF(sample): deadlock in state pending=%#x active=%v", s.pending, s.active)
				break
			}
			s = buf[rng.Intn(len(buf))]
			steps++
			res.Generated++
		}
		if steps > res.Depth {
			res.Depth = steps
		}
	}
	res.Distinct = int64(len(seen))
	return res
}

// SampleRIO performs runs random executions of the Run-In-Order model,
// verifying data-race freedom, progress, and the per-step refinement
// condition (every executed task is ready under STF semantics).
func (m *Model) SampleRIO(runs int, seed int64, opts RIOOptions) *Result {
	res := &Result{}
	if m.mapping == nil {
		res.violate("RIO(sample): model has no mapping")
		return res
	}
	blockers := m.blockers
	if opts.SkipReadBlockers {
		blockers = m.unsoundBlockers()
	}
	stealing := opts.Steal || opts.UnsafeSteal
	stealBlockers := blockers
	if opts.UnsafeSteal {
		stealBlockers = m.unsoundBlockers()
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[rioState]struct{})
	for r := 0; r < runs; r++ {
		s := m.rioInit()
		steps := 0
		for {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
			}
			activeBits, race := m.activeBits(&s.active)
			if race {
				res.violate("RIO(sample): data race in state pos=%v active=%v", s.pos, s.active)
			}
			terminated := m.rioTerminated(s)
			if activeBits == 0 && terminated == m.all {
				break
			}
			// Enumerate enabled transitions under the (possibly
			// mutated) readiness rule.
			var next []rioState
			for w := 0; w < m.workers; w++ {
				if s.active[w] != idle {
					n := s
					n.active[w] = idle
					next = append(next, n)
					continue
				}
				p := int(s.pos[w])
				if p >= len(m.owned[w]) {
					continue
				}
				t := int(m.owned[w][p])
				if blockers[t]&^terminated != 0 {
					continue
				}
				if !m.taskReady(t, terminated) {
					res.violate("RIO(sample): step executes task %d not ready under STF semantics", t)
				}
				n := s
				n.pos[w] = uint8(p + 1)
				n.active[w] = int8(t)
				next = append(next, n)
			}
			if stealing {
				// Steal transitions, as in CheckRIO: an idle thief may
				// take a victim's next unexecuted ready task.
				for w := 0; w < m.workers; w++ {
					if s.active[w] != idle {
						continue
					}
					for v := 0; v < m.workers; v++ {
						if v == w {
							continue
						}
						p := int(s.pos[v])
						if p >= len(m.owned[v]) {
							continue
						}
						t := int(m.owned[v][p])
						if stealBlockers[t]&^terminated != 0 {
							continue
						}
						if !m.taskReady(t, terminated) {
							res.violate("RIO(sample): steal executes task %d not ready under STF semantics", t)
						}
						n := s
						n.pos[v] = uint8(p + 1)
						n.active[w] = int8(t)
						next = append(next, n)
					}
				}
			}
			if len(next) == 0 {
				res.violate("RIO(sample): deadlock in state pos=%v active=%v", s.pos, s.active)
				break
			}
			s = next[rng.Intn(len(next))]
			steps++
			res.Generated++
		}
		if steps > res.Depth {
			res.Depth = steps
		}
	}
	res.Distinct = int64(len(seen))
	return res
}
