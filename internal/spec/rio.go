package spec

// The Run-In-Order module (paper Appendix B.2): compared to STF, two
// constraints are added — the worker responsible for a task is fixed by the
// Mapping, and each worker executes its attributed tasks in task-flow
// order. The module is checked to *implement* the STF specification: every
// reachable RIO state projects onto a reachable STF state and every
// ExecuteTask step satisfies the STF readiness predicate, so sequential
// consistency, data-race freedom and termination carry over.

// rioState is one state of the Run-In-Order transition system: how far
// each worker has advanced into its own (mapped, ordered) task list, and
// which task it is currently executing.
type rioState struct {
	pos    [MaxWorkers]uint8
	active [MaxWorkers]int8
}

func (m *Model) rioInit() rioState {
	var s rioState
	for w := range s.active {
		s.active[w] = idle
	}
	return s
}

// rioTerminated computes the terminated-task bitset of a state: everything
// each worker has passed, minus what is still being executed.
func (m *Model) rioTerminated(s rioState) uint64 {
	var started uint64
	for w := 0; w < m.workers; w++ {
		started |= m.ownedPrefix[w][s.pos[w]]
	}
	activeBits, _ := m.activeBits(&s.active)
	return started &^ activeBits
}

// rioSuccessors appends every successor of s to buf. Unlike STF, an idle
// worker has at most one candidate: the *first* unexecuted task of its own
// list (in-order execution). The optional transitions (Retry rollback,
// Steal) are enumerated inline by CheckRIO and SampleRIO.
func (m *Model) rioSuccessors(s rioState, buf []rioState) []rioState {
	terminated := m.rioTerminated(s)
	for w := 0; w < m.workers; w++ {
		if s.active[w] != idle {
			n := s
			n.active[w] = idle
			buf = append(buf, n)
			continue
		}
		p := int(s.pos[w])
		if p >= len(m.owned[w]) {
			continue
		}
		t := int(m.owned[w][p])
		if !m.taskReady(t, terminated) {
			continue
		}
		n := s
		n.pos[w] = uint8(p + 1)
		n.active[w] = int8(t)
		buf = append(buf, n)
	}
	return buf
}

// project maps a RIO state onto the corresponding STF state (pending = not
// yet started, same active registers).
func (m *Model) project(s rioState) stfState {
	var started uint64
	for w := 0; w < m.workers; w++ {
		started |= m.ownedPrefix[w][s.pos[w]]
	}
	return stfState{pending: m.all &^ started, active: s.active}
}

// RIOOptions tweak the Run-In-Order checker; the mutations exist so tests
// can confirm the checker actually catches broken execution models.
type RIOOptions struct {
	// SkipReadBlockers unsoundly lets a writer start while earlier
	// readers are still pending/active (dropping the get_write read-count
	// wait of Algorithm 2) — used as a negative control: checking a model
	// with this mutation must FAIL on task flows with read-then-write
	// patterns.
	SkipReadBlockers bool
	// SkipRefinement disables the (more expensive) STF-reachability
	// refinement check and verifies only the direct invariants.
	SkipRefinement bool
	// Retry adds the fault-tolerance rollback transition: an active task
	// may fail, roll its write-set back and return the worker to the
	// pre-attempt position (active → idle, pos decremented) so it can be
	// re-executed. Checking with Retry confirms that rollback+re-execute
	// preserves every invariant — each post-rollback state projects onto a
	// reachable STF state and re-execution is ready under STF rules — i.e.
	// retried runs stay sequentially consistent.
	Retry bool
	// Steal adds the work-stealing transition of Options.Steal: an idle
	// worker (the thief) may execute the *next* unexecuted task of any
	// other worker (the victim) when the task is ready, advancing the
	// victim's position — the model-level image of the claim-table CAS:
	// the owner skips a claimed slot as if it had run the task, the thief
	// holds it in its execution register. Checking with Steal confirms the
	// hybrid model still refines STF: every state with a foreign task in
	// flight projects onto a reachable STF state, and a stolen step obeys
	// the same readiness predicate as an in-order one.
	Steal bool
	// UnsafeSteal is a negative control for the steal transition: thieves
	// use a readiness rule that ignores earlier readers (a StealReq.Ready
	// that dropped the read-count comparison). Checking a model with this
	// mutation must FAIL on task flows with read-then-write patterns —
	// proof that the refinement step check covers stolen executions too.
	// Implies Steal.
	UnsafeSteal bool
}

// CheckRIO exhaustively explores the Run-In-Order model, verifying
// data-race freedom, deadlock-freedom (hence, with fairness, termination)
// and refinement of the STF specification.
func (m *Model) CheckRIO(opts RIOOptions) *Result {
	if m.mapping == nil {
		res := &Result{}
		res.violate("RIO: model has no mapping")
		return res
	}
	res := &Result{}

	blockers := m.blockers
	if opts.SkipReadBlockers {
		blockers = m.unsoundBlockers()
	}
	ready := func(t int, terminated uint64) bool {
		return blockers[t]&^terminated == 0
	}
	stealing := opts.Steal || opts.UnsafeSteal
	stealBlockers := blockers
	if opts.UnsafeSteal {
		stealBlockers = m.unsoundBlockers()
	}

	var stfStates map[stfState]struct{}
	if !opts.SkipRefinement {
		stfStates = m.stfReachable()
	}

	init := m.rioInit()
	seen := map[rioState]struct{}{init: {}}
	frontier := []rioState{init}
	res.Distinct = 1
	terminatedReachable := false
	var buf []rioState
	for len(frontier) > 0 {
		var next []rioState
		for _, s := range frontier {
			activeBits, race := m.activeBits(&s.active)
			if race {
				res.violate("RIO: data race in state pos=%v active=%v", s.pos, s.active)
			}
			if !opts.SkipRefinement {
				if _, ok := stfStates[m.project(s)]; !ok {
					res.violate("RIO: state pos=%v active=%v projects outside the STF state space", s.pos, s.active)
				}
			}
			terminated := m.rioTerminated(s)
			done := activeBits == 0 && terminated == m.all
			if done {
				terminatedReachable = true
				continue
			}
			// Successors under the (possibly mutated) readiness rule.
			buf = buf[:0]
			for w := 0; w < m.workers; w++ {
				if s.active[w] != idle {
					n := s
					n.active[w] = idle
					buf = append(buf, n)
					if opts.Retry {
						// Rollback: the attempt fails, the write-set is
						// restored, and the worker stands before the same
						// task again. The restored state must be (and is)
						// a previously reachable one — the model has no
						// memory of the failed attempt, which is exactly
						// the write-set-rollback guarantee. Only a task
						// from the worker's own queue rolls back to a
						// queue position; a *stolen* task is retried in
						// place by the thief (write-set restore, same
						// executor), which is a model stutter — no
						// transition.
						if p := int(s.pos[w]); p > 0 && m.owned[w][p-1] == s.active[w] {
							r := s
							r.active[w] = idle
							r.pos[w]--
							buf = append(buf, r)
						}
					}
					continue
				}
				p := int(s.pos[w])
				if p >= len(m.owned[w]) {
					continue
				}
				t := int(m.owned[w][p])
				if !ready(t, terminated) {
					continue
				}
				// Refinement, step part: the executed task must be
				// ready under the *STF* rules too.
				if !m.taskReady(t, terminated) {
					res.violate("RIO: step executes task %d not ready under STF semantics", t)
				}
				n := s
				n.pos[w] = uint8(p + 1)
				n.active[w] = int8(t)
				buf = append(buf, n)
			}
			if stealing {
				// Steal transitions: an idle thief takes any victim's
				// next unexecuted task if it is ready. The victim's
				// position advances (the owner will skip the claimed
				// slot, declaring as if it had run the task) while the
				// task executes in the thief's register — so the race
				// and refinement invariants above inspect exactly the
				// states the hybrid engine can reach.
				for w := 0; w < m.workers; w++ {
					if s.active[w] != idle {
						continue
					}
					for v := 0; v < m.workers; v++ {
						if v == w {
							continue
						}
						p := int(s.pos[v])
						if p >= len(m.owned[v]) {
							continue
						}
						t := int(m.owned[v][p])
						if stealBlockers[t]&^terminated != 0 {
							continue
						}
						// Refinement, step part: a stolen execution must
						// be ready under the *STF* rules like any other.
						if !m.taskReady(t, terminated) {
							res.violate("RIO: steal executes task %d not ready under STF semantics", t)
						}
						n := s
						n.pos[v] = uint8(p + 1)
						n.active[w] = int8(t)
						buf = append(buf, n)
					}
				}
			}
			res.Generated += int64(len(buf))
			if len(buf) == 0 {
				res.violate("RIO: deadlock in state pos=%v active=%v", s.pos, s.active)
			}
			for _, n := range buf {
				if _, ok := seen[n]; ok {
					continue
				}
				seen[n] = struct{}{}
				res.Distinct++
				next = append(next, n)
			}
		}
		frontier = next
		if len(frontier) > 0 {
			res.Depth++
		}
	}
	if !terminatedReachable {
		res.violate("RIO: Terminated state unreachable")
	}
	return res
}

// unsoundBlockers drops read→write ordering: a writer no longer waits for
// earlier readers (only for earlier writers). Mirrors omitting lines 19–20
// of Algorithm 2.
func (m *Model) unsoundBlockers() []uint64 {
	n := len(m.graph.Tasks)
	out := make([]uint64, n)
	for t := 0; t < n; t++ {
		for u := 0; u < t; u++ {
			if m.blocksUnsound(u, t) {
				out[t] |= 1 << uint(u)
			}
		}
	}
	return out
}

func (m *Model) blocksUnsound(u, t int) bool {
	for _, at := range m.graph.Tasks[t].Accesses {
		for _, au := range m.graph.Tasks[u].Accesses {
			if at.Data != au.Data {
				continue
			}
			if au.Mode.Writes() {
				return true // reads and writes still wait for earlier writes
			}
			// earlier read, t writes: unsoundly ignored
		}
	}
	return false
}
