package spec_test

import (
	"testing"

	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/spec"
	"rio/internal/stf"
)

func TestSampleSTFOnLargeInstance(t *testing.T) {
	// LU 4×4 has 30 tasks — exhaustive STF enumeration is out of reach,
	// sampling is not.
	g := graphs.LURect(4, 4)
	m := mustModel(t, g, 2, sched.Cyclic(2))
	res := m.SampleSTF(200, 1)
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Every run of n tasks takes exactly 2n steps (execute + terminate
	// each task once).
	if res.Depth != 2*len(g.Tasks) {
		t.Errorf("depth = %d, want %d", res.Depth, 2*len(g.Tasks))
	}
	if res.Generated != int64(200*2*len(g.Tasks)) {
		t.Errorf("generated = %d, want %d", res.Generated, 200*2*len(g.Tasks))
	}
	if res.Distinct < int64(2*len(g.Tasks)) {
		t.Errorf("suspiciously few distinct states: %d", res.Distinct)
	}
}

func TestSampleRIOOnLargeInstance(t *testing.T) {
	g := graphs.LURect(4, 4)
	for _, workers := range []int{2, 3, 4} {
		m := mustModel(t, g, workers, sched.Cyclic(workers))
		res := m.SampleRIO(200, 7, spec.RIOOptions{})
		if !res.OK() {
			t.Fatalf("workers=%d: %v", workers, res.Violations)
		}
		if res.Depth != 2*len(g.Tasks) {
			t.Errorf("workers=%d: depth = %d, want %d", workers, res.Depth, 2*len(g.Tasks))
		}
	}
}

func TestSampleAgreesWithExhaustiveOnSmallInstance(t *testing.T) {
	// With enough runs on a tiny instance, sampling should discover the
	// full state space found by BFS.
	g := graphs.LURect(2, 2)
	m := mustModel(t, g, 2, sched.Cyclic(2))
	exact := m.CheckRIO(spec.RIOOptions{SkipRefinement: true})
	sampled := m.SampleRIO(3000, 3, spec.RIOOptions{})
	if !sampled.OK() {
		t.Fatalf("violations: %v", sampled.Violations)
	}
	if sampled.Distinct != exact.Distinct {
		t.Errorf("sampled %d distinct states, exhaustive found %d", sampled.Distinct, exact.Distinct)
	}
}

func TestSampleCatchesUnsoundMutation(t *testing.T) {
	// The WAR-hazard flow: with the read→write wait dropped, random walks
	// must hit the violation quickly.
	g := stf.NewGraph("war", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.SampleRIO(100, 5, spec.RIOOptions{}); !res.OK() {
		t.Fatalf("sound model failed: %v", res.Violations)
	}
	res := m.SampleRIO(100, 5, spec.RIOOptions{SkipReadBlockers: true})
	if res.OK() {
		t.Error("sampling missed the unsound mutation on 100 runs of a 2-task flow")
	}
}

func TestSampleRIONoMapping(t *testing.T) {
	g := graphs.Independent(2)
	m := mustModel(t, g, 2, nil)
	if res := m.SampleRIO(10, 1, spec.RIOOptions{}); res.OK() {
		t.Error("SampleRIO without mapping succeeded")
	}
}

func TestSampleDeterministicInSeed(t *testing.T) {
	g := graphs.LURect(3, 2)
	m := mustModel(t, g, 2, sched.Cyclic(2))
	a := m.SampleRIO(50, 11, spec.RIOOptions{})
	b := m.SampleRIO(50, 11, spec.RIOOptions{})
	if a.Generated != b.Generated || a.Distinct != b.Distinct {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}
