// Package spec is the executable counterpart of the paper's formal
// specification (§4 and Appendix B): an explicit-state model checker for
// the STF programming model and the Run-In-Order execution model.
//
// The paper writes both models in TLA+ and checks them with TLC on tiled-LU
// task flows (Table 1). This package implements the same two transition
// systems directly in Go:
//
//   - the STF module (stf.go) describes *all* sequentially consistent
//     executions of a task flow by any set of workers, and is checked for
//     data-race freedom and deadlock-freedom (which, over a finite acyclic
//     task flow with weak fairness, implies the paper's termination
//     property);
//   - the Run-In-Order module (rio.go) restricts executions to a static
//     mapping with per-worker in-order execution, and is checked to
//     *refine* the STF module: every reachable RIO state projects onto a
//     reachable STF state and every RIO execution step is a legal STF step.
//
// States are encoded compactly (task bitsets + worker registers) so that
// breadth-first enumeration of all interleavings is exact; like TLC, the
// checker reports generated and distinct state counts.
package spec

import (
	"fmt"
	"math/bits"

	"rio/internal/stf"
)

// MaxTasks bounds the task-flow size a model can hold (task sets are
// uint64 bitsets, as in the paper only very small instances are checkable
// before combinatorial explosion).
const MaxTasks = 64

// MaxWorkers bounds the worker count of a model.
const MaxWorkers = 4

// idle marks a worker without an active task.
const idle = int8(-1)

// Model is a finite instance of the specification: a task flow, a worker
// count, and (for the Run-In-Order module) a static mapping.
type Model struct {
	graph   *stf.Graph
	workers int
	mapping stf.Mapping

	// blockers[t] is the set of tasks t' < t that must have terminated
	// before t may start (the ReadReady/WriteReady conditions of the
	// TLA+ spec, folded into one precomputed bitset per task):
	// for a read of d, all earlier writers of d; for a write of d, all
	// earlier accessors of d.
	blockers []uint64
	// conflict[t] is the set of tasks conflicting with t (shared data
	// with at least one write) — the DataRaceFreedom invariant.
	conflict []uint64
	// owned[w] lists the tasks mapped to worker w, in task-flow order.
	owned [][]int8
	// ownedPrefix[w][p] is the bitset of w's first p owned tasks.
	ownedPrefix [][]uint64
	all         uint64
}

// NewModel builds a model instance. The mapping may be nil for STF-only
// checking; it is required by CheckRIO.
func NewModel(g *stf.Graph, workers int, mapping stf.Mapping) (*Model, error) {
	n := len(g.Tasks)
	if n == 0 || n > MaxTasks {
		return nil, fmt.Errorf("spec: task count %d outside [1,%d]", n, MaxTasks)
	}
	if workers < 1 || workers > MaxWorkers {
		return nil, fmt.Errorf("spec: worker count %d outside [1,%d]", workers, MaxWorkers)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for i := range g.Tasks {
		for _, a := range g.Tasks[i].Accesses {
			if a.Mode.Commutes() {
				return nil, fmt.Errorf("spec: task %d uses a Reduction access; the formal model covers the strict R/W protocol only", i)
			}
		}
	}
	m := &Model{graph: g, workers: workers, mapping: mapping}
	m.all = allMask(n)
	m.blockers = make([]uint64, n)
	m.conflict = make([]uint64, n)
	for t := 0; t < n; t++ {
		for u := 0; u < n; u++ {
			if u == t {
				continue
			}
			if !stf.ConflictFree(&g.Tasks[t], &g.Tasks[u]) {
				m.conflict[t] |= 1 << u
				if u < t {
					if m.blocks(u, t) {
						m.blockers[t] |= 1 << u
					}
				}
			}
		}
	}
	if mapping != nil {
		m.owned = make([][]int8, workers)
		m.ownedPrefix = make([][]uint64, workers)
		for t := 0; t < n; t++ {
			w := mapping(stf.TaskID(t))
			if w < 0 || int(w) >= workers {
				return nil, fmt.Errorf("spec: mapping(%d) = %d out of range", t, w)
			}
			m.owned[w] = append(m.owned[w], int8(t))
		}
		for w := 0; w < workers; w++ {
			pre := make([]uint64, len(m.owned[w])+1)
			for p, t := range m.owned[w] {
				pre[p+1] = pre[p] | 1<<uint(t)
			}
			m.ownedPrefix[w] = pre
		}
	}
	return m, nil
}

// blocks reports whether task u (u < t) must terminate before t can start,
// per the STF readiness rules: t reading d waits for earlier writers of d;
// t writing d waits for all earlier accessors of d.
func (m *Model) blocks(u, t int) bool {
	for _, at := range m.graph.Tasks[t].Accesses {
		for _, au := range m.graph.Tasks[u].Accesses {
			if at.Data != au.Data {
				continue
			}
			if at.Mode.Writes() {
				return true // write waits for any earlier access
			}
			if au.Mode.Writes() {
				return true // read waits for earlier writes
			}
		}
	}
	return false
}

// taskReady evaluates the TaskReady predicate: every blocker of t is in the
// terminated set.
func (m *Model) taskReady(t int, terminated uint64) bool {
	return m.blockers[t]&^terminated == 0
}

func allMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// Result reports a model-checking run, mirroring the columns of the
// paper's Table 1 plus the verified properties.
type Result struct {
	// Generated counts state transitions explored (successor states
	// produced, including rediscoveries of known states).
	Generated int64
	// Distinct counts unique reachable states.
	Distinct int64
	// Depth is the BFS depth of the state graph (longest shortest path).
	Depth int
	// Violations lists property violations found (empty means the model
	// checked out).
	Violations []string
}

// OK reports whether no property was violated.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

func (r *Result) violate(format string, args ...any) {
	if len(r.Violations) < 16 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// activeBits returns the bitset of tasks held by busy workers and whether
// any pair of active tasks violates data-race freedom.
func (m *Model) activeBits(active *[MaxWorkers]int8) (uint64, bool) {
	var bitsSet uint64
	race := false
	for w := 0; w < m.workers; w++ {
		t := active[w]
		if t == idle {
			continue
		}
		if m.conflict[t]&bitsSet != 0 {
			race = true
		}
		bitsSet |= 1 << uint(t)
	}
	return bitsSet, race
}

// popcount wraps bits.OnesCount64 for readability at call sites.
func popcount(x uint64) int { return bits.OnesCount64(x) }
