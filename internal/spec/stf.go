package spec

// The STF module (paper Appendix B.1): states are (pendingTasks,
// workerStates); transitions are ExecuteTask (an idle worker starts a
// ready pending task) and TerminateTask (a busy worker finishes). The
// checker enumerates every reachable state and verifies:
//
//   - DataRaceFreedom — no two concurrently active tasks conflict;
//   - deadlock-freedom — every non-terminated state has a successor, which
//     together with weak fairness gives the paper's ◇Terminated property;
//   - the Terminated state (pending ∪ active = ∅) is reachable.

// stfState is one state of the STF transition system. Workers are
// symmetric in the STF spec but states are distinguished per worker
// assignment, exactly as TLC distinguishes them.
type stfState struct {
	pending uint64
	active  [MaxWorkers]int8
}

func (m *Model) stfInit() stfState {
	s := stfState{pending: m.all}
	for w := range s.active {
		s.active[w] = idle
	}
	return s
}

// stfSuccessors appends every Next-step successor of s to buf.
func (m *Model) stfSuccessors(s stfState, buf []stfState) []stfState {
	activeBits, _ := m.activeBits(&s.active)
	terminated := m.all &^ s.pending &^ activeBits
	for w := 0; w < m.workers; w++ {
		if s.active[w] != idle {
			// TerminateTask(w)
			n := s
			n.active[w] = idle
			buf = append(buf, n)
			continue
		}
		// ExecuteTask(w, t) for every ready pending task t.
		rest := s.pending
		for rest != 0 {
			t := trailingTask(rest)
			rest &= rest - 1
			if !m.taskReady(t, terminated) {
				continue
			}
			n := s
			n.pending &^= 1 << uint(t)
			n.active[w] = int8(t)
			buf = append(buf, n)
		}
	}
	return buf
}

// CheckSTF exhaustively explores the STF model and verifies its invariants.
func (m *Model) CheckSTF() *Result {
	res := &Result{}
	init := m.stfInit()
	seen := map[stfState]struct{}{init: {}}
	frontier := []stfState{init}
	res.Distinct = 1
	var buf []stfState
	terminatedReachable := false
	for len(frontier) > 0 {
		var next []stfState
		for _, s := range frontier {
			activeBits, race := m.activeBits(&s.active)
			if race {
				res.violate("STF: data race in state pending=%#x active=%v", s.pending, s.active)
			}
			if s.pending == 0 && activeBits == 0 {
				terminatedReachable = true
				continue // terminal state
			}
			buf = m.stfSuccessors(s, buf[:0])
			res.Generated += int64(len(buf))
			if len(buf) == 0 {
				res.violate("STF: deadlock in state pending=%#x active=%v", s.pending, s.active)
			}
			for _, n := range buf {
				if _, ok := seen[n]; ok {
					continue
				}
				seen[n] = struct{}{}
				res.Distinct++
				next = append(next, n)
			}
		}
		frontier = next
		if len(frontier) > 0 {
			res.Depth++
		}
	}
	if !terminatedReachable {
		res.violate("STF: Terminated state unreachable")
	}
	return res
}

// stfReachable returns the set of all reachable STF states (used by the
// refinement check of the Run-In-Order module).
func (m *Model) stfReachable() map[stfState]struct{} {
	init := m.stfInit()
	seen := map[stfState]struct{}{init: {}}
	frontier := []stfState{init}
	var buf []stfState
	for len(frontier) > 0 {
		var next []stfState
		for _, s := range frontier {
			buf = m.stfSuccessors(s, buf[:0])
			for _, n := range buf {
				if _, ok := seen[n]; ok {
					continue
				}
				seen[n] = struct{}{}
				next = append(next, n)
			}
		}
		frontier = next
	}
	return seen
}

// trailingTask returns the index of the lowest set bit.
func trailingTask(x uint64) int {
	return popcount((x & -x) - 1)
}
