package spec

import (
	"fmt"
	"time"

	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/stf"
)

// Table1Row is one line of the paper's Table 1: model-checking statistics
// for the STF and Run-In-Order models on a tiled-LU task flow.
type Table1Row struct {
	// Rows and Cols give the LU tile-grid size (2×2, 3×2, 3×3 in the
	// paper).
	Rows, Cols int
	// Name overrides the RxC label for non-LU workloads.
	Name string
	// Tasks is the number of tasks of the instance.
	Tasks int
	// STF and RIO hold the checking results of each model.
	STF, RIO *Result
	// STFTime and RIOTime are the wall-clock checking times.
	STFTime, RIOTime time.Duration
}

// Size renders the instance as in the paper ("3x2"), or the workload name
// for non-LU instances.
func (r Table1Row) Size() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("%dx%d", r.Rows, r.Cols)
}

// Table1 reproduces the paper's Table 1: for each LU tile-grid size, check
// the STF model and the Run-In-Order model (with workers workers and a
// cyclic mapping, matching the paper's two-worker setup) and report state
// counts and times.
func Table1(sizes [][2]int, workers int) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(sizes))
	for _, sz := range sizes {
		g := graphs.LURect(sz[0], sz[1])
		row, err := CheckPair(g, workers, sched.Cyclic(workers))
		if err != nil {
			return nil, fmt.Errorf("spec: %dx%d: %w", sz[0], sz[1], err)
		}
		row.Rows, row.Cols = sz[0], sz[1]
		rows = append(rows, row)
	}
	return rows, nil
}

// CheckPair checks both the STF and the Run-In-Order models of one task
// flow under one mapping — Table 1's procedure generalized to arbitrary
// workloads (the paper only model-checks LU; nothing in the method is
// LU-specific).
func CheckPair(g *stf.Graph, workers int, mapping stf.Mapping) (Table1Row, error) {
	m, err := NewModel(g, workers, mapping)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{Tasks: len(g.Tasks)}
	t0 := time.Now()
	row.STF = m.CheckSTF()
	row.STFTime = time.Since(t0)
	t0 = time.Now()
	row.RIO = m.CheckRIO(RIOOptions{})
	row.RIOTime = time.Since(t0)
	return row, nil
}
