package spec_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rio/internal/enginetest"
	"rio/internal/graphs"
	"rio/internal/sched"
	"rio/internal/spec"
	"rio/internal/stf"
)

func mustModel(t testing.TB, g *stf.Graph, workers int, m stf.Mapping) *spec.Model {
	t.Helper()
	mod, err := spec.NewModel(g, workers, m)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return mod
}

func TestNewModelValidation(t *testing.T) {
	g := graphs.Independent(3)
	if _, err := spec.NewModel(g, 0, nil); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := spec.NewModel(g, spec.MaxWorkers+1, nil); err == nil {
		t.Error("too many workers accepted")
	}
	if _, err := spec.NewModel(graphs.Independent(spec.MaxTasks+1), 2, nil); err == nil {
		t.Error("too many tasks accepted")
	}
	if _, err := spec.NewModel(stf.NewGraph("empty", 0), 2, nil); err == nil {
		t.Error("empty graph accepted")
	}
	bad := func(stf.TaskID) stf.WorkerID { return 9 }
	if _, err := spec.NewModel(g, 2, bad); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

// Hand-computable instance: a single task, one worker.
// STF states: {pending={0}, idle}, {pending={}, active=0}, {pending={}, idle}.
func TestSTFSingleTaskStateCount(t *testing.T) {
	g := stf.NewGraph("one", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	m := mustModel(t, g, 1, nil)
	res := m.CheckSTF()
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Distinct != 3 {
		t.Errorf("distinct = %d, want 3", res.Distinct)
	}
	if res.Generated != 2 {
		t.Errorf("generated = %d, want 2", res.Generated)
	}
	if res.Depth != 2 {
		t.Errorf("depth = %d, want 2", res.Depth)
	}
}

// Two independent tasks, two workers: states are hand-enumerable.
// Interleavings: each task can be pending, active-on-either-worker, done.
func TestSTFTwoIndependentTasks(t *testing.T) {
	g := stf.NewGraph("two", 2)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.W(1))
	m := mustModel(t, g, 2, nil)
	res := m.CheckSTF()
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Per-task marking: pending / active@w0 / active@w1 / done, with the
	// constraint that a worker holds at most one task. Enumeration gives
	// 4*4 - 2 (both tasks on the same worker, 2 ways) = 14.
	if res.Distinct != 14 {
		t.Errorf("distinct = %d, want 14", res.Distinct)
	}
}

// A two-task write-write chain admits exactly one execution order.
func TestSTFChainFullySerialized(t *testing.T) {
	g := stf.NewGraph("chain", 1)
	g.Add(0, 0, 0, 0, stf.RW(0))
	g.Add(0, 1, 0, 0, stf.RW(0))
	m := mustModel(t, g, 2, nil)
	res := m.CheckSTF()
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	// States: (P={0,1},idle) →w0/w1 active(0) → done(0),P={1} →w0/w1
	// active(1) → all done: 1 + 2 + 1 + 2 + 1 = 7.
	if res.Distinct != 7 {
		t.Errorf("distinct = %d, want 7", res.Distinct)
	}
}

func TestSTFOnLUInstances(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}} {
		g := graphs.LURect(sz[0], sz[1])
		m := mustModel(t, g, 2, nil)
		res := m.CheckSTF()
		if !res.OK() {
			t.Errorf("%dx%d: %v", sz[0], sz[1], res.Violations)
		}
		if res.Distinct <= int64(len(g.Tasks)) {
			t.Errorf("%dx%d: suspiciously few states (%d)", sz[0], sz[1], res.Distinct)
		}
	}
}

func TestRIOOnLUInstances(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}, {3, 3}} {
		g := graphs.LURect(sz[0], sz[1])
		m := mustModel(t, g, 2, sched.Cyclic(2))
		res := m.CheckRIO(spec.RIOOptions{})
		if !res.OK() {
			t.Errorf("%dx%d: %v", sz[0], sz[1], res.Violations)
		}
	}
}

// The fault-tolerance rollback transition (a failed attempt restores its
// write-set and the worker re-executes the task) must preserve every
// invariant: no data race, refinement of STF, and termination still
// reachable. This is the model-level argument that retried runs remain
// sequentially consistent.
func TestRIORetryOnLUInstances(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}} {
		g := graphs.LURect(sz[0], sz[1])
		m := mustModel(t, g, 2, sched.Cyclic(2))
		res := m.CheckRIO(spec.RIOOptions{Retry: true})
		if !res.OK() {
			t.Errorf("%dx%d with retry: %v", sz[0], sz[1], res.Violations)
		}
		// Rollback adds transitions, never states: every post-rollback
		// state was reachable before the failed attempt.
		base := m.CheckRIO(spec.RIOOptions{Retry: false})
		if res.Distinct != base.Distinct {
			t.Errorf("%dx%d: retry changed the state count: %d != %d",
				sz[0], sz[1], res.Distinct, base.Distinct)
		}
		if res.Generated <= base.Generated {
			t.Errorf("%dx%d: retry added no transitions (%d <= %d)",
				sz[0], sz[1], res.Generated, base.Generated)
		}
	}
}

// Negative control: the rollback transition must not mask an unsound
// readiness rule — retry plus the dropped WAR ordering is still caught.
func TestRIORetryDoesNotMaskUnsoundness(t *testing.T) {
	g := stf.NewGraph("war-retry", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.CheckRIO(spec.RIOOptions{Retry: true}); !res.OK() {
		t.Fatalf("sound retry model failed: %v", res.Violations)
	}
	res := m.CheckRIO(spec.RIOOptions{Retry: true, SkipReadBlockers: true})
	if res.OK() {
		t.Error("retry masked the dropped WAR ordering")
	}
}

// The work-stealing transition (an idle worker executes a victim's next
// in-order task when the counter state proves it ready) must preserve
// every invariant: no data race, refinement of STF, and termination still
// reachable. This is the model-level safety argument for Options.Steal.
func TestRIOStealOnLUInstances(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}} {
		g := graphs.LURect(sz[0], sz[1])
		m := mustModel(t, g, 2, sched.Cyclic(2))
		res := m.CheckRIO(spec.RIOOptions{Steal: true})
		if !res.OK() {
			t.Errorf("%dx%d with steal: %v", sz[0], sz[1], res.Violations)
		}
		// Stealing enlarges the reachable space (tasks execute on
		// non-owner workers) but every extra state still refines STF.
		base := m.CheckRIO(spec.RIOOptions{})
		if res.Distinct <= base.Distinct {
			t.Errorf("%dx%d: steal added no states (%d <= %d)",
				sz[0], sz[1], res.Distinct, base.Distinct)
		}
		if res.Generated <= base.Generated {
			t.Errorf("%dx%d: steal added no transitions (%d <= %d)",
				sz[0], sz[1], res.Generated, base.Generated)
		}
	}
}

// Steal composed with the rollback transition: a stolen task that fails is
// retried in place by the thief, an own task rolls back to its queue slot;
// the combination must preserve all invariants.
func TestRIOStealWithRetry(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}} {
		g := graphs.LURect(sz[0], sz[1])
		m := mustModel(t, g, 2, sched.Cyclic(2))
		if res := m.CheckRIO(spec.RIOOptions{Steal: true, Retry: true}); !res.OK() {
			t.Errorf("%dx%d steal+retry: %v", sz[0], sz[1], res.Violations)
		}
	}
}

// Skewed mapping — the case stealing exists for: every task owned by
// worker 0, workers 1..n idle unless they steal. The hybrid model must
// still refine STF, and the thief transitions must actually fire (the
// state space grows).
func TestRIOStealSkewedMapping(t *testing.T) {
	g := graphs.LURect(3, 2)
	m := mustModel(t, g, 3, sched.Single(0))
	base := m.CheckRIO(spec.RIOOptions{})
	if !base.OK() {
		t.Fatalf("skewed base: %v", base.Violations)
	}
	res := m.CheckRIO(spec.RIOOptions{Steal: true})
	if !res.OK() {
		t.Errorf("skewed steal: %v", res.Violations)
	}
	if res.Distinct <= base.Distinct {
		t.Errorf("no thief transition fired: %d <= %d distinct states", res.Distinct, base.Distinct)
	}
}

// Negative control: an unsound steal readiness rule (one that ignores
// earlier readers, as a StealReq.Ready with the read-count comparison
// dropped would) must be caught by the refinement step check on a WAR
// flow — stealing must not open a soundness hole the checker cannot see.
func TestRIOUnsafeStealCaught(t *testing.T) {
	g := stf.NewGraph("war-steal", 1)
	g.Add(0, 0, 0, 0, stf.R(0)) // reader on worker 0
	g.Add(0, 1, 0, 0, stf.W(0)) // writer on worker 1, stealable by worker 0
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.CheckRIO(spec.RIOOptions{Steal: true}); !res.OK() {
		t.Fatalf("sound steal model failed: %v", res.Violations)
	}
	res := m.CheckRIO(spec.RIOOptions{UnsafeSteal: true})
	if res.OK() {
		t.Error("unsound steal readiness not caught")
	}
}

// Negative control: enabling steal must not mask the dropped WAR ordering
// of the base in-order rule either.
func TestRIOStealDoesNotMaskUnsoundness(t *testing.T) {
	g := stf.NewGraph("war-steal-mask", 1)
	g.Add(0, 0, 0, 0, stf.W(0))
	g.Add(0, 1, 0, 0, stf.R(0))
	g.Add(0, 2, 0, 0, stf.W(0))
	m := mustModel(t, g, 2, sched.Cyclic(2))
	res := m.CheckRIO(spec.RIOOptions{Steal: true, SkipReadBlockers: true})
	if res.OK() {
		t.Error("steal masked the dropped read→write ordering")
	}
}

// The sampling checker explores the same steal transitions; the unsound
// steal rule must be caught there as well (random walks on a two-task WAR
// flow hit the bad interleaving almost surely).
func TestRIOSampleSteal(t *testing.T) {
	g := stf.NewGraph("war-sample", 1)
	g.Add(0, 0, 0, 0, stf.R(0))
	g.Add(0, 1, 0, 0, stf.W(0))
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.SampleRIO(200, 1, spec.RIOOptions{Steal: true}); !res.OK() {
		t.Fatalf("sound steal sampling failed: %v", res.Violations)
	}
	if res := m.SampleRIO(200, 1, spec.RIOOptions{UnsafeSteal: true}); res.OK() {
		t.Error("sampling did not catch the unsound steal rule")
	}
}

// Property: for random small task flows and mappings, the hybrid
// steal-enabled model always refines STF — readiness proven from the
// pre-task counter values is executor-independent.
func TestPropertyRIOStealAlwaysRefinesSTF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 8, 4)
		workers := 2 + rng.Intn(2)
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			owners[i] = stf.WorkerID(rng.Intn(workers))
		}
		m, err := spec.NewModel(g, workers, sched.Table(owners))
		if err != nil {
			return false
		}
		return m.CheckRIO(spec.RIOOptions{Steal: true}).OK()
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// The in-order restriction must make the RIO state space (much) smaller
// than the STF one — the paper's Table 1 shows 23 vs 11 distinct states on
// the 2×2 instance, 94 vs 29 on 3×2.
func TestRIOStateSpaceSmallerThanSTF(t *testing.T) {
	for _, sz := range [][2]int{{2, 2}, {3, 2}} {
		g := graphs.LURect(sz[0], sz[1])
		m := mustModel(t, g, 2, sched.Cyclic(2))
		stfRes := m.CheckSTF()
		rioRes := m.CheckRIO(spec.RIOOptions{SkipRefinement: true})
		if rioRes.Distinct >= stfRes.Distinct {
			t.Errorf("%dx%d: RIO states %d >= STF states %d", sz[0], sz[1], rioRes.Distinct, stfRes.Distinct)
		}
	}
}

// Negative control: dropping the "writes wait for earlier reads" rule
// (lines 19–20 of Algorithm 2) must be caught by the checker on a task
// flow with a read-then-write pattern.
func TestUnsoundModelCaught(t *testing.T) {
	g := stf.NewGraph("raw-war", 1)
	g.Add(0, 0, 0, 0, stf.W(0)) // writer
	g.Add(0, 1, 0, 0, stf.R(0)) // reader
	g.Add(0, 2, 0, 0, stf.W(0)) // writer that must wait for the reader
	m := mustModel(t, g, 2, sched.Cyclic(2))
	// Sound model passes.
	if res := m.CheckRIO(spec.RIOOptions{}); !res.OK() {
		t.Fatalf("sound model failed: %v", res.Violations)
	}
	// Unsound mutation must be caught.
	res := m.CheckRIO(spec.RIOOptions{SkipReadBlockers: true})
	if res.OK() {
		t.Error("checker did not catch the dropped read→write ordering")
	}
}

// Note: LU task flows contain no write-after-read hazard at tile
// granularity (every tile's reads follow all its writes and tiles are never
// rewritten afterwards), so the SkipReadBlockers mutation is *invisible* on
// LU — the negative controls must use flows with WAR hazards.
func TestUnsoundModelInvisibleOnLU(t *testing.T) {
	g := graphs.LURect(2, 2)
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.CheckRIO(spec.RIOOptions{SkipReadBlockers: true}); !res.OK() {
		t.Errorf("expected the mutation to be invisible on LU (no WAR hazards), got %v", res.Violations)
	}
}

// A pure WAR hazard (read then write, mapped to different workers) must be
// caught by the step-refinement check even when no racy state is reachable.
func TestUnsoundModelCaughtByRefinementStep(t *testing.T) {
	g := stf.NewGraph("war", 1)
	g.Add(0, 0, 0, 0, stf.R(0)) // reader on worker 0
	g.Add(0, 1, 0, 0, stf.W(0)) // writer on worker 1 must wait for it
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.CheckRIO(spec.RIOOptions{}); !res.OK() {
		t.Fatalf("sound model failed: %v", res.Violations)
	}
	res := m.CheckRIO(spec.RIOOptions{SkipReadBlockers: true})
	if res.OK() {
		t.Error("dropped WAR ordering not caught")
	}
}

// Random-dependency flows (Experiment 2's shape) are full of WAR hazards;
// the mutation must be caught there as well.
func TestUnsoundModelCaughtOnRandomDeps(t *testing.T) {
	g := graphs.RandomDeps(10, 3, 1, 1, 4)
	m := mustModel(t, g, 2, sched.Cyclic(2))
	if res := m.CheckRIO(spec.RIOOptions{}); !res.OK() {
		t.Fatalf("sound model failed: %v", res.Violations)
	}
	res := m.CheckRIO(spec.RIOOptions{SkipReadBlockers: true})
	if res.OK() {
		t.Error("unsound RIO variant passed on a random-dependency flow")
	}
}

func TestRIONoMappingRejected(t *testing.T) {
	g := graphs.Independent(2)
	m := mustModel(t, g, 2, nil)
	if res := m.CheckRIO(spec.RIOOptions{}); res.OK() {
		t.Error("CheckRIO without mapping succeeded")
	}
}

func TestTable1(t *testing.T) {
	rows, err := spec.Table1([][2]int{{2, 2}, {3, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("row count = %d", len(rows))
	}
	if rows[0].Tasks != 5 || rows[1].Tasks != 8 {
		t.Errorf("task counts = %d, %d; want 5, 8", rows[0].Tasks, rows[1].Tasks)
	}
	for _, r := range rows {
		if !r.STF.OK() || !r.RIO.OK() {
			t.Errorf("%s: violations STF=%v RIO=%v", r.Size(), r.STF.Violations, r.RIO.Violations)
		}
		if r.STF.Distinct == 0 || r.RIO.Distinct == 0 {
			t.Errorf("%s: zero states", r.Size())
		}
		// Table 1's qualitative shape: the in-order model explores fewer
		// distinct states.
		if r.RIO.Distinct >= r.STF.Distinct {
			t.Errorf("%s: RIO %d >= STF %d distinct states", r.Size(), r.RIO.Distinct, r.STF.Distinct)
		}
	}
	// Explosive growth with instance size, as in the paper.
	if rows[1].STF.Distinct <= rows[0].STF.Distinct {
		t.Error("state count did not grow with instance size")
	}
}

// Property: for random small task flows and mappings, the sound RIO model
// always checks out (it provably refines STF); this is the model-level
// analogue of the engines' sequential-consistency property tests.
func TestPropertyRIOAlwaysRefinesSTF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 8, 4)
		workers := 1 + rng.Intn(3)
		owners := make([]stf.WorkerID, len(g.Tasks))
		for i := range owners {
			owners[i] = stf.WorkerID(rng.Intn(workers))
		}
		m, err := spec.NewModel(g, workers, sched.Table(owners))
		if err != nil {
			return false
		}
		if res := m.CheckSTF(); !res.OK() {
			return false
		}
		return m.CheckRIO(spec.RIOOptions{}).OK()
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: generated >= distinct-1 (every state beyond the initial one
// was generated at least once), and depth is bounded by 2·tasks.
func TestPropertyCounterSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := enginetest.RandomGraph(rng, 7, 3)
		m, err := spec.NewModel(g, 2, sched.Cyclic(2))
		if err != nil {
			return false
		}
		res := m.CheckSTF()
		if res.Generated < res.Distinct-1 {
			return false
		}
		return res.Depth <= 2*len(g.Tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
