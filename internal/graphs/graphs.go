// Package graphs generates the task flows of the paper's evaluation (§5.1):
//
//	Experiment 1 — independent tasks;
//	Experiment 2 — random dependencies (128 data objects, 2 random reads
//	               and 1 random write per task);
//	Experiment 3 — the tiled matrix-multiplication dependency graph;
//	Experiment 4 — the tiled LU factorization (no pivoting) graph;
//
// plus two extension workloads (tiled Cholesky and a 2-D wavefront) used by
// the examples and ablation benchmarks. Generators produce recorded
// stf.Graphs whose tasks carry kernel selectors and tile coordinates, so
// that replaying them allocates nothing per task.
package graphs

import (
	"math/rand"

	"rio/internal/stf"
)

// Kernel selectors for recorded tasks.
const (
	// KCounter is the synthetic counter kernel (all four experiments
	// substitute it for the real task body, paper §5.1).
	KCounter = iota
	// KGemm is the C += A·B tile product of Experiment 3.
	KGemm
	// KGetrf, KTrsmRow, KTrsmCol, KGemmUpd are the LU tile kernels.
	KGetrf
	KTrsmRow
	KTrsmCol
	KGemmUpd
	// KPotrf, KTrsmChol, KSyrk, KGemmChol are the Cholesky tile kernels.
	KPotrf
	KTrsmChol
	KSyrk
	KGemmChol
	// KWave is the 2-D wavefront cell update.
	KWave
)

// Independent returns Experiment 1's task flow: n tasks with no data
// accesses (hence no dependencies).
func Independent(n int) *stf.Graph {
	g := stf.NewGraph("independent", 0)
	for i := 0; i < n; i++ {
		g.Add(KCounter, i, 0, 0)
	}
	return g
}

// RandomDeps returns Experiment 2's task flow: n tasks, each with reads
// random read dependencies and writes random write dependencies over
// numData data objects, all data distinct within a task. The paper uses
// numData=128, reads=2, writes=1. The generator is deterministic in seed.
func RandomDeps(n, numData, reads, writes int, seed int64) *stf.Graph {
	if reads+writes > numData {
		panic("graphs: reads+writes exceeds numData")
	}
	rng := rand.New(rand.NewSource(seed))
	g := stf.NewGraph("random", numData)
	picked := make([]stf.DataID, 0, reads+writes)
	for i := 0; i < n; i++ {
		picked = picked[:0]
		accesses := make([]stf.Access, 0, reads+writes)
		for len(accesses) < reads {
			d := stf.DataID(rng.Intn(numData))
			if containsData(picked, d) {
				continue
			}
			picked = append(picked, d)
			accesses = append(accesses, stf.R(d))
		}
		for len(accesses) < reads+writes {
			d := stf.DataID(rng.Intn(numData))
			if containsData(picked, d) {
				continue
			}
			picked = append(picked, d)
			accesses = append(accesses, stf.RW(d))
		}
		g.Add(KCounter, i, 0, 0, accesses...)
	}
	return g
}

func containsData(s []stf.DataID, d stf.DataID) bool {
	for _, x := range s {
		if x == d {
			return true
		}
	}
	return false
}

// GEMM returns Experiment 3's task flow: the dependency graph of a tiled
// matrix product C += A·B with nt×nt tiles. Task (i,j,k) reads A(i,k) and
// B(k,j) and updates C(i,j); the k-loop is innermost so each C tile's
// accumulation chain is contiguous in the flow, which is the natural
// submission order for an owner-computes mapping of C tiles.
//
// Data IDs: A(i,k) = i·nt+k; B(k,j) = nt²+k·nt+j; C(i,j) = 2·nt²+i·nt+j.
func GEMM(nt int) *stf.Graph {
	g := stf.NewGraph("gemm", 3*nt*nt)
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			for k := 0; k < nt; k++ {
				g.Add(KGemm, i, j, k,
					stf.R(AData(nt, i, k)),
					stf.R(BData(nt, k, j)),
					stf.RW(CData(nt, i, j)))
			}
		}
	}
	return g
}

// AData, BData and CData return the data IDs of the GEMM operand tiles.
func AData(nt, i, k int) stf.DataID { return stf.DataID(i*nt + k) }

// BData returns the data ID of tile B(k, j) in a GEMM graph.
func BData(nt, k, j int) stf.DataID { return stf.DataID(nt*nt + k*nt + j) }

// CData returns the data ID of tile C(i, j) in a GEMM graph.
func CData(nt, i, j int) stf.DataID { return stf.DataID(2*nt*nt + i*nt + j) }

// TileData returns the data ID of tile (i, j) of the single matrix used by
// the LU, Cholesky and wavefront graphs.
func TileData(nt, i, j int) stf.DataID { return stf.DataID(i*nt + j) }

// LU returns Experiment 4's task flow: the right-looking tiled LU
// factorization without pivoting on an nt×nt tile grid. For each step k:
// Getrf on tile (k,k); row and column panel solves; then the trailing
// Schur-complement updates.
func LU(nt int) *stf.Graph {
	g := stf.NewGraph("lu", nt*nt)
	for k := 0; k < nt; k++ {
		g.Add(KGetrf, k, k, k, stf.RW(TileData(nt, k, k)))
		for j := k + 1; j < nt; j++ {
			g.Add(KTrsmRow, k, j, k, stf.R(TileData(nt, k, k)), stf.RW(TileData(nt, k, j)))
		}
		for i := k + 1; i < nt; i++ {
			g.Add(KTrsmCol, i, k, k, stf.R(TileData(nt, k, k)), stf.RW(TileData(nt, i, k)))
		}
		for i := k + 1; i < nt; i++ {
			for j := k + 1; j < nt; j++ {
				g.Add(KGemmUpd, i, j, k,
					stf.R(TileData(nt, i, k)),
					stf.R(TileData(nt, k, j)),
					stf.RW(TileData(nt, i, j)))
			}
		}
	}
	return g
}

// LURect returns the tiled LU task flow on a rectangular rows×cols tile
// grid — the shape used by the paper's model-checking case study (Table 1
// checks 2×2, 3×2 and 3×3 grids). Tile (i,j) has data ID i·cols+j.
func LURect(rows, cols int) *stf.Graph {
	g := stf.NewGraph("lu-rect", rows*cols)
	tile := func(i, j int) stf.DataID { return stf.DataID(i*cols + j) }
	steps := rows
	if cols < rows {
		steps = cols
	}
	for k := 0; k < steps; k++ {
		g.Add(KGetrf, k, k, k, stf.RW(tile(k, k)))
		for j := k + 1; j < cols; j++ {
			g.Add(KTrsmRow, k, j, k, stf.R(tile(k, k)), stf.RW(tile(k, j)))
		}
		for i := k + 1; i < rows; i++ {
			g.Add(KTrsmCol, i, k, k, stf.R(tile(k, k)), stf.RW(tile(i, k)))
		}
		for i := k + 1; i < rows; i++ {
			for j := k + 1; j < cols; j++ {
				g.Add(KGemmUpd, i, j, k,
					stf.R(tile(i, k)),
					stf.R(tile(k, j)),
					stf.RW(tile(i, j)))
			}
		}
	}
	return g
}

// LUTaskCount returns the number of tasks of LU(nt):
// Σ_{k=0}^{nt-1} 1 + 2(nt-1-k) + (nt-1-k)².
func LUTaskCount(nt int) int {
	n := 0
	for k := 0; k < nt; k++ {
		r := nt - 1 - k
		n += 1 + 2*r + r*r
	}
	return n
}

// Cholesky returns the right-looking tiled Cholesky task flow (extension
// workload) on an nt×nt tile grid, lower-triangular storage.
func Cholesky(nt int) *stf.Graph {
	g := stf.NewGraph("cholesky", nt*nt)
	for k := 0; k < nt; k++ {
		g.Add(KPotrf, k, k, k, stf.RW(TileData(nt, k, k)))
		for i := k + 1; i < nt; i++ {
			g.Add(KTrsmChol, i, k, k, stf.R(TileData(nt, k, k)), stf.RW(TileData(nt, i, k)))
		}
		for i := k + 1; i < nt; i++ {
			g.Add(KSyrk, i, i, k, stf.R(TileData(nt, i, k)), stf.RW(TileData(nt, i, i)))
			for j := k + 1; j < i; j++ {
				g.Add(KGemmChol, i, j, k,
					stf.R(TileData(nt, i, k)),
					stf.R(TileData(nt, j, k)),
					stf.RW(TileData(nt, i, j)))
			}
		}
	}
	return g
}

// Chain returns n tasks all read-writing one data object — the fully
// serialized task flow (useful as a pipelining worst case and in tests).
func Chain(n int) *stf.Graph {
	g := stf.NewGraph("chain", 1)
	for i := 0; i < n; i++ {
		g.Add(KCounter, i, 0, 0, stf.RW(stf.DataID(0)))
	}
	return g
}

// ReadersWriter returns the high-contention synchronization microbenchmark
// (the `rio-bench sync` ablation): rounds of one writer followed by readers
// parallel reads, all on a single data object. Every reader of a round
// blocks on the round's write and every write blocks on the previous
// round's reads, so the whole flow is dependency hand-offs through one
// shared cell — the worst case for the wait path, with no computation to
// hide it. With a cyclic mapping the readers land on distinct workers.
func ReadersWriter(rounds, readers int) *stf.Graph {
	g := stf.NewGraph("readers-writer", 1)
	id := 0
	for r := 0; r < rounds; r++ {
		g.Add(KCounter, id, 0, 0, stf.RW(0))
		id++
		for j := 0; j < readers; j++ {
			g.Add(KCounter, id, 0, 0, stf.R(0))
			id++
		}
	}
	return g
}

// ReduceRounds returns the reduction variant of ReadersWriter: rounds of
// one writer followed by reducers commutative reductions on one data
// object. Every reduction's terminate_red publishes on the same shared
// cell, exercising the reduction wake path under contention.
func ReduceRounds(rounds, reducers int) *stf.Graph {
	g := stf.NewGraph("reduce-rounds", 1)
	id := 0
	for r := 0; r < rounds; r++ {
		g.Add(KCounter, id, 0, 0, stf.RW(0))
		id++
		for j := 0; j < reducers; j++ {
			g.Add(KCounter, id, 0, 0, stf.Red(0))
			id++
		}
	}
	return g
}

// TreeReduce returns a binary combining tree over leaves inputs: leaf i
// writes data i; each combine node reads its two children's data and
// writes its own. Depth is ⌈log2(leaves)⌉+1 with parallelism halving per
// level — a shape that rewards depth-first (priority) scheduling.
// Data IDs: one per task, in submission order.
func TreeReduce(leaves int) *stf.Graph {
	if leaves < 1 {
		leaves = 1
	}
	// Count nodes of the full combine tree.
	total := leaves
	for w := leaves; w > 1; w = (w + 1) / 2 {
		total += (w + 1) / 2
	}
	g := stf.NewGraph("tree-reduce", total)
	var level []stf.DataID
	for i := 0; i < leaves; i++ {
		id := g.Add(KCounter, i, 0, 0, stf.W(stf.DataID(len(g.Tasks))))
		level = append(level, stf.DataID(id))
	}
	for len(level) > 1 {
		var next []stf.DataID
		for i := 0; i < len(level); i += 2 {
			out := stf.DataID(len(g.Tasks))
			if i+1 < len(level) {
				g.Add(KCounter, i/2, 0, 0, stf.R(level[i]), stf.R(level[i+1]), stf.W(out))
			} else {
				g.Add(KCounter, i/2, 0, 0, stf.R(level[i]), stf.W(out))
			}
			next = append(next, out)
		}
		level = next
	}
	return g
}

// ForkJoin returns phases bulk-synchronous phases of width independent
// tasks each, separated by a barrier task that reads every task's data of
// the phase and writes a barrier object read by the next phase — the BSP
// shape whose pipelining collapses at the barriers.
// Data IDs: width per-task objects (reused across phases) + 1 barrier.
func ForkJoin(phases, width int) *stf.Graph {
	g := stf.NewGraph("fork-join", width+1)
	barrier := stf.DataID(width)
	for ph := 0; ph < phases; ph++ {
		for i := 0; i < width; i++ {
			if ph == 0 {
				g.Add(KCounter, i, ph, 0, stf.W(stf.DataID(i)))
			} else {
				g.Add(KCounter, i, ph, 0, stf.R(barrier), stf.RW(stf.DataID(i)))
			}
		}
		accesses := make([]stf.Access, 0, width+1)
		for i := 0; i < width; i++ {
			accesses = append(accesses, stf.R(stf.DataID(i)))
		}
		accesses = append(accesses, stf.W(barrier))
		g.Add(KCounter, 0, ph, 1, accesses...)
	}
	return g
}

// Wavefront returns a 2-D wavefront task flow (extension workload) on a
// rows×cols grid: cell (i,j) reads its north and west neighbours and
// updates itself — a pipeline-heavy graph that stresses in-order execution
// when the mapping ignores the diagonal progression.
func Wavefront(rows, cols int) *stf.Graph {
	g := stf.NewGraph("wavefront", rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			accesses := make([]stf.Access, 0, 3)
			if i > 0 {
				accesses = append(accesses, stf.R(stf.DataID((i-1)*cols+j)))
			}
			if j > 0 {
				accesses = append(accesses, stf.R(stf.DataID(i*cols+j-1)))
			}
			accesses = append(accesses, stf.RW(stf.DataID(i*cols+j)))
			g.Add(KWave, i, j, 0, accesses...)
		}
	}
	return g
}
