package graphs

import (
	"math/rand"

	"rio/internal/stf"
)

// Elimination-tree workloads: the task flow of a multifrontal sparse
// Cholesky factorization is a tree — each supernode is factored after all
// its children have contributed their updates. The paper cites the
// proportional-mapping literature (George/Liu/Ng; Pothen/Sun) as the
// standard way to map such trees statically; sched.Proportional implements
// it and this file provides the matching workloads.

// ETree is an elimination tree: node i's parent is Parent[i] (-1 for
// roots); Weight[i] models the node's factorization work (e.g. supernode
// size cubed). Children are implicitly ordered by node index.
type ETree struct {
	Parent []int
	Weight []int
}

// Nodes returns the number of tree nodes.
func (t *ETree) Nodes() int { return len(t.Parent) }

// Children returns the children lists of every node.
func (t *ETree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for i, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// SubtreeWeights returns, for each node, the total weight of its subtree.
// Parents must have larger indices than their children (postorder), which
// all generators here guarantee.
func (t *ETree) SubtreeWeights() []int64 {
	w := make([]int64, len(t.Parent))
	for i := range t.Parent {
		w[i] += int64(t.Weight[i])
		if p := t.Parent[i]; p >= 0 {
			w[p] += w[i]
		}
	}
	return w
}

// BalancedETree builds a complete binary elimination tree with the given
// number of leaves (rounded up to a power of two) and unit weights that
// grow towards the root (as supernodes do in practice): weight = depth+1
// counted from the leaves.
func BalancedETree(leaves int) *ETree {
	if leaves < 1 {
		leaves = 1
	}
	n := 1
	for n < leaves {
		n *= 2
	}
	// Postorder construction level by level.
	var parent []int
	var weight []int
	// level 0: n leaves at indices 0..n-1.
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
		parent = append(parent, -1)
		weight = append(weight, 1)
	}
	depth := 1
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += 2 {
			id := len(parent)
			parent = append(parent, -1)
			weight = append(weight, depth+1)
			parent[cur[i]] = id
			parent[cur[i+1]] = id
			next = append(next, id)
		}
		cur = next
		depth++
	}
	return &ETree{Parent: parent, Weight: weight}
}

// RandomETree builds a random postordered elimination tree of n nodes with
// weights in [1, maxWeight]; each node's parent is a random later node
// (skewed towards nearby indices, giving realistic chains and bushy
// sections).
func RandomETree(n int, maxWeight int, seed int64) *ETree {
	if n < 1 {
		n = 1
	}
	if maxWeight < 1 {
		maxWeight = 1
	}
	rng := rand.New(rand.NewSource(seed))
	t := &ETree{Parent: make([]int, n), Weight: make([]int, n)}
	for i := 0; i < n; i++ {
		t.Weight[i] = 1 + rng.Intn(maxWeight)
		if i == n-1 {
			t.Parent[i] = -1
			continue
		}
		span := n - 1 - i
		if span > 8 && rng.Intn(2) == 0 {
			span = 8 // bias towards nearby parents
		}
		t.Parent[i] = i + 1 + rng.Intn(span)
	}
	return t
}

// ChainETree builds a degenerate tree (one long chain) — the worst case
// for any mapping, fully sequential.
func ChainETree(n int) *ETree {
	if n < 1 {
		n = 1
	}
	t := &ETree{Parent: make([]int, n), Weight: make([]int, n)}
	for i := 0; i < n; i++ {
		t.Weight[i] = 1
		t.Parent[i] = i + 1
	}
	t.Parent[n-1] = -1
	return t
}

// SparseCholesky returns the task flow of a multifrontal factorization
// over t: one task per node, reading each child's frontal data and
// updating its own; submission follows the postorder (children first), the
// natural sparse-solver submission order. Task i's kernel weight is
// carried in Task.K so synthetic kernels can scale work per node.
// Data IDs: one per node.
func SparseCholesky(t *ETree) *stf.Graph {
	n := t.Nodes()
	g := stf.NewGraph("sparse-cholesky", n)
	ch := t.Children()
	for i := 0; i < n; i++ {
		accesses := make([]stf.Access, 0, len(ch[i])+1)
		for _, c := range ch[i] {
			accesses = append(accesses, stf.R(stf.DataID(c)))
		}
		accesses = append(accesses, stf.RW(stf.DataID(i)))
		g.Add(KCounter, i, 0, t.Weight[i], accesses...)
	}
	return g
}
