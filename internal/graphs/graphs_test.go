package graphs_test

import (
	"testing"

	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestAllGeneratorsProduceValidGraphs(t *testing.T) {
	for _, g := range []*stf.Graph{
		graphs.Independent(100),
		graphs.RandomDeps(200, 128, 2, 1, 1),
		graphs.GEMM(5),
		graphs.LU(6),
		graphs.Cholesky(6),
		graphs.Wavefront(7, 5),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestIndependentHasNoDependencies(t *testing.T) {
	g := graphs.Independent(50)
	if len(g.Tasks) != 50 {
		t.Fatalf("task count = %d", len(g.Tasks))
	}
	for id, d := range g.Dependencies() {
		if len(d) != 0 {
			t.Fatalf("task %d has deps %v", id, d)
		}
	}
	_, depth := g.Levels()
	if depth != 1 {
		t.Errorf("depth = %d, want 1", depth)
	}
}

func TestRandomDepsShape(t *testing.T) {
	g := graphs.RandomDeps(300, 128, 2, 1, 42)
	if g.NumData != 128 {
		t.Errorf("NumData = %d", g.NumData)
	}
	for i := range g.Tasks {
		tk := &g.Tasks[i]
		var reads, writes int
		for _, a := range tk.Accesses {
			switch a.Mode {
			case stf.ReadOnly:
				reads++
			case stf.ReadWrite:
				writes++
			default:
				t.Fatalf("task %d: unexpected mode %v", i, a.Mode)
			}
		}
		if reads != 2 || writes != 1 {
			t.Fatalf("task %d has %d reads, %d writes; paper wants 2R+1W", i, reads, writes)
		}
	}
}

func TestRandomDepsDeterministic(t *testing.T) {
	a := graphs.RandomDeps(100, 32, 2, 1, 7)
	b := graphs.RandomDeps(100, 32, 2, 1, 7)
	for i := range a.Tasks {
		for j, acc := range a.Tasks[i].Accesses {
			if b.Tasks[i].Accesses[j] != acc {
				t.Fatalf("same seed produced different graphs at task %d", i)
			}
		}
	}
	c := graphs.RandomDeps(100, 32, 2, 1, 8)
	same := true
	for i := range a.Tasks {
		for j, acc := range a.Tasks[i].Accesses {
			if c.Tasks[i].Accesses[j] != acc {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRandomDepsPanicsOnImpossibleRequest(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for reads+writes > numData")
		}
	}()
	graphs.RandomDeps(10, 2, 2, 1, 1)
}

func TestGEMMStructure(t *testing.T) {
	nt := 4
	g := graphs.GEMM(nt)
	if len(g.Tasks) != nt*nt*nt {
		t.Fatalf("task count = %d, want %d", len(g.Tasks), nt*nt*nt)
	}
	if g.NumData != 3*nt*nt {
		t.Fatalf("NumData = %d, want %d", g.NumData, 3*nt*nt)
	}
	// Each C(i,j) chain has nt tasks forming a serial chain; depth == nt.
	_, depth := g.Levels()
	if depth != nt {
		t.Errorf("depth = %d, want %d", depth, nt)
	}
	// First task of each chain has no deps; subsequent ones depend on the
	// previous accumulation.
	deps := g.Dependencies()
	for id := range g.Tasks {
		tk := &g.Tasks[id]
		if tk.K == 0 && len(deps[id]) != 0 {
			t.Errorf("task %d (k=0) has deps %v", id, deps[id])
		}
		if tk.K > 0 && len(deps[id]) != 1 {
			t.Errorf("task %d (k=%d) has deps %v, want exactly the previous accumulation", id, tk.K, deps[id])
		}
	}
}

func TestGEMMDataIDsDisjoint(t *testing.T) {
	nt := 3
	seen := map[stf.DataID]bool{}
	for i := 0; i < nt; i++ {
		for j := 0; j < nt; j++ {
			for _, d := range []stf.DataID{graphs.AData(nt, i, j), graphs.BData(nt, i, j), graphs.CData(nt, i, j)} {
				if seen[d] {
					t.Fatalf("data ID %d reused", d)
				}
				seen[d] = true
			}
		}
	}
	if len(seen) != 3*nt*nt {
		t.Fatalf("expected %d distinct IDs, got %d", 3*nt*nt, len(seen))
	}
}

func TestLUTaskCount(t *testing.T) {
	for nt := 1; nt <= 8; nt++ {
		g := graphs.LU(nt)
		if len(g.Tasks) != graphs.LUTaskCount(nt) {
			t.Errorf("nt=%d: %d tasks, formula says %d", nt, len(g.Tasks), graphs.LUTaskCount(nt))
		}
	}
	// The model-checking sizes from Table 1's caption: a 2×2 LU has 5
	// tasks, 3×3 has 14.
	if graphs.LUTaskCount(2) != 5 {
		t.Errorf("LUTaskCount(2) = %d, want 5", graphs.LUTaskCount(2))
	}
	if graphs.LUTaskCount(3) != 14 {
		t.Errorf("LUTaskCount(3) = %d, want 14", graphs.LUTaskCount(3))
	}
}

func TestLUStructure(t *testing.T) {
	g := graphs.LU(3)
	deps := g.Dependencies()
	// Task 0 is getrf(0,0) with no deps.
	if g.Tasks[0].Kernel != graphs.KGetrf || len(deps[0]) != 0 {
		t.Errorf("task 0: kernel=%d deps=%v", g.Tasks[0].Kernel, deps[0])
	}
	// Every trsm at step k depends (at least) on that step's getrf.
	for id := range g.Tasks {
		tk := &g.Tasks[id]
		if tk.Kernel == graphs.KTrsmRow || tk.Kernel == graphs.KTrsmCol {
			found := false
			for _, d := range deps[id] {
				if g.Tasks[d].Kernel == graphs.KGetrf && g.Tasks[d].K == tk.K {
					found = true
				}
			}
			if !found {
				t.Errorf("trsm task %d lacks dep on getrf of step %d: %v", id, tk.K, deps[id])
			}
		}
	}
	// Critical path of right-looking LU on nt tiles: getrf→trsm→gemm per
	// step, then next getrf: depth = 3(nt-1)+1.
	_, depth := g.Levels()
	if want := 3*(3-1) + 1; depth != want {
		t.Errorf("depth = %d, want %d", depth, want)
	}
}

func TestCholeskyStructure(t *testing.T) {
	g := graphs.Cholesky(4)
	deps := g.Dependencies()
	if g.Tasks[0].Kernel != graphs.KPotrf || len(deps[0]) != 0 {
		t.Errorf("task 0: kernel=%d deps=%v", g.Tasks[0].Kernel, deps[0])
	}
	// Task count: Σ_k 1 + r + r(r+1)/2 with r = nt-1-k.
	want := 0
	for k := 0; k < 4; k++ {
		r := 4 - 1 - k
		want += 1 + r + r*(r+1)/2
	}
	if len(g.Tasks) != want {
		t.Errorf("task count = %d, want %d", len(g.Tasks), want)
	}
}

func TestChain(t *testing.T) {
	g := graphs.Chain(10)
	_, depth := g.Levels()
	if depth != 10 {
		t.Errorf("chain depth = %d, want 10", depth)
	}
	deps := g.Dependencies()
	for i := 1; i < 10; i++ {
		if len(deps[i]) != 1 || deps[i][0] != stf.TaskID(i-1) {
			t.Fatalf("chain task %d deps = %v", i, deps[i])
		}
	}
}

func TestTreeReduce(t *testing.T) {
	for _, leaves := range []int{1, 2, 3, 8, 13, 32} {
		g := graphs.TreeReduce(leaves)
		if err := g.Validate(); err != nil {
			t.Fatalf("leaves=%d: %v", leaves, err)
		}
		// Exactly one sink (the root).
		succs := g.Successors()
		sinks := 0
		for _, s := range succs {
			if len(s) == 0 {
				sinks++
			}
		}
		if sinks != 1 {
			t.Errorf("leaves=%d: %d sinks, want 1", leaves, sinks)
		}
		// Depth = ceil(log2(leaves)) + 1.
		_, depth := g.Levels()
		want := 1
		for w := leaves; w > 1; w = (w + 1) / 2 {
			want++
		}
		if depth != want {
			t.Errorf("leaves=%d: depth = %d, want %d", leaves, depth, want)
		}
	}
}

func TestForkJoin(t *testing.T) {
	g := graphs.ForkJoin(3, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 3*(4+1) {
		t.Errorf("task count = %d, want 15", len(g.Tasks))
	}
	// Depth: phase0 (1) + barrier (2), then each later phase adds 2.
	_, depth := g.Levels()
	if depth != 2*3 {
		t.Errorf("depth = %d, want 6", depth)
	}
	// The barrier of each phase depends on all width tasks of the phase.
	deps := g.Dependencies()
	if got := deps[4]; len(got) != 4 {
		t.Errorf("first barrier deps = %v, want the 4 phase tasks", got)
	}
}

func TestWavefrontStructure(t *testing.T) {
	g := graphs.Wavefront(4, 5)
	if len(g.Tasks) != 20 {
		t.Fatalf("task count = %d", len(g.Tasks))
	}
	deps := g.Dependencies()
	if len(deps[0]) != 0 {
		t.Errorf("corner cell has deps %v", deps[0])
	}
	// Interior cells depend on north and west cells.
	levels, depth := g.Levels()
	if depth != 4+5-1 {
		t.Errorf("depth = %d, want %d (anti-diagonal count)", depth, 4+5-1)
	}
	for id := range g.Tasks {
		tk := &g.Tasks[id]
		if levels[id] != tk.I+tk.J {
			t.Errorf("cell (%d,%d) at level %d, want %d", tk.I, tk.J, levels[id], tk.I+tk.J)
		}
	}
}
