package graphs_test

import (
	"errors"
	"testing"

	"rio/internal/graphs"
	"rio/internal/kernels"
	"rio/internal/sequential"
	"rio/internal/stf"
)

func runSeq(t *testing.T, g *stf.Graph, k stf.Kernel) {
	t.Helper()
	e := sequential.New(sequential.Options{})
	if err := e.Run(g.NumData, stf.Replay(g, k)); err != nil {
		t.Fatal(err)
	}
}

func TestCounterKernelUsesWorkerCell(t *testing.T) {
	cells := kernels.NewCells(2)
	k := graphs.CounterKernel(cells, 100)
	task := stf.Task{}
	k(&task, 1)
	if *cells.Cell(1) != 99 {
		t.Errorf("cell 1 = %d, want 99", *cells.Cell(1))
	}
	// Negative workers (sequential master) fall back to cell 0.
	k(&task, stf.MasterWorker)
	if *cells.Cell(0) != 99 {
		t.Errorf("cell 0 = %d, want 99", *cells.Cell(0))
	}
}

func TestGEMMKernelComputesProduct(t *testing.T) {
	const nt, b = 3, 4
	n := nt * b
	a, _ := kernels.NewTiled(n, b)
	bm, _ := kernels.NewTiled(n, b)
	c, _ := kernels.NewTiled(n, b)
	kernels.DiagDominant(a, 1)
	kernels.DiagDominant(bm, 2)
	want := make([]float64, n*n)
	kernels.MatMulDense(want, a.ToDense(), bm.ToDense(), n)

	g := graphs.GEMM(nt)
	runSeq(t, g, graphs.GEMMKernel(a, bm, c))
	if d := kernels.MaxAbsDiff(c.ToDense(), want); d > 1e-10 {
		t.Errorf("GEMM kernel binding wrong by %v", d)
	}
}

func TestLUKernelFactors(t *testing.T) {
	const nt, b = 3, 4
	m, _ := kernels.NewTiled(nt*b, b)
	kernels.DiagDominant(m, 3)
	orig := m.ToDense()
	var sink graphs.ErrSink
	runSeq(t, graphs.LU(nt), graphs.LUKernel(m, &sink))
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	if d := kernels.MaxAbsDiff(kernels.LUReconstruct(m), orig); d > 1e-9 {
		t.Errorf("LU kernel binding wrong by %v", d)
	}
}

func TestLUKernelReportsUnknownKernel(t *testing.T) {
	m, _ := kernels.NewTiled(4, 4)
	var sink graphs.ErrSink
	k := graphs.LUKernel(m, &sink)
	k(&stf.Task{Kernel: 999}, 0)
	if sink.Err() == nil {
		t.Error("unknown kernel not reported")
	}
}

func TestCholeskyKernelFactors(t *testing.T) {
	const nt, b = 3, 4
	m, _ := kernels.NewTiled(nt*b, b)
	kernels.SPDMatrix(m, 4)
	orig := m.ToDense()
	var sink graphs.ErrSink
	runSeq(t, graphs.Cholesky(nt), graphs.CholeskyKernel(m, &sink))
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	if d := kernels.MaxAbsDiff(kernels.CholReconstruct(m), orig); d > 1e-9 {
		t.Errorf("Cholesky kernel binding wrong by %v", d)
	}
}

func TestCholeskyKernelReportsUnknownKernel(t *testing.T) {
	m, _ := kernels.NewTiled(4, 4)
	var sink graphs.ErrSink
	graphs.CholeskyKernel(m, &sink)(&stf.Task{Kernel: 999}, 0)
	if sink.Err() == nil {
		t.Error("unknown kernel not reported")
	}
}

func TestWavefrontKernelSmooths(t *testing.T) {
	const rows, cols = 3, 3
	vals := make([]float64, rows*cols)
	for i := range vals {
		vals[i] = 1
	}
	runSeq(t, graphs.Wavefront(rows, cols), graphs.WavefrontKernel(vals, cols))
	// Corner (0,0) unchanged; (0,1) = 1 + 0.5·(0,0) = 1.5; (1,1) gets
	// both neighbours: 1 + 0.5·1.5 + 0.5·1.5 = 2.5.
	if vals[0] != 1 {
		t.Errorf("corner = %v", vals[0])
	}
	if vals[1] != 1.5 {
		t.Errorf("(0,1) = %v, want 1.5", vals[1])
	}
	if vals[cols+1] != 2.5 {
		t.Errorf("(1,1) = %v, want 2.5", vals[cols+1])
	}
}

func TestErrSinkKeepsFirstError(t *testing.T) {
	var s graphs.ErrSink
	s.Report(nil)
	if s.Err() != nil {
		t.Error("nil error recorded")
	}
	first := errors.New("first")
	s.Report(first)
	s.Report(errors.New("second"))
	if s.Err() != first {
		t.Errorf("Err() = %v, want the first error", s.Err())
	}
}
