package graphs

import (
	"fmt"
	"sync"

	"rio/internal/kernels"
	"rio/internal/stf"
)

// CounterKernel returns the kernel used by the paper's evaluation: every
// task spins a per-worker private counter for size iterations, regardless
// of the task graph shape (§5.1 — "the four experiments correspond to the
// actual task graphs of the considered test cases but the tasks themselves
// are synthetically generated"). cells must have one cell per worker that
// can execute tasks; stf.MasterWorker uses cell 0 (sequential engine).
func CounterKernel(cells *kernels.Cells, size uint64) stf.Kernel {
	return func(t *stf.Task, w stf.WorkerID) {
		idx := int(w)
		if idx < 0 {
			idx = 0
		}
		kernels.Spin(cells.Cell(idx), size)
	}
}

// ErrSink collects the first error reported by a numeric kernel (kernels
// run as tasks and cannot return errors through the Submitter).
type ErrSink struct {
	once sync.Once
	err  error
}

// Report records err if it is the first one.
func (e *ErrSink) Report(err error) {
	if err != nil {
		e.once.Do(func() { e.err = err })
	}
}

// Err returns the first recorded error, if any.
func (e *ErrSink) Err() error { return e.err }

// GEMMKernel binds the Experiment 3 graph to real tile products computing
// C += A·B on tiled matrices.
func GEMMKernel(a, b, c *kernels.Tiled) stf.Kernel {
	return func(t *stf.Task, _ stf.WorkerID) {
		kernels.GemmTile(c.Tile(t.I, t.J), a.Tile(t.I, t.K), b.Tile(t.K, t.J), c.B)
	}
}

// LUKernel binds the Experiment 4 graph to real tile kernels factoring m in
// place (LU without pivoting). Zero pivots are reported to sink.
func LUKernel(m *kernels.Tiled, sink *ErrSink) stf.Kernel {
	return func(t *stf.Task, _ stf.WorkerID) {
		switch t.Kernel {
		case KGetrf:
			sink.Report(kernels.Getrf(m.Tile(t.I, t.J), m.B))
		case KTrsmRow:
			kernels.TrsmLowerLeft(m.Tile(t.K, t.K), m.Tile(t.I, t.J), m.B)
		case KTrsmCol:
			kernels.TrsmUpperRight(m.Tile(t.K, t.K), m.Tile(t.I, t.J), m.B)
		case KGemmUpd:
			kernels.GemmSubTile(m.Tile(t.I, t.J), m.Tile(t.I, t.K), m.Tile(t.K, t.J), m.B)
		default:
			sink.Report(fmt.Errorf("graphs: unexpected kernel %d in LU flow", t.Kernel))
		}
	}
}

// CholeskyKernel binds the Cholesky graph to real tile kernels factoring m
// (SPD, lower storage) in place. Non-SPD pivots are reported to sink.
func CholeskyKernel(m *kernels.Tiled, sink *ErrSink) stf.Kernel {
	return func(t *stf.Task, _ stf.WorkerID) {
		switch t.Kernel {
		case KPotrf:
			sink.Report(kernels.Potrf(m.Tile(t.I, t.J), m.B))
		case KTrsmChol:
			kernels.TrsmRightLowerT(m.Tile(t.K, t.K), m.Tile(t.I, t.J), m.B)
		case KSyrk:
			kernels.SyrkLower(m.Tile(t.I, t.J), m.Tile(t.I, t.K), m.B)
		case KGemmChol:
			kernels.GemmSubTileNT(m.Tile(t.I, t.J), m.Tile(t.I, t.K), m.Tile(t.J, t.K), m.B)
		default:
			sink.Report(fmt.Errorf("graphs: unexpected kernel %d in Cholesky flow", t.Kernel))
		}
	}
}

// WavefrontKernel binds the wavefront graph to a smoothing update over a
// rows×cols value grid: each cell becomes itself plus half the sum of its
// north and west neighbours.
func WavefrontKernel(vals []float64, cols int) stf.Kernel {
	return func(t *stf.Task, _ stf.WorkerID) {
		i, j := t.I, t.J
		v := vals[i*cols+j]
		if i > 0 {
			v += 0.5 * vals[(i-1)*cols+j]
		}
		if j > 0 {
			v += 0.5 * vals[i*cols+j-1]
		}
		vals[i*cols+j] = v
	}
}
