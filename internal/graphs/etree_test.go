package graphs_test

import (
	"testing"

	"rio/internal/graphs"
	"rio/internal/stf"
)

func TestBalancedETreeShape(t *testing.T) {
	tree := graphs.BalancedETree(8)
	if tree.Nodes() != 15 {
		t.Fatalf("nodes = %d, want 15", tree.Nodes())
	}
	roots := 0
	for _, p := range tree.Parent {
		if p < 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("roots = %d", roots)
	}
	// Root weight is depth+1 = 4 for 8 leaves.
	if tree.Weight[tree.Nodes()-1] != 4 {
		t.Errorf("root weight = %d, want 4", tree.Weight[tree.Nodes()-1])
	}
	// Postorder: every parent index exceeds its children's.
	for i, p := range tree.Parent {
		if p >= 0 && p <= i {
			t.Fatalf("node %d has non-postorder parent %d", i, p)
		}
	}
	sub := tree.SubtreeWeights()
	if sub[tree.Nodes()-1] <= sub[0] {
		t.Error("root subtree weight not maximal")
	}
}

func TestRandomETreePostorderAndDeterminism(t *testing.T) {
	a := graphs.RandomETree(50, 5, 9)
	b := graphs.RandomETree(50, 5, 9)
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] || a.Weight[i] != b.Weight[i] {
			t.Fatal("same seed produced different trees")
		}
		if a.Parent[i] >= 0 && a.Parent[i] <= i {
			t.Fatalf("node %d parent %d violates postorder", i, a.Parent[i])
		}
		if a.Weight[i] < 1 || a.Weight[i] > 5 {
			t.Fatalf("weight out of range: %d", a.Weight[i])
		}
	}
	if a.Parent[a.Nodes()-1] != -1 {
		t.Error("last node is not the root")
	}
}

func TestChainETreeShape(t *testing.T) {
	tree := graphs.ChainETree(6)
	ch := tree.Children()
	for i := 1; i < 6; i++ {
		if len(ch[i]) != 1 || ch[i][0] != i-1 {
			t.Fatalf("chain children of %d: %v", i, ch[i])
		}
	}
	g := graphs.SparseCholesky(tree)
	_, depth := g.Levels()
	if depth != 6 {
		t.Errorf("chain flow depth = %d, want 6", depth)
	}
}

func TestSparseCholeskyValid(t *testing.T) {
	for _, tree := range []*graphs.ETree{
		graphs.BalancedETree(1),
		graphs.BalancedETree(16),
		graphs.RandomETree(40, 3, 2),
		graphs.ChainETree(1),
	} {
		g := graphs.SparseCholesky(tree)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(g.Tasks) != tree.Nodes() {
			t.Fatalf("tasks = %d, nodes = %d", len(g.Tasks), tree.Nodes())
		}
		// Each task carries its node weight in K.
		for i := range g.Tasks {
			if g.Tasks[i].K != tree.Weight[i] {
				t.Fatalf("task %d weight %d, node weight %d", i, g.Tasks[i].K, tree.Weight[i])
			}
		}
	}
}

func TestLURectShapes(t *testing.T) {
	cases := []struct{ r, c, want int }{
		{2, 2, 5},
		{3, 2, 8},
		{2, 3, 8},
		{3, 3, 14},
		{1, 4, 4}, // 1 getrf + 3 row solves
		{4, 1, 4}, // 1 getrf + 3 col solves
	}
	for _, tc := range cases {
		g := graphs.LURect(tc.r, tc.c)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(g.Tasks) != tc.want {
			t.Errorf("%dx%d: tasks = %d, want %d", tc.r, tc.c, len(g.Tasks), tc.want)
		}
		if g.Tasks[0].Kernel != graphs.KGetrf {
			t.Errorf("%dx%d: first task kernel %d", tc.r, tc.c, g.Tasks[0].Kernel)
		}
	}
	// Square LURect agrees with LU.
	if a, b := graphs.LURect(4, 4), graphs.LU(4); len(a.Tasks) != len(b.Tasks) {
		t.Errorf("LURect(4,4)=%d tasks, LU(4)=%d", len(a.Tasks), len(b.Tasks))
	}
}

func TestETreeDegenerateInputs(t *testing.T) {
	if graphs.BalancedETree(0).Nodes() != 1 {
		t.Error("BalancedETree(0)")
	}
	if graphs.ChainETree(0).Nodes() != 1 {
		t.Error("ChainETree(0)")
	}
	g := graphs.SparseCholesky(graphs.BalancedETree(0))
	if len(g.Tasks) != 1 || len(g.Tasks[0].Accesses) != 1 ||
		g.Tasks[0].Accesses[0].Mode != stf.ReadWrite {
		t.Errorf("degenerate flow = %+v", g.Tasks)
	}
}
