package server

// Built-in kernels a run request may name. A graph submitted over the
// wire carries task structure, not task bodies, so the server replays
// it with a kernel from this registry (or from Config.Kernels for
// embedders wiring real computations). The built-ins exercise the
// synchronization skeleton at three cost profiles:
//
//	noop   zero-cost bodies — pure replay overhead, the paper's
//	       fine-grained regime
//	spin   CPU-bound busy work proportional to the task's weight
//	       (Task.K, the field the automap treats as cost)
//	sleep  off-CPU latency of Task.K milliseconds — blocking-regime
//	       capacity tests without burning cores
//
// spin and sleep keep per-task cost small enough that the engines'
// cooperative cancellation (between tasks) stays prompt under
// Config.Timeout.

import (
	"time"

	"rio"
	"rio/internal/kernels"
)

// spinUnit is the busy-work iteration count per unit of task weight.
const spinUnit = 1000

func builtinKernels() map[string]rio.Kernel {
	return map[string]rio.Kernel{
		"noop": func(*rio.Task, rio.WorkerID) {},
		"spin": func(t *rio.Task, _ rio.WorkerID) {
			var cell uint64
			kernels.Spin(&cell, uint64(weightOf(t))*spinUnit)
		},
		"sleep": func(t *rio.Task, _ rio.WorkerID) {
			time.Sleep(time.Duration(weightOf(t)) * time.Millisecond)
		},
	}
}

// weightOf reads a task's cost weight (K, clamped to at least 1 so
// weightless graphs still do observable work per task).
func weightOf(t *rio.Task) int {
	if t.K > 0 {
		return t.K
	}
	return 1
}
